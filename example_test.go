package swrec_test

import (
	"fmt"

	"swrec"
)

// ExampleNewRecommender builds the paper's Example 1 community by hand
// and runs the default pipeline for one reader.
func ExampleNewRecommender() {
	tax := swrec.Fig1Taxonomy()
	comm := swrec.NewCommunity(tax)

	algebra, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	fiction, _ := tax.Lookup("Books/Fiction")
	comm.AddProduct(swrec.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis",
		Topics: []swrec.Topic{algebra}})
	comm.AddProduct(swrec.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash",
		Topics: []swrec.Topic{fiction}})
	comm.AddProduct(swrec.Product{ID: "urn:isbn:9780387942223", Title: "Linear Algebra Done Right",
		Topics: []swrec.Topic{algebra}})

	_ = comm.SetTrust("http://example.org/alice", "http://example.org/bob", 0.9)
	_ = comm.SetRating("http://example.org/alice", "urn:isbn:9780521386326", 1)
	_ = comm.SetRating("http://example.org/bob", "urn:isbn:9780521386326", 0.8)
	_ = comm.SetRating("http://example.org/bob", "urn:isbn:9780387942223", 1)

	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		panic(err)
	}
	recs, err := rec.Recommend("http://example.org/alice", 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(comm.Product(recs[0].Product).Title)
	// Output: Linear Algebra Done Right
}

// ExampleMarshalHomepage shows the machine-readable homepage format (§4).
func ExampleMarshalHomepage() {
	comm := swrec.NewCommunity(nil)
	comm.AddProduct(swrec.Product{ID: "urn:isbn:9780553380958"})
	_ = comm.SetTrust("http://example.org/alice", "http://example.org/bob", 0.9)
	_ = comm.SetRating("http://example.org/alice", "urn:isbn:9780553380958", 1)

	doc := swrec.MarshalHomepage(comm.Agent("http://example.org/alice"))
	h, err := swrec.ParseHomepage(doc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s trusts %d peer(s), rates %d product(s)\n",
		h.Agent, len(h.Trust), len(h.Ratings))
	// Output: http://example.org/alice trusts 1 peer(s), rates 1 product(s)
}

// ExampleGenerateCommunity shows the §4.1-calibrated corpus generator.
func ExampleGenerateCommunity() {
	cfg := swrec.SmallDataset()
	cfg.Seed = 1
	comm, meta := swrec.GenerateCommunity(cfg)
	fmt.Printf("%d agents in %d interest clusters over %d topics\n",
		comm.NumAgents(), meta.Config.Clusters, comm.Taxonomy().Len())
	// Output: 200 agents in 6 interest clusters over 341 topics
}

// ExampleInjectSybils demonstrates the §3.2 manipulation scenario and the
// trust metric's defense.
func ExampleInjectSybils() {
	cfg := swrec.SmallDataset()
	cfg.Seed = 3
	comm, _ := swrec.GenerateCommunity(cfg)
	victim := comm.Agents()[0]
	swrec.InjectSybils(comm, victim, 10, "urn:isbn:pushed")

	hybrid, _ := swrec.NewRecommender(comm, swrec.Options{})
	recs, _ := hybrid.Recommend(victim, 10)
	for _, r := range recs {
		if r.Product == "urn:isbn:pushed" {
			fmt.Println("attack succeeded")
			return
		}
	}
	fmt.Println("attack blocked")
	// Output: attack blocked
}
