// Command lintaudit reports stale suppressions: //nolint and
// //swrecvet:disable comments whose analyzer is no longer registered or
// whose diagnostic no longer fires under them. Run it as
//
//	make lint-audit
//
// which builds bin/swrecvet and invokes this command. It re-runs the
// full analyzer suite in audit mode (-<name>.audit), where suppressed
// diagnostics are emitted with a marker instead of being dropped, and
// cross-references them against every suppression comment in the tree.
// A justified suppression that no marked diagnostic lands under is dead
// weight: delete it before it silences a future, different violation on
// the same line. Exits 1 when stale suppressions exist.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"swrec/internal/analysis/lintaudit"
	"swrec/internal/analysis/registry"
)

func main() {
	vettool := flag.String("vettool", "bin/swrecvet", "path to the swrecvet binary")
	pkgs := flag.String("pkgs", "./...", "package pattern handed to go vet")
	root := flag.String("root", ".", "tree scanned for suppression comments")
	flag.Parse()

	if err := run(*vettool, *pkgs, *root); err != nil {
		fmt.Fprintln(os.Stderr, "lintaudit:", err)
		os.Exit(2)
	}
}

func run(vettool, pkgs, root string) error {
	abs, err := filepath.Abs(vettool)
	if err != nil {
		return err
	}
	args := []string{"vet", "-vettool=" + abs, "-json"}
	for _, name := range registry.Names() {
		args = append(args, "-"+name+".audit")
	}
	args = append(args, pkgs)

	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	// vet exits non-zero whenever diagnostics exist — in audit mode
	// that is the expected outcome, not a failure.
	if err := cmd.Run(); err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			return fmt.Errorf("go vet: %w (output: %s)", err, out.String())
		}
	}
	diags, err := lintaudit.ParseVetJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		return fmt.Errorf("%w\nvet output was:\n%s", err, out.String())
	}
	sups, err := lintaudit.ScanDir(root)
	if err != nil {
		return err
	}
	res := lintaudit.Audit(sups, diags, registry.Names())
	fmt.Printf("lintaudit: %d justified suppressions audited, %d live, %d stale\n",
		res.Total, res.Live, len(res.Stale))
	for _, s := range res.Stale {
		fmt.Printf("STALE %s — %s\n", s.Suppression, s.Reason)
	}
	if len(res.Stale) > 0 {
		os.Exit(1)
	}
	return nil
}
