// Command swrecload is the production load harness: it runs a
// deterministic traffic scenario — Zipf-skewed reads, write churn
// through the /v1 API, flash crowds, injected adversarial communities —
// against an in-process swrecd (default) or a live server, checks the
// scenario's SLOs and attack-confinement bounds, and writes the
// BENCH_load.json artifact that `benchjson -diff` gates in CI.
//
// Usage:
//
//	swrecload [-preset short|full | -scenario FILE] [-out BENCH_load.json]
//	          [-addr http://HOST:PORT] [-wal DIR]
//	          [-seed N] [-agents N] [-events N] [-concurrency N]
//	          [-slo strict|report] [-v]
//
// The scenario fully determines the traffic: the same scenario and seed
// produce a byte-identical event plan (the report records its
// fingerprint), so two artifacts are comparable exactly when their
// fingerprints match. Latency is measured per endpoint and per strategy
// rung as HDR-style histograms (p50/p99/p999).
//
// With -addr the traffic is sent to a live server, which must be
// serving the same seeded community (e.g. swrecd -scale small -seed N);
// attack confinement is still measured against local twin builds of the
// clean and attacked community, since a live server cannot be asked to
// un-inject an attack.
//
// Exit status: 0 on full compliance, 1 when any SLO or confinement
// bound is violated, 2 on operational errors. With -slo=report,
// latency/error SLO violations are printed and recorded in the artifact
// but do not fail the exit status — confinement bounds still do.
// Latency budgets describe a reference box, so `make load` uses report
// mode (a saturated 1-core machine honestly misses them); attack
// confinement is hardware-independent and always enforced.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"swrec/internal/ingest"
	"swrec/internal/loadgen"
)

func main() {
	preset := flag.String("preset", "short", "built-in scenario: short | full")
	scenarioFile := flag.String("scenario", "", "scenario JSON file (overrides -preset)")
	out := flag.String("out", "BENCH_load.json", "report artifact path")
	addr := flag.String("addr", "", "live server base URL (empty = in-process)")
	walDir := flag.String("wal", "", "WAL directory for the in-process write path (empty = temp, removed afterwards)")
	seed := flag.Int64("seed", 0, "override scenario seed (0 = keep)")
	agents := flag.Int("agents", 0, "override community agent count (0 = keep)")
	events := flag.Int("events", 0, "override workload event count (0 = keep)")
	concurrency := flag.Int("concurrency", 0, "override worker count (0 = keep)")
	sloMode := flag.String("slo", "strict", "latency/error SLO exit policy: strict (violations fail) | report (print only; confinement still fails)")
	verbose := flag.Bool("v", false, "print the per-endpoint table")
	flag.Parse()

	if *sloMode != "strict" && *sloMode != "report" {
		fmt.Fprintf(os.Stderr, "swrecload: -slo %q (want strict|report)\n", *sloMode)
		os.Exit(2)
	}
	if err := run(*preset, *scenarioFile, *out, *addr, *walDir, *seed, *agents, *events, *concurrency, *sloMode == "strict", *verbose); err != nil {
		if err == errViolations {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "swrecload:", err)
		os.Exit(2)
	}
}

var errViolations = fmt.Errorf("SLO or confinement violations")

func run(preset, scenarioFile, out, addr, walDir string, seed int64, agents, events, concurrency int, strictSLO, verbose bool) error {
	var sc *loadgen.Scenario
	var err error
	switch {
	case scenarioFile != "":
		sc, err = loadgen.Load(scenarioFile)
		if err != nil {
			return err
		}
	case preset == "short":
		sc = loadgen.Short()
	case preset == "full":
		sc = loadgen.Full()
	default:
		return fmt.Errorf("unknown preset %q (want short|full)", preset)
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if agents != 0 {
		sc.Community.Agents = agents
	}
	if events != 0 {
		sc.Workload.Events = events
	}
	if concurrency != 0 {
		sc.Workload.Concurrency = concurrency
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if walDir == "" {
		tmp, err := os.MkdirTemp("", "swrecload-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		walDir = tmp
	}

	fmt.Fprintf(os.Stderr, "swrecload: scenario %q seed %d: generating %d agents, %d products\n",
		sc.Name, sc.Seed, sc.DatagenConfig().Agents, sc.DatagenConfig().Products)
	p, err := loadgen.BuildInProc(ctx, sc, walDir, ingest.Config{})
	if err != nil {
		return err
	}
	defer p.Close()

	// Confinement is measured before the load phase so the numbers
	// compare attacked-vs-clean, not attacked-vs-churned.
	attacks, err := p.MeasureAttacks(sc)
	if err != nil {
		return err
	}

	plan := loadgen.Plan(sc)
	fmt.Fprintf(os.Stderr, "swrecload: plan %s: %d events, %s pacing, %d workers\n",
		loadgen.Fingerprint(plan), len(plan), sc.Workload.Pacing, sc.Workload.Concurrency)

	var target loadgen.Target = loadgen.HandlerTarget{Handler: p.Handler}
	if addr != "" {
		target = loadgen.HTTPTarget{Base: addr}
		fmt.Fprintf(os.Stderr, "swrecload: driving live server %s (confinement measured on local twins)\n", addr)
	}
	runner := &loadgen.Runner{Scenario: sc, Plan: plan, Resolver: p.Resolver, Target: target}
	res, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	rep := loadgen.BuildReport(sc, plan, res, attacks)
	if err := rep.WriteFile(out); err != nil {
		return err
	}
	printSummary(rep, verbose)

	bad := strictSLO && len(rep.Violations) > 0
	if !strictSLO && len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "swrecload: %d SLO violations reported, not enforced (-slo=report)\n", len(rep.Violations))
	}
	for _, ar := range attacks {
		bad = bad || len(ar.Violations) > 0
	}
	if bad {
		return errViolations
	}
	fmt.Fprintf(os.Stderr, "swrecload: PASS — report written to %s\n", out)
	return nil
}

func printSummary(rep *loadgen.Report, verbose bool) {
	fmt.Printf("scenario %s (seed %d, plan %s): %d/%d events in %.2fs\n",
		rep.Scenario, rep.Seed, rep.PlanFingerprint, rep.Completed, rep.Events, rep.WallSeconds)
	if verbose {
		names := make([]string, 0, len(rep.Endpoints))
		for ep := range rep.Endpoints {
			names = append(names, ep)
		}
		sort.Strings(names)
		fmt.Printf("%-18s %8s %9s %9s %9s %7s\n", "endpoint", "reqs", "p50ms", "p99ms", "p999ms", "err%")
		for _, ep := range names {
			e := rep.Endpoints[ep]
			fmt.Printf("%-18s %8d %9.2f %9.2f %9.2f %7.2f\n",
				ep, e.Requests, e.P50MS, e.P99MS, e.P999MS, 100*e.ErrorRate)
		}
		for _, rung := range sortedStrings(rep.Rungs) {
			r := rep.Rungs[rung]
			fmt.Printf("%-18s %8d %9.2f %9.2f %9.2f\n", "rung:"+rung, r.Requests, r.P50MS, r.P99MS, r.P999MS)
		}
	}
	if rep.Overloaded > 0 {
		fmt.Printf("overload: %d×503, Retry-After %d..%ds\n", rep.Overloaded, rep.RetryAfterMin, rep.RetryAfterMax)
	}
	for _, ar := range rep.Attacks {
		status := "confined"
		if len(ar.Violations) > 0 {
			status = "ESCAPED"
		}
		fmt.Printf("attack %-16s %s: energy %.4f; trust-gated rank perturbation %d, pushed rate %.3f; default blend %d / %.3f (%d samples)\n",
			ar.Kind, status, ar.EnergyShare,
			ar.TrustGated.MaxRankPerturbation, ar.TrustGated.PushedRate,
			ar.MaxRankPerturbation, ar.PushedRate, ar.Samples)
		for _, v := range ar.Violations {
			fmt.Println("  violation:", v)
		}
	}
	for _, v := range rep.Violations {
		fmt.Println("SLO violation:", v.String())
	}
}

func sortedStrings[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
