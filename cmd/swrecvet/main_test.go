package main

import "testing"

// TestAnalyzerSet pins the multichecker's registered analyzer set:
// the CI gate's strength is exactly this list, so adding or dropping
// an analyzer must be visible as a test change.
func TestAnalyzerSet(t *testing.T) {
	want := []string{
		"ctxflow",
		"detrand",
		"durableerr",
		"expvarname",
		"goleak",
		"snapshotpin",
	}
	if len(analyzers) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(analyzers), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range analyzers {
		if a == nil {
			t.Fatalf("analyzer %d is nil", i)
		}
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q (keep the set sorted)", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
