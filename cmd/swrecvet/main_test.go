package main

import (
	"testing"

	"swrec/internal/analysis/registry"
)

// TestAnalyzerSet pins the multichecker's registered analyzer set:
// the CI gate's strength is exactly this list, so adding or dropping
// an analyzer must be visible as a test change.
func TestAnalyzerSet(t *testing.T) {
	want := []string{
		"boundedmake",
		"ctxflow",
		"detrand",
		"durableerr",
		"expvarname",
		"goleak",
		"hotalloc",
		"snapshotfreeze",
		"snapshotpin",
		"urikey",
	}
	analyzers := registry.All()
	if len(analyzers) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(analyzers), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range analyzers {
		if a == nil {
			t.Fatalf("analyzer %d is nil", i)
		}
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q (keep the set sorted)", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
		if a.Flags.Lookup("audit") == nil {
			t.Errorf("analyzer %q does not register the shared audit flag", a.Name)
		}
	}
}

// TestNames pins registry.Names against the analyzer list — lintaudit
// derives its audit-flag set from it.
func TestNames(t *testing.T) {
	names := registry.Names()
	analyzers := registry.All()
	if len(names) != len(analyzers) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(analyzers))
	}
	for i := range names {
		if names[i] != analyzers[i].Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], analyzers[i].Name)
		}
	}
}
