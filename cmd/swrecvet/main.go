// Command swrecvet is the swrec invariant checker: a go/analysis
// multichecker bundling the project-specific analyzers from
// internal/analysis. It is built to be driven by the go command:
//
//	go build -o bin/swrecvet ./cmd/swrecvet
//	go vet -vettool=$(pwd)/bin/swrecvet ./...
//
// (or `make lint`, which does exactly that). Each analyzer encodes one
// invariant introduced by an earlier PR — see the DESIGN.md "Static
// analysis" table for the mapping — and supports the auditable
// suppression comments documented in internal/analysis/lintutil.
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"swrec/internal/analysis/ctxflow"
	"swrec/internal/analysis/detrand"
	"swrec/internal/analysis/durableerr"
	"swrec/internal/analysis/expvarname"
	"swrec/internal/analysis/goleak"
	"swrec/internal/analysis/snapshotpin"
)

// analyzers is the full swrecvet suite. cmd/swrecvet's smoke test
// pins this set; extending it is a deliberate, reviewed act.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	detrand.Analyzer,
	durableerr.Analyzer,
	expvarname.Analyzer,
	goleak.Analyzer,
	snapshotpin.Analyzer,
}

func main() {
	unitchecker.Main(analyzers...)
}
