// Command swrecvet is the swrec invariant checker: a go/analysis
// multichecker bundling the project-specific analyzers from
// internal/analysis. It is built to be driven by the go command:
//
//	go build -o bin/swrecvet ./cmd/swrecvet
//	go vet -vettool=$(pwd)/bin/swrecvet ./...
//
// (or `make lint`, which does exactly that). Each analyzer encodes one
// invariant introduced by an earlier PR — see the DESIGN.md "Static
// analysis" table for the mapping — and supports the auditable
// suppression comments documented in internal/analysis/lintutil. The
// analyzer set lives in internal/analysis/registry, shared with
// cmd/lintaudit.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"swrec/internal/analysis/registry"
)

func main() {
	unitchecker.Main(registry.All()...)
}
