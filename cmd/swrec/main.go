// Command swrec is the interactive CLI over the recommender library: it
// generates a deterministic synthetic community (the §4.1-style corpus)
// and lets you inspect agents, trust neighborhoods, interest profiles,
// and recommendations.
//
// Usage:
//
//	swrec stats       [-scale S] [-seed N] [-in DIR]
//	swrec agents      [-scale S] [-seed N] [-in DIR] [-top K]
//	swrec inspect     [-scale S] [-seed N] [-in DIR] -agent <index|URI>
//	swrec recommend   [-scale S] [-seed N] [-in DIR] -agent <index|URI> [-n 10]
//	                  [-metric appleseed|advogato|pathtrust|none]
//	                  [-measure pearson|cosine] [-repr taxonomy|flat|product]
//	                  [-alpha 0.5] [-novel]
//	swrec stereotypes [-scale S] [-seed N] [-in DIR] [-k 6] [-top K]
//	swrec export      [-scale S] [-seed N] -out DIR
//
// -in loads a corpus directory written by export instead of generating.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"

	"swrec"
	"swrec/internal/datagen"
	"swrec/internal/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.String("scale", "small", "dataset scale: small | paper")
	seed := fs.Int64("seed", 1, "generation seed")
	agentFlag := fs.String("agent", "", "agent index (e.g. 3) or full URI")
	n := fs.Int("n", 10, "number of recommendations")
	topK := fs.Int("top", 15, "rows to print")
	metric := fs.String("metric", "appleseed", "trust metric: appleseed | advogato | pathtrust | none")
	measure := fs.String("measure", "cosine", "similarity measure: pearson | cosine")
	repr := fs.String("repr", "taxonomy", "profile representation: taxonomy | flat | product")
	alpha := fs.Float64("alpha", 0.5, "rank synthesization blend (1 = pure trust, 0 = pure similarity)")
	novel := fs.Bool("novel", false, "recommend only from untouched taxonomy branches (§3.4)")
	theta := fs.Float64("theta", 0, "topic diversification factor in [0,1] (0 = off)")
	inDir := fs.String("in", "", "load a corpus directory instead of generating")
	outDir := fs.String("out", "", "corpus directory to export into")
	k := fs.Int("k", 6, "number of stereotypes to learn")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var comm *swrec.Community
	if *inDir != "" {
		var err error
		comm, err = swrec.ImportCorpus(*inDir)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg := datagen.SmallScale()
		if *scale == "paper" {
			cfg = datagen.PaperScale()
		}
		cfg.Seed = *seed
		comm, _ = swrec.GenerateCommunity(cfg)
	}

	switch cmd {
	case "stats":
		runStats(comm)
	case "agents":
		runAgents(comm, *topK)
	case "inspect":
		runInspect(comm, resolveAgent(comm, *agentFlag), *topK)
	case "recommend":
		opt, err := buildOptions(*metric, *measure, *repr, *alpha, *novel)
		if err != nil {
			fatal(err)
		}
		runRecommend(comm, resolveAgent(comm, *agentFlag), opt, *n, *theta)
	case "stereotypes":
		runStereotypes(comm, *k, *topK)
	case "export":
		if *outDir == "" {
			fatal(fmt.Errorf("export requires -out DIR"))
		}
		if err := swrec.ExportCorpus(comm, *outDir); err != nil {
			fatal(err)
		}
		fmt.Printf("exported %d agents, %d products to %s\n",
			comm.NumAgents(), comm.NumProducts(), *outDir)
	default:
		usage()
		os.Exit(2)
	}
}

func runStereotypes(comm *swrec.Community, k, top int) {
	m, err := swrec.LearnStereotypes(comm, swrec.StereotypeOptions{K: k})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("learned %d stereotypes from %d profiles (cohesion %.3f, %d iterations)\n\n",
		m.K(), len(m.Assignment), m.Cohesion, m.Iterations)
	branches := 4
	if top > 0 && top < branches {
		branches = top
	}
	for s := 0; s < m.K(); s++ {
		fmt.Printf("stereotype %d: %d members; dominant branches:\n", s, m.Sizes[s])
		for _, tw := range m.TopTopics(s, branches) {
			fmt.Printf("  %-50s %.3f\n",
				comm.Taxonomy().QualifiedName(swrec.Topic(tw.Topic)), tw.Weight)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `swrec — Semantic Web recommender CLI
subcommands: stats | agents | inspect | recommend | stereotypes | export (see -h of each)`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swrec:", err)
	os.Exit(1)
}

// resolveAgent accepts a numeric index into the generated agent list or a
// full agent URI.
func resolveAgent(comm *swrec.Community, s string) swrec.AgentID {
	if s == "" {
		fatal(fmt.Errorf("missing -agent (index or URI); try 'swrec agents' first"))
	}
	if idx, err := strconv.Atoi(s); err == nil {
		ids := comm.Agents()
		if idx < 0 || idx >= len(ids) {
			fatal(fmt.Errorf("agent index %d out of range [0,%d)", idx, len(ids)))
		}
		return ids[idx]
	}
	id := swrec.AgentID(s)
	if !comm.HasAgent(id) {
		fatal(fmt.Errorf("unknown agent %s", s))
	}
	return id
}

func buildOptions(metric, measure, repr string, alpha float64, novel bool) (swrec.Options, error) {
	var opt swrec.Options
	switch metric {
	case "appleseed":
		opt.Metric = swrec.MetricAppleseed
	case "advogato":
		opt.Metric = swrec.MetricAdvogato
	case "pathtrust":
		opt.Metric = swrec.MetricPathTrust
	case "none":
		opt.Metric = swrec.MetricNone
	default:
		return opt, fmt.Errorf("unknown metric %q", metric)
	}
	switch measure {
	case "pearson":
		opt.CF.Measure = swrec.MeasurePearson
	case "cosine":
		opt.CF.Measure = swrec.MeasureCosine
	default:
		return opt, fmt.Errorf("unknown measure %q", measure)
	}
	switch repr {
	case "taxonomy":
		opt.CF.Representation = swrec.ReprTaxonomy
	case "flat":
		opt.CF.Representation = swrec.ReprFlatCategory
	case "product":
		opt.CF.Representation = swrec.ReprProduct
	default:
		return opt, fmt.Errorf("unknown representation %q", repr)
	}
	opt.Alpha = alpha
	opt.AlphaSet = true
	if novel {
		opt.Content = swrec.ContentNovelCategories
	}
	return opt, nil
}

func runStats(comm *swrec.Community) {
	s := comm.ComputeStats()
	ts := comm.Taxonomy().ComputeStats()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "agents\t%d\n", s.Agents)
	fmt.Fprintf(tw, "products\t%d\n", s.Products)
	fmt.Fprintf(tw, "trust edges\t%d (%.2f/agent, %d distrust)\n", s.TrustEdges, s.MeanTrustDeg, s.DistrustEdges)
	fmt.Fprintf(tw, "ratings\t%d (%.2f/agent)\n", s.Ratings, s.MeanRatings)
	fmt.Fprintf(tw, "taxonomy topics\t%d (max depth %d, %d leaves)\n", ts.Topics, ts.MaxDepth, ts.Leaves)
	tw.Flush()
}

func runAgents(comm *swrec.Community, top int) {
	type row struct {
		idx     int
		id      swrec.AgentID
		trust   int
		ratings int
	}
	var rows []row
	for i, id := range comm.Agents() {
		a := comm.Agent(id)
		rows = append(rows, row{i, id, len(a.Trust), len(a.Ratings)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].trust > rows[j].trust })
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index\tagent\ttrust out-deg\tratings")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\n", r.idx, r.id, r.trust, r.ratings)
	}
	tw.Flush()
}

func runInspect(comm *swrec.Community, id swrec.AgentID, top int) {
	a := comm.Agent(id)
	fmt.Printf("agent: %s (%s)\n", id, a.Name)
	fmt.Printf("trust statements: %d, ratings: %d\n\n", len(a.Trust), len(a.Ratings))

	// Top taxonomy interests.
	g := profile.New(comm.Taxonomy())
	prof := g.Profile(a, comm)
	fmt.Println("top interest topics (Eq. 3 profile):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, e := range prof.TopK(top) {
		fmt.Fprintf(tw, "  %s\t%.2f\n", comm.Taxonomy().QualifiedName(swrec.Topic(e.Key)), e.Value)
	}
	tw.Flush()

	// Trust neighborhood.
	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		fatal(err)
	}
	nb, err := rec.Neighborhood(id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nAppleseed neighborhood: %d peers in range (converged in %d iterations)\n",
		len(nb.Ranks), nb.Iterations)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, r := range nb.Top(top) {
		fmt.Fprintf(tw, "  %s\ttrust %.3f\n", r.Agent, r.Trust)
	}
	tw.Flush()
}

func runRecommend(comm *swrec.Community, id swrec.AgentID, opt swrec.Options, n int, theta float64) {
	rec, err := swrec.NewRecommender(comm, opt)
	if err != nil {
		fatal(err)
	}
	peers, err := rec.RankedPeers(id)
	if err != nil {
		fatal(err)
	}
	fetchN := n
	if theta > 0 && n > 0 {
		fetchN = n * 5 // deeper candidate pool for the re-ranking
	}
	recs, err := rec.Recommend(id, fetchN)
	if err != nil {
		fatal(err)
	}
	if theta > 0 {
		recs = rec.Diversify(recs, n, theta)
	}
	fmt.Printf("agent: %s\nmetric=%v measure=%v repr=%v alpha=%.2f peers=%d\n\n",
		id, opt.Metric, opt.CF.Measure, opt.CF.Representation, optAlpha(opt), len(peers))
	if len(recs) == 0 {
		fmt.Println("no recommendations (empty neighborhood or nothing unseen)")
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tproduct\ttitle\tscore\tsupporters")
	for i, r := range recs {
		title := ""
		if p := comm.Product(r.Product); p != nil {
			title = p.Title
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%d\n", i+1, r.Product, title, r.Score, r.Supporters)
	}
	tw.Flush()
}

// optAlpha mirrors core's default resolution for display.
func optAlpha(opt swrec.Options) float64 {
	if !opt.AlphaSet && opt.Alpha == 0 {
		return 0.5
	}
	return opt.Alpha
}
