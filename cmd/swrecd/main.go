// Command swrecd serves recommendations over a JSON HTTP API — the
// deployment face of an installation once its crawler has materialized a
// community view. The community comes from a corpus directory (written
// by `swrec export` or by a crawl) or is generated synthetically, and is
// served by a persistent engine (internal/engine) whose caches are
// warmed at startup so the first request is as fast as the thousandth.
//
// Usage:
//
//	swrecd [-addr 127.0.0.1:8080] [-in DIR | -scale small|paper -seed N]
//	       [-metric appleseed|advogato|pathtrust|none] [-alpha 0.5]
//	       [-warm] [-shutdown-timeout 10s]
//
// Endpoints (see internal/api for the response envelope):
//
//	GET /v1/healthz
//	GET /v1/metrics
//	GET /v1/stats
//	GET /v1/agents?offset=0&limit=25
//	GET /v1/agents/{escaped-uri}
//	GET /v1/agents/{escaped-uri}/neighbors?n=25&metric=&alpha=&measure=
//	GET /v1/agents/{escaped-uri}/profile?n=15
//	GET /v1/agents/{escaped-uri}/recommendations?n=10&novel=1&theta=0.4&metric=&alpha=&measure=
//	GET /v1/products/{escaped-id}
//	GET /v1/topics/{escaped-path}?offset=0&limit=50
//
// The server logs one line per request (method, path, status, duration),
// applies read/write timeouts, and shuts down gracefully on SIGINT or
// SIGTERM, draining in-flight requests up to -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swrec"
	"swrec/internal/api"
	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	inDir := flag.String("in", "", "corpus directory to serve (empty = generate)")
	scale := flag.String("scale", "small", "generated dataset scale: small | paper")
	seed := flag.Int64("seed", 1, "generation seed")
	metric := flag.String("metric", "appleseed", "trust metric: appleseed | advogato | pathtrust | none")
	alpha := flag.Float64("alpha", 0.5, "rank synthesization blend")
	warm := flag.Bool("warm", true, "precompute all agent profiles and neighborhoods at startup")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	logger := log.New(os.Stderr, "swrecd: ", log.LstdFlags)

	var comm *swrec.Community
	if *inDir != "" {
		var err error
		comm, err = swrec.ImportCorpus(*inDir)
		if err != nil {
			fatal(err)
		}
		logger.Printf("serving corpus %s: %d agents, %d products",
			*inDir, comm.NumAgents(), comm.NumProducts())
	} else {
		cfg := datagen.SmallScale()
		if *scale == "paper" {
			cfg = datagen.PaperScale()
		}
		cfg.Seed = *seed
		comm, _ = swrec.GenerateCommunity(cfg)
		logger.Printf("serving generated %s community: %d agents, %d products",
			*scale, comm.NumAgents(), comm.NumProducts())
	}

	opt := core.Options{
		Alpha: *alpha, AlphaSet: true,
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}
	if comm.Taxonomy() == nil {
		opt.CF.Representation = cf.Product
	}
	switch *metric {
	case "appleseed":
		opt.Metric = core.Appleseed
	case "advogato":
		opt.Metric = core.Advogato
	case "pathtrust":
		opt.Metric = core.PathTrust
	case "none":
		opt.Metric = core.NoTrust
	default:
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}

	eng, err := engine.New(comm, opt, engine.Config{})
	if err != nil {
		fatal(err)
	}
	if *warm {
		res := eng.Warmup(0)
		logger.Printf("warmed %d agents in %v", res.Agents, res.Duration.Round(time.Millisecond))
	}

	srv := &http.Server{
		Handler:           logRequests(logger, api.New(eng)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	sample := ""
	if ids := comm.Agents(); len(ids) > 0 {
		sample = url.PathEscape(string(ids[0]))
	}
	logger.Printf("listening on http://%s", ln.Addr())
	logger.Printf("  try: curl http://%s/v1/healthz", ln.Addr())
	logger.Printf("  try: curl 'http://%s/v1/agents/%s/recommendations?n=5'", ln.Addr(), sample)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		logger.Printf("signal received, draining for up to %v", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("forced shutdown: %v", err)
			_ = srv.Close()
		}
		logger.Printf("bye")
	}
}

// logRequests emits one line per request: method, path, status, duration.
func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Printf("%s %s %d %v", r.Method, r.URL.RequestURI(), rec.status,
			time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swrecd:", err)
	os.Exit(1)
}
