// Command swrecd serves recommendations over a JSON HTTP API — the
// deployment face of an installation once its crawler has materialized a
// community view. The community comes from a corpus directory (written
// by `swrec export` or by a crawl) or is generated synthetically, and is
// served by a persistent engine (internal/engine) whose caches are
// warmed at startup so the first request is as fast as the thousandth.
//
// Usage:
//
//	swrecd [-addr 127.0.0.1:8080] [-in DIR | -scale small|paper -seed N]
//	       [-metric appleseed|advogato|pathtrust|none] [-alpha 0.5]
//	       [-trust-threshold 0] [-max-neighbors 0]
//	       [-warm] [-shutdown-timeout 10s] [-wal DIR]
//	       [-checkpoint-every 64] [-checkpoint-retain 2]
//	       [-request-budget 50ms] [-compute-budget 2s]
//	       [-strategy-min-peers 3] [-strategy-min-overlap 0.1]
//	       [-strategy-hop-decay 0.5] [-strategy-ancestor-depth 2]
//	       [-strategy-disable rung,...] [-compat-degraded]
//
// With -wal the server opens the durable write path (internal/ingest):
// POST/DELETE endpoints on /v1/agents accept first-party mutations,
// acknowledged once appended to the write-ahead log under DIR and made
// visible through epoch snapshot swaps. On restart the server walks the
// recovery ladder (internal/checkpoint): newest compiled checkpoint,
// older retained checkpoint, corpus snapshot + full WAL replay, and
// finally -in/-scale corpus recompute — then replays only the WAL
// records the recovered state does not cover. While running, a compiled
// checkpoint is written in the background every -checkpoint-every
// published snapshots (and at shutdown), retaining -checkpoint-retain
// files, so the next restart restores the compiled engine state — CSR
// profile rows, topic index, warm caches — in O(file size) without
// recomputing Appleseed or Eq. 3 (see README "Checkpoints & recovery").
//
// -trust-threshold and -max-neighbors wire the §3.3 neighborhood gates:
// peers below the normalized trust-rank threshold (in [0,1)) are
// dropped, and at most max-neighbors peers (0 = unlimited) proceed to
// rank synthesis and voting.
//
// Endpoints (see internal/api for the response envelope):
//
//	GET /v1/healthz
//	GET /v1/metrics
//	GET /v1/stats
//	GET /v1/strategies
//	GET /v1/agents?offset=0&limit=25
//	GET /v1/agents/{escaped-uri}
//	GET /v1/agents/{escaped-uri}/neighbors?n=25&metric=&alpha=&measure=&strategy=
//	GET /v1/agents/{escaped-uri}/profile?n=15
//	GET /v1/agents/{escaped-uri}/recommendations?n=10&novel=1&theta=0.4&metric=&alpha=&measure=&strategy=
//	GET /v1/products/{escaped-id}
//	GET /v1/topics/{escaped-path}?offset=0&limit=50
//
// Hard queries — cold-start agents, disjoint profiles, thin trust
// neighborhoods — are answered by walking the strategy ladder
// (internal/strategy); every list response reports the chosen rung and
// attempt trace in its strategy block. The -strategy-* flags shape the
// ladder thresholds, -strategy-disable turns rungs off, and
// -compat-degraded re-emits the deprecated degraded/degradedSource/
// degradedEpoch fields alongside the strategy block for old clients.
//
// The server logs one line per request (method, path, status, duration),
// applies read/write timeouts, and shuts down gracefully on SIGINT or
// SIGTERM, draining in-flight requests up to -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swrec"
	"swrec/internal/api"
	"swrec/internal/cf"
	"swrec/internal/checkpoint"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/strategy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	inDir := flag.String("in", "", "corpus directory to serve (empty = generate)")
	scale := flag.String("scale", "small", "generated dataset scale: small | paper")
	seed := flag.Int64("seed", 1, "generation seed")
	metric := flag.String("metric", "appleseed", "trust metric: appleseed | advogato | pathtrust | none")
	alpha := flag.Float64("alpha", 0.5, "rank synthesization blend")
	trustThreshold := flag.Float64("trust-threshold", 0, "drop peers whose normalized trust rank falls below this, in [0,1) (0 = keep all)")
	maxNeighbors := flag.Int("max-neighbors", 0, "cap on peers proceeding to rank synthesis and voting (0 = unlimited)")
	warm := flag.Bool("warm", true, "precompute all agent profiles and neighborhoods at startup")
	warmupWorkers := flag.Int("warmup-workers", 0, "warmup worker pool size (0 = GOMAXPROCS)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	walDir := flag.String("wal", "", "write-ahead log directory; enables the durable write endpoints")
	ckptEvery := flag.Int("checkpoint-every", 64, "write a compiled checkpoint every N published snapshots (0 = disabled; requires -wal)")
	ckptRetain := flag.Int("checkpoint-retain", 2, "compiled checkpoint files retained for the recovery ladder (min 1)")
	requestBudget := flag.Duration("request-budget", 0, "per-request deadline for read endpoints; misses serve a degraded cached answer or 504 (0 = unbounded)")
	computeBudget := flag.Duration("compute-budget", 0, "cap on a detached cold-path computation after its request gave up (0 = unbounded)")
	stratMinPeers := flag.Int("strategy-min-peers", 0, "peer count below which the neighborhood counts as thin (0 = default 3)")
	stratMinOverlap := flag.Float64("strategy-min-overlap", 0, "top-similarity threshold below which taxonomy-ancestor backoff engages (0 = default 0.1)")
	stratHopDecay := flag.Float64("strategy-hop-decay", 0, "rank attenuation for trust-hop widening (0 = default 0.5)")
	stratAncestorDepth := flag.Int("strategy-ancestor-depth", 0, "taxonomy depth profiles generalize to in ancestor backoff (0 = default 2)")
	stratDisable := flag.String("strategy-disable", "", "comma-separated strategy rungs to disable (see GET /v1/strategies)")
	compatDegraded := flag.Bool("compat-degraded", false, "re-emit deprecated degraded/degradedSource/degradedEpoch fields alongside the strategy block")
	flag.Parse()

	logger := log.New(os.Stderr, "swrecd: ", log.LstdFlags)

	// Boot-time flag validation: fail loud before any state is touched.
	if *trustThreshold < 0 || *trustThreshold >= 1 {
		fatal(fmt.Errorf("-trust-threshold must be in [0,1), got %v", *trustThreshold))
	}
	if *maxNeighbors < 0 {
		fatal(fmt.Errorf("-max-neighbors must be >= 0, got %d", *maxNeighbors))
	}
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every must be >= 0, got %d", *ckptEvery))
	}
	if *ckptRetain < 1 {
		fatal(fmt.Errorf("-checkpoint-retain must be >= 1, got %d", *ckptRetain))
	}

	// loadCorpus materializes the -in / -scale community — the direct
	// source without -wal, and the recovery ladder's rung-4 source of
	// last resort with it.
	loadCorpus := func() (*model.Community, error) {
		if *inDir != "" {
			comm, err := swrec.ImportCorpus(*inDir)
			if err != nil {
				return nil, err
			}
			logger.Printf("serving corpus %s: %d agents, %d products",
				*inDir, comm.NumAgents(), comm.NumProducts())
			return comm, nil
		}
		cfg := datagen.SmallScale()
		if *scale == "paper" {
			cfg = datagen.PaperScale()
		}
		cfg.Seed = *seed
		comm, _ := swrec.GenerateCommunity(cfg)
		logger.Printf("serving generated %s community: %d agents, %d products",
			*scale, comm.NumAgents(), comm.NumProducts())
		return comm, nil
	}

	opt := core.Options{
		Alpha: *alpha, AlphaSet: true,
		TrustThreshold: *trustThreshold,
		MaxNeighbors:   *maxNeighbors,
		CF:             cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}
	switch *metric {
	case "appleseed":
		opt.Metric = core.Appleseed
	case "advogato":
		opt.Metric = core.Advogato
	case "pathtrust":
		opt.Metric = core.PathTrust
	case "none":
		opt.Metric = core.NoTrust
	default:
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}

	stratCfg := strategy.Config{
		MinPeers:      *stratMinPeers,
		MinOverlap:    *stratMinOverlap,
		HopDecay:      *stratHopDecay,
		AncestorDepth: *stratAncestorDepth,
	}
	if *stratDisable != "" {
		for _, name := range strings.Split(*stratDisable, ",") {
			stratCfg.Disable = append(stratCfg.Disable, strategy.Procedure(strings.TrimSpace(name)))
		}
	}
	engCfg := engine.Config{ComputeBudget: *computeBudget, Strategy: stratCfg}

	// Build the engine: with -wal, walk the recovery ladder (compiled
	// checkpoint → older checkpoint → corpus snapshot + WAL replay →
	// corpus recompute); without, load the corpus directly.
	var eng *engine.Engine
	var recoverSeq uint64
	warmNeeded := *warm
	if *walDir != "" {
		res, err := checkpoint.Recover(checkpoint.RecoverConfig{
			WALDir:  *walDir,
			Options: opt,
			Engine:  engCfg,
			Corpus:  loadCorpus,
			Logf:    logger.Printf,
		})
		if err != nil {
			fatal(err)
		}
		logger.Printf("recovery: source=%s rung=%d epoch=%d seq=%d load=%v",
			res.Source, res.Rung, res.Epoch, res.Seq, res.Load.Round(time.Millisecond))
		eng = res.Engine
		recoverSeq = res.Seq
		if res.Rung <= 2 {
			// The checkpoint restored the warm caches; a warmup pass would
			// only recompute what the restart was meant to avoid.
			warmNeeded = false
			logger.Printf("serving warm from checkpoint %s", res.Path)
		}
	} else {
		comm, err := loadCorpus()
		if err != nil {
			fatal(err)
		}
		if comm.Taxonomy() == nil {
			opt.CF.Representation = cf.Product
		}
		eng, err = engine.New(comm, opt, engCfg)
		if err != nil {
			fatal(err)
		}
	}
	comm := eng.Snapshot().Community()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if warmNeeded {
		// Bounded by the shutdown context: a signal during warmup stops
		// the pass instead of grinding through the remaining corpus.
		res := eng.WarmupCtx(ctx, *warmupWorkers)
		logger.Printf("warmed %d agents in %v", res.Agents, res.Duration.Round(time.Millisecond))
	}

	// The ingest pipeline replays unapplied WAL records at Open and is
	// the engine's only swapper; the API submits mutations through it.
	var pipe *ingest.Pipeline
	apiCfg := api.Config{ReadBudget: *requestBudget, CompatDegraded: *compatDegraded}
	handler := api.NewWithConfig(eng, nil, apiCfg)
	if *walDir != "" {
		icfg := ingest.Config{CheckpointEvery: *ckptEvery, CheckpointRetain: *ckptRetain}
		var err error
		pipe, err = ingest.OpenFrom(eng, *walDir, icfg, recoverSeq)
		if err != nil {
			fatal(err)
		}
		if n := pipe.Replayed(); n > 0 {
			epoch, seq := pipe.Applied()
			logger.Printf("replayed %d WAL records (now epoch %d, seq %d)", n, epoch, seq)
		}
		handler = api.NewWithConfig(eng, pipe, apiCfg)
		logger.Printf("write endpoints enabled, WAL at %s", *walDir)
	}

	srv := &http.Server{
		Handler:           logRequests(logger, handler),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	sample := ""
	if ids := comm.Agents(); len(ids) > 0 {
		sample = url.PathEscape(string(ids[0]))
	}
	logger.Printf("listening on http://%s", ln.Addr())
	logger.Printf("  try: curl http://%s/v1/healthz", ln.Addr())
	logger.Printf("  try: curl 'http://%s/v1/agents/%s/recommendations?n=5'", ln.Addr(), sample)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		logger.Printf("signal received, draining for up to %v", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("forced shutdown: %v", err)
			_ = srv.Close()
		}
		if pipe != nil {
			// Checkpoint so the next start replays nothing, then drain.
			if err := pipe.Checkpoint(); err != nil {
				logger.Printf("checkpoint: %v", err)
			}
			if err := pipe.Close(); err != nil {
				logger.Printf("ingest close: %v", err)
			}
		}
		logger.Printf("bye")
	}
}

// logRequests emits one line per request: method, path, status, duration.
func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Printf("%s %s %d %v", r.Method, r.URL.RequestURI(), rec.status,
			time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swrecd:", err)
	os.Exit(1)
}
