// Command swrecd serves recommendations over a JSON HTTP API — the
// deployment face of an installation once its crawler has materialized a
// community view. The community comes from a corpus directory (written
// by `swrec export` or by a crawl) or is generated synthetically.
//
// Usage:
//
//	swrecd [-addr 127.0.0.1:8080] [-in DIR | -scale small|paper -seed N]
//	       [-metric appleseed|advogato|pathtrust|none] [-alpha 0.5]
//
// Endpoints (see internal/api):
//
//	GET /v1/stats
//	GET /v1/agents?limit=N
//	GET /v1/agents/{escaped-uri}
//	GET /v1/agents/{escaped-uri}/neighbors
//	GET /v1/agents/{escaped-uri}/profile
//	GET /v1/agents/{escaped-uri}/recommendations?n=10&novel=1
//	GET /v1/products/{escaped-id}
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"

	"swrec"
	"swrec/internal/api"
	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	inDir := flag.String("in", "", "corpus directory to serve (empty = generate)")
	scale := flag.String("scale", "small", "generated dataset scale: small | paper")
	seed := flag.Int64("seed", 1, "generation seed")
	metric := flag.String("metric", "appleseed", "trust metric: appleseed | advogato | pathtrust | none")
	alpha := flag.Float64("alpha", 0.5, "rank synthesization blend")
	flag.Parse()

	var comm *swrec.Community
	if *inDir != "" {
		var err error
		comm, err = swrec.ImportCorpus(*inDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving corpus %s: %d agents, %d products\n",
			*inDir, comm.NumAgents(), comm.NumProducts())
	} else {
		cfg := datagen.SmallScale()
		if *scale == "paper" {
			cfg = datagen.PaperScale()
		}
		cfg.Seed = *seed
		comm, _ = swrec.GenerateCommunity(cfg)
		fmt.Printf("serving generated %s community: %d agents, %d products\n",
			*scale, comm.NumAgents(), comm.NumProducts())
	}

	opt := core.Options{
		Alpha: *alpha, AlphaSet: true,
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}
	if comm.Taxonomy() == nil {
		opt.CF.Representation = cf.Product
	}
	switch *metric {
	case "appleseed":
		opt.Metric = core.Appleseed
	case "advogato":
		opt.Metric = core.Advogato
	case "pathtrust":
		opt.Metric = core.PathTrust
	case "none":
		opt.Metric = core.NoTrust
	default:
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}

	srv, err := api.New(comm, opt)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	sample := ""
	if ids := comm.Agents(); len(ids) > 0 {
		sample = url.PathEscape(string(ids[0]))
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())
	fmt.Printf("  try: curl http://%s/v1/stats\n", ln.Addr())
	fmt.Printf("  try: curl 'http://%s/v1/agents/%s/recommendations?n=5'\n", ln.Addr(), sample)
	if err := (&http.Server{Handler: srv}).Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swrecd:", err)
	os.Exit(1)
}
