// Command experiments regenerates the experiment tables of DESIGN.md's
// index (E1–E9), each validating one quantitative claim of the paper.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale small|medium|paper] [-seed N]
//
// With no -run flag every experiment runs in order. The paper scale uses
// the §4.1 corpus dimensions (9,100 agents, 9,953 books, >20k topics) and
// takes correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"swrec/internal/experiments"
)

// runner is one experiment entry point, erased to a common signature.
type runner struct {
	id    string
	title string
	run   func(io.Writer, experiments.Params) error
}

// wrap erases an experiment's typed result.
func wrap[T any](f func(io.Writer, experiments.Params) (T, error)) func(io.Writer, experiments.Params) error {
	return func(w io.Writer, p experiments.Params) error {
		_, err := f(w, p)
		return err
	}
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (e.g. E1,E4); empty = all")
	scale := flag.String("scale", "small", "dataset scale: small | medium | paper")
	seed := flag.Int64("seed", 1, "random seed (all experiments are deterministic given a seed)")
	flag.Parse()

	all := []runner{
		{"E1", "Example 1 topic score assignment", wrap(experiments.E1)},
		{"E2", "trust <-> similarity correlation", wrap(experiments.E2)},
		{"E3", "Appleseed convergence sweep", wrap(experiments.E3)},
		{"E4", "sybil manipulation resistance", wrap(experiments.E4)},
		{"E5", "profile overlap by representation", wrap(experiments.E5)},
		{"E6", "scalability of neighborhood prefiltering", wrap(experiments.E6)},
		{"E7", "rank synthesization quality (leave-one-out)", wrap(experiments.E7)},
		{"E8", "taxonomy shape impact", wrap(experiments.E8)},
		{"E9", "decentralized publish-crawl-recommend pipeline", wrap(experiments.E9)},
		{"E10", "automated stereotype generation (§6 extension)", wrap(experiments.E10)},
		{"E11", "topic diversification (taxonomy-program extension)", wrap(experiments.E11)},
	}

	selected := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range selected {
			found := false
			for _, r := range all {
				if r.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
		}
	}

	p := experiments.Params{Seed: *seed, Scale: *scale}
	fmt.Printf("swrec experiment harness — scale=%s seed=%d\n", *scale, *seed)
	start := time.Now()
	ran := 0
	for _, r := range all {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		t0 := time.Now()
		if err := r.run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", r.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	fmt.Printf("\n%d experiment(s) completed in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
