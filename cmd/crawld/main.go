// Command crawld demonstrates the decentralized deployment of §4 over
// real HTTP: it generates a community, publishes it as FOAF/RDF homepages
// (plus the global taxonomy and catalog documents) on a local HTTP
// server, crawls it back through the network stack into a persistent
// document store, and produces recommendations from the crawled view.
//
// Usage:
//
//	crawld [-addr 127.0.0.1:0] [-scale small|paper] [-seed 1]
//	       [-cache crawl-cache.log] [-serve]
//
// With -serve the process keeps the publisher running (for poking at the
// documents with curl) instead of exiting after the crawl.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"swrec"
	"swrec/internal/datagen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the publisher")
	scale := flag.String("scale", "small", "dataset scale: small | paper")
	seed := flag.Int64("seed", 1, "generation seed")
	cache := flag.String("cache", "", "path to a persistent crawl cache (empty = none)")
	serve := flag.Bool("serve", false, "keep serving after the crawl (Ctrl-C to stop)")
	flag.Parse()

	cfg := datagen.SmallScale()
	if *scale == "paper" {
		cfg = datagen.PaperScale()
	}
	cfg.Seed = *seed

	// The community's agent IDs must match the URL the server is actually
	// reachable under, so listen first and generate with that host.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	cfg.BaseHost = ln.Addr().String()
	comm, _ := swrec.GenerateCommunity(cfg)
	site := swrec.PublishSite(cfg.BaseHost, comm)

	srv := &http.Server{Handler: site}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	fmt.Printf("publishing %d agent homepages + catalog + taxonomy at http://%s/\n",
		comm.NumAgents(), cfg.BaseHost)
	fmt.Printf("  try: curl http://%s/people/a0\n", cfg.BaseHost)
	fmt.Printf("  try: curl http://%s/taxonomy.nt | head\n\n", cfg.BaseHost)

	// Crawl it back over real HTTP, seeding at the best-connected agent.
	var seedAgent swrec.AgentID
	best := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > best {
			best = d
			seedAgent = id
		}
	}
	cr := &swrec.Crawler{Client: http.DefaultClient, Concurrency: 16}
	if *cache != "" {
		st, err := swrec.OpenDocumentStore(*cache)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		cr.Cache = st
	}
	start := time.Now()
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]swrec.AgentID{seedAgent})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	cs := res.Community.ComputeStats()
	fmt.Printf("crawl finished in %v: %d fetched, %d from cache, %d failed\n",
		elapsed.Round(time.Millisecond), res.Stats.Fetched, res.Stats.FromCache, res.Stats.Failed)
	fmt.Printf("materialized: %d agents, %d products, %d trust edges, %d ratings\n",
		cs.Agents, cs.Products, cs.TrustEdges, cs.Ratings)
	if cr.Cache != nil {
		st := cr.Cache.Stats()
		fmt.Printf("cache: %d documents, %d bytes on disk\n", st.LiveKeys, st.FileBytes)
	}

	rec, err := swrec.NewRecommender(res.Community, swrec.Options{})
	if err != nil {
		fatal(err)
	}
	recs, err := rec.Recommend(seedAgent, 5)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntop recommendations for crawl seed %s:\n", seedAgent)
	for i, r := range recs {
		title := ""
		if p := res.Community.Product(r.Product); p != nil {
			title = p.Title
		}
		fmt.Printf("  %d. %s %s (score %.3f, %d supporters)\n",
			i+1, r.Product, title, r.Score, r.Supporters)
	}

	if *serve {
		fmt.Println("\nserving until interrupted...")
		select {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

func fatal(err error) {
	// Avoid raw %v on wrapped errors spanning lines in terminals.
	fmt.Fprintln(os.Stderr, "crawld:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
