package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const loadBaseline = `{
  "kind": "load",
  "scenario": "short",
  "planFingerprint": "aaaa",
  "metrics": {
    "recommendations.p99_ms": 10.0,
    "recommendations.error_rate": 0.0,
    "attack.sybil-ring.energy_share": 0.01,
    "slo.violations": 0
  }
}`

func loadRep(metrics map[string]float64) loadReport {
	return loadReport{Kind: "load", Scenario: "short", PlanFingerprint: "aaaa", Metrics: metrics}
}

func TestDiffLoadPassesWithinBounds(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         12.0, // 1.2x < 2x threshold
		"recommendations.error_rate":     0.01, // +0.01 < 0.05 abs
		"attack.sybil-ring.energy_share": 0.02,
		"slo.violations":                 0,
	})
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("within-bounds run failed the gate")
	}
}

func TestDiffLoadLatencyRatioGate(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         25.0, // 2.5x > 2x
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.01,
		"slo.violations":                 0,
	})
	if diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("2.5x latency growth passed a 2x gate")
	}
}

func TestDiffLoadAbsoluteGateIgnoresRatio(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	// 0.01 -> 0.03 energy is a 3x ratio but only +0.02 absolute: the
	// share metrics gate on absolute movement, not ratio.
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         10.0,
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.03,
		"slo.violations":                 0,
	})
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("+0.02 energy share failed a 0.05 absolute gate")
	}
	cur.Metrics["slo.violations"] = 1 // +1 > 0.05
	if diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("a new SLO violation passed the gate")
	}
}

func TestDiffLoadLatencyFloorAbsorbsJitter(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	// Sub-millisecond tails routinely jitter 4x between identical runs;
	// the -ms floor keeps that from failing while a regression that is
	// both 2x+ and 2ms+ still does.
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         10.0,
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.01,
		"slo.violations":                 0,
		"topic.p99_ms":                   1.3, // 4.1x of 0.319 but < 2ms growth
	})
	baseWithTopic := writeBaseline(t, strings.Replace(loadBaseline,
		`"slo.violations": 0`, `"slo.violations": 0, "topic.p99_ms": 0.319`, 1))
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("new topic key failed the gate")
	}
	if !diffLoad(cur, baseWithTopic, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("sub-ms 4x jitter under the 2ms floor failed the gate")
	}
	cur.Metrics["topic.p99_ms"] = 4.0 // 12.5x and +3.7ms: both bars cleared
	if diffLoad(cur, baseWithTopic, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("12x / +3.7ms latency regression passed the gate")
	}
}

func TestDiffLoadP999NeverGated(t *testing.T) {
	base := writeBaseline(t, strings.Replace(loadBaseline,
		`"slo.violations": 0`, `"slo.violations": 0, "write_rating.p999_ms": 48.0`, 1))
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         10.0,
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.01,
		"slo.violations":                 0,
		"write_rating.p999_ms":           480.0, // 10x tail: max of ~250 samples
	})
	var out strings.Builder
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, &out) {
		t.Errorf("p999 tail failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Errorf("p999 not reported as ungated tail:\n%s", out.String())
	}
}

func TestDiffLoadRungGoneInformational(t *testing.T) {
	base := writeBaseline(t, strings.Replace(loadBaseline,
		`"slo.violations": 0`, `"slo.violations": 0, "rung.degraded-cache.p99_ms": 0.5`, 1))
	// Which rungs fire depends on run timing; a baseline rung absent
	// from this run must not fail the gate the way endpoint or attack
	// coverage loss does.
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         10.0,
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.01,
		"slo.violations":                 0,
	})
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("a rung unexercised this run failed the gate")
	}
}

func TestDiffLoadMissingMetricFails(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":     10.0,
		"recommendations.error_rate": 0.0,
		"slo.violations":             0,
		// attack.sybil-ring.energy_share vanished: coverage rot.
	})
	var out strings.Builder
	if diffLoad(cur, base, 1.0, 0.05, 2.0, &out) {
		t.Error("run missing a baseline metric passed the gate")
	}
	if !strings.Contains(out.String(), "GONE") {
		t.Errorf("missing metric not reported as GONE:\n%s", out.String())
	}
}

func TestDiffLoadNewMetricInformational(t *testing.T) {
	base := writeBaseline(t, loadBaseline)
	cur := loadRep(map[string]float64{
		"recommendations.p99_ms":         10.0,
		"recommendations.error_rate":     0.0,
		"attack.sybil-ring.energy_share": 0.01,
		"slo.violations":                 0,
		"neighbors.p99_ms":               500.0, // new key, however ugly
	})
	if !diffLoad(cur, base, 1.0, 0.05, 2.0, io.Discard) {
		t.Error("a metric new to this run failed the gate")
	}
}

func TestParseLoadReportDetection(t *testing.T) {
	if _, ok := parseLoadReport([]byte(loadBaseline)); !ok {
		t.Error("load report not detected")
	}
	if _, ok := parseLoadReport([]byte(`{"benchmarks": []}`)); ok {
		t.Error("bench report misdetected as load report")
	}
	if _, ok := parseLoadReport([]byte("BenchmarkFoo 10 5 ns/op")); ok {
		t.Error("bench text misdetected as load report")
	}
}

const benchBaseline = `{
  "benchmarks": [
    {"package": "p", "name": "BenchmarkHot", "iterations": 100, "ns_per_op": 1000, "allocs_per_op": 8},
    {"package": "p", "name": "BenchmarkZeroAlloc", "iterations": 100, "ns_per_op": 500}
  ]
}`

func TestDiffBenchUnmeasuredAllocsNotGated(t *testing.T) {
	base := writeBaseline(t, benchBaseline)
	// A run without -benchmem parses to AllocsMeasured=false. The old
	// code scored 0 allocs as a 0.00x "improvement" and silently waved
	// the gate through; now it must pass explicitly as not-gated while
	// ns/op still gates.
	rep := report{Benchmarks: []result{
		{Package: "p", Name: "BenchmarkHot", Iterations: 100, NsPerOp: 1050},
		{Package: "p", Name: "BenchmarkZeroAlloc", Iterations: 100, NsPerOp: 500},
	}}
	var out strings.Builder
	if !diffAgainst(rep, base, 0.20, &out) {
		t.Errorf("alloc-less run failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not measured") {
		t.Errorf("unmeasured allocs not called out:\n%s", out.String())
	}
	rep.Benchmarks[0].NsPerOp = 5000 // ns regression still caught
	if diffAgainst(rep, base, 0.20, io.Discard) {
		t.Error("5x ns/op regression passed because allocs were unmeasured")
	}
}

func TestDiffBenchZeroAllocBaselineBroken(t *testing.T) {
	base := writeBaseline(t, benchBaseline)
	// One allocation against a zero-alloc baseline: ratio(1, 0) == 1
	// slipped under every threshold in the old code.
	rep := report{Benchmarks: []result{
		{Package: "p", Name: "BenchmarkHot", Iterations: 100, NsPerOp: 1000, AllocsOp: 8, AllocsMeasured: true},
		{Package: "p", Name: "BenchmarkZeroAlloc", Iterations: 100, NsPerOp: 500, AllocsOp: 1, AllocsMeasured: true},
	}}
	var out strings.Builder
	if diffAgainst(rep, base, 0.20, &out) {
		t.Errorf("broken zero-alloc baseline passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "zero-alloc baseline broken") {
		t.Errorf("zero-alloc break not called out:\n%s", out.String())
	}
}

func TestParseBenchAllocsMeasured(t *testing.T) {
	r, ok := parseBench("BenchmarkFoo-8  200  2495 ns/op  184 B/op  5 allocs/op", "p")
	if !ok || !r.AllocsMeasured || r.AllocsOp != 5 {
		t.Fatalf("with -benchmem: %+v ok=%v", r, ok)
	}
	r, ok = parseBench("BenchmarkFoo-8  200  2495 ns/op", "p")
	if !ok || r.AllocsMeasured {
		t.Fatalf("without -benchmem: %+v ok=%v", r, ok)
	}
}
