// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark results can be archived and diffed across
// commits (see `make bench`, which writes BENCH_engine.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_engine.json
//	go test -bench=. -benchmem ./... | benchjson -diff BENCH_engine.json
//
// With -diff, the parsed results are compared against the archived
// baseline instead of written out: every benchmark present in both is
// reported with its ns/op and allocs/op ratios, and the process exits 1
// when any ratio exceeds 1+threshold (-threshold, default 0.20) — the
// regression gate behind `make bench-diff`. Benchmarks new to this run
// or missing from it are noted but never fail the gate, so partial runs
// (the short form in `make check`) stay usable.
//
// The bench output is echoed to stdout unchanged, so piping through
// benchjson costs no visibility. Lines that are not benchmark results
// (PASS, ok, test logs) are ignored; goos/goarch/cpu/pkg context lines
// annotate the records that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// report is the document benchjson emits.
type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout only)")
	diff := flag.String("diff", "", "compare against this baseline JSON instead of writing; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.20, "with -diff: allowed fractional ns/op and allocs/op growth before failing")
	flag.Parse()

	rep := report{Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass-through
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *diff != "" {
		if !diffAgainst(rep, *diff, *threshold) {
			os.Exit(1)
		}
		return
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// diffAgainst compares the run's results to the baseline file and
// reports per-benchmark ns/op and allocs/op ratios. Returns false when
// any benchmark present in both regressed beyond 1+threshold. New and
// missing benchmarks are informational only: the gate must stay usable
// for partial runs.
func diffAgainst(rep report, baselinePath string, threshold float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	byKey := make(map[string]result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byKey[b.Package+"\x00"+b.Name] = b
	}

	fmt.Printf("\nbenchjson diff vs %s (threshold %+.0f%%)\n", baselinePath, threshold*100)
	ok, compared := true, 0
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		key := r.Package + "\x00" + r.Name
		seen[key] = true
		b, found := byKey[key]
		if !found {
			fmt.Printf("  NEW   %-52s %12.0f ns/op %8d allocs/op (no baseline)\n", r.Name, r.NsPerOp, r.AllocsOp)
			continue
		}
		compared++
		nsRatio := ratio(r.NsPerOp, b.NsPerOp)
		allocRatio := ratio(float64(r.AllocsOp), float64(b.AllocsOp))
		verdict := "ok"
		if nsRatio > 1+threshold || allocRatio > 1+threshold {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("  %-5s %-52s ns/op %.0f -> %.0f (%.2fx)  allocs/op %d -> %d (%.2fx)\n",
			verdict, r.Name, b.NsPerOp, r.NsPerOp, nsRatio, b.AllocsOp, r.AllocsOp, allocRatio)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Package+"\x00"+b.Name] {
			fmt.Printf("  SKIP  %-52s (in baseline, not in this run)\n", b.Name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark overlapped the baseline")
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond %+.0f%% against %s\n", threshold*100, baselinePath)
	}
	return ok
}

// ratio guards the division: a zero baseline compares as neutral unless
// the new value is nonzero, in which case it is an unbounded regression
// only when meaningful (allocs going 0 -> n).
func ratio(cur, old float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 1
		}
		return cur // vs 0: treat the raw value as the factor
	}
	return cur / old
}

// parseBench parses one benchmark result line:
//
//	BenchmarkName/sub=1-8  200  2495 ns/op  0.40 MB/s  184 B/op  5 allocs/op
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	r := result{Package: pkg, Name: fields[0]}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	return r, seen
}
