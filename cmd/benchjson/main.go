// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark results can be archived and diffed across
// commits (see `make bench`, which writes BENCH_engine.json). It also
// diffs the load harness's BENCH_load.json artifacts (see `make load`).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_engine.json
//	go test -bench=. -benchmem ./... | benchjson -diff BENCH_engine.json
//	benchjson -in bin/BENCH_load.json -diff BENCH_load.json -threshold 2.0
//
// With -diff, the parsed results are compared against the archived
// baseline instead of written out: every benchmark present in both is
// reported with its ns/op and allocs/op ratios, and the process exits 1
// when any ratio exceeds 1+threshold (-threshold, default 0.20) — the
// regression gate behind `make bench-diff`. Benchmarks new to this run
// or missing from it are noted but never fail the gate, so partial runs
// (the short form in `make check`) stay usable. Two asymmetries guard
// the alloc comparison: a run without -benchmem never scores 0 allocs
// as an improvement over a measured baseline, and allocations appearing
// where the baseline had none always fail regardless of ratio.
//
// With -in FILE the input is read from FILE instead of stdin. When the
// file is a load report (swrecload writes `"kind": "load"`), -diff
// switches to metric mode: every key in the report's flat metrics map
// is higher-is-worse. Latency (*_ms) keys are the noisy dimension and
// fail only when both the ratio exceeds 1+threshold and the absolute
// increase exceeds -ms — the floor keeps sub-millisecond scheduler
// jitter (routinely 4x on an idle tail) from flaking the gate while a
// genuine serving-path regression clears both bars. *.p999_ms keys are
// reported but never gated: in the short scenario they are the max of
// a few hundred samples. All other keys (error rates, energy shares,
// rank perturbations, violation counts) are exactly reproducible for a
// fixed plan fingerprint and gate on absolute increase beyond -abs.
// Unlike bench mode, a baseline metric missing from the run fails the
// gate — losing a metric silently is exactly the kind of coverage rot
// the artifact exists to catch — except rung.* keys, whose presence
// depends on which degradation rungs the timing of the run happened to
// exercise.
//
// The bench output is echoed to stdout unchanged, so piping through
// benchjson costs no visibility. Lines that are not benchmark results
// (PASS, ok, test logs) are ignored; goos/goarch/cpu/pkg context lines
// annotate the records that follow them.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`

	// AllocsMeasured distinguishes "0 allocs/op" from "run without
	// -benchmem" for the current run; baselines carry the distinction in
	// AllocsOp > 0.
	AllocsMeasured bool `json:"-"`
}

// report is the document benchjson emits.
type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// loadReport is the slice of swrecload's BENCH_load.json that the
// metric diff needs.
type loadReport struct {
	Kind            string             `json:"kind"`
	Scenario        string             `json:"scenario"`
	PlanFingerprint string             `json:"planFingerprint"`
	Metrics         map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout only)")
	diff := flag.String("diff", "", "compare against this baseline JSON instead of writing; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.20, "with -diff: allowed fractional growth for ns/op, allocs/op, and load *_ms metrics")
	absTol := flag.Float64("abs", 0.05, "with -diff on a load report: allowed absolute increase for non-latency metrics")
	msFloor := flag.Float64("ms", 2.0, "with -diff on a load report: *_ms keys only fail when they also grew by this many milliseconds")
	in := flag.String("in", "", "read input from FILE instead of stdin (a BENCH_load.json report switches -diff to metric mode)")
	flag.Parse()

	var input io.Reader = os.Stdin
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if lr, ok := parseLoadReport(data); ok {
			if *diff == "" {
				fmt.Fprintln(os.Stderr, "benchjson: -in is a load report; it only supports -diff BASELINE")
				os.Exit(1)
			}
			if !diffLoad(lr, *diff, *threshold, *absTol, *msFloor, os.Stdout) {
				os.Exit(1)
			}
			return
		}
		input = bytes.NewReader(data)
	}

	rep, err := parseBenchStream(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *diff != "" {
		if !diffAgainst(rep, *diff, *threshold, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseLoadReport detects and decodes a swrecload artifact.
func parseLoadReport(data []byte) (loadReport, bool) {
	var lr loadReport
	if err := json.Unmarshal(data, &lr); err != nil || lr.Kind != "load" {
		return loadReport{}, false
	}
	return lr, true
}

// parseBenchStream reads `go test -bench` text, echoing it unchanged.
func parseBenchStream(r io.Reader) (report, error) {
	rep := report{Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass-through
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, sc.Err()
}

// diffLoad gates a load report's metrics against a baseline artifact.
// Every metric is higher-is-worse. Latency (*_ms) fails only when the
// ratio exceeds 1+threshold AND the growth exceeds msFloor
// milliseconds, and *.p999_ms is never gated (see the package doc);
// everything else is deterministic for a fixed plan and gates on
// absolute increase beyond absTol. Metrics that vanished from the run
// fail, except timing-dependent rung.* keys; new metrics are
// informational.
func diffLoad(cur loadReport, baselinePath string, threshold, absTol, msFloor float64, w io.Writer) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	base, isLoad := parseLoadReport(data)
	if !isLoad {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s is not a load report\n", baselinePath)
		return false
	}
	fmt.Fprintf(w, "\nbenchjson load diff vs %s (latency threshold %.2fx, absolute tolerance %.3g)\n",
		baselinePath, 1+threshold, absTol)
	if cur.PlanFingerprint != base.PlanFingerprint {
		fmt.Fprintf(w, "  note: plan fingerprint %s != baseline %s — scenarios differ, comparison is indicative only\n",
			cur.PlanFingerprint, base.PlanFingerprint)
	}
	ok, compared := true, 0
	for _, k := range sortedMetricKeys(cur.Metrics) {
		c := cur.Metrics[k]
		b, found := base.Metrics[k]
		if !found {
			fmt.Fprintf(w, "  NEW        %-44s %.4g (no baseline)\n", k, c)
			continue
		}
		compared++
		if strings.HasSuffix(k, ".p999_ms") {
			fmt.Fprintf(w, "  tail       %-44s %.3f -> %.3f ms (%.2fx, not gated)\n", k, b, c, ratio(c, b))
			continue
		}
		if strings.HasSuffix(k, "_ms") {
			r := ratio(c, b)
			verdict := "ok"
			if r > 1+threshold && c-b > msFloor {
				verdict = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "  %-10s %-44s %.3f -> %.3f ms (%.2fx)\n", verdict, k, b, c, r)
			continue
		}
		verdict := "ok"
		if c-b > absTol {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "  %-10s %-44s %.4g -> %.4g (%+.4g)\n", verdict, k, b, c, c-b)
	}
	for _, k := range sortedMetricKeys(base.Metrics) {
		if _, found := cur.Metrics[k]; !found {
			if strings.HasPrefix(k, "rung.") {
				fmt.Fprintf(w, "  SKIP       %-44s (rung not exercised this run)\n", k)
				continue
			}
			fmt.Fprintf(w, "  GONE       %-44s baseline metric missing from this run\n", k)
			ok = false
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no metric overlapped the baseline")
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: load metrics regressed against %s\n", baselinePath)
	}
	return ok
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diffAgainst compares the run's results to the baseline file and
// reports per-benchmark ns/op and allocs/op ratios. Returns false when
// any benchmark present in both regressed beyond 1+threshold. New and
// missing benchmarks are informational only: the gate must stay usable
// for partial runs.
func diffAgainst(rep report, baselinePath string, threshold float64, w io.Writer) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	byKey := make(map[string]result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byKey[b.Package+"\x00"+b.Name] = b
	}

	fmt.Fprintf(w, "\nbenchjson diff vs %s (threshold %+.0f%%)\n", baselinePath, threshold*100)
	ok, compared := true, 0
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		key := r.Package + "\x00" + r.Name
		seen[key] = true
		b, found := byKey[key]
		if !found {
			fmt.Fprintf(w, "  NEW   %-52s %12.0f ns/op %8d allocs/op (no baseline)\n", r.Name, r.NsPerOp, r.AllocsOp)
			continue
		}
		compared++
		nsRatio := ratio(r.NsPerOp, b.NsPerOp)
		verdict := "ok"
		if nsRatio > 1+threshold {
			verdict = "REGRESSION"
			ok = false
		}
		allocs := fmt.Sprintf("allocs/op %d -> %d (%.2fx)", b.AllocsOp, r.AllocsOp,
			ratio(float64(r.AllocsOp), float64(b.AllocsOp)))
		switch {
		case b.AllocsOp > 0 && !r.AllocsMeasured:
			// Without -benchmem the run reports no allocation data; 0
			// must not read as an improvement — or worse, silently pass
			// a gate the baseline meant to hold.
			allocs = fmt.Sprintf("allocs/op %d -> not measured (run without -benchmem; not gated)", b.AllocsOp)
		case b.AllocsOp == 0 && r.AllocsOp > 0:
			// A zero-alloc baseline is a property, not a ratio: any
			// allocation at all breaks it, no threshold applies.
			verdict = "REGRESSION"
			ok = false
			allocs = fmt.Sprintf("allocs/op 0 -> %d (zero-alloc baseline broken)", r.AllocsOp)
		default:
			if ratio(float64(r.AllocsOp), float64(b.AllocsOp)) > 1+threshold {
				verdict = "REGRESSION"
				ok = false
			}
		}
		fmt.Fprintf(w, "  %-5s %-52s ns/op %.0f -> %.0f (%.2fx)  %s\n",
			verdict, r.Name, b.NsPerOp, r.NsPerOp, nsRatio, allocs)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Package+"\x00"+b.Name] {
			fmt.Fprintf(w, "  SKIP  %-52s (in baseline, not in this run)\n", b.Name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark overlapped the baseline")
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond %+.0f%% against %s\n", threshold*100, baselinePath)
	}
	return ok
}

// ratio guards the division: a zero baseline compares as neutral when
// the new value is also zero; nonzero-over-zero cases are handled by
// the callers (the bench path treats them as broken zero-alloc
// baselines, the load path gates on absolute increase instead).
func ratio(cur, old float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 1
		}
		return cur // vs 0: treat the raw value as the factor
	}
	return cur / old
}

// parseBench parses one benchmark result line:
//
//	BenchmarkName/sub=1-8  200  2495 ns/op  0.40 MB/s  184 B/op  5 allocs/op
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	r := result{Package: pkg, Name: fields[0]}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
			r.AllocsMeasured = true
		}
	}
	return r, seen
}
