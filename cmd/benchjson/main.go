// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark results can be archived and diffed across
// commits (see `make bench`, which writes BENCH_engine.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_engine.json
//
// The bench output is echoed to stdout unchanged, so piping through
// benchjson costs no visibility. Lines that are not benchmark results
// (PASS, ok, test logs) are ignored; goos/goarch/cpu/pkg context lines
// annotate the records that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// report is the document benchjson emits.
type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout only)")
	flag.Parse()

	rep := report{Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass-through
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBench parses one benchmark result line:
//
//	BenchmarkName/sub=1-8  200  2495 ns/op  0.40 MB/s  184 B/op  5 allocs/op
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	r := result{Package: pkg, Name: fields[0]}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	return r, seen
}
