// Trustnet: the trust-metric story of §3.2 in isolation — Appleseed's
// continuous ranks against Advogato's boolean decisions on the same
// network, and the profile-cloning sybil attack that trust filtering
// deflects while pure collaborative filtering falls for it.
//
//	go run ./examples/trustnet
package main

import (
	"fmt"
	"log"

	"swrec"
)

func main() {
	cfg := swrec.SmallDataset()
	cfg.Seed = 3
	comm, _ := swrec.GenerateCommunity(cfg)

	var source swrec.AgentID
	best := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > best {
			best = d
			source = id
		}
	}
	fmt.Printf("source agent: %s (trusts %d peers directly)\n\n", source, best)

	// Appleseed: continuous trust ranks from spreading activation.
	apple, err := swrec.NewRecommender(comm, swrec.Options{Metric: swrec.MetricAppleseed})
	if err != nil {
		log.Fatal(err)
	}
	nb, err := apple.Neighborhood(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Appleseed: %d peers in range, converged in %d iterations\n",
		len(nb.Ranks), nb.Iterations)
	for i, r := range nb.Top(8) {
		fmt.Printf("  %2d. %-40s rank %.3f\n", i+1, r.Agent, r.Trust)
	}

	// Advogato: boolean accept/reject via max-flow — "latter metric can
	// only make boolean decisions with respect to trustworthiness".
	adv, err := swrec.NewRecommender(comm, swrec.Options{Metric: swrec.MetricAdvogato})
	if err != nil {
		log.Fatal(err)
	}
	anb, err := adv.Neighborhood(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAdvogato: %d peers accepted (every rank is 1 — boolean)\n", len(anb.Ranks))

	// The §3.2 attack: sybils clone the source's profile and push a
	// product.
	push := swrec.ProductID("urn:isbn:pushed-by-sybils")
	sybils := swrec.InjectSybils(comm, source, 20, push)
	fmt.Printf("\ninjected %d sybils cloning %s's profile, all pushing %s\n",
		len(sybils), source, push)

	pure, err := swrec.NewRecommender(comm, swrec.Options{
		Metric: swrec.MetricNone, AlphaSet: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	pureRecs, err := pure.Recommend(source, 10)
	if err != nil {
		log.Fatal(err)
	}
	report("pure CF (no trust)", pureRecs, push)

	hybrid, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	hybridRecs, err := hybrid.Recommend(source, 10)
	if err != nil {
		log.Fatal(err)
	}
	report("trust-filtered hybrid", hybridRecs, push)
}

func report(name string, recs []swrec.Recommendation, push swrec.ProductID) {
	for i, r := range recs {
		if r.Product == push {
			fmt.Printf("  %-22s pushed product at rank %d — attack SUCCEEDED\n", name+":", i+1)
			return
		}
	}
	fmt.Printf("  %-22s pushed product not recommended — attack blocked\n", name+":")
}
