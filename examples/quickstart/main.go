// Quickstart: build a small book community by hand — the books of the
// paper's Example 1 on the Figure 1 taxonomy fragment — and ask for
// recommendations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"swrec"
)

func main() {
	// The taxonomy C and catalog B are the globally accessible part of
	// the information model (§3.1). Fig1Taxonomy is the paper's Amazon
	// book taxonomy fragment.
	tax := swrec.Fig1Taxonomy()
	comm := swrec.NewCommunity(tax)

	topic := func(q string) swrec.Topic {
		d, ok := tax.Lookup(q)
		if !ok {
			log.Fatalf("unknown topic %s", q)
		}
		return d
	}
	algebra := topic("Books/Science/Mathematics/Pure/Algebra")
	applied := topic("Books/Science/Mathematics/Applied")
	fiction := topic("Books/Fiction")
	physics := topic("Books/Science/Physics")

	// Products carry topic descriptors f(b) — several per product, since
	// "classification into one single category generally entails loss of
	// precision".
	for _, p := range []swrec.Product{
		{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis", Topics: []swrec.Topic{algebra, applied}},
		{ID: "urn:isbn:9780802713315", Title: "Fermat's Enigma", Topics: []swrec.Topic{applied}},
		{ID: "urn:isbn:9780553380958", Title: "Snow Crash", Topics: []swrec.Topic{fiction}},
		{ID: "urn:isbn:9780441569595", Title: "Neuromancer", Topics: []swrec.Topic{fiction}},
		{ID: "urn:isbn:9780387942223", Title: "Linear Algebra Done Right", Topics: []swrec.Topic{algebra}},
		{ID: "urn:isbn:9780679745587", Title: "A Brief History of Time", Topics: []swrec.Topic{physics}},
	} {
		comm.AddProduct(p)
	}

	// Agents publish partial trust functions t_i and rating functions
	// r_i, both in [-1, +1]; absence is ⊥, distinct from distrust.
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	check(comm.SetTrust("http://example.org/alice", "http://example.org/bob", 0.9))
	check(comm.SetTrust("http://example.org/alice", "http://example.org/carol", 0.6))
	check(comm.SetTrust("http://example.org/bob", "http://example.org/dave", 0.8))

	check(comm.SetRating("http://example.org/alice", "urn:isbn:9780521386326", 1))
	check(comm.SetRating("http://example.org/alice", "urn:isbn:9780553380958", 0.4))
	check(comm.SetRating("http://example.org/bob", "urn:isbn:9780521386326", 0.8))
	check(comm.SetRating("http://example.org/bob", "urn:isbn:9780387942223", 1))
	check(comm.SetRating("http://example.org/bob", "urn:isbn:9780802713315", 0.7))
	check(comm.SetRating("http://example.org/carol", "urn:isbn:9780441569595", 0.9))
	check(comm.SetRating("http://example.org/dave", "urn:isbn:9780679745587", 0.8))

	// The default pipeline: Appleseed trust neighborhood + taxonomy-based
	// profile similarity, blended with α = 0.5, peers voting for their
	// appreciated products.
	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	peers, err := rec.RankedPeers("http://example.org/alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank-synthesized peers for alice:")
	for _, p := range peers {
		fmt.Printf("  %-28s trust=%.2f sim=%.2f -> weight=%.2f\n",
			p.Agent, p.Trust, p.Sim, p.Weight)
	}

	recs, err := rec.Recommend("http://example.org/alice", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecommendations for alice:")
	for i, r := range recs {
		fmt.Printf("  %d. %s (score %.2f, %d supporter(s))\n",
			i+1, comm.Product(r.Product).Title, r.Score, r.Supporters)
	}
}
