// Bookclub: an All Consuming-style community (§4.1) — a generated corpus
// of agents, trust edges, and implicit book votes over a deep taxonomy —
// compared across the recommendation strategies the paper discusses:
// the hybrid pipeline, pure trust, pure similarity, and the
// novel-categories content scheme of §3.4.
//
//	go run ./examples/bookclub
package main

import (
	"fmt"
	"log"

	"swrec"
)

func main() {
	cfg := swrec.SmallDataset()
	cfg.Seed = 7
	comm, meta := swrec.GenerateCommunity(cfg)
	fmt.Printf("generated community: %d readers, %d books, %d interest clusters\n",
		comm.NumAgents(), comm.NumProducts(), meta.Config.Clusters)

	// Pick a well-connected reader as the active user.
	var active swrec.AgentID
	best := -1
	for _, id := range comm.Agents() {
		a := comm.Agent(id)
		if len(a.Trust)+len(a.Ratings) > best {
			best = len(a.Trust) + len(a.Ratings)
			active = id
		}
	}
	fmt.Printf("active reader: %s (%d trust statements, %d ratings)\n\n",
		active, len(comm.Agent(active).Trust), len(comm.Agent(active).Ratings))

	strategies := []struct {
		name string
		opt  swrec.Options
	}{
		{"hybrid (Appleseed + taxonomy CF, α=0.5)", swrec.Options{}},
		{"pure trust (α=1)", swrec.Options{Alpha: 1}},
		{"pure similarity (no trust filter)", swrec.Options{
			Metric: swrec.MetricNone, AlphaSet: true,
		}},
		{"novel categories only (§3.4 incentive scheme)", swrec.Options{
			Content: swrec.ContentNovelCategories,
		}},
	}
	for _, s := range strategies {
		rec, err := swrec.NewRecommender(comm, s.opt)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := rec.Recommend(active, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", s.name)
		if len(recs) == 0 {
			fmt.Println("  (nothing to recommend)")
		}
		for i, r := range recs {
			p := comm.Product(r.Product)
			topics := ""
			if len(p.Topics) > 0 {
				topics = comm.Taxonomy().QualifiedName(p.Topics[0])
			}
			fmt.Printf("  %d. %-12s score %.2f  %d supporters  [%s]\n",
				i+1, p.Title, r.Score, r.Supporters, topics)
		}
		fmt.Println()
	}
}
