// Decentralized: the full §4 deployment loop on a virtual multi-host
// Semantic Web — two communities published on different hosts whose
// agents trust each other across host boundaries, a crawler that
// materializes the federated view from FOAF/RDF documents, and a
// recommendation computed locally from the crawl, exactly as the paper's
// architecture prescribes ("all user and rating data distributed
// throughout the Semantic Web", computation local to one agent).
//
//	go run ./examples/decentralized
package main

import (
	"context"
	"fmt"
	"log"

	"swrec"
)

func main() {
	// Two independent book communities on two virtual hosts. They share
	// the global taxonomy and catalog (§3.1: those "must hold globally"),
	// published by the first site.
	cfgA := swrec.SmallDataset()
	cfgA.Seed = 11
	cfgA.Agents = 60
	cfgA.BaseHost = "alpha.example"
	commA, _ := swrec.GenerateCommunity(cfgA)

	cfgB := cfgA
	cfgB.Seed = 12
	cfgB.BaseHost = "beta.example"
	commB, _ := swrec.GenerateCommunity(cfgB)

	siteA := swrec.PublishSite("alpha.example", commA)
	siteB := swrec.PublishSite("beta.example", commB)

	// Weave cross-host acquaintance: some alpha agents trust beta agents.
	aIDs, bIDs := commA.Agents(), commB.Agents()
	for i := 0; i < 10; i++ {
		if err := commA.SetTrust(aIDs[i], bIDs[i], 0.8); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("published two communities: alpha.example (60 agents), beta.example (60 agents)")
	fmt.Println("with 10 cross-host trust edges alpha -> beta")

	var in swrec.Internet
	in.RegisterSite(siteA)
	in.RegisterSite(siteB)

	seed := aIDs[0]
	res, err := swrec.Crawl(context.Background(), in.Client(),
		siteA.TaxonomyURL(), siteA.CatalogURL(), []swrec.AgentID{seed})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Community.ComputeStats()
	fmt.Printf("\ncrawl from %s:\n", seed)
	fmt.Printf("  %d documents fetched, %d failed\n", res.Stats.Fetched, res.Stats.Failed)
	fmt.Printf("  materialized %d agents, %d trust edges, %d ratings\n",
		st.Agents, st.TrustEdges, st.Ratings)

	crossHost := 0
	for _, id := range res.Community.Agents() {
		if len(id) > len("http://beta") && id[:len("http://beta")] == "http://beta" {
			crossHost++
		}
	}
	fmt.Printf("  %d beta.example agents reached across the host boundary\n", crossHost)

	// Recommendation computed locally on the crawled, federated view.
	rec, err := swrec.NewRecommender(res.Community, swrec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	recs, err := rec.Recommend(seed, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal recommendations for %s from the federated crawl:\n", seed)
	if len(recs) == 0 {
		fmt.Println("  (none — try another seed)")
	}
	for i, r := range recs {
		title := r.Product
		if p := res.Community.Product(r.Product); p != nil && p.Title != "" {
			title = swrec.ProductID(p.Title)
		}
		fmt.Printf("  %d. %s (score %.2f, %d supporters)\n", i+1, title, r.Score, r.Supporters)
	}
}
