// Stereotypes: the §6 future-work direction — "automated stereotype
// generation and efficient behavior modelling" — on a generated
// community: learn prototypical interest profiles with spherical k-means
// over taxonomy profiles, describe them by their dominant branches,
// classify a fresh agent, and use stereotype membership as a cheap
// candidate pre-filter for collaborative filtering.
//
//	go run ./examples/stereotypes
package main

import (
	"fmt"
	"log"

	"swrec"
)

func main() {
	cfg := swrec.SmallDataset()
	cfg.Seed = 21
	cfg.ClusterFidelity = 0.9
	comm, meta := swrec.GenerateCommunity(cfg)
	fmt.Printf("community: %d agents over %d hidden interest clusters\n\n",
		comm.NumAgents(), meta.Config.Clusters)

	m, err := swrec.LearnStereotypes(comm, swrec.StereotypeOptions{K: meta.Config.Clusters})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d stereotypes (cohesion %.3f, purity vs ground truth %.3f)\n\n",
		m.K(), m.Cohesion, m.Purity(meta.AgentCluster))

	for k := 0; k < m.K(); k++ {
		fmt.Printf("stereotype %d — %d members, reads mostly:\n", k, m.Sizes[k])
		for _, tw := range m.TopTopics(k, 3) {
			fmt.Printf("   %-45s %.3f\n",
				comm.Taxonomy().QualifiedName(swrec.Topic(tw.Topic)), tw.Weight)
		}
	}

	// Behavior modelling: classify an agent by its profile alone.
	probe := comm.Agents()[17]
	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k, sim, ok := m.Classify(rec.Filter().ProfileOf(probe))
	if ok {
		fmt.Printf("\nagent %s classifies into stereotype %d (similarity %.3f);\n", probe, k, sim)
		fmt.Printf("ground-truth cluster: %d\n", meta.AgentCluster[probe])
	}

	// Efficient pre-filtering: CF restricted to the agent's stereotype.
	fast, err := swrec.NewRecommender(comm, swrec.Options{
		AlphaSet: true, // similarity-only weights over the candidate set
		CF:       swrec.CFOptions{Measure: swrec.MeasureCosine, Representation: swrec.ReprTaxonomy},
		Candidates: func(active swrec.AgentID) []swrec.AgentID {
			kk, ok := m.Assignment[active]
			if !ok {
				return nil
			}
			return m.Members(kk)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	peers, err := fast.RankedPeers(probe)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := fast.Recommend(probe, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstereotype-restricted CF: %d candidates instead of %d; top picks:\n",
		len(peers), comm.NumAgents()-1)
	for i, r := range recs {
		fmt.Printf("  %d. %s (score %.2f)\n", i+1, comm.Product(r.Product).Title, r.Score)
	}
}
