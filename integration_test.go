package swrec_test

import (
	"context"
	"strings"
	"testing"

	"swrec"
)

// TestEndToEndCentralized exercises the public API on a generated
// community: build, recommend, inspect peers.
func TestEndToEndCentralized(t *testing.T) {
	comm, meta := swrec.GenerateCommunity(swrec.SmallDataset())
	if comm.NumAgents() != meta.Config.Agents {
		t.Fatalf("agents = %d, want %d", comm.NumAgents(), meta.Config.Agents)
	}
	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find an agent with both ratings and trust edges.
	var active swrec.AgentID
	for _, id := range comm.Agents() {
		a := comm.Agent(id)
		if len(a.Ratings) >= 3 && len(a.Trust) >= 2 {
			active = id
			break
		}
	}
	if active == "" {
		t.Fatal("no suitable active agent generated")
	}
	peers, err := rec.RankedPeers(active)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) == 0 {
		t.Fatal("no ranked peers")
	}
	recs, err := rec.Recommend(active, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range recs {
		if _, rated := comm.Agent(active).Ratings[r.Product]; rated {
			t.Fatalf("recommended already-rated product %s", r.Product)
		}
	}
}

// TestEndToEndDecentralized exercises the full §4 loop through the
// facade: publish → crawl (virtual web) → recommend from crawled data.
func TestEndToEndDecentralized(t *testing.T) {
	cfg := swrec.SmallDataset()
	cfg.Agents = 80
	cfg.Products = 120
	comm, _ := swrec.GenerateCommunity(cfg)

	site := swrec.PublishSite(cfg.BaseHost, comm)
	var in swrec.Internet
	in.RegisterSite(site)

	// Seed at the best-connected agent.
	var seed swrec.AgentID
	best := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > best {
			best = d
			seed = id
		}
	}

	res, err := swrec.Crawl(context.Background(), in.Client(),
		site.TaxonomyURL(), site.CatalogURL(), []swrec.AgentID{seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Community.NumAgents() == 0 {
		t.Fatal("crawl materialized nothing")
	}
	if res.Community.Taxonomy() == nil {
		t.Fatal("taxonomy not crawled")
	}
	rec, err := swrec.NewRecommender(res.Community, swrec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Recommend(seed, 5); err != nil {
		t.Fatal(err)
	}
}

// TestHomepageRoundTripFacade checks the document-level public API.
func TestHomepageRoundTripFacade(t *testing.T) {
	comm := swrec.NewCommunity(swrec.Fig1Taxonomy())
	comm.AddProduct(swrec.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash"})
	if err := comm.SetTrust("http://x/a", "http://x/b", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := comm.SetRating("http://x/a", "urn:isbn:9780553380958", 1); err != nil {
		t.Fatal(err)
	}
	doc := swrec.MarshalHomepage(comm.Agent("http://x/a"))
	if !strings.Contains(doc, "foaf") {
		t.Fatalf("doc does not look like FOAF: %q", doc)
	}
	h, err := swrec.ParseHomepage(doc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Agent != "http://x/a" || len(h.Trust) != 1 || len(h.Ratings) != 1 {
		t.Fatalf("homepage = %+v", h)
	}
	if _, err := swrec.ParseHomepage("not rdf"); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestMetricAndStrategySelectors sanity-checks the exported enum facade.
func TestMetricAndStrategySelectors(t *testing.T) {
	comm, _ := swrec.GenerateCommunity(swrec.SmallDataset())
	active := comm.Agents()[0]
	for _, opt := range []swrec.Options{
		{Metric: swrec.MetricAppleseed},
		{Metric: swrec.MetricAdvogato},
		{Metric: swrec.MetricPathTrust},
		{Metric: swrec.MetricNone},
		{CF: swrec.CFOptions{Measure: swrec.MeasureCosine, Representation: swrec.ReprTaxonomy}},
		{CF: swrec.CFOptions{Measure: swrec.MeasurePearson, Representation: swrec.ReprProduct}},
		{CF: swrec.CFOptions{Representation: swrec.ReprFlatCategory}},
		{Content: swrec.ContentNovelCategories},
	} {
		rec, err := swrec.NewRecommender(comm, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if _, err := rec.Recommend(active, 3); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
	}
}

// TestAllOptionsCompose runs the pipeline with every optional feature
// enabled at once — distrust-aware Appleseed, Pearson over taxonomy
// profiles, trust thresholding, Borda merge, content boost, novel
// categories, diversification — to guard against option interactions.
func TestAllOptionsCompose(t *testing.T) {
	cfg := swrec.SmallDataset()
	cfg.Seed = 9
	cfg.PopularitySkew = 1.0
	comm, _ := swrec.GenerateCommunity(cfg)
	rec, err := swrec.NewRecommender(comm, swrec.Options{
		Metric: swrec.MetricAppleseed,
		Appleseed: swrec.AppleseedOptions{
			MaxNodes:        120,
			NormExponent:    2,
			DistrustPenalty: 0.8,
			RespectDistrust: true,
		},
		CF: swrec.CFOptions{
			Measure:        swrec.MeasurePearson,
			Representation: swrec.ReprTaxonomy,
			WeightByRating: true,
			ProfileScore:   500,
		},
		TrustThreshold: 0.01,
		MaxNeighbors:   80,
		Alpha:          0.6,
		AlphaSet:       true,
		Merge:          swrec.MergeBorda,
		Content:        swrec.ContentNovelCategories,
		ContentBoost:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var active swrec.AgentID
	for _, id := range comm.Agents() {
		if len(comm.Agent(id).Trust) >= 5 {
			active = id
			break
		}
	}
	if active == "" {
		t.Skip("no well-connected agent")
	}
	recs, err := rec.Recommend(active, 40)
	if err != nil {
		t.Fatal(err)
	}
	div := rec.Diversify(recs, 8, 0.4)
	if len(div) > 8 {
		t.Fatalf("diversified length = %d", len(div))
	}
	for _, r := range div {
		if _, rated := comm.Agent(active).Ratings[r.Product]; rated {
			t.Fatalf("already-rated product %s recommended", r.Product)
		}
		if r.Score <= 0 {
			t.Fatalf("non-positive score %+v", r)
		}
	}
}

// TestSybilInjectionFacade checks the attack helper through the facade.
func TestSybilInjectionFacade(t *testing.T) {
	comm, _ := swrec.GenerateCommunity(swrec.SmallDataset())
	victim := comm.Agents()[0]
	sybils := swrec.InjectSybils(comm, victim, 3, "urn:isbn:evil")
	if len(sybils) != 3 {
		t.Fatalf("sybils = %d", len(sybils))
	}
}

// TestWeblogFacade exercises the weblog render/mine loop through the
// public API against a published site.
func TestWeblogFacade(t *testing.T) {
	cfg := swrec.SmallDataset()
	cfg.Agents = 30
	cfg.Products = 40
	comm, _ := swrec.GenerateCommunity(cfg)
	site := swrec.PublishSite(cfg.BaseHost, comm)
	var in swrec.Internet
	in.RegisterSite(site)

	// Find an agent with positive ratings; its rendered weblog must mine
	// back to implicit votes attributed to its FOAF homepage.
	var blogged swrec.AgentID
	for _, id := range comm.Agents() {
		for _, v := range comm.Agent(id).Ratings {
			if v > 0 {
				blogged = id
				break
			}
		}
		if blogged != "" {
			break
		}
	}
	doc := swrec.RenderWeblog(comm, blogged)
	if doc == "" {
		t.Fatal("empty weblog")
	}
	if got := swrec.RenderWeblog(comm, "ghost"); got != "" {
		t.Fatal("weblog for unknown agent")
	}

	// Over HTTP: /blog/<name> of the published site.
	name := string(blogged)[strings.LastIndex(string(blogged), "/")+1:]
	author, votes, err := swrec.MineWeblog(context.Background(), in.Client(),
		site.BaseURL()+"/blog/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if author != blogged {
		t.Fatalf("author = %s, want %s", author, blogged)
	}
	if len(votes) == 0 {
		t.Fatal("no votes mined")
	}
}

// TestCorpusFacade round-trips a community through ExportCorpus/ImportCorpus.
func TestCorpusFacade(t *testing.T) {
	cfg := swrec.SmallDataset()
	cfg.Agents = 20
	cfg.Products = 25
	comm, _ := swrec.GenerateCommunity(cfg)
	dir := t.TempDir()
	if err := swrec.ExportCorpus(comm, dir); err != nil {
		t.Fatal(err)
	}
	back, err := swrec.ImportCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.ComputeStats() != comm.ComputeStats() {
		t.Fatal("corpus round trip changed the community")
	}
}

// TestStereotypeFacade sanity-checks LearnStereotypes.
func TestStereotypeFacade(t *testing.T) {
	comm, meta := swrec.GenerateCommunity(swrec.SmallDataset())
	m, err := swrec.LearnStereotypes(comm, swrec.StereotypeOptions{K: meta.Config.Clusters})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != meta.Config.Clusters {
		t.Fatalf("K = %d", m.K())
	}
	if p := m.Purity(meta.AgentCluster); p <= 1.0/float64(meta.Config.Clusters) {
		t.Fatalf("purity %v no better than chance", p)
	}
}

// TestTopicIndexAndDiversifyFacade exercises the browse and
// diversification surface through the public API.
func TestTopicIndexAndDiversifyFacade(t *testing.T) {
	comm, _ := swrec.GenerateCommunity(swrec.SmallDataset())
	ix := swrec.BuildTopicIndex(comm)
	root := swrec.Topic(0)
	if got := len(ix.Subtree(root)); got != comm.NumProducts() {
		t.Fatalf("root subtree = %d, want %d", got, comm.NumProducts())
	}
	rec, err := swrec.NewRecommender(comm, swrec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var active swrec.AgentID
	for _, id := range comm.Agents() {
		if len(comm.Agent(id).Trust) > 3 {
			active = id
			break
		}
	}
	recs, err := rec.Recommend(active, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 10 {
		div := rec.Diversify(recs, 10, 0.5)
		if len(div) != 10 {
			t.Fatalf("diversified = %d", len(div))
		}
		if rec.IntraListSimilarity(div) > rec.IntraListSimilarity(recs[:10])+1e-9 {
			t.Fatal("diversification increased intra-list similarity")
		}
	}
}

// TestDocumentStoreFacade checks the exported store constructor.
func TestDocumentStoreFacade(t *testing.T) {
	st, err := swrec.OpenDocumentStore(t.TempDir() + "/cache.log")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
}
