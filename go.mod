module swrec

go 1.22

// Lint-time only: cmd/swrecvet and internal/analysis build on the
// go/analysis framework. Vendored; nothing on the serving path
// imports it.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
