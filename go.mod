module swrec

go 1.22
