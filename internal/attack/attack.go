// Package attack grows adversarial structures inside a datagen
// community so the load harness can test the paper's security claim
// quantitatively: Appleseed's local, energy-conserving trust metric is
// supposed to confine identities that fabricate trust or clone rating
// profiles, because energy only reaches an agent through edges honest
// agents chose to assert. Each injector builds one textbook attack —
// a Sybil ring, a trust-spam hub, a rating-shilling clique — and
// measure.go turns "confined" into numbers: attacker share of trust-rank
// mass, honest top-K rank perturbation, pushed-item exposure.
//
// Injection is fully deterministic: attacker identities, edges, and
// pushed products are pure functions of the Spec and the community's
// agent order. No clock, no random source.
package attack

import (
	"fmt"

	"swrec/internal/isbn"
	"swrec/internal/model"
)

// Kind names one adversarial scenario.
type Kind string

const (
	// SybilRing: Count fabricated identities certify each other in a
	// densely wired ring, clone the victim's rating profile, and push
	// planted products. One bridge edge (the victim certifying ring
	// member 0) models the social-engineering foothold; the claim under
	// test is that energy entering through one edge cannot be amplified
	// by any amount of intra-ring wiring.
	SybilRing Kind = "sybil-ring"
	// TrustSpamHub: Count spammer identities mass-issue trust edges to
	// honest agents (bait certifications) and funnel their own trust
	// into one hub that pushes products. No honest agent reciprocates,
	// so no energy should reach the hub at all: out-edges are free to
	// fabricate, in-edges are not.
	TrustSpamHub Kind = "trust-spam-hub"
	// ShillingClique: Count identities clone the victim's rating profile
	// (maximal similarity) and rate planted products top marks, with no
	// trust edges. Tests that neighborhoods are trust-gated: similarity
	// alone must not buy a seat.
	ShillingClique Kind = "rating-shilling"
)

// Spec configures one injected attack plus the confinement bounds the
// harness asserts afterwards. The zero value of a bound disables that
// assertion. The bounds state the paper's claim about trust-gated
// neighborhoods, so the harness asserts them against the measurement
// taken under pure trust weighting (alpha=1); the serving default's
// similarity blend is measured alongside and drift-tracked but not
// bounded here — cloned profiles legitimately score similarity weight
// under that mode.
type Spec struct {
	Kind  Kind `json:"kind"`
	Count int  `json:"count"` // attacker identities (≥1)
	// VictimIdx selects the honest agent (by community order) whose
	// rating profile attackers clone and, for SybilRing, who is bridged
	// into the ring.
	VictimIdx int `json:"victimIdx"`
	// PushProducts is how many planted products the attackers mint and
	// rate top marks.
	PushProducts int `json:"pushProducts"`
	// FanoutTargets (TrustSpamHub) is how many honest agents each
	// spammer "certifies".
	FanoutTargets int `json:"fanoutTargets,omitempty"`

	// MaxEnergyShare bounds the attacker share of trust-rank mass
	// across sampled honest neighborhoods.
	MaxEnergyShare float64 `json:"maxEnergyShare,omitempty"`
	// MaxRankPerturbation bounds how far any honest top-K item may be
	// displaced by the attack (K counts as "evicted").
	MaxRankPerturbation int `json:"maxRankPerturbation,omitempty"`
	// MaxPushedRate bounds the fraction of sampled honest agents whose
	// top-K recommendations contain a pushed product.
	MaxPushedRate float64 `json:"maxPushedRate,omitempty"`
}

// Result records what an injector added to the community.
type Result struct {
	Spec    Spec
	IDs     []model.AgentID   // attacker identities, injection order
	Pushed  []model.ProductID // planted products
	Victim  model.AgentID
	IDSet   map[model.AgentID]bool
	PushSet map[model.ProductID]bool
}

// Inject applies one attack spec to comm. ordinal namespaces attacker
// identities and pushed products when a scenario stacks several attacks.
// The honest agent list must be captured by the caller before any
// injection; it anchors victim selection and spam fan-out so stacked
// attacks cannot target each other's identities.
func Inject(comm *model.Community, honest []model.AgentID, spec Spec, ordinal int) (*Result, error) {
	if len(honest) == 0 {
		return nil, fmt.Errorf("attack: empty community")
	}
	if spec.Count < 1 {
		return nil, fmt.Errorf("attack %s: count must be ≥ 1", spec.Kind)
	}
	res := &Result{
		Spec:   spec,
		Victim: honest[spec.VictimIdx%len(honest)],
	}
	res.IDs = make([]model.AgentID, spec.Count)
	for i := range res.IDs {
		res.IDs[i] = model.AgentID(fmt.Sprintf("http://attack.example/a%d-%s/s%d", ordinal, spec.Kind, i))
		comm.AddAgent(res.IDs[i])
	}
	res.Pushed = mintPushed(comm, spec.PushProducts, ordinal)

	var err error
	switch spec.Kind {
	case SybilRing:
		err = injectSybilRing(comm, res)
	case TrustSpamHub:
		err = injectTrustSpamHub(comm, honest, res)
	case ShillingClique:
		err = injectShillingClique(comm, res)
	default:
		return nil, fmt.Errorf("attack: unknown kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	res.IDSet = make(map[model.AgentID]bool, len(res.IDs))
	for _, id := range res.IDs {
		res.IDSet[id] = true
	}
	res.PushSet = make(map[model.ProductID]bool, len(res.Pushed))
	for _, p := range res.Pushed {
		res.PushSet[p] = true
	}
	return res, nil
}

// mintPushed registers n planted products. The ISBN sequence block is
// far above anything datagen synthesizes (catalogs top out around 10^5)
// so planted IDs never collide with honest ones.
func mintPushed(comm *model.Community, n, ordinal int) []model.ProductID {
	pushed := make([]model.ProductID, n)
	for i := range pushed {
		code := isbn.Synthesize(5_000_000 + ordinal*1_000 + i)
		id := model.ProductID(isbn.URN(code))
		comm.AddProduct(model.Product{ID: id, Title: fmt.Sprintf("Planted %d/%d", ordinal, i)})
		pushed[i] = id
	}
	return pushed
}

// cloneProfile copies the victim's rating statements onto dst and adds
// top-mark ratings for every pushed product — the standard shilling
// profile: maximally similar, planted payload on top.
func cloneProfile(comm *model.Community, res *Result, dst model.AgentID) error {
	va := comm.Agent(res.Victim)
	for _, rs := range va.RatedProducts() {
		if err := comm.SetRating(dst, rs.Product, rs.Value); err != nil {
			return err
		}
	}
	for _, p := range res.Pushed {
		if err := comm.SetRating(dst, p, 1); err != nil {
			return err
		}
	}
	return nil
}

func injectSybilRing(comm *model.Community, res *Result) error {
	ids := res.IDs
	for i, id := range ids {
		if err := cloneProfile(comm, res, id); err != nil {
			return err
		}
		// Dense ring wiring: each Sybil certifies the next two, maximal
		// weight. Internally the ring can circulate whatever it likes.
		if err := comm.SetTrust(id, ids[(i+1)%len(ids)], 1); err != nil {
			return err
		}
		if len(ids) > 2 {
			if err := comm.SetTrust(id, ids[(i+2)%len(ids)], 1); err != nil {
				return err
			}
		}
		// Sybils also certify the victim so the ring looks socially
		// embedded to anyone inspecting edges.
		if err := comm.SetTrust(id, res.Victim, 1); err != nil {
			return err
		}
	}
	// The single honest→Sybil bridge: the victim was tricked into one
	// certification. All energy the ring will ever see flows over this.
	return comm.SetTrust(res.Victim, ids[0], 0.8)
}

func injectTrustSpamHub(comm *model.Community, honest []model.AgentID, res *Result) error {
	hub := res.IDs[0]
	if err := cloneProfile(comm, res, hub); err != nil {
		return err
	}
	fanout := res.Spec.FanoutTargets
	if fanout < 1 {
		fanout = 8
	}
	// Spread spam targets across the honest population with a stride so
	// stacked specs with different counts still cover distinct agents.
	stride := len(honest) / (res.Spec.Count * fanout)
	if stride < 1 {
		stride = 1
	}
	for i, id := range res.IDs[1:] {
		if err := comm.SetTrust(id, hub, 1); err != nil {
			return err
		}
		for j := 0; j < fanout; j++ {
			t := honest[((i*fanout+j)*stride)%len(honest)]
			if err := comm.SetTrust(id, t, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

func injectShillingClique(comm *model.Community, res *Result) error {
	for _, id := range res.IDs {
		if err := cloneProfile(comm, res, id); err != nil {
			return err
		}
	}
	return nil
}
