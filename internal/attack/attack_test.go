package attack_test

import (
	"context"
	"testing"

	"swrec/internal/attack"
	"swrec/internal/datagen"
	"swrec/internal/ingest"
	"swrec/internal/loadgen"
)

// scenarioWith builds a small community serving scenario carrying the
// given attack specs.
func scenarioWith(specs ...attack.Spec) *loadgen.Scenario {
	sc := &loadgen.Scenario{
		Name: "attack-test",
		Seed: 11,
		Community: loadgen.Community{
			Agents: 150, Products: 200, Clusters: 5, MeanRatings: 7, MeanTrust: 6,
		},
		Workload: loadgen.Workload{Events: 1, Concurrency: 1},
		Attacks:  specs,
		Samples:  10,
		TopK:     8,
		Warmup:   true,
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return sc
}

// TestConfinementAcrossKinds is the paper-claim check in miniature:
// fabricated structure must not buy trust-rank mass or displace honest
// recommendations, and the one legitimate inflow (the Sybil bridge
// edge) stays bounded.
func TestConfinementAcrossKinds(t *testing.T) {
	sc := scenarioWith(
		attack.Spec{Kind: attack.SybilRing, Count: 10, VictimIdx: 7, PushProducts: 2},
		attack.Spec{Kind: attack.TrustSpamHub, Count: 10, VictimIdx: 31, PushProducts: 2, FanoutTargets: 10},
		attack.Spec{Kind: attack.ShillingClique, Count: 10, VictimIdx: 53, PushProducts: 2},
	)
	p, err := loadgen.BuildInProc(context.Background(), sc, "", ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := p.MeasureAttacks(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	byKind := map[attack.Kind]loadgen.AttackReport{}
	for _, r := range reports {
		byKind[r.Kind] = r
	}

	sybil := byKind[attack.SybilRing]
	if sybil.EnergyShare <= 0 {
		t.Error("sybil ring: bridge edge exists, energy share should be > 0")
	}
	if sybil.EnergyShare > 0.35 {
		t.Errorf("sybil ring: energy share %.4f not confined; ring amplification leaked", sybil.EnergyShare)
	}
	// The similarity blend can only readmit attackers, never exclude
	// them harder than pure trust weighting does.
	if sybil.TrustGated.PushedRate > sybil.PushedRate {
		t.Errorf("sybil ring: trust-gated pushed rate %.3f exceeds blended %.3f — gating made the attack stronger?",
			sybil.TrustGated.PushedRate, sybil.PushedRate)
	}

	spam := byKind[attack.TrustSpamHub]
	if spam.EnergyShare > 0.02 {
		t.Errorf("trust-spam hub: energy share %.4f, want ~0 — out-edges must not buy energy", spam.EnergyShare)
	}

	shill := byKind[attack.ShillingClique]
	if shill.EnergyShare != 0 {
		t.Errorf("shilling clique: energy share %.4f, want 0 — no trust edges exist", shill.EnergyShare)
	}
	if shill.PushedRate > 0.25 {
		t.Errorf("shilling clique: pushed items reached %.0f%% of sampled top-K despite trust gating",
			100*shill.PushedRate)
	}

	for _, r := range reports {
		if r.Samples == 0 {
			t.Errorf("%s: zero samples measured", r.Kind)
		}
	}
}

// TestInjectDeterministic pins that injection is a pure function of
// (community, spec, ordinal): same inputs, same identities and edges.
func TestInjectDeterministic(t *testing.T) {
	build := func() (*attack.Result, int) {
		comm, _ := datagen.Generate(datagen.SmallScale())
		res, err := attack.Inject(comm, comm.Agents(), attack.Spec{
			Kind: attack.SybilRing, Count: 5, VictimIdx: 3, PushProducts: 2,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res, comm.NumAgents()
	}
	a, na := build()
	b, nb := build()
	if na != nb {
		t.Fatalf("agent counts diverged: %d vs %d", na, nb)
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("attacker %d: %s vs %s", i, a.IDs[i], b.IDs[i])
		}
	}
	for i := range a.Pushed {
		if a.Pushed[i] != b.Pushed[i] {
			t.Fatalf("pushed %d: %s vs %s", i, a.Pushed[i], b.Pushed[i])
		}
	}
	if a.Victim != b.Victim {
		t.Fatalf("victims diverged: %s vs %s", a.Victim, b.Victim)
	}
}

// TestInjectRejectsNonsense covers the input validation.
func TestInjectRejectsNonsense(t *testing.T) {
	comm, _ := datagen.Generate(datagen.SmallScale())
	if _, err := attack.Inject(comm, comm.Agents(), attack.Spec{Kind: "no-such", Count: 3}, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := attack.Inject(comm, comm.Agents(), attack.Spec{Kind: attack.SybilRing}, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := attack.Inject(comm, nil, attack.Spec{Kind: attack.SybilRing, Count: 1}, 0); err == nil {
		t.Error("empty community accepted")
	}
}
