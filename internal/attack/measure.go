package attack

import (
	"fmt"

	"swrec/internal/core"
	"swrec/internal/model"
)

// Client is the read surface the confinement measures need. Both an
// in-process engine wrapper and the load harness's HTTP client satisfy
// it, so the same measurement runs against a live server or a local
// build of the identical community.
type Client interface {
	Neighbors(id model.AgentID, n int) ([]core.PeerRank, error)
	Recommendations(id model.AgentID, n int) ([]core.Recommendation, error)
}

// Confinement quantifies how far one attack got. The paper's claim is
// that all three numbers stay near zero for Appleseed-gated
// neighborhoods no matter how much structure the attacker fabricates.
type Confinement struct {
	Kind Kind `json:"kind"`
	// EnergyShare is the attacker share of trust-rank mass summed over
	// the sampled honest agents' neighborhoods: Σ trust(attacker peers)
	// / Σ trust(all peers).
	EnergyShare float64 `json:"energyShare"`
	// MaxRankPerturbation is the worst displacement of an honest top-K
	// item between the clean and attacked community (K = evicted).
	MaxRankPerturbation int `json:"maxRankPerturbation"`
	// MeanRankPerturbation averages that displacement over all sampled
	// honest top-K items.
	MeanRankPerturbation float64 `json:"meanRankPerturbation"`
	// PushedRate is the fraction of sampled honest agents whose
	// attacked top-K contains a planted product.
	PushedRate float64 `json:"pushedRate"`
	Samples    int     `json:"samples"`
}

// Violations returns human-readable bound breaches, empty when the
// attack stayed confined within the Spec's limits.
func (c Confinement) Violations(spec Spec) []string {
	var v []string
	if spec.MaxEnergyShare > 0 && c.EnergyShare > spec.MaxEnergyShare {
		v = append(v, fmt.Sprintf("%s: energy share %.4f > bound %.4f",
			c.Kind, c.EnergyShare, spec.MaxEnergyShare))
	}
	if spec.MaxRankPerturbation > 0 && c.MaxRankPerturbation > spec.MaxRankPerturbation {
		v = append(v, fmt.Sprintf("%s: rank perturbation %d > bound %d",
			c.Kind, c.MaxRankPerturbation, spec.MaxRankPerturbation))
	}
	if spec.MaxPushedRate > 0 && c.PushedRate > spec.MaxPushedRate {
		v = append(v, fmt.Sprintf("%s: pushed-item rate %.4f > bound %.4f",
			c.Kind, c.PushedRate, spec.MaxPushedRate))
	}
	return v
}

// SampleHonest picks n measurement subjects deterministically spread
// across the honest agent list. The victim is always included — it is
// the agent with the best-case attack surface (direct bridge edge,
// cloned profile), so confinement numbers that hold for it hold
// a fortiori for the rest.
func SampleHonest(honest []model.AgentID, victim model.AgentID, n int) []model.AgentID {
	if n < 1 {
		n = 1
	}
	if n > len(honest) {
		n = len(honest)
	}
	out := make([]model.AgentID, 0, n)
	seen := map[model.AgentID]bool{victim: true}
	out = append(out, victim)
	stride := len(honest) / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; len(out) < n && i < len(honest); i += stride {
		if !seen[honest[i]] {
			seen[honest[i]] = true
			out = append(out, honest[i])
		}
	}
	return out
}

// Measure computes the confinement numbers for one injected attack.
// base serves the clean community, attacked the injected one; sample is
// the honest agents to probe (see SampleHonest) and topK the
// recommendation depth under scrutiny. Probes that fail on both sides
// (e.g. agents with no computable neighborhood) are skipped; an error
// is returned only when every probe fails.
func Measure(base, attacked Client, res *Result, sample []model.AgentID, topK int) (Confinement, error) {
	c := Confinement{Kind: res.Spec.Kind}
	if topK < 1 {
		topK = 10
	}
	var massAll, massAttack float64
	var pushedHits, perturbItems int
	var perturbSum float64
	var firstErr error
	for _, id := range sample {
		peers, err := attacked.Neighbors(id, 0)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("neighbors(%s): %w", id, err)
			}
			continue
		}
		for _, p := range peers {
			massAll += p.Trust
			if res.IDSet[p.Agent] {
				massAttack += p.Trust
			}
		}

		before, errB := base.Recommendations(id, topK)
		after, errA := attacked.Recommendations(id, topK)
		if errB != nil || errA != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("recommendations(%s): base=%v attacked=%v", id, errB, errA)
			}
			continue
		}
		afterPos := make(map[model.ProductID]int, len(after))
		hit := false
		for i, r := range after {
			afterPos[r.Product] = i
			if res.PushSet[r.Product] {
				hit = true
			}
		}
		if hit {
			pushedHits++
		}
		for i, r := range before {
			d := topK - i // eviction cost when the item vanished
			if j, ok := afterPos[r.Product]; ok {
				d = j - i
				if d < 0 {
					d = -d
				}
			}
			perturbItems++
			perturbSum += float64(d)
			if d > c.MaxRankPerturbation {
				c.MaxRankPerturbation = d
			}
		}
		c.Samples++
	}
	if c.Samples == 0 {
		return c, fmt.Errorf("attack measure %s: every probe failed: %w", res.Spec.Kind, firstErr)
	}
	if massAll > 0 {
		c.EnergyShare = massAttack / massAll
	}
	if perturbItems > 0 {
		c.MeanRankPerturbation = perturbSum / float64(perturbItems)
	}
	c.PushedRate = float64(pushedHits) / float64(c.Samples)
	return c, nil
}
