package strategy

import (
	"testing"

	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// popCommunity builds a four-product community over a two-branch taxonomy:
// branch X holds p1/p2 (rated by everyone), branch Y holds p3 (rated by
// one agent) and p4 (rated by nobody).
func popCommunity(t *testing.T) *model.Community {
	t.Helper()
	tax := taxonomy.New("Top")
	bx := tax.MustAdd(taxonomy.Root, "X")
	by := tax.MustAdd(taxonomy.Root, "Y")
	lx := tax.MustAdd(bx, "x-leaf")
	ly := tax.MustAdd(by, "y-leaf")
	comm := model.NewCommunity(tax)
	for i, pid := range []model.ProductID{"urn:p1", "urn:p2", "urn:p3", "urn:p4"} {
		topic := lx
		if i >= 2 {
			topic = ly
		}
		comm.AddProduct(model.Product{ID: pid, Title: string(pid), Topics: []taxonomy.Topic{topic}})
	}
	for _, aid := range []model.AgentID{"http://x/a", "http://x/b", "http://x/c"} {
		comm.AddAgent(aid)
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(comm.SetRating(aid, "urn:p1", 1))
		must(comm.SetRating(aid, "urn:p2", 0.5))
	}
	if err := comm.SetRating("http://x/a", "urn:p3", 0.8); err != nil {
		t.Fatal(err)
	}
	// A disliked product must not gain popularity mass.
	if err := comm.SetRating("http://x/b", "urn:p4", -1); err != nil {
		t.Fatal(err)
	}
	return comm
}

func TestPopularityRank(t *testing.T) {
	comm := popCommunity(t)
	rank := PopularityRank(comm)
	if len(rank) != 3 {
		t.Fatalf("rank = %+v, want 3 products (p4 has no positive raters)", rank)
	}
	if rank[0].Product != "urn:p1" || rank[0].Score != 3 || rank[0].Supporters != 3 {
		t.Fatalf("top = %+v", rank[0])
	}
	if rank[1].Product != "urn:p2" || rank[2].Product != "urn:p3" {
		t.Fatalf("order = %+v", rank)
	}
	// Determinism: a recomputation is identical.
	again := PopularityRank(comm)
	for i := range rank {
		if rank[i] != again[i] {
			t.Fatalf("rank not stable: %+v vs %+v", rank[i], again[i])
		}
	}
}

func TestPopularityForSkipsRatedAndPrefersNovel(t *testing.T) {
	comm := popCommunity(t)
	rank := PopularityRank(comm)

	// Agent b rated p1/p2 (branch X) and disliked p4: p3 is both unrated
	// and in the untouched branch Y, so it leads despite the lower score.
	got := PopularityFor(comm, rank, comm.Agent("http://x/b"), 0)
	if len(got) != 1 || got[0].Product != "urn:p3" {
		t.Fatalf("personalized = %+v, want only p3", got)
	}

	// A cold-start agent has rated nothing: pure popularity order, capped.
	cold := comm.AddAgent("http://x/cold")
	got = PopularityFor(comm, rank, cold, 2)
	if len(got) != 2 || got[0].Product != "urn:p1" || got[1].Product != "urn:p2" {
		t.Fatalf("cold-start = %+v", got)
	}

	if PopularityFor(comm, rank, nil, 5) != nil {
		t.Fatal("nil agent must yield nil")
	}
}
