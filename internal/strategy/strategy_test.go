package strategy

import (
	"context"
	"errors"
	"testing"
)

func mustLadder(t *testing.T, cfg Config) *Ladder {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConditionHolds(t *testing.T) {
	cases := []struct {
		name string
		c    Condition
		s    Signals
		want bool
	}{
		{"zero condition always holds", Condition{}, Signals{}, true},
		{"min peers inclusive", Condition{MinPeers: 3}, Signals{Peers: 3}, true},
		{"min peers below", Condition{MinPeers: 3}, Signals{Peers: 2}, false},
		{"min top-sim inclusive", Condition{MinTopSim: 0.1}, Signals{TopSim: 0.1}, true},
		{"max top-sim exclusive", Condition{MaxTopSim: 0.1}, Signals{TopSim: 0.1}, false},
		{"max top-sim below", Condition{MaxTopSim: 0.1}, Signals{TopSim: 0.0999}, true},
		{"max peers inclusive", Condition{MaxPeers: 2}, Signals{Peers: 2}, true},
		{"max peers above", Condition{MaxPeers: 2}, Signals{Peers: 3}, false},
		{"thin disjunction via energy", Condition{MaxPeers: 2, MaxEnergy: 0.5}, Signals{Peers: 9, Energy: 0.4}, true},
		{"thin disjunction neither", Condition{MaxPeers: 2, MaxEnergy: 0.5}, Signals{Peers: 9, Energy: 0.9}, false},
		{"taxonomy required", Condition{RequireTaxonomy: true}, Signals{}, false},
		{"taxonomy present", Condition{RequireTaxonomy: true}, Signals{Taxonomy: true}, true},
		{"deadline only without pressure", Condition{DeadlineOnly: true}, Signals{}, false},
		{"deadline only with pressure", Condition{DeadlineOnly: true}, Signals{Deadline: true}, true},
		{"min trust out", Condition{MinTrustOut: 1}, Signals{TrustOut: 0}, false},
		{"min ratings", Condition{MinRatings: 1}, Signals{Ratings: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := tc.c.Holds(tc.s)
			if got != tc.want {
				t.Fatalf("Holds = %v (%q), want %v", got, reason, tc.want)
			}
			if !got && reason == "" {
				t.Fatal("failing condition gave no reason")
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	bad := []Config{
		{MinPeers: -1},
		{MinOverlap: 1.5},
		{MinEnergy: -0.1},
		{HopDecay: 1.5},
		{AncestorDepth: -2},
		{Disable: []Procedure{"bogus"}},
		{Disable: Procedures},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLadderShape(t *testing.T) {
	l := mustLadder(t, Config{})
	rungs := l.Rungs()
	if len(rungs) != len(Procedures) {
		t.Fatalf("%d rungs", len(rungs))
	}
	for i, r := range rungs {
		if r.Procedure != Procedures[i] {
			t.Fatalf("rung %d = %s, want %s", i, r.Procedure, Procedures[i])
		}
		if !r.Enabled {
			t.Fatalf("rung %s built disabled", r.Procedure)
		}
	}
	if !rungs[len(rungs)-1].When.DeadlineOnly {
		t.Fatal("bottom rung is not deadline-gated")
	}
}

func TestParseSelector(t *testing.T) {
	l := mustLadder(t, Config{})
	if sel, err := ParseSelector("", l); err != nil || !sel.IsZero() {
		t.Fatalf("empty query: %+v, %v", sel, err)
	}
	sel, err := ParseSelector("popularity", l)
	if err != nil || sel.Pin != Popularity {
		t.Fatalf("pin: %+v, %v", sel, err)
	}
	sel, err = ParseSelector("-full-synthesis,-popularity", l)
	if err != nil || !sel.Exclude[FullSynthesis] || !sel.Exclude[Popularity] {
		t.Fatalf("exclude: %+v, %v", sel, err)
	}
	bad := []string{
		"bogus",
		"-bogus",
		"popularity,full-synthesis",  // two pins
		"popularity,-full-synthesis", // mixed
		"-full-synthesis,popularity", // mixed, other order
		"full-synthesis,,popularity", // empty item
		"-full-synthesis,-trust-hop-widening,-taxonomy-ancestor,-popularity,-degraded-cache", // nothing left
	}
	for _, q := range bad {
		if _, err := ParseSelector(q, l); err == nil {
			t.Fatalf("%q accepted", q)
		}
	}

	// Pinning a disabled rung is rejected at parse time.
	ld := mustLadder(t, Config{Disable: []Procedure{Popularity}})
	if _, err := ParseSelector("popularity", ld); err == nil {
		t.Fatal("pinned a disabled rung")
	}
	// Excluding every rung that is still enabled is rejected too.
	if _, err := ParseSelector("-full-synthesis,-trust-hop-widening,-taxonomy-ancestor,-degraded-cache", ld); err == nil {
		t.Fatal("excluded every enabled rung")
	}
}

// runnerScript drives Walk with canned per-procedure outcomes.
type runnerScript map[Procedure]struct {
	nonEmpty bool
	err      error
}

func (rs runnerScript) run(_ context.Context, r Rung) (bool, error) {
	o := rs[r.Procedure]
	return o.nonEmpty, o.err
}

func TestWalkFallsThroughEmptyRungs(t *testing.T) {
	l := mustLadder(t, Config{})
	// Signals satisfying rung 1; its procedure comes up empty, widening is
	// not thin, ancestor is blocked by high sim, popularity answers.
	sig := Signals{Peers: 5, TopSim: 0.9, Ratings: 4, TrustOut: 2, Taxonomy: true}
	res := l.Walk(context.Background(), sig, Selector{}, runnerScript{
		FullSynthesis: {nonEmpty: false},
		Popularity:    {nonEmpty: true},
	}.run)
	if res.Procedure != Popularity {
		t.Fatalf("procedure = %s (%+v)", res.Procedure, res.Attempts)
	}
	// The walk returns at the answering rung; the degraded rung below it
	// is never considered.
	want := []Outcome{OutcomeEmpty, OutcomeSkipped, OutcomeSkipped, OutcomeOK}
	if len(res.Attempts) != len(want) {
		t.Fatalf("attempts = %+v", res.Attempts)
	}
	for i, at := range res.Attempts {
		if at.Outcome != want[i] {
			t.Fatalf("attempt %d = %+v, want %s", i, at, want[i])
		}
	}
}

func TestWalkErrorOutcomes(t *testing.T) {
	l := mustLadder(t, Config{})
	sig := Signals{Peers: 5, TopSim: 0.9}
	boom := errors.New("boom")
	res := l.Walk(context.Background(), sig, Selector{}, runnerScript{
		FullSynthesis: {err: boom},
		Popularity:    {err: ErrNotApplicable},
	}.run)
	if res.Procedure != None {
		t.Fatalf("procedure = %s", res.Procedure)
	}
	if res.Attempts[0].Outcome != OutcomeError || res.Attempts[0].Reason != "boom" {
		t.Fatalf("error attempt = %+v", res.Attempts[0])
	}
	for _, at := range res.Attempts {
		if at.Procedure == Popularity && at.Outcome != OutcomeSkipped {
			t.Fatalf("not-applicable rung = %+v", at)
		}
	}
}

func TestWalkDeadlinePressure(t *testing.T) {
	l := mustLadder(t, Config{})
	// Deadline already hit during signal gathering: every quality rung is
	// recorded as deadline-blocked, only the degraded rung runs.
	res := l.Walk(context.Background(), Signals{Deadline: true}, Selector{}, runnerScript{
		DegradedCache: {nonEmpty: true},
	}.run)
	if res.Procedure != DegradedCache {
		t.Fatalf("procedure = %s (%+v)", res.Procedure, res.Attempts)
	}
	for _, at := range res.Attempts[:len(res.Attempts)-1] {
		if at.Outcome != OutcomeDeadline {
			t.Fatalf("quality rung under pressure = %+v", at)
		}
	}

	// Mid-rung budget exhaustion maps context errors to the deadline
	// outcome rather than error.
	res = l.Walk(context.Background(), Signals{Peers: 5, TopSim: 0.9}, Selector{}, runnerScript{
		FullSynthesis: {err: context.DeadlineExceeded},
	}.run)
	if res.Attempts[0].Outcome != OutcomeDeadline {
		t.Fatalf("mid-rung deadline = %+v", res.Attempts[0])
	}
}

func TestWalkPinBypassesCondition(t *testing.T) {
	l := mustLadder(t, Config{})
	// Signals that would never select popularity on their own merits are
	// irrelevant under a pin.
	res := l.Walk(context.Background(), Signals{Peers: 9, TopSim: 0.9}, Selector{Pin: Popularity}, runnerScript{
		Popularity: {nonEmpty: true},
	}.run)
	if res.Procedure != Popularity || len(res.Attempts) != 1 {
		t.Fatalf("pinned walk = %+v", res)
	}
	// A pinned rung that comes up empty exhausts the ladder — no fallback.
	res = l.Walk(context.Background(), Signals{}, Selector{Pin: Popularity}, runnerScript{}.run)
	if res.Procedure != None || len(res.Attempts) != 1 {
		t.Fatalf("empty pinned walk = %+v", res)
	}
}

func TestWalkExclusions(t *testing.T) {
	l := mustLadder(t, Config{})
	sig := Signals{Peers: 5, TopSim: 0.9}
	res := l.Walk(context.Background(), sig, Selector{Exclude: map[Procedure]bool{FullSynthesis: true}}, runnerScript{
		FullSynthesis: {nonEmpty: true}, // must never run
		Popularity:    {nonEmpty: true},
	}.run)
	if res.Procedure != Popularity {
		t.Fatalf("procedure = %s", res.Procedure)
	}
	if res.Attempts[0].Outcome != OutcomeExcluded {
		t.Fatalf("excluded rung = %+v", res.Attempts[0])
	}
}
