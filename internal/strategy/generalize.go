package strategy

import (
	"context"
	"slices"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/model"
)

// GeneralizedPeers re-runs rank synthesization over profiles generalized
// up super-topics (profile.Generalize, the dual of Eq. 3's downward
// propagation): every peer's similarity is recomputed at taxonomy depth
// `depth` under the filter's configured measure, and the rank weight is
// re-blended as α·trust + (1-α)·max(sim, 0) — the score-blend merge of
// §3.4. This recovers comparability for the "low profile overlap"
// pathology of §2: two agents whose fine-grained topics are disjoint may
// still agree at super-topic resolution. Trust ranks pass through
// unchanged; the result is sorted by descending weight, ties by agent
// ID, like core.RankedPeersCtx. Returns ErrNotApplicable for filters
// without a taxonomy profile space (Product representation).
func GeneralizedPeers(ctx context.Context, f *cf.Filter, active model.AgentID, base []core.PeerRank, alpha float64, depth int) ([]core.PeerRank, error) {
	gen := f.Generator()
	if gen == nil {
		return nil, ErrNotApplicable
	}
	ap := gen.Generalize(f.ProfileOf(active), depth)
	out := make([]core.PeerRank, 0, len(base))
	for i, p := range base {
		if i&15 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pp := gen.Generalize(f.ProfileOf(p.Agent), depth)
		sim, ok := f.Compare(ap, pp)
		np := core.PeerRank{Agent: p.Agent, Trust: p.Trust}
		if ok {
			np.Sim, np.SimOK = sim, true
		}
		sn := 0.0
		if ok && sim > 0 {
			sn = sim
		}
		np.Weight = alpha*p.Trust + (1-alpha)*sn
		out = append(out, np)
	}
	slices.SortFunc(out, func(a, b core.PeerRank) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		case a.Agent < b.Agent:
			return -1
		case a.Agent > b.Agent:
			return 1
		default:
			return 0
		}
	})
	return out, nil
}
