// Package strategy implements the recommendation quality ladder: an
// ordered sequence of (Condition, Procedure) rungs the engine walks per
// request when the paper's core machinery is starved — cold-start agents
// with no ratings (§2), profiles with near-zero taxonomy overlap (§2,
// §3.3), and thin trust neighborhoods where Appleseed has almost nothing
// to propagate (§3.2).
//
// The pattern follows the backoff workflow of SchemaTreeRecommender:
// every rung declares its precondition as plain data, the first enabled
// rung whose condition holds against the request's gathered Signals runs
// its procedure, and an empty or failed procedure falls through to the
// next applicable rung. Because conditions are data, rung selection is
// deterministic, introspectable (GET /v1/strategies) and testable; the
// walk records an attempt trace that the API reports verbatim in the
// response envelope's strategy block.
//
// The default ladder, top to bottom:
//
//  1. full-synthesis     — the unmodified §3 pipeline (trust neighborhood,
//     taxonomy CF, rank synthesization, vote).
//  2. trust-hop-widening — expand the trust neighborhood one hop beyond
//     the metric's range when it is too thin to vote (Jamali's
//     distributed trust-aware widening; trust.WidenOneHop).
//  3. taxonomy-ancestor  — re-rank peers over profiles generalized up
//     super-topics, the dual of Eq. 3 downward propagation, when profile
//     overlap is below threshold (profile.Generalize).
//  4. popularity         — community-wide popularity vote, preferring
//     products from categories the agent left untouched (§3.4's
//     content-driven incentive).
//  5. degraded-cache     — the PR 3 previous-epoch cache probe, re-homed
//     as the deliberate bottom of the ladder: it applies only under
//     deadline pressure, never as a quality fallback.
package strategy

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"strings"
)

// Procedure names one rung's answering mechanism. The string form is the
// wire name used in the strategy provenance block, /v1/strategies, the
// strategy= override, and the swrec_strategy expvar keys.
type Procedure string

const (
	// FullSynthesis is the unmodified paper pipeline (rung 1).
	FullSynthesis Procedure = "full-synthesis"
	// TrustHopWidening expands thin neighborhoods one trust hop (rung 2).
	TrustHopWidening Procedure = "trust-hop-widening"
	// TaxonomyAncestor re-ranks peers over generalized profiles (rung 3).
	TaxonomyAncestor Procedure = "taxonomy-ancestor"
	// Popularity is the community-wide popularity vote (rung 4).
	Popularity Procedure = "popularity"
	// DegradedCache probes previous-epoch caches under deadline pressure
	// (rung 5, PR 3's emergency path re-homed).
	DegradedCache Procedure = "degraded-cache"
	// None marks ladder exhaustion: no rung produced an answer.
	None Procedure = "none"
)

// Procedures lists every real rung in ladder order.
var Procedures = []Procedure{FullSynthesis, TrustHopWidening, TaxonomyAncestor, Popularity, DegradedCache}

// Signals are the per-request facts conditions are evaluated against,
// gathered once before the walk. All fields are pure functions of the
// snapshot and the request pipeline, so evaluation is deterministic.
type Signals struct {
	// TrustOut is the number of positive trust statements the active
	// agent has issued (its widenable out-degree).
	TrustOut int `json:"trustOut"`
	// Ratings is the size of the active agent's rating history.
	Ratings int `json:"ratings"`
	// Peers is the size of the synthesized stage 1-3 peer ranking.
	Peers int `json:"peers"`
	// Energy is the total normalized trust mass of the ranking (sum of
	// per-peer trust ranks in [0,1]).
	Energy float64 `json:"energy"`
	// TopSim is the best defined non-negative similarity among the
	// ranked peers; 0 when no pair has a defined positive similarity —
	// the "low profile overlap" signal of §2.
	TopSim float64 `json:"topSim"`
	// Taxonomy reports whether the pipeline runs over a taxonomy-backed
	// profile space (required for ancestor generalization).
	Taxonomy bool `json:"taxonomy"`
	// Deadline reports that the compute budget expired during signal
	// gathering: only the degraded-cache rung can still answer.
	Deadline bool `json:"deadline"`
}

// Condition is one rung's precondition as data. Zero-valued fields are
// disabled checks. All enabled checks are conjunctive, with one
// documented exception: MaxPeers and MaxEnergy express the same
// "neighborhood too thin" question, so when both are set either one
// qualifies. Min bounds are inclusive; Max bounds are exclusive on the
// float side (TopSim < MaxTopSim, Energy < MaxEnergy) and inclusive on
// the integer side (Peers <= MaxPeers), so a ladder built from one
// threshold splits the signal space without gaps or overlap.
type Condition struct {
	MinTrustOut     int     `json:"minTrustOut,omitempty"`
	MinRatings      int     `json:"minRatings,omitempty"`
	MinPeers        int     `json:"minPeers,omitempty"`
	MaxPeers        int     `json:"maxPeers,omitempty"`
	MinTopSim       float64 `json:"minTopSim,omitempty"`
	MaxTopSim       float64 `json:"maxTopSim,omitempty"`
	MinEnergy       float64 `json:"minEnergy,omitempty"`
	MaxEnergy       float64 `json:"maxEnergy,omitempty"`
	RequireTaxonomy bool    `json:"requireTaxonomy,omitempty"`
	// DeadlineOnly restricts the rung to requests whose compute budget
	// already expired — the degraded-cache rung must never answer a
	// healthy request.
	DeadlineOnly bool `json:"deadlineOnly,omitempty"`
}

// Holds evaluates the condition against the gathered signals. When it
// does not hold, reason names the first failing check — the text that
// lands in the attempt trace.
func (c Condition) Holds(s Signals) (bool, string) {
	if c.DeadlineOnly && !s.Deadline {
		return false, "no deadline pressure"
	}
	if c.MinTrustOut > 0 && s.TrustOut < c.MinTrustOut {
		return false, fmt.Sprintf("trust out-degree %d < %d", s.TrustOut, c.MinTrustOut)
	}
	if c.MinRatings > 0 && s.Ratings < c.MinRatings {
		return false, fmt.Sprintf("ratings %d < %d", s.Ratings, c.MinRatings)
	}
	if c.MinPeers > 0 && s.Peers < c.MinPeers {
		return false, fmt.Sprintf("peers %d < %d", s.Peers, c.MinPeers)
	}
	if c.MaxPeers > 0 || c.MaxEnergy > 0 {
		thin := (c.MaxPeers > 0 && s.Peers <= c.MaxPeers) ||
			(c.MaxEnergy > 0 && s.Energy < c.MaxEnergy)
		if !thin {
			return false, fmt.Sprintf("neighborhood not thin (peers %d, energy %.3g)", s.Peers, s.Energy)
		}
	}
	if c.MinTopSim > 0 && s.TopSim < c.MinTopSim {
		return false, fmt.Sprintf("top similarity %.3g < %.3g", s.TopSim, c.MinTopSim)
	}
	if c.MaxTopSim > 0 && s.TopSim >= c.MaxTopSim {
		return false, fmt.Sprintf("top similarity %.3g >= %.3g", s.TopSim, c.MaxTopSim)
	}
	if c.MinEnergy > 0 && s.Energy < c.MinEnergy {
		return false, fmt.Sprintf("energy %.3g < %.3g", s.Energy, c.MinEnergy)
	}
	if c.RequireTaxonomy && !s.Taxonomy {
		return false, "no taxonomy profile space"
	}
	return true, ""
}

// Rung is one ladder step: a procedure guarded by its precondition.
// The JSON form is what GET /v1/strategies lists.
type Rung struct {
	Procedure Procedure `json:"procedure"`
	When      Condition `json:"condition"`
	Enabled   bool      `json:"enabled"`
}

// Config shapes the default ladder's thresholds. The zero value takes
// every default.
type Config struct {
	// MinPeers is the peer count below which a neighborhood counts as
	// thin: full synthesis requires at least this many ranked peers, and
	// trust-hop widening engages strictly below it. Default 3.
	MinPeers int
	// MinOverlap is the top-similarity threshold splitting full
	// synthesis (TopSim >= MinOverlap) from taxonomy-ancestor backoff
	// (TopSim < MinOverlap). 0 disables the overlap gate — full
	// synthesis then runs on peer count alone and the ancestor rung
	// never triggers. Default 0.1.
	MinOverlap float64
	// MinEnergy, when positive, additionally counts neighborhoods whose
	// total normalized trust mass falls below it as thin. Default 0.
	MinEnergy float64
	// HopDecay attenuates ranks recruited by trust-hop widening.
	// Default 0.5.
	HopDecay float64
	// AncestorDepth is the taxonomy depth profiles are generalized to by
	// the taxonomy-ancestor rung. Default 2.
	AncestorDepth int
	// Disable lists rungs to build disabled (still listed by
	// /v1/strategies, never walked).
	Disable []Procedure
}

// withDefaults fills zero fields with the package defaults.
func (c Config) withDefaults() Config {
	if c.MinPeers == 0 {
		c.MinPeers = 3
	}
	if c.MinOverlap == 0 {
		c.MinOverlap = 0.1
	}
	if c.HopDecay == 0 {
		c.HopDecay = 0.5
	}
	if c.AncestorDepth == 0 {
		c.AncestorDepth = 2
	}
	return c
}

// validate rejects nonsensical configurations (after defaulting).
func (c Config) validate() error {
	if c.MinPeers < 1 {
		return fmt.Errorf("strategy: min peers must be >= 1, got %d", c.MinPeers)
	}
	if c.MinOverlap < 0 || c.MinOverlap > 1 {
		return fmt.Errorf("strategy: min overlap must be in [0,1], got %v", c.MinOverlap)
	}
	if c.MinEnergy < 0 {
		return fmt.Errorf("strategy: min energy must be >= 0, got %v", c.MinEnergy)
	}
	if c.HopDecay <= 0 || c.HopDecay > 1 {
		return fmt.Errorf("strategy: hop decay must be in (0,1], got %v", c.HopDecay)
	}
	if c.AncestorDepth < 1 {
		return fmt.Errorf("strategy: ancestor depth must be >= 1, got %d", c.AncestorDepth)
	}
	known := make(map[Procedure]bool, len(Procedures))
	for _, p := range Procedures {
		known[p] = true
	}
	for _, p := range c.Disable {
		if !known[p] {
			return fmt.Errorf("strategy: unknown rung %q in disable list", p)
		}
	}
	if len(c.Disable) >= len(Procedures) {
		return errors.New("strategy: cannot disable every rung")
	}
	return nil
}

// Ladder is an immutable, validated rung sequence. Safe for concurrent
// use.
type Ladder struct {
	cfg   Config
	rungs []Rung
}

// New builds the default five-rung ladder from cfg (zero value = all
// defaults).
func New(cfg Config) (*Ladder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	disabled := make(map[Procedure]bool, len(cfg.Disable))
	for _, p := range cfg.Disable {
		disabled[p] = true
	}
	rungs := []Rung{
		{Procedure: FullSynthesis, When: Condition{
			MinPeers:  cfg.MinPeers,
			MinTopSim: cfg.MinOverlap,
		}},
		{Procedure: TrustHopWidening, When: Condition{
			MinTrustOut: 1,
			MaxPeers:    cfg.MinPeers - 1,
			MaxEnergy:   cfg.MinEnergy,
		}},
		{Procedure: TaxonomyAncestor, When: Condition{
			MinRatings:      1,
			MinPeers:        1,
			MaxTopSim:       cfg.MinOverlap,
			RequireTaxonomy: true,
		}},
		{Procedure: Popularity, When: Condition{}},
		{Procedure: DegradedCache, When: Condition{DeadlineOnly: true}},
	}
	for i := range rungs {
		rungs[i].Enabled = !disabled[rungs[i].Procedure]
	}
	return &Ladder{cfg: cfg, rungs: rungs}, nil
}

// Config returns the (defaulted) configuration the ladder was built from.
func (l *Ladder) Config() Config { return l.cfg }

// Rungs returns a copy of the ladder in walk order.
func (l *Ladder) Rungs() []Rung {
	out := make([]Rung, len(l.rungs))
	copy(out, l.rungs)
	return out
}

// Rung returns the rung for procedure p.
func (l *Ladder) Rung(p Procedure) (Rung, bool) {
	for _, r := range l.rungs {
		if r.Procedure == p {
			return r, true
		}
	}
	return Rung{}, false
}

// Selector is a validated per-request ladder override: pin exactly one
// rung (its condition is bypassed) or exclude a set of rungs. The zero
// value walks the full ladder.
type Selector struct {
	Pin     Procedure
	Exclude map[Procedure]bool
}

// IsZero reports whether the selector leaves the ladder untouched.
func (s Selector) IsZero() bool { return s.Pin == "" && len(s.Exclude) == 0 }

// ParseSelector parses the strategy= query parameter against a ladder:
// a bare rung name pins that rung; items prefixed with '-' exclude
// rungs; the two forms do not mix and at most one rung can be pinned.
// The empty string yields the zero selector.
func ParseSelector(q string, l *Ladder) (Selector, error) {
	var sel Selector
	if q == "" {
		return sel, nil
	}
	excluded := 0
	for _, item := range strings.Split(q, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return Selector{}, errors.New("strategy: empty item in strategy list")
		}
		if name, ok := strings.CutPrefix(item, "-"); ok {
			r, found := l.Rung(Procedure(name))
			if !found {
				return Selector{}, fmt.Errorf("strategy: unknown rung %q", name)
			}
			if sel.Pin != "" {
				return Selector{}, errors.New("strategy: cannot mix a pinned rung with exclusions")
			}
			if sel.Exclude == nil {
				sel.Exclude = make(map[Procedure]bool)
			}
			if !sel.Exclude[r.Procedure] {
				sel.Exclude[r.Procedure] = true
				if r.Enabled {
					excluded++
				}
			}
			continue
		}
		r, found := l.Rung(Procedure(item))
		if !found {
			return Selector{}, fmt.Errorf("strategy: unknown rung %q", item)
		}
		if !r.Enabled {
			return Selector{}, fmt.Errorf("strategy: rung %q is disabled", item)
		}
		if sel.Pin != "" {
			return Selector{}, errors.New("strategy: at most one rung can be pinned")
		}
		if len(sel.Exclude) > 0 {
			return Selector{}, errors.New("strategy: cannot mix a pinned rung with exclusions")
		}
		sel.Pin = r.Procedure
	}
	if sel.Pin == "" && excluded > 0 {
		enabled := 0
		for _, r := range l.rungs {
			if r.Enabled {
				enabled++
			}
		}
		if excluded >= enabled {
			return Selector{}, errors.New("strategy: cannot exclude every enabled rung")
		}
	}
	return sel, nil
}

// Outcome classifies one rung attempt in the trace.
type Outcome string

const (
	// OutcomeOK marks the rung that produced the answer.
	OutcomeOK Outcome = "ok"
	// OutcomeEmpty marks a rung that ran but produced nothing.
	OutcomeEmpty Outcome = "empty"
	// OutcomeSkipped marks a rung whose condition did not hold (or whose
	// procedure does not apply to the request kind).
	OutcomeSkipped Outcome = "skipped"
	// OutcomeExcluded marks a rung removed by the strategy= override.
	OutcomeExcluded Outcome = "excluded"
	// OutcomeDisabled marks a rung disabled by configuration.
	OutcomeDisabled Outcome = "disabled"
	// OutcomeDeadline marks a rung that could not run (or was cut short)
	// because the compute budget expired.
	OutcomeDeadline Outcome = "deadline"
	// OutcomeError marks a rung whose procedure failed durably.
	OutcomeError Outcome = "error"
)

// Attempt is one trace entry. Attempts carry no timings — the trace must
// be byte-identical across runs for equal snapshots.
type Attempt struct {
	Procedure Procedure `json:"procedure"`
	Outcome   Outcome   `json:"outcome"`
	Reason    string    `json:"reason,omitempty"`
}

// Result is the strategy provenance block of one answered request: the
// procedure that produced the answer (None on exhaustion), the full
// attempt trace, and the snapshot epoch the answer came from. Degraded
// answers keep PR 3's source marker inside the block.
type Result struct {
	Procedure Procedure `json:"procedure"`
	Attempts  []Attempt `json:"attempts"`
	Epoch     uint64    `json:"epoch"`
	Degraded  bool      `json:"degraded,omitempty"`
	Source    string    `json:"source,omitempty"`
}

// ErrNotApplicable is returned by a Runner whose procedure does not
// apply to the request kind (popularity has no peer-list analogue); the
// walk records the rung as skipped and moves on.
var ErrNotApplicable = errors.New("strategy: procedure not applicable")

// Runner executes one rung's procedure, reporting whether it produced a
// non-empty answer. The runner captures the answer itself; the walk only
// steers.
type Runner func(ctx context.Context, r Rung) (nonEmpty bool, err error)

// Walk executes the ladder against the gathered signals: the first
// enabled, non-excluded rung whose condition holds runs; empty or failed
// procedures fall through. A pinned rung runs alone with its condition
// bypassed. The returned result carries the attempt trace; Procedure is
// None when no rung answered (the exhausted counter increments).
func (l *Ladder) Walk(ctx context.Context, sig Signals, sel Selector, run Runner) *Result {
	res := &Result{Procedure: None, Attempts: make([]Attempt, 0, len(l.rungs))}
	if sel.Pin != "" {
		r, ok := l.Rung(sel.Pin)
		if !ok || !r.Enabled {
			// Selectors are validated at parse time; an invalid pin here
			// means the ladder changed underneath — treat as exhausted.
			res.Attempts = append(res.Attempts, Attempt{Procedure: sel.Pin, Outcome: OutcomeDisabled})
			recordExhausted()
			return res
		}
		l.attempt(ctx, res, sig, r, "pinned", run)
		if res.Procedure == None {
			recordExhausted()
		}
		return res
	}
	for _, r := range l.rungs {
		if sel.Exclude[r.Procedure] {
			res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeExcluded})
			continue
		}
		if !r.Enabled {
			res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeDisabled})
			continue
		}
		expired := sig.Deadline || ctx.Err() != nil
		if r.When.DeadlineOnly {
			if !expired {
				res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeSkipped, Reason: "no deadline pressure"})
				continue
			}
		} else if expired {
			res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeDeadline, Reason: "budget exhausted before rung"})
			continue
		} else if hold, reason := r.When.Holds(sig); !hold {
			res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeSkipped, Reason: reason})
			continue
		}
		if l.attempt(ctx, res, sig, r, "", run); res.Procedure != None {
			return res
		}
	}
	recordExhausted()
	return res
}

// attempt runs one rung's procedure and records its trace entry, setting
// res.Procedure on success.
func (l *Ladder) attempt(ctx context.Context, res *Result, _ Signals, r Rung, reason string, run Runner) {
	recordAttempt(r.Procedure)
	nonEmpty, err := run(ctx, r)
	switch {
	case errors.Is(err, ErrNotApplicable):
		res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeSkipped, Reason: "not applicable"})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeDeadline, Reason: "budget exhausted mid-rung"})
	case err != nil:
		res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeError, Reason: err.Error()})
	case !nonEmpty:
		res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeEmpty, Reason: reason})
	default:
		res.Attempts = append(res.Attempts, Attempt{Procedure: r.Procedure, Outcome: OutcomeOK, Reason: reason})
		res.Procedure = r.Procedure
		recordSuccess(r.Procedure)
	}
}

// stats publishes per-rung attempt/success and ladder-exhaustion
// counters: <procedure>_attempt, <procedure>_success, exhausted.
var stats = expvar.NewMap("swrec_strategy")

func recordAttempt(p Procedure) { stats.Add(string(p)+"_attempt", 1) }
func recordSuccess(p Procedure) { stats.Add(string(p)+"_success", 1) }
func recordExhausted()          { stats.Add("exhausted", 1) }
