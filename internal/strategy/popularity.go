package strategy

import (
	"slices"

	"swrec/internal/core"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// PopularityRank scores every product of the community by its total
// positive rating mass — the agent-independent vote the popularity rung
// serves when neither trust nor similarity can personalize (§2's
// cold-start agents). Score is the sum of positive rating values,
// Supporters the count of positive raters; products nobody likes are
// absent. Sorted by descending score, ties by product ID. The ranking
// depends only on the community, so engines compute it once per
// snapshot.
func PopularityRank(comm *model.Community) []core.Recommendation {
	scores := make([]float64, comm.NumProducts())
	supp := make([]int, comm.NumProducts())
	prods := make([]*model.Product, comm.NumProducts())
	for _, id := range comm.Agents() {
		a := comm.Agent(id)
		if a == nil {
			continue
		}
		for _, pr := range comm.PositiveRatings(a) {
			o := pr.Product.Ord()
			prods[o] = pr.Product
			scores[o] += pr.Value
			supp[o]++
		}
	}
	out := make([]core.Recommendation, 0, len(prods))
	for o, p := range prods {
		if p == nil {
			continue
		}
		out = append(out, core.Recommendation{Product: p.ID, Score: scores[o], Supporters: supp[o]})
	}
	slices.SortFunc(out, func(a, b core.Recommendation) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Product < b.Product:
			return -1
		case a.Product > b.Product:
			return 1
		default:
			return 0
		}
	})
	return out
}

// PopularityFor personalizes a popularity ranking for the active agent:
// products the agent already rated are dropped, and — when the community
// carries a taxonomy — products whose every descriptor lies in a
// category the agent "has left untouched until now" are stably moved to
// the front, implementing §3.4's content-driven incentive for trying new
// product groups. For a zero-rating cold-start agent every category is
// untouched, so the result degenerates to pure popularity. Returns at
// most n entries (all when n <= 0).
func PopularityFor(comm *model.Community, rank []core.Recommendation, active *model.Agent, n int) []core.Recommendation {
	if active == nil {
		return nil
	}
	touched := touchedTopics(comm, active)
	novel := make([]core.Recommendation, 0, len(rank))
	var rest []core.Recommendation
	for _, rec := range rank {
		if _, rated := active.Ratings[rec.Product]; rated {
			continue
		}
		if touched != nil && isNovelProduct(comm.Product(rec.Product), touched) {
			novel = append(novel, rec)
		} else {
			rest = append(rest, rec)
		}
		if n > 0 && len(novel) >= n {
			break // the front partition alone already fills the page
		}
	}
	out := append(novel, rest...)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// touchedTopics collects every topic (with ancestors, minus the root)
// the agent's positive ratings reach — the same notion core's
// NovelCategories mode uses. Returns nil when the community carries no
// taxonomy, disabling the novel-first partition.
func touchedTopics(comm *model.Community, a *model.Agent) map[taxonomy.Topic]bool {
	tax := comm.Taxonomy()
	if tax == nil {
		return nil
	}
	touched := make(map[taxonomy.Topic]bool)
	for _, pr := range comm.PositiveRatings(a) {
		for _, d := range pr.Product.Topics {
			touched[d] = true
			for _, anc := range tax.Ancestors(d) {
				touched[anc] = true
			}
		}
	}
	delete(touched, taxonomy.Root)
	return touched
}

// isNovelProduct reports whether every descriptor of p lies outside the
// touched set.
func isNovelProduct(p *model.Product, touched map[taxonomy.Topic]bool) bool {
	if p == nil || len(p.Topics) == 0 {
		return false
	}
	for _, d := range p.Topics {
		if touched[d] {
			return false
		}
	}
	return true
}
