package model

// Symbols is a community's symbol table: the bidirectional mapping
// between URI-string identifiers (AgentID, ProductID) and the dense
// int32 ordinals the hot paths compute with. It is a view over the
// community — the forward direction reads the agent/product registries,
// the reverse direction indexes the insertion-order slices, which by
// construction ARE the ordinal order (AddAgent/AddProduct assign
// ord = len(slice) and records are never deleted).
//
// Ordinal stability rules (what makes ordinal-keyed state carry across
// epochs):
//
//   - an agent's ordinal is assigned at first materialization and never
//     changes: Clone preserves it, Merge and the ingest apply path only
//     append, and nothing deletes agents;
//   - therefore the agents of epoch N are a prefix — with identical
//     ordinals — of the agents of every later epoch in the same clone
//     lineage, and agents joined in between occupy fresh ordinals at and
//     beyond the old NumAgents;
//   - the same holds for products (AddProduct keeps the ordinal across
//     metadata refreshes).
//
// Strings cross into ordinals exactly once per request at the API
// boundary; everything below (trust walks, similarity rows, cache keys,
// dirty sets, checkpoint records) computes on the ordinals.
type Symbols struct {
	c *Community
}

// Symbols returns the community's symbol table view.
func (c *Community) Symbols() Symbols { return Symbols{c} }

// NumAgents returns the size of the agent ordinal space.
func (s Symbols) NumAgents() int { return len(s.c.agentIDs) }

// NumProducts returns the size of the product ordinal space.
func (s Symbols) NumProducts() int { return len(s.c.prodIDs) }

// AgentOrd resolves an agent URI to its dense ordinal; ok is false for
// agents the community has not materialized.
func (s Symbols) AgentOrd(id AgentID) (int32, bool) {
	a := s.c.agents[id]
	if a == nil {
		return 0, false
	}
	return a.ord, true
}

// AgentID resolves an ordinal back to its URI; ok is false outside
// [0, NumAgents).
func (s Symbols) AgentID(ord int32) (AgentID, bool) {
	if ord < 0 || int(ord) >= len(s.c.agentIDs) {
		return "", false
	}
	return s.c.agentIDs[ord], true
}

// AgentAt returns the agent record with the given ordinal, or nil
// outside the ordinal space.
func (s Symbols) AgentAt(ord int32) *Agent {
	if ord < 0 || int(ord) >= len(s.c.agentIDs) {
		return nil
	}
	return s.c.agents[s.c.agentIDs[ord]]
}

// ProductOrd resolves a product ID to its dense ordinal; ok is false for
// uncataloged products.
func (s Symbols) ProductOrd(id ProductID) (int32, bool) {
	p := s.c.products[id]
	if p == nil {
		return 0, false
	}
	return p.ord, true
}

// ProductID resolves an ordinal back to its product ID; ok is false
// outside [0, NumProducts).
func (s Symbols) ProductID(ord int32) (ProductID, bool) {
	if ord < 0 || int(ord) >= len(s.c.prodIDs) {
		return "", false
	}
	return s.c.prodIDs[ord], true
}

// ProductAt returns the product record with the given ordinal, or nil
// outside the ordinal space.
func (s Symbols) ProductAt(ord int32) *Product {
	if ord < 0 || int(ord) >= len(s.c.prodIDs) {
		return nil
	}
	return s.c.products[s.c.prodIDs[ord]]
}
