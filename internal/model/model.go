// Package model implements the paper's information model (§3.1):
//
//   - a set of agents A = {a1..an}, identified by globally unique URIs,
//   - a set of products B = {b1..bm}, identified by catalog identifiers
//     such as ISBNs,
//   - partial trust functions T = {t1..tn}, ti: A → [-1,+1]⊥,
//   - partial rating functions R = {r1..rn}, ri: B → [-1,+1]⊥,
//   - a descriptor assignment function f: B → 2^D into a taxonomy C
//     (package taxonomy).
//
// Partiality is modeled by map absence: a missing key is ⊥. Trust values
// around zero indicate *absence* of trust, which the paper is careful to
// distinguish from explicit distrust (negative values, Marsh [8]).
//
// Agent and rating data is conceptually distributed across machine-readable
// homepages on the Semantic Web; Community is the local, materialized view
// an agent assembles (e.g. by crawling, package crawler) before it runs all
// recommendation computations locally (§2). The taxonomy and the product
// catalog are the globally accessible part of the model.
package model

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"

	"swrec/internal/taxonomy"
)

// AgentID is the globally unique identifier of an agent, usually the URI of
// its machine-readable homepage (e.g. "http://example.org/people/alice").
type AgentID string

// ProductID is the globally unique identifier of a product. For books the
// paper uses ISBNs (e.g. "urn:isbn:0521386322"); identifiers from a catalog
// agreed upon, such as Amazon ASINs, work equally.
type ProductID string

// Rating bounds: both trust and product ratings live in [-1, +1] (§3.1).
const (
	MinValue = -1.0
	MaxValue = +1.0
)

var (
	// ErrValueRange is returned when a trust or rating value lies outside
	// [-1, +1].
	ErrValueRange = errors.New("model: value outside [-1,+1]")
	// ErrUnknownAgent is returned when an agent is not part of the
	// community view.
	ErrUnknownAgent = errors.New("model: unknown agent")
	// ErrUnknownProduct is returned when a product is not in the catalog.
	ErrUnknownProduct = errors.New("model: unknown product")
	// ErrSelfTrust is returned when an agent states trust in itself.
	ErrSelfTrust = errors.New("model: agent cannot trust itself")
)

// TrustStatement is one edge of the trust network: src accords value to dst.
type TrustStatement struct {
	Src, Dst AgentID
	Value    float64
}

// RatingStatement is one product rating: agent rated product with value.
type RatingStatement struct {
	Agent   AgentID
	Product ProductID
	Value   float64
}

// Product is one catalog entry of set B with its topic descriptors f(b).
type Product struct {
	ID     ProductID
	Title  string
	ISBN   string // optional; set for books
	Topics []taxonomy.Topic
	// ord is the product's dense per-community ordinal in [0,
	// NumProducts), assigned at first AddProduct (products are never
	// deleted). Flat request-scoped accumulators index by it instead of
	// hashing product IDs.
	ord int32
}

// Ord returns the product's dense per-community ordinal (see ord).
func (p *Product) Ord() int32 { return p.ord }

// Agent is the materialized state of one agent: its partial trust function
// t_i (map absence = ⊥) and its partial rating function r_i.
type Agent struct {
	ID      AgentID
	Name    string // optional display name (foaf:name)
	Trust   map[AgentID]float64
	Ratings map[ProductID]float64
	// peersMemo and ratingsMemo cache the sorted statement views
	// (TrustedPeers, RatedProducts), which the trust metrics and profile
	// generation walk once per agent per request. Atomic so concurrent
	// readers of an immutable snapshot may race on first build: every
	// build produces the identical sorted slice, so last-store-wins is
	// benign. Mutators going through the Community setters invalidate;
	// code that writes the maps directly must call MarkDirty.
	peersMemo   atomic.Pointer[[]TrustStatement]
	ratingsMemo atomic.Pointer[[]RatingStatement]
	posMemo     atomic.Pointer[[]PositiveRating]
	refsMemo    atomic.Pointer[[]TrustRef]
	// ord is the agent's dense per-community ordinal in [0, NumAgents),
	// assigned at materialization (agents are never deleted). Graph
	// walks index flat tables by it instead of hashing agent IDs.
	ord int32
}

// Ord returns the agent's dense per-community ordinal (see ord).
func (a *Agent) Ord() int32 { return a.ord }

// TrustRef is one trust statement with its target resolved to the
// community's agent record — the unit trust-graph walks traverse without
// paying a string-keyed lookup per edge.
type TrustRef struct {
	Peer  *Agent
	Value float64
}

// PositiveRating is one positively rated, catalog-resolved product of an
// agent — the unit of profile generation (§3.3), with the product
// pre-resolved so the hot path pays no catalog lookup.
type PositiveRating struct {
	Product *Product
	Value   float64
}

// MarkDirty drops the agent's cached derived views. The Community
// setters call it automatically; callers mutating Trust or Ratings maps
// directly (evaluation harnesses) must call it themselves afterwards.
func (a *Agent) MarkDirty() {
	a.peersMemo.Store(nil)
	a.ratingsMemo.Store(nil)
	a.posMemo.Store(nil)
	a.refsMemo.Store(nil)
}

// newAgent allocates an empty agent record.
func newAgent(id AgentID) *Agent {
	return &Agent{
		ID:      id,
		Trust:   make(map[AgentID]float64),
		Ratings: make(map[ProductID]float64),
	}
}

// TrustedPeers returns the peers a directly trusts or distrusts, sorted by
// descending value (ties broken by ID for determinism). The slice is
// memoized until the agent's trust function changes and must not be
// modified by the caller.
func (a *Agent) TrustedPeers() []TrustStatement {
	if m := a.peersMemo.Load(); m != nil {
		return *m
	}
	out := make([]TrustStatement, 0, len(a.Trust))
	for dst, v := range a.Trust {
		out = append(out, TrustStatement{Src: a.ID, Dst: dst, Value: v})
	}
	slices.SortFunc(out, func(x, y TrustStatement) int {
		switch {
		case x.Value > y.Value:
			return -1
		case x.Value < y.Value:
			return 1
		case x.Dst < y.Dst:
			return -1
		case x.Dst > y.Dst:
			return 1
		default:
			return 0
		}
	})
	a.peersMemo.Store(&out)
	return out
}

// RatedProducts returns the agent's ratings sorted by descending value
// (ties broken by product ID). Positive ratings form a prefix, so
// "appreciated products" scans stop at the first non-positive value. The
// slice is memoized until the agent's rating function changes and must
// not be modified by the caller.
func (a *Agent) RatedProducts() []RatingStatement {
	if m := a.ratingsMemo.Load(); m != nil {
		return *m
	}
	out := make([]RatingStatement, 0, len(a.Ratings))
	for p, v := range a.Ratings {
		out = append(out, RatingStatement{Agent: a.ID, Product: p, Value: v})
	}
	slices.SortFunc(out, func(x, y RatingStatement) int {
		switch {
		case x.Value > y.Value:
			return -1
		case x.Value < y.Value:
			return 1
		case x.Product < y.Product:
			return -1
		case x.Product > y.Product:
			return 1
		default:
			return 0
		}
	})
	a.ratingsMemo.Store(&out)
	return out
}

// PositiveRatings returns agent a's positive ratings with their catalog
// entries resolved, in RatedProducts order (descending value, ties by
// product ID). Ratings referencing products missing from this catalog
// are skipped. The slice is memoized on the agent until its ratings
// change and must not be modified; the product pointers stay valid
// across catalog metadata refreshes because AddProduct updates records
// in place.
func (c *Community) PositiveRatings(a *Agent) []PositiveRating {
	if m := a.posMemo.Load(); m != nil {
		return *m
	}
	out := make([]PositiveRating, 0, len(a.Ratings))
	for _, rs := range a.RatedProducts() {
		if rs.Value <= 0 {
			break // positives form a prefix
		}
		if p := c.products[rs.Product]; p != nil {
			out = append(out, PositiveRating{Product: p, Value: rs.Value})
		}
	}
	a.posMemo.Store(&out)
	return out
}

// TrustRefs returns agent a's trust statements with the targets resolved
// to this community's agent records, in TrustedPeers order (descending
// value, ties by ID). Targets are always materialized — SetTrust and
// Merge register both endpoints — so every statement resolves; a target
// missing anyway (direct map mutation bypassing the invariant) is
// skipped. Memoized on the agent until its trust function changes; the
// slice must not be modified.
func (c *Community) TrustRefs(a *Agent) []TrustRef {
	if m := a.refsMemo.Load(); m != nil {
		return *m
	}
	out := make([]TrustRef, 0, len(a.Trust))
	for _, st := range a.TrustedPeers() {
		if p := c.agents[st.Dst]; p != nil {
			out = append(out, TrustRef{Peer: p, Value: st.Value})
		}
	}
	a.refsMemo.Store(&out)
	return out
}

// Community is a local, materialized view of the distributed model: the
// agents known so far, the global product catalog, and the shared taxonomy.
// It is the substrate all recommendation computation operates on.
//
// A Community is not safe for concurrent mutation. Reads may proceed
// concurrently once loading is finished.
type Community struct {
	agents   map[AgentID]*Agent
	agentIDs []AgentID // insertion order, for deterministic iteration
	products map[ProductID]*Product
	prodIDs  []ProductID
	tax      *taxonomy.Taxonomy
}

// NewCommunity creates an empty community over the given taxonomy. The
// taxonomy may be nil for pure trust-network use; profile generation
// requires one.
func NewCommunity(tax *taxonomy.Taxonomy) *Community {
	return &Community{
		agents:   make(map[AgentID]*Agent),
		products: make(map[ProductID]*Product),
		tax:      tax,
	}
}

// Taxonomy returns the community's shared taxonomy C (may be nil).
func (c *Community) Taxonomy() *taxonomy.Taxonomy { return c.tax }

// NumAgents returns |A| as materialized locally.
func (c *Community) NumAgents() int { return len(c.agents) }

// NumProducts returns |B|.
func (c *Community) NumProducts() int { return len(c.products) }

// AddAgent registers an agent if not yet present and returns its record.
func (c *Community) AddAgent(id AgentID) *Agent {
	if a, ok := c.agents[id]; ok {
		return a
	}
	a := newAgent(id)
	a.ord = int32(len(c.agentIDs))
	c.agents[id] = a
	c.agentIDs = append(c.agentIDs, id)
	return a
}

// Agent returns the record of id, or nil if unknown.
func (c *Community) Agent(id AgentID) *Agent { return c.agents[id] }

// HasAgent reports whether id has been materialized.
func (c *Community) HasAgent(id AgentID) bool { _, ok := c.agents[id]; return ok }

// Agents returns all agent IDs in insertion order. The slice must not be
// modified.
func (c *Community) Agents() []AgentID { return c.agentIDs }

// AddProduct registers a catalog entry. Re-adding an existing ID replaces
// its metadata (catalogs get refreshed by crawls).
func (c *Community) AddProduct(p Product) *Product {
	if old, ok := c.products[p.ID]; ok {
		ord := old.ord
		*old = p
		old.ord = ord // the dense ordinal survives metadata refreshes
		return old
	}
	cp := p
	cp.ord = int32(len(c.prodIDs))
	c.products[p.ID] = &cp
	c.prodIDs = append(c.prodIDs, p.ID)
	return &cp
}

// Product returns the catalog entry for id, or nil if unknown.
func (c *Community) Product(id ProductID) *Product { return c.products[id] }

// Products returns all product IDs in insertion order. The slice must not
// be modified.
func (c *Community) Products() []ProductID { return c.prodIDs }

// SetTrust records t_src(dst) = v. Both endpoints are materialized if
// needed (the Semantic Web has no referential integrity: statements about
// yet-unseen agents are normal).
func (c *Community) SetTrust(src, dst AgentID, v float64) error {
	if src == dst {
		return fmt.Errorf("%w: %s", ErrSelfTrust, src)
	}
	if v < MinValue || v > MaxValue {
		return fmt.Errorf("%w: trust(%s,%s) = %v", ErrValueRange, src, dst, v)
	}
	c.AddAgent(dst)
	a := c.AddAgent(src)
	a.Trust[dst] = v
	a.peersMemo.Store(nil)
	a.refsMemo.Store(nil)
	return nil
}

// Trust returns t_src(dst); ok is false when the value is ⊥ (absent).
func (c *Community) Trust(src, dst AgentID) (v float64, ok bool) {
	a := c.agents[src]
	if a == nil {
		return 0, false
	}
	v, ok = a.Trust[dst]
	return v, ok
}

// SetRating records r_agent(product) = v. The product must already be in
// the catalog: ratings refer to globally known identifiers (§3.1).
func (c *Community) SetRating(agent AgentID, product ProductID, v float64) error {
	if v < MinValue || v > MaxValue {
		return fmt.Errorf("%w: rating(%s,%s) = %v", ErrValueRange, agent, product, v)
	}
	if _, ok := c.products[product]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProduct, product)
	}
	a := c.AddAgent(agent)
	a.Ratings[product] = v
	a.ratingsMemo.Store(nil)
	a.posMemo.Store(nil)
	return nil
}

// Rating returns r_agent(product); ok is false when the value is ⊥.
func (c *Community) Rating(agent AgentID, product ProductID) (v float64, ok bool) {
	a := c.agents[agent]
	if a == nil {
		return 0, false
	}
	v, ok = a.Ratings[product]
	return v, ok
}

// DeleteTrust retracts t_src(dst), restoring ⊥. Retracting an absent
// statement is a no-op: retraction messages on the Semantic Web may
// arrive for statements never materialized locally.
func (c *Community) DeleteTrust(src, dst AgentID) {
	if a := c.agents[src]; a != nil {
		delete(a.Trust, dst)
		a.peersMemo.Store(nil)
		a.refsMemo.Store(nil)
	}
}

// DeleteRating retracts r_agent(product), restoring ⊥. Retracting an
// absent rating is a no-op.
func (c *Community) DeleteRating(agent AgentID, product ProductID) {
	if a := c.agents[agent]; a != nil {
		delete(a.Ratings, product)
		a.ratingsMemo.Store(nil)
		a.posMemo.Store(nil)
	}
}

// Clone returns a deep copy of the community: agents, trust and rating
// functions, and the catalog are copied; the taxonomy (immutable once
// built) is shared. Insertion order is preserved, so a clone is
// byte-equivalent to the original under deterministic serialization.
// Clone is how the ingestion path derives a mutable working copy from a
// snapshot that is concurrently being served.
func (c *Community) Clone() *Community {
	out := &Community{
		agents:   make(map[AgentID]*Agent, len(c.agents)),
		agentIDs: append([]AgentID(nil), c.agentIDs...),
		products: make(map[ProductID]*Product, len(c.products)),
		prodIDs:  append([]ProductID(nil), c.prodIDs...),
		tax:      c.tax,
	}
	for id, a := range c.agents {
		cp := &Agent{
			ID:      a.ID,
			Name:    a.Name,
			Trust:   make(map[AgentID]float64, len(a.Trust)),
			Ratings: make(map[ProductID]float64, len(a.Ratings)),
			ord:     a.ord,
		}
		for peer, v := range a.Trust {
			cp.Trust[peer] = v
		}
		for p, v := range a.Ratings {
			cp.Ratings[p] = v
		}
		out.agents[id] = cp
	}
	for id, p := range c.products {
		cp := *p
		cp.Topics = append([]taxonomy.Topic(nil), p.Topics...)
		out.products[id] = &cp
	}
	return out
}

// TrustEdges returns the full trust network as a flat statement list, in
// deterministic order (by source insertion order, then by the per-agent
// order of TrustedPeers).
func (c *Community) TrustEdges() []TrustStatement {
	var out []TrustStatement
	for _, id := range c.agentIDs {
		out = append(out, c.agents[id].TrustedPeers()...)
	}
	return out
}

// Stats summarizes the community, mirroring the §4.1 infrastructure report
// (≈9,100 users, 9,953 books, their trust relationships and ratings).
type Stats struct {
	Agents        int
	Products      int
	TrustEdges    int
	Ratings       int
	MeanTrustDeg  float64 // mean outdegree of the trust graph
	MeanRatings   float64 // mean ratings per agent
	DistrustEdges int     // edges with negative value
}

// ComputeStats scans the community and returns aggregate statistics.
func (c *Community) ComputeStats() Stats {
	s := Stats{Agents: len(c.agents), Products: len(c.products)}
	for _, a := range c.agents {
		s.TrustEdges += len(a.Trust)
		s.Ratings += len(a.Ratings)
		for _, v := range a.Trust {
			if v < 0 {
				s.DistrustEdges++
			}
		}
	}
	if s.Agents > 0 {
		s.MeanTrustDeg = float64(s.TrustEdges) / float64(s.Agents)
		s.MeanRatings = float64(s.Ratings) / float64(s.Agents)
	}
	return s
}

// Validate checks the §3.1 model invariants over the whole view: trust
// and rating values in [-1,+1], no self-trust, every rating referencing a
// catalog entry, and every product descriptor resolving in the taxonomy.
// It returns the first violation found, or nil. Crawled and imported
// views are checked before recommendation computation trusts them.
func (c *Community) Validate() error {
	for _, id := range c.agentIDs {
		a := c.agents[id]
		for peer, v := range a.Trust {
			if peer == id {
				return fmt.Errorf("%w: %s", ErrSelfTrust, id)
			}
			if v < MinValue || v > MaxValue {
				return fmt.Errorf("%w: trust(%s,%s) = %v", ErrValueRange, id, peer, v)
			}
		}
		for p, v := range a.Ratings {
			if v < MinValue || v > MaxValue {
				return fmt.Errorf("%w: rating(%s,%s) = %v", ErrValueRange, id, p, v)
			}
			if _, ok := c.products[p]; !ok {
				return fmt.Errorf("%w: rating of %s by %s", ErrUnknownProduct, p, id)
			}
		}
	}
	if c.tax != nil {
		limit := taxonomy.Topic(c.tax.Len())
		for _, pid := range c.prodIDs {
			for _, d := range c.products[pid].Topics {
				if d < 0 || d >= limit {
					return fmt.Errorf("model: product %s references topic %d outside the taxonomy", pid, d)
				}
			}
		}
	}
	return nil
}

// Merge folds the contents of other into c: union of agents, trust and
// rating statements (other wins on conflicts, it is assumed fresher), and
// union of catalogs. Taxonomies are not merged; c keeps its own. Merge is
// how a crawler incrementally extends its materialized view.
func (c *Community) Merge(other *Community) {
	for _, pid := range other.prodIDs {
		c.AddProduct(*other.products[pid])
	}
	for _, id := range other.agentIDs {
		src := other.agents[id]
		dst := c.AddAgent(id)
		if src.Name != "" {
			dst.Name = src.Name
		}
		for peer, v := range src.Trust {
			c.AddAgent(peer)
			dst.Trust[peer] = v
		}
		for p, v := range src.Ratings {
			if _, ok := c.products[p]; !ok {
				// Statement about a product the catalog does not know yet;
				// register a bare entry so the rating is not lost.
				c.AddProduct(Product{ID: p})
			}
			dst.Ratings[p] = v
		}
		dst.MarkDirty()
	}
}
