package model

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"swrec/internal/taxonomy"
)

func TestAddAgentIdempotent(t *testing.T) {
	c := NewCommunity(nil)
	a1 := c.AddAgent("http://x/alice")
	a2 := c.AddAgent("http://x/alice")
	if a1 != a2 {
		t.Fatal("AddAgent created a second record for the same ID")
	}
	if c.NumAgents() != 1 {
		t.Fatalf("NumAgents = %d, want 1", c.NumAgents())
	}
}

func TestSetTrustValidation(t *testing.T) {
	c := NewCommunity(nil)
	if err := c.SetTrust("a", "a", 0.5); !errors.Is(err, ErrSelfTrust) {
		t.Fatalf("self trust: got %v, want ErrSelfTrust", err)
	}
	if err := c.SetTrust("a", "b", 1.5); !errors.Is(err, ErrValueRange) {
		t.Fatalf("out of range: got %v, want ErrValueRange", err)
	}
	if err := c.SetTrust("a", "b", -1.5); !errors.Is(err, ErrValueRange) {
		t.Fatalf("out of range: got %v, want ErrValueRange", err)
	}
	if err := c.SetTrust("a", "b", 0.7); err != nil {
		t.Fatal(err)
	}
	// Both endpoints materialized.
	if !c.HasAgent("a") || !c.HasAgent("b") {
		t.Fatal("SetTrust must materialize both endpoints")
	}
	v, ok := c.Trust("a", "b")
	if !ok || v != 0.7 {
		t.Fatalf("Trust = %v,%v, want 0.7,true", v, ok)
	}
	// Partiality: unknown pairs are ⊥.
	if _, ok := c.Trust("b", "a"); ok {
		t.Fatal("unset trust must be ⊥")
	}
	if _, ok := c.Trust("nobody", "a"); ok {
		t.Fatal("unknown agent must be ⊥")
	}
}

func TestDistrustIsDistinctFromAbsence(t *testing.T) {
	c := NewCommunity(nil)
	if err := c.SetTrust("a", "b", -1); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Trust("a", "b")
	if !ok || v != -1 {
		t.Fatal("explicit distrust must be stored, not treated as absence")
	}
	st := c.ComputeStats()
	if st.DistrustEdges != 1 {
		t.Fatalf("DistrustEdges = %d, want 1", st.DistrustEdges)
	}
}

func TestSetRatingRequiresCatalogEntry(t *testing.T) {
	c := NewCommunity(nil)
	if err := c.SetRating("a", "urn:isbn:1", 0.9); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("got %v, want ErrUnknownProduct", err)
	}
	c.AddProduct(Product{ID: "urn:isbn:1", Title: "Snow Crash"})
	if err := c.SetRating("a", "urn:isbn:1", 2); !errors.Is(err, ErrValueRange) {
		t.Fatalf("got %v, want ErrValueRange", err)
	}
	if err := c.SetRating("a", "urn:isbn:1", 0.9); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Rating("a", "urn:isbn:1")
	if !ok || v != 0.9 {
		t.Fatalf("Rating = %v,%v", v, ok)
	}
}

func TestAddProductReplacesMetadata(t *testing.T) {
	c := NewCommunity(nil)
	c.AddProduct(Product{ID: "p", Title: "old"})
	c.AddProduct(Product{ID: "p", Title: "new"})
	if c.NumProducts() != 1 {
		t.Fatalf("NumProducts = %d, want 1", c.NumProducts())
	}
	if got := c.Product("p").Title; got != "new" {
		t.Fatalf("Title = %q, want new", got)
	}
}

func TestTrustedPeersOrdering(t *testing.T) {
	c := NewCommunity(nil)
	must(t, c.SetTrust("a", "c", 0.5))
	must(t, c.SetTrust("a", "b", 0.5))
	must(t, c.SetTrust("a", "d", 0.9))
	must(t, c.SetTrust("a", "e", -0.2))
	peers := c.Agent("a").TrustedPeers()
	want := []AgentID{"d", "b", "c", "e"}
	for i, p := range peers {
		if p.Dst != want[i] {
			t.Fatalf("peer %d = %s, want %s", i, p.Dst, want[i])
		}
	}
}

func TestRatedProductsOrdering(t *testing.T) {
	c := NewCommunity(nil)
	for _, id := range []ProductID{"p1", "p2", "p3"} {
		c.AddProduct(Product{ID: id})
	}
	must(t, c.SetRating("a", "p2", 0.1))
	must(t, c.SetRating("a", "p1", 0.9))
	must(t, c.SetRating("a", "p3", 0.9))
	rs := c.Agent("a").RatedProducts()
	want := []ProductID{"p1", "p3", "p2"}
	for i, r := range rs {
		if r.Product != want[i] {
			t.Fatalf("rating %d = %s, want %s", i, r.Product, want[i])
		}
	}
}

func TestAgentsDeterministicOrder(t *testing.T) {
	c := NewCommunity(nil)
	ids := []AgentID{"z", "a", "m", "b"}
	for _, id := range ids {
		c.AddAgent(id)
	}
	got := c.Agents()
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("Agents()[%d] = %s, want insertion order %s", i, got[i], ids[i])
		}
	}
}

func TestComputeStats(t *testing.T) {
	c := NewCommunity(taxonomy.Fig1())
	c.AddProduct(Product{ID: "p1"})
	c.AddProduct(Product{ID: "p2"})
	must(t, c.SetTrust("a", "b", 1))
	must(t, c.SetTrust("a", "c", -0.5))
	must(t, c.SetTrust("b", "c", 0.3))
	must(t, c.SetRating("a", "p1", 0.5))
	must(t, c.SetRating("b", "p1", 0.5))
	must(t, c.SetRating("b", "p2", -0.5))
	s := c.ComputeStats()
	if s.Agents != 3 || s.Products != 2 || s.TrustEdges != 3 || s.Ratings != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DistrustEdges != 1 {
		t.Fatalf("DistrustEdges = %d, want 1", s.DistrustEdges)
	}
	if s.MeanTrustDeg != 1 || s.MeanRatings != 1 {
		t.Fatalf("means = %v, %v, want 1, 1", s.MeanTrustDeg, s.MeanRatings)
	}
}

func TestMerge(t *testing.T) {
	base := NewCommunity(nil)
	base.AddProduct(Product{ID: "p1", Title: "keep"})
	must(t, base.SetTrust("a", "b", 0.2))

	inc := NewCommunity(nil)
	inc.AddProduct(Product{ID: "p2", Title: "incoming"})
	must(t, inc.SetTrust("a", "b", 0.8)) // fresher value wins
	must(t, inc.SetTrust("c", "a", 0.5))
	must(t, inc.SetRating("c", "p2", 1))
	inc.AddAgent("c").Name = "Carol"
	// Rating about a product base does not know:
	inc.AddProduct(Product{ID: "p3"})
	must(t, inc.SetRating("a", "p3", 0.4))

	base.Merge(inc)

	if v, _ := base.Trust("a", "b"); v != 0.8 {
		t.Fatalf("merge should take fresher trust, got %v", v)
	}
	if v, _ := base.Trust("c", "a"); v != 0.5 {
		t.Fatalf("merged trust missing, got %v", v)
	}
	if base.Agent("c").Name != "Carol" {
		t.Fatal("merged name missing")
	}
	if base.Product("p2") == nil || base.Product("p3") == nil {
		t.Fatal("merged products missing")
	}
	if v, ok := base.Rating("a", "p3"); !ok || v != 0.4 {
		t.Fatal("merged rating about new product missing")
	}
	if base.Product("p1").Title != "keep" {
		t.Fatal("merge must not clobber unrelated catalog entries")
	}
}

func TestValidate(t *testing.T) {
	c := NewCommunity(taxonomy.Fig1())
	c.AddProduct(Product{ID: "p1"})
	must(t, c.SetTrust("a", "b", 0.5))
	must(t, c.SetRating("a", "p1", 0.5))
	if err := c.Validate(); err != nil {
		t.Fatalf("clean community invalid: %v", err)
	}
	// Violations injected behind the setters' backs (as a buggy crawler
	// or manual mutation would).
	c.Agent("a").Trust["a"] = 1
	if err := c.Validate(); !errors.Is(err, ErrSelfTrust) {
		t.Fatalf("self trust: %v", err)
	}
	delete(c.Agent("a").Trust, "a")

	c.Agent("a").Trust["b"] = 7
	if err := c.Validate(); !errors.Is(err, ErrValueRange) {
		t.Fatalf("trust range: %v", err)
	}
	c.Agent("a").Trust["b"] = 0.5

	c.Agent("a").Ratings["ghost"] = 0.5
	if err := c.Validate(); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("phantom product: %v", err)
	}
	delete(c.Agent("a").Ratings, "ghost")

	c.Agent("a").Ratings["p1"] = -9
	if err := c.Validate(); !errors.Is(err, ErrValueRange) {
		t.Fatalf("rating range: %v", err)
	}
	c.Agent("a").Ratings["p1"] = 1

	c.Product("p1").Topics = []taxonomy.Topic{9999}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-taxonomy descriptor accepted")
	}
	c.Product("p1").Topics = nil
	if err := c.Validate(); err != nil {
		t.Fatalf("restored community invalid: %v", err)
	}
}

// Property: generated and merged communities always validate.
func TestValidateGeneratedProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randomCommunity(seed, 25, 15)
		if src.Validate() != nil {
			return false
		}
		dst := NewCommunity(nil)
		dst.Merge(src)
		return dst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a community into an empty one reproduces its stats.
func TestMergeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randomCommunity(seed, 30, 20)
		dst := NewCommunity(nil)
		dst.Merge(src)
		a, b := src.ComputeStats(), dst.ComputeStats()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is idempotent — merging the same community twice changes
// nothing.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randomCommunity(seed, 30, 20)
		dst := NewCommunity(nil)
		dst.Merge(src)
		first := dst.ComputeStats()
		dst.Merge(src)
		return dst.ComputeStats() == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomCommunity builds a small random community for property tests.
func randomCommunity(seed int64, agents, products int) *Community {
	rng := rand.New(rand.NewSource(seed))
	c := NewCommunity(nil)
	ids := make([]AgentID, agents)
	for i := range ids {
		ids[i] = AgentID("http://x/a" + string(rune('A'+i%26)) + itoa(i))
		c.AddAgent(ids[i])
	}
	pids := make([]ProductID, products)
	for i := range pids {
		pids[i] = ProductID("urn:p:" + itoa(i))
		c.AddProduct(Product{ID: pids[i]})
	}
	for i := 0; i < agents*3; i++ {
		src, dst := ids[rng.Intn(agents)], ids[rng.Intn(agents)]
		if src == dst {
			continue
		}
		_ = c.SetTrust(src, dst, rng.Float64()*2-1)
	}
	for i := 0; i < agents*4; i++ {
		_ = c.SetRating(ids[rng.Intn(agents)], pids[rng.Intn(products)], rng.Float64()*2-1)
	}
	return c
}

func TestDeleteTrustAndRating(t *testing.T) {
	c := NewCommunity(nil)
	c.AddProduct(Product{ID: "p1"})
	must(t, c.SetTrust("a", "b", 0.5))
	must(t, c.SetRating("a", "p1", 0.9))

	c.DeleteTrust("a", "b")
	if _, ok := c.Trust("a", "b"); ok {
		t.Fatal("trust statement survived deletion")
	}
	c.DeleteRating("a", "p1")
	if _, ok := c.Rating("a", "p1"); ok {
		t.Fatal("rating survived deletion")
	}
	// Deleting absent statements (and from unknown agents) is a no-op.
	c.DeleteTrust("a", "b")
	c.DeleteTrust("ghost", "b")
	c.DeleteRating("ghost", "p1")
	if !c.HasAgent("a") || !c.HasAgent("b") {
		t.Fatal("deletion must not unmaterialize agents")
	}
}

func TestCloneIsDeepAndOrderPreserving(t *testing.T) {
	c := randomCommunity(7, 12, 8)
	c.Agent(c.Agents()[0]).Name = "Alice"

	cp := c.Clone()
	if cp.Taxonomy() != c.Taxonomy() {
		t.Fatal("taxonomy must be shared, not copied")
	}
	if len(cp.Agents()) != len(c.Agents()) || len(cp.Products()) != len(c.Products()) {
		t.Fatal("clone lost agents or products")
	}
	for i, id := range c.Agents() {
		if cp.Agents()[i] != id {
			t.Fatal("agent insertion order not preserved")
		}
		orig, cl := c.Agent(id), cp.Agent(id)
		if orig == cl {
			t.Fatal("agent record shared between clone and original")
		}
		if cl.Name != orig.Name || len(cl.Trust) != len(orig.Trust) || len(cl.Ratings) != len(orig.Ratings) {
			t.Fatalf("agent %s not copied faithfully", id)
		}
	}
	for i, pid := range c.Products() {
		if cp.Products()[i] != pid {
			t.Fatal("product insertion order not preserved")
		}
		if c.Product(pid) == cp.Product(pid) {
			t.Fatal("product record shared between clone and original")
		}
	}

	// Mutating the clone must not leak into the original.
	a0, a1 := c.Agents()[0], c.Agents()[1]
	before, _ := c.Trust(a0, a1)
	must(t, cp.SetTrust(a0, a1, -0.25))
	cp.AddAgent("http://x/new")
	if after, _ := c.Trust(a0, a1); after != before {
		t.Fatal("clone mutation leaked into original trust function")
	}
	if c.HasAgent("http://x/new") {
		t.Fatal("clone mutation leaked into original agent set")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
