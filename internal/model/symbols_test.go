package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// symCommunity builds a seeded community with interleaved agent and
// product registrations, trust-materialized endpoints, and metadata
// refreshes — the materialization orders the symbol table must survive.
func symCommunity(t *testing.T, seed int64, agents, products int) *Community {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewCommunity(nil)
	for i := 0; i < products; i++ {
		c.AddProduct(Product{ID: ProductID(fmt.Sprintf("urn:p:%d", i))})
	}
	for i := 0; i < agents; i++ {
		id := AgentID(fmt.Sprintf("urn:a:%d", i))
		switch rng.Intn(3) {
		case 0:
			c.AddAgent(id)
		case 1:
			// Materialize as a trust endpoint instead of directly.
			peer := AgentID(fmt.Sprintf("urn:a:%d", rng.Intn(agents)))
			if err := c.SetTrust(id, peer, 0.5); err != nil {
				t.Fatal(err)
			}
		default:
			if err := c.SetRating(id, ProductID(fmt.Sprintf("urn:p:%d", rng.Intn(products))), 0.7); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Metadata refreshes must not move ordinals.
	for i := 0; i < products; i += 7 {
		c.AddProduct(Product{ID: ProductID(fmt.Sprintf("urn:p:%d", i)), Title: "refreshed"})
	}
	return c
}

// TestSymbolsRoundTrip: ord→id→ord and id→ord→id are identities over
// the whole ordinal space, the ordinal space is dense [0, Num*), and
// out-of-range lookups fail closed.
func TestSymbolsRoundTrip(t *testing.T) {
	c := symCommunity(t, 1, 80, 40)
	sym := c.Symbols()
	if sym.NumAgents() != c.NumAgents() || sym.NumProducts() != c.NumProducts() {
		t.Fatalf("ordinal space %d/%d, community %d/%d",
			sym.NumAgents(), sym.NumProducts(), c.NumAgents(), c.NumProducts())
	}
	for ord := int32(0); int(ord) < sym.NumAgents(); ord++ {
		id, ok := sym.AgentID(ord)
		if !ok {
			t.Fatalf("ordinal %d inside the space but unresolvable", ord)
		}
		back, ok := sym.AgentOrd(id)
		if !ok || back != ord {
			t.Fatalf("agent %s: ord %d -> id -> ord %d (ok=%v)", id, ord, back, ok)
		}
		if a := sym.AgentAt(ord); a == nil || a.ID != id || a.Ord() != ord {
			t.Fatalf("AgentAt(%d) inconsistent with AgentID/Ord", ord)
		}
	}
	for ord := int32(0); int(ord) < sym.NumProducts(); ord++ {
		id, ok := sym.ProductID(ord)
		if !ok {
			t.Fatalf("product ordinal %d inside the space but unresolvable", ord)
		}
		back, ok := sym.ProductOrd(id)
		if !ok || back != ord {
			t.Fatalf("product %s: ord %d -> id -> ord %d (ok=%v)", id, ord, back, ok)
		}
		if p := sym.ProductAt(ord); p == nil || p.ID != id || p.Ord() != ord {
			t.Fatalf("ProductAt(%d) inconsistent with ProductID/Ord", ord)
		}
	}
	if _, ok := sym.AgentID(-1); ok {
		t.Fatal("negative agent ordinal resolved")
	}
	if _, ok := sym.AgentID(int32(sym.NumAgents())); ok {
		t.Fatal("past-the-end agent ordinal resolved")
	}
	if _, ok := sym.AgentOrd("urn:a:absent"); ok {
		t.Fatal("unknown agent resolved to an ordinal")
	}
	if sym.AgentAt(int32(sym.NumAgents())) != nil || sym.ProductAt(-1) != nil {
		t.Fatal("out-of-range At lookup returned a record")
	}
}

// TestSymbolsStableAcrossEpochs pins the carry contract: after
// Clone+mutate (one ingest epoch), every pre-existing agent and product
// keeps its exact ordinal, so ordinal-keyed caches and dirty sets from
// the old epoch stay valid against the new one.
func TestSymbolsStableAcrossEpochs(t *testing.T) {
	base := symCommunity(t, 2, 60, 30)
	sym := base.Symbols()

	clone := base.Clone()
	// An epoch's worth of churn: re-trust, re-rate, refresh metadata.
	if err := clone.SetTrust("urn:a:0", "urn:a:1", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := clone.SetRating("urn:a:2", "urn:p:0", 0.1); err != nil {
		t.Fatal(err)
	}
	clone.AddProduct(Product{ID: "urn:p:0", Title: "second edition"})
	csym := clone.Symbols()

	if csym.NumAgents() != sym.NumAgents() || csym.NumProducts() != sym.NumProducts() {
		t.Fatalf("churn without joins changed the ordinal space: %d/%d -> %d/%d",
			sym.NumAgents(), sym.NumProducts(), csym.NumAgents(), csym.NumProducts())
	}
	for ord := int32(0); int(ord) < sym.NumAgents(); ord++ {
		want, _ := sym.AgentID(ord)
		got, ok := csym.AgentID(ord)
		if !ok || got != want {
			t.Fatalf("agent ordinal %d moved across the epoch: %s -> %s", ord, want, got)
		}
	}
	for ord := int32(0); int(ord) < sym.NumProducts(); ord++ {
		want, _ := sym.ProductID(ord)
		got, ok := csym.ProductID(ord)
		if !ok || got != want {
			t.Fatalf("product ordinal %d moved across the epoch: %s -> %s", ord, want, got)
		}
	}
}

// TestSymbolsFreshOrdinalsForJoins: agents and products that join in a
// later epoch take ordinals at and beyond the old NumAgents/NumProducts
// — the old epoch's ordinal space is a strict prefix of the new one.
func TestSymbolsFreshOrdinalsForJoins(t *testing.T) {
	base := symCommunity(t, 3, 50, 25)
	oldAgents, oldProducts := base.NumAgents(), base.NumProducts()

	clone := base.Clone()
	clone.AddAgent("urn:a:joined")
	// Trust against an unseen peer materializes it too.
	if err := clone.SetTrust("urn:a:joined", "urn:a:peer-joined", 0.8); err != nil {
		t.Fatal(err)
	}
	clone.AddProduct(Product{ID: "urn:p:new"})
	clone.AddProduct(Product{ID: "urn:p:bare"})
	sym := clone.Symbols()

	for i, id := range []AgentID{"urn:a:joined", "urn:a:peer-joined"} {
		ord, ok := sym.AgentOrd(id)
		if !ok {
			t.Fatalf("joined agent %s missing from the symbol table", id)
		}
		if want := int32(oldAgents + i); ord != want {
			t.Fatalf("joined agent %s: ordinal %d, want next free %d", id, ord, want)
		}
	}
	for i, id := range []ProductID{"urn:p:new", "urn:p:bare"} {
		ord, ok := sym.ProductOrd(id)
		if !ok {
			t.Fatalf("joined product %s missing from the symbol table", id)
		}
		if want := int32(oldProducts + i); ord != want {
			t.Fatalf("joined product %s: ordinal %d, want next free %d", id, ord, want)
		}
	}
	// Re-registering never re-assigns.
	clone.AddAgent("urn:a:joined")
	clone.AddProduct(Product{ID: "urn:p:new", Title: "refreshed"})
	if ord, _ := sym.AgentOrd("urn:a:joined"); ord != int32(oldAgents) {
		t.Fatal("re-adding an agent moved its ordinal")
	}
	if ord, _ := sym.ProductOrd("urn:p:new"); ord != int32(oldProducts) {
		t.Fatal("re-adding a product moved its ordinal")
	}
}
