package graph

// Dinic's max-flow over integer capacities. The Advogato trust metric
// (Levien & Aiken 1998) reduces group trust to a single-source max-flow on
// a transformed trust graph, so the solver only needs integer capacities
// and moderate sizes (a few hundred thousand arcs).

// flowEdge is one directed edge of the residual network. Edges are stored
// in one flat arena; e and e^1 are mutual residuals.
type flowEdge struct {
	to  int
	cap int
}

// FlowNetwork is a residual network under construction. Node indices are
// dense ints managed by the caller.
type FlowNetwork struct {
	edges []flowEdge
	head  [][]int // per node: indices into edges
}

// NewFlowNetwork creates a network with capacity for n nodes; it grows on
// demand.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{head: make([][]int, n)}
}

// ensure grows the head table to cover node v.
func (f *FlowNetwork) ensure(v int) {
	for len(f.head) <= v {
		f.head = append(f.head, nil)
	}
}

// NumNodes returns the node index space size.
func (f *FlowNetwork) NumNodes() int { return len(f.head) }

// AddArc inserts a directed arc with the given capacity (and an implicit
// zero-capacity residual). Negative capacities are clamped to zero.
func (f *FlowNetwork) AddArc(from, to, capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	f.ensure(from)
	f.ensure(to)
	f.head[from] = append(f.head[from], len(f.edges))
	f.edges = append(f.edges, flowEdge{to: to, cap: capacity})
	f.head[to] = append(f.head[to], len(f.edges))
	f.edges = append(f.edges, flowEdge{to: from, cap: 0})
}

// MaxFlow runs Dinic's algorithm from src to dst and returns the max-flow
// value. The residual state is left in place so callers can inspect which
// arcs carried flow via Flow.
func (f *FlowNetwork) MaxFlow(src, dst int) int {
	if src < 0 || dst < 0 || src >= len(f.head) || dst >= len(f.head) || src == dst {
		return 0
	}
	total := 0
	level := make([]int, len(f.head))
	iter := make([]int, len(f.head))
	for f.bfsLevel(src, dst, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfsAugment(src, dst, int(^uint(0)>>1), level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// bfsLevel builds the level graph; returns false when dst is unreachable.
func (f *FlowNetwork) bfsLevel(src, dst int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range f.head[v] {
			e := f.edges[ei]
			if e.cap > 0 && level[e.to] < 0 {
				level[e.to] = level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return level[dst] >= 0
}

// dfsAugment pushes one blocking-flow augmenting path.
func (f *FlowNetwork) dfsAugment(v, dst, limit int, level, iter []int) int {
	if v == dst {
		return limit
	}
	for ; iter[v] < len(f.head[v]); iter[v]++ {
		ei := f.head[v][iter[v]]
		e := &f.edges[ei]
		if e.cap <= 0 || level[e.to] != level[v]+1 {
			continue
		}
		d := limit
		if e.cap < d {
			d = e.cap
		}
		pushed := f.dfsAugment(e.to, dst, d, level, iter)
		if pushed > 0 {
			e.cap -= pushed
			f.edges[ei^1].cap += pushed
			return pushed
		}
	}
	return 0
}

// Flow returns the units of flow that crossed the k-th inserted arc
// (0-based insertion order), after MaxFlow has run.
func (f *FlowNetwork) Flow(arc int) int {
	ri := 2*arc + 1
	if ri < 0 || ri >= len(f.edges) {
		return 0
	}
	return f.edges[ri].cap // residual capacity of the reverse edge == flow
}
