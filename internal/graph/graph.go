// Package graph provides the directed-graph substrate the trust metrics
// are built on: a compact adjacency-list digraph with float64 edge weights,
// traversals, degree statistics, and an integer max-flow solver (Dinic's
// algorithm) for the Advogato group trust metric.
//
// Nodes are dense ints assigned by an Interner so callers can keep working
// with string agent IDs while the algorithms run over integer arrays.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Interner maps arbitrary string identifiers to dense node indices.
// The zero value is ready to use.
type Interner struct {
	ids   map[string]int
	names []string
}

// Reserve pre-sizes the table for n identifiers, avoiding growth
// reallocations when the caller knows the graph bound up front. A no-op
// once interning has started.
func (in *Interner) Reserve(n int) {
	if in.ids == nil && n > 0 {
		in.ids = make(map[string]int, n)
		in.names = make([]string, 0, n)
	}
}

// Intern returns the node index for name, assigning the next free index on
// first sight.
func (in *Interner) Intern(name string) int {
	if in.ids == nil {
		in.ids = make(map[string]int)
	}
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := len(in.names)
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the node index of name without assigning one.
func (in *Interner) Lookup(name string) (int, bool) {
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the string identifier of node id.
func (in *Interner) Name(id int) string {
	if id < 0 || id >= len(in.names) {
		return ""
	}
	return in.names[id]
}

// Len returns the number of interned identifiers.
func (in *Interner) Len() int { return len(in.names) }

// Edge is one weighted arc.
type Edge struct {
	To     int
	Weight float64
}

// Digraph is a weighted directed graph over dense node indices. Adding an
// edge with an endpoint beyond the current size grows the graph.
type Digraph struct {
	adj   [][]Edge
	edges int
}

// NewDigraph creates a digraph with capacity for n nodes.
func NewDigraph(n int) *Digraph {
	return &Digraph{adj: make([][]Edge, n)}
}

// ensure grows the adjacency table to cover node v.
func (g *Digraph) ensure(v int) {
	for len(g.adj) <= v {
		g.adj = append(g.adj, nil)
	}
}

// AddEdge inserts the arc from→to with the given weight. Parallel arcs are
// collapsed: re-adding an existing arc overwrites its weight.
func (g *Digraph) AddEdge(from, to int, w float64) {
	if from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: negative node index %d->%d", from, to))
	}
	g.ensure(from)
	g.ensure(to)
	for i := range g.adj[from] {
		if g.adj[from][i].To == to {
			g.adj[from][i].Weight = w
			return
		}
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: w})
	g.edges++
}

// NumNodes returns the size of the node index space.
func (g *Digraph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of distinct arcs.
func (g *Digraph) NumEdges() int { return g.edges }

// Out returns the out-edges of v. The slice must not be modified.
func (g *Digraph) Out(v int) []Edge {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	return g.adj[v]
}

// Weight returns the arc weight from→to; ok is false if the arc is absent.
func (g *Digraph) Weight(from, to int) (float64, bool) {
	for _, e := range g.Out(from) {
		if e.To == to {
			return e.Weight, true
		}
	}
	return 0, false
}

// OutDegree returns the out-degree of v.
func (g *Digraph) OutDegree(v int) int { return len(g.Out(v)) }

// Reverse returns the transpose graph (all arcs flipped).
func (g *Digraph) Reverse() *Digraph {
	r := NewDigraph(len(g.adj))
	for from, es := range g.adj {
		for _, e := range es {
			r.AddEdge(e.To, from, e.Weight)
		}
	}
	return r
}

// BFSDepths returns the minimum hop distance from src to every reachable
// node; unreachable nodes map to -1. Used to bound trust horizons.
func (g *Digraph) BFSDepths(src int) []int {
	depth := make([]int, len(g.adj))
	for i := range depth {
		depth[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return depth
	}
	depth[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if depth[e.To] == -1 {
				depth[e.To] = depth[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return depth
}

// ReachableWithin returns the nodes at BFS distance 1..horizon from src
// (excluding src), sorted ascending. horizon <= 0 means unlimited.
func (g *Digraph) ReachableWithin(src, horizon int) []int {
	depths := g.BFSDepths(src)
	var out []int
	for v, d := range depths {
		if v == src || d < 0 {
			continue
		}
		if horizon > 0 && d > horizon {
			continue
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// DegreeStats summarizes the out-degree distribution; datagen validation
// uses it to confirm the synthetic trust graph is scale-free-ish.
type DegreeStats struct {
	Min, Max   int
	Mean       float64
	Gini       float64 // inequality of the degree distribution, 0..1
	Isolated   int     // nodes with no out-edges
	Reciprocal int     // arcs whose reverse also exists
}

// ComputeDegreeStats scans the graph once and returns degree statistics.
func (g *Digraph) ComputeDegreeStats() DegreeStats {
	n := len(g.adj)
	s := DegreeStats{Min: math.MaxInt}
	if n == 0 {
		s.Min = 0
		return s
	}
	degs := make([]int, n)
	total := 0
	for v := range g.adj {
		d := len(g.adj[v])
		degs[v] = d
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		if d == 0 {
			s.Isolated++
		}
		for _, e := range g.adj[v] {
			if _, ok := g.Weight(e.To, v); ok {
				s.Reciprocal++
			}
		}
	}
	s.Mean = float64(total) / float64(n)
	// Gini over the sorted degree sequence.
	sort.Ints(degs)
	var cum, weighted float64
	for i, d := range degs {
		weighted += float64(d) * float64(i+1)
		cum += float64(d)
	}
	if cum > 0 {
		s.Gini = (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
	}
	return s
}
