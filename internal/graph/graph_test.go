package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterner(t *testing.T) {
	var in Interner
	a := in.Intern("alice")
	b := in.Intern("bob")
	if a == b {
		t.Fatal("distinct names got same index")
	}
	if got := in.Intern("alice"); got != a {
		t.Fatal("re-interning changed index")
	}
	if got, ok := in.Lookup("bob"); !ok || got != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := in.Lookup("carol"); ok {
		t.Fatal("Lookup invented an index")
	}
	if in.Name(a) != "alice" || in.Name(99) != "" {
		t.Fatal("Name mapping broken")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

func TestDigraphAddAndQuery(t *testing.T) {
	g := NewDigraph(0)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(0, 2, 0.8)
	g.AddEdge(2, 0, 1.0)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if w, ok := g.Weight(0, 2); !ok || w != 0.8 {
		t.Fatalf("Weight(0,2) = %v,%v", w, ok)
	}
	// Overwrite keeps edge count stable.
	g.AddEdge(0, 2, 0.9)
	if g.NumEdges() != 3 {
		t.Fatal("overwriting an edge must not add a new one")
	}
	if w, _ := g.Weight(0, 2); w != 0.9 {
		t.Fatal("overwrite lost the new weight")
	}
	if _, ok := g.Weight(1, 0); ok {
		t.Fatal("phantom edge")
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Fatal("OutDegree wrong")
	}
}

func TestReverse(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.7)
	r := g.Reverse()
	if w, ok := r.Weight(1, 0); !ok || w != 0.5 {
		t.Fatal("reverse edge missing")
	}
	if w, ok := r.Weight(2, 1); !ok || w != 0.7 {
		t.Fatal("reverse edge missing")
	}
	if _, ok := r.Weight(0, 1); ok {
		t.Fatal("forward edge leaked into reverse")
	}
}

func TestBFSDepthsAndHorizon(t *testing.T) {
	// Chain 0→1→2→3, plus shortcut 0→2.
	g := NewDigraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 2, 1)
	d := g.BFSDepths(0)
	want := []int{0, 1, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	r := g.ReachableWithin(0, 1)
	if len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Fatalf("ReachableWithin(0,1) = %v", r)
	}
	if got := g.ReachableWithin(0, 0); len(got) != 3 {
		t.Fatalf("unlimited horizon = %v, want 3 nodes", got)
	}
}

func TestDegreeStats(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1) // reciprocal pair
	g.AddEdge(0, 2, 1)
	s := g.ComputeDegreeStats()
	if s.Min != 0 || s.Max != 2 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.Isolated != 2 {
		t.Fatalf("Isolated = %d, want 2", s.Isolated)
	}
	if s.Reciprocal != 2 {
		t.Fatalf("Reciprocal = %d, want 2 (counted from both ends)", s.Reciprocal)
	}
	if s.Mean != 0.75 {
		t.Fatalf("Mean = %v, want 0.75", s.Mean)
	}
	if s.Gini <= 0 || s.Gini > 1 {
		t.Fatalf("Gini = %v, want in (0,1]", s.Gini)
	}
	// Uniform degrees → Gini 0.
	u := NewDigraph(3)
	u.AddEdge(0, 1, 1)
	u.AddEdge(1, 2, 1)
	u.AddEdge(2, 0, 1)
	if got := u.ComputeDegreeStats().Gini; got > 1e-9 {
		t.Fatalf("uniform Gini = %v, want 0", got)
	}
}

func TestMaxFlowTextbook(t *testing.T) {
	// Classic CLRS-style network, known max-flow 23.
	f := NewFlowNetwork(6)
	s, v1, v2, v3, v4, d := 0, 1, 2, 3, 4, 5
	f.AddArc(s, v1, 16)
	f.AddArc(s, v2, 13)
	f.AddArc(v1, v2, 10)
	f.AddArc(v2, v1, 4)
	f.AddArc(v1, v3, 12)
	f.AddArc(v3, v2, 9)
	f.AddArc(v2, v4, 14)
	f.AddArc(v4, v3, 7)
	f.AddArc(v3, d, 20)
	f.AddArc(v4, d, 4)
	if got := f.MaxFlow(s, d); got != 23 {
		t.Fatalf("MaxFlow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnectedAndDegenerate(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 5)
	f.AddArc(2, 3, 5)
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Fatalf("disconnected flow = %d, want 0", got)
	}
	if got := f.MaxFlow(0, 0); got != 0 {
		t.Fatalf("self flow = %d, want 0", got)
	}
	if got := f.MaxFlow(-1, 3); got != 0 {
		t.Fatalf("invalid src flow = %d, want 0", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Two wide arcs around a 1-unit bottleneck in series.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 100)
	f.AddArc(1, 2, 1)
	f.AddArc(2, 3, 100)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("MaxFlow = %d, want 1", got)
	}
	// Flow inspection: arc 1 (the bottleneck) carried exactly 1 unit.
	if got := f.Flow(1); got != 1 {
		t.Fatalf("Flow(bottleneck) = %d, want 1", got)
	}
}

func TestMaxFlowNegativeCapacityClamped(t *testing.T) {
	f := NewFlowNetwork(2)
	f.AddArc(0, 1, -5)
	if got := f.MaxFlow(0, 1); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
}

// Property: max-flow from s to t never exceeds the out-capacity of s or
// the in-capacity of t, and is non-negative.
func TestMaxFlowBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		fn := NewFlowNetwork(n)
		outCap, inCap := 0, 0
		for i := 0; i < 24; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			c := rng.Intn(10)
			fn.AddArc(a, b, c)
			if a == 0 {
				outCap += c
			}
			if b == n-1 {
				inCap += c
			}
		}
		got := fn.MaxFlow(0, n-1)
		return got >= 0 && got <= outCap && got <= inCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a pure series chain, max-flow equals the minimum capacity.
func TestMaxFlowChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		fn := NewFlowNetwork(n)
		minCap := int(^uint(0) >> 1)
		for i := 0; i+1 < n; i++ {
			c := 1 + rng.Intn(20)
			fn.AddArc(i, i+1, c)
			if c < minCap {
				minCap = c
			}
		}
		return fn.MaxFlow(0, n-1) == minCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
