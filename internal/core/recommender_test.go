package core

import (
	"errors"
	"testing"

	"swrec/internal/cf"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// scenario builds a small book community:
//
//	alice --1.0--> bob --0.9--> dave
//	alice --0.8--> carol
//	mallory: no trust path, but clones alice's rating profile (§3.2's
//	         attack: "malicious agents can accomplish high similarity with
//	         a_i by simply copying its profile").
func scenario(t *testing.T) *model.Community {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	calc, _ := tax.Lookup("Books/Science/Mathematics/Pure/Calculus")
	fic, _ := tax.Lookup("Books/Fiction")
	phy, _ := tax.Lookup("Books/Science/Physics")

	products := []model.Product{
		{ID: "alg1", Topics: []taxonomy.Topic{alg}},
		{ID: "alg2", Topics: []taxonomy.Topic{alg}},
		{ID: "calc1", Topics: []taxonomy.Topic{calc}},
		{ID: "fic1", Topics: []taxonomy.Topic{fic}},
		{ID: "fic2", Topics: []taxonomy.Topic{fic}},
		{ID: "phy1", Topics: []taxonomy.Topic{phy}},
		{ID: "evil", Topics: []taxonomy.Topic{alg}},
	}
	for _, p := range products {
		c.AddProduct(p)
	}

	trustEdge := func(s, d model.AgentID, v float64) {
		if err := c.SetTrust(s, d, v); err != nil {
			t.Fatal(err)
		}
	}
	rate := func(a model.AgentID, p model.ProductID, v float64) {
		if err := c.SetRating(a, p, v); err != nil {
			t.Fatal(err)
		}
	}

	trustEdge("alice", "bob", 1.0)
	trustEdge("alice", "carol", 0.8)
	trustEdge("bob", "dave", 0.9)

	rate("alice", "alg1", 1)
	rate("alice", "fic1", 0.5)

	rate("bob", "alg1", 0.9)
	rate("bob", "alg2", 1) // bob recommends alg2
	rate("bob", "calc1", 0.7)

	rate("carol", "fic1", 0.8)
	rate("carol", "fic2", 1) // carol recommends fic2
	rate("carol", "phy1", -0.9)

	rate("dave", "alg2", 0.6)
	rate("dave", "phy1", 0.4)

	// mallory clones alice's profile and pushes "evil".
	rate("mallory", "alg1", 1)
	rate("mallory", "fic1", 0.5)
	rate("mallory", "evil", 1)

	return c
}

func defaultOpts() Options {
	return Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
}

func TestRecommendBasics(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	seen := map[model.ProductID]bool{}
	for i, rec := range recs {
		if rec.Product == "alg1" || rec.Product == "fic1" {
			t.Fatalf("recommended a product alice already rated: %s", rec.Product)
		}
		if rec.Score <= 0 {
			t.Fatalf("non-positive score: %+v", rec)
		}
		if i > 0 && recs[i-1].Score < rec.Score {
			t.Fatal("recommendations not sorted by score")
		}
		if seen[rec.Product] {
			t.Fatalf("duplicate recommendation %s", rec.Product)
		}
		seen[rec.Product] = true
	}
	// alg2 is supported by both bob (high trust, high sim) and dave.
	if recs[0].Product != "alg2" {
		t.Fatalf("top recommendation = %s, want alg2", recs[0].Product)
	}
	if recs[0].Supporters != 2 {
		t.Fatalf("alg2 supporters = %d, want 2", recs[0].Supporters)
	}
}

func TestTrustShieldsAgainstProfileCloning(t *testing.T) {
	c := scenario(t)

	// Pure CF over the whole community: mallory's cloned profile makes it
	// a top peer and its "evil" product gets recommended.
	pure, err := New(c, Options{
		Metric:   NoTrust,
		AlphaSet: true, Alpha: 0,
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := pure.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range recs {
		if rec.Product == "evil" {
			found = true
		}
	}
	if !found {
		t.Fatal("pure CF should fall for the cloned profile and recommend 'evil'")
	}

	// Trust-filtered pipeline: mallory is unreachable in the trust graph,
	// so 'evil' cannot be recommended.
	hybrid, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	hrecs, err := hybrid.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range hrecs {
		if rec.Product == "evil" {
			t.Fatal("trust-filtered recommender recommended the attacker's product")
		}
	}
	peers, err := hybrid.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.Agent == "mallory" {
			t.Fatal("mallory must not be in the trust neighborhood")
		}
	}
}

func TestAlphaExtremes(t *testing.T) {
	c := scenario(t)
	// α = 1: weight equals normalized trust rank.
	tr, err := New(c, Options{
		Alpha: 1,
		CF:    cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	peers, err := tr.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.Weight != p.Trust {
			t.Fatalf("α=1 weight %v != trust %v for %s", p.Weight, p.Trust, p.Agent)
		}
	}
	if peers[0].Agent != "bob" {
		t.Fatalf("highest-trust peer = %s, want bob", peers[0].Agent)
	}

	// α = 0 (explicit): weight equals clamped similarity.
	sim, err := New(c, Options{
		AlphaSet: true, Alpha: 0,
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	speers, err := sim.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range speers {
		want := p.Sim
		if want < 0 {
			want = 0
		}
		if p.Weight != want {
			t.Fatalf("α=0 weight %v != clamped sim %v for %s", p.Weight, p.Sim, p.Agent)
		}
	}
}

func TestTrustThreshold(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.TrustThreshold = 0.99 // only the top-ranked peer survives
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	peers, err := r.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 {
		t.Fatalf("threshold 0.99 kept %d peers, want 1", len(peers))
	}
	if peers[0].Trust != 1 {
		t.Fatalf("surviving peer trust = %v, want 1 (the max)", peers[0].Trust)
	}
}

func TestMaxNeighbors(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.MaxNeighbors = 2
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	peers, err := r.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("MaxNeighbors=2 kept %d", len(peers))
	}
}

func TestNovelCategories(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.Content = NovelCategories
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	// alice touched Algebra and Fiction (and their ancestors). Novel
	// recommendations may only come from untouched branches: calc1
	// (Calculus) and phy1 (Physics) qualify; alg2/fic2 do not.
	for _, rec := range recs {
		if rec.Product == "alg2" || rec.Product == "fic2" {
			t.Fatalf("non-novel product recommended in NovelCategories mode: %s", rec.Product)
		}
	}
	var gotCalc bool
	for _, rec := range recs {
		if rec.Product == "calc1" {
			gotCalc = true
		}
	}
	if !gotCalc {
		t.Fatalf("calc1 (untouched Calculus branch) missing from novel recs: %+v", recs)
	}
}

func TestNegativePeerRatingsNeverRecommended(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Product == "phy1" && rec.Supporters > 1 {
			t.Fatal("carol's negative phy1 rating must not count as a vote")
		}
	}
}

func TestUnknownActiveAgent(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RankedPeers("ghost"); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("got %v, want ErrUnknownAgent", err)
	}
	if _, err := r.Recommend("ghost", 5); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("got %v, want ErrUnknownAgent", err)
	}
}

func TestOptionValidation(t *testing.T) {
	c := scenario(t)
	if _, err := New(c, Options{Alpha: 2}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := New(c, Options{AlphaSet: true, Alpha: -0.1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := New(c, Options{TrustThreshold: 1}); err == nil {
		t.Fatal("threshold 1 accepted")
	}
	bare := model.NewCommunity(nil)
	if _, err := New(bare, defaultOpts()); err == nil {
		t.Fatal("taxonomy CF over taxonomy-less community accepted")
	}
}

func TestTopNTruncation(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skip("scenario too small")
	}
	one, err := r.Recommend("alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != all[0] {
		t.Fatalf("top-1 = %+v, want %+v", one, all[0])
	}
}

func TestMetricChoices(t *testing.T) {
	c := scenario(t)
	for _, m := range []Metric{Appleseed, Advogato, PathTrust, NoTrust} {
		opt := defaultOpts()
		opt.Metric = m
		r, err := New(c, opt)
		if err != nil {
			t.Fatalf("[%v] %v", m, err)
		}
		nb, err := r.Neighborhood("alice")
		if err != nil {
			t.Fatalf("[%v] %v", m, err)
		}
		if !nb.Contains("bob") {
			t.Fatalf("[%v] direct peer bob missing from neighborhood", m)
		}
		if m != NoTrust && nb.Contains("mallory") {
			t.Fatalf("[%v] unreachable mallory in neighborhood", m)
		}
	}
	if Appleseed.String() != "appleseed" || NoTrust.String() != "none" {
		t.Fatal("Metric.String broken")
	}
}

func TestBordaMerge(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.Merge = BordaCount
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	peers, err := r.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) == 0 {
		t.Fatal("no peers")
	}
	// Borda weights live in [0,1]; the top peer of both orderings gets 1.
	for _, p := range peers {
		if p.Weight < 0 || p.Weight > 1 {
			t.Fatalf("borda weight out of range: %+v", p)
		}
	}
	// bob leads the trust ordering, carol the similarity ordering; with
	// three peers both blend to 0.5·1 + 0.5·(2/3) = 5/6, tied ahead of
	// dave (negative correlation → similarity Borda 0).
	if peers[0].Agent != "bob" || peers[1].Agent != "carol" {
		t.Fatalf("borda order = %+v, want bob,carol first (ID tiebreak)", peers)
	}
	if diff := peers[0].Weight - 5.0/6; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("top borda weight = %v, want 5/6", peers[0].Weight)
	}
	if last := peers[len(peers)-1]; last.Agent != "dave" || last.Weight >= peers[0].Weight {
		t.Fatalf("dave should rank last: %+v", peers)
	}
	// Recommendations still work end to end.
	recs, err := r.Recommend("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("borda pipeline produced nothing")
	}
	// α extremes reduce to single-ordering Borda.
	pureTrust := defaultOpts()
	pureTrust.Merge = BordaCount
	pureTrust.Alpha = 1
	rt, err := New(c, pureTrust)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := rt.RankedPeers("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tp); i++ {
		if tp[i-1].Trust < tp[i].Trust {
			t.Fatal("α=1 borda must order by trust")
		}
	}
	if ScoreBlend.String() != "score-blend" || BordaCount.String() != "borda" {
		t.Fatal("MergeMode.String broken")
	}
}

func TestContentBoost(t *testing.T) {
	c := scenario(t)
	plain, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	boostOpt := defaultOpts()
	boostOpt.ContentBoost = 2
	boosted, err := New(c, boostOpt)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := plain.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	br, err := boosted.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr) != len(br) {
		t.Fatalf("boost changed candidate set: %d vs %d", len(pr), len(br))
	}
	// alg2 (Algebra — alice's dominant branch) must gain more relative
	// score than phy1 (Physics — a branch her profile barely touches).
	score := func(recs []Recommendation, p model.ProductID) float64 {
		for _, r := range recs {
			if r.Product == p {
				return r.Score
			}
		}
		t.Fatalf("product %s missing", p)
		return 0
	}
	algGain := score(br, "alg2") / score(pr, "alg2")
	phyGain := score(br, "phy1") / score(pr, "phy1")
	if algGain <= phyGain {
		t.Fatalf("content boost must favor on-profile products: alg %v vs phy %v",
			algGain, phyGain)
	}
	if algGain > 3 || algGain < 1 {
		t.Fatalf("boost factor out of [1, 1+β] bounds: %v", algGain)
	}
	// Validation.
	bad := defaultOpts()
	bad.ContentBoost = -1
	if _, err := New(c, bad); err == nil {
		t.Fatal("negative boost accepted")
	}
	noTax := model.NewCommunity(nil)
	if _, err := New(noTax, Options{
		ContentBoost: 1,
		CF:           cf.Options{Representation: cf.Product},
	}); err == nil {
		t.Fatal("content boost without taxonomy accepted")
	}
}

func TestCandidatesOverride(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.Candidates = func(model.AgentID) []model.AgentID {
		return []model.AgentID{"carol", "alice", "ghost"} // active + unknown filtered
	}
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := r.Neighborhood("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Ranks) != 1 || nb.Ranks[0].Agent != "carol" {
		t.Fatalf("candidate neighborhood = %+v, want just carol", nb.Ranks)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		// Only carol votes: her positively rated unseen products.
		if rec.Product != "fic2" {
			t.Fatalf("unexpected recommendation %s from candidate-restricted pipeline", rec.Product)
		}
	}
}

func TestPathTrustPipeline(t *testing.T) {
	c := scenario(t)
	opt := defaultOpts()
	opt.Metric = PathTrust
	r, err := New(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.Recommend("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("PathTrust pipeline produced nothing")
	}
}
