package core

import (
	"testing"

	"swrec/internal/cf"
	"swrec/internal/datagen"
)

func TestProductSimilarity(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Same product → 1.
	if s, ok := r.ProductSimilarity("alg1", "alg1"); !ok || s < 0.999999 {
		t.Fatalf("self similarity = %v,%v", s, ok)
	}
	// Same leaf descriptor → 1; sibling leaves high; cross-branch ≈ low.
	sSame, _ := r.ProductSimilarity("alg1", "alg2")
	sSib, _ := r.ProductSimilarity("alg1", "calc1")
	sCross, _ := r.ProductSimilarity("alg1", "fic1")
	if sSame < 0.999999 {
		t.Fatalf("same-descriptor similarity = %v, want 1", sSame)
	}
	if !(sSame >= sSib && sSib > sCross) {
		t.Fatalf("similarity ordering violated: same=%v sib=%v cross=%v", sSame, sSib, sCross)
	}
	// Unknown product → not ok.
	if _, ok := r.ProductSimilarity("alg1", "nope"); ok {
		t.Fatal("unknown product similarity defined")
	}
}

func TestIntraListSimilarity(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	clustered := []Recommendation{{Product: "alg1"}, {Product: "alg2"}, {Product: "calc1"}}
	mixed := []Recommendation{{Product: "alg1"}, {Product: "fic1"}, {Product: "phy1"}}
	ilsC := r.IntraListSimilarity(clustered)
	ilsM := r.IntraListSimilarity(mixed)
	if ilsC <= ilsM {
		t.Fatalf("clustered list must be more self-similar: %v vs %v", ilsC, ilsM)
	}
	if got := r.IntraListSimilarity(nil); got != 0 {
		t.Fatalf("empty list ILS = %v", got)
	}
	if got := r.IntraListSimilarity(clustered[:1]); got != 0 {
		t.Fatalf("singleton ILS = %v", got)
	}
}

func TestDiversifyThetaZeroIsIdentity(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Skip("scenario too small")
	}
	div := r.Diversify(recs, len(recs), 0)
	for i := range recs {
		if div[i] != recs[i] {
			t.Fatalf("θ=0 changed position %d", i)
		}
	}
	// Input list must not be mutated by higher θ either.
	snapshot := append([]Recommendation(nil), recs...)
	r.Diversify(recs, len(recs), 0.9)
	for i := range recs {
		if recs[i] != snapshot[i] {
			t.Fatal("Diversify mutated its input")
		}
	}
}

func TestDiversifyReducesILS(t *testing.T) {
	// On a clustered community, the accuracy-ordered top-10 concentrates
	// in the active agent's favorite branch; diversification must reduce
	// intra-list similarity while keeping the top candidate.
	cfg := datagen.SmallScale()
	cfg.Seed = 5
	cfg.ClusterFidelity = 0.95
	comm, _ := datagen.Generate(cfg)
	r, err := New(comm, Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the best-connected rated agent.
	active := comm.Agents()[0]
	best := -1
	for _, id := range comm.Agents() {
		a := comm.Agent(id)
		if d := len(a.Trust) + len(a.Ratings); d > best {
			best = d
			active = id
		}
	}
	recs, err := r.Recommend(active, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 15 {
		t.Skip("not enough candidates")
	}
	top := r.Diversify(recs, 10, 0)
	div := r.Diversify(recs, 10, 0.9)
	if div[0] != recs[0] {
		t.Fatal("diversification must keep the top candidate first")
	}
	if len(div) != 10 {
		t.Fatalf("diversified length = %d", len(div))
	}
	ilsTop, ilsDiv := r.IntraListSimilarity(top), r.IntraListSimilarity(div)
	if ilsDiv >= ilsTop {
		t.Fatalf("θ=0.9 did not reduce ILS: %v vs %v", ilsDiv, ilsTop)
	}
	// No duplicates, all drawn from the candidate set.
	seen := map[Recommendation]bool{}
	cand := map[Recommendation]bool{}
	for _, rc := range recs {
		cand[rc] = true
	}
	for _, rc := range div {
		if seen[rc] || !cand[rc] {
			t.Fatalf("bad diversified entry %+v", rc)
		}
		seen[rc] = true
	}
}

func TestDiversifyBounds(t *testing.T) {
	c := scenario(t)
	r, err := New(c, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Diversify(nil, 5, 0.5); len(got) != 0 {
		t.Fatalf("empty input gave %v", got)
	}
	recs, err := r.Recommend("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Diversify(recs, 1000, 0.5); len(got) != len(recs) {
		t.Fatalf("n beyond len = %d, want %d", len(got), len(recs))
	}
	if got := r.Diversify(recs, 0, 2.5); len(got) != len(recs) {
		t.Fatalf("θ clamp broke length: %d", len(got))
	}
}
