// Package core implements the paper's primary contribution: a decentralized
// recommender that integrates the two pillars — trust neighborhood
// formation (§3.2) and taxonomy-driven similarity filtering (§3.3) — and
// performs the rank synthesization and recommendation generation of §3.4.
//
// The pipeline for an active agent a_i, computed entirely locally on the
// materialized community view:
//
//  1. Trust neighborhood. A local group trust metric (Appleseed by
//     default) ranks the peers within a_i's trust computation range. This
//     step provides security (only opinions from trustworthy peers count)
//     and scalability (it pre-filters the candidate set, §2).
//  2. Similarity-based filtering. Collaborative filtering runs "over all
//     peers whose trustworthiness lies above some given threshold",
//     ranking them by taxonomy-profile similarity.
//  3. Rank synthesization. Trust rank and similarity rank merge into one
//     rank weight per peer. The paper leaves the merge open ("we have not
//     attacked latter issue yet"); we implement the natural convex blend
//     w(a_j) = α·trustNorm(a_j) + (1-α)·simNorm(a_j), with α sweepable in
//     experiment E7, plus the pure strategies as baselines.
//  4. Recommendation. "Every a_j votes for all its appreciated products
//     b_k ∈ r_j with its own rank weight", so products mentioned
//     positively in several high-weight histories rise to the top. The
//     content-driven alternative — proposing products from categories a_i
//     "has left untouched until now" — is available as NovelCategories.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"

	"swrec/internal/cf"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
	"swrec/internal/trust"
)

// Metric selects the trust metric of stage 1.
type Metric int

const (
	// Appleseed is the paper's spreading-activation group trust metric
	// (default).
	Appleseed Metric = iota
	// Advogato is the boolean max-flow baseline.
	Advogato
	// PathTrust is the scalar path-multiplication baseline.
	PathTrust
	// NoTrust disables stage 1: every known agent is a candidate. This is
	// the pure centralized-CF baseline the paper argues cannot scale or
	// resist manipulation.
	NoTrust
)

// String names the metric for experiment output.
func (m Metric) String() string {
	switch m {
	case Appleseed:
		return "appleseed"
	case Advogato:
		return "advogato"
	case PathTrust:
		return "pathtrust"
	case NoTrust:
		return "none"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// MergeMode selects how trust rank and similarity rank synthesize into
// one rank weight — §3.4 leaves the merge open and "numerous alternatives
// are possible"; experiment E7 compares these two.
type MergeMode int

const (
	// ScoreBlend (default) blends the normalized *values*:
	// w = α·trustNorm + (1-α)·max(sim, 0).
	ScoreBlend MergeMode = iota
	// BordaCount blends the *positions*: each peer scores (n-rank)/n in
	// the trust ordering and in the similarity ordering, and the two
	// Borda scores blend with α. Positions are robust to the wildly
	// different scales of trust metrics (Appleseed rank mass vs
	// Advogato's booleans) at the cost of discarding magnitudes.
	BordaCount
)

// String names the merge mode for experiment output.
func (m MergeMode) String() string {
	switch m {
	case ScoreBlend:
		return "score-blend"
	case BordaCount:
		return "borda"
	default:
		return fmt.Sprintf("MergeMode(%d)", int(m))
	}
}

// ContentMode selects the recommendation scheme of §3.4.
type ContentMode int

const (
	// Standard votes over all unseen products.
	Standard ContentMode = iota
	// NovelCategories restricts recommendations to products whose
	// descriptors all lie in branches the active profile has left
	// untouched, creating the "incentive for trying new product groups".
	NovelCategories
)

// Options configure a Recommender. The zero value gives the paper's
// default pipeline: Appleseed + taxonomy-Pearson CF + α = 0.5 blend.
type Options struct {
	Metric    Metric
	Appleseed trust.AppleseedOptions
	Advogato  trust.AdvogatoOptions
	PathTrust trust.PathTrustOptions
	CF        cf.Options
	// TrustThreshold drops peers whose normalized trust rank (relative to
	// the neighborhood's best) falls below it — "peers whose
	// trustworthiness lies above some given threshold" (§3.3). In [0,1).
	TrustThreshold float64
	// MaxNeighbors caps the peers that proceed to stages 2-4 (0 = all in
	// range).
	MaxNeighbors int
	// Candidates, when non-nil, replaces stage 1 entirely: the returned
	// peers (each accorded trust rank 1) form the neighborhood. Custom
	// pre-filters — e.g. stereotype membership (package stereotype, the
	// §6 "efficient behavior modelling" direction) — plug in here.
	Candidates func(active model.AgentID) []model.AgentID
	// Alpha is the rank synthesization blend: 1 = pure trust, 0 = pure
	// similarity. Negative values are invalid; the default (zero value)
	// is interpreted as 0.5 unless AlphaSet marks an explicit zero.
	Alpha float64
	// AlphaSet marks Alpha as deliberately chosen (needed to express an
	// explicit α = 0, the pure-CF blend).
	AlphaSet bool
	// Merge selects the rank synthesization scheme (§3.4 alternatives).
	Merge MergeMode
	// Content selects the §3.4 recommendation scheme.
	Content ContentMode
	// ContentBoost β ≥ 0 blends content-based filtering into the vote
	// (the hybrid framing of §5 / Fab [17]): a product's vote score is
	// multiplied by (1 + β·match), where match ∈ [0,1] is the cosine
	// affinity between the active agent's taxonomy profile and the
	// product's propagated descriptor vector. 0 (default) disables it.
	ContentBoost float64
}

// alpha returns the effective blend factor.
func (o Options) alpha() float64 {
	if !o.AlphaSet && o.Alpha == 0 {
		return 0.5
	}
	return o.Alpha
}

// BlendAlpha returns the effective rank-synthesization blend factor —
// Alpha with the unset-zero default of 0.5 applied. Exported so serving
// layers that re-blend outside the recommender (the strategy ladder's
// taxonomy-ancestor rung) use exactly the α the pipeline would.
func (o Options) BlendAlpha() float64 { return o.alpha() }

func (o Options) validate() error {
	if a := o.alpha(); a < 0 || a > 1 {
		return fmt.Errorf("core: alpha must be in [0,1], got %v", a)
	}
	if o.TrustThreshold < 0 || o.TrustThreshold >= 1 {
		return fmt.Errorf("core: trust threshold must be in [0,1), got %v", o.TrustThreshold)
	}
	if o.ContentBoost < 0 {
		return fmt.Errorf("core: content boost must be >= 0, got %v", o.ContentBoost)
	}
	return nil
}

// ErrUnknownAgent is returned when the active agent is not materialized.
var ErrUnknownAgent = errors.New("core: unknown active agent")

// PeerRank is one peer after rank synthesization: its trust rank,
// similarity, and merged overall rank weight.
type PeerRank struct {
	Agent  model.AgentID
	Trust  float64 // normalized trust rank in [0,1]
	Sim    float64 // raw similarity in [-1,1]; 0 if undefined
	SimOK  bool    // whether similarity was defined
	Weight float64 // merged rank weight in [0,1]
}

// Recommendation is one recommended product with its vote score and the
// number of neighborhood peers that supported it.
type Recommendation struct {
	Product    model.ProductID
	Score      float64
	Supporters int
}

// Recommender ties the pipeline together over one community view.
type Recommender struct {
	comm   *model.Community //nolint:snapshotpin -- constructed per community view; engine.Snapshot owns it and discards it at Swap
	opt    Options
	filter *cf.Filter
	gen    *profile.Generator // content-boost affinity; nil without taxonomy
}

// New creates a recommender. Taxonomy-based CF representations and
// ContentBoost require the community to carry a taxonomy.
func New(comm *model.Community, opt Options) (*Recommender, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	f, err := cf.New(comm, opt.CF)
	if err != nil {
		return nil, err
	}
	r := &Recommender{comm: comm, opt: opt, filter: f}
	if comm.Taxonomy() != nil {
		r.gen = profile.New(comm.Taxonomy())
	} else if opt.ContentBoost > 0 {
		return nil, fmt.Errorf("core: content boost requires a taxonomy")
	}
	return r, nil
}

// WithOptions derives a recommender over the same community with
// different pipeline options. When the CF configuration is unchanged the
// derived recommender shares this one's similarity filter — and therefore
// its interest-profile cache — so serving layers can honor per-request
// overrides of the trust metric, α, or content mode without recomputing
// profiles from scratch.
func (r *Recommender) WithOptions(opt Options) (*Recommender, error) {
	if opt.CF == r.opt.CF {
		if err := opt.validate(); err != nil {
			return nil, err
		}
		if opt.ContentBoost > 0 && r.gen == nil {
			return nil, fmt.Errorf("core: content boost requires a taxonomy")
		}
		return &Recommender{comm: r.comm, opt: opt, filter: r.filter, gen: r.gen}, nil
	}
	return New(r.comm, opt)
}

// Community returns the underlying community view.
func (r *Recommender) Community() *model.Community { return r.comm }

// Filter returns the similarity filter (useful for evaluation harnesses).
func (r *Recommender) Filter() *cf.Filter { return r.filter }

// Neighborhood runs stage 1 for the active agent.
func (r *Recommender) Neighborhood(active model.AgentID) (*trust.Neighborhood, error) {
	return r.NeighborhoodCtx(context.Background(), active)
}

// NeighborhoodCtx is Neighborhood with cancellation. The Appleseed metric
// checks ctx at every iteration boundary; the cheaper metrics check it
// once on entry. Returns ctx.Err() when cancelled.
func (r *Recommender) NeighborhoodCtx(ctx context.Context, active model.AgentID) (*trust.Neighborhood, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.opt.Candidates != nil {
		nb := &trust.Neighborhood{Source: active}
		for _, id := range r.opt.Candidates(active) {
			if id != active && r.comm.HasAgent(id) {
				nb.Ranks = append(nb.Ranks, trust.Rank{Agent: id, Trust: 1})
			}
		}
		return nb, nil
	}
	net := trust.FromCommunity(r.comm)
	switch r.opt.Metric {
	case Advogato:
		return trust.Advogato(net, active, r.opt.Advogato)
	case PathTrust:
		return trust.PathTrust(net, active, r.opt.PathTrust)
	case NoTrust:
		nb := &trust.Neighborhood{Source: active}
		for _, id := range r.comm.Agents() {
			if id != active {
				nb.Ranks = append(nb.Ranks, trust.Rank{Agent: id, Trust: 1})
			}
		}
		return nb, nil
	default:
		return trust.AppleseedCtx(ctx, net, active, r.opt.Appleseed)
	}
}

// RankedPeers runs stages 1-3: trust neighborhood, similarity filtering
// and rank synthesization. The result is sorted by descending weight (ties
// by agent ID).
func (r *Recommender) RankedPeers(active model.AgentID) ([]PeerRank, error) {
	return r.RankedPeersCtx(context.Background(), active)
}

// RankedPeersCtx is RankedPeers with cancellation: stage 1 inherits the
// context, and the stage-2 similarity loop — which builds interest
// profiles for cache-cold peers — checks it at per-peer boundaries.
// Returns ctx.Err() when cancelled.
func (r *Recommender) RankedPeersCtx(ctx context.Context, active model.AgentID) ([]PeerRank, error) {
	if !r.comm.HasAgent(active) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAgent, active)
	}
	nb, err := r.NeighborhoodCtx(ctx, active)
	if err != nil {
		return nil, err
	}
	return r.SynthesizeCtx(ctx, active, nb)
}

// SynthesizeCtx runs stages 2-3 — similarity filtering and rank
// synthesization — over an externally supplied trust neighborhood,
// exactly as RankedPeersCtx does over the stage-1 result. Serving layers
// that transform the neighborhood before synthesis (the strategy
// ladder's trust-hop widening) use this to keep the downstream pipeline
// identical. Returns ctx.Err() when cancelled.
func (r *Recommender) SynthesizeCtx(ctx context.Context, active model.AgentID, nb *trust.Neighborhood) ([]PeerRank, error) {
	if nb == nil || len(nb.Ranks) == 0 {
		return nil, nil
	}
	maxTrust := nb.Ranks[0].Trust
	for _, rk := range nb.Ranks {
		if rk.Trust > maxTrust {
			maxTrust = rk.Trust
		}
	}
	alpha := r.opt.alpha()
	peers := make([]PeerRank, 0, len(nb.Ranks))
	for i, rk := range nb.Ranks {
		if i&15 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tn := 0.0
		if maxTrust > 0 {
			tn = rk.Trust / maxTrust
		}
		if tn < r.opt.TrustThreshold {
			continue
		}
		peers = append(peers, PeerRank{Agent: rk.Agent, Trust: tn})
	}
	// Stage 2 as one batched scan: the filter computes every peer
	// similarity over the compiled profile matrix (merge-joins over
	// sorted postings), fanning out across workers when the peer set and
	// CPU count warrant it.
	if len(peers) > 0 {
		ids := make([]model.AgentID, len(peers))
		for i := range peers {
			ids[i] = peers[i].Agent
		}
		sims := make([]cf.SimResult, len(peers))
		if err := r.filter.Similarities(ctx, active, ids, sims); err != nil {
			return nil, err
		}
		for i := range peers {
			if sims[i].OK {
				peers[i].Sim, peers[i].SimOK = sims[i].Sim, true
			}
		}
	}

	switch r.opt.Merge {
	case BordaCount:
		bordaMerge(peers, alpha)
	default:
		for i := range peers {
			// Negative correlation indicates diverging interests (§3.3):
			// such peers contribute no similarity weight.
			simNorm := peers[i].Sim
			if simNorm < 0 {
				simNorm = 0
			}
			peers[i].Weight = alpha*peers[i].Trust + (1-alpha)*simNorm
		}
	}
	slices.SortFunc(peers, func(a, b PeerRank) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		case a.Agent < b.Agent:
			return -1
		case a.Agent > b.Agent:
			return 1
		default:
			return 0
		}
	})
	if r.opt.MaxNeighbors > 0 && len(peers) > r.opt.MaxNeighbors {
		peers = peers[:r.opt.MaxNeighbors]
	}
	return peers, nil
}

// Recommend runs the full pipeline and returns the top-n recommendations
// for the active agent (all scored products if n <= 0). Products the
// active agent has already rated never appear.
func (r *Recommender) Recommend(active model.AgentID, n int) ([]Recommendation, error) {
	return r.RecommendCtx(context.Background(), active, n)
}

// RecommendCtx is Recommend with cancellation threaded through every
// pipeline stage. Returns ctx.Err() when cancelled.
func (r *Recommender) RecommendCtx(ctx context.Context, active model.AgentID, n int) ([]Recommendation, error) {
	peers, err := r.RankedPeersCtx(ctx, active)
	if err != nil {
		return nil, err
	}
	return r.RecommendFromCtx(ctx, active, peers, n)
}

// RecommendFrom runs stage 4 only — the product vote — over an already
// synthesized peer ranking, as produced by RankedPeers. Serving layers
// that cache neighborhoods across requests (internal/engine) use this to
// skip stages 1-3 entirely on a warm cache.
func (r *Recommender) RecommendFrom(active model.AgentID, peers []PeerRank, n int) ([]Recommendation, error) {
	return r.RecommendFromCtx(context.Background(), active, peers, n)
}

// RecommendFromCtx is RecommendFrom with cancellation: the product vote
// checks ctx at per-peer boundaries (each peer may contribute an entire
// rating history). Returns ctx.Err() when cancelled.
func (r *Recommender) RecommendFromCtx(ctx context.Context, active model.AgentID, peers []PeerRank, n int) ([]Recommendation, error) {
	act := r.comm.Agent(active)
	if act == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAgent, active)
	}

	var touched map[taxonomy.Topic]bool
	if r.opt.Content == NovelCategories {
		touched = r.touchedTopics(act)
	}

	// Vote accumulators live in one slab indexed through a flat
	// per-product vote table — the community assigns every product a
	// dense ordinal, so the vote loop does no hashing at all: votes[ord]
	// holds 0 (unseen), -1 (rated by the active agent), or the
	// accumulator index + 1. Peers vote through the community's memoized
	// positive-rating lists, which carry resolved product pointers.
	type acc struct {
		prod       *model.Product
		score      float64
		supporters int
	}
	votes := make([]int32, r.comm.NumProducts())
	// Size for the realistic candidate pool — roughly half the catalog
	// shows up as a positively-rated novel product across a large peer
	// set — so the slab doesn't re-grow mid-vote.
	accs := make([]acc, 0, r.comm.NumProducts()/2+16)
	// Sentinel entries for the active agent's own history. Products the
	// active agent rated but the catalog does not know need no sentinel —
	// peers' votes resolve through the same catalog, so they can never
	// become candidates.
	for _, rs := range act.RatedProducts() {
		if p := r.comm.Product(rs.Product); p != nil {
			votes[p.Ord()] = -1
		}
	}
	for i, p := range peers {
		if i&15 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if p.Weight <= 0 {
			continue
		}
		peer := r.comm.Agent(p.Agent)
		if peer == nil {
			continue
		}
		for _, pr := range r.comm.PositiveRatings(peer) {
			prod := pr.Product
			o := prod.Ord()
			ai := votes[o]
			if ai < 0 {
				continue // active already rated it (sentinel)
			}
			if touched != nil && !r.isNovelProduct(prod, touched) {
				continue
			}
			if ai == 0 {
				accs = append(accs, acc{prod: prod})
				ai = int32(len(accs))
				votes[o] = ai
			}
			accs[ai-1].score += p.Weight * pr.Value
			accs[ai-1].supporters++
		}
	}

	// Content boost: scale each candidate's vote score by its affinity
	// to the active agent's own taxonomy profile (hybrid filtering, §5).
	var activeProfile sparse.Vector
	if r.opt.ContentBoost > 0 {
		var err error
		if activeProfile, err = r.gen.ProfileCtx(ctx, act, r.comm); err != nil {
			return nil, err
		}
	}

	out := make([]Recommendation, 0, len(accs))
	for i := range accs {
		a := &accs[i]
		score := a.score
		if r.opt.ContentBoost > 0 {
			score *= 1 + r.opt.ContentBoost*r.contentMatch(activeProfile, a.prod)
		}
		out = append(out, Recommendation{Product: a.prod.ID, Score: score, Supporters: a.supporters})
	}
	slices.SortFunc(out, func(a, b Recommendation) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Product < b.Product:
			return -1
		case a.Product > b.Product:
			return 1
		default:
			return 0
		}
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// bordaMerge assigns Borda-position weights in place: peers get
// (n-rank)/n under the trust ordering and under the similarity ordering
// (undefined or negative similarities rank last with score 0), blended
// with α.
func bordaMerge(peers []PeerRank, alpha float64) {
	n := len(peers)
	if n == 0 {
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	score := func(rank int) float64 { return float64(n-rank) / float64(n) }

	// Trust ordering (ties by agent ID for determinism).
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := peers[idx[a]], peers[idx[b]]
		if pa.Trust != pb.Trust {
			return pa.Trust > pb.Trust
		}
		return pa.Agent < pb.Agent
	})
	trustScore := make([]float64, n)
	for rank, i := range idx {
		trustScore[i] = score(rank)
	}

	// Similarity ordering: defined non-negative similarities first.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := peers[idx[a]], peers[idx[b]]
		ea, eb := pa.SimOK && pa.Sim >= 0, pb.SimOK && pb.Sim >= 0
		if ea != eb {
			return ea
		}
		if pa.Sim != pb.Sim {
			return pa.Sim > pb.Sim
		}
		return pa.Agent < pb.Agent
	})
	simScore := make([]float64, n)
	for rank, i := range idx {
		if p := peers[i]; p.SimOK && p.Sim >= 0 {
			simScore[i] = score(rank)
		}
	}

	for i := range peers {
		peers[i].Weight = alpha*trustScore[i] + (1-alpha)*simScore[i]
	}
}

// contentMatch returns the cosine affinity in [0,1] between the active
// profile and the product's propagated descriptor vector.
func (r *Recommender) contentMatch(activeProfile sparse.Vector, p *model.Product) float64 {
	if p == nil || len(p.Topics) == 0 || len(activeProfile) == 0 {
		return 0
	}
	pv := sparse.New(len(p.Topics) * 8)
	share := 1.0 / float64(len(p.Topics))
	for _, d := range p.Topics {
		r.gen.PropagateLeaf(pv, d, share)
	}
	m, ok := sparse.Cosine(activeProfile, pv)
	if !ok || m < 0 {
		return 0
	}
	return m
}

// touchedTopics collects every topic (with ancestors) the active agent's
// positive ratings reach — the categories NOT "left untouched until now".
func (r *Recommender) touchedTopics(act *model.Agent) map[taxonomy.Topic]bool {
	touched := make(map[taxonomy.Topic]bool)
	if r.comm.Taxonomy() == nil {
		return touched
	}
	for prod, v := range act.Ratings {
		if v <= 0 {
			continue
		}
		p := r.comm.Product(prod)
		if p == nil {
			continue
		}
		for _, d := range p.Topics {
			touched[d] = true
			for _, anc := range r.comm.Taxonomy().Ancestors(d) {
				touched[anc] = true
			}
		}
	}
	delete(touched, taxonomy.Root) // the top element covers everything
	return touched
}

// isNovelProduct reports whether every descriptor of p lies outside the
// touched set (ignoring the root, which every path shares).
func (r *Recommender) isNovelProduct(p *model.Product, touched map[taxonomy.Topic]bool) bool {
	if p == nil || len(p.Topics) == 0 {
		return false
	}
	for _, d := range p.Topics {
		if touched[d] {
			return false
		}
	}
	return true
}
