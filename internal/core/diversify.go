package core

// Topic diversification: the natural continuation of the paper's
// taxonomy machinery (published by the same author as "Improving
// Recommendation Lists Through Topic Diversification", WWW 2005).
// Recommendation lists assembled purely by vote score tend to cluster in
// one taxonomy branch; diversification re-ranks the candidates to balance
// accuracy against intra-list similarity, using the taxonomy itself as
// the item-to-item similarity measure.

import (
	"sort"

	"swrec/internal/model"
	"swrec/internal/sparse"
)

// productVector returns the product's propagated descriptor vector
// (share 1 split over its descriptors), the item-space counterpart of an
// agent profile.
func (r *Recommender) productVector(id model.ProductID) sparse.Vector {
	p := r.comm.Product(id)
	if p == nil || len(p.Topics) == 0 || r.gen == nil {
		return sparse.New(0)
	}
	v := sparse.New(len(p.Topics) * 8)
	share := 1.0 / float64(len(p.Topics))
	for _, d := range p.Topics {
		r.gen.PropagateLeaf(v, d, share)
	}
	return v
}

// ProductSimilarity returns the taxonomy-driven similarity of two
// products in [0,1] (cosine of propagated descriptor vectors); ok is
// false when either product lacks descriptors or the community carries no
// taxonomy.
func (r *Recommender) ProductSimilarity(a, b model.ProductID) (float64, bool) {
	va, vb := r.productVector(a), r.productVector(b)
	s, ok := sparse.Cosine(va, vb)
	if !ok {
		return 0, false
	}
	if s < 0 {
		s = 0
	}
	return s, true
}

// IntraListSimilarity is the mean pairwise product similarity of a
// recommendation list — the diversity (inverse) measure the θ sweep of
// experiment E11 reports. Lists with fewer than two comparable items
// score 0.
func (r *Recommender) IntraListSimilarity(recs []Recommendation) float64 {
	vecs := make([]sparse.Vector, len(recs))
	for i, rec := range recs {
		vecs[i] = r.productVector(rec.Product)
	}
	var sum float64
	var n int
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			if s, ok := sparse.Cosine(vecs[i], vecs[j]); ok {
				if s < 0 {
					s = 0
				}
				sum += s
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Diversify re-ranks the candidate list (sorted by descending score, as
// Recommend returns it) into a top-n list balancing accuracy and topic
// diversity. theta ∈ [0,1] is the diversification factor: 0 returns the
// accuracy ordering unchanged, larger values weigh dissimilarity to the
// already-selected items more. The greedy merge follows the WWW'05
// scheme: at each position, every remaining candidate is ranked once by
// its original position P and once by its dissimilarity to the chosen
// prefix Pd, and the candidate minimizing (1-theta)·P + theta·Pd wins.
func (r *Recommender) Diversify(recs []Recommendation, n int, theta float64) []Recommendation {
	if n <= 0 || n > len(recs) {
		n = len(recs)
	}
	if len(recs) == 0 || theta <= 0 {
		return append([]Recommendation(nil), recs[:n]...)
	}
	if theta > 1 {
		theta = 1
	}

	vecs := make([]sparse.Vector, len(recs))
	for i, rec := range recs {
		vecs[i] = r.productVector(rec.Product)
	}

	out := make([]Recommendation, 0, n)
	chosen := make([]int, 0, n)
	remaining := make([]int, 0, len(recs)-1)
	out = append(out, recs[0]) // the top candidate always leads
	chosen = append(chosen, 0)
	for i := 1; i < len(recs); i++ {
		remaining = append(remaining, i)
	}

	// simToChosen accumulates Σ sim(candidate, chosen) incrementally.
	simToChosen := make([]float64, len(recs))
	for len(out) < n && len(remaining) > 0 {
		last := chosen[len(chosen)-1]
		for _, c := range remaining {
			if s, ok := sparse.Cosine(vecs[c], vecs[last]); ok && s > 0 {
				simToChosen[c] += s
			}
		}
		// Dissimilarity rank: ascending accumulated similarity.
		byDissim := append([]int(nil), remaining...)
		sort.Slice(byDissim, func(a, b int) bool {
			if simToChosen[byDissim[a]] != simToChosen[byDissim[b]] {
				return simToChosen[byDissim[a]] < simToChosen[byDissim[b]]
			}
			return byDissim[a] < byDissim[b] // accuracy order breaks ties
		})
		dissimRank := make(map[int]int, len(byDissim))
		for rank, c := range byDissim {
			dissimRank[c] = rank
		}
		best, bestScore := -1, 0.0
		for pos, c := range remaining {
			// remaining stays in accuracy order, so pos is P's rank among
			// the survivors.
			merged := (1-theta)*float64(pos) + theta*float64(dissimRank[c])
			if best == -1 || merged < bestScore ||
				(merged == bestScore && recs[c].Product < recs[best].Product) {
				best, bestScore = c, merged
			}
		}
		out = append(out, recs[best])
		chosen = append(chosen, best)
		for i, c := range remaining {
			if c == best {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return out
}
