package rdf

// Turtle subset support. N-Triples is the wire baseline every §4-era
// toolchain handles, but real FOAF homepages of the period were typically
// published in the more compact Turtle/N3 family. This file implements
// the subset needed for such documents:
//
//   - @prefix declarations and prefixed names (foaf:knows),
//   - the 'a' keyword for rdf:type,
//   - predicate lists (';') and object lists (','),
//   - the same literal forms as the N-Triples code (plain, @lang, ^^type),
//   - labeled blank nodes (_:b1) and comments.
//
// Not supported (rejected with ErrSyntax): anonymous blank nodes [...],
// collections (...), @base/relative IRIs, and multiline (""") literals.

import (
	"fmt"
	"sort"
	"strings"
)

// CommonPrefixes are the namespace abbreviations used when serializing
// documents of this system; MarshalTurtle only emits the ones a document
// actually uses.
var CommonPrefixes = map[string]string{
	"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	"xsd":  "http://www.w3.org/2001/XMLSchema#",
	"foaf": "http://xmlns.com/foaf/0.1/",
	"dc":   "http://purl.org/dc/elements/1.1/",
	"swt":  "http://swrec.org/ont/trust#",
	"swc":  "http://swrec.org/ont/catalog#",
}

const rdfTypeIRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// MarshalTurtle renders the graph as Turtle, grouping triples by subject
// (first-appearance order) and abbreviating IRIs with CommonPrefixes.
func (g *Graph) MarshalTurtle() string {
	// Determine which prefixes the document uses.
	used := map[string]bool{}
	shorten := func(iri string) (string, bool) {
		for p, ns := range CommonPrefixes {
			if rest, ok := strings.CutPrefix(iri, ns); ok && isLocalName(rest) {
				used[p] = true
				return p + ":" + rest, true
			}
		}
		return "", false
	}
	term := func(t Term, isPredicate bool) string {
		switch t.Kind {
		case IRI:
			if isPredicate && t.Value == rdfTypeIRI {
				return "a"
			}
			if s, ok := shorten(t.Value); ok {
				return s
			}
			return "<" + t.Value + ">"
		case Blank:
			return "_:" + t.Value
		default:
			s := `"` + escapeLiteral(t.Value) + `"`
			if t.Lang != "" {
				return s + "@" + t.Lang
			}
			if t.Datatype != "" {
				if short, ok := shorten(t.Datatype); ok {
					return s + "^^" + short
				}
				return s + "^^<" + t.Datatype + ">"
			}
			return s
		}
	}

	// Group by subject, preserving first-appearance order; within a
	// subject, group by predicate preserving order.
	type pred struct {
		p       string
		objects []string
	}
	type subj struct {
		s     string
		preds []pred
		index map[string]int
	}
	var subjects []*subj
	bySubj := map[Term]*subj{}
	var body strings.Builder
	for _, tr := range g.triples {
		su, ok := bySubj[tr.Subject]
		if !ok {
			su = &subj{s: term(tr.Subject, false), index: map[string]int{}}
			bySubj[tr.Subject] = su
			subjects = append(subjects, su)
		}
		p := term(tr.Predicate, true)
		i, ok := su.index[p]
		if !ok {
			i = len(su.preds)
			su.index[p] = i
			su.preds = append(su.preds, pred{p: p})
		}
		su.preds[i].objects = append(su.preds[i].objects, term(tr.Object, false))
	}
	for _, su := range subjects {
		body.WriteString(su.s)
		for i, pr := range su.preds {
			if i > 0 {
				body.WriteString(" ;\n   ")
			}
			body.WriteByte(' ')
			body.WriteString(pr.p)
			body.WriteByte(' ')
			body.WriteString(strings.Join(pr.objects, ", "))
		}
		body.WriteString(" .\n")
	}

	var head strings.Builder
	prefixes := make([]string, 0, len(used))
	for p := range used {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Fprintf(&head, "@prefix %s: <%s> .\n", p, CommonPrefixes[p])
	}
	if head.Len() > 0 {
		head.WriteByte('\n')
	}
	return head.String() + body.String()
}

// isLocalName reports whether rest can stand after "prefix:" unescaped.
func isLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseDocument parses a document in any supported syntax: RDF/XML when
// it looks like XML, otherwise N-Triples (the wire baseline) with a
// Turtle fallback. Crawled Semantic Web documents do not reliably carry
// correct media types, so detection is by content rather than by label.
func ParseDocument(doc string) (*Graph, error) {
	if looksLikeXML(doc) {
		return ParseRDFXML(doc)
	}
	g, ntErr := ParseString(doc)
	if ntErr == nil {
		return g, nil
	}
	g, ttlErr := ParseTurtle(doc)
	if ttlErr == nil {
		return g, nil
	}
	return nil, fmt.Errorf("rdf: not N-Triples (%v) nor Turtle (%v)", ntErr, ttlErr)
}

// looksLikeXML reports whether the document opens with an XML
// declaration or an rdf:RDF-ish root.
func looksLikeXML(doc string) bool {
	s := strings.TrimLeft(doc, " \t\r\n")
	return strings.HasPrefix(s, "<?xml") || strings.HasPrefix(s, "<rdf:RDF")
}

// ParseTurtle parses a Turtle-subset document into a new graph.
func ParseTurtle(doc string) (*Graph, error) {
	p := &turtleParser{s: doc, line: 1, prefixes: map[string]string{}}
	g := NewGraph()
	for {
		p.skipWS()
		if p.done() {
			return g, nil
		}
		if p.hasKeyword("@prefix") {
			if err := p.prefixDecl(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.triples(g); err != nil {
			return nil, err
		}
	}
}

// turtleParser is a recursive-descent parser over the whole document.
type turtleParser struct {
	s        string
	i        int
	line     int
	prefixes map[string]string
}

func (p *turtleParser) done() bool { return p.i >= len(p.s) }

func (p *turtleParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("turtle line %d: %w: %s", p.line, ErrSyntax, fmt.Sprintf(format, args...))
}

// skipWS consumes whitespace and comments, tracking line numbers.
func (p *turtleParser) skipWS() {
	for !p.done() {
		c := p.s[p.i]
		switch {
		case c == '\n':
			p.line++
			p.i++
		case c == ' ' || c == '\t' || c == '\r':
			p.i++
		case c == '#':
			for !p.done() && p.s[p.i] != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) peek() byte {
	if p.done() {
		return 0
	}
	return p.s[p.i]
}

func (p *turtleParser) eat(c byte) bool {
	if p.peek() == c {
		p.i++
		return true
	}
	return false
}

// hasKeyword checks (without consuming) for a keyword at the cursor.
func (p *turtleParser) hasKeyword(kw string) bool {
	return strings.HasPrefix(p.s[p.i:], kw)
}

// prefixDecl parses "@prefix name: <iri> ." (the cursor sits at '@').
func (p *turtleParser) prefixDecl() error {
	p.i += len("@prefix")
	p.skipWS()
	start := p.i
	for !p.done() && p.s[p.i] != ':' {
		p.i++
	}
	if p.done() {
		return p.errf("unterminated @prefix name")
	}
	name := strings.TrimSpace(p.s[start:p.i])
	p.i++ // ':'
	p.skipWS()
	if !p.eat('<') {
		return p.errf("@prefix needs an IRI")
	}
	iriStart := p.i
	for !p.done() && p.s[p.i] != '>' {
		p.i++
	}
	if p.done() {
		return p.errf("unterminated @prefix IRI")
	}
	iri := p.s[iriStart:p.i]
	p.i++ // '>'
	if iri == "" {
		return p.errf("empty @prefix IRI")
	}
	p.skipWS()
	if !p.eat('.') {
		return p.errf("@prefix must end with '.'")
	}
	p.prefixes[name] = iri
	return nil
}

// triples parses one "subject predicateObjectList ." statement.
func (p *turtleParser) triples(g *Graph) error {
	subject, err := p.term(false)
	if err != nil {
		return err
	}
	if subject.Kind == Literal {
		return p.errf("literal subject")
	}
	for {
		p.skipWS()
		predicate, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			object, err := p.term(false)
			if err != nil {
				return err
			}
			g.Add(Triple{subject, predicate, object})
			p.skipWS()
			if !p.eat(',') {
				break
			}
		}
		if p.eat(';') {
			p.skipWS()
			// Turtle allows a trailing ';' before '.'.
			if p.peek() == '.' {
				p.i++
				return nil
			}
			continue
		}
		if p.eat('.') {
			return nil
		}
		return p.errf("expected ';', ',' or '.', got %q", string(p.peek()))
	}
}

// predicate parses a verb: 'a' or an IRI/prefixed name.
func (p *turtleParser) predicate() (Term, error) {
	if p.hasKeyword("a") && p.i+1 < len(p.s) && isWS(p.s[p.i+1]) {
		p.i++
		return NewIRI(rdfTypeIRI), nil
	}
	t, err := p.term(true)
	if err != nil {
		return Term{}, err
	}
	if t.Kind != IRI {
		return Term{}, p.errf("predicate must be an IRI")
	}
	return t, nil
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// term parses an IRI, prefixed name, blank node, or literal.
func (p *turtleParser) term(asPredicate bool) (Term, error) {
	p.skipWS()
	switch {
	case p.done():
		return Term{}, p.errf("unexpected end of document")

	case p.eat('<'):
		start := p.i
		for !p.done() && p.s[p.i] != '>' {
			p.i++
		}
		if p.done() {
			return Term{}, p.errf("unterminated IRI")
		}
		iri := p.s[start:p.i]
		p.i++
		if iri == "" {
			return Term{}, p.errf("empty IRI")
		}
		return NewIRI(iri), nil

	case strings.HasPrefix(p.s[p.i:], "_:"):
		p.i += 2
		start := p.i
		for !p.done() && !isWS(p.s[p.i]) && !strings.ContainsRune(".,;", rune(p.s[p.i])) {
			p.i++
		}
		label := p.s[start:p.i]
		if label == "" {
			return Term{}, p.errf("empty blank node label")
		}
		return NewBlank(label), nil

	case p.peek() == '"':
		return p.literal()

	case p.peek() == '[' || p.peek() == '(':
		return Term{}, p.errf("anonymous blank nodes and collections are not supported")

	default:
		// Prefixed name: prefix:local.
		start := p.i
		for !p.done() && p.s[p.i] != ':' && !isWS(p.s[p.i]) {
			p.i++
		}
		if p.done() || p.s[p.i] != ':' {
			return Term{}, p.errf("expected a term, got %q", p.s[start:p.i])
		}
		prefix := p.s[start:p.i]
		p.i++ // ':'
		localStart := p.i
		for !p.done() && !isWS(p.s[p.i]) && !strings.ContainsRune(",;", rune(p.s[p.i])) {
			// '.' ends a local name only when followed by whitespace/EOF
			// (Turtle's statement terminator), since local names of this
			// subset never contain dots anyway.
			if p.s[p.i] == '.' {
				break
			}
			p.i++
		}
		local := p.s[localStart:p.i]
		ns, ok := p.prefixes[prefix]
		if !ok {
			return Term{}, p.errf("undeclared prefix %q", prefix)
		}
		return NewIRI(ns + local), nil
	}
}

// literal parses "..." with optional @lang or ^^datatype.
func (p *turtleParser) literal() (Term, error) {
	p.i++ // opening quote
	var b strings.Builder
	for {
		if p.done() {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.i]
		p.i++
		if c == '"' {
			break
		}
		if c == '\n' {
			return Term{}, p.errf("newline in single-quoted literal")
		}
		if c == '\\' {
			if p.done() {
				return Term{}, p.errf("dangling escape")
			}
			e := p.s[p.i]
			p.i++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\\':
				b.WriteByte(e)
			default:
				return Term{}, p.errf("bad escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	t := NewLiteral(b.String())
	switch {
	case p.eat('@'):
		start := p.i
		for !p.done() && !isWS(p.s[p.i]) && !strings.ContainsRune(".,;", rune(p.s[p.i])) {
			p.i++
		}
		t.Lang = p.s[start:p.i]
		if t.Lang == "" {
			return Term{}, p.errf("empty language tag")
		}
	case strings.HasPrefix(p.s[p.i:], "^^"):
		p.i += 2
		dt, err := p.term(false)
		if err != nil {
			return Term{}, err
		}
		if dt.Kind != IRI {
			return Term{}, p.errf("datatype must be an IRI")
		}
		t.Datatype = dt.Value
	}
	return t, nil
}
