package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("hallo", "de"), `"hallo"@de`},
		{NewTypedLiteral("0.75", XSDDecimal), `"0.75"^^<` + XSDDecimal + `>`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %s, want %s", got, c.want)
		}
	}
}

func TestParseBasic(t *testing.T) {
	doc := `
# agent homepage
<http://x/alice> <http://xmlns.com/foaf/0.1/name> "Alice" .
<http://x/alice> <http://xmlns.com/foaf/0.1/knows> <http://x/bob> .
_:r1 <http://x/ns#value> "0.9"^^<` + XSDDecimal + `> .
<http://x/alice> <http://x/ns#motto> "tout va bien"@fr .
`
	g, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	names := g.Objects("http://x/alice", "http://xmlns.com/foaf/0.1/name")
	if len(names) != 1 || names[0].Value != "Alice" {
		t.Fatalf("names = %v", names)
	}
	motto := g.Objects("http://x/alice", "http://x/ns#motto")
	if len(motto) != 1 || motto[0].Lang != "fr" {
		t.Fatalf("motto = %v", motto)
	}
	// Blank subject parsed.
	b := NewBlank("r1")
	if got := g.Match(&b, nil, nil); len(got) != 1 || got[0].Object.Datatype != XSDDecimal {
		t.Fatalf("blank subject match = %v", got)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<http://x/a> <http://x/p> "line1\nline2\t\"quoted\" back\\slash" .` + "\n"
	g, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	obj := g.Triples()[0].Object
	want := "line1\nline2\t\"quoted\" back\\slash"
	if obj.Value != want {
		t.Fatalf("unescaped = %q, want %q", obj.Value, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://x/a> <http://x/p> "unterminated .`,
		`<http://x/a> <http://x/p> <http://x/o>`,     // missing dot
		`"literal" <http://x/p> <http://x/o> .`,      // literal subject
		`<http://x/a> "literal" <http://x/o> .`,      // literal predicate
		`<http://x/a> _:b <http://x/o> .`,            // blank predicate
		`<http://x/a> <http://x/p> "v"^^bad .`,       // datatype not IRI
		`<http://x/a> <http://x/p> "v"@ .`,           // empty language
		`<http://x/a> <http://x/p> <http://x/o> . x`, // trailing garbage
		`<> <http://x/p> <http://x/o> .`,             // empty IRI
		`<http://x/a <http://x/p> <http://x/o> .`,    // unterminated IRI
		`<http://x/a> <http://x/p> "bad\q escape" .`, // bad escape
		`<http://x/a> <http://x/p> _: .`,             // empty blank label
		`<http://x/a> <http://x/p> "v"^^<unclosed .`, // unterminated datatype
		`junk`, // no term at all
	}
	for _, doc := range bad {
		if _, err := ParseString(doc + "\n"); err == nil {
			t.Errorf("accepted malformed line: %s", doc)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	g, err := ParseString("# only a comment\n\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d, want 0", g.Len())
	}
}

func TestGraphDeduplicates(t *testing.T) {
	g := NewGraph()
	tr := Triple{NewIRI("http://x/a"), NewIRI("http://x/p"), NewLiteral("v")}
	g.Add(tr)
	g.Add(tr)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after duplicate add", g.Len())
	}
}

func TestMatchWildcards(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/a", "http://x/p", "http://x/b")
	g.AddIRI("http://x/a", "http://x/q", "http://x/c")
	g.AddIRI("http://x/d", "http://x/p", "http://x/b")

	s := NewIRI("http://x/a")
	if got := g.Match(&s, nil, nil); len(got) != 2 {
		t.Fatalf("subject match = %d, want 2", len(got))
	}
	p := NewIRI("http://x/p")
	if got := g.Match(nil, &p, nil); len(got) != 2 {
		t.Fatalf("predicate match = %d, want 2", len(got))
	}
	o := NewIRI("http://x/b")
	if got := g.Match(&s, &p, &o); len(got) != 1 {
		t.Fatalf("exact match = %d, want 1", len(got))
	}
	if got := g.Match(nil, nil, nil); len(got) != 3 {
		t.Fatalf("wildcard match = %d, want 3", len(got))
	}
}

func TestSubjectsSortedDistinct(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/b", "http://x/p", "http://x/o")
	g.AddIRI("http://x/a", "http://x/p", "http://x/o")
	g.AddIRI("http://x/a", "http://x/q", "http://x/o")
	subs := g.Subjects()
	if len(subs) != 2 || subs[0].Value != "http://x/a" || subs[1].Value != "http://x/b" {
		t.Fatalf("Subjects = %v", subs)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://x/name"), NewLiteral(`weird "value"` + "\nwith newline")})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://x/trust"), NewTypedLiteral("-0.5", XSDDecimal)})
	g.Add(Triple{NewBlank("n0"), NewIRI("http://x/p"), NewLangLiteral("ciao", "it")})

	back, err := ParseString(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip Len = %d, want %d", back.Len(), g.Len())
	}
	for i, tr := range g.Triples() {
		if back.Triples()[i] != tr {
			t.Fatalf("triple %d: %v != %v", i, back.Triples()[i], tr)
		}
	}
}

func TestWriteTo(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/a", "http://x/p", "http://x/b")
	var sb strings.Builder
	n, err := g.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(sb.String()) {
		t.Fatalf("WriteTo count = %d, len = %d", n, len(sb.String()))
	}
	if !strings.HasSuffix(sb.String(), " .\n") {
		t.Fatalf("bad serialization: %q", sb.String())
	}
}

// Property: any literal value round-trips through escape → parse.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(value string) bool {
		// N-Triples as implemented is byte-oriented; skip non-UTF8 noise
		// control chars other than the escaped set.
		for _, r := range value {
			if r < 0x20 && r != '\n' && r != '\t' && r != '\r' {
				return true
			}
		}
		g := NewGraph()
		g.Add(Triple{NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral(value)})
		back, err := ParseString(g.Marshal())
		if err != nil {
			return false
		}
		return back.Len() == 1 && back.Triples()[0].Object.Value == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
