package rdf

// RDF/XML subset support. FOAF documents of the paper's era (§4: "FOAF
// defines machine-readable homepages based upon RDF") were published in
// RDF/XML; this file implements the subset those documents need:
//
//   - an <rdf:RDF> root with <rdf:Description rdf:about="..."> nodes
//     (typed node elements like <foaf:Person rdf:about="..."> are
//     understood on input and expand to an rdf:type triple),
//   - property elements with rdf:resource (IRI objects), rdf:nodeID
//     (blank objects), rdf:datatype, xml:lang, or text content,
//   - rdf:nodeID on subjects for labeled blank nodes.
//
// Not supported (rejected): rdf:parseType, nested (anonymous) node
// elements, containers (rdf:Seq etc.), reification attributes, xml:base
// and relative IRIs.

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

const (
	rdfNS       = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	xmlLangAttr = "lang"
)

// MarshalRDFXML renders the graph as RDF/XML. Every predicate IRI must
// split into a namespace and a valid XML local name (true for all
// vocabularies this system emits); otherwise an error is returned.
func (g *Graph) MarshalRDFXML() (string, error) {
	// Assign a prefix to every predicate namespace (and rdf:).
	nsPrefix := map[string]string{rdfNS: "rdf"}
	prefixUsed := map[string]bool{"rdf": true}
	nextAuto := 1
	assign := func(ns string) string {
		if p, ok := nsPrefix[ns]; ok {
			return p
		}
		for p, known := range CommonPrefixes {
			if known == ns && !prefixUsed[p] {
				nsPrefix[ns] = p
				prefixUsed[p] = true
				return p
			}
		}
		p := fmt.Sprintf("ns%d", nextAuto)
		nextAuto++
		nsPrefix[ns] = p
		prefixUsed[p] = true
		return p
	}

	type propLine struct{ qname, body string }
	type subjBlock struct {
		attr  string // rdf:about or rdf:nodeID attribute
		props []propLine
	}
	var order []Term
	blocks := map[Term]*subjBlock{}

	for _, tr := range g.triples {
		ns, local, err := splitIRI(tr.Predicate.Value)
		if err != nil {
			return "", err
		}
		qname := assign(ns) + ":" + local

		blk, ok := blocks[tr.Subject]
		if !ok {
			var attr string
			switch tr.Subject.Kind {
			case IRI:
				attr = fmt.Sprintf("rdf:about=%q", tr.Subject.Value)
			case Blank:
				attr = fmt.Sprintf("rdf:nodeID=%q", tr.Subject.Value)
			default:
				return "", fmt.Errorf("rdf: literal subject cannot serialize")
			}
			blk = &subjBlock{attr: attr}
			blocks[tr.Subject] = blk
			order = append(order, tr.Subject)
		}

		var body string
		switch tr.Object.Kind {
		case IRI:
			body = fmt.Sprintf("<%s rdf:resource=%q/>", qname, tr.Object.Value)
		case Blank:
			body = fmt.Sprintf("<%s rdf:nodeID=%q/>", qname, tr.Object.Value)
		default:
			attrs := ""
			if tr.Object.Lang != "" {
				attrs = fmt.Sprintf(" xml:lang=%q", tr.Object.Lang)
			} else if tr.Object.Datatype != "" {
				attrs = fmt.Sprintf(" rdf:datatype=%q", tr.Object.Datatype)
			}
			body = fmt.Sprintf("<%s%s>%s</%s>", qname, attrs, xmlEscape(tr.Object.Value), qname)
		}
		blk.props = append(blk.props, propLine{qname: qname, body: body})
	}

	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString("<rdf:RDF")
	nss := make([]string, 0, len(nsPrefix))
	for ns := range nsPrefix {
		nss = append(nss, ns)
	}
	sort.Slice(nss, func(i, j int) bool { return nsPrefix[nss[i]] < nsPrefix[nss[j]] })
	for _, ns := range nss {
		fmt.Fprintf(&b, "\n  xmlns:%s=%q", nsPrefix[ns], ns)
	}
	b.WriteString(">\n")
	for _, s := range order {
		blk := blocks[s]
		fmt.Fprintf(&b, "  <rdf:Description %s>\n", blk.attr)
		for _, p := range blk.props {
			b.WriteString("    ")
			b.WriteString(p.body)
			b.WriteByte('\n')
		}
		b.WriteString("  </rdf:Description>\n")
	}
	b.WriteString("</rdf:RDF>\n")
	return b.String(), nil
}

// splitIRI splits a predicate IRI into namespace + XML-safe local name at
// the last '#' or '/'.
func splitIRI(iri string) (ns, local string, err error) {
	cut := strings.LastIndexAny(iri, "#/")
	if cut < 0 || cut == len(iri)-1 {
		return "", "", fmt.Errorf("rdf: predicate %q has no namespace/local split", iri)
	}
	ns, local = iri[:cut+1], iri[cut+1:]
	for i := 0; i < len(local); i++ {
		c := local[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && (c >= '0' && c <= '9' || c == '-' || c == '.'))
		if !ok {
			return "", "", fmt.Errorf("rdf: predicate local name %q is not XML-safe", local)
		}
	}
	return ns, local, nil
}

// xmlEscape escapes literal text content.
func xmlEscape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// ParseRDFXML parses the RDF/XML subset into a new graph.
func ParseRDFXML(doc string) (*Graph, error) {
	dec := xml.NewDecoder(strings.NewReader(doc))
	g := NewGraph()

	// Find the rdf:RDF root.
	var root xml.StartElement
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("rdf: rdfxml: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	if root.Name.Space != rdfNS || root.Name.Local != "RDF" {
		return nil, fmt.Errorf("%w: root element is %s:%s, want rdf:RDF",
			ErrSyntax, root.Name.Space, root.Name.Local)
	}

	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("rdf: rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := parseNodeElement(dec, g, t); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if t.Name == root.Name {
				return g, nil
			}
		}
	}
}

// rdfAttr finds an rdf:-namespace attribute.
func rdfAttr(se xml.StartElement, local string) (string, bool) {
	for _, a := range se.Attr {
		if a.Name.Space == rdfNS && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// parseNodeElement handles one rdf:Description (or typed node element).
func parseNodeElement(dec *xml.Decoder, g *Graph, se xml.StartElement) error {
	var subject Term
	if about, ok := rdfAttr(se, "about"); ok {
		subject = NewIRI(about)
	} else if nodeID, ok := rdfAttr(se, "nodeID"); ok {
		subject = NewBlank(nodeID)
	} else {
		return fmt.Errorf("%w: node element without rdf:about or rdf:nodeID", ErrSyntax)
	}
	// Typed node element: <foaf:Person rdf:about="..."> asserts rdf:type.
	if !(se.Name.Space == rdfNS && se.Name.Local == "Description") {
		g.Add(Triple{subject, NewIRI(rdfNS + "type"), NewIRI(se.Name.Space + se.Name.Local)})
	}

	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("rdf: rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := parsePropertyElement(dec, g, subject, t); err != nil {
				return err
			}
		case xml.EndElement:
			if t.Name == se.Name {
				return nil
			}
		}
	}
}

// parsePropertyElement handles one predicate inside a node element.
func parsePropertyElement(dec *xml.Decoder, g *Graph, subject Term, se xml.StartElement) error {
	predicate := NewIRI(se.Name.Space + se.Name.Local)
	if se.Name.Space == "" {
		return fmt.Errorf("%w: property element %q without namespace", ErrSyntax, se.Name.Local)
	}
	if _, ok := rdfAttr(se, "parseType"); ok {
		return fmt.Errorf("%w: rdf:parseType is not supported", ErrSyntax)
	}

	var object Term
	haveObject := false
	if res, ok := rdfAttr(se, "resource"); ok {
		object = NewIRI(res)
		haveObject = true
	} else if nodeID, ok := rdfAttr(se, "nodeID"); ok {
		object = NewBlank(nodeID)
		haveObject = true
	}

	var datatype, lang string
	if dt, ok := rdfAttr(se, "datatype"); ok {
		datatype = dt
	}
	for _, a := range se.Attr {
		// encoding/xml reports the xml: prefix either literally or as the
		// canonical XML namespace, depending on declaration context.
		if a.Name.Local == xmlLangAttr &&
			(a.Name.Space == "xml" || a.Name.Space == "http://www.w3.org/XML/1998/namespace") {
			lang = a.Value
		}
	}

	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("rdf: rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			return fmt.Errorf("%w: nested node elements are not supported (property %s)",
				ErrSyntax, se.Name.Local)
		case xml.EndElement:
			if t.Name != se.Name {
				return fmt.Errorf("%w: unbalanced element %s", ErrSyntax, t.Name.Local)
			}
			if !haveObject {
				object = Term{Kind: Literal, Value: text.String(), Datatype: datatype, Lang: lang}
			} else if strings.TrimSpace(text.String()) != "" {
				return fmt.Errorf("%w: property with both resource and text content", ErrSyntax)
			}
			g.Add(Triple{subject, predicate, object})
			return nil
		}
	}
}
