package rdf

// Fuzz targets for the three parsers. The Semantic Web serves arbitrary
// bytes (§2: no superordinate authority controls content); the crawler's
// safety rests on these parsers never panicking and on valid documents
// round-tripping. Run with e.g.
//
//	go test -fuzz FuzzParseNTriples ./internal/rdf
//
// In normal test runs only the seed corpus executes.

import (
	"testing"
)

func FuzzParseNTriples(f *testing.F) {
	f.Add("<http://x/a> <http://x/p> <http://x/b> .\n")
	f.Add(`<http://x/a> <http://x/p> "lit"@en .` + "\n")
	f.Add(`_:b <http://x/p> "0.5"^^<http://www.w3.org/2001/XMLSchema#decimal> .` + "\n")
	f.Add("# comment\n\n")
	f.Add(`<http://x/a> <http://x/p> "esc\n\"\\" .` + "\n")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ParseString(doc)
		if err != nil {
			return
		}
		// Valid documents must re-serialize and re-parse losslessly.
		back, err := ParseString(g.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled output failed: %v", err)
		}
		if back.Len() != g.Len() {
			t.Fatalf("round trip changed triple count: %d -> %d", g.Len(), back.Len())
		}
	})
}

func FuzzParseTurtle(f *testing.F) {
	f.Add("@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n<http://x/a> a foaf:Person ; foaf:name \"A\" .\n")
	f.Add("<http://x/a> <http://x/p> <http://x/b>, <http://x/c> .\n")
	f.Add("_:n <http://x/p> \"v\"@de .\n")
	f.Add("# just a comment")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ParseTurtle(doc)
		if err != nil {
			return
		}
		back, err := ParseTurtle(g.MarshalTurtle())
		if err != nil {
			t.Fatalf("re-parse of marshaled turtle failed: %v", err)
		}
		if back.Len() != g.Len() {
			t.Fatalf("turtle round trip changed triple count: %d -> %d", g.Len(), back.Len())
		}
	})
}

func FuzzParseRDFXML(f *testing.F) {
	f.Add(`<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:foaf="http://xmlns.com/foaf/0.1/">
<rdf:Description rdf:about="http://x/a"><foaf:name>A</foaf:name></rdf:Description>
</rdf:RDF>`)
	f.Add(`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"></rdf:RDF>`)
	f.Add("<not-xml")
	f.Fuzz(func(t *testing.T, doc string) {
		// Must never panic; errors are fine.
		_, _ = ParseRDFXML(doc)
	})
}

func FuzzParseDocument(f *testing.F) {
	f.Add("<http://x/a> <http://x/p> <http://x/b> .\n")
	f.Add("@prefix x: <http://x/> .\nx:a x:p x:b .\n")
	f.Add(`<?xml version="1.0"?><rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>`)
	f.Fuzz(func(t *testing.T, doc string) {
		_, _ = ParseDocument(doc)
	})
}
