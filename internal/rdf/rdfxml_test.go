package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRDFXMLShape(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/alice", rdfTypeIRI, "http://xmlns.com/foaf/0.1/Person")
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://xmlns.com/foaf/0.1/name"), NewLiteral("Alice <3")})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://swrec.org/ont/trust#trusts"), NewBlank("t0")})
	g.Add(Triple{NewBlank("t0"), NewIRI("http://swrec.org/ont/trust#value"),
		NewTypedLiteral("0.9", XSDDecimal)})

	out, err := g.MarshalRDFXML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<rdf:RDF`,
		`xmlns:foaf="http://xmlns.com/foaf/0.1/"`,
		`rdf:about="http://x/alice"`,
		`<foaf:name>Alice &lt;3</foaf:name>`,
		`rdf:nodeID="t0"`,
		`rdf:datatype="` + XSDDecimal + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRDFXMLRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/alice", rdfTypeIRI, "http://xmlns.com/foaf/0.1/Person")
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://xmlns.com/foaf/0.1/name"),
		NewLiteral("Alice & \"co\" <tag>")})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://xmlns.com/foaf/0.1/knows"), NewIRI("http://x/bob")})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://swrec.org/ont/trust#trusts"), NewBlank("t0")})
	g.Add(Triple{NewBlank("t0"), NewIRI("http://swrec.org/ont/trust#value"),
		NewTypedLiteral("-0.5", XSDDecimal)})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://x/ns#motto"), NewLangLiteral("ciao", "it")})

	out, err := g.MarshalRDFXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRDFXML(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip Len = %d, want %d\n%s", back.Len(), g.Len(), out)
	}
	want := map[Triple]bool{}
	for _, tr := range g.Triples() {
		want[tr] = true
	}
	for _, tr := range back.Triples() {
		if !want[tr] {
			t.Fatalf("unexpected triple: %v", tr)
		}
	}
}

func TestParseRDFXMLTypedNodeElement(t *testing.T) {
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:foaf="http://xmlns.com/foaf/0.1/">
  <foaf:Person rdf:about="http://x/alice">
    <foaf:name>Alice</foaf:name>
  </foaf:Person>
</rdf:RDF>`
	g, err := ParseRDFXML(doc)
	if err != nil {
		t.Fatal(err)
	}
	types := g.Objects("http://x/alice", rdfTypeIRI)
	if len(types) != 1 || types[0].Value != "http://xmlns.com/foaf/0.1/Person" {
		t.Fatalf("typed node element: %v", types)
	}
	if names := g.Objects("http://x/alice", "http://xmlns.com/foaf/0.1/name"); len(names) != 1 {
		t.Fatalf("names = %v", names)
	}
}

func TestParseRDFXMLErrors(t *testing.T) {
	bad := []string{
		``,
		`<notrdf/>`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
			<rdf:Description><x:p xmlns:x="http://x/">v</x:p></rdf:Description></rdf:RDF>`, // no about/nodeID
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:x="http://x/">
			<rdf:Description rdf:about="http://x/a">
			<x:p rdf:parseType="Literal">v</x:p></rdf:Description></rdf:RDF>`, // parseType
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:x="http://x/">
			<rdf:Description rdf:about="http://x/a">
			<x:p><x:nested rdf:about="http://x/b"/></x:p></rdf:Description></rdf:RDF>`, // nesting
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:x="http://x/">
			<rdf:Description rdf:about="http://x/a">
			<x:p rdf:resource="http://x/b">text too</x:p></rdf:Description></rdf:RDF>`, // both
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
			<rdf:Description rdf:about="http://x/a"><p>v</p></rdf:Description></rdf:RDF>`, // no ns
	}
	for i, doc := range bad {
		if _, err := ParseRDFXML(doc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMarshalRDFXMLRejectsUnsplittablePredicate(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/a", "predicate-without-separator", "http://x/b")
	if _, err := g.MarshalRDFXML(); err == nil {
		t.Fatal("unsplittable predicate accepted")
	}
	g2 := NewGraph()
	g2.AddIRI("http://x/a", "http://x/ns#bad local", "http://x/b")
	if _, err := g2.MarshalRDFXML(); err == nil {
		t.Fatal("XML-unsafe local name accepted")
	}
}

// xmlRepresentable reports whether every rune of s survives an XML 1.0
// round trip: the XML Char production (minus '\r', which XML parsers
// normalize to '\n' per the spec, and minus U+FFFD, which Go's escaper
// also uses as the replacement for invalid characters).
func xmlRepresentable(s string) bool {
	for _, r := range s {
		switch {
		case r == '\t' || r == '\n':
		case r >= 0x20 && r <= 0xD7FF:
		case r >= 0xE000 && r < 0xFFFD:
		case r >= 0x10000 && r <= 0x10FFFF:
		default:
			return false
		}
	}
	return true
}

// Property: FOAF-shaped graphs with XML-representable literals survive
// the RDF/XML round trip.
func TestRDFXMLRoundTripProperty(t *testing.T) {
	f := func(names []string) bool {
		g := NewGraph()
		for i, n := range names {
			if !xmlRepresentable(n) {
				continue
			}
			subj := NewIRI("http://x/s" + itoa(i))
			g.Add(Triple{subj, NewIRI("http://xmlns.com/foaf/0.1/name"), NewLiteral(n)})
			g.Add(Triple{subj, NewIRI("http://xmlns.com/foaf/0.1/knows"), NewIRI("http://x/s" + itoa(i+1))})
		}
		out, err := g.MarshalRDFXML()
		if err != nil {
			return g.Len() == 0
		}
		back, err := ParseRDFXML(out)
		if err != nil || back.Len() != g.Len() {
			return false
		}
		want := map[Triple]bool{}
		for _, tr := range g.Triples() {
			want[tr] = true
		}
		for _, tr := range back.Triples() {
			if !want[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
