// Package rdf implements the metadata substrate of the Semantic Web
// deployment (§2, §4): an RDF term and triple model with an N-Triples
// parser and serializer, plus a small in-memory graph with pattern
// matching. Agent homepages, trust statements, and product ratings are
// "documents encoded in RDF" (§2), and message exchange happens by
// publishing or updating such documents — this package is how the crawler
// and the publisher read and write them.
//
// The dialect implemented is N-Triples (one triple per line, absolute
// IRIs, plain/typed/language-tagged literals, blank nodes), which every
// RDF toolchain of the paper's era could produce and consume.
package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TermKind discriminates RDF term types.
type TermKind int

const (
	// IRI is an absolute IRI reference, e.g. <http://xmlns.com/foaf/0.1/knows>.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is a blank node, e.g. _:b1.
	Blank
)

// Term is one RDF term. Value holds the IRI, the literal lexical form, or
// the blank node label. Datatype and Lang qualify literals only.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string // IRI of the literal datatype, if any
	Lang     string // language tag, if any
}

// NewIRI builds an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral builds a plain literal term.
func NewLiteral(value string) Term { return Term{Kind: Literal, Value: value} }

// NewTypedLiteral builds a literal with a datatype IRI.
func NewTypedLiteral(value, datatype string) Term {
	return Term{Kind: Literal, Value: value, Datatype: datatype}
}

// NewLangLiteral builds a language-tagged literal.
func NewLangLiteral(value, lang string) Term {
	return Term{Kind: Literal, Value: value, Lang: lang}
}

// NewBlank builds a blank node with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// Triple is one RDF statement.
type Triple struct {
	Subject, Predicate, Object Term
}

// String renders the triple as one N-Triples line (without newline).
func (tr Triple) String() string {
	return tr.Subject.String() + " " + tr.Predicate.String() + " " + tr.Object.String() + " ."
}

// Common XSD datatype IRIs.
const (
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("rdf: syntax error")

// Graph is an in-memory triple container preserving insertion order and
// deduplicating exact statement repeats.
type Graph struct {
	triples []Triple
	seen    map[Triple]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{seen: make(map[Triple]bool)}
}

// Add inserts a triple unless an identical statement is already present.
func (g *Graph) Add(tr Triple) {
	if g.seen[tr] {
		return
	}
	g.seen[tr] = true
	g.triples = append(g.triples, tr)
}

// AddIRI is shorthand for adding an all-IRI triple.
func (g *Graph) AddIRI(s, p, o string) {
	g.Add(Triple{NewIRI(s), NewIRI(p), NewIRI(o)})
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns all triples in insertion order. The slice must not be
// modified.
func (g *Graph) Triples() []Triple { return g.triples }

// Match returns the triples matching the given pattern; nil components
// are wildcards. Order follows insertion.
func (g *Graph) Match(s, p, o *Term) []Triple {
	var out []Triple
	for _, tr := range g.triples {
		if s != nil && tr.Subject != *s {
			continue
		}
		if p != nil && tr.Predicate != *p {
			continue
		}
		if o != nil && tr.Object != *o {
			continue
		}
		out = append(out, tr)
	}
	return out
}

// Objects returns the object terms of all (subject, predicate, *) triples.
func (g *Graph) Objects(subject, predicate string) []Term {
	s, p := NewIRI(subject), NewIRI(predicate)
	var out []Term
	for _, tr := range g.Match(&s, &p, nil) {
		out = append(out, tr.Object)
	}
	return out
}

// Subjects returns the distinct subject terms appearing in the graph,
// sorted for determinism.
func (g *Graph) Subjects() []Term {
	set := map[Term]bool{}
	for _, tr := range g.triples {
		set[tr.Subject] = true
	}
	out := make([]Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// WriteTo serializes the graph as N-Triples.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	var n int64
	bw := bufio.NewWriter(w)
	for _, tr := range g.triples {
		k, err := bw.WriteString(tr.String() + "\n")
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Marshal renders the graph as an N-Triples string.
func (g *Graph) Marshal() string {
	var b strings.Builder
	for _, tr := range g.triples {
		b.WriteString(tr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads an N-Triples document into a new graph. Lines that are
// empty or start with '#' are skipped. Errors carry the line number.
func Parse(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tr, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		g.Add(tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: read: %w", err)
	}
	return g, nil
}

// ParseString parses an N-Triples document held in a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// parseLine parses one "S P O ." statement.
func parseLine(line string) (Triple, error) {
	p := &lineParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if subj.Kind == Literal {
		return Triple{}, fmt.Errorf("%w: literal subject", ErrSyntax)
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if pred.Kind != IRI {
		return Triple{}, fmt.Errorf("%w: predicate must be an IRI", ErrSyntax)
	}
	obj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("%w: missing terminating '.'", ErrSyntax)
	}
	p.skipSpace()
	if !p.done() {
		return Triple{}, fmt.Errorf("%w: trailing content %q", ErrSyntax, p.rest())
	}
	return Triple{subj, pred, obj}, nil
}

// lineParser is a single-line N-Triples tokenizer.
type lineParser struct {
	s string
	i int
}

func (p *lineParser) done() bool   { return p.i >= len(p.s) }
func (p *lineParser) rest() string { return p.s[p.i:] }

func (p *lineParser) peek() byte {
	if p.done() {
		return 0
	}
	return p.s[p.i]
}

func (p *lineParser) eat(c byte) bool {
	if p.peek() == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) skipSpace() {
	for !p.done() && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

// term parses the next IRI, blank node, or literal.
func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	switch {
	case p.eat('<'):
		start := p.i
		for !p.done() && p.s[p.i] != '>' {
			p.i++
		}
		if p.done() {
			return Term{}, fmt.Errorf("%w: unterminated IRI", ErrSyntax)
		}
		iri := p.s[start:p.i]
		p.i++ // '>'
		if iri == "" {
			return Term{}, fmt.Errorf("%w: empty IRI", ErrSyntax)
		}
		return NewIRI(iri), nil

	case strings.HasPrefix(p.rest(), "_:"):
		p.i += 2
		start := p.i
		for !p.done() && p.s[p.i] != ' ' && p.s[p.i] != '\t' {
			p.i++
		}
		label := p.s[start:p.i]
		if label == "" {
			return Term{}, fmt.Errorf("%w: empty blank node label", ErrSyntax)
		}
		return NewBlank(label), nil

	case p.eat('"'):
		var b strings.Builder
		for {
			if p.done() {
				return Term{}, fmt.Errorf("%w: unterminated literal", ErrSyntax)
			}
			c := p.s[p.i]
			p.i++
			if c == '"' {
				break
			}
			if c == '\\' {
				if p.done() {
					return Term{}, fmt.Errorf("%w: dangling escape", ErrSyntax)
				}
				e := p.s[p.i]
				p.i++
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '"', '\\':
					b.WriteByte(e)
				default:
					return Term{}, fmt.Errorf("%w: bad escape \\%c", ErrSyntax, e)
				}
				continue
			}
			b.WriteByte(c)
		}
		t := NewLiteral(b.String())
		switch {
		case p.eat('@'):
			start := p.i
			for !p.done() && p.s[p.i] != ' ' && p.s[p.i] != '\t' {
				p.i++
			}
			t.Lang = p.s[start:p.i]
			if t.Lang == "" {
				return Term{}, fmt.Errorf("%w: empty language tag", ErrSyntax)
			}
		case strings.HasPrefix(p.rest(), "^^"):
			p.i += 2
			if !p.eat('<') {
				return Term{}, fmt.Errorf("%w: datatype must be an IRI", ErrSyntax)
			}
			start := p.i
			for !p.done() && p.s[p.i] != '>' {
				p.i++
			}
			if p.done() {
				return Term{}, fmt.Errorf("%w: unterminated datatype IRI", ErrSyntax)
			}
			t.Datatype = p.s[start:p.i]
			p.i++
		}
		return t, nil

	default:
		return Term{}, fmt.Errorf("%w: unexpected %q", ErrSyntax, p.rest())
	}
}

// escapeLiteral escapes a literal's lexical form for N-Triples output.
func escapeLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
