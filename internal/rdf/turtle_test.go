package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTurtleBasics(t *testing.T) {
	doc := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix swt: <http://swrec.org/ont/trust#> .

# Alice's homepage
<http://x/alice> a foaf:Person ;
   foaf:name "Alice" ;
   foaf:knows <http://x/bob>, <http://x/carol> .
_:t0 swt:value "0.9"^^<http://www.w3.org/2001/XMLSchema#decimal> .
<http://x/bob> foaf:name "Bob"@en .
`
	g, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	// 'a' expands to rdf:type.
	types := g.Objects("http://x/alice", rdfTypeIRI)
	if len(types) != 1 || types[0].Value != "http://xmlns.com/foaf/0.1/Person" {
		t.Fatalf("a-keyword expansion = %v", types)
	}
	// Object list split into two triples.
	knows := g.Objects("http://x/alice", "http://xmlns.com/foaf/0.1/knows")
	if len(knows) != 2 {
		t.Fatalf("knows = %v", knows)
	}
	// Typed and lang literals.
	vals := g.Objects("http://x/bob", "http://xmlns.com/foaf/0.1/name")
	if len(vals) != 1 || vals[0].Lang != "en" {
		t.Fatalf("lang literal = %v", vals)
	}
	b := NewBlank("t0")
	if got := g.Match(&b, nil, nil); len(got) != 1 || got[0].Object.Datatype != XSDDecimal {
		t.Fatalf("typed literal on bnode = %v", got)
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`foo:x foo:p foo:o .`,                            // undeclared prefix
		`@prefix x: <http://x/> `,                        // missing dot
		`@prefix x: nope .`,                              // prefix without IRI
		`@prefix x: <> . x:y x:p x:o .`,                  // empty prefix IRI
		`<http://x/a> <http://x/p> "unterminated .`,      // literal
		`<http://x/a> <http://x/p> <http://x/o>`,         // missing dot
		`"lit" <http://x/p> <http://x/o> .`,              // literal subject
		`<http://x/a> "lit" <http://x/o> .`,              // literal predicate
		`<http://x/a> <http://x/p> [ <http://x/q> 1 ] .`, // anon bnode
		`<http://x/a> <http://x/p> "v"@ .`,               // empty lang
		`<http://x/a> <http://x/p> "v"^^"notiri" .`,      // literal datatype
		`<http://x/a> <http://x/p> "bad\q" .`,            // bad escape
		`<http://x/a> <http://x/p> "two
lines" .`, // newline in literal
	}
	for _, doc := range bad {
		if _, err := ParseTurtle(doc); err == nil {
			t.Errorf("accepted malformed turtle: %s", doc)
		}
	}
}

func TestParseTurtleErrorCarriesLine(t *testing.T) {
	doc := "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\n<http://x/a> foaf:name junkterm .\n"
	_, err := ParseTurtle(doc)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should carry line 3: %v", err)
	}
}

func TestMarshalTurtleShape(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/alice", rdfTypeIRI, "http://xmlns.com/foaf/0.1/Person")
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://xmlns.com/foaf/0.1/name"), NewLiteral("Alice")})
	g.AddIRI("http://x/alice", "http://xmlns.com/foaf/0.1/knows", "http://x/bob")
	g.AddIRI("http://x/alice", "http://xmlns.com/foaf/0.1/knows", "http://x/carol")

	out := g.MarshalTurtle()
	if !strings.Contains(out, "@prefix foaf: <http://xmlns.com/foaf/0.1/> .") {
		t.Fatalf("missing foaf prefix:\n%s", out)
	}
	if strings.Contains(out, "@prefix swt:") {
		t.Fatal("unused prefix emitted")
	}
	if !strings.Contains(out, " a foaf:Person") {
		t.Fatalf("rdf:type not abbreviated to 'a':\n%s", out)
	}
	if !strings.Contains(out, "<http://x/bob>, <http://x/carol>") {
		t.Fatalf("object list not comma-grouped:\n%s", out)
	}
	// One subject block, semicolon-joined.
	if strings.Count(out, "<http://x/alice>") != 1 {
		t.Fatalf("subject repeated:\n%s", out)
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddIRI("http://x/alice", rdfTypeIRI, "http://xmlns.com/foaf/0.1/Person")
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://xmlns.com/foaf/0.1/name"),
		NewLiteral(`weird "quoted" \ value` + "\twith\ttabs")})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://swrec.org/ont/trust#trusts"), NewBlank("t0")})
	g.Add(Triple{NewBlank("t0"), NewIRI("http://swrec.org/ont/trust#value"),
		NewTypedLiteral("-0.25", XSDDecimal)})
	g.Add(Triple{NewIRI("http://x/alice"), NewIRI("http://x/motto"), NewLangLiteral("salut", "fr")})

	back, err := ParseTurtle(g.MarshalTurtle())
	if err != nil {
		t.Fatalf("%v\n%s", err, g.MarshalTurtle())
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip Len = %d, want %d\n%s", back.Len(), g.Len(), g.MarshalTurtle())
	}
	want := map[Triple]bool{}
	for _, tr := range g.Triples() {
		want[tr] = true
	}
	for _, tr := range back.Triples() {
		if !want[tr] {
			t.Fatalf("unexpected triple after round trip: %v", tr)
		}
	}
}

// Property: Turtle round-trips arbitrary FOAF-shaped graphs (the triple
// set is preserved; order within subject groups may change).
func TestTurtleRoundTripProperty(t *testing.T) {
	f := func(names []string, values []int8) bool {
		g := NewGraph()
		for i, n := range names {
			if i >= len(values) {
				break
			}
			// Subject IRIs are synthetic; only literals carry fuzz.
			subj := NewIRI("http://x/s" + itoa(i))
			g.Add(Triple{subj, NewIRI("http://xmlns.com/foaf/0.1/name"), NewLiteral(n)})
			g.Add(Triple{subj, NewIRI("http://swrec.org/ont/trust#value"),
				NewTypedLiteral(itoa(int(values[i])), XSDDecimal)})
		}
		back, err := ParseTurtle(g.MarshalTurtle())
		if err != nil {
			return false
		}
		if back.Len() != g.Len() {
			return false
		}
		want := map[Triple]bool{}
		for _, tr := range g.Triples() {
			want[tr] = true
		}
		for _, tr := range back.Triples() {
			if !want[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
