package checkpoint

import (
	"fmt"
	"testing"

	"swrec/internal/datagen"
	"swrec/internal/engine"
)

// The acceptance benchmark for checkpointed restarts: loading the
// compiled snapshot must beat recomputing it (engine build + full
// warmup) by at least an order of magnitude at the bench community
// sizes, because Load is O(file size) while the recompute runs
// Appleseed and Eq. 3 for every agent.
//
//	go test -bench=. -benchmem ./internal/checkpoint/

func benchEngine(b *testing.B, agents int) *engine.Engine {
	b.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = agents * 2
	comm, _ := datagen.Generate(cfg)
	eng, err := engine.New(comm, testOptions(), testConfig())
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkCheckpointLoad measures a warm restart: read, checksum-
// validate, decode, and restore one compiled checkpoint into a serving
// engine.
func BenchmarkCheckpointLoad(b *testing.B) {
	for _, agents := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			eng := benchEngine(b, agents)
			eng.Warmup(0)
			path, err := WriteImage(b.TempDir(), Capture(eng.Snapshot(), 1), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img, err := Load(path, testOptions())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := img.Restore(testConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdRecompute measures the restart path a checkpoint avoids:
// building the engine from the corpus and warming every agent's
// neighborhood and profile from scratch.
func BenchmarkColdRecompute(b *testing.B) {
	for _, agents := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			cfg := datagen.SmallScale()
			cfg.Agents = agents
			cfg.Products = agents * 2
			comm, _ := datagen.Generate(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(comm, testOptions(), testConfig())
				if err != nil {
					b.Fatal(err)
				}
				eng.Warmup(0)
			}
		})
	}
}
