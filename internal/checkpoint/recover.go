package checkpoint

import (
	"expvar"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/corpus"
	"swrec/internal/engine"
	"swrec/internal/model"
	"swrec/internal/wal"
)

// WALSnapshotDir is the corpus snapshot directory inside a WAL
// directory — the rung-3 recovery source, maintained by internal/ingest
// (which references this constant rather than the reverse, keeping the
// import direction checkpoint ← ingest).
const WALSnapshotDir = "snapshot"

// DirName is the compiled-checkpoint directory inside a WAL directory.
const DirName = "checkpoints"

// Dir returns the compiled-checkpoint directory for a WAL directory.
func Dir(walDir string) string { return filepath.Join(walDir, DirName) }

// recoveryStats publishes the ladder's outcome under "swrec_recovery":
// monotonic counters (recoveries, per-source counts, rejected
// checkpoints) plus last_* gauges describing the most recent recovery.
var (
	recoveryStats = expvar.NewMap("swrec_recovery")
	lastRung      expvar.Int
	lastEpoch     expvar.Int
	lastSeq       expvar.Int
	lastLoadMS    expvar.Int
)

func init() {
	recoveryStats.Set("last_rung", &lastRung)
	recoveryStats.Set("last_epoch", &lastEpoch)
	recoveryStats.Set("last_seq", &lastSeq)
	recoveryStats.Set("last_load_ms", &lastLoadMS)
}

// RecoverConfig parameterizes one walk down the recovery ladder.
type RecoverConfig struct {
	// WALDir is the durable state root: WAL segments at the top level,
	// the corpus snapshot in WALSnapshotDir, compiled checkpoints in
	// DirName.
	WALDir string
	// Options is the pipeline configuration the engine will serve with.
	// Checkpoints written under a different signature are unusable and
	// skipped (rungs 3-4 adapt the representation themselves for
	// taxonomy-less communities, mirroring cmd/swrecd).
	Options core.Options
	// Engine sizes the recovered engine's caches.
	Engine engine.Config
	// Corpus loads the original corpus — the rung-4 source of last
	// resort. Required.
	Corpus func() (*model.Community, error)
	// Logf, when non-nil, receives one line per ladder decision.
	Logf func(format string, args ...any)
}

// Result describes where the ladder landed.
type Result struct {
	// Engine is the recovered serving engine. The caller finishes
	// recovery by opening ingest at Seq, which replays the unapplied WAL
	// tail (ingest.OpenFrom).
	Engine *engine.Engine
	// Source names the rung that served: "checkpoint" (1),
	// "checkpoint-prev" (2), "wal-snapshot" (3), or "corpus" (4).
	Source string
	// Rung is the ladder position, 1 (best) through 4 (cold rebuild).
	Rung int
	// Epoch and Seq are the recovered state's epoch and the last WAL
	// sequence it already covers.
	Epoch uint64
	Seq   uint64
	// Path is the file the state was loaded from (empty for rung 4).
	Path string
	// Load is the wall-clock time of the whole ladder walk.
	Load time.Duration
	// Fallbacks records why each higher rung was passed over.
	Fallbacks []string
}

// Recover walks the ladder: (1) the newest compiled checkpoint, (2) any
// older retained checkpoint, (3) the corpus snapshot the WAL marker
// points at, (4) a from-scratch corpus rebuild. Every rejection is
// logged and recorded; only a rung-4 failure is an error. Corruption in
// any file on the way down is detected (checksums), never served.
func Recover(cfg RecoverConfig) (*Result, error) {
	start := time.Now()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{}
	skip := func(what string, err error) {
		res.Fallbacks = append(res.Fallbacks, fmt.Sprintf("%s: %v", what, err))
		logf("recovery: skipping %s: %v", what, err)
	}

	infos, err := List(Dir(cfg.WALDir))
	if err != nil {
		skip("checkpoint listing", err)
	}
	oldest, hasWAL, err := wal.OldestSeq(cfg.WALDir)
	if err != nil {
		// An unreadable WAL directory will fail ingest.Open anyway; for
		// rung selection treat it as absent.
		skip("wal coverage probe", err)
		hasWAL = false
	}
	for i, info := range infos {
		// Coverage: the WAL tail (Seq+1 ...) must still be retained, or
		// replay would silently skip acked writes. An absent WAL has no
		// records to lose.
		if hasWAL && oldest > info.Seq+1 {
			recoveryStats.Add("rejected_checkpoints", 1)
			skip(info.Path, fmt.Errorf("wal starts at seq %d, after checkpoint seq %d", oldest, info.Seq))
			continue
		}
		img, err := Load(info.Path, cfg.Options)
		if err != nil {
			recoveryStats.Add("rejected_checkpoints", 1)
			skip(info.Path, err)
			continue
		}
		eng, err := img.Restore(cfg.Engine)
		if err != nil {
			recoveryStats.Add("rejected_checkpoints", 1)
			skip(info.Path, err)
			continue
		}
		rung, source := 1, "checkpoint"
		if i > 0 {
			rung, source = 2, "checkpoint-prev"
		}
		return finish(res, eng, rung, source, img.Epoch, img.Seq, info.Path, start)
	}

	// Rung 3: the corpus snapshot the WAL marker points at; the caller's
	// ingest.OpenFrom replays everything after it. Compiled state is
	// rebuilt from scratch — correct, just cold.
	comm, cp, ok, err := loadWALSnapshot(cfg.WALDir)
	switch {
	case err != nil:
		skip("wal snapshot", err)
	case ok:
		eng, err := engine.NewRestored(engine.Restore{Epoch: cp.Epoch, Community: comm}, adaptOptions(cfg.Options, comm), cfg.Engine)
		if err != nil {
			skip("wal snapshot", err)
			break
		}
		return finish(res, eng, 3, "wal-snapshot", cp.Epoch, cp.Seq, filepath.Join(cfg.WALDir, WALSnapshotDir), start)
	}

	// Rung 4: rebuild from the original corpus and replay the whole WAL.
	comm, err = cfg.Corpus()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: recovery exhausted, corpus rebuild failed: %w", err)
	}
	eng, err := engine.New(comm, adaptOptions(cfg.Options, comm), cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: recovery exhausted, corpus rebuild failed: %w", err)
	}
	return finish(res, eng, 4, "corpus", eng.Epoch(), 0, "", start)
}

// loadWALSnapshot is rung 3's loader: the marker plus the corpus export
// it certifies (the same pair internal/ingest maintains).
func loadWALSnapshot(walDir string) (*model.Community, wal.Checkpoint, bool, error) {
	cp, ok, err := wal.LoadCheckpoint(walDir)
	if err != nil || !ok {
		return nil, cp, false, err
	}
	comm, err := corpus.Import(filepath.Join(walDir, WALSnapshotDir))
	if err != nil {
		return nil, cp, false, fmt.Errorf("load snapshot at seq %d: %w", cp.Seq, err)
	}
	return comm, cp, true, nil
}

// adaptOptions mirrors cmd/swrecd's boot-time adjustment: a community
// without a taxonomy cannot serve taxonomy-space profiles, so the
// similarity representation falls back to rated-product space.
func adaptOptions(opt core.Options, comm *model.Community) core.Options {
	if comm.Taxonomy() == nil {
		opt.CF.Representation = cf.Product
	}
	return opt
}

func finish(res *Result, eng *engine.Engine, rung int, source string, epoch, seq uint64, path string, start time.Time) (*Result, error) {
	res.Engine = eng
	res.Rung = rung
	res.Source = source
	res.Epoch = epoch
	res.Seq = seq
	res.Path = path
	res.Load = time.Since(start)
	recoveryStats.Add("recoveries", 1)
	recoveryStats.Add("source_"+strings.ReplaceAll(source, "-", "_"), 1)
	lastRung.Set(int64(rung))
	lastEpoch.Set(int64(epoch))
	lastSeq.Set(int64(seq))
	lastLoadMS.Set(res.Load.Milliseconds())
	return res, nil
}
