package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/faultinject"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

func testOptions() core.Options {
	return core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
}

func testConfig() engine.Config {
	return engine.Config{ComputeBudget: time.Second}
}

// testCommunity builds a Fig1-taxonomy community with a trust chain,
// cross edges, and ratings over a two-book catalog — the same shape the
// chaos suite crawls, minus the network.
func testCommunity(t testing.TB, n int) *model.Community {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash", ISBN: "9780553380958", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis", ISBN: "9780521386326", Topics: []taxonomy.Topic{alg}})
	pids := []model.ProductID{"urn:isbn:9780553380958", "urn:isbn:9780521386326"}
	name := func(i int) model.AgentID { return model.AgentID(fmt.Sprintf("http://ckpt.example/people/a%d", i)) }
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		c.AddAgent(name(i)).Name = fmt.Sprintf("Agent %d", i)
	}
	for i := 0; i < n; i++ {
		if i+1 < n {
			must(c.SetTrust(name(i), name(i+1), 0.5+float64(i%5)/10))
		}
		if j := (i * 7) % n; j != i && j != i+1 {
			must(c.SetTrust(name(i), name(j), 0.4))
		}
		must(c.SetRating(name(i), pids[i%len(pids)], float64(i%19)/9-1))
	}
	return c
}

// warmEngine builds a serving engine and touches every agent so the
// peers/profiles caches are populated — a checkpoint captured from it
// exercises every section of the format.
func warmEngine(t testing.TB, comm *model.Community) *engine.Engine {
	t.Helper()
	eng, err := engine.New(comm, testOptions(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	for _, id := range comm.Agents() {
		if _, err := snap.Recommend(id, 5, engine.Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func testImage(t testing.TB, seq uint64) *Image {
	t.Helper()
	return Capture(warmEngine(t, testCommunity(t, 12)).Snapshot(), seq)
}

// recsDigest fingerprints the full serving surface: every agent's
// recommendations with exact scores. Two engines with equal digests are
// behaviorally indistinguishable to the read API.
func recsDigest(t testing.TB, snap *engine.Snapshot) string {
	t.Helper()
	var b strings.Builder
	for _, id := range snap.Community().Agents() {
		recs, err := snap.Recommend(id, 5, engine.Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s:", id)
		for _, r := range recs {
			fmt.Fprintf(&b, " %s=%.17g/%d", r.Product, r.Score, r.Supporters)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestEncodeDecodeRoundTrip pins the format's core property:
// Encode(Decode(Encode(img))) is byte-identical, and the decoded image
// restores an engine that serves exactly what the captured one did.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := testImage(t, 42)
	data := Encode(img)

	img2, err := Decode(data, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if img2.Epoch != img.Epoch || img2.Seq != img.Seq {
		t.Fatalf("epoch/seq drifted: got %d/%d, want %d/%d", img2.Epoch, img2.Seq, img.Epoch, img.Seq)
	}
	if len(img2.Rows) != len(img.Rows) {
		t.Fatalf("got %d rows, want %d", len(img2.Rows), len(img.Rows))
	}
	data2 := Encode(img2)
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(data), len(data2))
	}

	// The restored engine must be fingerprint-equal to the source —
	// warm from the first request, no recompute drift.
	eng2, err := img2.Restore(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := warmEngine(t, testCommunity(t, 12))
	if got, want := recsDigest(t, eng2.Snapshot()), recsDigest(t, src.Snapshot()); got != want {
		t.Fatalf("restored engine diverged from source:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// Restored compiled rows must be adopted, not rebuilt.
	mat := eng2.Snapshot().Recommender().Filter().Matrix()
	if mat == nil {
		t.Fatal("restored engine has no compiled matrix")
	}
	for i, id := range img2.Community.Agents() {
		r := mat.Row(img2.Community.Agent(id).Ord())
		if r == nil {
			t.Fatalf("restored matrix missing row for %s", id)
		}
		if r.Norm != img.Rows[i].Norm || r.Sum != img.Rows[i].Sum || r.NNZ() != img.Rows[i].NNZ() {
			t.Fatalf("row %d differs from captured row", i)
		}
	}
}

// TestRoundTripAfterChurn re-checks the round trip on a mutated, multi-
// epoch community: retracted statements, new agents, re-rated products.
func TestRoundTripAfterChurn(t *testing.T) {
	comm := testCommunity(t, 12)
	eng := warmEngine(t, comm)
	ids := comm.Agents()
	next := comm.Clone()
	if err := next.SetTrust(ids[0], ids[5], 0.9); err != nil {
		t.Fatal(err)
	}
	next.DeleteTrust(ids[0], ids[1])
	next.AddAgent("http://ckpt.example/people/late").Name = "Latecomer"
	if err := next.SetRating(ids[3], "urn:isbn:9780553380958", -0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Swap(next); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	for _, id := range next.Agents() {
		if _, err := snap.Recommend(id, 5, engine.Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	img := Capture(snap, 7)
	data := Encode(img)
	img2, err := Decode(data, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, Encode(img2)) {
		t.Fatal("re-encode after churn is not byte-identical")
	}
}

// TestDecodeOptionsMismatch: a checkpoint compiled under different
// pipeline options is unusable and must be refused, not served.
func TestDecodeOptionsMismatch(t *testing.T) {
	data := Encode(testImage(t, 1))
	opt := testOptions()
	opt.TrustThreshold = 0.25
	if _, err := Decode(data, opt); !errors.Is(err, ErrOptions) {
		t.Fatalf("got %v, want ErrOptions", err)
	}
	opt = testOptions()
	opt.MaxNeighbors = 8
	if _, err := Decode(data, opt); !errors.Is(err, ErrOptions) {
		t.Fatalf("got %v, want ErrOptions", err)
	}
}

// TestDecodeCorruptionSweep flips one byte at a spread of offsets and
// truncates at a spread of lengths; every variant must fail cleanly —
// corruption is always an error, never a silently wrong snapshot.
func TestDecodeCorruptionSweep(t *testing.T) {
	data := Encode(testImage(t, 3))
	step := len(data)/211 + 1
	for off := 0; off < len(data); off += step {
		mut := bytes.Clone(data)
		mut[off] ^= 0x41
		if _, err := Decode(mut, testOptions()); err == nil {
			t.Fatalf("flip at offset %d/%d decoded cleanly", off, len(data))
		}
	}
	for _, cut := range []int{0, 1, headerLen - 1, headerLen, headerLen + sectionHdr, len(data) / 2, len(data) - footerLen, len(data) - 1} {
		if _, err := Decode(data[:cut], testOptions()); err == nil {
			t.Fatalf("truncation to %d/%d decoded cleanly", cut, len(data))
		}
	}
}

// refoot recomputes the whole-file footer checksum after a deliberate
// payload mutation, so the per-section CRC frame is what must catch it.
func refoot(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-footerLen]))
}

// TestSectionChecksum corrupts a section payload but repairs the footer:
// the per-section CRC32 frame alone must reject the file.
func TestSectionChecksum(t *testing.T) {
	data := Encode(testImage(t, 3))
	mut := bytes.Clone(data)
	mut[headerLen+sectionHdr+1] ^= 0x01 // second byte of the meta payload
	refoot(mut)
	if _, err := Decode(mut, testOptions()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt from the section frame", err)
	}
}

// TestVersionMismatch: an unknown format version is ErrVersion, so a
// downgrade never misparses a newer file as garbage-but-valid.
func TestVersionMismatch(t *testing.T) {
	data := Encode(testImage(t, 3))
	mut := bytes.Clone(data)
	binary.LittleEndian.PutUint32(mut[len(fileMagic):], fileVersion+1)
	refoot(mut)
	if _, err := Decode(mut, testOptions()); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestWriteListPrune covers the on-disk lifecycle: atomic writes land
// under sequence-derived names, List orders newest-first, Prune enforces
// retention and sweeps stale temporaries.
func TestWriteListPrune(t *testing.T) {
	dir := t.TempDir()
	img := testImage(t, 0)
	for _, seq := range []uint64{5, 9, 13} {
		img.Seq = seq
		if _, err := WriteImage(dir, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Seq != 13 || infos[1].Seq != 9 || infos[2].Seq != 5 {
		t.Fatalf("List = %+v, want seqs 13,9,5", infos)
	}
	stale := filepath.Join(dir, fileName(21)+".tmp-roll")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	infos, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Seq != 13 || infos[1].Seq != 9 {
		t.Fatalf("after prune List = %+v, want seqs 13,9", infos)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temporary survived prune: %v", err)
	}
	if _, err := Load(infos[0].Path, testOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestWriteImageFaults drives every injected failure class through the
// write path: the write must fail loudly, leave no temporary behind, and
// leave the previously retained checkpoint untouched and loadable.
func TestWriteImageFaults(t *testing.T) {
	img := testImage(t, 5)
	for _, tc := range []struct {
		name string
		cfg  faultinject.Config
	}{
		{"torn write", faultinject.Config{Seed: 7, TornWriteRate: 1}},
		{"write error", faultinject.Config{Seed: 7, WriteErrorRate: 1}},
		{"failed fsync", faultinject.Config{Seed: 7, SyncErrorRate: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			img.Seq = 5
			good, err := WriteImage(dir, img, nil)
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(tc.cfg)
			img.Seq = 9
			_, err = WriteImage(dir, img, func(f *os.File) File { return inj.File(f) })
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("got %v, want the injected fault", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Fatalf("failed write left temporary %s", e.Name())
				}
			}
			infos, err := List(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 || infos[0].Path != good {
				t.Fatalf("retained set disturbed: %+v", infos)
			}
			if _, err := Load(good, testOptions()); err != nil {
				t.Fatalf("prior checkpoint unloadable after failed write: %v", err)
			}
		})
	}
}
