package checkpoint_test

import (
	"expvar"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/checkpoint"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
	"swrec/internal/wal"
)

func rOptions() core.Options {
	return core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
}

func rConfig() engine.Config {
	return engine.Config{ComputeBudget: time.Second}
}

func rIngest() ingest.Config {
	return ingest.Config{SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour}
}

// rCommunity mirrors the chaos suite's trust web: a chain with cross
// edges and ratings over a two-book Fig1 catalog.
func rCommunity(t testing.TB, n int) *model.Community {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis", Topics: []taxonomy.Topic{alg}})
	pids := []model.ProductID{"urn:isbn:9780553380958", "urn:isbn:9780521386326"}
	name := func(i int) model.AgentID { return model.AgentID(fmt.Sprintf("http://rec.example/people/a%d", i)) }
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		c.AddAgent(name(i)).Name = fmt.Sprintf("Agent %d", i)
	}
	for i := 0; i < n; i++ {
		if i+1 < n {
			must(c.SetTrust(name(i), name(i+1), 0.5+float64(i%5)/10))
		}
		if j := (i * 7) % n; j != i && j != i+1 {
			must(c.SetTrust(name(i), name(j), 0.4))
		}
		must(c.SetRating(name(i), pids[i%len(pids)], float64(i%19)/9-1))
	}
	return c
}

// rMutations fabricates n valid mutations, mixing trust upserts and
// retractions, ratings, and new agents deterministically.
func rMutations(comm *model.Community, n int) []wal.Mutation {
	ids := comm.Agents()
	pids := comm.Products()
	out := make([]wal.Mutation, 0, n)
	for i := 0; len(out) < n; i++ {
		src := ids[i%len(ids)]
		dst := ids[(i+7)%len(ids)]
		if src == dst {
			dst = ids[(i+8)%len(ids)]
		}
		switch i % 5 {
		case 0:
			out = append(out, wal.Mutation{Op: wal.OpUpsertTrust, Agent: src, Peer: dst, Value: float64(i%20)/10 - 1})
		case 1:
			out = append(out, wal.Mutation{Op: wal.OpUpsertRating, Agent: src, Product: pids[i%len(pids)], Value: float64(i%19)/9 - 1})
		case 2:
			out = append(out, wal.Mutation{Op: wal.OpDeleteTrust, Agent: src, Peer: dst})
		case 3:
			out = append(out, wal.Mutation{Op: wal.OpUpsertAgent, Agent: model.AgentID(fmt.Sprintf("http://rec.example/new/a%d", i)), Name: fmt.Sprintf("New %d", i)})
		case 4:
			out = append(out, wal.Mutation{Op: wal.OpDeleteRating, Agent: src, Product: pids[i%len(pids)]})
		}
	}
	return out
}

// rDigest canonically serializes the statement state of a community.
func rDigest(c *model.Community) string {
	var b strings.Builder
	ids := append([]model.AgentID(nil), c.Agents()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := c.Agent(id)
		fmt.Fprintf(&b, "agent %s name=%q\n", id, a.Name)
		for _, st := range a.TrustedPeers() {
			fmt.Fprintf(&b, "  trust %s %.17g\n", st.Dst, st.Value)
		}
		for _, rt := range a.RatedProducts() {
			fmt.Fprintf(&b, "  rating %s %.17g\n", rt.Product, rt.Value)
		}
	}
	return b.String()
}

// rRecs fingerprints the serving surface: every agent's exact
// recommendations.
func rRecs(t testing.TB, snap *engine.Snapshot) string {
	t.Helper()
	var b strings.Builder
	ids := append([]model.AgentID(nil), snap.Community().Agents()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		recs, err := snap.Recommend(id, 5, engine.Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s:", id)
		for _, r := range recs {
			fmt.Fprintf(&b, " %s=%.17g/%d", r.Product, r.Score, r.Supporters)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// buildDurableState drives a real pipeline over dir: three epochs of
// churn with a compiled checkpoint per published snapshot, optionally a
// corpus snapshot (rung 3's source) midway, and warm caches before the
// final checkpoint at Close. Returns the base corpus and every acked
// mutation.
func buildDurableState(t *testing.T, dir string, corpusSnapshot bool) (*model.Community, []wal.Mutation) {
	t.Helper()
	const rounds, perRound = 3, 10
	base := rCommunity(t, 12)
	eng, err := engine.New(base.Clone(), rOptions(), rConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rIngest()
	cfg.CheckpointEvery = 1
	cfg.CheckpointRetain = 4
	pipe, err := ingest.Open(eng, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := rMutations(base, rounds*perRound)
	for r := 0; r < rounds; r++ {
		for _, m := range all[r*perRound : (r+1)*perRound] {
			if _, err := pipe.Submit(m); err != nil {
				t.Fatal(err)
			}
		}
		if err := pipe.Flush(); err != nil {
			t.Fatal(err)
		}
		if corpusSnapshot && r == 1 {
			if err := pipe.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := eng.Snapshot()
	for _, id := range snap.Community().Agents() {
		if _, err := snap.Recommend(id, 5, engine.Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	return base, all
}

// cleanEngine applies every acked mutation over a pristine base with no
// faults and no restarts — the one correct final state.
func cleanEngine(t *testing.T, base *model.Community, muts []wal.Mutation) *engine.Engine {
	t.Helper()
	eng, err := engine.New(base.Clone(), rOptions(), rConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := ingest.Open(eng, t.TempDir(), rIngest())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if _, err := pipe.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func recoverCfg(t *testing.T, dir string, base *model.Community) checkpoint.RecoverConfig {
	t.Helper()
	return checkpoint.RecoverConfig{
		WALDir:  dir,
		Options: rOptions(),
		Engine:  rConfig(),
		Corpus:  func() (*model.Community, error) { return base.Clone(), nil },
		Logf:    t.Logf,
	}
}

// finishRecovery opens ingest at the recovered sequence (replaying the
// unapplied WAL tail) and asserts the final state is fingerprint-equal
// to the clean rebuild.
func finishRecovery(t *testing.T, dir string, res *checkpoint.Result, base *model.Community, all []wal.Mutation) {
	t.Helper()
	pipe, err := ingest.OpenFrom(res.Engine, dir, rIngest(), res.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	if got, want := pipe.Replayed(), len(all)-int(res.Seq); got != want {
		t.Fatalf("replayed %d WAL records after seq %d, want %d", got, res.Seq, want)
	}
	clean := cleanEngine(t, base, all)
	if got, want := rDigest(res.Engine.Snapshot().Community()), rDigest(clean.Snapshot().Community()); got != want {
		t.Fatalf("recovered state diverged from clean rebuild:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if got, want := rRecs(t, res.Engine.Snapshot()), rRecs(t, clean.Snapshot()); got != want {
		t.Fatalf("recovered recommendations diverged from clean rebuild:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestRestoredMatchesFromScratch is the tentpole acceptance test: after
// three epochs of churn, a restart lands on rung 1, replays nothing,
// serves its first request from restored caches, and is fingerprint-
// equal to a from-scratch build.
func TestRestoredMatchesFromScratch(t *testing.T) {
	dir := t.TempDir()
	base, all := buildDurableState(t, dir, false)

	res, err := checkpoint.Recover(recoverCfg(t, dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != 1 || res.Source != "checkpoint" {
		t.Fatalf("landed on rung %d (%s), want rung 1 (checkpoint); fallbacks: %v", res.Rung, res.Source, res.Fallbacks)
	}
	if res.Seq != uint64(len(all)) {
		t.Fatalf("recovered seq %d, want %d (the final checkpoint covers every ack)", res.Seq, len(all))
	}

	// Warm from the first request: the restored neighborhood cache must
	// answer without recomputing Appleseed or Eq. 3.
	snap := res.Engine.Snapshot()
	ids := snap.Community().Agents()
	if _, ok := snap.CachedPeers(ids[0], engine.Overrides{}); !ok {
		t.Fatal("first request after restore is cold — neighborhood cache not restored")
	}
	finishRecovery(t, dir, res, base, all)

	// The ladder's outcome is observable.
	m, ok := expvar.Get("swrec_recovery").(*expvar.Map)
	if !ok {
		t.Fatal("swrec_recovery expvar map not published")
	}
	if g, ok := m.Get("last_rung").(*expvar.Int); !ok || g.Value() != 1 {
		t.Fatalf("swrec_recovery last_rung = %v, want 1", m.Get("last_rung"))
	}
	if m.Get("recoveries") == nil {
		t.Fatal("swrec_recovery recoveries counter missing")
	}
}

// TestRecoverySmoke is the make-check gate: corrupt one section of the
// newest checkpoint and recovery must land on the previous retained
// checkpoint (rung 2) — never fall through to a corpus rebuild — then
// replay the WAL tail to the exact clean state.
func TestRecoverySmoke(t *testing.T) {
	dir := t.TempDir()
	base, all := buildDurableState(t, dir, false)

	infos, err := checkpoint.List(checkpoint.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 2 {
		t.Fatalf("fixture wrote %d checkpoints, want at least 2 retained", len(infos))
	}
	data, err := os.ReadFile(infos[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x41
	if err := os.WriteFile(infos[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := checkpoint.Recover(recoverCfg(t, dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung >= 3 {
		t.Fatalf("recovery fell through to rung %d (%s) with a valid retained checkpoint on disk; fallbacks: %v",
			res.Rung, res.Source, res.Fallbacks)
	}
	if res.Rung != 2 || res.Source != "checkpoint-prev" {
		t.Fatalf("landed on rung %d (%s), want rung 2 (checkpoint-prev)", res.Rung, res.Source)
	}
	if res.Seq != infos[1].Seq {
		t.Fatalf("recovered seq %d, want the previous checkpoint's %d", res.Seq, infos[1].Seq)
	}
	finishRecovery(t, dir, res, base, all)
}

// TestRecoveryLadderFaults drives the remaining fault classes through
// the full ladder: every corruption shape must degrade to a lower rung
// and still end fingerprint-equal after WAL tail replay.
func TestRecoveryLadderFaults(t *testing.T) {
	t.Run("all checkpoints corrupted falls to wal-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		base, all := buildDurableState(t, dir, true)
		infos, err := checkpoint.List(checkpoint.Dir(dir))
		if err != nil || len(infos) == 0 {
			t.Fatalf("fixture checkpoints: %v, %d files", err, len(infos))
		}
		for _, info := range infos {
			data, err := os.ReadFile(info.Path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x41
			if err := os.WriteFile(info.Path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		res, err := checkpoint.Recover(recoverCfg(t, dir, base))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rung != 3 || res.Source != "wal-snapshot" {
			t.Fatalf("landed on rung %d (%s), want rung 3 (wal-snapshot); fallbacks: %v", res.Rung, res.Source, res.Fallbacks)
		}
		finishRecovery(t, dir, res, base, all)
	})

	t.Run("missing checkpoint dir falls to wal-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		base, all := buildDurableState(t, dir, true)
		if err := os.RemoveAll(checkpoint.Dir(dir)); err != nil {
			t.Fatal(err)
		}
		res, err := checkpoint.Recover(recoverCfg(t, dir, base))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rung != 3 || res.Source != "wal-snapshot" {
			t.Fatalf("landed on rung %d (%s), want rung 3 (wal-snapshot); fallbacks: %v", res.Rung, res.Source, res.Fallbacks)
		}
		finishRecovery(t, dir, res, base, all)
	})

	t.Run("nothing durable but the WAL falls to corpus", func(t *testing.T) {
		dir := t.TempDir()
		base, all := buildDurableState(t, dir, false)
		if err := os.RemoveAll(checkpoint.Dir(dir)); err != nil {
			t.Fatal(err)
		}
		if err := os.RemoveAll(filepath.Join(dir, checkpoint.WALSnapshotDir)); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, "CHECKPOINT")); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		res, err := checkpoint.Recover(recoverCfg(t, dir, base))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rung != 4 || res.Source != "corpus" {
			t.Fatalf("landed on rung %d (%s), want rung 4 (corpus); fallbacks: %v", res.Rung, res.Source, res.Fallbacks)
		}
		if res.Seq != 0 {
			t.Fatalf("rung 4 recovered seq %d, want 0 (full WAL replay)", res.Seq)
		}
		finishRecovery(t, dir, res, base, all)
	})
}
