// Package checkpoint persists one compiled serving snapshot — the
// community's statement state, the CSR profile-matrix arenas
// (internal/profmat), the topic index, the warm neighborhood/profile
// caches, and the epoch↔WAL-sequence mapping — in a flat binary file, so
// a swrecd restart loads the serving state in O(file size) instead of
// recomputing Appleseed and Eq. 3 for the whole community.
//
// File format (all integers little-endian; varints where noted):
//
//	header:   "SWRECKP1" | u32 version | u32 section count
//	section:  u32 id | u64 payload length | payload | u32 crc32(payload)
//	footer:   u32 footer magic | u32 crc32(every preceding file byte)
//
// Every section is independently CRC32-framed and the footer checksums
// the whole file, so a torn write, a bit flip, or a truncation is
// detected before a single decoded value is trusted — corruption is
// always an error, never a silently wrong snapshot. Files are written
// atomically (unique temp + fsync + rename) and named ckpt-<seq>.swc by
// the WAL sequence number they cover; Load rejects unknown versions and
// option-signature mismatches, and the recovery ladder (Recover) falls
// back through retained checkpoints, the corpus snapshot, and a full
// recompute.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// fileMagic opens every checkpoint file.
	fileMagic = "SWRECKP1"
	// fileVersion is the format version this build reads and writes.
	// Decoders reject any other version — a version bump is a declared
	// incompatibility, not a best-effort parse.
	fileVersion = 1
	// footerMagic marks the start of the whole-file checksum footer.
	footerMagic = 0x43465753 // "SWFC"
)

// Section identifiers. The writer emits sections in ascending id order;
// the reader indexes them by id, so unknown ids from a newer same-version
// writer would be detected as such rather than misparsed.
const (
	secMeta = iota + 1
	secTaxonomy
	secAgents
	secProducts
	secTrust
	secRatings
	secProfmat
	secTopicIndex
	secPeers
	secProfiles
)

const (
	headerLen  = len(fileMagic) + 8 // magic + version + section count
	footerLen  = 8                  // footer magic + file CRC
	sectionHdr = 12                 // id + payload length
	// peerRankSize is one fixed-width neighborhood rank in the PEERS
	// section: u32 agent ordinal, f64 trust, f64 sim, u8 simOK, f64
	// weight.
	peerRankSize = 4 + 8 + 8 + 1 + 8
)

var (
	// ErrCorrupt is returned when a checkpoint file fails structural or
	// checksum validation — the signal that sends the recovery ladder to
	// its next rung.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrVersion is returned for a well-formed file of a format version
	// this build does not speak.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrOptions is returned when a checkpoint was written under a
	// different engine option signature: its compiled rows and caches
	// would be silently wrong for the requested pipeline, so it is
	// unusable, not recoverable.
	ErrOptions = errors.New("checkpoint: option signature mismatch")
)

// File is the handle checkpoint writes go through. *os.File satisfies
// it; the indirection is the fault-injection seam (internal/faultinject
// wraps it with torn-write, write-error, and fsync-failure behavior).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// enc accumulates one section payload.
type enc struct {
	b []byte
}

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uv(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.uv(uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec walks one section payload, latching the first bounds error so call
// sites read linearly and check err once at the end. It advances an
// offset cursor instead of re-slicing b: the primitive readers run
// hundreds of thousands of times per load, and a pointer write per read
// (plus its GC write barrier) is measurable at that rate.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
}

// rem is the number of unread payload bytes.
func (d *dec) rem() int { return len(d.b) - d.off }

func (d *dec) u8() uint8 {
	if d.err != nil || d.rem() < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.rem() < 4 {
		d.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.rem() < 8 {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) f64() float64 {
	return math.Float64frombits(d.u64())
}

// bytes returns the next n payload bytes without copying — the bulk
// path for fixed-width arenas, where per-element error checks would
// dominate decode time.
func (d *dec) bytes(n int, what string) []byte {
	if d.err != nil || d.rem() < n {
		d.fail(what)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// skip advances past n bytes; skipStr past one length-prefixed string —
// the sizing pre-pass, which must not allocate.
func (d *dec) skip(n int, what string) {
	if d.err != nil || d.rem() < n {
		d.fail(what)
		return
	}
	d.off += n
}

func (d *dec) skipStr(what string) {
	n := d.uv()
	if d.err != nil || uint64(d.rem()) < n {
		d.fail(what)
		return
	}
	d.off += int(n)
}

func (d *dec) str() string {
	n := d.uv()
	if d.err != nil || uint64(d.rem()) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count validates a decoded element count against the bytes that remain:
// every element costs at least min bytes, so a count the payload cannot
// possibly hold is corruption, caught before any giant allocation.
func (d *dec) count(n uint64, min int, what string) int {
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(d.rem()/min)+1 {
		d.err = fmt.Errorf("%w: absurd %s count %d", ErrCorrupt, what, n)
		return 0
	}
	return int(n)
}

// frame appends one CRC32-framed section to out.
func frame(out []byte, id uint32, payload []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, id)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// deframe validates the container structure of data — header, per-section
// CRCs, footer checksum — and returns the section payloads by id. The
// payloads alias data.
func deframe(data []byte) (map[uint32][]byte, error) {
	if len(data) < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+footer", ErrCorrupt, len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	// Footer first: one whole-file checksum rejects most corruption
	// before any per-section parsing happens.
	foot := data[len(data)-footerLen:]
	if binary.LittleEndian.Uint32(foot[:4]) != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic (torn write?)", ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(data[:len(data)-footerLen]), binary.LittleEndian.Uint32(foot[4:]); got != want {
		return nil, fmt.Errorf("%w: file checksum mismatch", ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint32(data[len(fileMagic):])
	if ver != fileVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, ver, fileVersion)
	}
	nsec := binary.LittleEndian.Uint32(data[len(fileMagic)+4:])

	body := data[headerLen : len(data)-footerLen]
	// Every section costs at least a header plus its checksum, so the
	// count can never exceed the body's capacity to hold that many —
	// a hostile header must not pre-size the map beyond it.
	if uint64(nsec) > uint64(len(body))/(sectionHdr+4) {
		return nil, fmt.Errorf("%w: section count %d exceeds file capacity", ErrCorrupt, nsec)
	}
	secs := make(map[uint32][]byte, nsec)
	for i := uint32(0); i < nsec; i++ {
		if len(body) < sectionHdr {
			return nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
		}
		id := binary.LittleEndian.Uint32(body)
		plen := binary.LittleEndian.Uint64(body[4:])
		body = body[sectionHdr:]
		if plen > uint64(len(body)) || uint64(len(body))-plen < 4 {
			return nil, fmt.Errorf("%w: section %d overruns file", ErrCorrupt, id)
		}
		payload := body[:plen]
		crc := binary.LittleEndian.Uint32(body[plen:])
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		secs[id] = payload
		body = body[plen+4:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(body))
	}
	return secs, nil
}
