package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/profmat"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// Image is one decoded (or captured) checkpoint: everything a restart
// needs to serve the first warm request without recomputing trust or
// similarity state. Encode(Decode(Encode(img))) is byte-identical — the
// round-trip property the format tests pin.
type Image struct {
	// Epoch and Seq are the epoch↔WAL-sequence mapping: the snapshot
	// reflects every WAL record with sequence <= Seq, published as Epoch.
	Epoch uint64
	Seq   uint64
	// Options is the engine option set the snapshot was compiled under;
	// Load fails with ErrOptions when it does not match the caller's.
	Options core.Options
	// Community is the full statement state (agents, products, trust,
	// ratings) over its taxonomy.
	//nolint:snapshotpin -- an Image is a transient encode/decode carrier scoped to one Capture/Encode or Load/Restore call, not cached serving state; it never outlives the epoch it describes
	Community *model.Community
	// Rows holds the compiled CSR profile rows, parallel to
	// Community.Agents(); nil when the representation is not compilable.
	Rows []profmat.Row
	// Topics/Postings are the topic index in canonical export order; nil
	// Topics means the index was not captured.
	Topics   []taxonomy.Topic
	Postings [][]model.ProductID
	HasIndex bool
	// Peers and Profiles are the warm cache contents in LRU order
	// (least recently used first, so replaying them through the caches
	// reproduces recency).
	Peers    []engine.PeersEntry
	Profiles []engine.ProfileEntry
}

// optSig fingerprints the option fields that shape compiled state.
// Options.Candidates is a func and deliberately excluded: a custom
// candidate hook cannot be serialized, and engines using one should not
// share checkpoints with engines that do not — so its presence is part
// of the signature.
func optSig(o core.Options) string {
	return fmt.Sprintf("metric=%d as=%+v adv=%+v pt=%+v cf=%d/%d/%g/%t tt=%g mn=%d cand=%t a=%g/%t merge=%d content=%d boost=%g",
		o.Metric, o.Appleseed, o.Advogato, o.PathTrust,
		o.CF.Measure, o.CF.Representation, o.CF.ProfileScore, o.CF.WeightByRating,
		o.TrustThreshold, o.MaxNeighbors, o.Candidates != nil,
		o.Alpha, o.AlphaSet, o.Merge, o.Content, o.ContentBoost)
}

// Capture snapshots the serving state of snap as an Image covering WAL
// records up to seq. It reads only immutable snapshot state (plus the
// warm caches, which are concurrency-safe), so it can run off the ingest
// worker while the snapshot keeps serving.
func Capture(snap *engine.Snapshot, seq uint64) *Image {
	img := &Image{
		Epoch:     snap.Epoch(),
		Seq:       seq,
		Options:   snap.Options(),
		Community: snap.Community(),
		Peers:     snap.ExportPeers(),
		Profiles:  snap.ExportProfiles(),
	}
	comm := img.Community
	if mat := snap.Recommender().Filter().Matrix(); mat != nil {
		// Row i of the image is agent ordinal i — the matrix's own layout.
		ids := comm.Agents()
		img.Rows = make([]profmat.Row, len(ids))
		for i := range ids {
			if r := mat.Row(int32(i)); r != nil {
				img.Rows[i] = *r
			}
		}
	}
	img.Topics, img.Postings = snap.TopicIndex().Export()
	img.HasIndex = true
	return img
}

// Encode serializes the image into the checkpoint wire format.
func Encode(img *Image) []byte {
	comm := img.Community
	agents := comm.Agents()
	products := comm.Products()
	// The wire format's dense ordinals are exactly the community's interned
	// ordinals (insertion order on both sides), so encoding reads them off
	// the records instead of rebuilding translation maps.
	agentOrd := func(id model.AgentID) uint64 { return uint64(comm.Agent(id).Ord()) }
	prodOrd := func(id model.ProductID) uint64 { return uint64(comm.Product(id).Ord()) }
	tax := comm.Taxonomy()

	var out []byte
	out = append(out, fileMagic...)
	var hdr enc
	hdr.u32(fileVersion)
	sections := 7 // meta, agents, products, trust, ratings, peers, profiles
	if tax != nil {
		sections++
	}
	if img.Rows != nil {
		sections++
	}
	if img.HasIndex {
		sections++
	}
	hdr.u32(uint32(sections))
	out = append(out, hdr.b...)

	// META: the epoch↔sequence mapping, option signature, and shape flags.
	var meta enc
	meta.uv(img.Epoch)
	meta.uv(img.Seq)
	meta.str(optSig(img.Options))
	var flags uint8
	if tax != nil {
		flags |= 1
	}
	if img.Rows != nil {
		flags |= 2
	}
	if img.HasIndex {
		flags |= 4
	}
	meta.u8(flags)
	meta.uv(uint64(len(agents)))
	meta.uv(uint64(len(products)))
	out = frame(out, secMeta, meta.b)

	// TAXONOMY: nodes in topic order; Add assigns parents before
	// children, so a rebuild replays Add per node (primary parent) and
	// AddEdge per extra parent.
	if tax != nil {
		var e enc
		e.str(tax.Name(taxonomy.Root))
		e.uv(uint64(tax.Len() - 1))
		for d := taxonomy.Topic(1); int(d) < tax.Len(); d++ {
			e.str(tax.Name(d))
			parents := tax.Parents(d)
			e.uv(uint64(parents[0]))
			e.uv(uint64(len(parents) - 1))
			for _, p := range parents[1:] {
				e.uv(uint64(p))
			}
		}
		out = frame(out, secTaxonomy, e.b)
	}

	// AGENTS: insertion order defines the dense ordinal every other
	// section references.
	var ea enc
	for _, id := range agents {
		ea.str(string(id))
		ea.str(comm.Agent(id).Name)
	}
	out = frame(out, secAgents, ea.b)

	// PRODUCTS: catalog entries with their topic descriptors.
	var ep enc
	for _, pid := range products {
		p := comm.Product(pid)
		ep.str(string(p.ID))
		ep.str(p.Title)
		ep.str(p.ISBN)
		ep.uv(uint64(len(p.Topics)))
		for _, d := range p.Topics {
			ep.uv(uint64(d))
		}
	}
	out = frame(out, secProducts, ep.b)

	// TRUST: per-agent adjacency in the deterministic TrustedPeers order.
	var et enc
	for _, id := range agents {
		peers := comm.Agent(id).TrustedPeers()
		et.uv(uint64(len(peers)))
		for _, st := range peers {
			et.uv(agentOrd(st.Dst))
			et.f64(st.Value)
		}
	}
	out = frame(out, secTrust, et.b)

	// RATINGS: per-agent statements in the deterministic RatedProducts
	// order.
	var er enc
	for _, id := range agents {
		ratings := comm.Agent(id).RatedProducts()
		er.uv(uint64(len(ratings)))
		for _, rt := range ratings {
			er.uv(prodOrd(rt.Product))
			er.f64(rt.Value)
		}
	}
	out = frame(out, secRatings, er.b)

	// PROFMAT: the CSR arenas — row lengths, then the key arena, the
	// value arena, and per-row norm/sum, all fixed-width so a loader can
	// walk them without per-entry branching.
	if img.Rows != nil {
		var em enc
		em.uv(uint64(len(img.Rows)))
		for i := range img.Rows {
			em.u32(uint32(img.Rows[i].NNZ()))
		}
		for i := range img.Rows {
			for _, k := range img.Rows[i].Keys {
				em.u32(uint32(k))
			}
		}
		for i := range img.Rows {
			for _, v := range img.Rows[i].Vals {
				em.f64(v)
			}
		}
		for i := range img.Rows {
			em.f64(img.Rows[i].Norm)
			em.f64(img.Rows[i].Sum)
		}
		out = frame(out, secProfmat, em.b)
	}

	// TOPICINDEX: postings per populated topic, catalog order preserved.
	if img.HasIndex {
		var ei enc
		ei.uv(uint64(len(img.Topics)))
		for i, d := range img.Topics {
			ei.uv(uint64(d))
			ei.uv(uint64(len(img.Postings[i])))
			for _, pid := range img.Postings[i] {
				ei.uv(prodOrd(pid))
			}
		}
		out = frame(out, secTopicIndex, ei.b)
	}

	// PEERS: warm neighborhoods in LRU order. Ranks are fixed-width
	// records (peerRankSize bytes) so the decoder can size one arena for
	// the whole cache and fill it with bulk reads — the neighborhoods are
	// by far the largest variable-size payload in the file.
	var ew enc
	ew.uv(uint64(len(img.Peers)))
	for _, entry := range img.Peers {
		ew.uv(agentOrd(entry.Agent))
		ew.str(entry.Pipe)
		ew.uv(uint64(len(entry.Peers)))
		for _, pr := range entry.Peers {
			ew.u32(uint32(agentOrd(pr.Agent)))
			ew.f64(pr.Trust)
			ew.f64(pr.Sim)
			if pr.SimOK {
				ew.u8(1)
			} else {
				ew.u8(0)
			}
			ew.f64(pr.Weight)
		}
	}
	out = frame(out, secPeers, ew.b)

	// PROFILES: warm Eq. 3 profiles in LRU order, entries sorted by key.
	var ef enc
	ef.uv(uint64(len(img.Profiles)))
	for _, entry := range img.Profiles {
		ef.uv(agentOrd(entry.Agent))
		es := entry.Profile.Entries()
		ef.uv(uint64(len(es)))
		for _, kv := range es {
			ef.uv(uint64(kv.Key))
			ef.f64(kv.Value)
		}
	}
	out = frame(out, secProfiles, ef.b)

	// Footer: whole-file checksum.
	var foot enc
	foot.u32(footerMagic)
	foot.u32(crc32.ChecksumIEEE(out))
	return append(out, foot.b...)
}

// Decode parses and validates a checkpoint file image. opt is the option
// set the caller intends to serve with; when the stored signature does
// not match it (or, for a taxonomy-less checkpoint, its Product-
// representation variant), Decode fails with ErrOptions. The returned
// image's Options field is the accepted variant.
func Decode(data []byte, opt core.Options) (*Image, error) {
	secs, err := deframe(data)
	if err != nil {
		return nil, err
	}
	need := func(id uint32, what string) (*dec, error) {
		b, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrCorrupt, what)
		}
		return &dec{b: b}, nil
	}

	meta, err := need(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	img := &Image{Epoch: meta.uv(), Seq: meta.uv()}
	sig := meta.str()
	flags := meta.u8()
	// The counts are validated against the agents/products sections below
	// (count checks space in the section being decoded, and the entries
	// live there, not in meta).
	rawAgents := meta.uv()
	rawProducts := meta.uv()
	if meta.err != nil {
		return nil, meta.err
	}
	hasTax := flags&1 != 0
	hasMat := flags&2 != 0
	img.HasIndex = flags&4 != 0
	if !hasTax {
		// A taxonomy-less community cannot serve taxonomy-space profiles;
		// the engine that wrote this checkpoint ran the Product
		// representation, so that is the variant to match.
		opt.CF.Representation = cf.Product
	}
	if sig != optSig(opt) {
		return nil, fmt.Errorf("%w: file has %q, want %q", ErrOptions, sig, optSig(opt))
	}
	img.Options = opt

	// TAXONOMY.
	var tax *taxonomy.Taxonomy
	if hasTax {
		d, err := need(secTaxonomy, "taxonomy")
		if err != nil {
			return nil, err
		}
		tax = taxonomy.New(d.str())
		n := d.count(d.uv(), 2, "taxonomy node")
		type edge struct{ parent, child taxonomy.Topic }
		var extra []edge
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			primary := taxonomy.Topic(d.uv())
			nextra := d.count(d.uv(), 1, "taxonomy edge")
			got, err := tax.Add(primary, name)
			if d.err == nil && err != nil {
				return nil, fmt.Errorf("%w: taxonomy rebuild: %v", ErrCorrupt, err)
			}
			if d.err == nil && int(got) != i+1 {
				return nil, fmt.Errorf("%w: taxonomy node order", ErrCorrupt)
			}
			for j := 0; j < nextra; j++ {
				extra = append(extra, edge{parent: taxonomy.Topic(d.uv()), child: got})
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		for _, e := range extra {
			if err := tax.AddEdge(e.parent, e.child); err != nil {
				return nil, fmt.Errorf("%w: taxonomy rebuild: %v", ErrCorrupt, err)
			}
		}
	}
	comm := model.NewCommunity(tax)
	img.Community = comm

	// AGENTS.
	da, err := need(secAgents, "agents")
	if err != nil {
		return nil, err
	}
	nAgents := da.count(rawAgents, 2, "agent") // two length-prefixed strings each
	if da.err != nil {
		return nil, da.err
	}
	ids := make([]model.AgentID, nAgents)
	for i := 0; i < nAgents && da.err == nil; i++ {
		id := model.AgentID(da.str())
		name := da.str()
		if da.err != nil {
			break
		}
		ids[i] = id
		comm.AddAgent(id).Name = name
	}
	if da.err != nil {
		return nil, da.err
	}

	// PRODUCTS.
	dp, err := need(secProducts, "products")
	if err != nil {
		return nil, err
	}
	nProducts := dp.count(rawProducts, 4, "product") // three strings plus a descriptor count each
	if dp.err != nil {
		return nil, dp.err
	}
	pids := make([]model.ProductID, nProducts)
	for i := 0; i < nProducts && dp.err == nil; i++ {
		p := model.Product{
			ID:    model.ProductID(dp.str()),
			Title: dp.str(),
			ISBN:  dp.str(),
		}
		nt := dp.count(dp.uv(), 1, "descriptor")
		if nt > 0 {
			p.Topics = make([]taxonomy.Topic, nt)
			for j := 0; j < nt; j++ {
				p.Topics[j] = taxonomy.Topic(dp.uv())
			}
		}
		if dp.err != nil {
			break
		}
		pids[i] = p.ID
		comm.AddProduct(p)
	}
	if dp.err != nil {
		return nil, dp.err
	}
	agentAt := func(d *dec) (model.AgentID, bool) {
		i := d.uv()
		if d.err != nil || i >= uint64(len(ids)) {
			d.fail("agent ordinal")
			return "", false
		}
		return ids[i], true
	}
	prodAt := func(d *dec) (model.ProductID, bool) {
		i := d.uv()
		if d.err != nil || i >= uint64(len(pids)) {
			d.fail("product ordinal")
			return "", false
		}
		return pids[i], true
	}

	// TRUST.
	dt, err := need(secTrust, "trust")
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		n := dt.count(dt.uv(), 9, "trust edge")
		for j := 0; j < n; j++ {
			dst, ok := agentAt(dt)
			v := dt.f64()
			if !ok || dt.err != nil {
				break
			}
			if err := comm.SetTrust(id, dst, v); err != nil {
				return nil, fmt.Errorf("%w: trust rebuild: %v", ErrCorrupt, err)
			}
		}
		if dt.err != nil {
			return nil, dt.err
		}
	}

	// RATINGS.
	dr, err := need(secRatings, "ratings")
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		n := dr.count(dr.uv(), 9, "rating")
		for j := 0; j < n; j++ {
			pid, ok := prodAt(dr)
			v := dr.f64()
			if !ok || dr.err != nil {
				break
			}
			if err := comm.SetRating(id, pid, v); err != nil {
				return nil, fmt.Errorf("%w: rating rebuild: %v", ErrCorrupt, err)
			}
		}
		if dr.err != nil {
			return nil, dr.err
		}
	}

	// PROFMAT: rebuild the rows over two shared arenas, preserving the
	// compiled-form property that rows alias contiguous storage.
	if hasMat {
		dm, err := need(secProfmat, "profmat")
		if err != nil {
			return nil, err
		}
		n := dm.count(dm.uv(), 4, "profmat row")
		if n != len(ids) {
			return nil, fmt.Errorf("%w: %d profmat rows for %d agents", ErrCorrupt, n, len(ids))
		}
		lens := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			lens[i] = int(dm.u32())
			total += lens[i]
		}
		if dm.err == nil && uint64(total) > uint64(dm.rem())/12+1 {
			return nil, fmt.Errorf("%w: absurd profmat nnz %d", ErrCorrupt, total)
		}
		keys := make([]int32, total)
		vals := make([]float64, total)
		kb := dm.bytes(4*total, "profmat key arena")
		vb := dm.bytes(8*total, "profmat value arena")
		if dm.err != nil {
			return nil, dm.err
		}
		for i := range keys {
			keys[i] = int32(binary.LittleEndian.Uint32(kb[4*i:]))
		}
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(vb[8*i:]))
		}
		img.Rows = make([]profmat.Row, n)
		off := 0
		for i := 0; i < n; i++ {
			img.Rows[i] = profmat.Row{
				Keys: keys[off : off+lens[i] : off+lens[i]],
				Vals: vals[off : off+lens[i] : off+lens[i]],
			}
			off += lens[i]
		}
		for i := 0; i < n; i++ {
			img.Rows[i].Norm = dm.f64()
			img.Rows[i].Sum = dm.f64()
		}
		if dm.err != nil {
			return nil, dm.err
		}
	}

	// TOPICINDEX.
	if img.HasIndex {
		di, err := need(secTopicIndex, "topic index")
		if err != nil {
			return nil, err
		}
		n := di.count(di.uv(), 2, "topic posting")
		img.Topics = make([]taxonomy.Topic, n)
		img.Postings = make([][]model.ProductID, n)
		for i := 0; i < n && di.err == nil; i++ {
			img.Topics[i] = taxonomy.Topic(di.uv())
			np := di.count(di.uv(), 1, "posting")
			post := make([]model.ProductID, 0, np)
			for j := 0; j < np; j++ {
				pid, ok := prodAt(di)
				if !ok {
					break
				}
				post = append(post, pid)
			}
			img.Postings[i] = post
		}
		if di.err != nil {
			return nil, di.err
		}
	}

	// PEERS: a sizing pre-pass walks the entry headers (ranks are fixed-
	// width, so each body is skippable in O(1)), then one arena holds
	// every rank and each entry subslices it.
	dw, err := need(secPeers, "peers")
	if err != nil {
		return nil, err
	}
	nw := dw.count(dw.uv(), 3, "peers entry")
	start := dw.off
	totalRanks := 0
	for i := 0; i < nw && dw.err == nil; i++ {
		dw.uv() // agent ordinal
		dw.skipStr("peers pipe")
		np := dw.count(dw.uv(), peerRankSize, "peer rank")
		dw.skip(np*peerRankSize, "peer ranks")
		totalRanks += np
	}
	if dw.err != nil {
		return nil, dw.err
	}
	dw.off = start
	arena := make([]core.PeerRank, totalRanks)
	used := 0
	img.Peers = make([]engine.PeersEntry, 0, nw)
	for i := 0; i < nw && dw.err == nil; i++ {
		agent, ok := agentAt(dw)
		pipe := dw.str()
		np := int(dw.uv())
		block := dw.bytes(np*peerRankSize, "peer ranks")
		if !ok || dw.err != nil {
			break
		}
		peers := arena[used : used+np : used+np]
		used += np
		for j := range peers {
			b := block[j*peerRankSize:]
			ord := binary.LittleEndian.Uint32(b)
			if uint64(ord) >= uint64(len(ids)) {
				dw.fail("agent ordinal")
				break
			}
			peers[j] = core.PeerRank{
				Agent:  ids[ord],
				Trust:  math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
				Sim:    math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
				SimOK:  b[20] == 1,
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[21:])),
			}
		}
		img.Peers = append(img.Peers, engine.PeersEntry{Agent: agent, Pipe: pipe, Peers: peers})
	}
	if dw.err != nil {
		return nil, dw.err
	}

	// PROFILES.
	df, err := need(secProfiles, "profiles")
	if err != nil {
		return nil, err
	}
	nf := df.count(df.uv(), 2, "profile entry")
	img.Profiles = make([]engine.ProfileEntry, 0, nf)
	for i := 0; i < nf && df.err == nil; i++ {
		agent, ok := agentAt(df)
		np := df.count(df.uv(), 9, "profile dimension")
		if !ok || df.err != nil {
			break
		}
		prof := sparse.New(np)
		for j := 0; j < np; j++ {
			k := int32(df.uv())
			prof[k] = df.f64()
		}
		img.Profiles = append(img.Profiles, engine.ProfileEntry{Agent: agent, Profile: prof})
	}
	if df.err != nil {
		return nil, df.err
	}
	return img, nil
}

// Restore builds a serving engine from the image: the compiled rows,
// topic index, and warm caches are installed directly — no Appleseed, no
// Eq. 3, no similarity recompute.
func (img *Image) Restore(cfg engine.Config) (*engine.Engine, error) {
	r := engine.Restore{
		Epoch:     img.Epoch,
		Community: img.Community,
		Peers:     img.Peers,
		Profiles:  img.Profiles,
	}
	if img.Rows != nil {
		// Image rows are in agent-ordinal order, which is exactly the
		// matrix's positional layout — restore is a wrap, not a rebuild.
		r.Matrix = profmat.Restore(img.Rows)
	}
	if img.HasIndex {
		r.Index = index.Restore(img.Community.Taxonomy(), img.Topics, img.Postings)
	}
	return engine.NewRestored(r, img.Options, cfg)
}

// fileName names the checkpoint covering WAL records up to seq.
func fileName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.swc", seq) }

// parseFileName extracts the covered sequence number; ok is false for
// unrelated files (including in-flight temporaries).
func parseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".swc") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[5:len(name)-4], 16, 64)
	return seq, err == nil
}

// Info describes one checkpoint file on disk.
type Info struct {
	Path string
	Seq  uint64
}

// List returns the checkpoint files in dir, newest (highest sequence)
// first — the order the recovery ladder tries them in. A missing
// directory is an empty list, not an error.
func List(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read dir %s: %w", dir, err)
	}
	var out []Info
	for _, e := range entries {
		if seq, ok := parseFileName(e.Name()); ok {
			out = append(out, Info{Path: filepath.Join(dir, e.Name()), Seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out, nil
}

// WriteImage atomically persists the image into dir as ckpt-<seq>.swc:
// encode, write to a unique temporary, fsync, rename. wrap, when
// non-nil, interposes on the file handle (the fault-injection seam). On
// any error the temporary is removed and the directory is left with only
// complete, checksummed checkpoints.
func WriteImage(dir string, img *Image, wrap func(*os.File) File) (path string, err error) {
	data := Encode(img)
	final := filepath.Join(dir, fileName(img.Seq))
	tmp, err := os.CreateTemp(dir, fileName(img.Seq)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	var f File = tmp
	if wrap != nil {
		f = wrap(tmp)
	}
	fail := func(stage string, cause error) (string, error) {
		_ = f.Close()          //nolint:durableerr -- the write already failed; the temp file is about to be discarded
		_ = os.Remove(tmpName) // best-effort cleanup of a failed temp; recovery ignores temporaries either way
		return "", fmt.Errorf("checkpoint: %s: %w", stage, cause)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		return fail("rename", err)
	}
	syncDir(dir)
	return final, nil
}

// Load reads and fully validates the checkpoint at path. See Decode for
// the option-signature contract.
func Load(path string, opt core.Options) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	return Decode(data, opt)
}

// Prune keeps the newest keep checkpoint files in dir and removes the
// rest, plus any stale write temporaries left by a crash mid-write.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	infos, err := List(dir)
	if err != nil {
		return err
	}
	for _, info := range infos[min(keep, len(infos)):] {
		if err := os.Remove(info.Path); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: prune: %w", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".swc.tmp-") {
			_ = os.Remove(filepath.Join(dir, e.Name())) // stale temporaries are garbage by definition; removal is best-effort hygiene
		}
	}
	return nil
}

// syncDir best-effort fsyncs dir so the rename survives a crash
// (mirrors internal/wal).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()  //nolint:durableerr -- directory fsync is best-effort: POSIX gives no portable guarantee, and the file bytes themselves are already synced
		_ = d.Close() //nolint:durableerr -- read-only directory handle; no acked bytes ride on this close
	}
}
