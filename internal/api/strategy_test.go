package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/model"
	"swrec/internal/strategy"
)

// strategyPage decodes the envelope's strategy block plus the raw body so
// tests can assert on field absence.
type strategyPage struct {
	Items    []json.RawMessage `json:"items"`
	Total    int               `json:"total"`
	Strategy *strategy.Result  `json:"strategy"`
}

// newFixtureServer builds a read-only server over a community with the
// hard-query fixtures injected.
func newFixtureServer(t *testing.T) (*Server, *model.Community, model.AgentID) {
	t.Helper()
	comm := testCommunity(t, 40, 60)
	coldID := datagen.InjectColdStart(comm)
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng), comm, coldID
}

// TestStrategyBlockOnEveryRead is the provenance acceptance test: every
// recommendations and neighbors response carries the strategy block, and
// the legacy degraded fields are gone without the compat flag.
func TestStrategyBlockOnEveryRead(t *testing.T) {
	s, comm, _ := newTestServer(t)
	agent := comm.Agents()[0]
	for _, suffix := range []string{"/recommendations", "/neighbors"} {
		var out strategyPage
		if code := get(t, s, agentPath(agent, suffix), &out); code != http.StatusOK {
			t.Fatalf("%s status = %d", suffix, code)
		}
		if out.Strategy == nil {
			t.Fatalf("%s: no strategy block", suffix)
		}
		if out.Strategy.Procedure != strategy.FullSynthesis {
			t.Fatalf("%s: procedure = %s", suffix, out.Strategy.Procedure)
		}
		if len(out.Strategy.Attempts) == 0 || out.Strategy.Epoch != 1 {
			t.Fatalf("%s: strategy block = %+v", suffix, out.Strategy)
		}

		// Without the compat flag the deprecated fields are not emitted at
		// all (absent, not just false/empty).
		raw := doRaw(t, s, agentPath(agent, suffix))
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			t.Fatal(err)
		}
		for _, legacy := range []string{"degraded", "degradedSource", "degradedEpoch"} {
			if _, ok := fields[legacy]; ok {
				t.Fatalf("%s: legacy field %q emitted without compat flag", suffix, legacy)
			}
		}
	}
}

func doRaw(t *testing.T, s *Server, path string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Body.Bytes()
}

// TestStrategyColdStartServedByPopularity walks the API path end to end
// for a cold-start agent: 200, non-empty, popularity rung reported.
func TestStrategyColdStartServedByPopularity(t *testing.T) {
	s, _, cold := newFixtureServer(t)
	var out strategyPage
	if code := get(t, s, agentPath(cold, "/recommendations"), &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Strategy == nil || out.Strategy.Procedure != strategy.Popularity {
		t.Fatalf("strategy = %+v", out.Strategy)
	}
	if len(out.Items) == 0 {
		t.Fatal("cold-start agent got no recommendations")
	}
}

// TestStrategiesEndpoint lists the configured ladder.
func TestStrategiesEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t)
	var out struct {
		Items []strategy.Rung `json:"items"`
		Total int             `json:"total"`
	}
	if code := get(t, s, "/v1/strategies", &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Total != len(strategy.Procedures) || len(out.Items) != out.Total {
		t.Fatalf("listing = %+v", out)
	}
	for i, r := range out.Items {
		if r.Procedure != strategy.Procedures[i] {
			t.Fatalf("rung %d = %s, want %s", i, r.Procedure, strategy.Procedures[i])
		}
		if !r.Enabled {
			t.Fatalf("rung %s listed disabled", r.Procedure)
		}
	}
}

// TestStrategyOverride pins and excludes rungs through the query
// parameter, and asserts the structured-error envelope on bad input.
func TestStrategyOverride(t *testing.T) {
	s, comm, _ := newTestServer(t)
	agent := comm.Agents()[0]

	var out strategyPage
	if code := get(t, s, agentPath(agent, "/recommendations?strategy=popularity"), &out); code != http.StatusOK {
		t.Fatalf("pin status = %d", code)
	}
	if out.Strategy == nil || out.Strategy.Procedure != strategy.Popularity {
		t.Fatalf("pinned strategy = %+v", out.Strategy)
	}

	out = strategyPage{}
	if code := get(t, s, agentPath(agent, "/recommendations?strategy=-full-synthesis"), &out); code != http.StatusOK {
		t.Fatalf("exclude status = %d", code)
	}
	if out.Strategy == nil || out.Strategy.Procedure == strategy.FullSynthesis {
		t.Fatalf("excluded rung answered: %+v", out.Strategy)
	}
	if out.Strategy.Attempts[0].Outcome != strategy.OutcomeExcluded {
		t.Fatalf("trace head = %+v", out.Strategy.Attempts[0])
	}

	for _, q := range []string{
		"strategy=bogus",
		"strategy=popularity,full-synthesis",
		"strategy=popularity,-full-synthesis",
		"strategy=-full-synthesis,-trust-hop-widening,-taxonomy-ancestor,-popularity,-degraded-cache",
	} {
		for _, suffix := range []string{"/recommendations?", "/neighbors?"} {
			if code := getError(t, s, agentPath(agent, suffix+q), http.StatusBadRequest); code != "invalid_argument" {
				t.Fatalf("%s%s error code = %q", suffix, q, code)
			}
		}
	}
}

// TestStrategyCompatFlag keeps the legacy degraded fields for configured
// deployments — but only on actually degraded answers.
func TestStrategyCompatFlag(t *testing.T) {
	comm := testCommunity(t, 30, 40)
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, nil, Config{CompatDegraded: true})
	agent := comm.Agents()[0]
	raw := doRaw(t, s, agentPath(agent, "/recommendations"))
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, ok := fields["strategy"]; !ok {
		t.Fatal("compat server dropped the strategy block")
	}
	// A healthy (non-degraded) answer carries no legacy fields even under
	// the compat flag.
	if _, ok := fields["degraded"]; ok {
		t.Fatal("healthy answer emitted degraded fields")
	}
}
