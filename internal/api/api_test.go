package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/model"
)

func newTestServer(t *testing.T) (*Server, *model.Community) {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = 60
	cfg.Products = 80
	comm, _ := datagen.Generate(cfg)
	s, err := New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, comm
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, s *Server, path string, out interface{}) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestStatsEndpoint(t *testing.T) {
	s, comm := newTestServer(t)
	var out struct {
		Community model.Stats `json:"community"`
		Taxonomy  *struct {
			Topics int `json:"Topics"`
		} `json:"taxonomy"`
	}
	if code := get(t, s, "/v1/stats", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Community.Agents != comm.NumAgents() {
		t.Fatalf("agents = %d, want %d", out.Community.Agents, comm.NumAgents())
	}
	if out.Taxonomy == nil || out.Taxonomy.Topics != comm.Taxonomy().Len() {
		t.Fatalf("taxonomy stats missing: %+v", out.Taxonomy)
	}
}

func TestAgentsListSortedAndLimited(t *testing.T) {
	s, _ := newTestServer(t)
	var out []struct {
		ID       string `json:"id"`
		TrustOut int    `json:"trustOut"`
	}
	if code := get(t, s, "/v1/agents?limit=5", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out) != 5 {
		t.Fatalf("limit ignored: %d entries", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].TrustOut < out[i].TrustOut {
			t.Fatal("agents not sorted by trust out-degree")
		}
	}
}

func TestAgentDetailAndSubResources(t *testing.T) {
	s, comm := newTestServer(t)
	id := comm.Agents()[0]
	esc := url.PathEscape(string(id))

	var detail struct {
		ID    string `json:"id"`
		Trust []struct {
			Dst   string  `json:"Dst"`
			Value float64 `json:"Value"`
		} `json:"trust"`
	}
	if code := get(t, s, "/v1/agents/"+esc, &detail); code != 200 {
		t.Fatalf("detail status = %d", code)
	}
	if detail.ID != string(id) {
		t.Fatalf("detail ID = %s", detail.ID)
	}
	if len(detail.Trust) != len(comm.Agent(id).Trust) {
		t.Fatalf("trust statements = %d, want %d", len(detail.Trust), len(comm.Agent(id).Trust))
	}

	var neighbors []struct {
		Agent  string  `json:"Agent"`
		Weight float64 `json:"Weight"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/neighbors?n=10", &neighbors); code != 200 {
		t.Fatalf("neighbors status = %d", code)
	}
	if len(neighbors) > 10 {
		t.Fatalf("n ignored: %d", len(neighbors))
	}

	var prof []struct {
		Topic string  `json:"topic"`
		Score float64 `json:"score"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/profile?n=5", &prof); code != 200 {
		t.Fatalf("profile status = %d", code)
	}
	if len(prof) > 5 {
		t.Fatalf("profile n ignored: %d", len(prof))
	}
	for _, ts := range prof {
		if !strings.HasPrefix(ts.Topic, "Books") || ts.Score <= 0 {
			t.Fatalf("bad profile entry %+v", ts)
		}
	}

	var recs []struct {
		Product string  `json:"Product"`
		Score   float64 `json:"Score"`
		Title   string  `json:"title"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=5", &recs); code != 200 {
		t.Fatalf("recommendations status = %d", code)
	}
	if len(recs) > 5 {
		t.Fatalf("rec n ignored: %d", len(recs))
	}
	for _, r := range recs {
		if _, rated := comm.Agent(id).Ratings[model.ProductID(r.Product)]; rated {
			t.Fatalf("recommended already-rated %s", r.Product)
		}
	}
}

func TestNovelFlag(t *testing.T) {
	s, comm := newTestServer(t)
	id := comm.Agents()[0]
	esc := url.PathEscape(string(id))
	var std, novel []struct {
		Product string `json:"Product"`
	}
	get(t, s, "/v1/agents/"+esc+"/recommendations?n=0", &std)
	get(t, s, "/v1/agents/"+esc+"/recommendations?n=0&novel=1", &novel)
	// Novel results are a (possibly strict) subset of the standard ones.
	set := map[string]bool{}
	for _, r := range std {
		set[r.Product] = true
	}
	for _, r := range novel {
		if !set[r.Product] {
			t.Fatalf("novel rec %s not in standard set", r.Product)
		}
	}
}

func TestThetaDiversification(t *testing.T) {
	s, comm := newTestServer(t)
	id := comm.Agents()[0]
	esc := url.PathEscape(string(id))
	var plain, div []struct {
		Product string `json:"Product"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=10", &plain); code != 200 {
		t.Fatalf("plain status = %d", code)
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=10&theta=0.8", &div); code != 200 {
		t.Fatalf("theta status = %d", code)
	}
	if len(div) == 0 || len(div) > 10 {
		t.Fatalf("diversified length = %d", len(div))
	}
	if len(plain) > 0 && len(div) > 0 && plain[0].Product != div[0].Product {
		t.Fatal("diversification must keep the top candidate")
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?theta=7", nil); code != 400 {
		t.Fatalf("bad theta status = %d", code)
	}
}

func TestTopicEndpoint(t *testing.T) {
	s, comm := newTestServer(t)
	// Pick a real leaf topic from a product's descriptors.
	p := comm.Product(comm.Products()[0])
	topicPath := comm.Taxonomy().QualifiedName(p.Topics[0])

	var out struct {
		Topic    string `json:"topic"`
		Subtree  int    `json:"subtreeProducts"`
		Products []struct {
			ID string `json:"id"`
		} `json:"products"`
	}
	if code := get(t, s, "/v1/topics/"+url.PathEscape(topicPath), &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Topic != topicPath || out.Subtree == 0 || len(out.Products) == 0 {
		t.Fatalf("topic browse = %+v", out)
	}
	found := false
	for _, e := range out.Products {
		if e.ID == string(p.ID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("product %s missing from its own topic", p.ID)
	}
	// Root browse covers the whole catalog.
	root := comm.Taxonomy().Name(0)
	var rootOut struct {
		Subtree int `json:"subtreeProducts"`
	}
	if code := get(t, s, "/v1/topics/"+url.PathEscape(root)+"?n=1", &rootOut); code != 200 {
		t.Fatal("root browse failed")
	}
	if rootOut.Subtree != comm.NumProducts() {
		t.Fatalf("root subtree = %d, want %d", rootOut.Subtree, comm.NumProducts())
	}
	if code := get(t, s, "/v1/topics/No/Such/Topic", nil); code != 404 {
		t.Fatalf("unknown topic status = %d", code)
	}
}

func TestProductEndpoint(t *testing.T) {
	s, comm := newTestServer(t)
	pid := comm.Products()[0]
	var out struct {
		ID     string   `json:"id"`
		Topics []string `json:"topics"`
	}
	if code := get(t, s, "/v1/products/"+url.PathEscape(string(pid)), &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.ID != string(pid) || len(out.Topics) == 0 {
		t.Fatalf("product = %+v", out)
	}
}

func TestErrorPaths(t *testing.T) {
	s, _ := newTestServer(t)
	if code := get(t, s, "/v1/agents/"+url.PathEscape("http://nope/x"), nil); code != 404 {
		t.Fatalf("unknown agent status = %d", code)
	}
	if code := get(t, s, "/v1/products/nope", nil); code != 404 {
		t.Fatalf("unknown product status = %d", code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
	// Validation at construction.
	comm := model.NewCommunity(nil)
	if _, err := New(comm, core.Options{Alpha: 5}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestProfileWithoutTaxonomy(t *testing.T) {
	comm := model.NewCommunity(nil)
	comm.AddAgent("http://x/a")
	s, err := New(comm, core.Options{CF: cf.Options{Representation: cf.Product}})
	if err != nil {
		t.Fatal(err)
	}
	if code := get(t, s, "/v1/agents/"+url.PathEscape("http://x/a")+"/profile", nil); code != http.StatusConflict {
		t.Fatalf("status = %d, want 409", code)
	}
}
