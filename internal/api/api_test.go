package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/model"
)

func testCommunity(t testing.TB, agents, products int) *model.Community {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = products
	comm, _ := datagen.Generate(cfg)
	return comm
}

func newTestServer(t *testing.T) (*Server, *model.Community, *engine.Engine) {
	t.Helper()
	comm := testCommunity(t, 60, 80)
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng), comm, eng
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, s *Server, path string, out interface{}) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

// getError asserts an error response and returns the envelope code.
func getError(t *testing.T, s *Server, path string, wantStatus int) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s status = %d, want %d", path, rec.Code, wantStatus)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body not enveloped: %s", rec.Body.String())
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("error envelope incomplete: %s", rec.Body.String())
	}
	return body.Error.Code
}

func TestHealthz(t *testing.T) {
	s, comm, eng := newTestServer(t)
	var out struct {
		Status        string  `json:"status"`
		Epoch         uint64  `json:"epoch"`
		Agents        int     `json:"agents"`
		Products      int     `json:"products"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}
	if code := get(t, s, "/v1/healthz", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Status != "ok" || out.Epoch != 1 ||
		out.Agents != comm.NumAgents() || out.Products != comm.NumProducts() {
		t.Fatalf("healthz = %+v", out)
	}
	if out.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", out.UptimeSeconds)
	}

	if _, err := eng.Swap(testCommunity(t, 20, 30)); err != nil {
		t.Fatal(err)
	}
	get(t, s, "/v1/healthz", &out)
	if out.Epoch != 2 || out.Agents != 20 {
		t.Fatalf("healthz after swap = %+v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, comm, _ := newTestServer(t)
	esc := url.PathEscape(string(comm.Agents()[0]))
	get(t, s, "/v1/agents/"+esc+"/recommendations", nil) // generate traffic
	var vars map[string]json.RawMessage
	if code := get(t, s, "/v1/metrics", &vars); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if _, ok := vars["swrec_engine"]; !ok {
		t.Fatal("metrics missing swrec_engine map")
	}
	if _, ok := vars["swrec_api"]; !ok {
		t.Fatal("metrics missing swrec_api map")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, comm, _ := newTestServer(t)
	var out struct {
		Epoch     uint64      `json:"epoch"`
		Community model.Stats `json:"community"`
		Taxonomy  *struct {
			Topics int `json:"Topics"`
		} `json:"taxonomy"`
	}
	if code := get(t, s, "/v1/stats", &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Epoch != 1 {
		t.Fatalf("epoch = %d", out.Epoch)
	}
	if out.Community.Agents != comm.NumAgents() {
		t.Fatalf("agents = %d, want %d", out.Community.Agents, comm.NumAgents())
	}
	if out.Taxonomy == nil || out.Taxonomy.Topics != comm.Taxonomy().Len() {
		t.Fatalf("taxonomy stats missing: %+v", out.Taxonomy)
	}
}

type agentsPage struct {
	Items []struct {
		ID       string `json:"id"`
		TrustOut int    `json:"trustOut"`
	} `json:"items"`
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

func TestAgentsPagination(t *testing.T) {
	s, comm, _ := newTestServer(t)
	var first agentsPage
	if code := get(t, s, "/v1/agents?limit=5", &first); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(first.Items) != 5 || first.Total != comm.NumAgents() ||
		first.Offset != 0 || first.Limit != 5 {
		t.Fatalf("first page = %+v", first)
	}
	for i := 1; i < len(first.Items); i++ {
		if first.Items[i-1].TrustOut < first.Items[i].TrustOut {
			t.Fatal("agents not sorted by trust out-degree")
		}
	}

	// Walk the whole directory in pages: windows must be disjoint and
	// cover every agent exactly once.
	seen := map[string]bool{}
	for offset := 0; ; offset += 7 {
		var p agentsPage
		if code := get(t, s, fmt.Sprintf("/v1/agents?offset=%d&limit=7", offset), &p); code != 200 {
			t.Fatalf("page at %d: status %d", offset, code)
		}
		if p.Total != comm.NumAgents() {
			t.Fatalf("total changed mid-walk: %d", p.Total)
		}
		for _, it := range p.Items {
			if seen[it.ID] {
				t.Fatalf("agent %s appeared twice", it.ID)
			}
			seen[it.ID] = true
		}
		if len(p.Items) < 7 {
			break
		}
	}
	if len(seen) != comm.NumAgents() {
		t.Fatalf("paged %d agents, want %d", len(seen), comm.NumAgents())
	}

	// Past-the-end offset yields an empty page, not an error.
	var empty agentsPage
	if code := get(t, s, "/v1/agents?offset=100000&limit=5", &empty); code != 200 {
		t.Fatalf("past-end status = %d", code)
	}
	if len(empty.Items) != 0 || empty.Total != comm.NumAgents() {
		t.Fatalf("past-end page = %+v", empty)
	}

	if code := getError(t, s, "/v1/agents?limit=x", http.StatusBadRequest); code != "invalid_argument" {
		t.Fatalf("bad limit code = %s", code)
	}
	if code := getError(t, s, "/v1/agents?offset=-3", http.StatusBadRequest); code != "invalid_argument" {
		t.Fatalf("bad offset code = %s", code)
	}
}

func TestAgentDetailAndSubResources(t *testing.T) {
	s, comm, _ := newTestServer(t)
	id := comm.Agents()[0]
	esc := url.PathEscape(string(id))

	var detail struct {
		ID    string `json:"id"`
		Trust []struct {
			Dst   string  `json:"Dst"`
			Value float64 `json:"Value"`
		} `json:"trust"`
	}
	if code := get(t, s, "/v1/agents/"+esc, &detail); code != 200 {
		t.Fatalf("detail status = %d", code)
	}
	if detail.ID != string(id) {
		t.Fatalf("detail ID = %s", detail.ID)
	}
	if len(detail.Trust) != len(comm.Agent(id).Trust) {
		t.Fatalf("trust statements = %d, want %d", len(detail.Trust), len(comm.Agent(id).Trust))
	}

	var neighbors struct {
		Items []struct {
			Agent  string  `json:"Agent"`
			Weight float64 `json:"Weight"`
		} `json:"items"`
		Total int `json:"total"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/neighbors?n=10", &neighbors); code != 200 {
		t.Fatalf("neighbors status = %d", code)
	}
	if len(neighbors.Items) > 10 || neighbors.Total < len(neighbors.Items) {
		t.Fatalf("neighbors page: %d items, total %d", len(neighbors.Items), neighbors.Total)
	}

	var prof struct {
		Items []struct {
			Topic string  `json:"topic"`
			Score float64 `json:"score"`
		} `json:"items"`
		Total int `json:"total"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/profile?n=5", &prof); code != 200 {
		t.Fatalf("profile status = %d", code)
	}
	if len(prof.Items) > 5 {
		t.Fatalf("profile n ignored: %d", len(prof.Items))
	}
	for _, ts := range prof.Items {
		if !strings.HasPrefix(ts.Topic, "Books") || ts.Score <= 0 {
			t.Fatalf("bad profile entry %+v", ts)
		}
	}

	var recs struct {
		Items []struct {
			Product string  `json:"Product"`
			Score   float64 `json:"Score"`
			Title   string  `json:"title"`
		} `json:"items"`
		Total int `json:"total"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=5", &recs); code != 200 {
		t.Fatalf("recommendations status = %d", code)
	}
	if len(recs.Items) > 5 {
		t.Fatalf("rec n ignored: %d", len(recs.Items))
	}
	for _, r := range recs.Items {
		if _, rated := comm.Agent(id).Ratings[model.ProductID(r.Product)]; rated {
			t.Fatalf("recommended already-rated %s", r.Product)
		}
	}
}

func TestRecommendationOverrides(t *testing.T) {
	s, comm, _ := newTestServer(t)
	esc := url.PathEscape(string(comm.Agents()[0]))
	base := "/v1/agents/" + esc + "/recommendations"

	var out struct {
		Items []struct {
			Product string `json:"Product"`
		} `json:"items"`
	}
	for _, q := range []string{
		"?metric=none", "?metric=advogato", "?metric=pathtrust",
		"?alpha=1", "?alpha=0", "?measure=pearson",
		"?metric=none&alpha=0.25&measure=pearson&novel=0",
	} {
		if code := get(t, s, base+q, &out); code != 200 {
			t.Fatalf("%s status = %d", q, code)
		}
	}

	// Pure-trust vs pure-similarity blends must both work on neighbors too.
	var nOut struct {
		Items []struct {
			Weight float64 `json:"Weight"`
		} `json:"items"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/neighbors?alpha=1&n=5", &nOut); code != 200 {
		t.Fatalf("neighbors alpha status = %d", code)
	}

	for _, q := range []string{
		"?metric=bogus", "?alpha=2", "?alpha=x", "?measure=manhattan",
		"?novel=yes", "?n=-1", "?theta=7",
	} {
		if code := getError(t, s, base+q, http.StatusBadRequest); code != "invalid_argument" {
			t.Fatalf("%s error code = %s", q, code)
		}
	}
}

func TestNovelFlag(t *testing.T) {
	s, comm, _ := newTestServer(t)
	esc := url.PathEscape(string(comm.Agents()[0]))
	var std, novel struct {
		Items []struct {
			Product string `json:"Product"`
		} `json:"items"`
	}
	get(t, s, "/v1/agents/"+esc+"/recommendations?n=0", &std)
	get(t, s, "/v1/agents/"+esc+"/recommendations?n=0&novel=1", &novel)
	// Novel results are a (possibly strict) subset of the standard ones.
	set := map[string]bool{}
	for _, r := range std.Items {
		set[r.Product] = true
	}
	for _, r := range novel.Items {
		if !set[r.Product] {
			t.Fatalf("novel rec %s not in standard set", r.Product)
		}
	}
}

func TestThetaDiversification(t *testing.T) {
	s, comm, _ := newTestServer(t)
	esc := url.PathEscape(string(comm.Agents()[0]))
	var plain, div struct {
		Items []struct {
			Product string `json:"Product"`
		} `json:"items"`
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=10", &plain); code != 200 {
		t.Fatalf("plain status = %d", code)
	}
	if code := get(t, s, "/v1/agents/"+esc+"/recommendations?n=10&theta=0.8", &div); code != 200 {
		t.Fatalf("theta status = %d", code)
	}
	if len(div.Items) == 0 || len(div.Items) > 10 {
		t.Fatalf("diversified length = %d", len(div.Items))
	}
	if len(plain.Items) > 0 && len(div.Items) > 0 && plain.Items[0].Product != div.Items[0].Product {
		t.Fatal("diversification must keep the top candidate")
	}
}

func TestTopicPagination(t *testing.T) {
	s, comm, _ := newTestServer(t)
	// The taxonomy root covers the entire catalog.
	root := comm.Taxonomy().Name(0)
	type topicPage struct {
		Topic  string `json:"topic"`
		Total  int    `json:"total"`
		Offset int    `json:"offset"`
		Limit  int    `json:"limit"`
		Items  []struct {
			ID string `json:"id"`
		} `json:"items"`
	}
	var first topicPage
	if code := get(t, s, "/v1/topics/"+url.PathEscape(root)+"?limit=10", &first); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if first.Total != comm.NumProducts() || len(first.Items) != 10 {
		t.Fatalf("root page = total %d items %d", first.Total, len(first.Items))
	}

	seen := map[string]bool{}
	for offset := 0; ; offset += 13 {
		var p topicPage
		if code := get(t, s, fmt.Sprintf("/v1/topics/%s?offset=%d&limit=13", url.PathEscape(root), offset), &p); code != 200 {
			t.Fatalf("page at %d: status %d", offset, code)
		}
		for _, it := range p.Items {
			if seen[it.ID] {
				t.Fatalf("product %s appeared twice", it.ID)
			}
			seen[it.ID] = true
		}
		if len(p.Items) < 13 {
			break
		}
	}
	if len(seen) != comm.NumProducts() {
		t.Fatalf("paged %d products, want %d", len(seen), comm.NumProducts())
	}

	// A leaf topic still reports its own product.
	p := comm.Product(comm.Products()[0])
	topicPath := comm.Taxonomy().QualifiedName(p.Topics[0])
	var leaf topicPage
	if code := get(t, s, "/v1/topics/"+url.PathEscape(topicPath)+"?limit=0", &leaf); code != 200 {
		t.Fatalf("leaf status = %d", code)
	}
	found := false
	for _, e := range leaf.Items {
		if e.ID == string(p.ID) {
			found = true
		}
	}
	if !found || leaf.Topic != topicPath {
		t.Fatalf("product %s missing from its own topic page %+v", p.ID, leaf)
	}

	if code := getError(t, s, "/v1/topics/No/Such/Topic", http.StatusNotFound); code != "not_found" {
		t.Fatalf("unknown topic code = %s", code)
	}
}

func TestProductEndpoint(t *testing.T) {
	s, comm, _ := newTestServer(t)
	pid := comm.Products()[0]
	var out struct {
		ID     string   `json:"id"`
		Topics []string `json:"topics"`
	}
	if code := get(t, s, "/v1/products/"+url.PathEscape(string(pid)), &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.ID != string(pid) || len(out.Topics) == 0 {
		t.Fatalf("product = %+v", out)
	}
}

func TestErrorEnvelope(t *testing.T) {
	s, _, _ := newTestServer(t)
	if code := getError(t, s, "/v1/agents/"+url.PathEscape("http://nope/x"), http.StatusNotFound); code != "not_found" {
		t.Fatalf("unknown agent code = %s", code)
	}
	if code := getError(t, s, "/v1/products/nope", http.StatusNotFound); code != "not_found" {
		t.Fatalf("unknown product code = %s", code)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "method_not_allowed" {
		t.Fatalf("POST envelope = %s", rec.Body.String())
	}

	// Invalid options are rejected at engine construction.
	comm := model.NewCommunity(nil)
	if _, err := engine.New(comm, core.Options{Alpha: 5}, engine.Config{}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestProfileWithoutTaxonomy(t *testing.T) {
	comm := model.NewCommunity(nil)
	comm.AddAgent("http://x/a")
	eng, err := engine.New(comm, core.Options{CF: cf.Options{Representation: cf.Product}}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	esc := url.PathEscape("http://x/a")
	if code := getError(t, s, "/v1/agents/"+esc+"/profile", http.StatusConflict); code != "no_taxonomy" {
		t.Fatalf("profile code = %s", code)
	}
	if code := getError(t, s, "/v1/topics/Anything", http.StatusConflict); code != "no_taxonomy" {
		t.Fatalf("topics code = %s", code)
	}
}

// TestConcurrentClientsDuringSwap drives many clients through the full
// HTTP stack while the engine swaps snapshots underneath them; run under
// -race. Every response must be a well-formed 200 against a single
// epoch's view.
func TestConcurrentClientsDuringSwap(t *testing.T) {
	s, comm, eng := newTestServer(t)

	const clients = 8
	const perClient = 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Resolve a live agent from the *current* directory page so
				// the request targets whichever epoch it lands on.
				req := httptest.NewRequest(http.MethodGet, "/v1/agents?limit=1", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				var p struct {
					Items []struct {
						ID string `json:"id"`
					} `json:"items"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil || len(p.Items) == 0 {
					errs <- fmt.Errorf("client %d: bad directory page: %s", seed, rec.Body.String())
					return
				}
				esc := url.PathEscape(p.Items[0].ID)
				req = httptest.NewRequest(http.MethodGet, "/v1/agents/"+esc+"/recommendations?n=5", nil)
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				// A swap between the two requests may retire the agent; 404
				// is then correct. Anything else must be a clean 200.
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					errs <- fmt.Errorf("client %d: status %d: %s", seed, rec.Code, rec.Body.String())
					return
				}
			}
		}(c)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Swap(testCommunity(t, 40+i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.Epoch(); got != 6 {
		t.Fatalf("epoch = %d, want 6", got)
	}
	_ = comm
}
