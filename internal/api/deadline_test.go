package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/strategy"
	"swrec/internal/wal"
)

// newSlowServer builds a read-only server whose recommendation pipeline
// sleeps for the duration stored in delay (nanoseconds) at stage 1 — a
// deterministic stand-in for an expensive cold-path computation — with
// the given server-side read budget.
func newSlowServer(t *testing.T, delay *atomic.Int64, budget time.Duration) (*Server, *model.Community, *engine.Engine) {
	t.Helper()
	comm := testCommunity(t, 30, 40)
	opt := core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
	agents := comm.Agents()
	opt.Candidates = func(model.AgentID) []model.AgentID {
		if d := time.Duration(delay.Load()); d > 0 {
			time.Sleep(d)
		}
		return agents
	}
	eng, err := engine.New(comm, opt, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(eng, nil, Config{ReadBudget: budget, CompatDegraded: true}), comm, eng
}

// degradedPage decodes the list envelope including the legacy degraded
// markers (the slow server runs with CompatDegraded) and the strategy
// provenance block that supersedes them.
type degradedPage struct {
	Items          []json.RawMessage `json:"items"`
	Total          int               `json:"total"`
	Degraded       bool              `json:"degraded"`
	DegradedSource string            `json:"degradedSource"`
	DegradedEpoch  uint64            `json:"degradedEpoch"`
	Strategy       *strategy.Result  `json:"strategy"`
}

// TestColdCacheDeadline504 is the acceptance test for deadline
// propagation: a cold-cache recommendation request under a 10ms budget
// must come back 504 deadline_exceeded in roughly the budget, not after
// the full computation.
func TestColdCacheDeadline504(t *testing.T) {
	var delay atomic.Int64
	const compute = 150 * time.Millisecond
	delay.Store(int64(compute))
	s, comm, _ := newSlowServer(t, &delay, 10*time.Millisecond)
	agent := comm.Agents()[0]

	start := time.Now()
	code := getError(t, s, agentPath(agent, "/recommendations"), http.StatusGatewayTimeout)
	elapsed := time.Since(start)
	if code != "deadline_exceeded" {
		t.Fatalf("error code = %q, want deadline_exceeded", code)
	}
	if elapsed >= compute {
		t.Fatalf("504 took %v — handler blocked on the computation", elapsed)
	}

	// Neighbors observe the budget through the same path. A different
	// agent keeps its caches cold regardless of what the first request's
	// detached flight warms later.
	other := comm.Agents()[1]
	if code := getError(t, s, agentPath(other, "/neighbors"), http.StatusGatewayTimeout); code != "deadline_exceeded" {
		t.Fatalf("neighbors error code = %q", code)
	}
}

// TestDegradedAnswerAfterSwap warms the caches at epoch 1, swaps in a
// cold epoch, and asserts that a request missing its deadline is served
// the previous epoch's cached answer with the degraded markers set.
func TestDegradedAnswerAfterSwap(t *testing.T) {
	var delay atomic.Int64
	s, comm, eng := newSlowServer(t, &delay, 10*time.Millisecond)
	agent := comm.Agents()[0]

	// Fast pipeline: warm the recommendation and peer caches at epoch 1.
	if _, err := eng.Snapshot().Recommend(agent, 10, engine.Overrides{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Snapshot().RankedPeers(agent, engine.Overrides{}); err != nil {
		t.Fatal(err)
	}
	oldEpoch := eng.Epoch()

	// Swap installs a cold epoch and the pipeline turns slow.
	if _, err := eng.Swap(testCommunity(t, 30, 40)); err != nil {
		t.Fatal(err)
	}
	delay.Store(int64(150 * time.Millisecond))

	var out degradedPage
	if code := get(t, s, agentPath(agent, "/recommendations"), &out); code != http.StatusOK {
		t.Fatalf("status = %d, want 200 degraded", code)
	}
	if !out.Degraded || out.DegradedSource != "prev-result-cache" || out.DegradedEpoch != oldEpoch {
		t.Fatalf("degraded envelope = %+v, want prev-result-cache at epoch %d", out, oldEpoch)
	}
	if len(out.Items) == 0 {
		t.Fatal("degraded answer is empty")
	}
	if out.Strategy == nil || out.Strategy.Procedure != strategy.DegradedCache ||
		out.Strategy.Source != "prev-result-cache" || out.Strategy.Epoch != oldEpoch {
		t.Fatalf("strategy block = %+v, want degraded-cache from prev-result-cache", out.Strategy)
	}

	out = degradedPage{}
	if code := get(t, s, agentPath(agent, "/neighbors"), &out); code != http.StatusOK {
		t.Fatalf("neighbors status = %d, want 200 degraded", code)
	}
	if !out.Degraded || out.DegradedSource != "prev-peers-cache" || out.DegradedEpoch != oldEpoch {
		t.Fatalf("neighbors degraded envelope = %+v", out)
	}
	if out.Strategy == nil || out.Strategy.Procedure != strategy.DegradedCache ||
		out.Strategy.Source != "prev-peers-cache" {
		t.Fatalf("neighbors strategy block = %+v", out.Strategy)
	}
}

// reportingWriter simulates a saturated pipeline that exposes its queue
// backlog, so the server can derive Retry-After from fullness.
type reportingWriter struct{ depth, capacity int }

func (w reportingWriter) Submit(wal.Mutation) (uint64, error) { return 0, ingest.ErrOverloaded }
func (w reportingWriter) QueueStats() (int, int)              { return w.depth, w.capacity }

func TestRetryAfterDerivedFromQueueDepth(t *testing.T) {
	_, comm, eng := newTestServer(t)
	agent := comm.Agents()[0]
	cases := []struct {
		depth, capacity int
		want            string
	}{
		{0, 64, "1"},    // empty queue: transient spike
		{32, 64, "5"},   // half full: 1 + round(3.5)
		{64, 64, "8"},   // saturated: full backoff
		{9999, 64, "8"}, // clamped
		{0, 0, "1"},     // degenerate capacity
	}
	for _, tc := range cases {
		s := NewWritable(eng, reportingWriter{tc.depth, tc.capacity})
		rec := do(t, s, http.MethodPost, agentPath(agent, "/trust"),
			map[string]any{"peer": "http://x/b", "value": 0.5})
		if code := wantErrorCode(t, rec, http.StatusServiceUnavailable); code != "overloaded" {
			t.Fatalf("code = %q", code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Fatalf("depth %d/%d: Retry-After = %q, want %q", tc.depth, tc.capacity, got, tc.want)
		}
	}
}

// TestConcurrentOverloadRetryAfter hammers a saturated writer from many
// goroutines: every 503 must carry the backlog-derived Retry-After.
func TestConcurrentOverloadRetryAfter(t *testing.T) {
	_, comm, eng := newTestServer(t)
	s := NewWritable(eng, reportingWriter{depth: 64, capacity: 64})
	agent := comm.Agents()[0]

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(t, s, http.MethodPost, agentPath(agent, "/trust"),
				map[string]any{"peer": fmt.Sprintf("http://x/peer%d", i), "value": 0.5})
			if rec.Code != http.StatusServiceUnavailable {
				errs <- fmt.Errorf("client %d: status %d", i, rec.Code)
				return
			}
			if got := rec.Header().Get("Retry-After"); got != "8" {
				errs <- fmt.Errorf("client %d: Retry-After %q, want 8", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
