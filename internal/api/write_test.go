package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/wal"
)

// newWritableServer builds a server over a real ingest pipeline with
// automatic snapshot triggers disabled; tests flush explicitly.
func newWritableServer(t *testing.T) (*Server, *ingest.Pipeline, *model.Community, *engine.Engine) {
	t.Helper()
	comm := testCommunity(t, 30, 40)
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ingest.Open(eng, t.TempDir(), ingest.Config{
		SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return NewWritable(eng, p), p, comm, eng
}

// do performs a request with an optional JSON body and returns the
// recorder.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// wantAccepted decodes a 202 acknowledgement and returns the sequence.
func wantAccepted(t *testing.T, rec *httptest.ResponseRecorder) uint64 {
	t.Helper()
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202: %s", rec.Code, rec.Body.String())
	}
	var ack struct {
		Status string `json:"status"`
		Seq    uint64 `json:"seq"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatalf("bad ack body: %s", rec.Body.String())
	}
	if ack.Status != "accepted" || ack.Seq == 0 {
		t.Fatalf("ack = %+v", ack)
	}
	return ack.Seq
}

// wantErrorCode asserts an enveloped error with the given status.
func wantErrorCode(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int) string {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d: %s", rec.Code, wantStatus, rec.Body.String())
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code == "" {
		t.Fatalf("error body not enveloped: %s", rec.Body.String())
	}
	return body.Error.Code
}

func agentPath(id model.AgentID, suffix string) string {
	return "/v1/agents/" + url.PathEscape(string(id)) + suffix
}

func TestWriteTrustRoundTrip(t *testing.T) {
	s, p, comm, eng := newWritableServer(t)
	src, dst := comm.Agents()[0], comm.Agents()[1]

	seq := wantAccepted(t, do(t, s, http.MethodPost, agentPath(src, "/trust"),
		map[string]any{"peer": dst, "value": 0.9}))
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	// Durable but not yet visible; visible after flush.
	if v, ok := eng.Snapshot().Community().Trust(src, dst); ok && v == 0.9 {
		t.Fatal("write visible before epoch swap")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Snapshot().Community().Trust(src, dst); !ok || v != 0.9 {
		t.Fatalf("trust after flush = %v,%v, want 0.9", v, ok)
	}

	// Retract it again.
	wantAccepted(t, do(t, s, http.MethodDelete,
		agentPath(src, "/trust")+"?peer="+url.QueryEscape(string(dst)), nil))
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Snapshot().Community().Trust(src, dst); ok {
		t.Fatal("trust edge survived DELETE")
	}
}

func TestWriteRatingValidation(t *testing.T) {
	s, p, comm, eng := newWritableServer(t)
	agent := comm.Agents()[0]
	product := comm.Products()[0]

	// Cataloged product: accepted.
	wantAccepted(t, do(t, s, http.MethodPost, agentPath(agent, "/ratings"),
		map[string]any{"product": product, "value": -0.25}))
	// Unknown product with a checksum-failing ISBN: rejected.
	if code := wantErrorCode(t, do(t, s, http.MethodPost, agentPath(agent, "/ratings"),
		map[string]any{"product": "urn:isbn:12345", "value": 0.5}), http.StatusBadRequest); code != "invalid_argument" {
		t.Fatalf("code = %q", code)
	}
	// Unknown plain product URI: rejected.
	wantErrorCode(t, do(t, s, http.MethodPost, agentPath(agent, "/ratings"),
		map[string]any{"product": "http://nowhere/new", "value": 0.5}), http.StatusBadRequest)
	// Out-of-range value: rejected.
	wantErrorCode(t, do(t, s, http.MethodPost, agentPath(agent, "/ratings"),
		map[string]any{"product": product, "value": 3.0}), http.StatusBadRequest)
	// Malformed body: rejected.
	wantErrorCode(t, do(t, s, http.MethodPost, agentPath(agent, "/ratings"),
		map[string]any{"produkt": "typo"}), http.StatusBadRequest)

	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Snapshot().Community().Agent(agent).Ratings[product]; !ok || v != -0.25 {
		t.Fatalf("rating after flush = %v,%v, want -0.25", v, ok)
	}

	// Retract needs the product query parameter.
	wantErrorCode(t, do(t, s, http.MethodDelete, agentPath(agent, "/ratings"), nil),
		http.StatusBadRequest)
	wantAccepted(t, do(t, s, http.MethodDelete,
		agentPath(agent, "/ratings")+"?product="+url.QueryEscape(string(product)), nil))
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Snapshot().Community().Agent(agent).Ratings[product]; ok {
		t.Fatal("rating survived DELETE")
	}
}

func TestWriteUpsertAgent(t *testing.T) {
	s, p, _, eng := newWritableServer(t)

	wantAccepted(t, do(t, s, http.MethodPost, "/v1/agents",
		map[string]any{"id": "http://people/new", "name": "Newcomer"}))
	wantErrorCode(t, do(t, s, http.MethodPost, "/v1/agents",
		map[string]any{"id": "", "name": "anon"}), http.StatusBadRequest)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	a := eng.Snapshot().Community().Agent("http://people/new")
	if a == nil || a.Name != "Newcomer" {
		t.Fatalf("upserted agent = %+v", a)
	}
	// The new agent can now receive trust writes.
	wantAccepted(t, do(t, s, http.MethodPost, agentPath("http://people/new", "/trust"),
		map[string]any{"peer": eng.Snapshot().Community().Agents()[0], "value": 0.5}))
}

func TestWriteUnknownAgent404(t *testing.T) {
	s, _, _, _ := newWritableServer(t)
	if code := wantErrorCode(t, do(t, s, http.MethodPost, agentPath("http://nobody/here", "/trust"),
		map[string]any{"peer": "http://x/y", "value": 0.5}), http.StatusNotFound); code != "not_found" {
		t.Fatalf("code = %q", code)
	}
}

func TestWriteMethodGates(t *testing.T) {
	// Read-only server: every write bounces with 405.
	ro, comm, _ := newTestServer(t)
	agent := comm.Agents()[0]
	wantErrorCode(t, do(t, ro, http.MethodPost, "/v1/agents",
		map[string]any{"id": "http://x/a"}), http.StatusMethodNotAllowed)
	wantErrorCode(t, do(t, ro, http.MethodPost, agentPath(agent, "/trust"),
		map[string]any{"peer": "http://x/b", "value": 1}), http.StatusMethodNotAllowed)

	// Writable server: writes to read endpoints still bounce, GET on the
	// write subresources bounces, unsupported methods bounce.
	s, _, comm2, _ := newWritableServer(t)
	agent2 := comm2.Agents()[0]
	wantErrorCode(t, do(t, s, http.MethodPost, "/v1/healthz", nil), http.StatusMethodNotAllowed)
	wantErrorCode(t, do(t, s, http.MethodPost, "/v1/stats", nil), http.StatusMethodNotAllowed)
	wantErrorCode(t, do(t, s, http.MethodDelete, agentPath(agent2, "/neighbors"), nil), http.StatusMethodNotAllowed)
	wantErrorCode(t, do(t, s, http.MethodGet, agentPath(agent2, "/trust"), nil), http.StatusMethodNotAllowed)
	wantErrorCode(t, do(t, s, http.MethodPut, agentPath(agent2, "/trust"), nil), http.StatusMethodNotAllowed)
	// Reads still work on the writable server.
	if rec := do(t, s, http.MethodGet, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/healthz on writable server = %d", rec.Code)
	}
}

// overloadedWriter simulates a saturated pipeline.
type overloadedWriter struct{}

func (overloadedWriter) Submit(wal.Mutation) (uint64, error) { return 0, ingest.ErrOverloaded }

func TestWriteOverloaded503(t *testing.T) {
	_, comm, eng := newTestServer(t)
	s := NewWritable(eng, overloadedWriter{})
	agent := comm.Agents()[0]
	rec := do(t, s, http.MethodPost, agentPath(agent, "/trust"),
		map[string]any{"peer": "http://x/b", "value": 0.5})
	if code := wantErrorCode(t, rec, http.StatusServiceUnavailable); code != "overloaded" {
		t.Fatalf("code = %q", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 overloaded without Retry-After")
	}
}
