// Package api exposes the recommender over a JSON HTTP API — the
// deployment surface a §4-style installation offers its own user
// interface once the crawler has materialized a community. Endpoints are
// read-only (all mutation happens by crawling the Semantic Web):
//
//	GET /v1/stats                          community + taxonomy statistics
//	GET /v1/agents?limit=N                 agents by trust out-degree
//	GET /v1/agents/{uri}                   one agent's statements
//	GET /v1/agents/{uri}/neighbors?n=N     synthesized peer ranks
//	GET /v1/agents/{uri}/profile?n=N       top taxonomy interests
//	GET /v1/agents/{uri}/recommendations?n=N&novel=1&theta=0.4
//	GET /v1/products/{id}                  catalog entry
//	GET /v1/topics/{path}                  products in a taxonomy branch
//
// Agent URIs and product IDs arrive URL-escaped in the path. Errors are
// JSON objects {"error": "..."} with conventional status codes.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"swrec/internal/core"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/taxonomy"
)

// Server wraps one community and one recommender configuration.
type Server struct {
	comm *model.Community
	opt  core.Options
	mux  *http.ServeMux
}

// New creates the API server. The options are validated eagerly by
// building one recommender.
func New(comm *model.Community, opt core.Options) (*Server, error) {
	if _, err := core.New(comm, opt); err != nil {
		return nil, err
	}
	s := &Server{comm: comm, opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/agents", s.handleAgents)
	s.mux.HandleFunc("/v1/agents/", s.handleAgentSubtree)
	s.mux.HandleFunc("/v1/products/", s.handleProduct)
	s.mux.HandleFunc("/v1/topics/", s.handleTopic)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "read-only API")
		return
	}
	s.mux.ServeHTTP(w, r)
}

// recommender builds a fresh pipeline; profile caches live per request,
// which keeps results consistent with concurrent community updates by a
// background crawler.
func (s *Server) recommender() *core.Recommender {
	rec, err := core.New(s.comm, s.opt)
	if err != nil {
		// Options were validated in New; a failure here means the
		// community changed incompatibly, which has no recovery.
		panic(err)
	}
	return rec
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// intParam reads a positive integer query parameter with a default.
func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type stats struct {
		Community model.Stats     `json:"community"`
		Taxonomy  *taxonomy.Stats `json:"taxonomy,omitempty"`
	}
	out := stats{Community: s.comm.ComputeStats()}
	if tax := s.comm.Taxonomy(); tax != nil {
		ts := tax.ComputeStats()
		out.Taxonomy = &ts
	}
	writeJSON(w, out)
}

// agentSummary is the list view of one agent.
type agentSummary struct {
	ID       model.AgentID `json:"id"`
	Name     string        `json:"name,omitempty"`
	TrustOut int           `json:"trustOut"`
	Ratings  int           `json:"ratings"`
}

func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	limit := intParam(r, "limit", 25)
	out := make([]agentSummary, 0, s.comm.NumAgents())
	for _, id := range s.comm.Agents() {
		a := s.comm.Agent(id)
		out = append(out, agentSummary{ID: id, Name: a.Name,
			TrustOut: len(a.Trust), Ratings: len(a.Ratings)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TrustOut != out[j].TrustOut {
			return out[i].TrustOut > out[j].TrustOut
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, out)
}

// handleAgentSubtree routes /v1/agents/{uri}[/neighbors|/profile|/recommendations].
func (s *Server) handleAgentSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/agents/")
	var action string
	for _, suffix := range []string{"/neighbors", "/profile", "/recommendations"} {
		if strings.HasSuffix(rest, suffix) {
			action = suffix[1:]
			rest = strings.TrimSuffix(rest, suffix)
			break
		}
	}
	uri, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed agent URI")
		return
	}
	id := model.AgentID(uri)
	a := s.comm.Agent(id)
	if a == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown agent %s", uri))
		return
	}
	switch action {
	case "neighbors":
		s.serveNeighbors(w, r, id)
	case "profile":
		s.serveProfile(w, r, a)
	case "recommendations":
		s.serveRecommendations(w, r, id)
	default:
		type agentDetail struct {
			agentSummary
			Trust   []model.TrustStatement  `json:"trust"`
			Ratings []model.RatingStatement `json:"ratingStatements"`
		}
		writeJSON(w, agentDetail{
			agentSummary: agentSummary{ID: id, Name: a.Name,
				TrustOut: len(a.Trust), Ratings: len(a.Ratings)},
			Trust:   a.TrustedPeers(),
			Ratings: a.RatedProducts(),
		})
	}
}

func (s *Server) serveNeighbors(w http.ResponseWriter, r *http.Request, id model.AgentID) {
	peers, err := s.recommender().RankedPeers(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrUnknownAgent) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	if n := intParam(r, "n", 25); n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	writeJSON(w, peers)
}

func (s *Server) serveProfile(w http.ResponseWriter, r *http.Request, a *model.Agent) {
	tax := s.comm.Taxonomy()
	if tax == nil {
		writeError(w, http.StatusConflict, "community has no taxonomy")
		return
	}
	g := profile.New(tax)
	prof := g.Profile(a, s.comm)
	type topicScore struct {
		Topic string  `json:"topic"`
		Score float64 `json:"score"`
	}
	var out []topicScore
	for _, e := range prof.TopK(intParam(r, "n", 15)) {
		out = append(out, topicScore{
			Topic: tax.QualifiedName(taxonomy.Topic(e.Key)),
			Score: e.Value,
		})
	}
	writeJSON(w, out)
}

func (s *Server) serveRecommendations(w http.ResponseWriter, r *http.Request, id model.AgentID) {
	opt := s.opt
	if r.URL.Query().Get("novel") == "1" {
		opt.Content = core.NovelCategories
	}
	rec, err := core.New(s.comm, opt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	n := intParam(r, "n", 10)
	theta := 0.0
	if v := r.URL.Query().Get("theta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "theta must be in [0,1]")
			return
		}
		theta = f
	}
	// With diversification, rank a deeper candidate pool first.
	fetchN := n
	if theta > 0 && n > 0 {
		fetchN = n * 5
	}
	recs, err := rec.Recommend(id, fetchN)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrUnknownAgent) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	if theta > 0 {
		recs = rec.Diversify(recs, n, theta)
	}
	type recOut struct {
		core.Recommendation
		Title string `json:"title,omitempty"`
	}
	out := make([]recOut, 0, len(recs))
	for _, rc := range recs {
		ro := recOut{Recommendation: rc}
		if p := s.comm.Product(rc.Product); p != nil {
			ro.Title = p.Title
		}
		out = append(out, ro)
	}
	writeJSON(w, out)
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/products/")
	idRaw, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed product ID")
		return
	}
	p := s.comm.Product(model.ProductID(idRaw))
	if p == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown product %s", idRaw))
		return
	}
	type productOut struct {
		ID     model.ProductID `json:"id"`
		Title  string          `json:"title,omitempty"`
		ISBN   string          `json:"isbn,omitempty"`
		Topics []string        `json:"topics,omitempty"`
	}
	out := productOut{ID: p.ID, Title: p.Title, ISBN: p.ISBN}
	if tax := s.comm.Taxonomy(); tax != nil {
		for _, d := range p.Topics {
			out.Topics = append(out.Topics, tax.QualifiedName(d))
		}
	}
	writeJSON(w, out)
}

// handleTopic browses a taxonomy branch: products whose descriptors fall
// into the topic (by qualified path, root name included) or below it.
func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	tax := s.comm.Taxonomy()
	if tax == nil {
		writeError(w, http.StatusConflict, "community has no taxonomy")
		return
	}
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/topics/")
	path, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed topic path")
		return
	}
	d, ok := tax.Lookup(path)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown topic %s", path))
		return
	}
	ix := index.Build(s.comm)
	pids := ix.Subtree(d)
	if n := intParam(r, "n", 50); n > 0 && len(pids) > n {
		pids = pids[:n]
	}
	type entry struct {
		ID    model.ProductID `json:"id"`
		Title string          `json:"title,omitempty"`
	}
	type topicOut struct {
		Topic    string  `json:"topic"`
		Subtree  int     `json:"subtreeProducts"`
		Products []entry `json:"products"`
	}
	out := topicOut{Topic: tax.QualifiedName(d), Subtree: ix.Count(d)}
	for _, pid := range pids {
		e := entry{ID: pid}
		if p := s.comm.Product(pid); p != nil {
			e.Title = p.Title
		}
		out.Products = append(out.Products, e)
	}
	writeJSON(w, out)
}
