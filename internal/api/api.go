// Package api exposes the recommender over a JSON HTTP API — the
// deployment surface a §4-style installation offers its own user
// interface once the crawler has materialized a community. The server is
// a thin handler layer over internal/engine: every request pins one
// immutable snapshot, so responses are consistent even while a
// background crawler publishes updated views via Engine.Swap. Endpoints
// are read-only (all mutation happens by crawling the Semantic Web):
//
//	GET /v1/healthz                        serving status: epoch, counts, uptime
//	GET /v1/metrics                        expvar (engine cache + request counters)
//	GET /v1/stats                          community + taxonomy statistics
//	GET /v1/agents?offset=0&limit=25       agent directory by trust out-degree
//	GET /v1/agents/{uri}                   one agent's statements
//	GET /v1/agents/{uri}/neighbors?n=25&metric=&alpha=&measure=
//	GET /v1/agents/{uri}/profile?n=15      top taxonomy interests
//	GET /v1/agents/{uri}/recommendations?n=10&novel=1&theta=0.4&metric=&alpha=&measure=
//	GET /v1/products/{id}                  catalog entry
//	GET /v1/topics/{path}?offset=0&limit=50  products in a taxonomy branch
//
// Agent URIs and product IDs arrive URL-escaped in the path.
//
// Responses use a uniform envelope (the breaking v1 revision noted in
// CHANGES.md): errors are {"error": {"code", "message"}} with
// machine-readable codes (invalid_argument, not_found, no_taxonomy,
// method_not_allowed, internal); list-shaped responses are
// {"items": [...], "total": N} with real offset/limit pagination on
// /v1/agents and /v1/topics/{path}.
//
// Per-request pipeline overrides on neighbors and recommendations —
// metric=appleseed|advogato|pathtrust|none, alpha=[0,1],
// measure=pearson|cosine — are validated eagerly (400 invalid_argument)
// and served from override-specific engine caches.
package api

import (
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"encoding/json"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// apiStats aggregates request counters across all servers in the
// process, published as "swrec_api" (requests, request_ns, status_NNN).
var apiStats = expvar.NewMap("swrec_api")

// Server is the HTTP handler layer over one serving engine.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

// New creates the API server over an already validated engine.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.Handle("/v1/metrics", expvar.Handler())
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/agents", s.handleAgents)
	s.mux.HandleFunc("/v1/agents/", s.handleAgentSubtree)
	s.mux.HandleFunc("/v1/products/", s.handleProduct)
	s.mux.HandleFunc("/v1/topics/", s.handleTopic)
	return s
}

// statusRecorder captures the status code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler, instrumenting every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(rec, http.StatusMethodNotAllowed, "method_not_allowed", "read-only API")
	} else {
		s.mux.ServeHTTP(rec, r)
	}
	apiStats.Add("requests", 1)
	apiStats.Add("request_ns", time.Since(start).Nanoseconds())
	apiStats.Add(fmt.Sprintf("status_%d", rec.status), 1)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// page is the uniform list envelope. Offset/Limit echo the effective
// pagination window; endpoints without windowed pagination omit them.
type page struct {
	Items  any  `json:"items"`
	Total  int  `json:"total"`
	Offset *int `json:"offset,omitempty"`
	Limit  *int `json:"limit,omitempty"`
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var body errorBody
	body.Error.Code, body.Error.Message = code, msg
	_ = json.NewEncoder(w).Encode(body)
}

// writeList emits the items envelope without a pagination window.
func writeList(w http.ResponseWriter, items any, total int) {
	writeJSON(w, page{Items: items, Total: total})
}

// writePage emits the items envelope with its pagination window.
func writePage(w http.ResponseWriter, items any, total, offset, limit int) {
	writeJSON(w, page{Items: items, Total: total, Offset: &offset, Limit: &limit})
}

// intParam parses a non-negative integer query parameter. A malformed or
// negative value is a validation error, not a silent default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}

// pageParams reads the offset/limit pagination window. limit = 0 means
// "no cap" and pages to the end.
func pageParams(r *http.Request, defLimit int) (offset, limit int, err error) {
	if offset, err = intParam(r, "offset", 0); err != nil {
		return 0, 0, err
	}
	if limit, err = intParam(r, "limit", defLimit); err != nil {
		return 0, 0, err
	}
	return offset, limit, nil
}

// window applies the pagination window to a slice of length n, returning
// the clamped [lo, hi) bounds.
func window(n, offset, limit int) (lo, hi int) {
	if offset > n {
		offset = n
	}
	hi = n
	if limit > 0 && offset+limit < n {
		hi = offset + limit
	}
	return offset, hi
}

// overrides parses the per-request pipeline override parameters shared
// by the neighbors and recommendations endpoints.
func parseOverrides(r *http.Request) (engine.Overrides, error) {
	var ov engine.Overrides
	q := r.URL.Query()
	if v := q.Get("metric"); v != "" {
		var m core.Metric
		switch v {
		case "appleseed":
			m = core.Appleseed
		case "advogato":
			m = core.Advogato
		case "pathtrust":
			m = core.PathTrust
		case "none":
			m = core.NoTrust
		default:
			return ov, fmt.Errorf("metric must be appleseed|advogato|pathtrust|none, got %q", v)
		}
		ov.Metric = &m
	}
	if v := q.Get("alpha"); v != "" {
		a, err := strconv.ParseFloat(v, 64)
		if err != nil || a < 0 || a > 1 {
			return ov, fmt.Errorf("alpha must be in [0,1], got %q", v)
		}
		ov.Alpha = &a
	}
	if v := q.Get("measure"); v != "" {
		var m cf.Measure
		switch v {
		case "pearson":
			m = cf.Pearson
		case "cosine":
			m = cf.Cosine
		default:
			return ov, fmt.Errorf("measure must be pearson|cosine, got %q", v)
		}
		ov.Measure = &m
	}
	switch v := q.Get("novel"); v {
	case "", "0":
	case "1":
		c := core.NovelCategories
		ov.Content = &c
	default:
		return ov, fmt.Errorf("novel must be 0 or 1, got %q", v)
	}
	return ov, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	comm := snap.Community()
	writeJSON(w, map[string]any{
		"status":        "ok",
		"epoch":         snap.Epoch(),
		"agents":        comm.NumAgents(),
		"products":      comm.NumProducts(),
		"uptimeSeconds": s.eng.Uptime().Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	comm := snap.Community()
	type stats struct {
		Epoch     uint64          `json:"epoch"`
		Community model.Stats     `json:"community"`
		Taxonomy  *taxonomy.Stats `json:"taxonomy,omitempty"`
	}
	out := stats{Epoch: snap.Epoch(), Community: comm.ComputeStats()}
	if tax := comm.Taxonomy(); tax != nil {
		ts := tax.ComputeStats()
		out.Taxonomy = &ts
	}
	writeJSON(w, out)
}

// agentSummary is the list view of one agent.
type agentSummary struct {
	ID       model.AgentID `json:"id"`
	Name     string        `json:"name,omitempty"`
	TrustOut int           `json:"trustOut"`
	Ratings  int           `json:"ratings"`
}

func summarize(comm *model.Community, id model.AgentID) agentSummary {
	a := comm.Agent(id)
	return agentSummary{ID: id, Name: a.Name,
		TrustOut: len(a.Trust), Ratings: len(a.Ratings)}
}

func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r, 25)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	snap := s.eng.Snapshot()
	ids := snap.AgentsByTrustOut()
	lo, hi := window(len(ids), offset, limit)
	items := make([]agentSummary, 0, hi-lo)
	for _, id := range ids[lo:hi] {
		items = append(items, summarize(snap.Community(), id))
	}
	writePage(w, items, len(ids), offset, limit)
}

// handleAgentSubtree routes /v1/agents/{uri}[/neighbors|/profile|/recommendations].
func (s *Server) handleAgentSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/agents/")
	var action string
	for _, suffix := range []string{"/neighbors", "/profile", "/recommendations"} {
		if strings.HasSuffix(rest, suffix) {
			action = suffix[1:]
			rest = strings.TrimSuffix(rest, suffix)
			break
		}
	}
	uri, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed agent URI")
		return
	}
	snap := s.eng.Snapshot()
	id := model.AgentID(uri)
	a := snap.Community().Agent(id)
	if a == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown agent %s", uri))
		return
	}
	switch action {
	case "neighbors":
		s.serveNeighbors(w, r, snap, id)
	case "profile":
		s.serveProfile(w, r, snap, id)
	case "recommendations":
		s.serveRecommendations(w, r, snap, id)
	default:
		type agentDetail struct {
			agentSummary
			Trust   []model.TrustStatement  `json:"trust"`
			Ratings []model.RatingStatement `json:"ratingStatements"`
		}
		writeJSON(w, agentDetail{
			agentSummary: summarize(snap.Community(), id),
			Trust:        a.TrustedPeers(),
			Ratings:      a.RatedProducts(),
		})
	}
}

func (s *Server) serveNeighbors(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	ov, err := parseOverrides(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	n, err := intParam(r, "n", 25)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	peers, err := snap.RankedPeers(id, ov)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	total := len(peers)
	if n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	writeList(w, peers, total)
}

func (s *Server) serveProfile(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	n, err := intParam(r, "n", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	prof, err := snap.Profile(id)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	tax := snap.Community().Taxonomy()
	type topicScore struct {
		Topic string  `json:"topic"`
		Score float64 `json:"score"`
	}
	items := make([]topicScore, 0, n)
	for _, e := range prof.TopK(n) {
		items = append(items, topicScore{
			Topic: tax.QualifiedName(taxonomy.Topic(e.Key)),
			Score: e.Value,
		})
	}
	writeList(w, items, len(prof))
}

func (s *Server) serveRecommendations(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	ov, err := parseOverrides(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	theta := 0.0
	if v := r.URL.Query().Get("theta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "theta must be in [0,1]")
			return
		}
		theta = f
	}
	// With diversification, rank a deeper candidate pool first.
	fetchN := n
	if theta > 0 && n > 0 {
		fetchN = n * 5
	}
	recs, err := snap.Recommend(id, fetchN, ov)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if theta > 0 {
		rec, err := snap.RecommenderFor(ov)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		recs = rec.Diversify(recs, n, theta)
	}
	type recOut struct {
		core.Recommendation
		Title string `json:"title,omitempty"`
	}
	items := make([]recOut, 0, len(recs))
	for _, rc := range recs {
		ro := recOut{Recommendation: rc}
		if p := snap.Community().Product(rc.Product); p != nil {
			ro.Title = p.Title
		}
		items = append(items, ro)
	}
	writeList(w, items, len(items))
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/products/")
	idRaw, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed product ID")
		return
	}
	snap := s.eng.Snapshot()
	p := snap.Community().Product(model.ProductID(idRaw))
	if p == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown product %s", idRaw))
		return
	}
	type productOut struct {
		ID     model.ProductID `json:"id"`
		Title  string          `json:"title,omitempty"`
		ISBN   string          `json:"isbn,omitempty"`
		Topics []string        `json:"topics,omitempty"`
	}
	out := productOut{ID: p.ID, Title: p.Title, ISBN: p.ISBN}
	if tax := snap.Community().Taxonomy(); tax != nil {
		for _, d := range p.Topics {
			out.Topics = append(out.Topics, tax.QualifiedName(d))
		}
	}
	writeJSON(w, out)
}

// handleTopic browses a taxonomy branch: products whose descriptors fall
// into the topic (by qualified path, root name included) or below it,
// served from the snapshot's per-branch cache and paged with
// offset/limit.
func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	tax := snap.Community().Taxonomy()
	if tax == nil {
		writeError(w, http.StatusConflict, "no_taxonomy", "community has no taxonomy")
		return
	}
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/topics/")
	path, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed topic path")
		return
	}
	offset, limit, err := pageParams(r, 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	d, ok := tax.Lookup(path)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown topic %s", path))
		return
	}
	pids := snap.Subtree(d)
	total := len(pids)
	lo, hi := window(total, offset, limit)
	type entry struct {
		ID    model.ProductID `json:"id"`
		Title string          `json:"title,omitempty"`
	}
	type topicPage struct {
		Topic  string  `json:"topic"`
		Items  []entry `json:"items"`
		Total  int     `json:"total"`
		Offset int     `json:"offset"`
		Limit  int     `json:"limit"`
	}
	out := topicPage{Topic: tax.QualifiedName(d), Total: total, Offset: offset, Limit: limit,
		Items: make([]entry, 0, hi-lo)}
	for _, pid := range pids[lo:hi] {
		e := entry{ID: pid}
		if p := snap.Community().Product(pid); p != nil {
			e.Title = p.Title
		}
		out.Items = append(out.Items, e)
	}
	writeJSON(w, out)
}

// writeEngineError maps engine/core errors onto the error envelope.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrUnknownAgent):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, engine.ErrNoTaxonomy):
		writeError(w, http.StatusConflict, "no_taxonomy", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}
