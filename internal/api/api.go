// Package api exposes the recommender over a JSON HTTP API — the
// deployment surface a §4-style installation offers its own user
// interface once the crawler has materialized a community. The server is
// a thin handler layer over internal/engine: every request pins one
// immutable snapshot, so responses are consistent even while a
// background crawler publishes updated views via Engine.Swap. Read
// endpoints:
//
//	GET /v1/healthz                        serving status: epoch, counts, uptime
//	GET /v1/metrics                        expvar (engine cache + request counters)
//	GET /v1/stats                          community + taxonomy statistics
//	GET /v1/strategies                     the configured strategy ladder
//	GET /v1/agents?offset=0&limit=25       agent directory by trust out-degree
//	GET /v1/agents/{uri}                   one agent's statements
//	GET /v1/agents/{uri}/neighbors?n=25&metric=&alpha=&measure=&strategy=
//	GET /v1/agents/{uri}/profile?n=15      top taxonomy interests
//	GET /v1/agents/{uri}/recommendations?n=10&novel=1&theta=0.4&metric=&alpha=&measure=&strategy=
//	GET /v1/products/{id}                  catalog entry
//	GET /v1/topics/{path}?offset=0&limit=50  products in a taxonomy branch
//
// A server built with NewWritable additionally accepts first-party
// mutations through the durable ingest pipeline (internal/ingest); a
// server built with New stays read-only and answers 405 to every write:
//
//	POST   /v1/agents                      {"id", "name"} upsert an agent
//	POST   /v1/agents/{uri}/trust          {"peer", "value"} assert trust in [-1,1]
//	DELETE /v1/agents/{uri}/trust?peer=    retract a trust edge
//	POST   /v1/agents/{uri}/ratings        {"product", "value"} rate in [-1,1]
//	DELETE /v1/agents/{uri}/ratings?product=  retract a rating
//
// Writes are validated against the pinned snapshot (rating targets must
// be cataloged products or checksum-valid urn:isbn: URNs), appended to
// the write-ahead log, and acknowledged with 202 Accepted and the
// assigned WAL sequence number once durable. Visibility is at the next
// epoch swap, so a read-after-write may briefly see the previous state;
// a full ingest queue fails fast with 503 overloaded.
//
// Agent URIs and product IDs arrive URL-escaped in the path.
//
// Responses use a uniform envelope (the breaking v1 revision noted in
// CHANGES.md): errors are {"error": {"code", "message"}} with
// machine-readable codes (invalid_argument, not_found, no_taxonomy,
// method_not_allowed, internal); list-shaped responses are
// {"items": [...], "total": N} with real offset/limit pagination on
// /v1/agents and /v1/topics/{path}.
//
// Per-request pipeline overrides on neighbors and recommendations —
// metric=appleseed|advogato|pathtrust|none, alpha=[0,1],
// measure=pearson|cosine — are validated eagerly (400 invalid_argument)
// and served from override-specific engine caches.
//
// Neighbors and recommendations are answered through the engine's
// strategy ladder (internal/strategy): every response carries a
// "strategy" provenance block naming the procedure that produced it,
// the full rung attempt trace, and the answering epoch. The strategy=
// parameter pins one rung (strategy=popularity) or excludes rungs
// (strategy=-popularity,-degraded-cache), validated like the other
// overrides; GET /v1/strategies lists the configured ladder. The PR 3
// top-level degraded/degradedSource/degradedEpoch fields are deprecated
// in favor of the strategy block and are emitted only when the server
// runs with Config.CompatDegraded (swrecd -compat-degraded).
package api

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"encoding/json"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/strategy"
	"swrec/internal/taxonomy"
	"swrec/internal/wal"
)

// apiStats aggregates request counters across all servers in the
// process, published as "swrec_api" (requests, request_ns, status_NNN).
var apiStats = expvar.NewMap("swrec_api")

// httpStats breaks the request counters down per endpoint class,
// published as "swrec_http". Keys are <endpoint>_requests,
// <endpoint>_errors (status ≥ 500), and one disjoint latency bucket
// <endpoint>_le_1ms | _le_10ms | _le_100ms | _le_1s | _gt_1s per
// request (le_10ms counts service times in (1ms, 10ms], not a
// cumulative histogram). The endpoint classes match the load harness's
// endpoint names, so a BENCH_load.json report can be cross-checked
// against /v1/metrics counts.
var httpStats = expvar.NewMap("swrec_http")

// endpointClass maps one request onto its swrec_http counter family.
// It mirrors the mux plus handleAgentSubtree's suffix routing (the ID
// segment of /v1/agents/{id} is an escaped URI, so the subtree action
// is the suffix of the escaped path).
func endpointClass(method, escapedPath string) string {
	switch escapedPath {
	case "/v1/healthz":
		return "healthz"
	case "/v1/metrics":
		return "metrics"
	case "/v1/stats":
		return "stats"
	case "/v1/strategies":
		return "strategies"
	case "/v1/agents":
		if method == http.MethodPost {
			return "write_join"
		}
		return "agents"
	}
	switch {
	case strings.HasPrefix(escapedPath, "/v1/agents/"):
		rest := strings.TrimPrefix(escapedPath, "/v1/agents/")
		switch {
		case strings.HasSuffix(rest, "/recommendations"):
			return "recommendations"
		case strings.HasSuffix(rest, "/neighbors"):
			return "neighbors"
		case strings.HasSuffix(rest, "/profile"):
			return "profile"
		case strings.HasSuffix(rest, "/trust"):
			if method == http.MethodDelete {
				return "delete_trust"
			}
			return "write_trust"
		case strings.HasSuffix(rest, "/ratings"):
			if method == http.MethodDelete {
				return "delete_rating"
			}
			return "write_rating"
		}
		return "agent"
	case strings.HasPrefix(escapedPath, "/v1/products/"):
		return "product"
	case strings.HasPrefix(escapedPath, "/v1/topics/"):
		return "topic"
	}
	return "other"
}

// latencyBucket picks the one swrec_http bucket suffix d falls in.
func latencyBucket(d time.Duration) string {
	switch {
	case d <= time.Millisecond:
		return "le_1ms"
	case d <= 10*time.Millisecond:
		return "le_10ms"
	case d <= 100*time.Millisecond:
		return "le_100ms"
	case d <= time.Second:
		return "le_1s"
	default:
		return "gt_1s"
	}
}

// Writer is the slice of the ingest pipeline the API needs: durable
// acknowledgement of one validated mutation. *ingest.Pipeline satisfies
// it; tests may substitute fakes.
type Writer interface {
	Submit(m wal.Mutation) (uint64, error)
}

// QueueReporter is the optional Writer extension the overload path uses
// to derive a Retry-After hint from the actual backlog instead of a
// constant. *ingest.Pipeline satisfies it.
type QueueReporter interface {
	QueueStats() (depth, capacity int)
}

// Config tunes the server's resilience behavior.
type Config struct {
	// ReadBudget caps the server-side computation time of every read
	// request, compounding with whatever deadline the client's own
	// context carries (the tighter of the two wins). A request that
	// misses the budget gets a degraded cached answer when one exists,
	// else 504 deadline_exceeded. 0 means only the client's context
	// bounds the request.
	ReadBudget time.Duration
	// CompatDegraded re-emits the deprecated top-level degraded /
	// degradedSource / degradedEpoch envelope fields alongside the
	// strategy block for one release, for clients that have not migrated
	// to strategy.degraded yet.
	CompatDegraded bool
}

// Server is the HTTP handler layer over one serving engine.
type Server struct {
	eng    *engine.Engine
	writer Writer // nil = read-only surface
	cfg    Config
	mux    *http.ServeMux
}

// New creates a read-only API server over an already validated engine.
func New(eng *engine.Engine) *Server { return NewWithConfig(eng, nil, Config{}) }

// NewWritable creates the API server with the write endpoints backed by
// w (normally the *ingest.Pipeline). A nil w yields a read-only server.
func NewWritable(eng *engine.Engine, w Writer) *Server { return NewWithConfig(eng, w, Config{}) }

// NewWithConfig creates the API server with explicit resilience
// configuration.
func NewWithConfig(eng *engine.Engine, w Writer, cfg Config) *Server {
	s := &Server{eng: eng, writer: w, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/agents", s.handleAgents)
	s.mux.HandleFunc("/v1/agents/", s.handleAgentSubtree)
	s.mux.HandleFunc("/v1/products/", s.handleProduct)
	s.mux.HandleFunc("/v1/topics/", s.handleTopic)
	return s
}

// statusRecorder captures the status code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler, instrumenting every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.mux.ServeHTTP(rec, r)
	case http.MethodPost, http.MethodDelete:
		if s.writer == nil {
			writeError(rec, http.StatusMethodNotAllowed, "method_not_allowed", "read-only API")
		} else {
			s.mux.ServeHTTP(rec, r)
		}
	default:
		writeError(rec, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not supported", r.Method))
	}
	elapsed := time.Since(start)
	apiStats.Add("requests", 1)
	apiStats.Add("request_ns", elapsed.Nanoseconds())
	apiStats.Add(fmt.Sprintf("status_%d", rec.status), 1)

	ep := endpointClass(r.Method, r.URL.EscapedPath())
	httpStats.Add(ep+"_requests", 1)
	if rec.status >= 500 {
		httpStats.Add(ep+"_errors", 1)
	}
	httpStats.Add(ep+"_"+latencyBucket(elapsed), 1)
}

// requestCtx derives the context bounding one read request: the
// client's own context (disconnect, client-set deadline) tightened by
// the server's ReadBudget when one is configured.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.ReadBudget > 0 {
		return context.WithTimeout(r.Context(), s.cfg.ReadBudget)
	}
	return r.Context(), func() {}
}

// deadlineHit reports whether err means the request ran out of time
// rather than failing on its own terms.
func deadlineHit(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// requireRead rejects write methods on read-only endpoints. With a
// writer configured the global gate admits POST/DELETE, so each read
// handler applies this guard.
func requireRead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method))
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	expvar.Handler().ServeHTTP(w, r)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// page is the uniform list envelope. Offset/Limit echo the effective
// pagination window; endpoints without windowed pagination omit them.
// Strategy is the provenance block of ladder-answered endpoints
// (neighbors, recommendations): the procedure that produced the answer,
// the rung attempt trace, and the answering epoch — including the
// degraded marker when the bottom rung served from a previous-epoch
// cache.
//
// Deprecated: the top-level Degraded / DegradedSource / DegradedEpoch
// fields duplicate strategy.degraded / strategy.source / strategy.epoch
// and are emitted only under Config.CompatDegraded; they will be removed
// next release.
type page struct {
	Items          any              `json:"items"`
	Total          int              `json:"total"`
	Offset         *int             `json:"offset,omitempty"`
	Limit          *int             `json:"limit,omitempty"`
	Strategy       *strategy.Result `json:"strategy,omitempty"`
	Degraded       bool             `json:"degraded,omitempty"`
	DegradedSource string           `json:"degradedSource,omitempty"`
	DegradedEpoch  uint64           `json:"degradedEpoch,omitempty"`
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var body errorBody
	body.Error.Code, body.Error.Message = code, msg
	_ = json.NewEncoder(w).Encode(body)
}

// writeList emits the items envelope without a pagination window. All
// provenance-carrying responses route through here (res non-nil), so the
// strategy block — and its deprecated top-level mirror under compat —
// is attached in exactly one place.
func (s *Server) writeList(w http.ResponseWriter, items any, total int, res *strategy.Result) {
	p := page{Items: items, Total: total, Strategy: res}
	if res != nil && res.Degraded && s.cfg.CompatDegraded {
		p.Degraded = true
		p.DegradedSource = res.Source
		p.DegradedEpoch = res.Epoch
	}
	writeJSON(w, p)
}

// writePage emits the items envelope with its pagination window.
func writePage(w http.ResponseWriter, items any, total, offset, limit int) {
	writeJSON(w, page{Items: items, Total: total, Offset: &offset, Limit: &limit})
}

// intParam parses a non-negative integer query parameter. A malformed or
// negative value is a validation error, not a silent default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}

// pageParams reads the offset/limit pagination window. limit = 0 means
// "no cap" and pages to the end.
func pageParams(r *http.Request, defLimit int) (offset, limit int, err error) {
	if offset, err = intParam(r, "offset", 0); err != nil {
		return 0, 0, err
	}
	if limit, err = intParam(r, "limit", defLimit); err != nil {
		return 0, 0, err
	}
	return offset, limit, nil
}

// window applies the pagination window to a slice of length n, returning
// the clamped [lo, hi) bounds.
func window(n, offset, limit int) (lo, hi int) {
	if offset > n {
		offset = n
	}
	hi = n
	if limit > 0 && offset+limit < n {
		hi = offset + limit
	}
	return offset, hi
}

// overrides parses the per-request pipeline override parameters shared
// by the neighbors and recommendations endpoints.
func parseOverrides(r *http.Request) (engine.Overrides, error) {
	var ov engine.Overrides
	q := r.URL.Query()
	if v := q.Get("metric"); v != "" {
		var m core.Metric
		switch v {
		case "appleseed":
			m = core.Appleseed
		case "advogato":
			m = core.Advogato
		case "pathtrust":
			m = core.PathTrust
		case "none":
			m = core.NoTrust
		default:
			return ov, fmt.Errorf("metric must be appleseed|advogato|pathtrust|none, got %q", v)
		}
		ov.Metric = &m
	}
	if v := q.Get("alpha"); v != "" {
		a, err := strconv.ParseFloat(v, 64)
		if err != nil || a < 0 || a > 1 {
			return ov, fmt.Errorf("alpha must be in [0,1], got %q", v)
		}
		ov.Alpha = &a
	}
	if v := q.Get("measure"); v != "" {
		var m cf.Measure
		switch v {
		case "pearson":
			m = cf.Pearson
		case "cosine":
			m = cf.Cosine
		default:
			return ov, fmt.Errorf("measure must be pearson|cosine, got %q", v)
		}
		ov.Measure = &m
	}
	switch v := q.Get("novel"); v {
	case "", "0":
	case "1":
		c := core.NovelCategories
		ov.Content = &c
	default:
		return ov, fmt.Errorf("novel must be 0 or 1, got %q", v)
	}
	return ov, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	snap := s.eng.Snapshot()
	comm := snap.Community()
	writeJSON(w, map[string]any{
		"status":        "ok",
		"epoch":         snap.Epoch(),
		"agents":        comm.NumAgents(),
		"products":      comm.NumProducts(),
		"uptimeSeconds": s.eng.Uptime().Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	snap := s.eng.Snapshot()
	comm := snap.Community()
	type stats struct {
		Epoch     uint64          `json:"epoch"`
		Community model.Stats     `json:"community"`
		Taxonomy  *taxonomy.Stats `json:"taxonomy,omitempty"`
	}
	out := stats{Epoch: snap.Epoch(), Community: comm.ComputeStats()}
	if tax := comm.Taxonomy(); tax != nil {
		ts := tax.ComputeStats()
		out.Taxonomy = &ts
	}
	writeJSON(w, out)
}

// handleStrategies lists the configured strategy ladder in rung order:
// each entry carries the procedure name, its declarative precondition,
// and whether the rung is enabled. Clients use the names here to build
// `strategy=` selector overrides.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	rungs := s.eng.Ladder().Rungs()
	s.writeList(w, rungs, len(rungs), nil)
}

// agentSummary is the list view of one agent.
type agentSummary struct {
	ID       model.AgentID `json:"id"`
	Name     string        `json:"name,omitempty"`
	TrustOut int           `json:"trustOut"`
	Ratings  int           `json:"ratings"`
}

func summarize(comm *model.Community, id model.AgentID) agentSummary {
	a := comm.Agent(id)
	return agentSummary{ID: id, Name: a.Name,
		TrustOut: len(a.Trust), Ratings: len(a.Ratings)}
}

func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.serveUpsertAgent(w, r)
		return
	}
	if !requireRead(w, r) {
		return
	}
	offset, limit, err := pageParams(r, 25)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	snap := s.eng.Snapshot()
	ids := snap.AgentsByTrustOut()
	lo, hi := window(len(ids), offset, limit)
	items := make([]agentSummary, 0, hi-lo)
	for _, id := range ids[lo:hi] {
		items = append(items, summarize(snap.Community(), id))
	}
	writePage(w, items, len(ids), offset, limit)
}

// handleAgentSubtree routes
// /v1/agents/{uri}[/neighbors|/profile|/recommendations|/trust|/ratings].
func (s *Server) handleAgentSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/agents/")
	var action string
	for _, suffix := range []string{"/neighbors", "/profile", "/recommendations", "/trust", "/ratings"} {
		if strings.HasSuffix(rest, suffix) {
			action = suffix[1:]
			rest = strings.TrimSuffix(rest, suffix)
			break
		}
	}
	uri, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed agent URI")
		return
	}
	snap := s.eng.Snapshot()
	id := model.AgentID(uri)
	a := snap.Community().Agent(id)
	if a == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown agent %s", uri))
		return
	}
	switch action {
	case "trust", "ratings":
		s.serveWrite(w, r, snap, id, action)
		return
	}
	if !requireRead(w, r) {
		return
	}
	switch action {
	case "neighbors":
		s.serveNeighbors(w, r, snap, id)
	case "profile":
		s.serveProfile(w, r, snap, id)
	case "recommendations":
		s.serveRecommendations(w, r, snap, id)
	default:
		type agentDetail struct {
			agentSummary
			Trust   []model.TrustStatement  `json:"trust"`
			Ratings []model.RatingStatement `json:"ratingStatements"`
		}
		writeJSON(w, agentDetail{
			agentSummary: summarize(snap.Community(), id),
			Trust:        a.TrustedPeers(),
			Ratings:      a.RatedProducts(),
		})
	}
}

// parseSelector validates the strategy= per-request ladder override
// against the engine's configured ladder.
func (s *Server) parseSelector(r *http.Request) (strategy.Selector, error) {
	return strategy.ParseSelector(r.URL.Query().Get("strategy"), s.eng.Ladder())
}

func (s *Server) serveNeighbors(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	ov, err := parseOverrides(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	sel, err := s.parseSelector(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	n, err := intParam(r, "n", 25)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	peers, res, err := s.eng.RankedPeersLadder(ctx, snap, id, ov, sel)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	total := len(peers)
	if n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	if peers == nil {
		peers = []core.PeerRank{}
	}
	s.writeList(w, peers, total, res)
}

func (s *Server) serveProfile(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	n, err := intParam(r, "n", 15)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	prof, err := snap.ProfileCtx(ctx, id)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	tax := snap.Community().Taxonomy()
	type topicScore struct {
		Topic string  `json:"topic"`
		Score float64 `json:"score"`
	}
	items := make([]topicScore, 0, n)
	for _, e := range prof.TopK(n) {
		items = append(items, topicScore{
			Topic: tax.QualifiedName(taxonomy.Topic(e.Key)),
			Score: e.Value,
		})
	}
	s.writeList(w, items, len(prof), nil)
}

func (s *Server) serveRecommendations(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID) {
	ov, err := parseOverrides(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	theta := 0.0
	if v := r.URL.Query().Get("theta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "theta must be in [0,1]")
			return
		}
		theta = f
	}
	// With diversification, rank a deeper candidate pool first.
	fetchN := n
	if theta > 0 && n > 0 {
		fetchN = n * 5
	}
	sel, err := s.parseSelector(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	recs, res, err := s.eng.RecommendLadder(ctx, snap, id, fetchN, ov, sel)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if theta > 0 {
		rec, err := snap.RecommenderFor(ov)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		recs = rec.Diversify(recs, n, theta)
	}
	type recOut struct {
		core.Recommendation
		Title string `json:"title,omitempty"`
	}
	items := make([]recOut, 0, len(recs))
	for _, rc := range recs {
		ro := recOut{Recommendation: rc}
		if p := snap.Community().Product(rc.Product); p != nil {
			ro.Title = p.Title
		}
		items = append(items, ro)
	}
	s.writeList(w, items, len(items), res)
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/products/")
	idRaw, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed product ID")
		return
	}
	snap := s.eng.Snapshot()
	p := snap.Community().Product(model.ProductID(idRaw))
	if p == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown product %s", idRaw))
		return
	}
	type productOut struct {
		ID     model.ProductID `json:"id"`
		Title  string          `json:"title,omitempty"`
		ISBN   string          `json:"isbn,omitempty"`
		Topics []string        `json:"topics,omitempty"`
	}
	out := productOut{ID: p.ID, Title: p.Title, ISBN: p.ISBN}
	if tax := snap.Community().Taxonomy(); tax != nil {
		for _, d := range p.Topics {
			out.Topics = append(out.Topics, tax.QualifiedName(d))
		}
	}
	writeJSON(w, out)
}

// handleTopic browses a taxonomy branch: products whose descriptors fall
// into the topic (by qualified path, root name included) or below it,
// served from the snapshot's per-branch cache and paged with
// offset/limit.
func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	if !requireRead(w, r) {
		return
	}
	snap := s.eng.Snapshot()
	tax := snap.Community().Taxonomy()
	if tax == nil {
		writeError(w, http.StatusConflict, "no_taxonomy", "community has no taxonomy")
		return
	}
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/topics/")
	path, err := url.PathUnescape(rest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "malformed topic path")
		return
	}
	offset, limit, err := pageParams(r, 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	d, ok := tax.Lookup(path)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown topic %s", path))
		return
	}
	pids := snap.Subtree(d)
	total := len(pids)
	lo, hi := window(total, offset, limit)
	type entry struct {
		ID    model.ProductID `json:"id"`
		Title string          `json:"title,omitempty"`
	}
	type topicPage struct {
		Topic  string  `json:"topic"`
		Items  []entry `json:"items"`
		Total  int     `json:"total"`
		Offset int     `json:"offset"`
		Limit  int     `json:"limit"`
	}
	out := topicPage{Topic: tax.QualifiedName(d), Total: total, Offset: offset, Limit: limit,
		Items: make([]entry, 0, hi-lo)}
	for _, pid := range pids[lo:hi] {
		e := entry{ID: pid}
		if p := snap.Community().Product(pid); p != nil {
			e.Title = p.Title
		}
		out.Items = append(out.Items, e)
	}
	writeJSON(w, out)
}

// maxWriteBody bounds write request bodies; mutations are tiny.
const maxWriteBody = 1 << 16

// accepted is the 202 envelope for durable write acknowledgements.
type accepted struct {
	Status string `json:"status"`
	Seq    uint64 `json:"seq"`
}

// decodeBody strictly parses a small JSON request body into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxWriteBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// submit validates the mutation against the pinned snapshot, hands it to
// the ingest pipeline, and acknowledges durability with 202 and the
// assigned WAL sequence number.
func (s *Server) submit(w http.ResponseWriter, snap *engine.Snapshot, m wal.Mutation) {
	if err := ingest.ValidateIn(snap.Community(), m); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	seq, err := s.writer.Submit(m)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(accepted{Status: "accepted", Seq: seq})
}

// serveWrite handles POST/DELETE /v1/agents/{uri}/{trust|ratings}.
func (s *Server) serveWrite(w http.ResponseWriter, r *http.Request, snap *engine.Snapshot, id model.AgentID, action string) {
	switch {
	case r.Method == http.MethodPost && action == "trust":
		var body struct {
			Peer  model.AgentID `json:"peer"`
			Value float64       `json:"value"`
		}
		if !decodeBody(w, r, &body) {
			return
		}
		s.submit(w, snap, wal.Mutation{Op: wal.OpUpsertTrust, Agent: id, Peer: body.Peer, Value: body.Value})
	case r.Method == http.MethodDelete && action == "trust":
		peer := r.URL.Query().Get("peer")
		if peer == "" {
			writeError(w, http.StatusBadRequest, "invalid_argument", "peer query parameter required")
			return
		}
		s.submit(w, snap, wal.Mutation{Op: wal.OpDeleteTrust, Agent: id, Peer: model.AgentID(peer)})
	case r.Method == http.MethodPost && action == "ratings":
		var body struct {
			Product model.ProductID `json:"product"`
			Value   float64         `json:"value"`
		}
		if !decodeBody(w, r, &body) {
			return
		}
		s.submit(w, snap, wal.Mutation{Op: wal.OpUpsertRating, Agent: id, Product: body.Product, Value: body.Value})
	case r.Method == http.MethodDelete && action == "ratings":
		product := r.URL.Query().Get("product")
		if product == "" {
			writeError(w, http.StatusBadRequest, "invalid_argument", "product query parameter required")
			return
		}
		s.submit(w, snap, wal.Mutation{Op: wal.OpDeleteRating, Agent: id, Product: model.ProductID(product)})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method))
	}
}

// serveUpsertAgent handles POST /v1/agents.
func (s *Server) serveUpsertAgent(w http.ResponseWriter, r *http.Request) {
	var body struct {
		ID   model.AgentID `json:"id"`
		Name string        `json:"name"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	s.submit(w, s.eng.Snapshot(), wal.Mutation{Op: wal.OpUpsertAgent, Agent: body.ID, Name: body.Name})
}

// retryAfter derives the Retry-After hint from the writer's queue
// backlog: an almost-empty queue suggests a transient spike (retry in
// 1s), a saturated one a real backlog (up to 8s). Writers that don't
// report queue depth get the conservative 1s.
func (s *Server) retryAfter() string {
	qr, ok := s.writer.(QueueReporter)
	if !ok {
		return "1"
	}
	depth, capacity := qr.QueueStats()
	if capacity <= 0 {
		return "1"
	}
	secs := 1 + (7*depth+capacity/2)/capacity
	if secs > 8 {
		secs = 8
	}
	return strconv.Itoa(secs)
}

// writeSubmitError maps ingest pipeline errors onto the error envelope.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ingest.ErrInvalid):
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
	case errors.Is(err, ingest.ErrOverloaded):
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "overloaded", "ingest queue full, retry later")
	case errors.Is(err, ingest.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", "write pipeline is shut down")
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// writeEngineError maps engine/core errors onto the error envelope.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrUnknownAgent):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, engine.ErrNoTaxonomy):
		writeError(w, http.StatusConflict, "no_taxonomy", err.Error())
	case deadlineHit(err):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			"request deadline exceeded before the computation finished")
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}
