package trust

import (
	"fmt"

	"swrec/internal/graph"
	"swrec/internal/model"
)

// AdvogatoOptions parameterize the Advogato group trust metric
// (Levien & Aiken [11]), the paper's baseline: a max-flow computation over
// a node-split trust graph that yields boolean accept/reject decisions —
// precisely the coarseness Appleseed's continuous ranks improve upon.
type AdvogatoOptions struct {
	// CapacityProfile assigns flow capacity by BFS distance from the
	// source: profile[0] is the source's capacity, profile[1] that of its
	// direct trustees, and so on. Agents beyond the profile get capacity
	// 1 (they can only certify themselves). The default, {200, 50, 12,
	// 4, 2, 1}, follows Advogato's published decreasing-capacity scheme.
	CapacityProfile []int
	// MinWeight is the smallest trust value that counts as a
	// certification edge; Advogato's input is boolean, so continuous
	// statements are thresholded. Default 0 (any positive statement).
	MinWeight float64
}

func (o AdvogatoOptions) withDefaults() AdvogatoOptions {
	if len(o.CapacityProfile) == 0 {
		o.CapacityProfile = []int{200, 50, 12, 4, 2, 1}
	}
	return o
}

func (o AdvogatoOptions) validate() error {
	for i, c := range o.CapacityProfile {
		if c < 1 {
			return fmt.Errorf("trust: capacity profile entry %d must be >= 1, got %d", i, c)
		}
	}
	return nil
}

// infiniteCap stands in for unbounded arc capacity in the flow network.
const infiniteCap = 1 << 30

// Advogato computes the boolean trust neighborhood of source: the set of
// peers accepted by the max-flow certification. Every accepted peer gets
// rank 1 — Advogato "can only make boolean decisions with respect to
// trustworthiness" (§3.2).
//
// Construction (the node-splitting transform of [11]):
//
//   - BFS from the source over positive trust edges, bounded by the
//     capacity profile length, assigns each discovered agent a capacity
//     cap(x) by distance;
//   - each agent x becomes x⁻ → x⁺ with capacity cap(x)-1, plus a
//     unit-capacity edge x⁻ → supersink;
//   - each certification x → y becomes x⁺ → y⁻ with infinite capacity;
//   - a peer is accepted iff the max flow from source⁻ to the supersink
//     saturates its unit edge.
func Advogato(net Network, source model.AgentID, opt AdvogatoOptions) (*Neighborhood, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	horizon := len(opt.CapacityProfile)

	// Level-bounded BFS, fetching trust statements as we go.
	var in graph.Interner
	src := in.Intern(string(source))
	dist := []int{0}
	type edge struct{ from, to int }
	var certEdges []edge
	queue := []int{src}
	explored := 0
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] >= horizon {
			continue // beyond the profile: do not expand further
		}
		explored++
		for _, st := range net.Peers(model.AgentID(in.Name(x))) {
			if st.Value <= opt.MinWeight || string(st.Dst) == in.Name(x) {
				continue
			}
			before := in.Len()
			y := in.Intern(string(st.Dst))
			if in.Len() > before {
				dist = append(dist, dist[x]+1)
				queue = append(queue, y)
			}
			certEdges = append(certEdges, edge{from: x, to: y})
		}
	}

	// Build the node-split flow network. Agent i maps to in-node 2i and
	// out-node 2i+1; the supersink sits past all split nodes.
	n := in.Len()
	sink := 2 * n
	fn := graph.NewFlowNetwork(2*n + 1)
	unitArc := make([]int, n) // arc index of each agent's x⁻→sink edge
	arcs := 0
	addArc := func(from, to, c int) int {
		fn.AddArc(from, to, c)
		arcs++
		return arcs - 1
	}
	capOf := func(i int) int {
		if dist[i] < len(opt.CapacityProfile) {
			return opt.CapacityProfile[dist[i]]
		}
		return 1
	}
	for i := 0; i < n; i++ {
		addArc(2*i, 2*i+1, capOf(i)-1)
		unitArc[i] = addArc(2*i, sink, 1)
	}
	for _, e := range certEdges {
		addArc(2*e.from+1, 2*e.to, infiniteCap)
	}

	fn.MaxFlow(2*src, sink)

	nb := &Neighborhood{Source: source, Iterations: horizon, Explored: explored}
	for i := 1; i < n; i++ { // skip the source itself
		if fn.Flow(unitArc[i]) > 0 {
			nb.Ranks = append(nb.Ranks, Rank{Agent: model.AgentID(in.Name(i)), Trust: 1})
		}
	}
	sortRanks(nb.Ranks)
	return nb, nil
}
