package trust

import (
	"testing"

	"swrec/internal/model"
)

func TestAdvogatoAcceptsDirectPeers(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 1.0},
		{"a", "c", 0.8},
	})
	nb, err := Advogato(net, "a", AdvogatoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Contains("b") || !nb.Contains("c") {
		t.Fatalf("direct peers not accepted: %+v", nb.Ranks)
	}
	for _, r := range nb.Ranks {
		if r.Trust != 1 {
			t.Fatalf("Advogato must be boolean, got rank %v", r.Trust)
		}
	}
	if nb.Contains("a") {
		t.Fatal("source must not certify itself in the result")
	}
}

func TestAdvogatoCapacityLimitsAcceptance(t *testing.T) {
	// Source capacity 3: one unit goes to its own sink edge, two units
	// can flow onward — at most 2 of the 5 direct peers are accepted.
	edges := [][3]interface{}{}
	for i := 0; i < 5; i++ {
		edges = append(edges, [3]interface{}{"a", "p" + itoa(i), 1.0})
	}
	nb, err := Advogato(build(t, edges), "a", AdvogatoOptions{CapacityProfile: []int{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nb.Ranks); got != 2 {
		t.Fatalf("accepted %d peers, want 2 (capacity bound)", got)
	}
}

func TestAdvogatoHorizonBound(t *testing.T) {
	// Chain a→b→c→d with a 2-level profile: d sits beyond the horizon.
	net := build(t, [][3]interface{}{
		{"a", "b", 1.0},
		{"b", "c", 1.0},
		{"c", "d", 1.0},
	})
	nb, err := Advogato(net, "a", AdvogatoOptions{CapacityProfile: []int{8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Contains("b") || !nb.Contains("c") {
		t.Fatalf("in-horizon peers missing: %+v", nb.Ranks)
	}
	if nb.Contains("d") {
		t.Fatal("peer beyond capacity profile must not be accepted")
	}
}

func TestAdvogatoDistrustIgnored(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", -1.0},
		{"b", "c", 1.0},
	})
	nb, err := Advogato(net, "a", AdvogatoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Ranks) != 0 {
		t.Fatalf("distrust must not certify: %+v", nb.Ranks)
	}
}

func TestAdvogatoSybilResistance(t *testing.T) {
	// One compromised mid-trust agent m certifies 20 sybils. m's level
	// capacity (3) bounds the accepted sybils to at most 2 — Advogato's
	// signature attack resistance.
	edges := [][3]interface{}{{"a", "m", 1.0}}
	for i := 0; i < 20; i++ {
		edges = append(edges, [3]interface{}{"m", "sybil" + itoa(i), 1.0})
	}
	nb, err := Advogato(build(t, edges), "a", AdvogatoOptions{CapacityProfile: []int{100, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, r := range nb.Ranks {
		if r.Agent != "m" {
			accepted++
		}
	}
	if accepted > 2 {
		t.Fatalf("%d sybils accepted, capacity bound allows at most 2", accepted)
	}
	if !nb.Contains("m") {
		t.Fatal("the certified mid agent itself should be accepted")
	}
}

func TestAdvogatoMinWeightThreshold(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "strong", 0.9},
		{"a", "weak", 0.2},
	})
	nb, err := Advogato(net, "a", AdvogatoOptions{MinWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Contains("strong") || nb.Contains("weak") {
		t.Fatalf("MinWeight thresholding broken: %+v", nb.Ranks)
	}
}

func TestAdvogatoValidation(t *testing.T) {
	net := FromCommunity(model.NewCommunity(nil))
	if _, err := Advogato(net, "a", AdvogatoOptions{CapacityProfile: []int{0}}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestAdvogatoEmptySource(t *testing.T) {
	net := FromCommunity(model.NewCommunity(nil))
	nb, err := Advogato(net, "ghost", AdvogatoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Ranks) != 0 {
		t.Fatal("unknown source must yield empty neighborhood")
	}
}

func TestPathTrustBestChain(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 0.5},
		{"b", "c", 0.5},
		{"a", "c", 0.3},
	})
	nb, err := PathTrust(net, "a", PathTrustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := nb.RankOf("c")
	if !ok || rc != 0.3 {
		t.Fatalf("best chain to c = %v, want 0.3 (direct beats 0.25 chain)", rc)
	}
	rb, _ := nb.RankOf("b")
	if rb != 0.5 {
		t.Fatalf("rank(b) = %v, want 0.5", rb)
	}
}

func TestPathTrustChainBeatsWeakDirect(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 0.9},
		{"b", "c", 0.9},
		{"a", "c", 0.1},
	})
	nb, err := PathTrust(net, "a", PathTrustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := nb.RankOf("c")
	if rc < 0.80 || rc > 0.82 {
		t.Fatalf("rank(c) = %v, want 0.81 via the strong chain", rc)
	}
}

func TestPathTrustHorizon(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 1.0},
		{"b", "c", 1.0},
		{"c", "d", 1.0},
	})
	nb, err := PathTrust(net, "a", PathTrustOptions{Horizon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Contains("c") || nb.Contains("d") {
		t.Fatalf("horizon 2 should reach c but not d: %+v", nb.Ranks)
	}
}

func TestPathTrustMinTrustPrunes(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 0.1},
		{"b", "c", 0.1},
	})
	nb, err := PathTrust(net, "a", PathTrustOptions{MinTrust: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Contains("c") {
		t.Fatal("path of strength 0.01 must be pruned at MinTrust 0.05")
	}
}

func TestPathTrustValidation(t *testing.T) {
	net := FromCommunity(model.NewCommunity(nil))
	if _, err := PathTrust(net, "a", PathTrustOptions{Horizon: -1}); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := PathTrust(net, "a", PathTrustOptions{MinTrust: 2}); err == nil {
		t.Fatal("MinTrust >= 1 accepted")
	}
}

func TestNeighborhoodHelpers(t *testing.T) {
	nb := &Neighborhood{
		Source: "a",
		Ranks:  []Rank{{"b", 3}, {"c", 2}, {"d", 1}},
	}
	if got := nb.Top(2); len(got) != 2 || got[0].Agent != "b" {
		t.Fatalf("Top(2) = %+v", got)
	}
	if got := nb.Top(0); len(got) != 3 {
		t.Fatalf("Top(0) = %+v, want all", got)
	}
	if !nb.Contains("c") || nb.Contains("a") {
		t.Fatalf("Contains: want member c, non-member a; ranks %+v", nb.Ranks)
	}
	if _, ok := nb.RankOf("zz"); ok {
		t.Fatal("RankOf invented a peer")
	}
}
