package trust

import (
	"testing"

	"swrec/internal/model"
)

// mapNet is a literal trust graph for widening tests.
type mapNet map[model.AgentID][]model.TrustStatement

func (m mapNet) Peers(a model.AgentID) []model.TrustStatement { return m[a] }

func TestWidenOneHopRecruitsFrontier(t *testing.T) {
	net := mapNet{
		"src": {{Src: "src", Dst: "a", Value: 1}},
		"a":   {{Src: "a", Dst: "b", Value: 0.8}, {Src: "a", Dst: "bad", Value: -0.9}},
		"b":   {{Src: "b", Dst: "c", Value: 1}},
	}
	nb := &Neighborhood{Source: "src", Ranks: []Rank{{Agent: "a", Trust: 0.6}}, Explored: 2}
	wide := WidenOneHop(net, nb, 0.5)

	ranks := make(map[model.AgentID]float64, len(wide.Ranks))
	for _, r := range wide.Ranks {
		ranks[r.Agent] = r.Trust
	}
	if ranks["a"] != 0.6 {
		t.Fatalf("existing member rank changed: %v", ranks)
	}
	// b joins via a: 0.5 (decay) * 0.6 (a's rank) * 0.8 (a->b).
	if got, want := ranks["b"], 0.5*0.6*0.8; got != want {
		t.Fatalf("b rank = %v, want %v", got, want)
	}
	if _, ok := ranks["bad"]; ok {
		t.Fatal("distrust recruited a peer")
	}
	if _, ok := ranks["c"]; ok {
		t.Fatal("widening went two hops")
	}
	if wide.Explored <= nb.Explored {
		t.Fatal("explored count did not grow")
	}
	if len(nb.Ranks) != 1 {
		t.Fatal("input neighborhood was modified")
	}
}

func TestWidenOneHopSourceContributesAtMaxRank(t *testing.T) {
	// The source's own statements widen too, at the neighborhood's max
	// rank — and with an empty neighborhood, at rank 1.
	net := mapNet{"src": {{Src: "src", Dst: "d", Value: 0.9}}}
	empty := &Neighborhood{Source: "src"}
	wide := WidenOneHop(net, empty, 0.5)
	if len(wide.Ranks) != 1 || wide.Ranks[0].Agent != "d" || wide.Ranks[0].Trust != 0.5*0.9 {
		t.Fatalf("empty-neighborhood widening = %+v", wide.Ranks)
	}
}

func TestWidenOneHopKeepsStrongestContribution(t *testing.T) {
	net := mapNet{
		"a": {{Src: "a", Dst: "x", Value: 1}},
		"b": {{Src: "b", Dst: "x", Value: 1}},
	}
	nb := &Neighborhood{Source: "src", Ranks: []Rank{{Agent: "a", Trust: 0.9}, {Agent: "b", Trust: 0.2}}}
	wide := WidenOneHop(net, nb, 0.5)
	for _, r := range wide.Ranks {
		if r.Agent == "x" && r.Trust != 0.5*0.9 {
			t.Fatalf("x rank = %v, want the stronger contribution %v", r.Trust, 0.5*0.9)
		}
	}
}

func TestWidenOneHopDeterministicOrder(t *testing.T) {
	net := mapNet{
		"src": {
			{Src: "src", Dst: "p1", Value: 0.7},
			{Src: "src", Dst: "p2", Value: 0.7},
			{Src: "src", Dst: "p3", Value: 0.7},
		},
	}
	nb := &Neighborhood{Source: "src"}
	first := WidenOneHop(net, nb, 0.5)
	for i := 0; i < 10; i++ {
		again := WidenOneHop(net, nb, 0.5)
		for j := range first.Ranks {
			if first.Ranks[j] != again.Ranks[j] {
				t.Fatalf("run %d: rank order flapped: %+v vs %+v", i, first.Ranks, again.Ranks)
			}
		}
	}
	// Equal trust sorts by agent ID.
	if first.Ranks[0].Agent != "p1" || first.Ranks[1].Agent != "p2" || first.Ranks[2].Agent != "p3" {
		t.Fatalf("tie order = %+v", first.Ranks)
	}
}
