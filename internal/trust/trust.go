// Package trust implements the local group trust metrics that form the
// first pillar of the paper's approach (§3.2): trust neighborhood
// formation for an active agent a_i, relying only on partial trust graph
// information and exploring the social network within predefined ranges so
// that neighborhood detection retains scalability.
//
// Three metrics are provided:
//
//   - Appleseed (Ziegler & Lausen 2004 [12]): the paper's own local group
//     trust metric, derived from spreading activation models (Quillian
//     [13]). It assigns continuous trust ranks to peers within the
//     computation range, with high ranks accorded to agents largely
//     trusted by others of high trustworthiness.
//   - Advogato (Levien & Aiken 1998 [11]): the most well-known prior local
//     group trust metric; max-flow based and only able to make boolean
//     trustworthiness decisions — the limitation the paper contrasts
//     Appleseed against.
//   - PathTrust: a simple scalar baseline that scores each peer by the
//     strongest multiplicative trust chain from the source, standing in
//     for classic scalar metrics (Beth et al. [10]) in the experiments.
//
// All metrics consume a Network, an abstraction over "whose trust
// statements can I fetch" that both a fully materialized model.Community
// and a partially crawled view satisfy.
package trust

import (
	"slices"

	"swrec/internal/model"
)

// Network exposes the partial trust graph a metric may explore. Statements
// carry values in [-1, +1]; negative values are explicit distrust, which
// the metrics must not confuse with absence of trust (§3.1, Marsh [8]).
type Network interface {
	// Peers returns the trust statements issued by a. The result may be
	// empty for unknown or silent agents.
	Peers(a model.AgentID) []model.TrustStatement
}

// communityNet adapts a materialized community to the Network interface.
type communityNet struct { //nolint:snapshotpin -- request-scoped adapter: built, walked by one Appleseed run, and dropped
	c *model.Community
}

// FromCommunity exposes a community's trust edges as a Network.
func FromCommunity(c *model.Community) Network { return communityNet{c} }

func (n communityNet) Peers(a model.AgentID) []model.TrustStatement {
	ag := n.c.Agent(a)
	if ag == nil {
		return nil
	}
	return ag.TrustedPeers()
}

// NumAgents bounds the explorable node count, letting metrics pre-size
// their frontier structures (see sizeHinter).
func (n communityNet) NumAgents() int { return n.c.NumAgents() }

// AgentRef resolves an agent ID to its community record (nil if unknown).
func (n communityNet) AgentRef(a model.AgentID) *model.Agent { return n.c.Agent(a) }

// PeerRefs returns a's trust statements with resolved, densely-interned
// targets — the allocation- and hash-free edge list of refNetwork.
func (n communityNet) PeerRefs(a *model.Agent) []model.TrustRef { return n.c.TrustRefs(a) }

// sizeHinter is the optional Network capability of bounded graphs: the
// number of agents a full exploration could possibly discover.
type sizeHinter interface {
	NumAgents() int
}

// refNetwork is the optional Network fast path community adapters offer:
// trust edges resolved to densely-interned agent records, so graph walks
// index flat tables by Agent.Ord instead of hashing string IDs per edge.
type refNetwork interface {
	AgentRef(model.AgentID) *model.Agent
	PeerRefs(*model.Agent) []model.TrustRef
	NumAgents() int
}

// Rank is one entry of a computed trust neighborhood: the peer and its
// continuous trust rank (metric-specific scale; only the ordering and
// relative magnitude matter downstream).
type Rank struct {
	Agent model.AgentID
	Trust float64
}

// Neighborhood is the ranked result of a local group trust computation for
// one source agent, sorted by descending trust (ties broken by agent ID).
type Neighborhood struct {
	Source model.AgentID
	Ranks  []Rank
	// Iterations is the number of passes the metric ran until convergence
	// (Appleseed) or levels explored (Advogato, PathTrust).
	Iterations int
	// Explored is the number of distinct agents whose trust statements
	// were fetched — the metric's network cost.
	Explored int
}

// sortRanks orders ranks by descending trust, then ID, in place.
func sortRanks(rs []Rank) {
	slices.SortFunc(rs, func(a, b Rank) int {
		switch {
		case a.Trust > b.Trust:
			return -1
		case a.Trust < b.Trust:
			return 1
		case a.Agent < b.Agent:
			return -1
		case a.Agent > b.Agent:
			return 1
		default:
			return 0
		}
	})
}

// Top returns the n highest-ranked peers (all if n <= 0 or beyond range).
func (nb *Neighborhood) Top(n int) []Rank {
	if n <= 0 || n >= len(nb.Ranks) {
		return nb.Ranks
	}
	return nb.Ranks[:n]
}

// RankOf returns the trust rank of peer and whether it is in range.
func (nb *Neighborhood) RankOf(peer model.AgentID) (float64, bool) {
	for _, r := range nb.Ranks {
		if r.Agent == peer {
			return r.Trust, true
		}
	}
	return 0, false
}

// Contains reports whether peer made it into the neighborhood.
func (nb *Neighborhood) Contains(peer model.AgentID) bool {
	_, ok := nb.RankOf(peer)
	return ok
}
