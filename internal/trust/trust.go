// Package trust implements the local group trust metrics that form the
// first pillar of the paper's approach (§3.2): trust neighborhood
// formation for an active agent a_i, relying only on partial trust graph
// information and exploring the social network within predefined ranges so
// that neighborhood detection retains scalability.
//
// Three metrics are provided:
//
//   - Appleseed (Ziegler & Lausen 2004 [12]): the paper's own local group
//     trust metric, derived from spreading activation models (Quillian
//     [13]). It assigns continuous trust ranks to peers within the
//     computation range, with high ranks accorded to agents largely
//     trusted by others of high trustworthiness.
//   - Advogato (Levien & Aiken 1998 [11]): the most well-known prior local
//     group trust metric; max-flow based and only able to make boolean
//     trustworthiness decisions — the limitation the paper contrasts
//     Appleseed against.
//   - PathTrust: a simple scalar baseline that scores each peer by the
//     strongest multiplicative trust chain from the source, standing in
//     for classic scalar metrics (Beth et al. [10]) in the experiments.
//
// All metrics consume a Network, an abstraction over "whose trust
// statements can I fetch" that both a fully materialized model.Community
// and a partially crawled view satisfy.
package trust

import (
	"sort"

	"swrec/internal/model"
)

// Network exposes the partial trust graph a metric may explore. Statements
// carry values in [-1, +1]; negative values are explicit distrust, which
// the metrics must not confuse with absence of trust (§3.1, Marsh [8]).
type Network interface {
	// Peers returns the trust statements issued by a. The result may be
	// empty for unknown or silent agents.
	Peers(a model.AgentID) []model.TrustStatement
}

// communityNet adapts a materialized community to the Network interface.
type communityNet struct { //nolint:snapshotpin -- request-scoped adapter: built, walked by one Appleseed run, and dropped
	c *model.Community
}

// FromCommunity exposes a community's trust edges as a Network.
func FromCommunity(c *model.Community) Network { return communityNet{c} }

func (n communityNet) Peers(a model.AgentID) []model.TrustStatement {
	ag := n.c.Agent(a)
	if ag == nil {
		return nil
	}
	return ag.TrustedPeers()
}

// Rank is one entry of a computed trust neighborhood: the peer and its
// continuous trust rank (metric-specific scale; only the ordering and
// relative magnitude matter downstream).
type Rank struct {
	Agent model.AgentID
	Trust float64
}

// Neighborhood is the ranked result of a local group trust computation for
// one source agent, sorted by descending trust (ties broken by agent ID).
type Neighborhood struct {
	Source model.AgentID
	Ranks  []Rank
	// Iterations is the number of passes the metric ran until convergence
	// (Appleseed) or levels explored (Advogato, PathTrust).
	Iterations int
	// Explored is the number of distinct agents whose trust statements
	// were fetched — the metric's network cost.
	Explored int
}

// sortRanks orders ranks by descending trust, then ID, in place.
func sortRanks(rs []Rank) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Trust != rs[j].Trust {
			return rs[i].Trust > rs[j].Trust
		}
		return rs[i].Agent < rs[j].Agent
	})
}

// Top returns the n highest-ranked peers (all if n <= 0 or beyond range).
func (nb *Neighborhood) Top(n int) []Rank {
	if n <= 0 || n >= len(nb.Ranks) {
		return nb.Ranks
	}
	return nb.Ranks[:n]
}

// RankOf returns the trust rank of peer and whether it is in range.
func (nb *Neighborhood) RankOf(peer model.AgentID) (float64, bool) {
	for _, r := range nb.Ranks {
		if r.Agent == peer {
			return r.Trust, true
		}
	}
	return 0, false
}

// Contains reports whether peer made it into the neighborhood.
func (nb *Neighborhood) Contains(peer model.AgentID) bool {
	_, ok := nb.RankOf(peer)
	return ok
}

// AgentSet returns the neighborhood as a membership set.
func (nb *Neighborhood) AgentSet() map[model.AgentID]bool {
	s := make(map[model.AgentID]bool, len(nb.Ranks))
	for _, r := range nb.Ranks {
		s[r.Agent] = true
	}
	return s
}
