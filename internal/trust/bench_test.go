package trust

import (
	"fmt"
	"testing"

	"swrec/internal/datagen"
	"swrec/internal/model"
)

// plainNet hides the community's refNetwork fast path so a benchmark (or
// differential test) exercises the generic walk the way a partially
// crawled, non-community view would. It keeps the size hint — both paths
// deserve fair pre-sizing.
type plainNet struct{ c *model.Community }

func (n plainNet) Peers(a model.AgentID) []model.TrustStatement {
	ag := n.c.Agent(a)
	if ag == nil {
		return nil
	}
	return ag.TrustedPeers()
}

func (n plainNet) NumAgents() int { return n.c.NumAgents() }

func benchTrustCommunity(b *testing.B, agents int) *model.Community {
	b.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = agents * 2
	comm, _ := datagen.Generate(cfg)
	return comm
}

// BenchmarkAppleseedRefs measures one full Appleseed computation over the
// community adapter's resolved-reference fast path: node discovery and
// edge traversal index a flat ordinal table.
func BenchmarkAppleseedRefs(b *testing.B) {
	for _, agents := range []int{100, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			comm := benchTrustCommunity(b, agents)
			net := FromCommunity(comm)
			src := comm.Agents()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Appleseed(net, src, AppleseedOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppleseedGeneric measures the same computation over a Network
// that exposes no resolved references — the path every non-community
// trust view takes, and the one the interned-ID refactor moves from
// string-keyed maps to a dense interner.
func BenchmarkAppleseedGeneric(b *testing.B) {
	for _, agents := range []int{100, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			comm := benchTrustCommunity(b, agents)
			net := plainNet{comm}
			src := comm.Agents()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Appleseed(net, src, AppleseedOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPathTrust measures the scalar baseline's best-chain search.
func BenchmarkPathTrust(b *testing.B) {
	comm := benchTrustCommunity(b, 400)
	net := FromCommunity(comm)
	src := comm.Agents()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PathTrust(net, src, PathTrustOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWidenOneHop measures the ladder's rung-2 horizon widening.
func BenchmarkWidenOneHop(b *testing.B) {
	comm := benchTrustCommunity(b, 400)
	net := FromCommunity(comm)
	src := comm.Agents()[0]
	nb, err := Appleseed(net, src, AppleseedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WidenOneHop(net, nb, 0.5)
	}
}
