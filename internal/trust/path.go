package trust

import (
	"container/heap"
	"fmt"

	"swrec/internal/graph"
	"swrec/internal/model"
)

// PathTrustOptions parameterize the scalar path-multiplication baseline.
type PathTrustOptions struct {
	// Horizon bounds the path length in hops. Default 4.
	Horizon int
	// MinTrust prunes paths whose accumulated strength falls below this
	// value; it bounds exploration the way Appleseed's energy threshold
	// does. Default 0.01.
	MinTrust float64
}

func (o PathTrustOptions) withDefaults() PathTrustOptions {
	if o.Horizon == 0 {
		o.Horizon = 4
	}
	if o.MinTrust == 0 {
		o.MinTrust = 0.01
	}
	return o
}

func (o PathTrustOptions) validate() error {
	if o.Horizon < 1 {
		return fmt.Errorf("trust: horizon must be >= 1, got %d", o.Horizon)
	}
	if o.MinTrust < 0 || o.MinTrust >= 1 {
		return fmt.Errorf("trust: min trust must be in [0,1), got %v", o.MinTrust)
	}
	return nil
}

// ptItem is one frontier entry of the best-path search. The agent is
// carried both as ID (for the Network fetch) and as its discovery-order
// node index (for the dense best/done tables).
type ptItem struct {
	agent    model.AgentID
	node     int32
	strength float64
	hops     int32
}

// ptHeap is a max-heap on path strength, so peers are finalized in
// best-first order (Dijkstra over the (max, ×) semiring).
type ptHeap []ptItem

func (h ptHeap) Len() int            { return len(h) }
func (h ptHeap) Less(i, j int) bool  { return h[i].strength > h[j].strength }
func (h ptHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ptHeap) Push(x interface{}) { *h = append(*h, x.(ptItem)) }
func (h *ptHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PathTrust scores every peer reachable from source within the horizon by
// the strength of the best multiplicative chain of positive trust values,
// in the tradition of scalar metrics for open networks (Beth, Borcherding
// & Klein [10]). It is the experiments' stand-in for classic scalar trust
// metrics: unlike Appleseed it evaluates each peer independently of how
// many distinct paths support it.
//
// Discovered agents are interned to dense node indices once; the
// relaxation loop's best/done state is flat slices indexed by node, so a
// peer reached over many paths hashes its URI once, not once per path.
func PathTrust(net Network, source model.AgentID, opt PathTrustOptions) (*Neighborhood, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	var sym graph.Interner
	if sh, ok := net.(sizeHinter); ok {
		sym.Reserve(sh.NumAgents())
	}
	sym.Intern(string(source))
	// best[node] is the strongest chain found so far; 0 doubles as "not
	// reached", which is unambiguous because only positive trust values
	// multiply into a strength.
	best := []float64{1}
	done := []bool{false}
	node := func(id model.AgentID) int32 {
		i := sym.Intern(string(id))
		if i == len(best) {
			best = append(best, 0)
			done = append(done, false)
		}
		return int32(i)
	}

	h := &ptHeap{{agent: source, node: 0, strength: 1, hops: 0}}
	explored := 0
	maxHops := int32(0)

	for h.Len() > 0 {
		it := heap.Pop(h).(ptItem)
		if done[it.node] || it.strength < best[it.node] {
			continue
		}
		done[it.node] = true
		if it.hops > maxHops {
			maxHops = it.hops
		}
		if int(it.hops) >= opt.Horizon {
			continue
		}
		explored++
		for _, st := range net.Peers(it.agent) {
			if st.Value <= 0 {
				continue
			}
			s := it.strength * st.Value
			if s < opt.MinTrust {
				continue
			}
			ni := node(st.Dst)
			if done[ni] {
				continue
			}
			if prev := best[ni]; prev == 0 || s > prev {
				best[ni] = s
				heap.Push(h, ptItem{agent: st.Dst, node: ni, strength: s, hops: it.hops + 1})
			}
		}
	}

	nb := &Neighborhood{Source: source, Iterations: int(maxHops), Explored: explored}
	for i := 1; i < len(best); i++ {
		if best[i] == 0 {
			continue // interned but pruned below MinTrust
		}
		nb.Ranks = append(nb.Ranks, Rank{Agent: model.AgentID(sym.Name(i)), Trust: best[i]})
	}
	sortRanks(nb.Ranks)
	return nb, nil
}
