package trust

import (
	"container/heap"
	"fmt"

	"swrec/internal/model"
)

// PathTrustOptions parameterize the scalar path-multiplication baseline.
type PathTrustOptions struct {
	// Horizon bounds the path length in hops. Default 4.
	Horizon int
	// MinTrust prunes paths whose accumulated strength falls below this
	// value; it bounds exploration the way Appleseed's energy threshold
	// does. Default 0.01.
	MinTrust float64
}

func (o PathTrustOptions) withDefaults() PathTrustOptions {
	if o.Horizon == 0 {
		o.Horizon = 4
	}
	if o.MinTrust == 0 {
		o.MinTrust = 0.01
	}
	return o
}

func (o PathTrustOptions) validate() error {
	if o.Horizon < 1 {
		return fmt.Errorf("trust: horizon must be >= 1, got %d", o.Horizon)
	}
	if o.MinTrust < 0 || o.MinTrust >= 1 {
		return fmt.Errorf("trust: min trust must be in [0,1), got %v", o.MinTrust)
	}
	return nil
}

// ptItem is one frontier entry of the best-path search.
type ptItem struct {
	agent    model.AgentID
	strength float64
	hops     int
}

// ptHeap is a max-heap on path strength, so peers are finalized in
// best-first order (Dijkstra over the (max, ×) semiring).
type ptHeap []ptItem

func (h ptHeap) Len() int            { return len(h) }
func (h ptHeap) Less(i, j int) bool  { return h[i].strength > h[j].strength }
func (h ptHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ptHeap) Push(x interface{}) { *h = append(*h, x.(ptItem)) }
func (h *ptHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PathTrust scores every peer reachable from source within the horizon by
// the strength of the best multiplicative chain of positive trust values,
// in the tradition of scalar metrics for open networks (Beth, Borcherding
// & Klein [10]). It is the experiments' stand-in for classic scalar trust
// metrics: unlike Appleseed it evaluates each peer independently of how
// many distinct paths support it.
func PathTrust(net Network, source model.AgentID, opt PathTrustOptions) (*Neighborhood, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	best := map[model.AgentID]float64{source: 1}
	done := map[model.AgentID]bool{}
	h := &ptHeap{{agent: source, strength: 1, hops: 0}}
	explored := 0
	maxHops := 0

	for h.Len() > 0 {
		it := heap.Pop(h).(ptItem)
		if done[it.agent] || it.strength < best[it.agent] {
			continue
		}
		done[it.agent] = true
		if it.hops > maxHops {
			maxHops = it.hops
		}
		if it.hops >= opt.Horizon {
			continue
		}
		explored++
		for _, st := range net.Peers(it.agent) {
			if st.Value <= 0 {
				continue
			}
			s := it.strength * st.Value
			if s < opt.MinTrust || done[st.Dst] {
				continue
			}
			if prev, ok := best[st.Dst]; !ok || s > prev {
				best[st.Dst] = s
				heap.Push(h, ptItem{agent: st.Dst, strength: s, hops: it.hops + 1})
			}
		}
	}

	nb := &Neighborhood{Source: source, Iterations: maxHops, Explored: explored}
	for id, s := range best {
		if id == source {
			continue
		}
		nb.Ranks = append(nb.Ranks, Rank{Agent: id, Trust: s})
	}
	sortRanks(nb.Ranks)
	return nb, nil
}
