package trust

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swrec/internal/model"
)

// build constructs a community from (src, dst, value) triples.
func build(t *testing.T, edges [][3]interface{}) Network {
	t.Helper()
	c := model.NewCommunity(nil)
	for _, e := range edges {
		if err := c.SetTrust(model.AgentID(e[0].(string)), model.AgentID(e[1].(string)), e[2].(float64)); err != nil {
			t.Fatal(err)
		}
	}
	return FromCommunity(c)
}

func TestAppleseedChain(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "b", 1.0},
		{"b", "c", 1.0},
	})
	nb, err := Appleseed(net, "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, okb := nb.RankOf("b")
	rc, okc := nb.RankOf("c")
	if !okb || !okc {
		t.Fatalf("chain members missing: %+v", nb.Ranks)
	}
	if rb <= rc {
		t.Fatalf("closer peer must outrank farther: b=%v c=%v", rb, rc)
	}
	if nb.Contains("a") {
		t.Fatal("source must not rank itself")
	}
	if nb.Iterations <= 0 || nb.Iterations >= 200 {
		t.Fatalf("iterations = %d, want converged before MaxIterations", nb.Iterations)
	}
}

func TestAppleseedWeightProportional(t *testing.T) {
	net := build(t, [][3]interface{}{
		{"a", "strong", 1.0},
		{"a", "weak", 0.25},
	})
	nb, err := Appleseed(net, "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := nb.RankOf("strong")
	rw, _ := nb.RankOf("weak")
	if rs <= rw {
		t.Fatalf("higher trust weight must yield higher rank: %v vs %v", rs, rw)
	}
	// Linear normalization: energy shares are 0.8 / 0.2, so first-pass
	// rank ratio is 4:1; backflow perturbs it only mildly.
	if ratio := rs / rw; ratio < 3 || ratio > 5 {
		t.Fatalf("rank ratio = %v, want ≈4", ratio)
	}
}

func TestAppleseedNonlinearNormalizationSharpens(t *testing.T) {
	edges := [][3]interface{}{
		{"a", "strong", 1.0},
		{"a", "weak", 0.5},
	}
	lin, err := Appleseed(build(t, edges), "a", AppleseedOptions{NormExponent: 1})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := Appleseed(build(t, edges), "a", AppleseedOptions{NormExponent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(nb *Neighborhood) float64 {
		s, _ := nb.RankOf("strong")
		w, _ := nb.RankOf("weak")
		return s / w
	}
	if ratio(sq) <= ratio(lin) {
		t.Fatalf("q=2 must favor the strong edge more: lin=%v sq=%v", ratio(lin), ratio(sq))
	}
}

func TestAppleseedMultiplePathsRankHigher(t *testing.T) {
	// d is trusted by both b and c; e only by b. Same depth, equal
	// weights — d must outrank e.
	net := build(t, [][3]interface{}{
		{"a", "b", 1.0},
		{"a", "c", 1.0},
		{"b", "d", 1.0},
		{"c", "d", 1.0},
		{"b", "e", 1.0},
	})
	nb, err := Appleseed(net, "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := nb.RankOf("d")
	re, _ := nb.RankOf("e")
	if rd <= re {
		t.Fatalf("peer trusted via two paths must outrank single-path peer: d=%v e=%v", rd, re)
	}
}

func TestAppleseedDistrustDoesNotPropagate(t *testing.T) {
	// a distrusts b; b trusts c. Neither b nor c may receive rank.
	net := build(t, [][3]interface{}{
		{"a", "b", -1.0},
		{"b", "c", 1.0},
		{"a", "d", 0.5},
	})
	nb, err := Appleseed(net, "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Contains("b") || nb.Contains("c") {
		t.Fatalf("distrusted subtree leaked into neighborhood: %+v", nb.Ranks)
	}
	if !nb.Contains("d") {
		t.Fatal("trusted peer missing")
	}
}

func TestAppleseedRespectDistrust(t *testing.T) {
	// c is reachable via b but directly distrusted by the source.
	edges := [][3]interface{}{
		{"a", "b", 1.0},
		{"b", "c", 1.0},
		{"a", "c", -0.5},
	}
	without, err := Appleseed(build(t, edges), "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !without.Contains("c") {
		t.Fatal("without RespectDistrust, c should be ranked via b")
	}
	with, err := Appleseed(build(t, edges), "a", AppleseedOptions{RespectDistrust: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Contains("c") {
		t.Fatal("RespectDistrust must drop directly distrusted peers")
	}
}

func TestAppleseedDistrustPenalty(t *testing.T) {
	// c is positively reached via b, but the source distrusts it with
	// full strength: γ=1 zeroes it, γ=0.5 halves it, γ=0 leaves it.
	edges := [][3]interface{}{
		{"a", "b", 1.0},
		{"b", "c", 1.0},
		{"b", "d", 1.0},
		{"a", "c", -1.0},
	}
	base, err := Appleseed(build(t, edges), "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc0, _ := base.RankOf("c")
	rd0, _ := base.RankOf("d")
	if rc0 != rd0 {
		t.Fatalf("symmetric peers should tie without penalty: %v vs %v", rc0, rd0)
	}

	half, err := Appleseed(build(t, edges), "a", AppleseedOptions{DistrustPenalty: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rcHalf, _ := half.RankOf("c")
	if math := rcHalf / rc0; math < 0.49 || math > 0.51 {
		t.Fatalf("γ=0.5 should halve the rank, got factor %v", math)
	}

	full, err := Appleseed(build(t, edges), "a", AppleseedOptions{DistrustPenalty: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Contains("c") {
		t.Fatal("γ=1 full-strength source distrust must remove the peer")
	}
	if rd, _ := full.RankOf("d"); rd != rd0 {
		t.Fatalf("unrelated peer's rank changed: %v vs %v", rd, rd0)
	}
}

func TestAppleseedDistrustPenaltyWeighedByDistruster(t *testing.T) {
	// Two distrusters of w: high-ranked b and low-ranked e. Demotion by b
	// must exceed demotion by e, since distrust carries the distruster's
	// standing.
	common := [][3]interface{}{
		{"a", "b", 1.0},
		{"a", "e", 0.1},
		{"a", "w", 1.0},
	}
	byStrong := append(append([][3]interface{}{}, common...),
		[3]interface{}{"b", "w", -1.0})
	byWeak := append(append([][3]interface{}{}, common...),
		[3]interface{}{"e", "w", -1.0})

	strong, err := Appleseed(build(t, byStrong), "a", AppleseedOptions{DistrustPenalty: 1})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Appleseed(build(t, byWeak), "a", AppleseedOptions{DistrustPenalty: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := strong.RankOf("w")
	rw, _ := weak.RankOf("w")
	if rs >= rw {
		t.Fatalf("high-ranked distruster must demote more: %v (strong) vs %v (weak)", rs, rw)
	}
}

func TestAppleseedDistrustPenaltyValidation(t *testing.T) {
	net := build(t, [][3]interface{}{{"a", "b", 1.0}})
	if _, err := Appleseed(net, "a", AppleseedOptions{DistrustPenalty: 1.5}); err == nil {
		t.Fatal("penalty > 1 accepted")
	}
	if _, err := Appleseed(net, "a", AppleseedOptions{DistrustPenalty: -0.1}); err == nil {
		t.Fatal("negative penalty accepted")
	}
}

func TestAppleseedMaxNodesBoundsExploration(t *testing.T) {
	// Star with 50 spokes plus a deep chain.
	edges := [][3]interface{}{}
	for i := 0; i < 50; i++ {
		edges = append(edges, [3]interface{}{"a", "s" + itoa(i), 1.0})
	}
	net := build(t, edges)
	nb, err := Appleseed(net, "a", AppleseedOptions{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Ranks) > 10 {
		t.Fatalf("MaxNodes=10 but %d peers ranked", len(nb.Ranks))
	}
}

func TestAppleseedDeterministic(t *testing.T) {
	edges := [][3]interface{}{
		{"a", "b", 0.9}, {"a", "c", 0.7}, {"b", "d", 0.8},
		{"c", "d", 0.6}, {"d", "e", 1.0}, {"e", "a", 0.5},
	}
	n1, err := Appleseed(build(t, edges), "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Appleseed(build(t, edges), "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(n1.Ranks) != len(n2.Ranks) {
		t.Fatal("nondeterministic rank count")
	}
	for i := range n1.Ranks {
		if n1.Ranks[i] != n2.Ranks[i] {
			t.Fatalf("nondeterministic ranks at %d: %+v vs %+v", i, n1.Ranks[i], n2.Ranks[i])
		}
	}
}

func TestAppleseedBackpropKeepsEnergyInNetwork(t *testing.T) {
	// b is a dead end. With backprop, energy returns to a and is re-spread
	// toward c as well; without it, the energy b receives dissipates.
	edges := [][3]interface{}{
		{"a", "b", 1.0},
		{"a", "c", 1.0},
		{"c", "d", 1.0},
	}
	withBP, err := Appleseed(build(t, edges), "a", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noBP, err := Appleseed(build(t, edges), "a", AppleseedOptions{NoBackprop: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(nb *Neighborhood) float64 {
		var s float64
		for _, r := range nb.Ranks {
			s += r.Trust
		}
		return s
	}
	if sum(withBP) <= sum(noBP) {
		t.Fatalf("backprop should retain more energy as rank: with=%v without=%v",
			sum(withBP), sum(noBP))
	}
}

func TestAppleseedEmptyAndUnknownSource(t *testing.T) {
	net := FromCommunity(model.NewCommunity(nil))
	nb, err := Appleseed(net, "ghost", AppleseedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Ranks) != 0 {
		t.Fatalf("unknown source must yield empty neighborhood, got %+v", nb.Ranks)
	}
}

func TestAppleseedOptionValidation(t *testing.T) {
	net := FromCommunity(model.NewCommunity(nil))
	bad := []AppleseedOptions{
		{Injection: -1},
		{SpreadingFactor: 1.5},
		{Threshold: -0.1},
		{NormExponent: -2},
	}
	for i, o := range bad {
		if _, err := Appleseed(net, "a", o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

// Property: total accumulated rank never exceeds the injected energy, and
// all ranks are positive (energy conservation of spreading activation).
func TestAppleseedEnergyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := model.NewCommunity(nil)
		n := 12
		ids := make([]model.AgentID, n)
		for i := range ids {
			ids[i] = model.AgentID("a" + itoa(i))
		}
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			_ = c.SetTrust(ids[s], ids[d], rng.Float64())
		}
		const inj = 200.0
		nb, err := Appleseed(FromCommunity(c), ids[0], AppleseedOptions{Injection: inj})
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range nb.Ranks {
			if r.Trust <= 0 {
				return false
			}
			sum += r.Trust
		}
		return sum <= inj+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: shrinking the convergence threshold only adds rank mass (more
// iterations accumulate more), and ordering of clearly separated peers is
// stable.
func TestAppleseedThresholdMonotone(t *testing.T) {
	edges := [][3]interface{}{
		{"a", "b", 1.0}, {"b", "c", 0.8}, {"c", "d", 0.6}, {"a", "d", 0.3},
	}
	coarse, err := Appleseed(build(t, edges), "a", AppleseedOptions{Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Appleseed(build(t, edges), "a", AppleseedOptions{Threshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(nb *Neighborhood) float64 {
		var s float64
		for _, r := range nb.Ranks {
			s += r.Trust
		}
		return s
	}
	if sum(fine) < sum(coarse) {
		t.Fatalf("finer threshold lost rank mass: %v < %v", sum(fine), sum(coarse))
	}
	if fine.Iterations < coarse.Iterations {
		t.Fatalf("finer threshold took fewer iterations: %d < %d", fine.Iterations, coarse.Iterations)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
