package trust

import (
	"context"
	"fmt"
	"math"

	"swrec/internal/model"
)

// AppleseedOptions parameterize the Appleseed spreading-activation metric.
// Zero-value fields take the defaults the Appleseed paper evaluates with.
type AppleseedOptions struct {
	// Injection is the initial energy in0 pumped into the source node.
	// Default 200.
	Injection float64
	// SpreadingFactor d ∈ (0,1) is the share of incoming energy a node
	// passes on to its trusted successors; the node keeps (1-d) as rank.
	// Low d concentrates trust near the source, high d spreads it deep
	// into the network. Default 0.85.
	SpreadingFactor float64
	// Threshold Tc is the convergence accuracy: iteration stops when no
	// node's accumulated rank changed by more than Tc in one pass.
	// Default 0.05.
	Threshold float64
	// MaxNodes bounds the expansion range: once this many distinct peers
	// have been discovered, no further nodes are added (edges to
	// undiscovered agents are dropped, energy re-normalizes over the
	// remaining ones). 0 means unbounded. This is the "predefined range"
	// that keeps neighborhood detection scalable (§3.2).
	MaxNodes int
	// MaxIterations is a safety stop. Default 200.
	MaxIterations int
	// NormExponent q applies nonlinear weight normalization: an edge's
	// share is w^q / Σ w'^q. q=1 is linear; q>1 favors highly trusted
	// successors, the "more fine-grained analysis" knob. Default 1.
	NormExponent float64
	// NoBackprop disables the virtual backward edges to the source that
	// Appleseed adds for every discovered node. Backward propagation
	// returns a share of energy to the source, penalizing rank hoarding
	// in remote cliques; disabling it is only useful for ablation (E4).
	NoBackprop bool
	// RespectDistrust removes peers the *source* explicitly distrusts
	// (negative direct statement) from the final neighborhood. Distrusted
	// edges never propagate energy in any case. Default false.
	RespectDistrust bool
	// DistrustPenalty γ ∈ [0,1] applies graded distrust after
	// convergence: for every negative statement x → y among explored
	// peers, y's rank is demoted multiplicatively by
	//
	//	rank(y) *= 1 - γ · normRank(x) · |t_x(y)|
	//
	// where normRank is the distruster's own rank relative to the
	// maximum (the source counts as 1). Distrust thus carries exactly as
	// much weight as the community accords the distruster — the graded
	// treatment [12] discusses, generalizing the boolean RespectDistrust.
	// 0 (default) disables it.
	DistrustPenalty float64
}

// withDefaults fills zero fields with the standard parameters.
func (o AppleseedOptions) withDefaults() AppleseedOptions {
	if o.Injection == 0 {
		o.Injection = 200
	}
	if o.SpreadingFactor == 0 {
		o.SpreadingFactor = 0.85
	}
	if o.Threshold == 0 {
		o.Threshold = 0.05
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.NormExponent == 0 {
		o.NormExponent = 1
	}
	return o
}

// validate rejects parameters outside their meaningful domains.
func (o AppleseedOptions) validate() error {
	if o.Injection <= 0 {
		return fmt.Errorf("trust: injection must be positive, got %v", o.Injection)
	}
	if o.SpreadingFactor <= 0 || o.SpreadingFactor >= 1 {
		return fmt.Errorf("trust: spreading factor must be in (0,1), got %v", o.SpreadingFactor)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("trust: threshold must be positive, got %v", o.Threshold)
	}
	if o.NormExponent <= 0 {
		return fmt.Errorf("trust: norm exponent must be positive, got %v", o.NormExponent)
	}
	if o.DistrustPenalty < 0 || o.DistrustPenalty > 1 {
		return fmt.Errorf("trust: distrust penalty must be in [0,1], got %v", o.DistrustPenalty)
	}
	return nil
}

// appleseedNode is the mutable per-node state of one computation.
type appleseedNode struct {
	id    model.AgentID
	in    float64 // energy received this pass
	inNew float64 // energy accumulating for next pass
	rank  float64 // trust rank accumulated so far
	// succ holds the node's positive out-edges discovered so far, as
	// (target index, weight^q) with the precomputed normalization total.
	succ      []appleseedEdge
	succTotal float64
	fetched   bool // trust statements already pulled from the Network
}

type appleseedEdge struct {
	to int
	w  float64 // weight raised to NormExponent
}

// Appleseed computes the trust neighborhood of source over net using the
// spreading-activation model of [12]:
//
//	in_{new}(y) += d · in(x) · w(x,y)^q / Σ_z w(x,z)^q
//	rank(x)    += (1-d) · in(x)
//
// with a virtual edge (y → source, weight 1) added for every node upon
// discovery (backward propagation), iterated until every node's rank moves
// by less than Threshold. The source itself accumulates no rank and never
// appears in the result.
//
// Only positive trust statements propagate energy: distrust must not make
// its target's *successors* trustworthy. With RespectDistrust set, peers
// directly distrusted by the source are additionally removed from the
// result.
func Appleseed(net Network, source model.AgentID, opt AppleseedOptions) (*Neighborhood, error) {
	return AppleseedCtx(context.Background(), net, source, opt)
}

// AppleseedCtx is Appleseed with cancellation: the iteration loop checks
// ctx at every pass boundary, so a caller's deadline interrupts a long
// spreading-activation run within one pass rather than after
// MaxIterations. Returns ctx.Err() when cancelled.
func AppleseedCtx(ctx context.Context, net Network, source model.AgentID, opt AppleseedOptions) (*Neighborhood, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	idx := map[model.AgentID]int{source: 0}
	nodes := []*appleseedNode{{id: source, in: opt.Injection}}

	// discover returns the index for id, registering it (with its virtual
	// backward edge) the first time; full==true when MaxNodes forbids new
	// nodes.
	discover := func(id model.AgentID) (int, bool) {
		if i, ok := idx[id]; ok {
			return i, true
		}
		if opt.MaxNodes > 0 && len(nodes) >= opt.MaxNodes+1 {
			return 0, false
		}
		i := len(nodes)
		idx[id] = i
		n := &appleseedNode{id: id}
		if !opt.NoBackprop {
			n.succ = append(n.succ, appleseedEdge{to: 0, w: 1})
			n.succTotal = 1
		}
		nodes = append(nodes, n)
		return i, true
	}

	// fetch pulls x's trust statements from the network once and attaches
	// its positive out-edges. Negative statements never propagate energy;
	// they are recorded for the optional post-convergence penalty.
	type negEdge struct {
		from int
		to   model.AgentID
		w    float64 // |t_x(y)|
	}
	var negEdges []negEdge
	explored := 0
	fetch := func(xi int) {
		x := nodes[xi]
		if x.fetched {
			return
		}
		x.fetched = true
		explored++
		for _, st := range net.Peers(x.id) {
			if st.Dst == x.id {
				continue
			}
			if st.Value <= 0 {
				if st.Value < 0 && opt.DistrustPenalty > 0 {
					negEdges = append(negEdges, negEdge{from: xi, to: st.Dst, w: -st.Value})
				}
				continue
			}
			yi, ok := discover(st.Dst)
			if !ok || yi == xi {
				continue
			}
			w := math.Pow(st.Value, opt.NormExponent)
			x.succ = append(x.succ, appleseedEdge{to: yi, w: w})
			x.succTotal += w
		}
	}

	d := opt.SpreadingFactor
	iterations := 0
	for ; iterations < opt.MaxIterations; iterations++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		// Snapshot length: nodes discovered during this pass only start
		// receiving energy now and are processed next pass.
		live := len(nodes)
		for xi := 0; xi < live; xi++ {
			x := nodes[xi]
			if x.in == 0 {
				continue
			}
			fetch(xi)
			energy := x.in
			x.in = 0
			if xi != 0 { // the source hoards no rank
				x.rank += (1 - d) * energy
				if delta := (1 - d) * energy; delta > maxDelta {
					maxDelta = delta
				}
			}
			if x.succTotal == 0 {
				// Dead end without backprop: energy dissipates, exactly
				// like rank sinks in spreading activation models.
				continue
			}
			for _, e := range x.succ {
				nodes[e.to].inNew += d * energy * e.w / x.succTotal
			}
		}
		for _, n := range nodes {
			n.in += n.inNew
			n.inNew = 0
		}
		if maxDelta < opt.Threshold && iterations > 0 {
			break
		}
	}

	// Graded distrust: demote each distrusted peer proportionally to the
	// distruster's own standing.
	if opt.DistrustPenalty > 0 && len(negEdges) > 0 {
		maxRank := 0.0
		for _, n := range nodes[1:] {
			if n.rank > maxRank {
				maxRank = n.rank
			}
		}
		for _, e := range negEdges {
			yi, ok := idx[e.to]
			if !ok || yi == 0 {
				continue // never positively reached, or the source itself
			}
			normRank := 1.0 // the source's word counts fully
			if e.from != 0 {
				if maxRank == 0 {
					continue
				}
				normRank = nodes[e.from].rank / maxRank
			}
			factor := 1 - opt.DistrustPenalty*normRank*e.w
			if factor < 0 {
				factor = 0
			}
			nodes[yi].rank *= factor
		}
	}

	// Collect ranks; optionally drop peers the source explicitly
	// distrusts.
	distrusted := map[model.AgentID]bool{}
	if opt.RespectDistrust {
		for _, st := range net.Peers(source) {
			if st.Value < 0 {
				distrusted[st.Dst] = true
			}
		}
	}
	nb := &Neighborhood{Source: source, Iterations: iterations, Explored: explored}
	for _, n := range nodes[1:] {
		if n.rank <= 0 || distrusted[n.id] {
			continue
		}
		nb.Ranks = append(nb.Ranks, Rank{Agent: n.id, Trust: n.rank})
	}
	sortRanks(nb.Ranks)
	return nb, nil
}
