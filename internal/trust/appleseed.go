package trust

import (
	"context"
	"fmt"
	"math"

	"swrec/internal/graph"
	"swrec/internal/model"
)

// AppleseedOptions parameterize the Appleseed spreading-activation metric.
// Zero-value fields take the defaults the Appleseed paper evaluates with.
type AppleseedOptions struct {
	// Injection is the initial energy in0 pumped into the source node.
	// Default 200.
	Injection float64
	// SpreadingFactor d ∈ (0,1) is the share of incoming energy a node
	// passes on to its trusted successors; the node keeps (1-d) as rank.
	// Low d concentrates trust near the source, high d spreads it deep
	// into the network. Default 0.85.
	SpreadingFactor float64
	// Threshold Tc is the convergence accuracy: iteration stops when no
	// node's accumulated rank changed by more than Tc in one pass.
	// Default 0.05.
	Threshold float64
	// MaxNodes bounds the expansion range: once this many distinct peers
	// have been discovered, no further nodes are added (edges to
	// undiscovered agents are dropped, energy re-normalizes over the
	// remaining ones). 0 means unbounded. This is the "predefined range"
	// that keeps neighborhood detection scalable (§3.2).
	MaxNodes int
	// MaxIterations is a safety stop. Default 200.
	MaxIterations int
	// NormExponent q applies nonlinear weight normalization: an edge's
	// share is w^q / Σ w'^q. q=1 is linear; q>1 favors highly trusted
	// successors, the "more fine-grained analysis" knob. Default 1.
	NormExponent float64
	// NoBackprop disables the virtual backward edges to the source that
	// Appleseed adds for every discovered node. Backward propagation
	// returns a share of energy to the source, penalizing rank hoarding
	// in remote cliques; disabling it is only useful for ablation (E4).
	NoBackprop bool
	// RespectDistrust removes peers the *source* explicitly distrusts
	// (negative direct statement) from the final neighborhood. Distrusted
	// edges never propagate energy in any case. Default false.
	RespectDistrust bool
	// DistrustPenalty γ ∈ [0,1] applies graded distrust after
	// convergence: for every negative statement x → y among explored
	// peers, y's rank is demoted multiplicatively by
	//
	//	rank(y) *= 1 - γ · normRank(x) · |t_x(y)|
	//
	// where normRank is the distruster's own rank relative to the
	// maximum (the source counts as 1). Distrust thus carries exactly as
	// much weight as the community accords the distruster — the graded
	// treatment [12] discusses, generalizing the boolean RespectDistrust.
	// 0 (default) disables it.
	DistrustPenalty float64
}

// withDefaults fills zero fields with the standard parameters.
func (o AppleseedOptions) withDefaults() AppleseedOptions {
	if o.Injection == 0 {
		o.Injection = 200
	}
	if o.SpreadingFactor == 0 {
		o.SpreadingFactor = 0.85
	}
	if o.Threshold == 0 {
		o.Threshold = 0.05
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.NormExponent == 0 {
		o.NormExponent = 1
	}
	return o
}

// validate rejects parameters outside their meaningful domains.
func (o AppleseedOptions) validate() error {
	if o.Injection <= 0 {
		return fmt.Errorf("trust: injection must be positive, got %v", o.Injection)
	}
	if o.SpreadingFactor <= 0 || o.SpreadingFactor >= 1 {
		return fmt.Errorf("trust: spreading factor must be in (0,1), got %v", o.SpreadingFactor)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("trust: threshold must be positive, got %v", o.Threshold)
	}
	if o.NormExponent <= 0 {
		return fmt.Errorf("trust: norm exponent must be positive, got %v", o.NormExponent)
	}
	if o.DistrustPenalty < 0 || o.DistrustPenalty > 1 {
		return fmt.Errorf("trust: distrust penalty must be in [0,1], got %v", o.DistrustPenalty)
	}
	return nil
}

// appleseedNode is the mutable per-node state of one computation. Nodes
// live in one contiguous slab indexed by discovery order — pointer-free,
// so a 400-node computation costs a handful of slab growths instead of
// one allocation per node.
type appleseedNode struct {
	id    model.AgentID
	in    float64 // energy received this pass
	inNew float64 // energy accumulating for next pass
	rank  float64 // trust rank accumulated so far
	// succ holds the node's out-edges, built once at fetch time: the
	// virtual backward edge (if any) first, then the positive statements
	// as (target index, weight^q), with the normalization total.
	succ      []appleseedEdge
	succTotal float64
	fetched   bool // trust statements already pulled from the Network
}

type appleseedEdge struct {
	to int
	w  float64 // weight raised to NormExponent
}

// Appleseed computes the trust neighborhood of source over net using the
// spreading-activation model of [12]:
//
//	in_{new}(y) += d · in(x) · w(x,y)^q / Σ_z w(x,z)^q
//	rank(x)    += (1-d) · in(x)
//
// with a virtual edge (y → source, weight 1) added for every node upon
// discovery (backward propagation), iterated until every node's rank moves
// by less than Threshold. The source itself accumulates no rank and never
// appears in the result.
//
// Only positive trust statements propagate energy: distrust must not make
// its target's *successors* trustworthy. With RespectDistrust set, peers
// directly distrusted by the source are additionally removed from the
// result.
func Appleseed(net Network, source model.AgentID, opt AppleseedOptions) (*Neighborhood, error) {
	return AppleseedCtx(context.Background(), net, source, opt)
}

// AppleseedCtx is Appleseed with cancellation: the iteration loop checks
// ctx at every pass boundary, so a caller's deadline interrupts a long
// spreading-activation run within one pass rather than after
// MaxIterations. Returns ctx.Err() when cancelled.
func AppleseedCtx(ctx context.Context, net Network, source model.AgentID, opt AppleseedOptions) (*Neighborhood, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	// Community-backed networks expose resolved, densely-interned edges:
	// take the hash-free walk. Unknown sources fall through to the
	// generic path, which yields the canonical empty neighborhood.
	if rn, ok := net.(refNetwork); ok {
		if src := rn.AgentRef(source); src != nil {
			return appleseedRefs(ctx, rn, src, opt)
		}
	}

	// Pre-size the node slab and interner to the graph bound when the
	// network exposes one (community adapters do), capped by the
	// expansion range — growth reallocations dominate the metric's
	// allocation profile otherwise.
	hint := 256
	if sh, ok := net.(sizeHinter); ok {
		if n := sh.NumAgents() + 1; n > 0 {
			hint = n
		}
	}
	if opt.MaxNodes > 0 && hint > opt.MaxNodes+1 {
		hint = opt.MaxNodes + 1
	}
	// sym interns agent URIs in discovery order, so an agent's interned
	// ordinal IS its node index — the only string-keyed structure of the
	// whole walk, touched once per discovery, never on the hot update loop.
	var sym graph.Interner
	sym.Reserve(hint)
	sym.Intern(string(source))
	nodes := make([]appleseedNode, 1, hint)
	nodes[0] = appleseedNode{id: source, in: opt.Injection}

	// discover returns the index for id, registering it the first time;
	// ok==false when MaxNodes forbids new nodes. Out-edges (including the
	// virtual backward edge) are attached lazily at fetch time — only
	// nodes that actually receive energy pay for an edge list.
	discover := func(id model.AgentID) (int, bool) {
		if i, ok := sym.Lookup(string(id)); ok {
			return i, true
		}
		if opt.MaxNodes > 0 && len(nodes) >= opt.MaxNodes+1 {
			return 0, false
		}
		i := sym.Intern(string(id))
		nodes = append(nodes, appleseedNode{id: id})
		return i, true
	}

	// fetch pulls x's trust statements from the network once and attaches
	// its out-edges in one pre-sized slice: the backward edge first (as
	// discover used to order it), then the positive statements. Negative
	// statements never propagate energy; they are recorded for the
	// optional post-convergence penalty.
	type negEdge struct {
		from int
		to   model.AgentID
		w    float64 // |t_x(y)|
	}
	var negEdges []negEdge
	explored := 0
	linearWeights := opt.NormExponent == 1
	fetch := func(xi int) {
		if nodes[xi].fetched {
			return
		}
		nodes[xi].fetched = true
		explored++
		stmts := net.Peers(nodes[xi].id)
		succ := make([]appleseedEdge, 0, len(stmts)+1)
		var total float64
		if xi != 0 && !opt.NoBackprop {
			succ = append(succ, appleseedEdge{to: 0, w: 1})
			total = 1
		}
		self := nodes[xi].id
		for _, st := range stmts {
			if st.Dst == self {
				continue
			}
			if st.Value <= 0 {
				if st.Value < 0 && opt.DistrustPenalty > 0 {
					negEdges = append(negEdges, negEdge{from: xi, to: st.Dst, w: -st.Value})
				}
				continue
			}
			yi, ok := discover(st.Dst) // may grow the slab; index access only below
			if !ok || yi == xi {
				continue
			}
			w := st.Value
			if !linearWeights {
				w = math.Pow(st.Value, opt.NormExponent)
			}
			succ = append(succ, appleseedEdge{to: yi, w: w})
			total += w
		}
		nodes[xi].succ = succ
		nodes[xi].succTotal = total
	}

	d := opt.SpreadingFactor
	iterations := 0
	for ; iterations < opt.MaxIterations; iterations++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		// Snapshot length: nodes discovered during this pass only start
		// receiving energy now and are processed next pass.
		live := len(nodes)
		for xi := 0; xi < live; xi++ {
			if nodes[xi].in == 0 {
				continue
			}
			fetch(xi) // may grow the slab: re-take the pointer after
			x := &nodes[xi]
			energy := x.in
			x.in = 0
			if xi != 0 { // the source hoards no rank
				x.rank += (1 - d) * energy
				if delta := (1 - d) * energy; delta > maxDelta {
					maxDelta = delta
				}
			}
			if x.succTotal == 0 {
				// Dead end without backprop: energy dissipates, exactly
				// like rank sinks in spreading activation models.
				continue
			}
			m := d * energy / x.succTotal
			for _, e := range x.succ {
				nodes[e.to].inNew += m * e.w
			}
		}
		for i := range nodes {
			nodes[i].in += nodes[i].inNew
			nodes[i].inNew = 0
		}
		if maxDelta < opt.Threshold && iterations > 0 {
			break
		}
	}

	// Graded distrust: demote each distrusted peer proportionally to the
	// distruster's own standing.
	if opt.DistrustPenalty > 0 && len(negEdges) > 0 {
		maxRank := 0.0
		for i := 1; i < len(nodes); i++ {
			if nodes[i].rank > maxRank {
				maxRank = nodes[i].rank
			}
		}
		for _, e := range negEdges {
			yi, ok := sym.Lookup(string(e.to))
			if !ok || yi == 0 {
				continue // never positively reached, or the source itself
			}
			normRank := 1.0 // the source's word counts fully
			if e.from != 0 {
				if maxRank == 0 {
					continue
				}
				normRank = nodes[e.from].rank / maxRank
			}
			factor := 1 - opt.DistrustPenalty*normRank*e.w
			if factor < 0 {
				factor = 0
			}
			nodes[yi].rank *= factor
		}
	}

	// Collect ranks; optionally drop peers the source explicitly
	// distrusts — a dense node-indexed flag vector, since every peer that
	// could appear in the result has an interned node index.
	var distrusted []bool
	if opt.RespectDistrust {
		distrusted = make([]bool, len(nodes))
		for _, st := range net.Peers(source) {
			if st.Value < 0 {
				if i, ok := sym.Lookup(string(st.Dst)); ok {
					distrusted[i] = true
				}
			}
		}
	}
	nb := &Neighborhood{Source: source, Iterations: iterations, Explored: explored}
	nb.Ranks = make([]Rank, 0, len(nodes)-1)
	for i := 1; i < len(nodes); i++ {
		if nodes[i].rank <= 0 || (distrusted != nil && distrusted[i]) {
			continue
		}
		nb.Ranks = append(nb.Ranks, Rank{Agent: nodes[i].id, Trust: nodes[i].rank})
	}
	sortRanks(nb.Ranks)
	return nb, nil
}

// appleseedRefNode is the per-node state of the refs-based walk: the
// same fields as appleseedNode with the agent resolved to its record.
type appleseedRefNode struct {
	ref       *model.Agent
	in        float64
	inNew     float64
	rank      float64
	succ      []appleseedEdge
	succTotal float64
	fetched   bool
}

// appleseedRefs is AppleseedCtx over a refNetwork: identical update
// rule, iteration order, and convergence test, but node discovery and
// edge traversal index a flat ordinal table instead of hashing string
// agent IDs — on community-sized neighborhoods this removes thousands
// of map operations per computation. opt must already be defaulted and
// validated.
func appleseedRefs(ctx context.Context, net refNetwork, src *model.Agent, opt AppleseedOptions) (*Neighborhood, error) {
	hint := net.NumAgents() + 1
	if opt.MaxNodes > 0 && hint > opt.MaxNodes+1 {
		hint = opt.MaxNodes + 1
	}
	// idx[ord] is the node index + 1 of the agent with that ordinal
	// (0 = undiscovered) — the community interns agents densely, so the
	// table covers every reachable agent.
	idx := make([]int32, net.NumAgents())
	nodes := make([]appleseedRefNode, 1, hint)
	nodes[0] = appleseedRefNode{ref: src, in: opt.Injection}
	idx[src.Ord()] = 1

	discover := func(ref *model.Agent) (int, bool) {
		if i := idx[ref.Ord()]; i != 0 {
			return int(i) - 1, true
		}
		if opt.MaxNodes > 0 && len(nodes) >= opt.MaxNodes+1 {
			return 0, false
		}
		i := len(nodes)
		idx[ref.Ord()] = int32(i) + 1
		nodes = append(nodes, appleseedRefNode{ref: ref})
		return i, true
	}

	type negEdge struct {
		from int
		to   *model.Agent
		w    float64 // |t_x(y)|
	}
	var negEdges []negEdge
	explored := 0
	linearWeights := opt.NormExponent == 1
	fetch := func(xi int) {
		if nodes[xi].fetched {
			return
		}
		nodes[xi].fetched = true
		explored++
		refs := net.PeerRefs(nodes[xi].ref)
		succ := make([]appleseedEdge, 0, len(refs)+1)
		var total float64
		if xi != 0 && !opt.NoBackprop {
			succ = append(succ, appleseedEdge{to: 0, w: 1})
			total = 1
		}
		self := nodes[xi].ref
		for _, pr := range refs {
			if pr.Peer == self {
				continue
			}
			if pr.Value <= 0 {
				if pr.Value < 0 && opt.DistrustPenalty > 0 {
					negEdges = append(negEdges, negEdge{from: xi, to: pr.Peer, w: -pr.Value})
				}
				continue
			}
			yi, ok := discover(pr.Peer) // may grow the slab; index access only below
			if !ok || yi == xi {
				continue
			}
			w := pr.Value
			if !linearWeights {
				w = math.Pow(pr.Value, opt.NormExponent)
			}
			succ = append(succ, appleseedEdge{to: yi, w: w})
			total += w
		}
		nodes[xi].succ = succ
		nodes[xi].succTotal = total
	}

	d := opt.SpreadingFactor
	iterations := 0
	for ; iterations < opt.MaxIterations; iterations++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		live := len(nodes)
		for xi := 0; xi < live; xi++ {
			if nodes[xi].in == 0 {
				continue
			}
			fetch(xi) // may grow the slab: re-take the pointer after
			x := &nodes[xi]
			energy := x.in
			x.in = 0
			if xi != 0 { // the source hoards no rank
				x.rank += (1 - d) * energy
				if delta := (1 - d) * energy; delta > maxDelta {
					maxDelta = delta
				}
			}
			if x.succTotal == 0 {
				continue
			}
			m := d * energy / x.succTotal
			for _, e := range x.succ {
				nodes[e.to].inNew += m * e.w
			}
		}
		for i := range nodes {
			nodes[i].in += nodes[i].inNew
			nodes[i].inNew = 0
		}
		if maxDelta < opt.Threshold && iterations > 0 {
			break
		}
	}

	if opt.DistrustPenalty > 0 && len(negEdges) > 0 {
		maxRank := 0.0
		for i := 1; i < len(nodes); i++ {
			if nodes[i].rank > maxRank {
				maxRank = nodes[i].rank
			}
		}
		for _, e := range negEdges {
			ni := idx[e.to.Ord()]
			if ni <= 1 {
				continue // never positively reached, or the source itself
			}
			yi := int(ni) - 1
			normRank := 1.0 // the source's word counts fully
			if e.from != 0 {
				if maxRank == 0 {
					continue
				}
				normRank = nodes[e.from].rank / maxRank
			}
			factor := 1 - opt.DistrustPenalty*normRank*e.w
			if factor < 0 {
				factor = 0
			}
			nodes[yi].rank *= factor
		}
	}

	var distrusted map[*model.Agent]bool
	if opt.RespectDistrust {
		distrusted = make(map[*model.Agent]bool)
		for _, pr := range net.PeerRefs(src) {
			if pr.Value < 0 {
				distrusted[pr.Peer] = true
			}
		}
	}
	nb := &Neighborhood{Source: src.ID, Iterations: iterations, Explored: explored}
	nb.Ranks = make([]Rank, 0, len(nodes)-1)
	for i := 1; i < len(nodes); i++ {
		if nodes[i].rank <= 0 || distrusted[nodes[i].ref] {
			continue
		}
		nb.Ranks = append(nb.Ranks, Rank{Agent: nodes[i].ref.ID, Trust: nodes[i].rank})
	}
	sortRanks(nb.Ranks)
	return nb, nil
}
