package trust

import (
	"swrec/internal/graph"
	"swrec/internal/model"
)

// WidenOneHop expands a computed neighborhood by one trust hop beyond
// its current range — the ladder's answer to thin neighborhoods where
// the metric's "predefined range" (§3.2) left too few peers to vote.
// Following the horizon-widening idea of Jamali's distributed
// trust-aware recommendation, every positively trusted peer of the
// source or of a current member that is not yet in range joins with
//
//	rank(y) = decay · rank(x) · t_x(y)
//
// where x is the contributing member (the source contributes with the
// neighborhood's maximum rank, or 1 when the neighborhood is empty) and
// t_x(y) its positive trust statement. A peer reachable from several
// members keeps the strongest contribution. Existing members keep their
// ranks untouched; negative statements never widen (distrust must not
// recruit). The input neighborhood is not modified.
//
// Community-backed networks take an ordinal-indexed walk: membership and
// contributions live in flat tables indexed by Agent.Ord, so no edge
// visit hashes a URI. Generic networks fall back to interning discovered
// agents to dense indices once each.
func WidenOneHop(net Network, nb *Neighborhood, decay float64) *Neighborhood {
	if decay <= 0 || decay > 1 {
		decay = 0.5
	}
	if rn, ok := net.(refNetwork); ok {
		if src := rn.AgentRef(nb.Source); src != nil {
			return widenRefs(rn, nb, src, decay)
		}
	}
	return widenGeneric(net, nb, decay)
}

// widenRefs is the refNetwork fast path: in/added are dense ordinal
// tables, the touched list keeps the collection pass proportional to the
// widened frontier rather than the community size.
func widenRefs(net refNetwork, nb *Neighborhood, src *model.Agent, decay float64) *Neighborhood {
	n := net.NumAgents()
	in := make([]bool, n)
	added := make([]float64, n)
	var touched []*model.Agent

	in[src.Ord()] = true
	maxRank := 0.0
	for _, r := range nb.Ranks {
		if a := net.AgentRef(r.Agent); a != nil {
			in[a.Ord()] = true
		}
		if r.Trust > maxRank {
			maxRank = r.Trust
		}
	}
	if maxRank <= 0 {
		maxRank = 1
	}

	explored := 0
	contribute := func(from *model.Agent, rank float64) {
		explored++
		for _, pr := range net.PeerRefs(from) {
			if pr.Value <= 0 {
				continue
			}
			ord := pr.Peer.Ord()
			if in[ord] {
				continue
			}
			if r := decay * rank * pr.Value; r > added[ord] {
				if added[ord] == 0 {
					touched = append(touched, pr.Peer)
				}
				added[ord] = r
			}
		}
	}
	contribute(src, maxRank)
	for _, r := range nb.Ranks {
		if a := net.AgentRef(r.Agent); a != nil {
			contribute(a, r.Trust)
		}
	}

	out := &Neighborhood{
		Source:     nb.Source,
		Iterations: nb.Iterations,
		Explored:   nb.Explored + explored,
	}
	out.Ranks = make([]Rank, len(nb.Ranks), len(nb.Ranks)+len(touched))
	copy(out.Ranks, nb.Ranks)
	for _, ref := range touched {
		out.Ranks = append(out.Ranks, Rank{Agent: ref.ID, Trust: added[ref.Ord()]})
	}
	sortRanks(out.Ranks)
	return out
}

// widenGeneric is WidenOneHop over a plain Network: discovered agents are
// interned to dense indices, membership and contribution live in flat
// slices over the intern space.
func widenGeneric(net Network, nb *Neighborhood, decay float64) *Neighborhood {
	var sym graph.Interner
	sym.Intern(string(nb.Source))
	for _, r := range nb.Ranks {
		sym.Intern(string(r.Agent))
	}
	// Indices below inCount are the source and current members; every
	// index at or past it is a widened candidate.
	inCount := sym.Len()
	maxRank := 0.0
	for _, r := range nb.Ranks {
		if r.Trust > maxRank {
			maxRank = r.Trust
		}
	}
	if maxRank <= 0 {
		maxRank = 1
	}

	var added []float64 // added[i-inCount] is candidate i's best contribution
	explored := 0
	contribute := func(from model.AgentID, rank float64) {
		explored++
		for _, st := range net.Peers(from) {
			if st.Value <= 0 {
				continue
			}
			i := sym.Intern(string(st.Dst))
			if i < inCount {
				continue
			}
			j := i - inCount
			if j == len(added) {
				added = append(added, 0)
			}
			if r := decay * rank * st.Value; r > added[j] {
				added[j] = r
			}
		}
	}
	contribute(nb.Source, maxRank)
	for _, r := range nb.Ranks {
		contribute(r.Agent, r.Trust)
	}

	out := &Neighborhood{
		Source:     nb.Source,
		Iterations: nb.Iterations,
		Explored:   nb.Explored + explored,
	}
	out.Ranks = make([]Rank, len(nb.Ranks), len(nb.Ranks)+len(added))
	copy(out.Ranks, nb.Ranks)
	for j, r := range added {
		if r > 0 {
			out.Ranks = append(out.Ranks, Rank{Agent: model.AgentID(sym.Name(inCount + j)), Trust: r})
		}
	}
	sortRanks(out.Ranks)
	return out
}
