package trust

import "swrec/internal/model"

// WidenOneHop expands a computed neighborhood by one trust hop beyond
// its current range — the ladder's answer to thin neighborhoods where
// the metric's "predefined range" (§3.2) left too few peers to vote.
// Following the horizon-widening idea of Jamali's distributed
// trust-aware recommendation, every positively trusted peer of the
// source or of a current member that is not yet in range joins with
//
//	rank(y) = decay · rank(x) · t_x(y)
//
// where x is the contributing member (the source contributes with the
// neighborhood's maximum rank, or 1 when the neighborhood is empty) and
// t_x(y) its positive trust statement. A peer reachable from several
// members keeps the strongest contribution. Existing members keep their
// ranks untouched; negative statements never widen (distrust must not
// recruit). The input neighborhood is not modified.
func WidenOneHop(net Network, nb *Neighborhood, decay float64) *Neighborhood {
	if decay <= 0 || decay > 1 {
		decay = 0.5
	}
	in := make(map[model.AgentID]bool, len(nb.Ranks)+1)
	in[nb.Source] = true
	maxRank := 0.0
	for _, r := range nb.Ranks {
		in[r.Agent] = true
		if r.Trust > maxRank {
			maxRank = r.Trust
		}
	}
	if maxRank <= 0 {
		maxRank = 1
	}

	added := make(map[model.AgentID]float64)
	explored := 0
	contribute := func(from model.AgentID, rank float64) {
		explored++
		for _, st := range net.Peers(from) {
			if st.Value <= 0 || in[st.Dst] {
				continue
			}
			if r := decay * rank * st.Value; r > added[st.Dst] {
				added[st.Dst] = r
			}
		}
	}
	contribute(nb.Source, maxRank)
	for _, r := range nb.Ranks {
		contribute(r.Agent, r.Trust)
	}

	out := &Neighborhood{
		Source:     nb.Source,
		Iterations: nb.Iterations,
		Explored:   nb.Explored + explored,
	}
	out.Ranks = make([]Rank, len(nb.Ranks), len(nb.Ranks)+len(added))
	copy(out.Ranks, nb.Ranks)
	for id, r := range added {
		out.Ranks = append(out.Ranks, Rank{Agent: id, Trust: r})
	}
	sortRanks(out.Ranks)
	return out
}
