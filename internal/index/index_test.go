package index

import (
	"testing"

	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

func fig1Community(t *testing.T) (*model.Community, map[string]taxonomy.Topic) {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	topics := map[string]taxonomy.Topic{}
	for _, q := range []string{
		"Books/Science/Mathematics/Pure/Algebra",
		"Books/Science/Mathematics/Pure/Calculus",
		"Books/Science/Mathematics/Applied",
		"Books/Science/Physics",
		"Books/Fiction",
	} {
		d, ok := tax.Lookup(q)
		if !ok {
			t.Fatalf("missing %s", q)
		}
		topics[q[len("Books/"):]] = d
	}
	c.AddProduct(model.Product{ID: "alg1", Topics: []taxonomy.Topic{topics["Science/Mathematics/Pure/Algebra"]}})
	c.AddProduct(model.Product{ID: "alg2", Topics: []taxonomy.Topic{topics["Science/Mathematics/Pure/Algebra"], topics["Fiction"]}})
	c.AddProduct(model.Product{ID: "calc", Topics: []taxonomy.Topic{topics["Science/Mathematics/Pure/Calculus"]}})
	c.AddProduct(model.Product{ID: "app", Topics: []taxonomy.Topic{topics["Science/Mathematics/Applied"]}})
	c.AddProduct(model.Product{ID: "phy", Topics: []taxonomy.Topic{topics["Science/Physics"]}})
	return c, topics
}

func TestDirectPostings(t *testing.T) {
	c, topics := fig1Community(t)
	ix := Build(c)
	alg := ix.Direct(topics["Science/Mathematics/Pure/Algebra"])
	if len(alg) != 2 || alg[0] != "alg1" || alg[1] != "alg2" {
		t.Fatalf("Direct(Algebra) = %v", alg)
	}
	if got := ix.Direct(topics["Science/Physics"]); len(got) != 1 || got[0] != "phy" {
		t.Fatalf("Direct(Physics) = %v", got)
	}
	// Inner topic with no direct postings.
	math, _ := c.Taxonomy().Lookup("Books/Science/Mathematics")
	if got := ix.Direct(math); got != nil {
		t.Fatalf("Direct(Mathematics) = %v, want none", got)
	}
}

func TestSubtreeMergesAndDedupes(t *testing.T) {
	c, _ := fig1Community(t)
	ix := Build(c)
	math, _ := c.Taxonomy().Lookup("Books/Science/Mathematics")
	got := ix.Subtree(math)
	want := []model.ProductID{"alg1", "alg2", "app", "calc"}
	if len(got) != len(want) {
		t.Fatalf("Subtree(Mathematics) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtree order: %v, want %v", got, want)
		}
	}
	// Root subtree covers the whole posted catalog exactly once (alg2 has
	// two descriptors but appears once).
	if got := ix.Subtree(taxonomy.Root); len(got) != 5 {
		t.Fatalf("Subtree(root) = %v", got)
	}
	if ix.Count(math) != 4 {
		t.Fatalf("Count = %d", ix.Count(math))
	}
}

func TestTopicsOf(t *testing.T) {
	c, _ := fig1Community(t)
	ix := Build(c)
	ts := ix.TopicsOf()
	if len(ts) != 5 {
		t.Fatalf("TopicsOf = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatal("TopicsOf not sorted")
		}
	}
}

func TestSubtreeConsistentWithGeneratedCatalog(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Products = 150
	comm, _ := datagen.Generate(cfg)
	ix := Build(comm)
	// Every product must be reachable from the root subtree.
	all := ix.Subtree(taxonomy.Root)
	if len(all) != comm.NumProducts() {
		t.Fatalf("root subtree = %d products, want %d", len(all), comm.NumProducts())
	}
	// Per-topic counts sum over direct postings equals Σ|f(b)|.
	direct := 0
	for _, d := range ix.TopicsOf() {
		direct += len(ix.Direct(d))
	}
	wantPostings := 0
	for _, pid := range comm.Products() {
		wantPostings += len(comm.Product(pid).Topics)
	}
	if direct != wantPostings {
		t.Fatalf("posting count %d, want %d", direct, wantPostings)
	}
}
