// Package index provides the catalog-side lookup structure the
// information model implies but never names: the inverse of the
// descriptor assignment f: B → 2^D. Given a topic, it answers "which
// products fall into this category or any of its subtopics?" — the
// browse-by-branch operation behind catalog UIs, the NovelCategories
// recommendation scheme, and the API's /v1/topics endpoint.
//
// The index stores direct postings per topic; subtree queries walk the
// taxonomy's primary-child structure and merge postings, so building is
// O(Σ|f(b)|) and a query touches only the requested branch.
package index

import (
	"sort"

	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// TopicIndex maps taxonomy topics to the products carrying them as
// descriptors. Build once; concurrent reads are safe.
type TopicIndex struct {
	tax      *taxonomy.Taxonomy
	postings map[taxonomy.Topic][]model.ProductID
}

// Build scans the community's catalog into a fresh index. Products are
// posted once per distinct descriptor; postings keep catalog insertion
// order.
func Build(comm *model.Community) *TopicIndex {
	ix := &TopicIndex{
		tax:      comm.Taxonomy(),
		postings: make(map[taxonomy.Topic][]model.ProductID),
	}
	for _, pid := range comm.Products() {
		p := comm.Product(pid)
		for _, d := range p.Topics {
			ix.postings[d] = append(ix.postings[d], pid)
		}
	}
	return ix
}

// Direct returns the products carrying d itself as a descriptor. The
// slice must not be modified.
func (ix *TopicIndex) Direct(d taxonomy.Topic) []model.ProductID {
	return ix.postings[d]
}

// Subtree returns all products whose descriptors fall into d or any
// descendant of d (by primary-child edges), deduplicated and sorted.
func (ix *TopicIndex) Subtree(d taxonomy.Topic) []model.ProductID {
	if ix.tax == nil {
		return ix.Direct(d)
	}
	seen := map[model.ProductID]bool{}
	var out []model.ProductID
	var walk func(t taxonomy.Topic)
	walk = func(t taxonomy.Topic) {
		for _, pid := range ix.postings[t] {
			if !seen[pid] {
				seen[pid] = true
				out = append(out, pid)
			}
		}
		for _, c := range ix.tax.Children(t) {
			if ix.tax.Parent(c) == t { // primary edges only, no revisits
				walk(c)
			}
		}
	}
	walk(d)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the subtree posting count without materializing the
// sorted product list: it walks the branch deduplicating into a set only.
func (ix *TopicIndex) Count(d taxonomy.Topic) int {
	if ix.tax == nil {
		return len(ix.Direct(d))
	}
	seen := map[model.ProductID]bool{}
	var walk func(t taxonomy.Topic)
	walk = func(t taxonomy.Topic) {
		for _, pid := range ix.postings[t] {
			seen[pid] = true
		}
		for _, c := range ix.tax.Children(t) {
			if ix.tax.Parent(c) == t {
				walk(c)
			}
		}
	}
	walk(d)
	return len(seen)
}

// TopicsOf returns the topics that actually carry postings, sorted — the
// populated part of the taxonomy.
func (ix *TopicIndex) TopicsOf() []taxonomy.Topic {
	out := make([]taxonomy.Topic, 0, len(ix.postings))
	for d := range ix.postings {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Export returns the index contents in canonical order — topics sorted
// ascending, each with its posting list in stored (catalog insertion)
// order. The posting slices are shared with the index and must not be
// modified; Restore(tax, Export()) reproduces an equivalent index.
func (ix *TopicIndex) Export() ([]taxonomy.Topic, [][]model.ProductID) {
	topics := ix.TopicsOf()
	postings := make([][]model.ProductID, len(topics))
	for i, d := range topics {
		postings[i] = ix.postings[d]
	}
	return topics, postings
}

// Restore rebuilds an index from exported contents (e.g. decoded from a
// checkpoint), adopting the posting slices by reference.
func Restore(tax *taxonomy.Taxonomy, topics []taxonomy.Topic, postings [][]model.ProductID) *TopicIndex {
	ix := &TopicIndex{
		tax:      tax,
		postings: make(map[taxonomy.Topic][]model.ProductID, len(topics)),
	}
	for i, d := range topics {
		ix.postings[d] = postings[i]
	}
	return ix
}
