package ingest

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/isbn"
	"swrec/internal/model"
	"swrec/internal/wal"
)

func testCommunity(t testing.TB, agents, products int) *model.Community {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = products
	comm, _ := datagen.Generate(cfg)
	return comm
}

func testEngine(t testing.TB, comm *model.Community) *engine.Engine {
	t.Helper()
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// lazyConfig disables every automatic snapshot trigger so tests control
// application explicitly via Flush.
func lazyConfig() Config {
	return Config{SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour}
}

// testMutations fabricates n valid mutations against comm: trust edges,
// ratings of cataloged products, retractions, and agent upserts.
func testMutations(comm *model.Community, n int) []wal.Mutation {
	ids := comm.Agents()
	pids := comm.Products()
	out := make([]wal.Mutation, 0, n)
	for i := 0; len(out) < n; i++ {
		src := ids[i%len(ids)]
		dst := ids[(i+7)%len(ids)]
		if src == dst {
			dst = ids[(i+8)%len(ids)]
		}
		switch i % 5 {
		case 0:
			out = append(out, wal.Mutation{Op: wal.OpUpsertTrust, Agent: src, Peer: dst, Value: float64(i%20)/10 - 1})
		case 1:
			out = append(out, wal.Mutation{Op: wal.OpUpsertRating, Agent: src, Product: pids[i%len(pids)], Value: float64(i%19)/9 - 1})
		case 2:
			out = append(out, wal.Mutation{Op: wal.OpDeleteTrust, Agent: src, Peer: dst})
		case 3:
			out = append(out, wal.Mutation{Op: wal.OpUpsertAgent, Agent: model.AgentID(fmt.Sprintf("http://new/agent%d", i)), Name: fmt.Sprintf("Agent %d", i)})
		case 4:
			out = append(out, wal.Mutation{Op: wal.OpDeleteRating, Agent: src, Product: pids[i%len(pids)]})
		}
	}
	return out
}

// digest canonically serializes a community's agents, names, trust
// functions, ratings, and catalog, so two states can be compared
// byte-for-byte regardless of map iteration order.
func digest(c *model.Community) string {
	var b strings.Builder
	ids := append([]model.AgentID(nil), c.Agents()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := c.Agent(id)
		fmt.Fprintf(&b, "agent %s name=%q\n", id, a.Name)
		for _, st := range a.TrustedPeers() {
			fmt.Fprintf(&b, "  trust %s %.17g\n", st.Dst, st.Value)
		}
		for _, rt := range a.RatedProducts() {
			fmt.Fprintf(&b, "  rating %s %.17g\n", rt.Product, rt.Value)
		}
	}
	pids := append([]model.ProductID(nil), c.Products()...)
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		p := c.Product(pid)
		// Topic IDs are assigned at taxonomy parse time and are not
		// stable across an export/import; qualified names are.
		names := make([]string, len(p.Topics))
		for i, d := range p.Topics {
			names[i] = c.Taxonomy().QualifiedName(d)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "product %s title=%q isbn=%q topics=%v\n", pid, p.Title, p.ISBN, names)
	}
	return b.String()
}

func TestSubmitDurableAndAppliedOnFlush(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	eng := testEngine(t, comm)
	p, err := Open(eng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	src, dst := comm.Agents()[0], comm.Agents()[1]
	seq, err := p.Submit(wal.Mutation{Op: wal.OpUpsertTrust, Agent: src, Peer: dst, Value: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	// Not yet visible: the serving snapshot is immutable.
	if v, ok := eng.Snapshot().Community().Trust(src, dst); ok && v == 0.75 {
		t.Fatal("mutation visible before snapshot swap")
	}
	epochBefore := eng.Epoch()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != epochBefore+1 {
		t.Fatalf("Flush did not publish a new epoch: %d -> %d", epochBefore, eng.Epoch())
	}
	if v, ok := eng.Snapshot().Community().Trust(src, dst); !ok || v != 0.75 {
		t.Fatalf("applied trust = %v,%v, want 0.75", v, ok)
	}
	// The original community must be untouched (applied on a clone).
	if _, ok := comm.Trust(src, dst); ok {
		t.Fatal("mutation leaked into the pre-swap community")
	}
	ep, ap := p.Applied()
	if ep != eng.Epoch() || ap != 1 {
		t.Fatalf("Applied() = (%d,%d), want (%d,1)", ep, ap, eng.Epoch())
	}
	// An empty Flush is a no-op, not a new epoch.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != epochBefore+1 {
		t.Fatal("empty flush published a gratuitous epoch")
	}
}

func TestSizeTriggerSnapshots(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	eng := testEngine(t, comm)
	cfg := lazyConfig()
	cfg.SnapshotEvery = 10
	p, err := Open(eng, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for _, m := range testMutations(comm, 25) {
		if _, err := p.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	// 25 sequential submissions with threshold 10 must have produced at
	// least two swaps (batching may group them differently).
	deadline := time.Now().Add(5 * time.Second)
	for eng.Epoch() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if eng.Epoch() < 3 {
		t.Fatalf("size trigger produced only epoch %d", eng.Epoch())
	}
}

func TestIntervalTriggerSnapshots(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	eng := testEngine(t, comm)
	cfg := lazyConfig()
	cfg.SnapshotInterval = 20 * time.Millisecond
	p, err := Open(eng, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Submit(wal.Mutation{Op: wal.OpUpsertAgent, Agent: "http://x/late"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Epoch() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !eng.Snapshot().Community().HasAgent("http://x/late") {
		t.Fatal("interval trigger never applied the mutation")
	}
}

func TestBackpressureErrOverloaded(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	eng := testEngine(t, comm)
	cfg := lazyConfig()
	cfg.QueueSize = 1
	cfg.BatchSize = 1
	p, err := Open(eng, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Hold the worker at the gate: with capacity 2 in flight (one
	// dequeued and held, one resident in the queue of 1), at least 3 of
	// 5 concurrent submissions must bounce with ErrOverloaded, and none
	// may be silently lost.
	gate := make(chan struct{})
	p.gate = gate

	var wg sync.WaitGroup
	var accepted, overloaded, other int64
	var mu sync.Mutex
	for _, m := range testMutations(comm, 5) {
		wg.Add(1)
		go func(m wal.Mutation) {
			defer wg.Done()
			_, err := p.Submit(m)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted++
			case errors.Is(err, ErrOverloaded):
				overloaded++
			default:
				other++
			}
		}(m)
	}
	// Wait until the rejections have happened, then release the worker so
	// the accepted submissions get their durable acks.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := overloaded+other >= 3
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if other != 0 {
		t.Fatalf("%d submissions failed with unexpected errors", other)
	}
	if accepted == 0 {
		t.Fatal("no submission was accepted")
	}
	if overloaded < 3 {
		t.Fatalf("overloaded = %d, want >= 3 (capacity is 2 with the worker held)", overloaded)
	}
	// Every acknowledged mutation is durable.
	if st := p.w.Stats(); st.Appended != uint64(accepted) {
		t.Fatalf("WAL holds %d records, %d were acknowledged", st.Appended, accepted)
	}
}

func TestValidation(t *testing.T) {
	comm := testCommunity(t, 10, 10)
	eng := testEngine(t, comm)
	p, err := Open(eng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bad := []wal.Mutation{
		{Op: wal.OpUpsertTrust, Agent: "", Peer: "b", Value: 0.5},
		{Op: wal.OpUpsertTrust, Agent: "a", Peer: "", Value: 0.5},
		{Op: wal.OpUpsertTrust, Agent: "a", Peer: "a", Value: 0.5},
		{Op: wal.OpUpsertTrust, Agent: "a", Peer: "b", Value: 1.5},
		{Op: wal.OpUpsertRating, Agent: "a", Product: "", Value: 0.5},
		{Op: wal.OpUpsertRating, Agent: "a", Product: "p", Value: -2},
		{Op: wal.OpDeleteTrust, Agent: "a", Peer: "a"},
		{Op: 0, Agent: "a"},
		{Op: 99, Agent: "a"},
	}
	for _, m := range bad {
		if _, err := p.Submit(m); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Submit(%+v) = %v, want ErrInvalid", m, err)
		}
	}
	if st := p.w.Stats(); st.Appended != 0 {
		t.Fatalf("invalid mutations reached the WAL: %d records", st.Appended)
	}

	// ValidateIn: uncataloged product needs a checksum-valid ISBN URN.
	view := eng.Snapshot().Community()
	known := wal.Mutation{Op: wal.OpUpsertRating, Agent: "a", Product: view.Products()[0], Value: 0.5}
	if err := ValidateIn(view, known); err != nil {
		t.Fatalf("cataloged product rejected: %v", err)
	}
	urn := wal.Mutation{Op: wal.OpUpsertRating, Agent: "a",
		Product: model.ProductID(isbn.URN(isbn.Synthesize(424242))), Value: 0.5}
	if err := ValidateIn(view, urn); err != nil {
		t.Fatalf("valid ISBN URN rejected: %v", err)
	}
	junk := wal.Mutation{Op: wal.OpUpsertRating, Agent: "a", Product: "urn:isbn:12345", Value: 0.5}
	if err := ValidateIn(view, junk); !errors.Is(err, ErrInvalid) {
		t.Fatalf("checksum-failing ISBN accepted: %v", err)
	}
	if err := ValidateIn(view, wal.Mutation{Op: wal.OpUpsertRating, Agent: "a", Product: "http://x/unknown", Value: 0.5}); !errors.Is(err, ErrInvalid) {
		t.Fatal("uncataloged non-ISBN product accepted")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	comm := testCommunity(t, 10, 10)
	eng := testEngine(t, comm)
	p, err := Open(eng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, err := p.Submit(testMutations(comm, 1)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v", err)
	}
}

func TestCloseAppliesPending(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Agents, cfg.Products = 15, 20
	base, _ := datagen.Generate(cfg)
	eng := testEngine(t, base)
	dir := t.TempDir()
	p, err := Open(eng, dir, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := base.Agents()[0], base.Agents()[1]
	if _, err := p.Submit(wal.Mutation{Op: wal.OpUpsertTrust, Agent: src, Peer: dst, Value: -0.5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Snapshot().Community().Trust(src, dst); !ok || v != -0.5 {
		t.Fatal("Close did not apply the pending delta")
	}
}

// TestCrashRecoveryReplayMatchesCleanRun is the acceptance criterion:
// kill the pipeline after N appended-but-unapplied mutations; on
// restart, WAL replay must reproduce exactly (byte-equal under canonical
// serialization) the community a clean run of the same mutations
// produces.
func TestCrashRecoveryReplayMatchesCleanRun(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Agents, cfg.Products = 25, 30
	gen := func() *model.Community { c, _ := datagen.Generate(cfg); return c }
	muts := testMutations(gen(), 40)

	// Clean run: every mutation applied through the pipeline, no crash.
	cleanEng := testEngine(t, gen())
	cleanPipe, err := Open(cleanEng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if _, err := cleanPipe.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := cleanPipe.Close(); err != nil {
		t.Fatal(err)
	}
	want := digest(cleanEng.Snapshot().Community())

	// Crashed run: first 15 mutations applied (flushed), next 25
	// acknowledged but never applied, then the pipeline is killed.
	dir := t.TempDir()
	eng1 := testEngine(t, gen())
	p1, err := Open(eng1, dir, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts[:15] {
		if _, err := p1.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, m := range muts[15:] {
		if _, err := p1.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Abort(); err != nil { // kill -9: no flush, no checkpoint
		t.Fatal(err)
	}

	// Restart from the original base corpus (no checkpoint was written,
	// so the WAL holds all 40 records).
	if _, _, ok, err := LoadBase(dir); err != nil || ok {
		t.Fatalf("LoadBase without checkpoint = ok=%v err=%v", ok, err)
	}
	eng2 := testEngine(t, gen())
	p2, err := Open(eng2, dir, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Replayed(); got != 40 {
		t.Fatalf("replayed %d records, want 40", got)
	}
	if got := digest(eng2.Snapshot().Community()); got != want {
		t.Fatalf("replayed state differs from clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestCheckpointTruncatesAndRestartsFromSnapshot covers the durable
// checkpoint: after Checkpoint, the WAL is truncated, LoadBase restores
// the exported community, and only post-checkpoint records replay.
func TestCheckpointTruncatesAndRestartsFromSnapshot(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Agents, cfg.Products = 25, 30
	gen := func() *model.Community { c, _ := datagen.Generate(cfg); return c }
	muts := testMutations(gen(), 60)

	dir := t.TempDir()
	eng1 := testEngine(t, gen())
	wcfg := lazyConfig()
	wcfg.WAL.SegmentBytes = 256 // force rotation so truncation has segments to remove
	p1, err := Open(eng1, dir, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts[:40] {
		if _, err := p1.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := p1.w.Stats().Segments
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if segs := p1.w.Stats().Segments; segs >= segsBefore {
		t.Fatalf("checkpoint did not truncate: %d -> %d segments", segsBefore, segs)
	}
	cpEpoch, cpSeq := p1.Applied()
	if cpSeq != 40 {
		t.Fatalf("checkpoint seq = %d, want 40", cpSeq)
	}
	// More writes after the checkpoint, acknowledged but never applied.
	for _, m := range muts[40:] {
		if _, err := p1.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Abort(); err != nil {
		t.Fatal(err)
	}

	// Restart: base comes from the checkpoint snapshot, replay covers
	// only the 20 unapplied records.
	base2, cp, ok, err := LoadBase(dir)
	if err != nil || !ok {
		t.Fatalf("LoadBase = ok=%v err=%v", ok, err)
	}
	if cp.Seq != 40 || cp.Epoch != cpEpoch {
		t.Fatalf("checkpoint = %+v, want epoch %d seq 40", cp, cpEpoch)
	}
	eng2 := testEngine(t, base2)
	p2, err := Open(eng2, dir, lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Replayed(); got != 20 {
		t.Fatalf("replayed %d records, want 20", got)
	}

	// The recovered state must match a clean run of all 60 mutations.
	cleanEng := testEngine(t, gen())
	cleanPipe, err := Open(cleanEng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if _, err := cleanPipe.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := cleanPipe.Close(); err != nil {
		t.Fatal(err)
	}
	want := digest(cleanEng.Snapshot().Community())
	if got := digest(eng2.Snapshot().Community()); got != want {
		t.Fatalf("checkpoint+replay state differs from clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestConcurrentSubmitWithReaders exercises the full read/write mix
// under -race: writers stream mutations (forcing frequent swaps) while
// readers pin snapshots and recommend.
func TestConcurrentSubmitWithReaders(t *testing.T) {
	comm := testCommunity(t, 25, 30)
	eng := testEngine(t, comm)
	cfg := Config{SnapshotEvery: 8, SnapshotInterval: 10 * time.Millisecond, QueueSize: 256}
	p, err := Open(eng, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	muts := testMutations(comm, 120)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(muts); i += 4 {
				if _, err := p.Submit(muts[i]); err != nil && !errors.Is(err, ErrOverloaded) {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				snap := eng.Snapshot()
				ids := snap.Community().Agents()
				if _, err := snap.Recommend(ids[(r*13+i)%len(ids)], 5, engine.Overrides{}); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFlushDeltaMatchesFromScratchPipeline is the end-to-end delta-swap
// correctness gate: after Submit + Flush publish a mutation batch via
// SwapDelta, every agent's recommendations — whether carried from the
// previous epoch's caches or recomputed — must equal a from-scratch
// core.New pipeline over the published community.
func TestFlushDeltaMatchesFromScratchPipeline(t *testing.T) {
	comm := testCommunity(t, 40, 60)
	eng := testEngine(t, comm)
	p, err := Open(eng, t.TempDir(), lazyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Warm every agent so the swap has state worth carrying.
	warm := eng.Snapshot()
	for _, id := range comm.Agents() {
		if _, err := warm.Recommend(id, 8, engine.Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range testMutations(comm, 25) {
		if _, err := p.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := eng.Snapshot()
	rec, err := core.New(snap.Community(), core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range snap.Community().Agents() {
		got, err := snap.Recommend(id, 8, engine.Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := rec.Recommend(id, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("agent %s: %d recs, want %d", id, len(got), len(want))
		}
		wantScore := make(map[model.ProductID]core.Recommendation, len(want))
		for _, rc := range want {
			wantScore[rc.Product] = rc
		}
		for _, rc := range got {
			w, ok := wantScore[rc.Product]
			if !ok {
				t.Fatalf("agent %s: unexpected product %s", id, rc.Product)
			}
			if rc.Supporters != w.Supporters || rc.Score-w.Score > 1e-9 || w.Score-rc.Score > 1e-9 {
				t.Fatalf("agent %s product %s: %+v != %+v", id, rc.Product, rc, w)
			}
		}
	}
}
