package ingest

import (
	"errors"
	"testing"
	"time"

	"swrec/internal/engine"
	"swrec/internal/wal"
)

// BenchmarkRecommendWhileIngesting is the read-path-isolation acceptance
// benchmark: a warm-cache Recommend against a pinned snapshot must stay
// within noise of the idle-engine figure (~350ns in the engine package's
// BenchmarkServeEngineWarm) while a background writer streams mutations
// through the full Submit → WAL → clone → Swap pipeline. Readers never
// touch the mutable clone, so the only cross-talk is memory bandwidth.
//
//	go test -bench=Recommend -benchmem ./internal/ingest/
func BenchmarkRecommendWhileIngesting(b *testing.B) {
	comm := testCommunity(b, 200, 400)
	eng := testEngine(b, comm)
	eng.Warmup(0)

	cfg := Config{
		SnapshotEvery:    512,
		SnapshotInterval: 50 * time.Millisecond,
		QueueSize:        4096,
		WAL:              wal.Options{NoSync: true},
	}
	p, err := Open(eng, b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	// The writer streams bursts at a steady pace (~64k mutations/s)
	// rather than spinning flat out: Go benchmark memstats are
	// process-wide, so an unthrottled writer would bill its own
	// allocations and GC assists to the reader being measured.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		muts := testMutations(comm, 1024)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for n := 0; n < 64; n++ {
				if _, err := p.Submit(muts[i%len(muts)]); err != nil && !errors.Is(err, ErrOverloaded) {
					return
				}
				i++
			}
		}
	}()

	// Pin one warm snapshot for the whole run, exactly as a request
	// handler does: swaps publish new epochs, but this reader's view is
	// immutable.
	snap := eng.Snapshot()
	id := snap.Community().Agents()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Recommend(id, 10, engine.Overrides{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkSubmitThroughput measures end-to-end write throughput of the
// pipeline (validate, enqueue, group commit, durable ack) with fsync
// disabled so the group-commit machinery is the measured cost.
func BenchmarkSubmitThroughput(b *testing.B) {
	comm := testCommunity(b, 100, 200)
	eng := testEngine(b, comm)
	cfg := Config{
		SnapshotEvery:    1 << 30,
		SnapshotInterval: time.Hour,
		QueueSize:        8192,
		WAL:              wal.Options{NoSync: true},
	}
	p, err := Open(eng, b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	muts := testMutations(comm, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := p.Submit(muts[i%len(muts)]); err != nil && !errors.Is(err, ErrOverloaded) {
				b.Fatal(err)
			}
		}
	})
}
