// Package ingest is the durable write path between clients publishing
// new statements and the read-optimized serving engine: a batching
// applier that accepts typed mutations concurrently, makes them durable
// in a write-ahead log (internal/wal), and folds them into the serving
// state through epoch snapshot swaps (internal/engine) — off the hot
// read path.
//
// The paper's installations continually receive new trust statements and
// ratings ("tailored crawlers ... ensure data freshness", §4.1; the
// related P2P work has peers pushing updates into each other's local
// views). The engine serves immutable snapshots, so mutations cannot be
// applied in place; instead the pipeline:
//
//  1. accepts mutations on a bounded queue (a full queue returns
//     ErrOverloaded — backpressure instead of collapse);
//  2. drains them in batches, appends each batch to the WAL with one
//     fsync (group commit), and only then acknowledges the submitters —
//     an acknowledged write survives a crash;
//  3. accumulates appended mutations into a delta set and, when the
//     delta is large enough or old enough, clones the current community,
//     applies the delta to the clone, and publishes it via Engine.Swap
//     under a fresh epoch.
//
// Durability across restarts: Checkpoint exports the applied community
// as a corpus snapshot inside the WAL directory, records the
// epoch↔sequence mapping (wal.Checkpoint), and truncates WAL segments
// made redundant. On the next Open, the pipeline replays only the WAL
// records above the checkpoint onto the engine's community — exactly the
// acknowledged-but-unapplied suffix. Replay in sequence order is
// idempotent (upserts are last-writer-wins, retractions are absorbing),
// so the crash windows inside Checkpoint itself are harmless.
//
// Beyond the corpus snapshot, the pipeline can maintain *compiled*
// checkpoints (internal/checkpoint): every CheckpointEvery published
// snapshots — and once at shutdown — the current serving snapshot is
// captured and written to <dir>/checkpoints by a background writer, off
// the worker's append/apply path, retaining the newest CheckpointRetain
// files. A restart then restores the compiled engine state in O(file
// size) via checkpoint.Recover + OpenFrom instead of recomputing it
// (see DESIGN.md §11). WAL truncation keeps every record any retained
// checkpoint still needs for tail replay.
//
// The pipeline must be the engine's only swapper while it runs.
//
// Observability: expvar map "swrec_ingest" (appended, applied,
// snapshot_builds, replay_records, queue_depth, overloaded,
// apply_errors, checkpoints, compiled_checkpoints,
// compiled_checkpoint_errors, compiled_checkpoint_skipped).
package ingest

import (
	"errors"
	"expvar"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"swrec/internal/checkpoint"
	"swrec/internal/corpus"
	"swrec/internal/engine"
	"swrec/internal/isbn"
	"swrec/internal/model"
	"swrec/internal/wal"
)

// stats aggregates ingest counters across all pipelines in the process.
var stats = expvar.NewMap("swrec_ingest")

var (
	// ErrOverloaded is returned by Submit when the ingest queue is full —
	// the backpressure signal (HTTP 503 at the API layer).
	ErrOverloaded = errors.New("ingest: queue full, try again later")
	// ErrClosed is returned by operations on a closed pipeline.
	ErrClosed = errors.New("ingest: closed")
	// ErrInvalid wraps mutation validation failures.
	ErrInvalid = errors.New("ingest: invalid mutation")
)

// snapshotDir is the corpus snapshot directory inside the WAL directory.
// The name is owned by internal/checkpoint, whose recovery ladder reads
// the same directory as its rung-3 source.
const snapshotDir = checkpoint.WALSnapshotDir

// Config tunes the pipeline. Zero values select defaults.
type Config struct {
	// QueueSize bounds concurrently pending submissions (default 1024);
	// beyond it Submit returns ErrOverloaded.
	QueueSize int
	// BatchSize caps mutations per WAL append / group commit (default 256).
	BatchSize int
	// SnapshotEvery triggers a snapshot build once this many appended
	// mutations await application (default 4096).
	SnapshotEvery int
	// SnapshotInterval triggers a snapshot build once the oldest pending
	// mutation is this old (default 2s).
	SnapshotInterval time.Duration
	// CheckpointEvery, when positive, writes a compiled checkpoint
	// (internal/checkpoint) every that many published snapshots, plus one
	// at Close. 0 disables compiled checkpoints (the default for library
	// users; cmd/swrecd enables them).
	CheckpointEvery int
	// CheckpointRetain bounds the compiled checkpoint files kept on disk
	// (default 2: the newest plus one fallback for the recovery ladder).
	CheckpointRetain int
	// CheckpointWrap, when non-nil, interposes on compiled-checkpoint
	// file handles — the fault-injection seam (internal/faultinject).
	CheckpointWrap func(*os.File) checkpoint.File
	// WAL configures the underlying log (segment size, fsync).
	WAL wal.Options
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Second
	}
	if c.CheckpointRetain <= 0 {
		c.CheckpointRetain = 2
	}
	return c
}

// submission is one queued mutation plus its acknowledgment channel.
type submission struct {
	m   wal.Mutation
	res chan subResult
}

type subResult struct {
	seq uint64
	err error
}

// Pipeline is the ingestion subsystem over one engine and one WAL
// directory. Submit is safe for concurrent use.
type Pipeline struct {
	eng *engine.Engine
	w   *wal.WAL
	dir string
	cfg Config

	queue chan submission
	flush chan chan error
	chkpt chan chan error
	quit  chan struct{} // closed by Close: drain, flush, exit
	abort chan struct{} // closed by Abort: exit without applying
	done  chan struct{}

	// ckptJobs carries captured images to the background compiled-
	// checkpoint writer; cap 1 with non-blocking enqueue, so a slow disk
	// drops checkpoints (counted) instead of stalling the worker. Closed
	// by run() on exit; ckptDone closes when the writer has drained.
	ckptJobs chan *checkpoint.Image
	ckptDone chan struct{}
	// snapsSinceCkpt counts published snapshots toward CheckpointEvery
	// (worker-owned).
	snapsSinceCkpt int

	closeMu  sync.RWMutex
	closed   bool
	stopOnce sync.Once

	// gate, when non-nil, is received from before each batch append so
	// tests can hold the worker and observe backpressure deterministically.
	gate chan struct{}

	// Worker-owned state (no locks: only the worker goroutine touches
	// these after Open returns).
	base    *model.Community // community backing the engine's snapshot
	delta   []wal.Mutation   // appended but not yet applied
	deltaAt time.Time        // when the oldest delta entry was appended

	// Cross-goroutine observability.
	obsMu    sync.Mutex
	epoch    uint64 // epoch of the last published snapshot
	applied  uint64 // last sequence number folded into the serving state
	replayed int    // records replayed at Open
}

// Open opens (creating if necessary) the WAL in dir, replays every
// record above the directory's checkpoint onto the engine's current
// community — publishing one recovery snapshot if anything was replayed
// — and starts the pipeline. The engine must be serving the community
// state the checkpoint describes (use LoadBase; with no checkpoint, the
// original corpus and an un-truncated WAL).
func Open(eng *engine.Engine, dir string, cfg Config) (*Pipeline, error) {
	return openFrom(eng, dir, cfg, nil)
}

// OpenFrom is Open for an engine restored from a compiled checkpoint
// (checkpoint.Recover): instead of the directory's corpus-snapshot
// marker, replay starts right after seq — the last WAL sequence the
// restored state already covers.
func OpenFrom(eng *engine.Engine, dir string, cfg Config, seq uint64) (*Pipeline, error) {
	return openFrom(eng, dir, cfg, &seq)
}

func openFrom(eng *engine.Engine, dir string, cfg Config, seq *uint64) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	w, err := wal.Open(dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		eng:      eng,
		w:        w,
		dir:      dir,
		cfg:      cfg,
		queue:    make(chan submission, cfg.QueueSize),
		flush:    make(chan chan error),
		chkpt:    make(chan chan error),
		quit:     make(chan struct{}),
		abort:    make(chan struct{}),
		done:     make(chan struct{}),
		ckptJobs: make(chan *checkpoint.Image, 1),
		ckptDone: make(chan struct{}),
	}
	snap := eng.Snapshot()
	p.base = snap.Community()
	p.epoch = snap.Epoch()

	if seq == nil {
		cp, _, err := wal.LoadCheckpoint(dir)
		if err != nil {
			w.Close()
			return nil, err
		}
		seq = &cp.Seq
	}
	p.applied = *seq
	if err := p.replay(*seq + 1); err != nil {
		w.Close()
		return nil, err
	}
	go p.ckptWriter()
	go p.run()
	return p, nil
}

// replay folds WAL records with seq >= from into a clone of the base
// community and publishes it as one recovery epoch.
func (p *Pipeline) replay(from uint64) error {
	var muts []wal.Mutation
	var last uint64
	err := p.w.Replay(from, func(seq uint64, m wal.Mutation) error {
		muts = append(muts, m)
		last = seq
		return nil
	})
	if err != nil {
		return fmt.Errorf("ingest: replay: %w", err)
	}
	if len(muts) == 0 {
		return nil
	}
	clone := p.base.Clone()
	for _, m := range muts {
		if err := Apply(clone, m); err != nil {
			stats.Add("apply_errors", 1)
		}
	}
	d := deltaOf(p.base, clone, muts)
	snap, err := p.eng.SwapDelta(clone, d)
	if err != nil {
		return fmt.Errorf("ingest: replay swap: %w", err)
	}
	p.base = clone
	p.epoch = snap.Epoch()
	p.applied = last
	p.replayed = len(muts)
	stats.Add("replay_records", int64(len(muts)))
	return nil
}

// Replayed reports how many WAL records Open replayed.
func (p *Pipeline) Replayed() int {
	p.obsMu.Lock()
	defer p.obsMu.Unlock()
	return p.replayed
}

// Applied returns the epoch↔sequence mapping of the serving state: the
// epoch last published and the last sequence number folded into it.
func (p *Pipeline) Applied() (epoch, seq uint64) {
	p.obsMu.Lock()
	defer p.obsMu.Unlock()
	return p.epoch, p.applied
}

// Submit validates the mutation, enqueues it, and blocks until its batch
// is durably appended to the WAL, returning the assigned sequence
// number. The mutation becomes visible to readers at the next snapshot
// swap. A full queue fails fast with ErrOverloaded.
func (p *Pipeline) Submit(m wal.Mutation) (uint64, error) {
	if err := Validate(m); err != nil {
		return 0, err
	}
	sub := submission{m: m, res: make(chan subResult, 1)}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return 0, ErrClosed
	}
	select {
	case p.queue <- sub:
		p.closeMu.RUnlock()
		stats.Add("queue_depth", 1)
	default:
		p.closeMu.RUnlock()
		stats.Add("overloaded", 1)
		return 0, ErrOverloaded
	}
	r := <-sub.res
	return r.seq, r.err
}

// QueueStats reports the current backlog and capacity of the submission
// queue; the API layer uses the ratio to derive Retry-After hints under
// overload.
func (p *Pipeline) QueueStats() (depth, capacity int) {
	return len(p.queue), cap(p.queue)
}

// Flush forces application of every acknowledged mutation: it blocks
// until the pending delta has been published via Engine.Swap.
func (p *Pipeline) Flush() error { return p.request(p.flush) }

// Checkpoint flushes, exports the applied community as a corpus snapshot
// inside the WAL directory, durably records the epoch↔sequence mapping,
// and truncates WAL segments the checkpoint made redundant. After a
// crash, restart cost is proportional to writes since the last
// Checkpoint, not since process start.
func (p *Pipeline) Checkpoint() error { return p.request(p.chkpt) }

func (p *Pipeline) request(ch chan chan error) error {
	res := make(chan error, 1)
	select {
	case ch <- res:
		return <-res
	case <-p.done:
		return ErrClosed
	}
}

// Close drains the queue, appends and applies everything pending, and
// releases the WAL. It does not checkpoint; call Checkpoint first for a
// truncated restart.
func (p *Pipeline) Close() error {
	return p.shutdown(p.quit)
}

// Abort stops the pipeline without applying the pending delta — the
// programmatic equivalent of kill -9 for crash-recovery tests and fast
// shutdown. Acknowledged mutations are already durable in the WAL and
// will be replayed on the next Open.
func (p *Pipeline) Abort() error {
	return p.shutdown(p.abort)
}

func (p *Pipeline) shutdown(signal chan struct{}) error {
	p.closeMu.Lock()
	already := p.closed
	p.closed = true
	p.closeMu.Unlock()
	p.stopOnce.Do(func() { close(signal) })
	<-p.done
	if already {
		return nil
	}
	return p.w.Close()
}

// run is the single worker goroutine: group-commit appends, snapshot
// triggers, flush/checkpoint requests.
func (p *Pipeline) run() {
	defer close(p.done)
	tick := p.cfg.SnapshotInterval / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.abort:
			p.drainRejecting()
			p.stopCkptWriter()
			return
		case <-p.quit:
			p.drainAppending()
			p.snapshot()
			p.stopCkptWriter()
			p.finalCompiled()
			return
		case sub := <-p.queue:
			if p.gate != nil {
				<-p.gate
			}
			p.appendBatch(sub)
			if len(p.delta) >= p.cfg.SnapshotEvery {
				p.snapshot()
			}
		case <-ticker.C:
			if len(p.delta) > 0 && time.Since(p.deltaAt) >= p.cfg.SnapshotInterval {
				p.snapshot()
			}
		case res := <-p.flush:
			res <- p.snapshot()
		case res := <-p.chkpt:
			res <- p.checkpoint()
		}
	}
}

// appendBatch drains up to BatchSize-1 more queued submissions, appends
// them to the WAL as one group commit, and acknowledges every submitter.
func (p *Pipeline) appendBatch(first submission) {
	batch := []submission{first}
	for len(batch) < p.cfg.BatchSize {
		select {
		case sub := <-p.queue:
			batch = append(batch, sub)
		default:
			goto drained
		}
	}
drained:
	stats.Add("queue_depth", -int64(len(batch)))
	muts := make([]wal.Mutation, len(batch))
	for i, sub := range batch {
		muts[i] = sub.m
	}
	firstSeq, _, err := p.w.Append(muts)
	if err != nil {
		for _, sub := range batch {
			sub.res <- subResult{err: err}
		}
		return
	}
	if len(p.delta) == 0 {
		p.deltaAt = time.Now()
	}
	p.delta = append(p.delta, muts...)
	stats.Add("appended", int64(len(muts)))
	for i, sub := range batch {
		sub.res <- subResult{seq: firstSeq + uint64(i)}
	}
}

// snapshot clones the base community, applies the pending delta, and
// publishes the clone under a fresh epoch. The serving hot path never
// sees the mutable clone.
func (p *Pipeline) snapshot() error {
	if len(p.delta) == 0 {
		return nil
	}
	clone := p.base.Clone()
	for _, m := range p.delta {
		if err := Apply(clone, m); err != nil {
			stats.Add("apply_errors", 1)
		}
	}
	d := deltaOf(p.base, clone, p.delta)
	snap, err := p.eng.SwapDelta(clone, d)
	if err != nil {
		// The delta stays pending; a later snapshot retries. This only
		// happens when a mutation made the community incompatible with
		// the engine's options, which validation is meant to prevent.
		stats.Add("swap_errors", 1)
		return fmt.Errorf("ingest: swap: %w", err)
	}
	applied := p.w.NextSeq() - 1
	p.base = clone
	stats.Add("applied", int64(len(p.delta)))
	stats.Add("snapshot_builds", 1)
	p.delta = p.delta[:0]
	p.obsMu.Lock()
	p.epoch = snap.Epoch()
	p.applied = applied
	p.obsMu.Unlock()
	p.maybeCompiledCheckpoint(snap, applied)
	return nil
}

// maybeCompiledCheckpoint hands the freshly published snapshot to the
// background compiled-checkpoint writer every CheckpointEvery publishes.
// The capture reads only immutable snapshot state, and the enqueue never
// blocks: with the writer busy the checkpoint is skipped (counted) — a
// later, newer one supersedes it anyway.
func (p *Pipeline) maybeCompiledCheckpoint(snap *engine.Snapshot, seq uint64) {
	if p.cfg.CheckpointEvery <= 0 {
		return
	}
	p.snapsSinceCkpt++
	if p.snapsSinceCkpt < p.cfg.CheckpointEvery {
		return
	}
	p.snapsSinceCkpt = 0
	select {
	case p.ckptJobs <- checkpoint.Capture(snap, seq):
	default:
		stats.Add("compiled_checkpoint_skipped", 1)
	}
}

// ckptWriter is the background compiled-checkpoint goroutine: it drains
// captured images off the worker's hot path, writing and pruning without
// ever touching worker-owned state. It exits when run() closes ckptJobs.
func (p *Pipeline) ckptWriter() {
	defer close(p.ckptDone)
	for img := range p.ckptJobs {
		p.writeCompiled(img)
	}
}

// stopCkptWriter ends the background writer and waits for any in-flight
// write to finish — called by run() on either exit path, before the WAL
// is closed under it.
func (p *Pipeline) stopCkptWriter() {
	close(p.ckptJobs)
	<-p.ckptDone
}

// finalCompiled writes one last compiled checkpoint synchronously at
// Close (the writer is already stopped), so a clean shutdown always
// leaves a checkpoint at the exact final sequence.
func (p *Pipeline) finalCompiled() {
	if p.cfg.CheckpointEvery <= 0 {
		return
	}
	p.obsMu.Lock()
	seq := p.applied
	p.obsMu.Unlock()
	p.writeCompiled(checkpoint.Capture(p.eng.Snapshot(), seq))
}

// writeCompiled persists one captured image into <dir>/checkpoints and
// prunes to the retention bound. Failures are counted, not fatal: the
// recovery ladder has lower rungs, and the next interval retries.
func (p *Pipeline) writeCompiled(img *checkpoint.Image) {
	dir := checkpoint.Dir(p.dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		stats.Add("compiled_checkpoint_errors", 1)
		return
	}
	if _, err := checkpoint.WriteImage(dir, img, p.cfg.CheckpointWrap); err != nil {
		stats.Add("compiled_checkpoint_errors", 1)
		return
	}
	if err := checkpoint.Prune(dir, p.cfg.CheckpointRetain); err != nil {
		stats.Add("compiled_checkpoint_errors", 1)
		return
	}
	stats.Add("compiled_checkpoints", 1)
}

// checkpoint makes the applied state durable: flush, export the corpus
// snapshot atomically (export to temp, rename into place), record the
// epoch↔sequence mapping, truncate redundant WAL segments. Replay
// idempotency makes every crash window here safe: the marker is written
// only after the snapshot it describes is in place, and a stale marker
// merely replays more records than strictly needed.
func (p *Pipeline) checkpoint() error {
	if err := p.snapshot(); err != nil {
		return err
	}
	final := filepath.Join(p.dir, snapshotDir)
	tmp := final + ".tmp"
	old := final + ".old"
	for _, d := range []string{tmp, old} {
		if err := os.RemoveAll(d); err != nil {
			return fmt.Errorf("ingest: checkpoint: %w", err)
		}
	}
	if err := corpus.Export(p.base, tmp); err != nil {
		return fmt.Errorf("ingest: checkpoint export: %w", err)
	}
	if _, err := os.Stat(final); err == nil {
		if err := os.Rename(final, old); err != nil {
			return fmt.Errorf("ingest: checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("ingest: checkpoint: %w", err)
	}
	_ = os.RemoveAll(old)
	p.obsMu.Lock()
	cp := wal.Checkpoint{Epoch: p.epoch, Seq: p.applied}
	p.obsMu.Unlock()
	if err := wal.SaveCheckpoint(p.dir, cp); err != nil {
		return err
	}
	// Truncate only what no recovery source still needs: the corpus
	// marker covers cp.Seq, but a retained compiled checkpoint at an
	// older sequence still needs its tail (Seq+1 ...) for replay, so the
	// floor is the minimum over all of them. (A checkpoint mid-write can
	// slip past the listing; the recovery ladder's WAL-coverage probe
	// rejects it rather than silently skipping records.)
	floor := cp.Seq
	if infos, err := checkpoint.List(checkpoint.Dir(p.dir)); err == nil {
		for _, info := range infos {
			if info.Seq < floor {
				floor = info.Seq
			}
		}
	}
	if _, err := p.w.TruncateBefore(floor + 1); err != nil {
		return err
	}
	stats.Add("checkpoints", 1)
	return nil
}

// drainRejecting empties the queue on Abort, failing every waiter.
func (p *Pipeline) drainRejecting() {
	for {
		select {
		case sub := <-p.queue:
			stats.Add("queue_depth", -1)
			sub.res <- subResult{err: ErrClosed}
		default:
			return
		}
	}
}

// drainAppending empties the queue on Close, appending everything so no
// acknowledged-or-queued mutation is lost.
func (p *Pipeline) drainAppending() {
	for {
		select {
		case sub := <-p.queue:
			p.appendBatch(sub)
		default:
			return
		}
	}
}

// deltaOf summarizes a mutation batch as an engine.Delta, so the epoch
// swap can carry over every cache entry the batch cannot have
// invalidated. Novelty (new agents, new products) is judged against the
// pre-application base; dirty marks are agent ordinals resolved against
// the post-application clone, which knows every agent the batch touched
// — including ones it just created, which have no ordinal in base.
// Marks are conservative: an upsert that restates the existing value
// still marks its agent dirty, which costs recomputation but never
// staleness.
func deltaOf(base, clone *model.Community, muts []wal.Mutation) *engine.Delta {
	d := engine.NewDelta()
	sym := clone.Symbols()
	mark := func(set map[int32]bool, id model.AgentID) {
		if ord, ok := sym.AgentOrd(id); ok {
			set[ord] = true
		}
	}
	for _, m := range muts {
		switch m.Op {
		case wal.OpUpsertAgent:
			if base.Agent(m.Agent) == nil {
				d.AgentsAdded = true
			}
		case wal.OpUpsertTrust:
			mark(d.TrustChanged, m.Agent)
			// SetTrust materializes both endpoints.
			if base.Agent(m.Agent) == nil || base.Agent(m.Peer) == nil {
				d.AgentsAdded = true
			}
		case wal.OpDeleteTrust:
			mark(d.TrustChanged, m.Agent)
		case wal.OpUpsertRating:
			mark(d.RatingsChanged, m.Agent)
			if base.Agent(m.Agent) == nil {
				d.AgentsAdded = true
			}
			// Rating an uncataloged product registers a bare entry.
			if base.Product(m.Product) == nil {
				d.ProductsChanged = true
			}
		case wal.OpDeleteRating:
			mark(d.RatingsChanged, m.Agent)
		}
	}
	return d
}

// LoadBase loads the community a WAL directory's checkpoint describes.
// ok is false when dir holds no checkpoint (first start: serve the
// original corpus and let Open replay the whole WAL).
func LoadBase(dir string) (comm *model.Community, cp wal.Checkpoint, ok bool, err error) {
	cp, ok, err = wal.LoadCheckpoint(dir)
	if err != nil || !ok {
		return nil, cp, false, err
	}
	comm, err = corpus.Import(filepath.Join(dir, snapshotDir))
	if err != nil {
		return nil, cp, false, fmt.Errorf("ingest: load checkpoint snapshot: %w", err)
	}
	return comm, cp, true, nil
}

// Validate statically checks a mutation: known op, non-empty
// identifiers, values inside [-1,+1], no self-trust. It is the shared
// gate in front of the WAL — nothing invalid becomes durable.
func Validate(m wal.Mutation) error {
	if m.Agent == "" {
		return fmt.Errorf("%w: empty agent ID", ErrInvalid)
	}
	switch m.Op {
	case wal.OpUpsertTrust, wal.OpDeleteTrust:
		if m.Peer == "" {
			return fmt.Errorf("%w: empty peer ID", ErrInvalid)
		}
		if m.Peer == m.Agent {
			return fmt.Errorf("%w: %v", ErrInvalid, model.ErrSelfTrust)
		}
		if m.Op == wal.OpUpsertTrust && (m.Value < model.MinValue || m.Value > model.MaxValue) {
			return fmt.Errorf("%w: trust value %v outside [-1,+1]", ErrInvalid, m.Value)
		}
	case wal.OpUpsertRating, wal.OpDeleteRating:
		if m.Product == "" {
			return fmt.Errorf("%w: empty product ID", ErrInvalid)
		}
		if m.Op == wal.OpUpsertRating && (m.Value < model.MinValue || m.Value > model.MaxValue) {
			return fmt.Errorf("%w: rating value %v outside [-1,+1]", ErrInvalid, m.Value)
		}
	case wal.OpUpsertAgent:
		// Name is free-form and optional.
	default:
		return fmt.Errorf("%w: unknown op %d", ErrInvalid, m.Op)
	}
	return nil
}

// ValidateIn checks m against a community view (a snapshot's community;
// read-only): an upserted rating must reference a cataloged product or
// carry a checksum-valid ISBN URN, in which case a bare catalog entry
// will be registered on apply — the §3.1 rule that ratings refer to
// globally agreed identifiers.
func ValidateIn(c *model.Community, m wal.Mutation) error {
	if err := Validate(m); err != nil {
		return err
	}
	if m.Op == wal.OpUpsertRating && c.Product(m.Product) == nil {
		raw, isURN := isbn.FromURN(string(m.Product))
		if !isURN || !isbn.Valid(raw) {
			return fmt.Errorf("%w: product %s is neither cataloged nor a valid ISBN URN",
				ErrInvalid, m.Product)
		}
	}
	return nil
}

// Apply folds one mutation into a mutable community. Upserts are
// last-writer-wins, retractions of absent statements are no-ops, and a
// rating of an uncataloged product registers a bare catalog entry (the
// same recovery Merge uses) — together this makes ordered replay
// idempotent.
func Apply(c *model.Community, m wal.Mutation) error {
	switch m.Op {
	case wal.OpUpsertAgent:
		a := c.AddAgent(m.Agent)
		if m.Name != "" {
			a.Name = m.Name
		}
		return nil
	case wal.OpUpsertTrust:
		return c.SetTrust(m.Agent, m.Peer, m.Value)
	case wal.OpDeleteTrust:
		c.DeleteTrust(m.Agent, m.Peer)
		return nil
	case wal.OpUpsertRating:
		if c.Product(m.Product) == nil {
			c.AddProduct(model.Product{ID: m.Product})
		}
		return c.SetRating(m.Agent, m.Product, m.Value)
	case wal.OpDeleteRating:
		c.DeleteRating(m.Agent, m.Product)
		return nil
	default:
		return fmt.Errorf("%w: unknown op %d", ErrInvalid, m.Op)
	}
}
