package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// okTransport answers every request with 200 and a marker body.
type okTransport struct{ calls int }

func (t *okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader("real")),
		Request:    req,
	}, nil
}

func get(t *testing.T, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://host.example/doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestZeroConfigIsTransparent(t *testing.T) {
	in := New(Config{Seed: 1})
	next := &okTransport{}
	rt := in.Transport(next)
	for i := 0; i < 50; i++ {
		resp, err := get(t, rt)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("pass-through broke: resp=%v err=%v", resp, err)
		}
		resp.Body.Close()
	}
	if next.calls != 50 {
		t.Fatalf("next.calls = %d, want 50", next.calls)
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Fatalf("zero config injected faults: %+v", c)
	}
}

func TestTransportErrorInjection(t *testing.T) {
	in := New(Config{Seed: 2, ErrorRate: 1})
	rt := in.Transport(&okTransport{})
	if _, err := get(t, rt); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if c := in.Counts(); c.TransportErrors != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestTransportStatusInjection(t *testing.T) {
	in := New(Config{Seed: 3, StatusRate: 1})
	next := &okTransport{}
	resp, err := get(t, in.Transport(next))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 default", resp.StatusCode)
	}
	if next.calls != 0 {
		t.Fatal("status injection must short-circuit the wrapped transport")
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Fatalf("synthetic body = %q, want empty", body)
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	in := New(Config{Seed: 4, LatencyRate: 1, Latency: time.Hour})
	rt := in.Transport(&okTransport{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://host.example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := rt.RoundTrip(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("latency injection ignored the request context")
	}
}

func TestDeterministicDecisionStream(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3, StatusRate: 0.2, LatencyRate: 0.1, Latency: time.Microsecond}
	trace := func() []string {
		in := New(cfg)
		rt := in.Transport(&okTransport{})
		var out []string
		for i := 0; i < 200; i++ {
			resp, err := get(t, rt)
			switch {
			case err != nil:
				out = append(out, "err")
			case resp.StatusCode == http.StatusServiceUnavailable:
				out = append(out, "503")
				resp.Body.Close()
			default:
				out = append(out, "ok")
				resp.Body.Close()
			}
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
	has := map[string]bool{}
	for _, v := range a {
		has[v] = true
	}
	if !has["err"] || !has["503"] || !has["ok"] {
		t.Fatalf("200 draws at 30%%/20%% rates should hit every outcome, got %v", has)
	}
}

func openTemp(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "data"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFileWriteError(t *testing.T) {
	in := New(Config{Seed: 5, WriteErrorRate: 1})
	f := in.File(openTemp(t))
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("n=%d err=%v, want 0 bytes + ErrInjected", n, err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("write error must land no bytes, file has %d", info.Size())
	}
	if c := in.Counts(); c.WriteErrors != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFileTornWrite(t *testing.T) {
	in := New(Config{Seed: 6, TornWriteRate: 1})
	f := in.File(openTemp(t))
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n < 1 || n >= len(payload) {
		t.Fatalf("torn write persisted %d/%d bytes, want a strict prefix", n, len(payload))
	}
	got := make([]byte, n)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[:n]) {
		t.Fatalf("prefix mismatch: %q vs %q", got, payload[:n])
	}
	info, _ := f.Stat()
	if info.Size() != int64(n) {
		t.Fatalf("file size %d, want exactly the torn prefix %d", info.Size(), n)
	}
}

func TestFileTornWriteAt(t *testing.T) {
	in := New(Config{Seed: 7, TornWriteRate: 1})
	f := in.File(openTemp(t))
	n, err := f.WriteAt([]byte("positioned"), 0)
	if !errors.Is(err, ErrInjected) || n < 1 || n >= 10 {
		t.Fatalf("n=%d err=%v, want strict prefix + ErrInjected", n, err)
	}
	if c := in.Counts(); c.TornWrites != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFileSyncError(t *testing.T) {
	in := New(Config{Seed: 8, SyncErrorRate: 1})
	f := in.File(openTemp(t))
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if c := in.Counts(); c.SyncErrors != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestSingleByteWriteNeverTorn(t *testing.T) {
	// A 1-byte write has no strict prefix; the torn path must not fire.
	in := New(Config{Seed: 9, TornWriteRate: 1})
	f := in.File(openTemp(t))
	if n, err := f.Write([]byte{0xff}); err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestDisabledRatesDoNotShiftStream(t *testing.T) {
	// Enabling an unrelated fault kind must not consume decisions that
	// shift another kind's outcomes: rates ≤ 0 draw nothing.
	seq := func(cfg Config) []bool {
		in := New(cfg)
		out := make([]bool, 100)
		for i := range out {
			_, fail := in.writePlan(8)
			out[i] = fail
		}
		return out
	}
	a := seq(Config{Seed: 10, WriteErrorRate: 0.4})
	b := seq(Config{Seed: 10, WriteErrorRate: 0.4, LatencyRate: 0}) // explicit zero
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d shifted by a disabled rate", i)
		}
	}
}
