// Package faultinject is a deterministic, seed-driven fault harness for
// chaos-testing the crawl → ingest → serve pipeline.
//
// The paper's substrate is an open Semantic Web where remote agents are
// "slow, garbage, or gone" as the normal case (§2, §4.1) — and the local
// machine underneath the recommender is no more trustworthy: disks tear
// writes mid-record and fsync fails under pressure. Rather than hope those
// paths are exercised in production first, this package interposes on the
// two I/O seams the system already has:
//
//   - Transport wraps an http.RoundTripper and injects connection errors,
//     5xx statuses, and latency into crawler fetches.
//   - File wraps an *os.File behind the wal/store WrapFile seams and
//     injects write errors, torn writes (a partial write followed by an
//     error — the classic crash shape both logs must recover from), and
//     fsync failures.
//
// Every decision is drawn from one seeded PCG stream, so a chaos run is
// reproducible: same seed, same single-threaded call sequence → same
// faults. Reads are never perturbed — the chaos suite's invariant is that
// whatever was *acknowledged* survives byte-identically, and injecting
// read faults would test a different property.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every synthetic failure; tests match it with
// errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets per-operation fault probabilities in [0,1]. Zero rates
// inject nothing, so the zero Config is a transparent pass-through.
type Config struct {
	// Seed initializes the decision stream. Two injectors with the same
	// Seed and Config make identical decisions in call order.
	Seed uint64

	// ErrorRate is the probability a RoundTrip fails outright with a
	// connection-level error.
	ErrorRate float64
	// StatusRate is the probability a RoundTrip short-circuits with Status
	// instead of reaching the wrapped transport.
	StatusRate float64
	// Status is the synthetic status code for StatusRate hits (default
	// 503).
	Status int
	// LatencyRate is the probability a RoundTrip sleeps Latency before
	// proceeding (bounded by the request context).
	LatencyRate float64
	// Latency is the injected delay for LatencyRate hits.
	Latency time.Duration

	// WriteErrorRate is the probability a file Write/WriteAt fails before
	// any byte lands.
	WriteErrorRate float64
	// TornWriteRate is the probability a file Write/WriteAt persists only
	// a prefix of the buffer and then fails — the on-disk shape of a crash
	// mid-append.
	TornWriteRate float64
	// SyncErrorRate is the probability Sync reports failure. The data may
	// or may not be durable; callers must treat the segment as suspect.
	SyncErrorRate float64
}

func (c Config) withDefaults() Config {
	if c.Status == 0 {
		c.Status = http.StatusServiceUnavailable
	}
	return c
}

// Counts tallies the faults an Injector has actually delivered, by kind.
type Counts struct {
	TransportErrors  uint64
	TransportStatus  uint64
	TransportLatency uint64
	WriteErrors      uint64
	TornWrites       uint64
	SyncErrors       uint64
}

// Total sums all injected faults.
func (c Counts) Total() uint64 {
	return c.TransportErrors + c.TransportStatus + c.TransportLatency +
		c.WriteErrors + c.TornWrites + c.SyncErrors
}

// Injector owns the seeded decision stream and hands out Transport and
// File wrappers that share it. Safe for concurrent use; under concurrency
// the stream is still consumed deterministically per lock acquisition
// order, so invariant-style assertions (not exact traces) are the right
// thing to test.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts Counts
}

// New creates an injector for cfg, seeding the decision stream from
// cfg.Seed.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed))}
}

// roll consumes one decision from the stream: true with probability rate.
// A rate ≤ 0 never fires and consumes nothing, keeping disabled fault
// kinds out of the stream entirely (so enabling one kind does not shift
// another kind's decisions).
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return rate >= 1 || in.rng.Float64() < rate
}

// Counts returns the faults delivered so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Transport wraps next with the injector's transport faults. A nil next
// uses http.DefaultTransport.
func (in *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

type transport struct {
	in   *Injector
	next http.RoundTripper
}

// transportPlan is one RoundTrip's worth of decisions, drawn atomically so
// the per-request decision order is fixed: latency, then error, then
// status.
type transportPlan struct {
	sleep time.Duration
	fail  bool
	code  int
}

func (t *transport) plan() transportPlan {
	in := t.in
	in.mu.Lock()
	defer in.mu.Unlock()
	var p transportPlan
	if in.roll(in.cfg.LatencyRate) {
		p.sleep = in.cfg.Latency
		in.counts.TransportLatency++
	}
	if in.roll(in.cfg.ErrorRate) {
		p.fail = true
		in.counts.TransportErrors++
		return p
	}
	if in.roll(in.cfg.StatusRate) {
		p.code = in.cfg.Status
		in.counts.TransportStatus++
	}
	return p
}

// RoundTrip applies the planned faults, falling through to the wrapped
// transport when none fire.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan()
	if p.sleep > 0 {
		timer := time.NewTimer(p.sleep)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if p.fail {
		return nil, fmt.Errorf("%w: connection reset (%s)", ErrInjected, req.URL.Host)
	}
	if p.code != 0 {
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", p.code, http.StatusText(p.code)),
			StatusCode: p.code,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}
	return t.next.RoundTrip(req)
}

// File wraps f with the injector's I/O faults. The wrapper implements the
// wal and store WrapFile seams (write, positioned read/write, seek,
// truncate, sync, stat, close); only Write, WriteAt, and Sync are ever
// perturbed.
func (in *Injector) File(f *os.File) *File {
	return &File{in: in, f: f}
}

// File is a fault-injecting *os.File wrapper; see Injector.File.
type File struct {
	in *Injector
	f  *os.File
}

// writePlan decides one write's fate: tornAt > 0 persists that prefix and
// fails; fail fails before any byte; otherwise the write passes through.
func (in *Injector) writePlan(n int) (tornAt int, fail bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n > 1 && in.roll(in.cfg.TornWriteRate) {
		in.counts.TornWrites++
		return 1 + in.rng.IntN(n-1), false
	}
	if in.roll(in.cfg.WriteErrorRate) {
		in.counts.WriteErrors++
		return 0, true
	}
	return 0, false
}

// Write applies write faults to the sequential append path (wal).
func (f *File) Write(p []byte) (int, error) {
	tornAt, fail := f.in.writePlan(len(p))
	if fail {
		return 0, fmt.Errorf("%w: write error", ErrInjected)
	}
	if tornAt > 0 {
		n, err := f.f.Write(p[:tornAt])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: torn write after %d/%d bytes", ErrInjected, n, len(p))
	}
	return f.f.Write(p)
}

// WriteAt applies write faults to the positioned append path (store).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	tornAt, fail := f.in.writePlan(len(p))
	if fail {
		return 0, fmt.Errorf("%w: write error", ErrInjected)
	}
	if tornAt > 0 {
		n, err := f.f.WriteAt(p[:tornAt], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: torn write after %d/%d bytes", ErrInjected, n, len(p))
	}
	return f.f.WriteAt(p, off)
}

// Sync applies fsync faults.
func (f *File) Sync() error {
	in := f.in
	in.mu.Lock()
	fire := in.roll(in.cfg.SyncErrorRate)
	if fire {
		in.counts.SyncErrors++
	}
	in.mu.Unlock()
	if fire {
		// The kernel may or may not have flushed; surface the ambiguity.
		_ = f.f.Sync()
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	}
	return f.f.Sync()
}

// ReadAt passes through: reads are never perturbed.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

// Seek passes through.
func (f *File) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }

// Truncate passes through: it is the rollback primitive the wal uses to
// recover from injected write faults, so failing it would conflate "fault
// happened" with "recovery impossible".
func (f *File) Truncate(size int64) error { return f.f.Truncate(size) }

// Stat passes through.
func (f *File) Stat() (os.FileInfo, error) { return f.f.Stat() }

// Close passes through.
func (f *File) Close() error { return f.f.Close() }
