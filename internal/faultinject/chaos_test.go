package faultinject

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swrec/internal/api"
	"swrec/internal/cf"
	"swrec/internal/checkpoint"
	"swrec/internal/core"
	"swrec/internal/crawler"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
	"swrec/internal/semweb"
	"swrec/internal/taxonomy"
	"swrec/internal/wal"
)

// defaultChaosSeed is the pinned seed `make chaos` runs with; any other
// seed must still pass every invariant, it just explores different
// interleavings of the same fault space.
const defaultChaosSeed = 1117

var chaosSeed = flag.Uint64("chaos.seed", defaultChaosSeed,
	"seed for the chaos suite's fault decision streams")

// publishChaosWeb builds one site hosting a trust chain of n agents with
// ratings over a small catalog, the raw material for a faulty crawl.
func publishChaosWeb(t *testing.T, n int) (*semweb.Internet, *semweb.Site) {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis", Topics: []taxonomy.Topic{alg}})
	s := semweb.NewSite("chaos.example", c)
	name := func(i int) model.AgentID { return s.AgentURL(fmt.Sprintf("a%d", i)) }
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	pids := []model.ProductID{"urn:isbn:9780553380958", "urn:isbn:9780521386326"}
	for i := 0; i < n; i++ {
		if i+1 < n {
			must(c.SetTrust(name(i), name(i+1), 0.5+float64(i%5)/10))
		}
		if j := (i * 7) % n; j != i && j != i+1 {
			must(c.SetTrust(name(i), name(j), 0.4))
		}
		must(c.SetRating(name(i), pids[i%len(pids)], float64(i%19)/9-1))
	}
	var in semweb.Internet
	in.RegisterSite(s)
	return &in, s
}

// chaosMutations fabricates n valid mutations against comm, mixing trust
// upserts/retractions, ratings, and agent upserts deterministically.
func chaosMutations(comm *model.Community, n int) []wal.Mutation {
	ids := comm.Agents()
	pids := comm.Products()
	out := make([]wal.Mutation, 0, n)
	for i := 0; len(out) < n; i++ {
		src := ids[i%len(ids)]
		dst := ids[(i+7)%len(ids)]
		if src == dst {
			dst = ids[(i+8)%len(ids)]
		}
		switch i % 5 {
		case 0:
			out = append(out, wal.Mutation{Op: wal.OpUpsertTrust, Agent: src, Peer: dst, Value: float64(i%20)/10 - 1})
		case 1:
			out = append(out, wal.Mutation{Op: wal.OpUpsertRating, Agent: src, Product: pids[i%len(pids)], Value: float64(i%19)/9 - 1})
		case 2:
			out = append(out, wal.Mutation{Op: wal.OpDeleteTrust, Agent: src, Peer: dst})
		case 3:
			out = append(out, wal.Mutation{Op: wal.OpUpsertAgent, Agent: model.AgentID(fmt.Sprintf("http://chaos.example/new/a%d", i)), Name: fmt.Sprintf("New %d", i)})
		case 4:
			out = append(out, wal.Mutation{Op: wal.OpDeleteRating, Agent: src, Product: pids[i%len(pids)]})
		}
	}
	return out
}

// chaosDigest canonically serializes the statement state of a community
// so two states compare byte-for-byte regardless of map iteration order.
func chaosDigest(c *model.Community) string {
	var b strings.Builder
	ids := append([]model.AgentID(nil), c.Agents()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := c.Agent(id)
		fmt.Fprintf(&b, "agent %s name=%q\n", id, a.Name)
		for _, st := range a.TrustedPeers() {
			fmt.Fprintf(&b, "  trust %s %.17g\n", st.Dst, st.Value)
		}
		for _, rt := range a.RatedProducts() {
			fmt.Fprintf(&b, "  rating %s %.17g\n", rt.Product, rt.Value)
		}
	}
	return b.String()
}

func chaosEngine(t *testing.T, comm *model.Community) *engine.Engine {
	t.Helper()
	eng, err := engine.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}, engine.Config{ComputeBudget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func lazyIngest(inj *Injector) ingest.Config {
	cfg := ingest.Config{SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour}
	if inj != nil {
		cfg.WAL.WrapFile = func(f *os.File) wal.File { return inj.File(f) }
	}
	return cfg
}

// TestChaos drives the full crawl → ingest → serve pipeline under
// seed-driven transport and disk faults and asserts the resilience
// invariants: nothing deadlocks, served snapshots are never corrupted,
// and WAL replay reproduces exactly the acknowledged mutations.
func TestChaos(t *testing.T) {
	seed := *chaosSeed
	agents, muts, readers, reads := 24, 150, 8, 25
	if testing.Short() {
		agents, muts, readers, reads = 12, 60, 4, 10
	}

	// ---- Phase 1: crawl under transport faults ----
	in, site := publishChaosWeb(t, agents)
	tInj := New(Config{Seed: seed,
		ErrorRate: 0.15, StatusRate: 0.1,
		LatencyRate: 0.2, Latency: 5 * time.Millisecond})
	cr := &crawler.Crawler{
		Client:       &http.Client{Transport: tInj.Transport(in.Client().Transport)},
		Timeout:      2 * time.Second,
		RetryBackoff: time.Millisecond,
		MaxRetries:   3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, crawlErr := cr.Crawl(ctx, site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("a0")})
	if ctx.Err() != nil {
		t.Fatal("crawl did not finish under faults — deadlock or unbounded retry")
	}
	if crawlErr != nil {
		// Only the required global documents may fail the crawl outright.
		t.Logf("crawl failed on global documents under faults (tolerated): %v", crawlErr)
	} else {
		// Whatever was crawled must be uncorrupted: every materialized
		// statement matches the published source exactly.
		src := site.Community()
		for _, id := range res.Community.Agents() {
			for _, st := range res.Community.Agent(id).TrustedPeers() {
				if v, ok := src.Trust(id, st.Dst); !ok || v != st.Value {
					t.Fatalf("crawled trust %s->%s = %v, source has %v,%v", id, st.Dst, st.Value, v, ok)
				}
			}
			for _, rt := range res.Community.Agent(id).RatedProducts() {
				if v, ok := src.Rating(id, rt.Product); !ok || v != rt.Value {
					t.Fatalf("crawled rating %s/%s = %v, source has %v,%v", id, rt.Product, rt.Value, v, ok)
				}
			}
		}
		t.Logf("crawl: %+v breakers=%v", res.Stats, cr.BreakerStates())
	}
	t.Logf("transport faults injected: %+v", tInj.Counts())

	// ---- Phase 2: ingest under disk faults while serving reads ----
	base := site.Community()
	eng := chaosEngine(t, base)
	wInj := New(Config{Seed: seed + 1,
		WriteErrorRate: 0.004, TornWriteRate: 0.004, SyncErrorRate: 0.002})
	dir := t.TempDir()
	pipe, err := ingest.Open(eng, dir, lazyIngest(wInj))
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewWithConfig(eng, pipe, api.Config{ReadBudget: 100 * time.Millisecond})

	all := chaosMutations(base, muts)
	var acked []wal.Mutation
	var badStatus atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: submit until the WAL poisons (or all land)
		defer wg.Done()
		for _, m := range all {
			if _, err := pipe.Submit(m); err != nil {
				t.Logf("submit stopped after %d acks: %v", len(acked), err)
				return
			}
			acked = append(acked, m)
		}
	}()
	ids := base.Agents()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				id := string(ids[(r*reads+i)%len(ids)])
				if i%7 == 6 {
					id = "http://chaos.example/people/nobody" // exercise 404
				}
				path := "/v1/agents/" + url.PathEscape(id) + "/recommendations?n=5"
				if i%2 == 1 {
					path = "/v1/agents/" + url.PathEscape(id) + "/neighbors"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK, http.StatusNotFound, http.StatusGatewayTimeout:
				default:
					badStatus.Add(1)
					t.Errorf("read %s returned %d: %s", path, rec.Code, rec.Body.String())
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("ingest/serve phase did not finish — deadlock")
	}
	if err := pipe.Flush(); err != nil {
		t.Logf("flush after faults (tolerated): %v", err)
	}
	t.Logf("disk faults injected: %+v; %d/%d mutations acked", wInj.Counts(), len(acked), muts)
	if seed == defaultChaosSeed && !testing.Short() && tInj.Counts().Total()+wInj.Counts().Total() == 0 {
		t.Fatal("pinned seed injected no faults — the chaos run tested nothing")
	}

	// The clean run: the acked mutations applied over the same base with
	// no faults define the one correct final state.
	cleanEng := chaosEngine(t, base)
	cleanPipe, err := ingest.Open(cleanEng, t.TempDir(), lazyIngest(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range acked {
		if _, err := cleanPipe.Submit(m); err != nil {
			t.Fatalf("clean run rejected acked mutation: %v", err)
		}
	}
	if err := cleanPipe.Flush(); err != nil {
		t.Fatal(err)
	}
	want := chaosDigest(cleanEng.Snapshot().Community())
	if err := cleanPipe.Close(); err != nil {
		t.Fatal(err)
	}

	// No corrupted snapshot: the engine that served through the faults
	// ends at exactly the clean state once every ack is applied.
	if got := chaosDigest(eng.Snapshot().Community()); got != want {
		t.Fatalf("served snapshot diverged from clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if err := pipe.Close(); err != nil {
		t.Logf("pipeline close after faults (tolerated): %v", err)
	}

	// ---- Phase 3: WAL replay is byte-identical to the acked set ----
	eng2 := chaosEngine(t, base)
	pipe2, err := ingest.Open(eng2, dir, lazyIngest(nil))
	if err != nil {
		t.Fatalf("reopen after faults: %v", err)
	}
	defer pipe2.Close()
	if got := pipe2.Replayed(); got != len(acked) {
		t.Fatalf("replayed %d records, want the %d acked", got, len(acked))
	}
	if got := chaosDigest(eng2.Snapshot().Community()); got != want {
		t.Fatalf("replayed state differs from clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if badStatus.Load() != 0 {
		t.Fatalf("%d reads returned a status outside {200,404,504}", badStatus.Load())
	}
}

// TestChaosCheckpointCrash is the kill-mid-checkpoint probe: a process
// dies while writing a compiled checkpoint (torn write on the temp file,
// plus the crash debris that shape leaves — a stale temporary and a
// corrupted in-flight file). The recovery ladder must land on the valid
// older checkpoint, and every acknowledged write must survive via WAL
// tail replay — fingerprint-equal to a run that never crashed.
func TestChaosCheckpointCrash(t *testing.T) {
	seed := *chaosSeed
	muts := 40
	if testing.Short() {
		muts = 20
	}
	_, site := publishChaosWeb(t, 16)
	base := site.Community()
	dir := t.TempDir()
	opt := core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
	engCfg := engine.Config{ComputeBudget: time.Second}
	recCfg := func() checkpoint.RecoverConfig {
		return checkpoint.RecoverConfig{
			WALDir: dir, Options: opt, Engine: engCfg,
			Corpus: func() (*model.Community, error) { return base, nil },
			Logf:   t.Logf,
		}
	}
	all := chaosMutations(base, muts)
	batchA, batchB := all[:muts/2], all[muts/2:]

	// ---- Life 1: a healthy run writes a valid checkpoint and exits ----
	ckptIngest := func(inj *Injector) ingest.Config {
		cfg := lazyIngest(nil)
		cfg.CheckpointEvery = 1
		cfg.CheckpointRetain = 4
		if inj != nil {
			cfg.CheckpointWrap = func(f *os.File) checkpoint.File { return inj.File(f) }
		}
		return cfg
	}
	pipeA, err := ingest.Open(chaosEngine(t, base), dir, ckptIngest(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batchA {
		if _, err := pipeA.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipeA.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := checkpoint.List(checkpoint.Dir(dir))
	if err != nil || len(infos) == 0 {
		t.Fatalf("life 1 left no checkpoint: %v, %d files", err, len(infos))
	}
	seqA := infos[0].Seq
	if seqA != uint64(len(batchA)) {
		t.Fatalf("life 1 checkpoint covers seq %d, want %d", seqA, len(batchA))
	}

	// ---- Life 2: restart warm, then die mid-checkpoint-write ----
	res, err := checkpoint.Recover(recCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != 1 {
		t.Fatalf("life 2 recovery landed on rung %d (%s), want 1", res.Rung, res.Source)
	}
	wInj := New(Config{Seed: seed, TornWriteRate: 1})
	pipeB, err := ingest.OpenFrom(res.Engine, dir, ckptIngest(wInj), res.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batchB {
		if _, err := pipeB.Submit(m); err != nil {
			t.Fatalf("submit after restart: %v", err)
		}
	}
	if err := pipeB.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pipeB.Abort(); err != nil { // kill-equivalent: no graceful final checkpoint
		t.Logf("abort (tolerated): %v", err)
	}
	if wInj.Counts().Total() == 0 {
		t.Fatal("no checkpoint write was torn — the crash was never simulated")
	}
	// Crash debris the torn-write shape leaves behind: a stale write
	// temporary, plus a corrupted file at the crashed sequence (a disk
	// that lied about the rename barrier).
	seqB := seqA + uint64(len(batchB))
	badName := fmt.Sprintf("ckpt-%016x.swc", seqB)
	if err := os.WriteFile(filepath.Join(checkpoint.Dir(dir), badName+".tmp-dead"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	img := checkpoint.Capture(res.Engine.Snapshot(), seqB)
	data := checkpoint.Encode(img)
	data[len(data)/2] ^= 0x41
	if err := os.WriteFile(filepath.Join(checkpoint.Dir(dir), badName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// ---- Life 3: the ladder lands on the valid older checkpoint ----
	res, err = checkpoint.Recover(recCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != 2 || res.Source != "checkpoint-prev" {
		t.Fatalf("landed on rung %d (%s), want rung 2 (checkpoint-prev); fallbacks: %v", res.Rung, res.Source, res.Fallbacks)
	}
	if res.Seq != seqA {
		t.Fatalf("recovered seq %d, want the older checkpoint's %d", res.Seq, seqA)
	}
	pipeC, err := ingest.OpenFrom(res.Engine, dir, lazyIngest(nil), res.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer pipeC.Close()
	if got := pipeC.Replayed(); got != len(batchB) {
		t.Fatalf("replayed %d WAL records, want the %d acked after the checkpoint", got, len(batchB))
	}

	// Acked writes survived: the state equals a run that never crashed.
	cleanEng := chaosEngine(t, base)
	cleanPipe, err := ingest.Open(cleanEng, t.TempDir(), lazyIngest(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range all {
		if _, err := cleanPipe.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := cleanPipe.Flush(); err != nil {
		t.Fatal(err)
	}
	want := chaosDigest(cleanEng.Snapshot().Community())
	if err := cleanPipe.Close(); err != nil {
		t.Fatal(err)
	}
	if got := chaosDigest(res.Engine.Snapshot().Community()); got != want {
		t.Fatalf("recovered state lost acked writes:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestChaosStrategyLadder is the strategy-ladder resilience probe: with
// the cold path made pathologically slow after an epoch swap, budgeted
// reads must keep answering from the ladder's bottom rung (degraded
// cache) or fail cleanly — statuses stay within {200,404,504}, and every
// 200 carries a strategy provenance block naming the answering rung.
func TestChaosStrategyLadder(t *testing.T) {
	reads := 40
	if testing.Short() {
		reads = 15
	}
	_, site := publishChaosWeb(t, 16)
	comm := site.Community()
	var delay atomic.Int64
	ids := comm.Agents()
	opt := core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
	opt.Candidates = func(model.AgentID) []model.AgentID {
		if d := time.Duration(delay.Load()); d > 0 {
			time.Sleep(d)
		}
		return ids
	}
	eng, err := engine.New(comm, opt, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewWithConfig(eng, nil, api.Config{ReadBudget: 10 * time.Millisecond})

	// Warm every agent at epoch 1, then swap in a cold epoch and make the
	// cold path slower than any read budget.
	for _, id := range ids {
		if _, err := eng.Snapshot().Recommend(id, 5, engine.Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Swap(comm.Clone()); err != nil {
		t.Fatal(err)
	}
	delay.Store(int64(150 * time.Millisecond))

	degraded := 0
	for i := 0; i < reads; i++ {
		id := string(ids[i%len(ids)])
		if i%9 == 8 {
			id = "http://chaos.example/people/nobody"
		}
		path := "/v1/agents/" + url.PathEscape(id) + "/recommendations?n=5"
		if i%2 == 1 {
			path = "/v1/agents/" + url.PathEscape(id) + "/neighbors"
		}
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusNotFound, http.StatusGatewayTimeout:
		case http.StatusOK:
			var out struct {
				Strategy *struct {
					Procedure string `json:"procedure"`
					Degraded  bool   `json:"degraded"`
				} `json:"strategy"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("read %s: bad body: %v", path, err)
			}
			if out.Strategy == nil || out.Strategy.Procedure == "" {
				t.Fatalf("read %s: 200 without a strategy block: %s", path, rec.Body.String())
			}
			if out.Strategy.Degraded {
				if out.Strategy.Procedure != "degraded-cache" {
					t.Fatalf("read %s: degraded answer from rung %s", path, out.Strategy.Procedure)
				}
				degraded++
			}
		default:
			t.Fatalf("read %s returned %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	// With every cache warmed at the previous epoch, the slow cold path
	// must have pushed at least one answer down to the degraded rung.
	if degraded == 0 {
		t.Fatal("no read landed on the degraded-cache rung — the slow path was never exercised")
	}
}
