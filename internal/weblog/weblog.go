// Package weblog implements the weblog-mining channel of §4: personal
// "online diaries" whose hyperlinks to product pages of large catalogs
// "count as implicit votes for these goods". The paper's infrastructure
// mined All Consuming this way; BLAM!-style explicit machine-readable
// ratings travel through package foaf instead.
//
// Two directions:
//
//   - Render produces an agent's weblog as a small HTML page whose posts
//     link liked books through Amazon-style product URLs (and advertises
//     the agent's FOAF homepage via <link rel="meta">, the convention of
//     the era).
//   - Mine extracts hyperlinks from arbitrary HTML, recognizes
//     catalog-product links (Amazon /exec/obidos/ASIN/… and /dp/…, plus
//     direct urn:isbn: references), maps them to ISBN identifiers — "the
//     mappings between hyperlinks and some sort of unique identifier" §4
//     calls for — and returns them as implicit unit votes.
package weblog

import (
	"context"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"swrec/internal/isbn"
	"swrec/internal/model"
)

// ErrNoFOAFLink is returned when a mined page advertises no FOAF
// homepage, so the votes cannot be attributed to an agent.
var ErrNoFOAFLink = errors.New("weblog: page advertises no FOAF homepage")

// ImplicitVote is the rating value an extracted product link counts as.
// Weblog mentions are positive but weaker evidence than explicit ratings.
const ImplicitVote = 0.6

// Render produces the agent's weblog page. Positively rated products
// become posts with Amazon-style hyperlinks; the FOAF homepage is linked
// via <link rel="meta">. Output is deterministic (products in rating
// order).
func Render(a *model.Agent, cat interface {
	Product(model.ProductID) *model.Product
}) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s's weblog</title>\n", html.EscapeString(displayName(a)))
	fmt.Fprintf(&b, "<link rel=\"meta\" type=\"application/rdf+xml\" title=\"FOAF\" href=%q>\n", string(a.ID))
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s's reading diary</h1>\n", html.EscapeString(displayName(a)))
	for _, rs := range a.RatedProducts() {
		if rs.Value <= 0 {
			continue
		}
		p := cat.Product(rs.Product)
		if p == nil {
			continue
		}
		code := p.ISBN
		if code == "" {
			if raw, ok := isbn.FromURN(string(p.ID)); ok {
				code = raw
			}
		}
		if code == "" {
			continue // not a book with a catalog identifier; nothing to link
		}
		title := p.Title
		if title == "" {
			title = code
		}
		fmt.Fprintf(&b, "<p>Currently reading <a href=\"http://www.amazon.com/exec/obidos/ASIN/%s\">%s</a> — recommended!</p>\n",
			code, html.EscapeString(title))
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func displayName(a *model.Agent) string {
	if a.Name != "" {
		return a.Name
	}
	return string(a.ID)
}

// ExtractLinks returns the href values of all <a> elements in the HTML,
// in document order. The parser is deliberately tolerant: weblogs of the
// era were rarely valid HTML.
func ExtractLinks(doc string) []string {
	var out []string
	lower := strings.ToLower(doc)
	i := 0
	for {
		a := strings.Index(lower[i:], "<a")
		if a < 0 {
			return out
		}
		a += i
		end := strings.IndexByte(lower[a:], '>')
		if end < 0 {
			return out
		}
		tag := doc[a : a+end]
		if href, ok := attrValue(tag, "href"); ok {
			out = append(out, html.UnescapeString(href))
		}
		i = a + end
	}
}

// attrValue extracts a quoted attribute from a tag's text.
func attrValue(tag, name string) (string, bool) {
	lower := strings.ToLower(tag)
	idx := strings.Index(lower, name+"=")
	if idx < 0 {
		return "", false
	}
	rest := tag[idx+len(name)+1:]
	if rest == "" {
		return "", false
	}
	switch rest[0] {
	case '"', '\'':
		q := rest[0]
		endQ := strings.IndexByte(rest[1:], q)
		if endQ < 0 {
			return "", false
		}
		return rest[1 : 1+endQ], true
	default:
		end := strings.IndexAny(rest, " \t\n>")
		if end < 0 {
			end = len(rest)
		}
		return rest[:end], true
	}
}

// ProductFromLink maps a hyperlink to a product identifier, implementing
// the link→identifier mapping §4 requires. Recognized forms:
//
//	http://www.amazon.com/exec/obidos/ASIN/<isbn>[/...]
//	http://www.amazon.com/dp/<isbn>[/...]
//	http://www.amazon.com/gp/product/<isbn>[/...]
//	urn:isbn:<isbn>
//
// The ISBN is validated (10 or 13 digits, checksum); ISBN-10s are
// upgraded to the canonical ISBN-13 URN so votes from different link
// styles aggregate onto one product.
func ProductFromLink(link string) (model.ProductID, bool) {
	var code string
	switch {
	case strings.HasPrefix(link, "urn:isbn:"):
		code, _ = isbn.FromURN(link)
	default:
		for _, marker := range []string{"/exec/obidos/ASIN/", "/dp/", "/gp/product/"} {
			if _, rest, ok := strings.Cut(link, marker); ok {
				code = rest
				if i := strings.IndexAny(code, "/?#"); i >= 0 {
					code = code[:i]
				}
				break
			}
		}
	}
	if code == "" || !isbn.Valid(code) {
		return "", false
	}
	if len(strings.ReplaceAll(code, "-", "")) == 10 {
		c13, err := isbn.To13(code)
		if err != nil {
			return "", false
		}
		code = c13
	}
	return model.ProductID(isbn.URN(code)), true
}

// Mine extracts implicit votes from a weblog page for the given author:
// every recognized product link becomes one RatingStatement with value
// ImplicitVote. Repeated links to the same product collapse into one
// statement. Results are ordered by product ID for determinism.
func Mine(author model.AgentID, doc string) []model.RatingStatement {
	seen := map[model.ProductID]bool{}
	var out []model.RatingStatement
	for _, link := range ExtractLinks(doc) {
		pid, ok := ProductFromLink(link)
		if !ok || seen[pid] {
			continue
		}
		seen[pid] = true
		out = append(out, model.RatingStatement{Agent: author, Product: pid, Value: ImplicitVote})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Product < out[j].Product })
	return out
}

// Fetch retrieves a weblog page over HTTP, attributes it to the agent
// whose FOAF homepage it advertises, and returns the implicit votes mined
// from its product links — one full All Consuming-style mining step.
func Fetch(ctx context.Context, client *http.Client, url string) (author model.AgentID, votes []model.RatingStatement, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	fctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, url, nil)
	if err != nil {
		return "", nil, fmt.Errorf("weblog: request %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", nil, fmt.Errorf("weblog: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("weblog: fetch %s: status %d", url, resp.StatusCode)
	}
	const maxPageBytes = 4 << 20
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPageBytes))
	if err != nil {
		return "", nil, fmt.Errorf("weblog: read %s: %w", url, err)
	}
	doc := string(body)
	foafURL, ok := FOAFLink(doc)
	if !ok {
		return "", nil, fmt.Errorf("%w: %s", ErrNoFOAFLink, url)
	}
	author = model.AgentID(foafURL)
	return author, Mine(author, doc), nil
}

// FOAFLink extracts the agent's advertised FOAF homepage from a weblog
// page (<link rel="meta" ... href="...">), the auto-discovery convention
// that lets crawlers hop from the human-readable diary to the
// machine-readable homepage.
func FOAFLink(doc string) (string, bool) {
	lower := strings.ToLower(doc)
	i := 0
	for {
		l := strings.Index(lower[i:], "<link")
		if l < 0 {
			return "", false
		}
		l += i
		end := strings.IndexByte(lower[l:], '>')
		if end < 0 {
			return "", false
		}
		tag := doc[l : l+end]
		rel, _ := attrValue(tag, "rel")
		if strings.EqualFold(rel, "meta") {
			if href, ok := attrValue(tag, "href"); ok {
				return html.UnescapeString(href), true
			}
		}
		i = l + end
	}
}
