package weblog_test

// External test package: exercises weblog.Fetch against a published
// semweb.Site (semweb itself imports weblog, so this must live outside
// the weblog package to avoid an import cycle).

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"swrec/internal/isbn"
	"swrec/internal/model"
	"swrec/internal/semweb"
	"swrec/internal/weblog"
)

func publishedSite(t *testing.T) (*semweb.Internet, *semweb.Site) {
	t.Helper()
	c := model.NewCommunity(nil)
	s := semweb.NewSite("blogs.example", c)
	code := isbn.Synthesize(42)
	pid := model.ProductID(isbn.URN(code))
	c.AddProduct(model.Product{ID: pid, Title: "Snow Crash", ISBN: code})
	if err := c.SetRating(s.AgentURL("alice"), pid, 1); err != nil {
		t.Fatal(err)
	}
	c.Agent(s.AgentURL("alice")).Name = "Alice"
	var in semweb.Internet
	in.RegisterSite(s)
	return &in, s
}

func TestFetchMinesPublishedBlog(t *testing.T) {
	in, site := publishedSite(t)
	author, votes, err := weblog.Fetch(context.Background(), in.Client(), site.BlogURL("alice"))
	if err != nil {
		t.Fatal(err)
	}
	// Attribution via the advertised FOAF homepage.
	if author != site.AgentURL("alice") {
		t.Fatalf("author = %s, want %s", author, site.AgentURL("alice"))
	}
	if len(votes) != 1 {
		t.Fatalf("votes = %+v, want 1", votes)
	}
	if votes[0].Value != weblog.ImplicitVote {
		t.Fatalf("vote value = %v", votes[0].Value)
	}
	// The mined vote can seed a community and the FOAF homepage (the
	// author URL) is crawlable — the full §4 discovery chain.
	resp, err := in.Client().Get(string(author))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("FOAF homepage status = %d", resp.StatusCode)
	}
}

func TestFetchErrors(t *testing.T) {
	in, site := publishedSite(t)
	if _, _, err := weblog.Fetch(context.Background(), in.Client(), site.BlogURL("ghost")); err == nil {
		t.Fatal("missing blog accepted")
	}
	// A page without a FOAF link cannot be attributed.
	var plain semweb.Internet
	plain.Register("plain.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html><body><a href=\"http://www.amazon.com/dp/" + isbn.Synthesize(1) + "\">x</a></body></html>"))
	}))
	_, _, err := weblog.Fetch(context.Background(), plain.Client(), "http://plain.example/blog")
	if !errors.Is(err, weblog.ErrNoFOAFLink) {
		t.Fatalf("got %v, want ErrNoFOAFLink", err)
	}
	// Unreachable host.
	if _, _, err := weblog.Fetch(context.Background(), (&semweb.Internet{}).Client(), "http://down.example/b"); err == nil {
		t.Fatal("unreachable host accepted")
	}
}

func TestSiteBlogEndpoint(t *testing.T) {
	in, site := publishedSite(t)
	resp, err := in.Client().Get(site.BlogURL("alice"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
}
