package weblog

import (
	"strings"
	"testing"
	"testing/quick"

	"swrec/internal/isbn"
	"swrec/internal/model"
)

func community(t *testing.T) *model.Community {
	t.Helper()
	c := model.NewCommunity(nil)
	add := func(seq int, title string) model.ProductID {
		code := isbn.Synthesize(seq)
		id := model.ProductID(isbn.URN(code))
		c.AddProduct(model.Product{ID: id, Title: title, ISBN: code})
		return id
	}
	p1 := add(1, "Snow Crash")
	p2 := add(2, "Matrix Analysis")
	p3 := add(3, "Hated Book")
	must(t, c.SetRating("http://x/people/alice", p1, 1))
	must(t, c.SetRating("http://x/people/alice", p2, 0.4))
	must(t, c.SetRating("http://x/people/alice", p3, -0.9))
	c.Agent("http://x/people/alice").Name = "Alice"
	return c
}

func TestRenderShape(t *testing.T) {
	c := community(t)
	doc := Render(c.Agent("http://x/people/alice"), c)
	if !strings.Contains(doc, "<title>Alice's weblog</title>") {
		t.Fatalf("missing title:\n%s", doc)
	}
	// Liked books linked, hated book absent.
	if !strings.Contains(doc, "Snow Crash") || !strings.Contains(doc, "Matrix Analysis") {
		t.Fatalf("liked books missing:\n%s", doc)
	}
	if strings.Contains(doc, "Hated Book") {
		t.Fatal("negatively rated book linked")
	}
	if !strings.Contains(doc, "amazon.com/exec/obidos/ASIN/") {
		t.Fatal("no Amazon-style product link")
	}
	// FOAF auto-discovery advertised.
	if !strings.Contains(doc, `rel="meta"`) {
		t.Fatal("FOAF link missing")
	}
	// Deterministic.
	if doc != Render(c.Agent("http://x/people/alice"), c) {
		t.Fatal("Render not deterministic")
	}
}

func TestExtractLinks(t *testing.T) {
	doc := `<html><body>
<a href="http://a/1">one</a>
<A HREF='http://a/2'>two</A>
<a class="x" href="http://a/3?q=v#frag">three</a>
<a name="anchor-without-href">four</a>
<a href=http://a/5>unquoted</a>
<a href="http://a/amp?x=1&amp;y=2">amp</a>
</body></html>`
	links := ExtractLinks(doc)
	want := []string{"http://a/1", "http://a/2", "http://a/3?q=v#frag", "http://a/5", "http://a/amp?x=1&y=2"}
	if len(links) != len(want) {
		t.Fatalf("links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("link %d = %q, want %q", i, links[i], want[i])
		}
	}
	if got := ExtractLinks("no anchors here"); len(got) != 0 {
		t.Fatalf("phantom links: %v", got)
	}
	if got := ExtractLinks("<a href=\"unterminated"); len(got) != 0 {
		t.Fatalf("truncated tag yielded: %v", got)
	}
}

func TestProductFromLink(t *testing.T) {
	code13 := isbn.Synthesize(7)
	code10, err := isbn.To10(code13)
	if err != nil {
		t.Fatal(err)
	}
	wantID := model.ProductID(isbn.URN(code13))

	good := []string{
		"http://www.amazon.com/exec/obidos/ASIN/" + code13,
		"http://www.amazon.com/exec/obidos/ASIN/" + code10, // ISBN-10 canonicalized
		"http://www.amazon.com/dp/" + code13 + "/ref=sr_1_1",
		"http://www.amazon.com/gp/product/" + code13 + "?tag=x",
		"urn:isbn:" + code13,
	}
	for _, link := range good {
		got, ok := ProductFromLink(link)
		if !ok || got != wantID {
			t.Errorf("ProductFromLink(%q) = %q,%v, want %q", link, got, ok, wantID)
		}
	}
	bad := []string{
		"http://www.amazon.com/dp/notanisbn",
		"http://www.amazon.com/exec/obidos/ASIN/1234567890123", // bad checksum
		"http://example.org/some/page",
		"urn:isbn:bogus",
		"",
	}
	for _, link := range bad {
		if _, ok := ProductFromLink(link); ok {
			t.Errorf("ProductFromLink(%q) accepted", link)
		}
	}
}

func TestMineRoundTrip(t *testing.T) {
	// Render alice's weblog, mine it back: every positively rated book
	// with an ISBN returns as one implicit vote.
	c := community(t)
	alice := c.Agent("http://x/people/alice")
	doc := Render(alice, c)
	votes := Mine(alice.ID, doc)
	if len(votes) != 2 {
		t.Fatalf("votes = %+v, want 2", votes)
	}
	for _, v := range votes {
		if v.Agent != alice.ID || v.Value != ImplicitVote {
			t.Fatalf("bad vote %+v", v)
		}
		if _, rated := alice.Ratings[v.Product]; !rated {
			t.Fatalf("mined product %s the author never rated", v.Product)
		}
	}
	// Votes feed straight into a community.
	c2 := model.NewCommunity(nil)
	for _, v := range votes {
		c2.AddProduct(model.Product{ID: v.Product})
		must(t, c2.SetRating(v.Agent, v.Product, v.Value))
	}
	if got := len(c2.Agent(alice.ID).Ratings); got != 2 {
		t.Fatalf("materialized votes = %d", got)
	}
}

func TestMineDeduplicates(t *testing.T) {
	code := isbn.Synthesize(9)
	doc := `<a href="http://www.amazon.com/dp/` + code + `">x</a>
<a href="http://www.amazon.com/exec/obidos/ASIN/` + code + `">same book again</a>`
	votes := Mine("http://x/a", doc)
	if len(votes) != 1 {
		t.Fatalf("votes = %+v, want 1 (deduplicated)", votes)
	}
}

func TestFOAFLink(t *testing.T) {
	doc := `<html><head>
<link rel="stylesheet" href="/style.css">
<link rel="meta" type="application/rdf+xml" href="http://x/people/alice">
</head></html>`
	got, ok := FOAFLink(doc)
	if !ok || got != "http://x/people/alice" {
		t.Fatalf("FOAFLink = %q,%v", got, ok)
	}
	if _, ok := FOAFLink("<html></html>"); ok {
		t.Fatal("phantom FOAF link")
	}
	if _, ok := FOAFLink(`<link rel="stylesheet" href="/s.css">`); ok {
		t.Fatal("stylesheet link mistaken for FOAF")
	}
}

// Property: rendered weblogs always mine back to a subset of the
// author's positively rated, ISBN-carrying products, each exactly once.
func TestRenderMineProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c := model.NewCommunity(nil)
		author := model.AgentID("http://x/p")
		c.AddAgent(author)
		liked := map[model.ProductID]bool{}
		for i := 0; i < int(n%20); i++ {
			code := isbn.Synthesize(int(seed&0xffff) + i)
			id := model.ProductID(isbn.URN(code))
			c.AddProduct(model.Product{ID: id, ISBN: code, Title: "B"})
			v := 1.0
			if i%3 == 0 {
				v = -1
			}
			if err := c.SetRating(author, id, v); err != nil {
				return false
			}
			if v > 0 {
				liked[id] = true
			}
		}
		votes := Mine(author, Render(c.Agent(author), c))
		if len(votes) != len(liked) {
			return false
		}
		for _, v := range votes {
			if !liked[v.Product] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
