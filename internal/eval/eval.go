// Package eval is the quantitative harness behind the experiments of
// DESIGN.md: trust↔similarity correlation measurement (E2), leave-one-out
// recommendation accuracy (E7), attack exposure (E4), profile-overlap
// statistics (E5), and the rank-correlation coefficients used to compare
// trust and similarity orderings. The paper announces exactly this kind of
// framework in §3.4 ("matching these approaches against each other within
// an experimental framework allowing for some quantitative analysis").
package eval

// The leave-one-out harnesses below hide a rating, run the recommender,
// and restore the rating before returning — an in-place mutate-and-
// restore on a community the harness owns for offline measurement.
//
//swrecvet:disable snapshotfreeze -- leave-one-out holdout mutates a harness-owned offline community and restores it before returning; single-threaded, never a swapped snapshot

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/model"
	"swrec/internal/trust"
)

// SimilarityGap contrasts the mean profile similarity of trusted pairs
// against random pairs — the measurable form of the §3.2 claim that
// "trust and interest profiles tend to correlate" [5].
type SimilarityGap struct {
	TrustedMean  float64 // mean similarity over sampled direct-trust pairs
	RandomMean   float64 // mean similarity over random agent pairs
	TrustedPairs int     // pairs with defined similarity
	RandomPairs  int
}

// Gap returns TrustedMean - RandomMean.
func (g SimilarityGap) Gap() float64 { return g.TrustedMean - g.RandomMean }

// TrustVsRandomSimilarity samples up to maxPairs directly-trusting pairs
// (positive statements only) and as many random pairs, and reports the
// mean similarity of each population under the given filter.
func TrustVsRandomSimilarity(comm *model.Community, f *cf.Filter, maxPairs int, rng *rand.Rand) SimilarityGap {
	edges := comm.TrustEdges()
	var positive []model.TrustStatement
	for _, e := range edges {
		if e.Value > 0 {
			positive = append(positive, e)
		}
	}
	rng.Shuffle(len(positive), func(i, j int) { positive[i], positive[j] = positive[j], positive[i] })
	if maxPairs > 0 && len(positive) > maxPairs {
		positive = positive[:maxPairs]
	}

	var g SimilarityGap
	var sumT float64
	for _, e := range positive {
		if s, ok := f.Similarity(e.Src, e.Dst); ok {
			sumT += s
			g.TrustedPairs++
		}
	}
	agents := comm.Agents()
	var sumR float64
	for i := 0; i < len(positive); i++ {
		a := agents[rng.Intn(len(agents))]
		b := agents[rng.Intn(len(agents))]
		if a == b {
			continue
		}
		if s, ok := f.Similarity(a, b); ok {
			sumR += s
			g.RandomPairs++
		}
	}
	if g.TrustedPairs > 0 {
		g.TrustedMean = sumT / float64(g.TrustedPairs)
	}
	if g.RandomPairs > 0 {
		g.RandomMean = sumR / float64(g.RandomPairs)
	}
	return g
}

// LOOResult summarizes a leave-one-out run.
type LOOResult struct {
	Trials  int     // agents evaluated
	Hits    int     // held-out item returned within top-N
	HitRate float64 // Hits / Trials
	// MeanRank is the mean 1-based rank of the held-out item when hit.
	MeanRank float64
	// Empty counts trials where the recommender returned nothing.
	Empty int
}

// RecommenderFactory builds a recommender over the (mutated) community for
// each trial. Factories must not cache profiles across calls — leave-one-
// out mutates rating histories between trials.
type RecommenderFactory func(comm *model.Community) (*core.Recommender, error)

// ErrNoTrials is returned when no agent qualifies for leave-one-out.
var ErrNoTrials = errors.New("eval: no agent has enough positive ratings for leave-one-out")

// LeaveOneOut measures top-N hit rate: for up to maxTrials sampled agents
// with at least two positive ratings, one positive rating is withheld, the
// recommender runs, and a hit is scored when the withheld product appears
// in the top N. The community is restored after every trial.
func LeaveOneOut(comm *model.Community, factory RecommenderFactory, topN, maxTrials int, rng *rand.Rand) (LOOResult, error) {
	var res LOOResult
	agents := append([]model.AgentID(nil), comm.Agents()...)
	rng.Shuffle(len(agents), func(i, j int) { agents[i], agents[j] = agents[j], agents[i] })

	var rankSum int
	for _, id := range agents {
		if maxTrials > 0 && res.Trials >= maxTrials {
			break
		}
		a := comm.Agent(id)
		var liked []model.ProductID
		for p, v := range a.Ratings {
			if v > 0 {
				liked = append(liked, p)
			}
		}
		if len(liked) < 2 {
			continue
		}
		sort.Slice(liked, func(i, j int) bool { return liked[i] < liked[j] })
		held := liked[rng.Intn(len(liked))]
		heldVal := a.Ratings[held]
		delete(a.Ratings, held)
		a.MarkDirty()

		rec, err := factory(comm)
		if err != nil {
			a.Ratings[held] = heldVal
			a.MarkDirty()
			return res, fmt.Errorf("eval: factory: %w", err)
		}
		recs, err := rec.Recommend(id, topN)
		a.Ratings[held] = heldVal // restore before error handling
		a.MarkDirty()
		if err != nil {
			return res, fmt.Errorf("eval: recommend for %s: %w", id, err)
		}
		res.Trials++
		if len(recs) == 0 {
			res.Empty++
			continue
		}
		for rank, r := range recs {
			if r.Product == held {
				res.Hits++
				rankSum += rank + 1
				break
			}
		}
	}
	if res.Trials == 0 {
		return res, ErrNoTrials
	}
	res.HitRate = float64(res.Hits) / float64(res.Trials)
	if res.Hits > 0 {
		res.MeanRank = float64(rankSum) / float64(res.Hits)
	}
	return res, nil
}

// AttackExposure describes how far an injected product penetrated a
// recommendation list.
type AttackExposure struct {
	Recommended bool
	Rank        int     // 1-based; 0 when not recommended
	Score       float64 // its vote score, 0 when absent
}

// Exposure locates the pushed product in a recommendation list.
func Exposure(recs []core.Recommendation, pushed model.ProductID) AttackExposure {
	for i, r := range recs {
		if r.Product == pushed {
			return AttackExposure{Recommended: true, Rank: i + 1, Score: r.Score}
		}
	}
	return AttackExposure{}
}

// KendallTau computes Kendall's τ-a between two orderings of the same set
// of agents. It returns an error when the rankings do not cover the same
// set. τ = 1 means identical order, -1 reversed.
func KendallTau(a, b []model.AgentID) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: rankings differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("eval: need at least 2 elements, got %d", n)
	}
	pos := make(map[model.AgentID]int, n)
	for i, id := range b {
		pos[id] = i
	}
	if len(pos) != n {
		return 0, fmt.Errorf("eval: rankings contain duplicates")
	}
	perm := make([]int, n)
	used := make([]bool, n)
	for i, id := range a {
		p, ok := pos[id]
		if !ok {
			return 0, fmt.Errorf("eval: %s missing from second ranking", id)
		}
		if used[p] {
			return 0, fmt.Errorf("eval: rankings contain duplicates")
		}
		used[p] = true
		perm[i] = p
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if perm[i] < perm[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(total), nil
}

// Spearman computes Spearman's ρ between two orderings of the same agent
// set (rank correlation over positions).
func Spearman(a, b []model.AgentID) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: rankings differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("eval: need at least 2 elements, got %d", n)
	}
	pos := make(map[model.AgentID]int, n)
	for i, id := range b {
		pos[id] = i
	}
	var d2 float64
	for i, id := range a {
		p, ok := pos[id]
		if !ok {
			return 0, fmt.Errorf("eval: %s missing from second ranking", id)
		}
		diff := float64(i - p)
		d2 += diff * diff
	}
	nn := float64(n)
	return 1 - 6*d2/(nn*(nn*nn-1)), nil
}

// RankAgents extracts the agent ordering from a trust neighborhood.
func RankAgents(nb *trust.Neighborhood) []model.AgentID {
	out := make([]model.AgentID, len(nb.Ranks))
	for i, r := range nb.Ranks {
		out[i] = r.Agent
	}
	return out
}

// RankPeers extracts the agent ordering from synthesized peer ranks.
func RankPeers(peers []core.PeerRank) []model.AgentID {
	out := make([]model.AgentID, len(peers))
	for i, p := range peers {
		out[i] = p.Agent
	}
	return out
}

// PRPoint is one precision/recall measurement at a list length N.
type PRPoint struct {
	N         int
	Precision float64
	Recall    float64
	F1        float64
}

// PrecisionRecall measures precision/recall/F1 at several list lengths by
// withholding a *set* of positive ratings per sampled agent (half of the
// liked products, at least one) and checking how many return in the
// top-N. Ns must be ascending.
func PrecisionRecall(comm *model.Community, factory RecommenderFactory, ns []int, maxTrials int, rng *rand.Rand) ([]PRPoint, error) {
	if len(ns) == 0 {
		return nil, errors.New("eval: no list lengths given")
	}
	maxN := ns[len(ns)-1]
	agents := append([]model.AgentID(nil), comm.Agents()...)
	rng.Shuffle(len(agents), func(i, j int) { agents[i], agents[j] = agents[j], agents[i] })

	hits := make([]float64, len(ns)) // Σ per-trial hit counts at each N
	recalls := make([]float64, len(ns))
	trials := 0
	for _, id := range agents {
		if maxTrials > 0 && trials >= maxTrials {
			break
		}
		a := comm.Agent(id)
		var liked []model.ProductID
		for p, v := range a.Ratings {
			if v > 0 {
				liked = append(liked, p)
			}
		}
		if len(liked) < 4 {
			continue
		}
		sort.Slice(liked, func(i, j int) bool { return liked[i] < liked[j] })
		rng.Shuffle(len(liked), func(i, j int) { liked[i], liked[j] = liked[j], liked[i] })
		held := liked[:len(liked)/2]
		saved := make(map[model.ProductID]float64, len(held))
		for _, p := range held {
			saved[p] = a.Ratings[p]
			delete(a.Ratings, p)
		}
		a.MarkDirty()
		restore := func() {
			for p, v := range saved {
				a.Ratings[p] = v
			}
			a.MarkDirty()
		}

		rec, err := factory(comm)
		if err != nil {
			restore()
			return nil, fmt.Errorf("eval: factory: %w", err)
		}
		recs, err := rec.Recommend(id, maxN)
		restore()
		if err != nil {
			return nil, fmt.Errorf("eval: recommend for %s: %w", id, err)
		}
		trials++
		heldSet := make(map[model.ProductID]bool, len(held))
		for _, p := range held {
			heldSet[p] = true
		}
		for ni, n := range ns {
			h := 0
			for i := 0; i < n && i < len(recs); i++ {
				if heldSet[recs[i].Product] {
					h++
				}
			}
			hits[ni] += float64(h) / float64(n)
			recalls[ni] += float64(h) / float64(len(held))
		}
	}
	if trials == 0 {
		return nil, ErrNoTrials
	}
	out := make([]PRPoint, len(ns))
	for i, n := range ns {
		p := hits[i] / float64(trials)
		r := recalls[i] / float64(trials)
		f1 := 0.0
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		out[i] = PRPoint{N: n, Precision: p, Recall: r, F1: f1}
	}
	return out, nil
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
