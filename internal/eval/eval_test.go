package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/model"
)

func smallCommunity(t *testing.T, fidelity float64) (*model.Community, *datagen.Meta) {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.ClusterFidelity = fidelity
	comm, meta := datagen.Generate(cfg)
	return comm, meta
}

func TestTrustVsRandomSimilarity(t *testing.T) {
	comm, _ := smallCommunity(t, 0.9)
	f, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	g := TrustVsRandomSimilarity(comm, f, 300, rand.New(rand.NewSource(1)))
	if g.TrustedPairs == 0 || g.RandomPairs == 0 {
		t.Fatalf("no pairs sampled: %+v", g)
	}
	// With high cluster fidelity, trusted peers must be measurably more
	// similar than random pairs — the paper's [5] correlation claim.
	if g.Gap() <= 0 {
		t.Fatalf("trusted-pair similarity gap = %v, want positive (%+v)", g.Gap(), g)
	}
}

func TestTrustVsRandomSimilarityGapGrowsWithFidelity(t *testing.T) {
	gap := func(fid float64) float64 {
		comm, _ := smallCommunity(t, fid)
		f, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
		if err != nil {
			t.Fatal(err)
		}
		return TrustVsRandomSimilarity(comm, f, 300, rand.New(rand.NewSource(2))).Gap()
	}
	lo, hi := gap(0.0), gap(0.95)
	if hi <= lo {
		t.Fatalf("gap must grow with fidelity: %v (0.0) vs %v (0.95)", lo, hi)
	}
}

func TestLeaveOneOut(t *testing.T) {
	comm, _ := smallCommunity(t, 0.8)
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
	}
	res, err := LeaveOneOut(comm, factory, 20, 40, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 {
		t.Fatal("no trials ran")
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("HitRate = %v", res.HitRate)
	}
	if res.Hits > 0 && (res.MeanRank < 1 || res.MeanRank > 20) {
		t.Fatalf("MeanRank = %v", res.MeanRank)
	}
	// Community restored: stats identical to a fresh generation.
	fresh, _ := smallCommunity(t, 0.8)
	if comm.ComputeStats() != fresh.ComputeStats() {
		t.Fatal("leave-one-out did not restore the community")
	}
}

func TestLeaveOneOutBeatsRandomBaseline(t *testing.T) {
	comm, _ := smallCommunity(t, 0.8)
	rng := rand.New(rand.NewSource(4))
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
	}
	res, err := LeaveOneOut(comm, factory, 20, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Random top-20 of ~300 products would hit ≈6.7% of the time. The
	// pipeline should do clearly better on clustered data.
	if res.HitRate < 0.1 {
		t.Fatalf("HitRate = %v, want ≥ 0.1 (random ≈ 0.067)", res.HitRate)
	}
}

func TestLeaveOneOutNoTrials(t *testing.T) {
	comm := model.NewCommunity(nil)
	comm.AddAgent("a") // no ratings at all
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{CF: cf.Options{Representation: cf.Product}})
	}
	if _, err := LeaveOneOut(comm, factory, 10, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoTrials) {
		t.Fatalf("got %v, want ErrNoTrials", err)
	}
}

func TestPrecisionRecall(t *testing.T) {
	comm, _ := smallCommunity(t, 0.8)
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
	}
	pts, err := PrecisionRecall(comm, factory, []int{5, 10, 20}, 30, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("out of range: %+v", p)
		}
		if p.F1 > 0 && (p.Precision == 0 || p.Recall == 0) {
			t.Fatalf("inconsistent F1: %+v", p)
		}
	}
	// Recall is non-decreasing in N.
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall-1e-9 {
			t.Fatalf("recall decreased with N: %+v", pts)
		}
	}
	// Community restored.
	fresh, _ := smallCommunity(t, 0.8)
	if comm.ComputeStats() != fresh.ComputeStats() {
		t.Fatal("PrecisionRecall did not restore the community")
	}
	if _, err := PrecisionRecall(comm, factory, nil, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty Ns accepted")
	}
}

func TestExposure(t *testing.T) {
	recs := []core.Recommendation{
		{Product: "p1", Score: 3},
		{Product: "evil", Score: 2},
		{Product: "p2", Score: 1},
	}
	e := Exposure(recs, "evil")
	if !e.Recommended || e.Rank != 2 || e.Score != 2 {
		t.Fatalf("Exposure = %+v", e)
	}
	if got := Exposure(recs, "missing"); got.Recommended || got.Rank != 0 {
		t.Fatalf("absent product = %+v", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := []model.AgentID{"a", "b", "c", "d"}
	if tau, err := KendallTau(a, a); err != nil || tau != 1 {
		t.Fatalf("identical τ = %v,%v", tau, err)
	}
	rev := []model.AgentID{"d", "c", "b", "a"}
	if tau, err := KendallTau(a, rev); err != nil || tau != -1 {
		t.Fatalf("reversed τ = %v,%v", tau, err)
	}
	swapped := []model.AgentID{"b", "a", "c", "d"}
	tau, err := KendallTau(a, swapped)
	if err != nil || math.Abs(tau-(1-2.0/6.0*2)) > 1e-9 {
		// One discordant pair of six: τ = (5-1)/6.
		if math.Abs(tau-4.0/6.0) > 1e-9 {
			t.Fatalf("one-swap τ = %v,%v", tau, err)
		}
	}
	if _, err := KendallTau(a, a[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau(a, []model.AgentID{"a", "b", "c", "x"}); err == nil {
		t.Fatal("set mismatch accepted")
	}
	if _, err := KendallTau([]model.AgentID{"a"}, []model.AgentID{"a"}); err == nil {
		t.Fatal("singleton accepted")
	}
	dup := []model.AgentID{"a", "a", "b", "c"}
	if _, err := KendallTau(dup, a); err == nil {
		t.Fatal("duplicates accepted")
	}
}

func TestSpearman(t *testing.T) {
	a := []model.AgentID{"a", "b", "c", "d", "e"}
	if rho, err := Spearman(a, a); err != nil || rho != 1 {
		t.Fatalf("identical ρ = %v,%v", rho, err)
	}
	rev := []model.AgentID{"e", "d", "c", "b", "a"}
	if rho, err := Spearman(a, rev); err != nil || rho != -1 {
		t.Fatalf("reversed ρ = %v,%v", rho, err)
	}
	if _, err := Spearman(a, a[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Spearman(a, []model.AgentID{"a", "b", "c", "d", "x"}); err == nil {
		t.Fatal("set mismatch accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Fatalf("MeanStd = %v,%v, want 5,2", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd must be 0,0")
	}
}

func TestRankExtractors(t *testing.T) {
	comm, _ := smallCommunity(t, 0.8)
	r, err := core.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]
	nb, err := r.Neighborhood(active)
	if err != nil {
		t.Fatal(err)
	}
	ids := RankAgents(nb)
	if len(ids) != len(nb.Ranks) {
		t.Fatal("RankAgents lost entries")
	}
	peers, err := r.RankedPeers(active)
	if err != nil {
		t.Fatal(err)
	}
	pids := RankPeers(peers)
	if len(pids) != len(peers) {
		t.Fatal("RankPeers lost entries")
	}
}
