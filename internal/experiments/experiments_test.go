package experiments

import (
	"io"
	"strings"
	"testing"
)

func small() Params { return Params{Seed: 1, Scale: "small"} }

func TestE1MatchesPaper(t *testing.T) {
	var sb strings.Builder
	res, err := E1(&sb, small())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's printed values carry rounding error ≤ 0.005.
	if res.MaxError > 0.005 {
		t.Fatalf("MaxError = %v, want ≤ 0.005", res.MaxError)
	}
	// The descriptor share (50) is conserved along the path.
	if res.PathTotal < 49.999 || res.PathTotal > 50.001 {
		t.Fatalf("PathTotal = %v, want 50", res.PathTotal)
	}
	if !strings.Contains(sb.String(), "Algebra") {
		t.Fatal("table output missing")
	}
}

func TestE2GapPositiveAndGrowing(t *testing.T) {
	res, err := E2(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.GapAtHighFidelity <= 0 {
		t.Fatalf("high-fidelity gap = %v, want positive", res.GapAtHighFidelity)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Gap <= first.Gap {
		t.Fatalf("gap must grow with fidelity: %v -> %v", first.Gap, last.Gap)
	}
}

func TestE3Converges(t *testing.T) {
	res, err := E3(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("some Appleseed run hit the iteration cap")
	}
	for _, r := range res.Rows {
		if r.RankMass > 200+1e-6 {
			t.Fatalf("rank mass %v exceeds injection 200", r.RankMass)
		}
		if r.Neighbors == 0 {
			t.Fatalf("empty neighborhood at d=%v Tc=%v", r.Spreading, r.Threshold)
		}
	}
	// Tighter threshold ⇒ at least as many iterations (per spreading
	// factor, rows are ordered by decreasing Tc).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Spreading == res.Rows[i-1].Spreading &&
			res.Rows[i].Iterations < res.Rows[i-1].Iterations {
			t.Fatalf("iterations decreased with tighter threshold: %+v -> %+v",
				res.Rows[i-1], res.Rows[i])
		}
	}
}

func TestE4TrustShields(t *testing.T) {
	res, err := E4(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	if !res.PureCFEverExposed {
		t.Fatal("pure CF never fell for the attack — attack model broken")
	}
	if res.HybridEverExposed {
		t.Fatal("trust-filtered hybrid recommended the pushed product")
	}
	for _, r := range res.Rows {
		if r.SybilsInHybrid != 0 {
			t.Fatalf("%d sybils in hybrid neighborhood at k=%d", r.SybilsInHybrid, r.Sybils)
		}
	}
}

func TestE5TaxonomyDominatesOverlap(t *testing.T) {
	res, err := E5(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.TaxonomyFrac < r.ProductFrac {
			t.Fatalf("taxonomy overlap %v below product overlap %v at %d ratings",
				r.TaxonomyFrac, r.ProductFrac, r.MeanRatings)
		}
	}
	// At short histories the gap must be substantial.
	short := res.Rows[0]
	if short.TaxonomyFrac-short.ProductFrac < 0.2 {
		t.Fatalf("short-history gap too small: taxonomy %v vs product %v",
			short.TaxonomyFrac, short.ProductFrac)
	}
}

func TestE6TrustPrefilterBounded(t *testing.T) {
	res, err := E6(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Full-scan candidate count grows with community size.
	if last.FullCandidates <= first.FullCandidates {
		t.Fatalf("full-scan candidates did not grow: %d -> %d",
			first.FullCandidates, last.FullCandidates)
	}
	// The trust-prefiltered candidate set stays bounded by MaxNodes.
	for _, r := range res.Rows {
		if r.TrustCandidates > 150 {
			t.Fatalf("trust candidates %d exceed the 150 bound", r.TrustCandidates)
		}
	}
}

func TestE7BeatsRandom(t *testing.T) {
	res, err := E7(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Strategies {
		if s.Strategy == "product-vector CF" {
			continue // classic CF may legitimately struggle at this scale
		}
		if s.HitRate <= res.RandomBaseline {
			t.Fatalf("%s hit rate %v does not beat random %v",
				s.Strategy, s.HitRate, res.RandomBaseline)
		}
	}
	if len(res.AlphaSweep) != 5 {
		t.Fatalf("alpha sweep rows = %d", len(res.AlphaSweep))
	}
}

func TestE8DeepTaxonomyDiscriminates(t *testing.T) {
	res, err := E8(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	var deepEq3, broadEq3 *E8Row
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Mode != "eq3" {
			continue
		}
		if strings.HasPrefix(r.Shape, "deep") {
			deepEq3 = r
		} else {
			broadEq3 = r
		}
	}
	if deepEq3 == nil || broadEq3 == nil {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	if deepEq3.Gap <= 0 || broadEq3.Gap <= 0 {
		t.Fatalf("cluster discrimination gaps must be positive: %+v, %+v", deepEq3, broadEq3)
	}
	if deepEq3.Gap <= broadEq3.Gap {
		t.Fatalf("deep taxonomy gap %v must exceed broad gap %v", deepEq3.Gap, broadEq3.Gap)
	}
	// Eq. 3 ablation: uniform propagation inflates all similarities, so
	// its intra/inter contrast collapses relative to Eq. 3.
	for _, shape := range []string{"deep", "broad"} {
		var eq3, uniform *E8Row
		for i := range res.Rows {
			r := &res.Rows[i]
			if !strings.HasPrefix(r.Shape, shape) {
				continue
			}
			switch r.Mode {
			case "eq3":
				eq3 = r
			case "uniform":
				uniform = r
			}
		}
		if eq3 == nil || uniform == nil {
			t.Fatalf("%s rows incomplete", shape)
		}
		if eq3.Contrast <= uniform.Contrast {
			t.Fatalf("%s: Eq3 contrast %v must exceed uniform contrast %v",
				shape, eq3.Contrast, uniform.Contrast)
		}
	}
}

func TestE9PipelineMaterializes(t *testing.T) {
	res, err := E9(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachableMatch {
		t.Fatal("crawl did not fully materialize the reachable set")
	}
	if res.CrawledStats.Agents == 0 || res.CrawledStats.Ratings == 0 {
		t.Fatalf("crawled community degenerate: %+v", res.CrawledStats)
	}
	if res.CrawlStats.Failed != 0 {
		t.Fatalf("crawl failures on a fully published web: %d", res.CrawlStats.Failed)
	}
	if res.Recommendations == 0 {
		t.Fatal("no recommendations from crawled data")
	}
}

func TestE10StereotypesRecoverClusters(t *testing.T) {
	res, err := E10(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	var atTrueK float64
	for _, e := range res.PuritySweep {
		if e.K == 6 { // SmallScale has 6 clusters
			atTrueK = e.Purity
		}
	}
	if atTrueK < 2*res.ChanceLevel {
		t.Fatalf("purity at true K = %v, chance %v", atTrueK, res.ChanceLevel)
	}
	if res.StereoCand >= res.FullCand/2 {
		t.Fatalf("stereotype restriction barely cuts candidates: %d vs %d",
			res.StereoCand, res.FullCand)
	}
	if res.StereoHitRate < res.FullHitRate/2 {
		t.Fatalf("stereotype restriction lost too much accuracy: %v vs %v",
			res.StereoHitRate, res.FullHitRate)
	}
}

func TestE11DiversificationTradeoff(t *testing.T) {
	res, err := E11(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Trials == 0 {
		t.Fatalf("rows = %d, trials = %d", len(res.Rows), res.Trials)
	}
	first, moderate, last := res.Rows[0], res.Rows[1], res.Rows[len(res.Rows)-1]
	// ILS falls monotonically with θ.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MeanILS > res.Rows[i-1].MeanILS {
			t.Fatalf("ILS rose with theta: %+v", res.Rows)
		}
	}
	// Moderate diversification widens coverage (extreme θ may re-focus on
	// outlier items, as WWW'05 also observed — hence its Θ ≈ 0.4 cap).
	if moderate.Coverage <= first.Coverage {
		t.Fatalf("moderate coverage did not widen: %v -> %v", first.Coverage, moderate.Coverage)
	}
	// Accuracy should not collapse even at extreme θ.
	if last.HitRate < first.HitRate/2 {
		t.Fatalf("accuracy collapsed: %v -> %v", first.HitRate, last.HitRate)
	}
}

func TestParamsConfigScales(t *testing.T) {
	small := Params{Scale: "small"}.Config()
	medium := Params{Scale: "medium"}.Config()
	paper := Params{Scale: "paper"}.Config()
	if !(small.Agents < medium.Agents && medium.Agents < paper.Agents) {
		t.Fatalf("scales not ordered: %d %d %d", small.Agents, medium.Agents, paper.Agents)
	}
	if paper.Agents != 9100 || paper.Products != 9953 {
		t.Fatalf("paper scale = %d/%d, want 9100/9953", paper.Agents, paper.Products)
	}
	seeded := Params{Scale: "small", Seed: 42}.Config()
	if seeded.Seed != 42 {
		t.Fatal("seed not applied")
	}
}
