package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swrec/internal/cf"
	"swrec/internal/datagen"
	"swrec/internal/model"
)

// E5Row is one ratings-per-user point of the overlap experiment.
type E5Row struct {
	MeanRatings  int
	ProductFrac  float64 // defined-pair fraction, product-vector Pearson
	FlatFrac     float64 // flat category vectors
	TaxonomyFrac float64 // Eq. 3 taxonomy profiles
}

// E5Result is the sweep.
type E5Result struct {
	Rows []E5Row
}

// E5 quantifies the §2 "low profile overlap" problem and the §3.3 remedy:
// the fraction of agent pairs with a *defined* Pearson similarity, as a
// function of rating-history length, for the three profile
// representations. Taxonomy profiles make similarity computable for pairs
// "which have not even rated one single product in common".
func E5(w io.Writer, p Params) (E5Result, error) {
	section(w, "E5", "profile overlap: defined similarity pairs vs history length (§2, §3.3)")
	var res E5Result
	t := newTable(w, "mean ratings", "product-vector", "flat-category", "taxonomy (Eq. 3)")
	for _, mr := range []int{2, 5, 10, 20, 50} {
		cfg := p.Config()
		cfg.MeanRatings = mr
		comm, _ := datagen.Generate(cfg)

		// Sample agents to keep the pairwise scan bounded.
		rng := rand.New(rand.NewSource(cfg.Seed + 11))
		ids := append([]model.AgentID(nil), comm.Agents()...)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if len(ids) > 60 {
			ids = ids[:60]
		}

		row := E5Row{MeanRatings: mr}
		for _, setup := range []struct {
			repr cf.Representation
			dst  *float64
		}{
			{cf.Product, &row.ProductFrac},
			{cf.FlatCategory, &row.FlatFrac},
			{cf.Taxonomy, &row.TaxonomyFrac},
		} {
			f, err := cf.New(comm, cf.Options{Measure: cf.Pearson, Representation: setup.repr})
			if err != nil {
				return res, err
			}
			*setup.dst = f.DefinedPairFraction(ids)
		}
		res.Rows = append(res.Rows, row)
		t.row(mr, pct(row.ProductFrac), pct(row.FlatFrac), pct(row.TaxonomyFrac))
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: taxonomy profiles reach near-total overlap at history")
	fmt.Fprintln(w, "lengths where product vectors leave most pairs incomparable.")
	return res, nil
}
