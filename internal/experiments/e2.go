package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swrec/internal/cf"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/trust"
)

// E2Row is one fidelity point of the trust↔similarity correlation sweep.
type E2Row struct {
	Fidelity         float64
	TrustedMean      float64 // mean similarity of directly trusting pairs
	NeighborhoodMean float64 // mean similarity within Appleseed neighborhoods
	RandomMean       float64 // mean similarity of random pairs
	Gap              float64 // TrustedMean - RandomMean
}

// E2Result is the full sweep.
type E2Result struct {
	Rows []E2Row
	// GapAtHighFidelity is the gap of the last (highest-fidelity) row —
	// the headline number that must be positive for the paper's argument.
	GapAtHighFidelity float64
}

// E2 validates the §3.2 claim that "trust and interest profiles tend to
// correlate" [5]: for increasing cluster fidelity, the mean taxonomy-
// profile similarity of (a) directly trusting pairs and (b) Appleseed
// trust neighborhoods is compared against random pairs.
func E2(w io.Writer, p Params) (E2Result, error) {
	section(w, "E2", "trust <-> profile similarity correlation (claim of [5], §3.2)")
	fidelities := []float64{0.0, 0.25, 0.5, 0.75, 0.95}
	var res E2Result
	t := newTable(w, "fidelity", "sim(trusted)", "sim(appleseed-nbhd)", "sim(random)", "gap")
	for _, fid := range fidelities {
		cfg := p.Config()
		cfg.ClusterFidelity = fid
		comm, _ := datagen.Generate(cfg)
		f, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
		if err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		gap := eval.TrustVsRandomSimilarity(comm, f, 400, rng)

		// Appleseed-neighborhood similarity: for sampled sources, the
		// mean similarity over the top-20 neighborhood members.
		net := trust.FromCommunity(comm)
		agents := comm.Agents()
		var nbSum float64
		var nbN int
		for i := 0; i < 25 && i < len(agents); i++ {
			src := agents[rng.Intn(len(agents))]
			nb, err := trust.Appleseed(net, src, trust.AppleseedOptions{MaxNodes: 200})
			if err != nil {
				return res, err
			}
			for _, r := range nb.Top(20) {
				if s, ok := f.Similarity(src, r.Agent); ok {
					nbSum += s
					nbN++
				}
			}
		}
		nbMean := 0.0
		if nbN > 0 {
			nbMean = nbSum / float64(nbN)
		}

		row := E2Row{
			Fidelity:         fid,
			TrustedMean:      gap.TrustedMean,
			NeighborhoodMean: nbMean,
			RandomMean:       gap.RandomMean,
			Gap:              gap.Gap(),
		}
		res.Rows = append(res.Rows, row)
		t.row(fmt.Sprintf("%.2f", fid), f3(row.TrustedMean), f3(row.NeighborhoodMean),
			f3(row.RandomMean), f3(row.Gap))
	}
	t.flush()
	res.GapAtHighFidelity = res.Rows[len(res.Rows)-1].Gap
	fmt.Fprintf(w, "expected shape: gap grows with fidelity; at 0.95 the gap is %s\n",
		f3(res.GapAtHighFidelity))
	return res, nil
}
