package experiments

import (
	"fmt"
	"io"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/model"
)

// E4Row is one attack size point.
type E4Row struct {
	Sybils         int
	PureCFExposed  bool // pushed product in pure-CF top-N
	PureCFRank     int
	HybridExposed  bool // pushed product in trust-filtered top-N
	HybridRank     int
	SybilsInPureCF int // sybils among pure CF's top-k peers
	SybilsInHybrid int // sybils among hybrid's ranked peers
}

// E4Result is the attack sweep.
type E4Result struct {
	Rows []E4Row
	// PureCFEverExposed / HybridEverExposed summarize the headline: pure
	// CF falls for the attack, the trust-filtered pipeline does not.
	PureCFEverExposed bool
	HybridEverExposed bool
}

// E4 reproduces the §3.2 manipulation argument: "malicious agents a_j can
// accomplish high similarity with a_i by simply copying its profile"; the
// trust neighborhood makes the recommender "less vulnerable to others"
// (Marsh [8]). Sybils cloning the victim's profile push one product; pure
// CF ranks them as top peers and recommends the pushed product, while the
// Appleseed-filtered hybrid never sees them (no trust path).
func E4(w io.Writer, p Params) (E4Result, error) {
	section(w, "E4", "manipulation resistance: profile-cloning sybil attack (§3.2)")
	const topN = 10
	var res E4Result
	t := newTable(w, "sybils", "pureCF pushed@rank", "hybrid pushed@rank",
		"sybils in pureCF top-25 peers", "sybils in hybrid peers")
	for _, k := range []int{1, 5, 10, 25, 50} {
		cfg := p.Config()
		comm, _ := datagen.Generate(cfg)
		victim := pickRatedAgent(comm)
		push := model.ProductID("urn:isbn:attack-payload")
		sybils := datagen.InjectSybils(comm, victim, k, push)
		sybilSet := map[model.AgentID]bool{}
		for _, s := range sybils {
			sybilSet[s] = true
		}

		pure, err := core.New(comm, core.Options{
			Metric:   core.NoTrust,
			AlphaSet: true, Alpha: 0,
			MaxNeighbors: 25,
			CF:           cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
		if err != nil {
			return res, err
		}
		hybrid, err := core.New(comm, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
		if err != nil {
			return res, err
		}

		pureRecs, err := pure.Recommend(victim, topN)
		if err != nil {
			return res, err
		}
		hybridRecs, err := hybrid.Recommend(victim, topN)
		if err != nil {
			return res, err
		}
		pureExp := eval.Exposure(pureRecs, push)
		hybridExp := eval.Exposure(hybridRecs, push)

		purePeers, err := pure.RankedPeers(victim)
		if err != nil {
			return res, err
		}
		hybridPeers, err := hybrid.RankedPeers(victim)
		if err != nil {
			return res, err
		}
		row := E4Row{
			Sybils:        k,
			PureCFExposed: pureExp.Recommended, PureCFRank: pureExp.Rank,
			HybridExposed: hybridExp.Recommended, HybridRank: hybridExp.Rank,
		}
		for _, pr := range purePeers {
			if sybilSet[pr.Agent] {
				row.SybilsInPureCF++
			}
		}
		for _, pr := range hybridPeers {
			if sybilSet[pr.Agent] {
				row.SybilsInHybrid++
			}
		}
		res.Rows = append(res.Rows, row)
		res.PureCFEverExposed = res.PureCFEverExposed || row.PureCFExposed
		res.HybridEverExposed = res.HybridEverExposed || row.HybridExposed
		t.row(k, exposureCell(pureExp), exposureCell(hybridExp),
			row.SybilsInPureCF, row.SybilsInHybrid)
	}
	t.flush()
	fmt.Fprintf(w, "expected shape: pure CF recommends the pushed product (exposed=%v);\n",
		res.PureCFEverExposed)
	fmt.Fprintf(w, "the trust-filtered hybrid never does (exposed=%v).\n", res.HybridEverExposed)
	return res, nil
}

// pickRatedAgent returns the first agent with ≥3 positive ratings (falls
// back to the first agent).
func pickRatedAgent(comm *model.Community) model.AgentID {
	for _, id := range comm.Agents() {
		n := 0
		for _, v := range comm.Agent(id).Ratings {
			if v > 0 {
				n++
			}
		}
		if n >= 3 {
			return id
		}
	}
	return comm.Agents()[0]
}

func exposureCell(e eval.AttackExposure) string {
	if !e.Recommended {
		return "no"
	}
	return fmt.Sprintf("yes@%d", e.Rank)
}
