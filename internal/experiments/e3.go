package experiments

import (
	"fmt"
	"io"

	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/trust"
)

// E3Row is one convergence measurement of the Appleseed metric.
type E3Row struct {
	Spreading  float64
	Threshold  float64
	Iterations int
	Neighbors  int
	RankMass   float64 // Σ ranks ≤ injection
	Explored   int
}

// E3Result is the parameter sweep.
type E3Result struct {
	Rows []E3Row
	// Converged reports whether every run stopped before the iteration
	// cap.
	Converged bool
}

// E3 reproduces the Appleseed behavior the paper imports from [12]:
// convergence of spreading activation under decreasing accuracy
// thresholds, for two spreading factors, plus the rank-mass growth per
// iteration (rank mass is monotone and bounded by the injected energy).
func E3(w io.Writer, p Params) (E3Result, error) {
	section(w, "E3", "Appleseed convergence and parameter sweep ([12], §3.2)")
	cfg := p.Config()
	comm, _ := datagen.Generate(cfg)
	net := trust.FromCommunity(comm)

	// Choose the best-connected agent as source so the sweep exercises a
	// real neighborhood.
	var src model.AgentID
	best := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > best {
			best = d
			src = id
		}
	}
	fmt.Fprintf(w, "source agent: %s (out-degree %d), injection 200\n", src, best)

	res := E3Result{Converged: true}
	const maxIter = 400
	t := newTable(w, "d", "Tc", "iterations", "neighbors", "rank mass", "explored")
	for _, d := range []float64{0.65, 0.85} {
		for _, tc := range []float64{1.0, 0.1, 0.01, 0.001} {
			nb, err := trust.Appleseed(net, src, trust.AppleseedOptions{
				SpreadingFactor: d,
				Threshold:       tc,
				MaxIterations:   maxIter,
				MaxNodes:        800,
			})
			if err != nil {
				return res, err
			}
			var mass float64
			for _, r := range nb.Ranks {
				mass += r.Trust
			}
			row := E3Row{
				Spreading:  d,
				Threshold:  tc,
				Iterations: nb.Iterations,
				Neighbors:  len(nb.Ranks),
				RankMass:   mass,
				Explored:   nb.Explored,
			}
			if nb.Iterations >= maxIter {
				res.Converged = false
			}
			res.Rows = append(res.Rows, row)
			t.row(fmt.Sprintf("%.2f", d), fmt.Sprintf("%.3f", tc),
				row.Iterations, row.Neighbors, f3(row.RankMass), row.Explored)
		}
	}
	t.flush()

	// Rank-mass growth per iteration (d = 0.85): spreading activation
	// accumulates rank monotonically toward its fixpoint.
	fmt.Fprintln(w, "\nrank mass vs iteration (d=0.85):")
	t2 := newTable(w, "iterations", "rank mass")
	for _, iters := range []int{1, 2, 4, 8, 16, 32, 64} {
		nb, err := trust.Appleseed(net, src, trust.AppleseedOptions{
			Threshold:     1e-12, // effectively never converge early
			MaxIterations: iters,
			MaxNodes:      800,
		})
		if err != nil {
			return res, err
		}
		var mass float64
		for _, r := range nb.Ranks {
			mass += r.Trust
		}
		t2.row(iters, f3(mass))
	}
	t2.flush()
	fmt.Fprintln(w, "expected shape: smaller Tc -> more iterations and more rank mass;")
	fmt.Fprintln(w, "higher d spreads deeper (more neighbors); mass bounded by injection 200.")
	return res, nil
}
