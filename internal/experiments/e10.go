package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/model"
	"swrec/internal/stereotype"
)

// E10Result measures automated stereotype generation (§6 future work).
type E10Result struct {
	// PuritySweep maps K to ground-truth purity.
	PuritySweep []struct {
		K        int
		Purity   float64
		Cohesion float64
	}
	// ChanceLevel is 1/trueClusters, the purity of random assignment.
	ChanceLevel float64
	// Acceleration compares CF restricted to the active agent's
	// stereotype against full-scan CF.
	FullHitRate   float64
	StereoHitRate float64
	FullCand      int // candidates examined by full scan
	StereoCand    int // mean candidates with stereotype restriction
}

// E10 implements the §6 direction "automated stereotype generation and
// efficient behavior modelling": spherical k-means over taxonomy
// profiles. Measured: (a) how well learned stereotypes recover the
// ground-truth interest clusters (purity vs K), and (b) whether
// restricting collaborative filtering to the active agent's stereotype
// retains accuracy while cutting the candidate set — the latency remedy
// category-based filtering [14] targets, rebuilt on taxonomy profiles.
func E10(w io.Writer, p Params) (E10Result, error) {
	section(w, "E10", "automated stereotype generation & behavior modelling (§6)")
	cfg := p.Config()
	cfg.ClusterFidelity = 0.9
	comm, meta := datagen.Generate(cfg)
	f, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
	if err != nil {
		return E10Result{}, err
	}

	var res E10Result
	res.ChanceLevel = 1.0 / float64(cfg.Clusters)
	t := newTable(w, "K", "purity", "cohesion")
	for _, k := range []int{2, cfg.Clusters / 2, cfg.Clusters, cfg.Clusters * 2} {
		if k < 1 {
			continue
		}
		m, err := stereotype.Learn(comm.Agents(), f.ProfileOf, stereotype.Options{K: k, Seed: cfg.Seed})
		if err != nil {
			return res, err
		}
		entry := struct {
			K        int
			Purity   float64
			Cohesion float64
		}{k, m.Purity(meta.AgentCluster), m.Cohesion}
		res.PuritySweep = append(res.PuritySweep, entry)
		t.row(k, f3(entry.Purity), f3(entry.Cohesion))
	}
	t.flush()
	fmt.Fprintf(w, "ground truth: %d interest clusters; chance purity = %s\n\n",
		cfg.Clusters, f3(res.ChanceLevel))

	// Acceleration: leave-one-out with stereotype-restricted candidates.
	m, err := stereotype.Learn(comm.Agents(), f.ProfileOf, stereotype.Options{K: cfg.Clusters, Seed: cfg.Seed})
	if err != nil {
		return res, err
	}
	trials := 50
	if p.Scale == "paper" {
		trials = 150
	}
	taxCF := cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}

	fullFactory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{Metric: core.NoTrust, AlphaSet: true, CF: taxCF})
	}
	stereoFactory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			AlphaSet: true,
			CF:       taxCF,
			Candidates: func(active model.AgentID) []model.AgentID {
				k, ok := m.Assignment[active]
				if !ok {
					return nil
				}
				return m.Members(k)
			},
		})
	}
	full, err := eval.LeaveOneOut(comm, fullFactory, 20, trials, rand.New(rand.NewSource(cfg.Seed+31)))
	if err != nil {
		return res, err
	}
	stereo, err := eval.LeaveOneOut(comm, stereoFactory, 20, trials, rand.New(rand.NewSource(cfg.Seed+31)))
	if err != nil {
		return res, err
	}
	res.FullHitRate, res.StereoHitRate = full.HitRate, stereo.HitRate
	res.FullCand = comm.NumAgents() - 1
	sizeSum := 0
	for _, s := range m.Sizes {
		sizeSum += s * s // expected own-stereotype size, size-weighted
	}
	res.StereoCand = sizeSum / comm.NumAgents()

	t2 := newTable(w, "pipeline", "hit rate", "candidates/query")
	t2.row("full-scan CF", pct(res.FullHitRate), res.FullCand)
	t2.row("stereotype-restricted CF", pct(res.StereoHitRate), res.StereoCand)
	t2.flush()
	fmt.Fprintln(w, "expected shape: purity peaks near the true cluster count, well above")
	fmt.Fprintln(w, "chance; stereotype restriction keeps most accuracy at a fraction of the")
	fmt.Fprintln(w, "candidate set (efficient behavior modelling).")
	return res, nil
}
