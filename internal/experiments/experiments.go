// Package experiments regenerates every experiment table defined in
// DESIGN.md's experiment index (E1–E9). The paper itself — a short
// framework paper — prints no numbered result tables; each experiment
// here validates one of its quantitative claims (Example 1's numbers, the
// §3.2 correlation and manipulation arguments, the §2 overlap and
// scalability arguments, the §3.4 rank synthesization alternatives, the
// §6 taxonomy-shape question, and the §4.1 infrastructure statistics).
//
// Every experiment takes an io.Writer for its human-readable table and
// returns a typed result the benchmarks and tests assert on. All runs are
// deterministic given Params.Seed.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"swrec/internal/datagen"
)

// Params control experiment scale.
type Params struct {
	// Seed drives all pseudo-randomness.
	Seed int64
	// Scale selects the dataset size: "small" (fast; CI/tests), "medium",
	// or "paper" (the §4.1 corpus dimensions: 9,100 agents, 9,953 books,
	// >20k topics).
	Scale string
}

// Config resolves the scale name to a generator configuration.
func (p Params) Config() datagen.Config {
	var cfg datagen.Config
	switch p.Scale {
	case "paper":
		cfg = datagen.PaperScale()
	case "medium":
		cfg = datagen.PaperScale()
		cfg.Agents = 2000
		cfg.Products = 2000
		cfg.Taxonomy = datagen.TaxonomyConfig{Depth: 6, Branching: 4, Root: "Books"}
	default:
		cfg = datagen.SmallScale()
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return cfg
}

// table wraps a tabwriter for aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, header ...interface{}) *table {
	t := &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	t.row(header...)
	return t
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// section prints an experiment banner.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", id, title)
}

// f3 formats a float with 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
