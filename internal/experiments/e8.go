package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swrec/internal/cf"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
)

// E8Row is one taxonomy-shape measurement.
type E8Row struct {
	Shape     string
	Topics    int
	MaxDepth  int
	IntraMean float64 // mean similarity of same-cluster pairs
	InterMean float64 // mean similarity of cross-cluster pairs
	Gap       float64 // IntraMean - InterMean
	Contrast  float64 // IntraMean / InterMean: discrimination power
	Mode      string  // propagation mode (for the Eq. 3 ablation)
}

// E8Result is the shape × propagation-mode comparison.
type E8Result struct {
	Rows []E8Row
}

// E8 explores the §6 future-work question — "the impact that taxonomy
// structure may have upon profile generation and similarity computation"
// — by generating the same community against a deep book-like taxonomy
// and a broad, shallow DVD-like taxonomy, and measuring how well taxonomy
// profiles discriminate same-interest (intra-cluster) from
// different-interest (inter-cluster) agent pairs. The Eq. 3 vs uniform
// propagation ablation (DESIGN.md §5) rides along.
func E8(w io.Writer, p Params) (E8Result, error) {
	section(w, "E8", "taxonomy shape impact: deep (books) vs broad (DVD) (§6)")
	// The comparison is controlled: both shapes have the same number of
	// top-level subtrees (one per interest cluster) and the same number
	// of leaves per subtree, so leaf-collision density is identical and
	// only the intermediate hierarchy — where Eq. 3 accumulates shared
	// super-topic mass — differs.
	shapes := []struct {
		name string
		tc   datagen.TaxonomyConfig
	}{
		{"deep (books-like)", datagen.TaxonomyConfig{Levels: []int{6, 6, 6, 6}, Root: "Books"}},
		{"broad (DVD-like)", datagen.TaxonomyConfig{Levels: []int{6, 216}, Root: "DVD"}},
	}
	clusters := 6
	if p.Scale == "paper" {
		// 4 top subtrees, 4096 leaves each; deep nests 6 levels below the
		// anchors, broad flattens them under one level.
		shapes[0].tc = datagen.TaxonomyConfig{Levels: []int{4, 4, 4, 4, 4, 4, 4}, Root: "Books"}
		shapes[1].tc = datagen.TaxonomyConfig{Levels: []int{4, 4096}, Root: "DVD"}
		clusters = 4
	}

	var res E8Result
	t := newTable(w, "shape", "topics", "depth", "mode", "sim(intra)", "sim(inter)", "gap", "contrast")
	for _, sh := range shapes {
		cfg := p.Config()
		cfg.Taxonomy = sh.tc
		cfg.Clusters = clusters
		comm, meta := datagen.Generate(cfg)
		stats := comm.Taxonomy().ComputeStats()

		for _, mode := range []profile.Mode{profile.Eq3, profile.Uniform} {
			var f simFilter
			if mode == profile.Eq3 {
				cff, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
				if err != nil {
					return res, err
				}
				f = cff
			} else {
				// The cf package exposes Eq3 and Flat; build the uniform
				// ablation by hand.
				f = newModeFilter(comm, mode)
			}
			intra, inter := clusterSimilarity(comm, meta, f, cfg.Seed+13)
			row := E8Row{
				Shape:     sh.name,
				Topics:    stats.Topics,
				MaxDepth:  stats.MaxDepth,
				IntraMean: intra,
				InterMean: inter,
				Gap:       intra - inter,
				Mode:      mode.String(),
			}
			if inter > 0 {
				row.Contrast = intra / inter
			}
			res.Rows = append(res.Rows, row)
			t.row(row.Shape, row.Topics, row.MaxDepth, row.Mode,
				f3(row.IntraMean), f3(row.InterMean), f3(row.Gap), f3(row.Contrast))
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: the deeper taxonomy yields the larger intra/inter gap;")
	fmt.Fprintln(w, "Eq. 3 wins on contrast (uniform propagation inflates ALL similarities,")
	fmt.Fprintln(w, "blurring same-interest and different-interest pairs together).")
	return res, nil
}

// simFilter is the minimal similarity surface E8 needs; *cf.Filter
// satisfies it, and modeFilter provides the non-default propagation-mode
// ablation.
type simFilter interface {
	Similarity(a, b model.AgentID) (float64, bool)
}

// modeFilter computes cosine similarity over profiles built with an
// arbitrary propagation mode.
type modeFilter struct {
	gen  *profile.Generator
	comm *model.Community //nolint:snapshotpin -- experiment-owned community; no serving engine (and no Swap) exists in the harness
	memo map[model.AgentID]sparse.Vector
}

func newModeFilter(comm *model.Community, mode profile.Mode) *modeFilter {
	g := profile.New(comm.Taxonomy())
	g.Mode = mode
	return &modeFilter{gen: g, comm: comm, memo: map[model.AgentID]sparse.Vector{}}
}

func (m *modeFilter) Similarity(a, b model.AgentID) (float64, bool) {
	return sparse.Cosine(m.profileOf(a), m.profileOf(b))
}

func (m *modeFilter) profileOf(id model.AgentID) sparse.Vector {
	if v, ok := m.memo[id]; ok {
		return v
	}
	v := m.gen.Profile(m.comm.Agent(id), m.comm)
	m.memo[id] = v
	return v
}

// clusterSimilarity samples same-cluster and cross-cluster agent pairs and
// returns their mean similarities.
func clusterSimilarity(comm *model.Community, meta *datagen.Meta, f simFilter, seed int64) (intra, inter float64) {
	rng := rand.New(rand.NewSource(seed))
	agents := comm.Agents()
	var intraVals, interVals []float64
	for len(intraVals) < 150 || len(interVals) < 150 {
		a := agents[rng.Intn(len(agents))]
		b := agents[rng.Intn(len(agents))]
		if a == b {
			continue
		}
		s, ok := f.Similarity(a, b)
		if !ok {
			continue
		}
		if meta.AgentCluster[a] == meta.AgentCluster[b] {
			if len(intraVals) < 150 {
				intraVals = append(intraVals, s)
			}
		} else if len(interVals) < 150 {
			interVals = append(interVals, s)
		}
	}
	intra, _ = eval.MeanStd(intraVals)
	inter, _ = eval.MeanStd(interVals)
	return intra, inter
}
