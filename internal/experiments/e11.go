package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/model"
)

// E11Row is one diversification-factor measurement.
type E11Row struct {
	Theta    float64
	HitRate  float64 // held-out item in the diversified top-10
	MeanILS  float64 // mean intra-list similarity of the served lists
	Coverage float64 // fraction of the catalog ever recommended
}

// E11Result is the θ sweep.
type E11Result struct {
	Rows   []E11Row
	Trials int
}

// E11 measures taxonomy-driven topic diversification — the direct
// continuation of the paper's taxonomy program (Ziegler et al., WWW
// 2005): candidates from the hybrid pipeline are re-ranked with
// diversification factor θ, trading a little accuracy for lower
// intra-list similarity and broader catalog coverage.
func E11(w io.Writer, p Params) (E11Result, error) {
	section(w, "E11", "topic diversification: accuracy vs diversity vs coverage")
	cfg := p.Config()
	cfg.ClusterFidelity = 0.9
	comm, _ := datagen.Generate(cfg)
	const topN, candidates = 10, 50
	trials := 60
	if p.Scale == "paper" {
		trials = 150
	}

	// Sample the evaluation agents once so every θ sees the same trials.
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	agents := append([]model.AgentID(nil), comm.Agents()...)
	rng.Shuffle(len(agents), func(i, j int) { agents[i], agents[j] = agents[j], agents[i] })

	type trial struct {
		agent model.AgentID
		held  model.ProductID
	}
	var trialSet []trial
	for _, id := range agents {
		if len(trialSet) >= trials {
			break
		}
		a := comm.Agent(id)
		var liked []model.ProductID
		for prod, v := range a.Ratings {
			if v > 0 {
				liked = append(liked, prod)
			}
		}
		if len(liked) < 2 {
			continue
		}
		sort.Slice(liked, func(i, j int) bool { return liked[i] < liked[j] })
		trialSet = append(trialSet, trial{agent: id, held: liked[rng.Intn(len(liked))]})
	}
	res := E11Result{Trials: len(trialSet)}
	if len(trialSet) == 0 {
		return res, fmt.Errorf("e11: no evaluable agents")
	}

	t := newTable(w, "theta", "hit rate", "mean ILS", "catalog coverage")
	for _, theta := range []float64{0, 0.3, 0.6, 0.9} {
		hits := 0
		var ilsSum float64
		served := map[model.ProductID]bool{}
		for _, tr := range trialSet {
			a := comm.Agent(tr.agent)
			heldVal := a.Ratings[tr.held]
			delete(a.Ratings, tr.held)
			a.MarkDirty()
			rec, err := core.New(comm, core.Options{
				CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
			})
			if err != nil {
				a.Ratings[tr.held] = heldVal
				a.MarkDirty()
				return res, err
			}
			cands, err := rec.Recommend(tr.agent, candidates)
			if err != nil {
				a.Ratings[tr.held] = heldVal
				a.MarkDirty()
				return res, err
			}
			list := rec.Diversify(cands, topN, theta)
			a.Ratings[tr.held] = heldVal
			a.MarkDirty()

			for _, rc := range list {
				served[rc.Product] = true
				if rc.Product == tr.held {
					hits++
				}
			}
			ilsSum += rec.IntraListSimilarity(list)
		}
		row := E11Row{
			Theta:    theta,
			HitRate:  float64(hits) / float64(len(trialSet)),
			MeanILS:  ilsSum / float64(len(trialSet)),
			Coverage: float64(len(served)) / float64(comm.NumProducts()),
		}
		res.Rows = append(res.Rows, row)
		t.row(fmt.Sprintf("%.1f", theta), pct(row.HitRate), f3(row.MeanILS), pct(row.Coverage))
	}
	t.flush()
	fmt.Fprintln(w, "expected shape (WWW'05): intra-list similarity falls monotonically with")
	fmt.Fprintln(w, "theta; moderate theta widens catalog coverage at a gentle accuracy cost;")
	fmt.Fprintln(w, "extreme theta re-focuses on outlier items (the reason WWW'05 caps Θ≈0.4).")
	return res, nil
}
