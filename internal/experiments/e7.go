package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/model"
)

// E7Row is one strategy's leave-one-out accuracy.
type E7Row struct {
	Strategy string
	Trials   int
	HitRate  float64
	MeanRank float64
}

// E7Result is the strategy comparison plus the α sweep and the
// precision/recall curve of the default hybrid.
type E7Result struct {
	Strategies []E7Row
	AlphaSweep []E7Row // strategy column holds the α value
	PR         []eval.PRPoint
	// RandomBaseline is the analytic expected hit rate of random top-N
	// picks, for reference.
	RandomBaseline float64
}

// E7 implements the quantitative analysis the paper announces for §3.4:
// the rank synthesization alternatives compared via leave-one-out top-N
// hit rate — the hybrid blend against pure trust, pure similarity, and a
// random baseline, plus the α sweep.
func E7(w io.Writer, p Params) (E7Result, error) {
	section(w, "E7", "rank synthesization quality: leave-one-out hit rate (§3.4)")
	const topN = 20
	cfg := p.Config()
	comm, _ := datagen.Generate(cfg)
	trials := 60
	if p.Scale == "paper" {
		trials = 200
	}

	var res E7Result
	res.RandomBaseline = float64(topN) / float64(cfg.Products)

	run := func(label string, opt core.Options, seed int64) (E7Row, error) {
		factory := func(c *model.Community) (*core.Recommender, error) {
			return core.New(c, opt)
		}
		r, err := eval.LeaveOneOut(comm, factory, topN, trials, rand.New(rand.NewSource(seed)))
		if err != nil {
			return E7Row{}, fmt.Errorf("e7 %s: %w", label, err)
		}
		return E7Row{Strategy: label, Trials: r.Trials, HitRate: r.HitRate, MeanRank: r.MeanRank}, nil
	}
	taxCF := cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}

	strategies := []struct {
		label string
		opt   core.Options
	}{
		{"hybrid a=0.5 (appleseed+cf)", core.Options{CF: taxCF}},
		{"pure trust a=1", core.Options{Alpha: 1, CF: taxCF}},
		{"pure CF (no trust filter)", core.Options{Metric: core.NoTrust, AlphaSet: true, CF: taxCF}},
		{"product-vector CF", core.Options{Metric: core.NoTrust, AlphaSet: true,
			CF: cf.Options{Measure: cf.Pearson, Representation: cf.Product}}},
		{"hybrid + content boost b=1", core.Options{CF: taxCF, ContentBoost: 1}},
		{"hybrid, borda merge", core.Options{CF: taxCF, Merge: core.BordaCount}},
	}
	t := newTable(w, "strategy", "trials", "hit rate", "mean hit rank")
	for _, s := range strategies {
		row, err := run(s.label, s.opt, cfg.Seed+101)
		if err != nil {
			return res, err
		}
		res.Strategies = append(res.Strategies, row)
		t.row(row.Strategy, row.Trials, pct(row.HitRate), f3(row.MeanRank))
	}
	t.row("random baseline", "-", pct(res.RandomBaseline), "-")
	t.flush()

	fmt.Fprintln(w, "\nblend sweep (hybrid, Appleseed + taxonomy-cosine):")
	t2 := newTable(w, "alpha", "hit rate")
	for _, a := range []float64{0, 0.25, 0.5, 0.75, 1} {
		row, err := run(fmt.Sprintf("%.2f", a),
			core.Options{Alpha: a, AlphaSet: true, CF: taxCF}, cfg.Seed+101)
		if err != nil {
			return res, err
		}
		res.AlphaSweep = append(res.AlphaSweep, row)
		t2.row(row.Strategy, pct(row.HitRate))
	}
	t2.flush()

	// Precision/recall curve of the default hybrid (multi-item holdout).
	fmt.Fprintln(w, "\nprecision/recall at N (hybrid, half of liked items withheld):")
	prFactory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{CF: taxCF})
	}
	pts, err := eval.PrecisionRecall(comm, prFactory, []int{5, 10, 20, 50},
		trials, rand.New(rand.NewSource(cfg.Seed+202)))
	if err != nil {
		return res, err
	}
	res.PR = pts
	t3 := newTable(w, "N", "precision", "recall", "F1")
	for _, pt := range pts {
		t3.row(pt.N, pct(pt.Precision), pct(pt.Recall), f3(pt.F1))
	}
	t3.flush()
	fmt.Fprintln(w, "expected shape: every strategy beats random; the hybrid is at least as")
	fmt.Fprintln(w, "good as the weaker pure strategy; alpha extremes match the pure rows.")
	return res, nil
}
