package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/crawler"
	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/semweb"
)

// E9Result summarizes the end-to-end decentralized pipeline run.
type E9Result struct {
	PublishedStats model.Stats
	CrawledStats   model.Stats
	CrawlStats     crawler.Stats
	DocsPerSecond  float64
	// ReachableMatch reports whether the crawl materialized every agent
	// reachable from the seed by positive trust edges.
	ReachableMatch bool
	// Recommendations produced from crawled data for the seed agent.
	Recommendations int
}

// E9 exercises the full §4 deployment loop at the §4.1 corpus scale (or a
// reduced scale): a community is published as FOAF/RDF homepages plus
// global taxonomy and catalog documents on a (virtual) web; a crawler
// materializes it back ("we mined rife information ... about
// approximately 9,100 users ... and categorization data about 9,953
// books"); and the recommender runs on the crawled view.
func E9(w io.Writer, p Params) (E9Result, error) {
	section(w, "E9", "decentralized pipeline: publish -> crawl -> recommend (§4.1)")
	cfg := p.Config()
	comm, _ := datagen.Generate(cfg)
	var res E9Result
	res.PublishedStats = comm.ComputeStats()

	site := semweb.NewSite(cfg.BaseHost, comm)
	var in semweb.Internet
	in.RegisterSite(site)

	// Seed with the best-connected agent to maximize the reachable set.
	var seed model.AgentID
	best := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > best {
			best = d
			seed = id
		}
	}

	cr := &crawler.Crawler{Client: in.Client(), Concurrency: 16}
	start := time.Now() //nolint:detrand -- crawl wall time is reported as context, not replayed state
	out, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{seed})
	if err != nil {
		return res, err
	}
	elapsed := time.Since(start) //nolint:detrand -- crawl wall time is reported as context, not replayed state
	if err := out.Community.Validate(); err != nil {
		return res, fmt.Errorf("e9: crawled view violates model invariants: %w", err)
	}
	res.CrawledStats = out.Community.ComputeStats()
	res.CrawlStats = out.Stats
	docs := out.Stats.Fetched + out.Stats.FromCache
	if elapsed > 0 {
		res.DocsPerSecond = float64(docs) / elapsed.Seconds()
	}

	// Ground truth: agents reachable from the seed via positive trust.
	reachable := map[model.AgentID]bool{seed: true}
	frontier := []model.AgentID{seed}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, st := range comm.Agent(cur).TrustedPeers() {
			if st.Value > 0 && !reachable[st.Dst] {
				reachable[st.Dst] = true
				frontier = append(frontier, st.Dst)
			}
		}
	}
	res.ReachableMatch = true
	for id := range reachable {
		a := out.Community.Agent(id)
		if a == nil || len(a.Ratings) != len(comm.Agent(id).Ratings) {
			res.ReachableMatch = false
			break
		}
	}

	rec, err := core.New(out.Community, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		return res, err
	}
	recs, err := rec.Recommend(seed, 10)
	if err != nil {
		return res, err
	}
	res.Recommendations = len(recs)

	t := newTable(w, "", "published", "crawled")
	t.row("agents", res.PublishedStats.Agents, res.CrawledStats.Agents)
	t.row("products", res.PublishedStats.Products, res.CrawledStats.Products)
	t.row("trust edges", res.PublishedStats.TrustEdges, res.CrawledStats.TrustEdges)
	t.row("ratings", res.PublishedStats.Ratings, res.CrawledStats.Ratings)
	t.flush()
	fmt.Fprintf(w, "crawl: %d fetched, %d failed, %.0f docs/s; reachable set fully materialized: %v\n",
		res.CrawlStats.Fetched, res.CrawlStats.Failed, res.DocsPerSecond, res.ReachableMatch)
	fmt.Fprintf(w, "recommendations for seed from crawled data: %d\n", res.Recommendations)
	fmt.Fprintln(w, "note: crawled counts are bounded by trust-reachability from the seed —")
	fmt.Fprintln(w, "agents nobody links to stay invisible, exactly as on the real Semantic Web.")
	return res, nil
}
