package experiments

import (
	"fmt"
	"io"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/trust"
)

// E6Row is one community-size point of the scalability experiment.
type E6Row struct {
	Agents          int
	FullScanMs      float64 // pure CF over all agents
	FullCandidates  int
	TrustMs         float64 // Appleseed-prefiltered pipeline
	TrustCandidates int
}

// E6Result is the sweep.
type E6Result struct {
	Rows []E6Row
}

// E6 validates the §2 scalability argument: "computing similarity
// measures for all these individuals becomes infeasible; scalability can
// only be ensured when restricting latter computations to sufficiently
// narrow neighborhoods". Full-scan CF examines every agent; the
// Appleseed-prefiltered pipeline examines a bounded neighborhood
// regardless of community size.
func E6(w io.Writer, p Params) (E6Result, error) {
	section(w, "E6", "scalability: full-scan CF vs trust-prefiltered neighborhood (§2)")
	sizes := []int{250, 500, 1000, 2000}
	if p.Scale == "paper" {
		sizes = []int{1000, 2500, 5000, 9100}
	}
	var res E6Result
	t := newTable(w, "agents", "full-scan ms", "candidates", "appleseed ms", "candidates")
	for _, n := range sizes {
		cfg := p.Config()
		cfg.Agents = n
		comm, _ := datagen.Generate(cfg)
		// Use the best-connected agent so the trust pipeline has a real
		// neighborhood to prefilter at every community size.
		active := comm.Agents()[0]
		best := -1
		for _, id := range comm.Agents() {
			if d := len(comm.Agent(id).Trust); d > best {
				best = d
				active = id
			}
		}

		full, err := core.New(comm, core.Options{
			Metric:   core.NoTrust,
			AlphaSet: true, Alpha: 0,
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
		if err != nil {
			return res, err
		}
		pre, err := core.New(comm, core.Options{
			Appleseed: trust.AppleseedOptions{MaxNodes: 150},
			CF:        cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
		if err != nil {
			return res, err
		}

		timeOf := func(r *core.Recommender) (float64, int, error) {
			start := time.Now() //nolint:detrand -- wall-clock latency IS the §4 measurement; it annotates the report and never feeds back into seeded state
			peers, err := r.RankedPeers(active)
			if err != nil {
				return 0, 0, err
			}
			if _, err := r.Recommend(active, 10); err != nil {
				return 0, 0, err
			}
			return float64(time.Since(start).Microseconds()) / 1000, len(peers), nil //nolint:detrand -- wall-clock latency IS the §4 measurement
		}
		fullMs, fullN, err := timeOf(full)
		if err != nil {
			return res, err
		}
		trustMs, trustN, err := timeOf(pre)
		if err != nil {
			return res, err
		}
		row := E6Row{Agents: n, FullScanMs: fullMs, FullCandidates: fullN,
			TrustMs: trustMs, TrustCandidates: trustN}
		res.Rows = append(res.Rows, row)
		t.row(n, fmt.Sprintf("%.2f", fullMs), fullN, fmt.Sprintf("%.2f", trustMs), trustN)
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: full-scan candidates (and time) grow linearly with the")
	fmt.Fprintln(w, "community; the trust-prefiltered pipeline stays bounded by MaxNodes.")
	return res, nil
}
