package experiments

import (
	"fmt"
	"io"
	"math"

	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// E1Result carries the Example 1 reproduction: computed topic scores
// against the paper's published values.
type E1Result struct {
	// Scores maps qualified topic names to computed sco values.
	Scores map[string]float64
	// MaxError is the largest absolute deviation from the published
	// numbers.
	MaxError float64
	// PathTotal is the sum over the Algebra path (must equal the
	// descriptor share, 50).
	PathTotal float64
}

// e1Published holds the paper's printed Example 1 values.
var e1Published = []struct {
	topic string
	value float64
}{
	{"Books/Science/Mathematics/Pure/Algebra", 29.087},
	{"Books/Science/Mathematics/Pure", 14.543},
	{"Books/Science/Mathematics", 4.848},
	{"Books/Science", 1.212},
	{"Books", 0.303},
}

// E1 reproduces Figure 1 + Example 1 (§3.3): the Fig. 1 taxonomy
// fragment, the 4-book / 5-descriptor setup with s = 1000, and the Eq. 3
// score propagation along the Algebra path.
func E1(w io.Writer, _ Params) (E1Result, error) {
	section(w, "E1", "Example 1 topic score assignment (Fig. 1 taxonomy)")
	tax := taxonomy.Fig1()
	alg, ok := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	if !ok {
		return E1Result{}, fmt.Errorf("e1: Fig. 1 taxonomy lacks Algebra")
	}

	// Example 1: user mentioned 4 books; Matrix Analysis carries 5 topic
	// descriptors; s = 1000 → the Algebra descriptor's share is
	// 1000/(4·5) = 50.
	const books, descriptors, s = 4, 5, 1000.0
	share := s / (books * descriptors)
	fmt.Fprintf(w, "s = %v, 4 books, 5 descriptors -> descriptor share = %v\n", s, share)

	g := profile.New(tax)
	out := sparse.New(8)
	g.PropagateLeaf(out, alg, share)

	res := E1Result{Scores: make(map[string]float64, len(e1Published))}
	t := newTable(w, "topic", "sco (computed)", "sco (paper)", "abs err")
	for _, p := range e1Published {
		d, ok := tax.Lookup(p.topic)
		if !ok {
			return E1Result{}, fmt.Errorf("e1: missing topic %s", p.topic)
		}
		got := out[int32(d)]
		res.Scores[p.topic] = got
		err := math.Abs(got - p.value)
		if err > res.MaxError {
			res.MaxError = err
		}
		t.row(p.topic, fmt.Sprintf("%.3f", got), fmt.Sprintf("%.3f", p.value), fmt.Sprintf("%.4f", err))
		res.PathTotal += got
	}
	t.flush()
	fmt.Fprintf(w, "path total = %.6f (descriptor share %.0f preserved)\n", res.PathTotal, share)
	fmt.Fprintf(w, "max |computed - paper| = %.4f (paper prints rounded values)\n", res.MaxError)

	// Also run the full end-to-end profile of Example 1's user as a
	// sanity check of the normalization to s.
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	app, _ := tax.Lookup("Books/Science/Mathematics/Applied")
	phy, _ := tax.Lookup("Books/Science/Physics")
	ast, _ := tax.Lookup("Books/Science/Astronomy")
	nat, _ := tax.Lookup("Books/Science/Nature")
	c.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis",
		Topics: []taxonomy.Topic{alg, phy, ast, nat, fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780802713315", Title: "Fermat's Enigma",
		Topics: []taxonomy.Topic{app}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash",
		Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780441569595", Title: "Neuromancer",
		Topics: []taxonomy.Topic{fic}})
	for _, p := range c.Products() {
		if err := c.SetRating("ai", p, 1); err != nil {
			return E1Result{}, err
		}
	}
	prof := g.Profile(c.Agent("ai"), c)
	fmt.Fprintf(w, "full 4-book profile total = %.6f (normalized to s = 1000)\n", prof.Sum())
	return res, nil
}
