// Package cf implements the similarity-based filtering step of the
// paper's pipeline (§3.3): user-to-user similarity over interest profiles,
// applying "common nearest-neighbor techniques, namely Pearson's
// coefficient [6,3] and cosine distance from Information Retrieval",
// where "profile vectors map category score vectors from C instead of
// plain product-rating vectors".
//
// Three profile representations are supported so the experiments can
// contrast them:
//
//   - Taxonomy: Eq. 3 taxonomy profiles (the paper's proposal),
//   - FlatCategory: category vectors without super-topic inference
//     (category-based filtering [14], the criticized baseline),
//   - Product: plain product-rating vectors (classic CF [6], the
//     representation that suffers the "low profile overlap" of §2).
package cf

import (
	"fmt"
	"sort"
	"sync"

	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
)

// Measure selects the similarity coefficient.
type Measure int

const (
	// Pearson is Pearson's correlation coefficient over co-present
	// dimensions (default).
	Pearson Measure = iota
	// Cosine is the cosine similarity from Information Retrieval.
	Cosine
)

// String names the measure for experiment output.
func (m Measure) String() string {
	switch m {
	case Pearson:
		return "pearson"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Representation selects the profile vector space.
type Representation int

const (
	// Taxonomy uses Eq. 3 taxonomy-based profiles (default).
	Taxonomy Representation = iota
	// FlatCategory uses descriptor-only category vectors.
	FlatCategory
	// Product uses plain product-rating vectors.
	Product
)

// String names the representation for experiment output.
func (r Representation) String() string {
	switch r {
	case Taxonomy:
		return "taxonomy"
	case FlatCategory:
		return "flat-category"
	case Product:
		return "product"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// Options configure a Filter.
type Options struct {
	Measure        Measure
	Representation Representation
	// ProfileScore is the normalization constant s; 0 means the profile
	// package default (1000).
	ProfileScore float64
	// WeightByRating forwards to profile.Generator.
	WeightByRating bool
}

// Filter computes and caches interest profiles and pairwise similarities
// over one community. It is safe for concurrent use after construction.
type Filter struct {
	comm *model.Community //nolint:snapshotpin -- owned by the core.Recommender built for one snapshot; never outlives its epoch
	opt  Options
	gen  *profile.Generator

	mu       sync.Mutex
	profiles map[model.AgentID]sparse.Vector
	prodDims map[model.ProductID]int32
}

// New creates a filter over the community. Taxonomy-based representations
// require the community to carry a taxonomy.
func New(comm *model.Community, opt Options) (*Filter, error) {
	f := &Filter{
		comm:     comm,
		opt:      opt,
		profiles: make(map[model.AgentID]sparse.Vector),
		prodDims: make(map[model.ProductID]int32),
	}
	if opt.Representation != Product {
		if comm.Taxonomy() == nil {
			return nil, fmt.Errorf("cf: representation %v requires a taxonomy", opt.Representation)
		}
		g := profile.New(comm.Taxonomy())
		if opt.ProfileScore != 0 {
			g.Score = opt.ProfileScore
		}
		g.WeightByRating = opt.WeightByRating
		if opt.Representation == FlatCategory {
			g.Mode = profile.Flat
		}
		f.gen = g
	}
	return f, nil
}

// Options returns the filter's configuration.
func (f *Filter) Options() Options { return f.opt }

// internProduct assigns a stable dense dimension to a product ID.
// Caller must hold f.mu.
func (f *Filter) internProduct(p model.ProductID) int32 {
	if d, ok := f.prodDims[p]; ok {
		return d
	}
	d := int32(len(f.prodDims))
	f.prodDims[p] = d
	return d
}

// ProfileOf returns (building and caching on first use) the profile vector
// of agent id under the filter's representation. Unknown agents yield an
// empty vector.
func (f *Filter) ProfileOf(id model.AgentID) sparse.Vector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.profiles[id]; ok {
		return v
	}
	a := f.comm.Agent(id)
	var v sparse.Vector
	switch {
	case a == nil:
		v = sparse.New(0)
	case f.opt.Representation == Product:
		v = profile.ProductVector(a, f.internProduct)
	default:
		v = f.gen.Profile(a, f.comm)
	}
	f.profiles[id] = v
	return v
}

// Invalidate drops the cached profile of id (call after its ratings
// change).
func (f *Filter) Invalidate(id model.AgentID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.profiles, id)
}

// Similarity returns the similarity of a and b under the configured
// measure; ok is false when the measure is undefined for the pair (the
// profile-overlap failure the taxonomy representation is designed to
// avoid).
func (f *Filter) Similarity(a, b model.AgentID) (float64, bool) {
	va, vb := f.ProfileOf(a), f.ProfileOf(b)
	switch f.opt.Measure {
	case Cosine:
		return sparse.Cosine(va, vb)
	default:
		return sparse.Pearson(va, vb)
	}
}

// Neighbor is one similarity-ranked peer.
type Neighbor struct {
	Agent model.AgentID
	Sim   float64
}

// NearestNeighbors ranks the candidate peers by similarity to a,
// descending, dropping pairs with undefined similarity, and returns at
// most k (all if k <= 0). The active agent itself is skipped if present
// among the candidates.
func (f *Filter) NearestNeighbors(a model.AgentID, candidates []model.AgentID, k int) []Neighbor {
	out := make([]Neighbor, 0, len(candidates))
	for _, c := range candidates {
		if c == a {
			continue
		}
		if s, ok := f.Similarity(a, c); ok {
			out = append(out, Neighbor{Agent: c, Sim: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Agent < out[j].Agent
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// DefinedPairFraction measures profile overlap quality (experiment E5):
// the fraction of distinct agent pairs among ids whose similarity is
// defined under the filter's measure. For Pearson over product vectors
// this is exactly the fraction of pairs with ≥2 co-rated products and
// non-degenerate variance.
func (f *Filter) DefinedPairFraction(ids []model.AgentID) float64 {
	if len(ids) < 2 {
		return 0
	}
	defined, total := 0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total++
			if _, ok := f.Similarity(ids[i], ids[j]); ok {
				defined++
			}
		}
	}
	return float64(defined) / float64(total)
}
