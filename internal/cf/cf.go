// Package cf implements the similarity-based filtering step of the
// paper's pipeline (§3.3): user-to-user similarity over interest profiles,
// applying "common nearest-neighbor techniques, namely Pearson's
// coefficient [6,3] and cosine distance from Information Retrieval",
// where "profile vectors map category score vectors from C instead of
// plain product-rating vectors".
//
// Three profile representations are supported so the experiments can
// contrast them:
//
//   - Taxonomy: Eq. 3 taxonomy profiles (the paper's proposal),
//   - FlatCategory: category vectors without super-topic inference
//     (category-based filtering [14], the criticized baseline),
//   - Product: plain product-rating vectors (classic CF [6], the
//     representation that suffers the "low profile overlap" of §2).
package cf

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/profmat"
	"swrec/internal/sparse"
)

// Measure selects the similarity coefficient.
type Measure int

const (
	// Pearson is Pearson's correlation coefficient over co-present
	// dimensions (default).
	Pearson Measure = iota
	// Cosine is the cosine similarity from Information Retrieval.
	Cosine
)

// String names the measure for experiment output.
func (m Measure) String() string {
	switch m {
	case Pearson:
		return "pearson"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Representation selects the profile vector space.
type Representation int

const (
	// Taxonomy uses Eq. 3 taxonomy-based profiles (default).
	Taxonomy Representation = iota
	// FlatCategory uses descriptor-only category vectors.
	FlatCategory
	// Product uses plain product-rating vectors.
	Product
)

// String names the representation for experiment output.
func (r Representation) String() string {
	switch r {
	case Taxonomy:
		return "taxonomy"
	case FlatCategory:
		return "flat-category"
	case Product:
		return "product"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// Options configure a Filter.
type Options struct {
	Measure        Measure
	Representation Representation
	// ProfileScore is the normalization constant s; 0 means the profile
	// package default (1000).
	ProfileScore float64
	// WeightByRating forwards to profile.Generator.
	WeightByRating bool
}

// Filter computes and caches interest profiles and pairwise similarities
// over one community. It is safe for concurrent use after construction.
type Filter struct {
	comm *model.Community //nolint:snapshotpin -- owned by the core.Recommender built for one snapshot; never outlives its epoch
	opt  Options
	gen  *profile.Generator

	mu sync.Mutex
	// profiles caches built profile vectors keyed by agent ordinal —
	// resolved once at the public entry, never re-hashed as a string.
	profiles map[int32]sparse.Vector
	// mat is the compiled CSR profile matrix (internal/profmat), built
	// once per filter for taxonomy-space representations and consulted by
	// every similarity before the map-based fallback. Guarded by mu; nil
	// until the first Compile/Similarity. The Product representation
	// never compiles (its dimension space grows with interning).
	mat *profmat.Matrix
	// scratch pools *profmat.Scratch instances for batch scans: the
	// active row is scattered into a dense image once, then every peer
	// costs a single pass over its own postings.
	scratch sync.Pool
}

// New creates a filter over the community. Taxonomy-based representations
// require the community to carry a taxonomy.
func New(comm *model.Community, opt Options) (*Filter, error) {
	f := &Filter{
		comm:     comm,
		opt:      opt,
		profiles: make(map[int32]sparse.Vector),
	}
	if opt.Representation != Product {
		if comm.Taxonomy() == nil {
			return nil, fmt.Errorf("cf: representation %v requires a taxonomy", opt.Representation)
		}
		g := profile.New(comm.Taxonomy())
		if opt.ProfileScore != 0 {
			g.Score = opt.ProfileScore
		}
		g.WeightByRating = opt.WeightByRating
		if opt.Representation == FlatCategory {
			g.Mode = profile.Flat
		}
		f.gen = g
	}
	return f, nil
}

// Options returns the filter's configuration.
func (f *Filter) Options() Options { return f.opt }

// Generator returns the profile generator backing taxonomy-space
// representations, or nil for the Product representation. The strategy
// ladder's taxonomy-ancestor rung uses it to generalize cached profiles
// without rebuilding them.
func (f *Filter) Generator() *profile.Generator { return f.gen }

// Compare applies the filter's configured measure to two caller-supplied
// profile vectors — the map-vector analogue of similarityRows for vectors
// the filter does not cache, such as the generalized (super-topic)
// profiles of the strategy ladder's taxonomy-ancestor rung. ok is false
// when the measure is undefined for the pair.
func (f *Filter) Compare(a, b sparse.Vector) (float64, bool) {
	switch f.opt.Measure {
	case Cosine:
		return sparse.Cosine(a, b)
	default:
		return sparse.Pearson(a, b)
	}
}

// productOrd maps a rated product to its catalog ordinal — the dense
// dimension of the Product representation. Every rated product is
// cataloged (SetRating enforces it, Merge registers bare products), so
// the record is always present and the ordinal is stable for the life of
// the community lineage.
func (f *Filter) productOrd(p model.ProductID) int32 {
	return f.comm.Product(p).Ord()
}

// ProfileOf returns (building and caching on first use) the profile vector
// of agent id under the filter's representation. Unknown agents yield an
// empty vector, uncached.
func (f *Filter) ProfileOf(id model.AgentID) sparse.Vector {
	a := f.comm.Agent(id)
	if a == nil {
		return sparse.New(0)
	}
	return f.profileOf(a)
}

// profileOf is ProfileOf after the one string resolution: the cache is
// keyed by the agent's ordinal.
func (f *Filter) profileOf(a *model.Agent) sparse.Vector {
	f.mu.Lock()
	defer f.mu.Unlock()
	ord := a.Ord()
	if v, ok := f.profiles[ord]; ok {
		return v
	}
	var v sparse.Vector
	if f.opt.Representation == Product {
		v = profile.ProductVector(a, f.productOrd)
	} else {
		v = f.gen.Profile(a, f.comm)
	}
	f.profiles[ord] = v
	return v
}

// Invalidate drops the cached profile of id (call after its ratings
// change). The compiled matrix, if any, is dropped wholesale and rebuilt
// on next use — mutating communities in place is the exception (eval
// harnesses); serving snapshots are immutable and use CompileDelta.
func (f *Filter) Invalidate(id model.AgentID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if a := f.comm.Agent(id); a != nil {
		delete(f.profiles, a.Ord())
	}
	f.mat = nil
}

// batchWorkers sizes the batch-similarity fan-out: roughly one worker
// per 128 peers, bounded by GOMAXPROCS. Batches too small to amortize
// goroutine startup run inline.
func batchWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if m := (n + 127) / 128; w > m {
		w = m
	}
	return w
}

// Compilable reports whether the filter's representation admits a
// compiled profile matrix: taxonomy-space representations do, the
// Product representation (whose dimension space grows with product
// interning) does not.
func (f *Filter) Compilable() bool { return f.opt.Representation != Product }

// Compile builds the compiled profile matrix for every agent of the
// community, after which similarities run as zero-allocation merge-joins.
// Idempotent; concurrent callers serialize on the filter lock. No-op for
// the Product representation.
func (f *Filter) Compile(ctx context.Context) error {
	return f.CompileDelta(ctx, nil, nil)
}

// CompileDelta is Compile carrying over the rows of prev for agent
// ordinals dirty reports false on — the epoch-swap fast path
// (internal/engine). A nil prev or dirty compiles from scratch. On ctx
// expiry the filter is left uncompiled and the next call retries.
func (f *Filter) CompileDelta(ctx context.Context, prev *profmat.Matrix, dirty func(int32) bool) error {
	if !f.Compilable() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mat != nil {
		return nil
	}
	mat, err := profmat.BuildDelta(ctx, f.comm, f.gen, f.gen.Taxonomy().Len(), 0, prev, dirty)
	if err != nil {
		return err
	}
	f.mat = mat
	return nil
}

// Matrix returns the compiled profile matrix, or nil before Compile (and
// always for the Product representation). The matrix is immutable; the
// engine's delta swap feeds it back through CompileDelta.
func (f *Filter) Matrix() *profmat.Matrix {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mat
}

// matrix returns the compiled matrix, building it on first use for
// compilable representations. Returns nil when the representation cannot
// compile or the build was cancelled.
func (f *Filter) matrix(ctx context.Context) *profmat.Matrix {
	if !f.Compilable() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mat == nil {
		mat, err := profmat.BuildDelta(ctx, f.comm, f.gen, f.gen.Taxonomy().Len(), 0, nil, nil)
		if err != nil {
			return nil
		}
		f.mat = mat
	}
	return f.mat
}

// emptyRow stands in for unknown agents on the compiled path, yielding
// the same undefined-similarity result the empty map vector does.
var emptyRow = &profmat.Row{}

// rowOf returns the compiled row for id — one community resolution to
// the agent's ordinal, then a positional matrix lookup — or an empty row
// for agents the matrix does not know.
func (f *Filter) rowOf(mat *profmat.Matrix, id model.AgentID) *profmat.Row {
	if a := f.comm.Agent(id); a != nil {
		if r := mat.Row(a.Ord()); r != nil {
			return r
		}
	}
	return emptyRow
}

// similarityRows computes the configured measure over two compiled rows.
func (f *Filter) similarityRows(a, b *profmat.Row) (float64, bool) {
	switch f.opt.Measure {
	case Cosine:
		return profmat.Cosine(a, b)
	default:
		return profmat.Pearson(a, b)
	}
}

// getScratch returns a pooled dense scratch covering the taxonomy
// dimension space; return it with f.scratch.Put when done.
func (f *Filter) getScratch() *profmat.Scratch {
	dims := f.gen.Taxonomy().Len()
	if sc, ok := f.scratch.Get().(*profmat.Scratch); ok && sc.Dims() >= dims {
		return sc
	}
	return profmat.NewScratch(dims)
}

// similarityScratch computes the configured measure of the scratch's
// loaded row against b.
func (f *Filter) similarityScratch(sc *profmat.Scratch, b *profmat.Row) (float64, bool) {
	switch f.opt.Measure {
	case Cosine:
		return sc.CosineTo(b)
	default:
		return sc.PearsonTo(b)
	}
}

// Similarity returns the similarity of a and b under the configured
// measure; ok is false when the measure is undefined for the pair (the
// profile-overlap failure the taxonomy representation is designed to
// avoid). Compilable representations serve from the compiled matrix
// (building it on first use); Product falls back to the map vectors.
func (f *Filter) Similarity(a, b model.AgentID) (float64, bool) {
	return f.SimilarityCtx(context.Background(), a, b)
}

// SimilarityCtx is Similarity with cancellation of the one-time compile
// step (the per-pair kernel itself is microseconds).
func (f *Filter) SimilarityCtx(ctx context.Context, a, b model.AgentID) (float64, bool) {
	if mat := f.matrix(ctx); mat != nil {
		return f.similarityRows(f.rowOf(mat, a), f.rowOf(mat, b))
	}
	va, vb := f.ProfileOf(a), f.ProfileOf(b)
	switch f.opt.Measure {
	case Cosine:
		return sparse.Cosine(va, vb)
	default:
		return sparse.Pearson(va, vb)
	}
}

// SimResult is one entry of a batch similarity scan.
type SimResult struct {
	Sim float64
	OK  bool
}

// Similarities computes the similarity of active against every peer in
// one scan, writing into out (which must be at least len(peers) long).
// On the compiled path the scan is embarrassingly parallel over immutable
// rows and fans out across a bounded worker pool when enough peers and
// CPUs make it worthwhile; the fallback path runs sequentially under the
// profile cache lock. Checks ctx at chunk boundaries; on cancellation out
// is partial and ctx.Err() is returned.
func (f *Filter) Similarities(ctx context.Context, active model.AgentID, peers []model.AgentID, out []SimResult) error {
	mat := f.matrix(ctx)
	if mat == nil {
		for i, p := range peers {
			if i&15 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s, ok := f.Similarity(active, p)
			out[i] = SimResult{Sim: s, OK: ok}
		}
		return ctx.Err()
	}
	ar := f.rowOf(mat, active)
	sc := f.getScratch()
	sc.Load(ar)
	defer f.scratch.Put(sc)
	workers := batchWorkers(len(peers))
	if workers <= 1 {
		for i, p := range peers {
			if i&63 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			s, ok := f.similarityScratch(sc, f.rowOf(mat, p))
			out[i] = SimResult{Sim: s, OK: ok}
		}
		return ctx.Err()
	}
	// The loaded scratch is read-only across workers after Load.
	var wg sync.WaitGroup
	chunk := (len(peers) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(peers) {
			hi = len(peers)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)&63 == 0 && ctx.Err() != nil {
					return
				}
				s, ok := f.similarityScratch(sc, f.rowOf(mat, peers[i]))
				out[i] = SimResult{Sim: s, OK: ok}
			}
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// Neighbor is one similarity-ranked peer.
type Neighbor struct {
	Agent model.AgentID
	Sim   float64
}

// NearestNeighbors ranks the candidate peers by similarity to a,
// descending, dropping pairs with undefined similarity, and returns at
// most k (all if k <= 0). The active agent itself is skipped if present
// among the candidates.
func (f *Filter) NearestNeighbors(a model.AgentID, candidates []model.AgentID, k int) []Neighbor {
	out := make([]Neighbor, 0, len(candidates))
	for _, c := range candidates {
		if c == a {
			continue
		}
		if s, ok := f.Similarity(a, c); ok {
			out = append(out, Neighbor{Agent: c, Sim: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Agent < out[j].Agent
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// DefinedPairFraction measures profile overlap quality (experiment E5):
// the fraction of distinct agent pairs among ids whose similarity is
// defined under the filter's measure. For Pearson over product vectors
// this is exactly the fraction of pairs with ≥2 co-rated products and
// non-degenerate variance.
func (f *Filter) DefinedPairFraction(ids []model.AgentID) float64 {
	if len(ids) < 2 {
		return 0
	}
	defined, total := 0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total++
			if _, ok := f.Similarity(ids[i], ids[j]); ok {
				defined++
			}
		}
	}
	return float64(defined) / float64(total)
}
