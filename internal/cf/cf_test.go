package cf

import (
	"math"
	"testing"

	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// twinCommunity builds a community where alice and bob share taste
// (identical rating histories), carol diverges, and dave rates nothing in
// common with anyone but reads a sibling category of alice's.
func twinCommunity(t *testing.T) *model.Community {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	calc, _ := tax.Lookup("Books/Science/Mathematics/Pure/Calculus")
	fic, _ := tax.Lookup("Books/Fiction")
	phy, _ := tax.Lookup("Books/Science/Physics")

	c.AddProduct(model.Product{ID: "b-alg1", Topics: []taxonomy.Topic{alg}})
	c.AddProduct(model.Product{ID: "b-alg2", Topics: []taxonomy.Topic{alg}})
	c.AddProduct(model.Product{ID: "b-calc", Topics: []taxonomy.Topic{calc}})
	c.AddProduct(model.Product{ID: "b-fic1", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "b-fic2", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "b-phy", Topics: []taxonomy.Topic{phy}})

	set := func(a model.AgentID, ratings map[model.ProductID]float64) {
		for p, v := range ratings {
			if err := c.SetRating(a, p, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	set("alice", map[model.ProductID]float64{"b-alg1": 1, "b-alg2": 0.8, "b-fic1": 0.2})
	set("bob", map[model.ProductID]float64{"b-alg1": 0.9, "b-alg2": 0.9, "b-fic1": 0.1})
	set("carol", map[model.ProductID]float64{"b-fic1": 1, "b-fic2": 1, "b-alg1": -0.8})
	set("dave", map[model.ProductID]float64{"b-calc": 1})
	return c
}

func TestTaxonomyRequiredForNonProductRepr(t *testing.T) {
	c := model.NewCommunity(nil)
	if _, err := New(c, Options{Representation: Taxonomy}); err == nil {
		t.Fatal("taxonomy representation without taxonomy accepted")
	}
	if _, err := New(c, Options{Representation: FlatCategory}); err == nil {
		t.Fatal("flat representation without taxonomy accepted")
	}
	if _, err := New(c, Options{Representation: Product}); err != nil {
		t.Fatalf("product representation must not need a taxonomy: %v", err)
	}
}

func TestSimilarTasteRanksFirst(t *testing.T) {
	c := twinCommunity(t)
	for _, m := range []Measure{Pearson, Cosine} {
		f, err := New(c, Options{Measure: m, Representation: Taxonomy})
		if err != nil {
			t.Fatal(err)
		}
		nn := f.NearestNeighbors("alice", c.Agents(), 0)
		if len(nn) == 0 {
			t.Fatalf("[%v] no neighbors", m)
		}
		if nn[0].Agent != "bob" {
			t.Fatalf("[%v] nearest neighbor = %s (%v), want bob", m, nn[0].Agent, nn[0].Sim)
		}
		for _, n := range nn {
			if n.Agent == "alice" {
				t.Fatalf("[%v] active agent ranked as own neighbor", m)
			}
		}
	}
}

func TestProductVsTaxonomyOverlap(t *testing.T) {
	c := twinCommunity(t)
	// dave shares no product with alice: product-representation Pearson is
	// undefined, taxonomy cosine is defined and positive (sibling leaves
	// share Pure/Mathematics/... mass).
	prod, err := New(c, Options{Measure: Pearson, Representation: Product})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prod.Similarity("alice", "dave"); ok {
		t.Fatal("product Pearson must be undefined with zero co-rated products")
	}
	taxf, err := New(c, Options{Measure: Cosine, Representation: Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := taxf.Similarity("alice", "dave"); !ok || s <= 0 {
		t.Fatalf("taxonomy similarity alice/dave = %v,%v, want positive", s, ok)
	}
}

func TestDefinedPairFraction(t *testing.T) {
	c := twinCommunity(t)
	ids := c.Agents()
	prod, err := New(c, Options{Measure: Pearson, Representation: Product})
	if err != nil {
		t.Fatal(err)
	}
	taxf, err := New(c, Options{Measure: Cosine, Representation: Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	fp := prod.DefinedPairFraction(ids)
	ft := taxf.DefinedPairFraction(ids)
	if ft <= fp {
		t.Fatalf("taxonomy overlap %v must beat product overlap %v", ft, fp)
	}
	if ft != 1 {
		t.Fatalf("taxonomy cosine should be defined for all pairs here, got %v", ft)
	}
	if got := prod.DefinedPairFraction(nil); got != 0 {
		t.Fatalf("degenerate input fraction = %v, want 0", got)
	}
}

func TestFlatCategoryLosesCrossTopicSignal(t *testing.T) {
	c := twinCommunity(t)
	flat, err := New(c, Options{Measure: Cosine, Representation: FlatCategory})
	if err != nil {
		t.Fatal(err)
	}
	// alice rates Algebra+Fiction leaves, dave rates only Calculus: flat
	// vectors are orthogonal.
	if s, ok := flat.Similarity("alice", "dave"); ok && s != 0 {
		t.Fatalf("flat similarity = %v, want 0", s)
	}
}

func TestCachingAndInvalidate(t *testing.T) {
	c := twinCommunity(t)
	f, err := New(c, Options{Measure: Cosine, Representation: Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	p1 := f.ProfileOf("alice")
	p2 := f.ProfileOf("alice")
	if &p1 == nil || len(p1) != len(p2) {
		t.Fatal("cache broke profile")
	}
	before, _ := f.Similarity("alice", "dave")
	// alice starts liking calculus; without invalidation the cache hides
	// it.
	if err := c.SetRating("alice", "b-calc", 1); err != nil {
		t.Fatal(err)
	}
	stale, _ := f.Similarity("alice", "dave")
	if stale != before {
		t.Fatal("expected stale cached profile before Invalidate")
	}
	f.Invalidate("alice")
	after, _ := f.Similarity("alice", "dave")
	if after <= before {
		t.Fatalf("similarity after shared rating = %v, want > %v", after, before)
	}
}

func TestUnknownAgentEmptyProfile(t *testing.T) {
	c := twinCommunity(t)
	f, err := New(c, Options{Representation: Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ProfileOf("ghost"); len(got) != 0 {
		t.Fatalf("unknown agent profile = %v, want empty", got)
	}
	if _, ok := f.Similarity("ghost", "alice"); ok {
		t.Fatal("similarity with ghost must be undefined")
	}
}

func TestNearestNeighborsK(t *testing.T) {
	c := twinCommunity(t)
	f, err := New(c, Options{Measure: Cosine, Representation: Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	nn := f.NearestNeighbors("alice", c.Agents(), 2)
	if len(nn) != 2 {
		t.Fatalf("k=2 returned %d", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i-1].Sim < nn[i].Sim {
			t.Fatal("neighbors not sorted descending")
		}
	}
}

func TestMeasureAndReprStrings(t *testing.T) {
	if Pearson.String() != "pearson" || Cosine.String() != "cosine" {
		t.Fatal("Measure.String broken")
	}
	if Taxonomy.String() != "taxonomy" || FlatCategory.String() != "flat-category" || Product.String() != "product" {
		t.Fatal("Representation.String broken")
	}
	if Measure(9).String() == "" || Representation(9).String() == "" {
		t.Fatal("unknown enum must still stringify")
	}
}

func TestOptionPassThrough(t *testing.T) {
	c := twinCommunity(t)
	f, err := New(c, Options{ProfileScore: 42, WeightByRating: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Options(); got.ProfileScore != 42 || !got.WeightByRating {
		t.Fatalf("Options = %+v", got)
	}
	// The profile honors the custom score constant.
	p := f.ProfileOf("alice")
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum < 41.99 || sum > 42.01 {
		t.Fatalf("profile total = %v, want 42", sum)
	}
}

func TestProductRepresentationSimilarity(t *testing.T) {
	c := twinCommunity(t)
	f, err := New(c, Options{Measure: Pearson, Representation: Product})
	if err != nil {
		t.Fatal(err)
	}
	// alice and bob co-rated 3 products with aligned preferences.
	s, ok := f.Similarity("alice", "bob")
	if !ok || s <= 0.5 {
		t.Fatalf("alice/bob product Pearson = %v,%v, want strongly positive", s, ok)
	}
	// carol's co-rated pattern anti-correlates with alice's.
	s2, ok2 := f.Similarity("alice", "carol")
	if !ok2 || s2 >= 0 {
		t.Fatalf("alice/carol product Pearson = %v,%v, want negative", s2, ok2)
	}
	if math.Abs(s) > 1 || math.Abs(s2) > 1 {
		t.Fatal("similarity out of bounds")
	}
}
