// Package crawler implements the mining side of §4.1: "tailored crawlers
// search the Web for weblogs and ensure data freshness". Starting from
// seed agents, it fetches machine-readable homepages over HTTP, parses
// their RDF, materializes trust statements and ratings into a local
// model.Community, and follows positive trust edges breadth-first — the
// asynchronous, data-centric message exchange of §2 (documents are
// published and fetched; there is no synchronous peer messaging).
//
// Fetched documents are cached in an embedded document store (package
// store); a re-crawl with Refresh=false reuses cached documents, so the
// crawler degrades gracefully when parts of the Web are unreachable.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"swrec/internal/foaf"
	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/resilience"
	"swrec/internal/store"
	"swrec/internal/taxonomy"
)

// maxDocumentBytes bounds a single fetched document; the Semantic Web
// cannot be trusted not to serve garbage of arbitrary size (§2, security).
const maxDocumentBytes = 16 << 20

var (
	// ErrNoSeeds is returned when Crawl is invoked without seed agents.
	ErrNoSeeds = errors.New("crawler: no seed agents")
	// ErrHostSuspended marks a fetch rejected because the host's circuit
	// breaker is open: the host has been failing and is in cooldown.
	ErrHostSuspended = errors.New("crawler: host suspended by circuit breaker")
)

// Crawler fetches and materializes a community. Zero-value fields take
// defaults; Client defaults to http.DefaultClient (tests inject the
// virtual Internet's client).
type Crawler struct {
	// Client performs the HTTP fetches.
	Client *http.Client
	// Cache, if non-nil, stores raw fetched documents keyed by URL.
	Cache *store.Store
	// Refresh forces re-fetching even when the cache holds a document.
	Refresh bool
	// MaxAgents bounds how many homepages are crawled (0 = unlimited).
	MaxAgents int
	// MaxDepth bounds the BFS depth from the seeds (0 = unlimited).
	MaxDepth int
	// Concurrency is the number of parallel fetch workers. Default 8.
	Concurrency int
	// FollowDistrust also crawls explicitly distrusted peers. Off by
	// default: their statements would never be used (§3.2).
	FollowDistrust bool
	// IgnoreRobots skips the robots.txt check. By default the crawler
	// fetches each host's /robots.txt once and honors its Disallow
	// prefixes for homepage fetches.
	IgnoreRobots bool
	// Timeout bounds one fetch (homepage or robots.txt). Default 10s.
	Timeout time.Duration
	// RetryBackoff is the base delay before the first retry of a
	// transiently failed fetch (timeout, connection error, or 5xx);
	// subsequent retries back off exponentially, each jittered in
	// [0.5, 1.5) of its base so a re-crawl does not hammer a recovering
	// host in lockstep. Default 500ms.
	RetryBackoff time.Duration
	// MaxRetries bounds re-attempts of a transiently failed fetch after
	// the first try. 0 keeps the default of one retry; negative disables
	// retrying entirely.
	MaxRetries int
	// DisableBreaker turns off the per-host circuit breakers. By default
	// every fetch consults the host's breaker: a host whose recent
	// fetches mostly failed is suspended for a cooldown instead of
	// pinning workers on a dead peer (the Semantic Web treats
	// unavailability as the normal case, not the exception).
	DisableBreaker bool
	// Breaker tunes the per-host circuit breakers; zero values take the
	// resilience package defaults.
	Breaker resilience.BreakerConfig

	breakerOnce sync.Once
	breakers    *resilience.Group
}

// Stats reports what one crawl did.
type Stats struct {
	Fetched      int // documents retrieved over HTTP (200)
	FromCache    int // documents served from the local store without network
	NotModified  int // conditional refreshes answered 304 (cache reused)
	Failed       int // fetch or parse failures (skipped, crawl continues)
	Skipped      int // agents not visited due to MaxAgents/MaxDepth bounds
	RobotsDenied int // homepages skipped because robots.txt disallows them
	Retried      int // transient fetch failures retried after backoff
	StaleServed  int // fetches that failed but were answered from cache
	BreakerOpen  int // fetches rejected because the host's breaker was open
}

// Result is a materialized community plus crawl statistics.
type Result struct {
	Community *model.Community //nolint:snapshotpin -- freshly assembled crawl output on its way INTO Engine.Swap, not a retained snapshot view
	Stats     Stats
}

// etagKey is the cache key holding the ETag a document was fetched with.
func etagKey(url string) string { return "etag\x00" + url }

// fetchDoc retrieves url, returning the raw document.
//
// Cache protocol: without Refresh, a cached document short-circuits the
// network entirely. With Refresh and a cached ETag, the request is
// conditional (If-None-Match); a 304 reuses the cached bytes — the
// "ensure data freshness" re-crawl of §4.1 at the cost of one round trip
// per unchanged homepage.
//
// Failure protocol: a transient failure (timeout, connection error, 5xx)
// is retried up to MaxRetries times with jittered exponential backoff;
// if the retries exhaust and a cached copy exists, the stale copy is
// served — the crawler "degrades gracefully when parts of the Web are
// unreachable" instead of dropping an agent it has seen before. Every
// fetch outcome feeds the host's circuit breaker; an open breaker
// rejects the fetch up front (stale cache still applies).
func (c *Crawler) fetchDoc(ctx context.Context, rawURL string, st *Stats, mu *sync.Mutex) ([]byte, error) {
	var cached []byte
	var cachedETag string
	if c.Cache != nil {
		if data, ok, err := c.Cache.Get(rawURL); err == nil && ok {
			cached = data
			if !c.Refresh {
				mu.Lock()
				st.FromCache++
				mu.Unlock()
				return data, nil
			}
			if tag, ok, err := c.Cache.Get(etagKey(rawURL)); err == nil && ok {
				cachedETag = string(tag)
			}
		}
	}

	serveStaleOr := func(err error) ([]byte, error) {
		if cached != nil {
			mu.Lock()
			st.StaleServed++
			mu.Unlock()
			return cached, nil
		}
		return nil, err
	}

	br := c.breakerFor(rawURL)
	if br != nil && !br.Allow() {
		mu.Lock()
		st.BreakerOpen++
		mu.Unlock()
		return serveStaleOr(fmt.Errorf("crawler: fetch %s: %w", rawURL, ErrHostSuspended))
	}

	attempts := 1 + c.MaxRetries
	if c.MaxRetries == 0 {
		attempts = 2 // default: one retry
	} else if c.MaxRetries < 0 {
		attempts = 1
	}
	var data []byte
	retries, err := resilience.Retry(ctx, attempts, c.RetryBackoff, func() (bool, error) {
		var transient bool
		var ferr error
		data, transient, ferr = c.fetchOnce(ctx, rawURL, cached, cachedETag, st, mu)
		return transient, ferr
	})
	if retries > 0 {
		mu.Lock()
		st.Retried += retries
		mu.Unlock()
	}
	if br != nil {
		br.Record(err == nil)
	}
	if err != nil {
		return serveStaleOr(err)
	}
	return data, nil
}

// breakerFor returns the circuit breaker guarding rawURL's host, or nil
// when breakers are disabled or the URL has no host.
func (c *Crawler) breakerFor(rawURL string) *resilience.Breaker {
	if c.DisableBreaker {
		return nil
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return nil
	}
	c.breakerOnce.Do(func() { c.breakers = resilience.NewGroup(c.Breaker) })
	return c.breakers.For(u.Host)
}

// BreakerStates snapshots the per-host breaker states accumulated so
// far — the observability hook for operators watching a long crawl.
// Hosts never fetched (or breakers disabled) yield an empty map.
func (c *Crawler) BreakerStates() map[string]resilience.State {
	if c.DisableBreaker || c.breakers == nil {
		return map[string]resilience.State{}
	}
	return c.breakers.States()
}

// fetchOnce performs one fetch attempt. transient reports whether the
// failure class is worth one retry (network error or 5xx, as opposed to
// a 4xx or a malformed URL).
func (c *Crawler) fetchOnce(ctx context.Context, url string, cached []byte, cachedETag string, st *Stats, mu *sync.Mutex) (data []byte, transient bool, err error) {
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	fctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, fmt.Errorf("crawler: request %s: %w", url, err)
	}
	if cachedETag != "" {
		req.Header.Set("If-None-Match", cachedETag)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("crawler: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && cached != nil {
		mu.Lock()
		st.NotModified++
		mu.Unlock()
		return cached, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode >= 500,
			fmt.Errorf("crawler: fetch %s: status %d", url, resp.StatusCode)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxDocumentBytes))
	if err != nil {
		return nil, true, fmt.Errorf("crawler: read %s: %w", url, err)
	}
	mu.Lock()
	st.Fetched++
	mu.Unlock()
	if c.Cache != nil {
		if err := c.Cache.Put(url, data); err != nil {
			return nil, false, fmt.Errorf("crawler: cache: %w", err)
		}
		if tag := resp.Header.Get("ETag"); tag != "" {
			if err := c.Cache.Put(etagKey(url), []byte(tag)); err != nil {
				return nil, false, fmt.Errorf("crawler: cache etag: %w", err)
			}
		}
	}
	return data, false, nil
}

// Crawl materializes a community: it loads the global taxonomy and catalog
// documents (either URL may be empty to skip), then BFS-crawls agent
// homepages from the seeds. Fetch and parse failures of individual
// homepages are counted and skipped; the crawl only fails outright on
// taxonomy/catalog errors or context cancellation.
func (c *Crawler) Crawl(ctx context.Context, taxonomyURL, catalogURL string, seeds []model.AgentID) (*Result, error) {
	if len(seeds) == 0 {
		return nil, ErrNoSeeds
	}
	var mu sync.Mutex // guards stats and community
	res := &Result{}

	// Global documents first (§3.1: taxonomy and catalog are public).
	var tax *taxonomy.Taxonomy
	if taxonomyURL != "" {
		data, err := c.fetchDoc(ctx, taxonomyURL, &res.Stats, &mu)
		if err != nil {
			return nil, err
		}
		g, err := rdf.ParseDocument(string(data))
		if err != nil {
			return nil, fmt.Errorf("crawler: taxonomy: %w", err)
		}
		tax, err = foaf.UnmarshalTaxonomy(g)
		if err != nil {
			return nil, fmt.Errorf("crawler: taxonomy: %w", err)
		}
	}
	comm := model.NewCommunity(tax)
	res.Community = comm
	if catalogURL != "" {
		data, err := c.fetchDoc(ctx, catalogURL, &res.Stats, &mu)
		if err != nil {
			return nil, err
		}
		g, err := rdf.ParseDocument(string(data))
		if err != nil {
			return nil, fmt.Errorf("crawler: catalog: %w", err)
		}
		if err := foaf.UnmarshalCatalog(g, comm); err != nil {
			return nil, fmt.Errorf("crawler: catalog: %w", err)
		}
	}

	// BFS over homepages with a bounded worker pool per level
	// (level-synchronous keeps MaxDepth exact and the result
	// deterministic given deterministic documents).
	concurrency := c.Concurrency
	if concurrency <= 0 {
		concurrency = 8
	}
	var robots *robotsCache
	if !c.IgnoreRobots {
		robots = newRobotsCache(c.Client, c.Timeout)
	}
	visited := map[model.AgentID]bool{}
	frontier := make([]model.AgentID, 0, len(seeds))
	for _, s := range seeds {
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
		}
	}
	depth := 0
	crawled := 0
	for len(frontier) > 0 {
		if c.MaxDepth > 0 && depth > c.MaxDepth {
			mu.Lock()
			res.Stats.Skipped += len(frontier)
			mu.Unlock()
			break
		}
		// Respect MaxAgents: truncate the frontier.
		if c.MaxAgents > 0 && crawled+len(frontier) > c.MaxAgents {
			keep := c.MaxAgents - crawled
			if keep < 0 {
				keep = 0
			}
			mu.Lock()
			res.Stats.Skipped += len(frontier) - keep
			mu.Unlock()
			frontier = frontier[:keep]
			if len(frontier) == 0 {
				break
			}
		}
		crawled += len(frontier)

		homepages := make([]*foaf.Homepage, len(frontier))
		sem := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		for i, id := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, id model.AgentID) {
				defer wg.Done()
				defer func() { <-sem }()
				if robots != nil && !robots.allowed(ctx, string(id)) {
					mu.Lock()
					res.Stats.RobotsDenied++
					mu.Unlock()
					return
				}
				data, err := c.fetchDoc(ctx, string(id), &res.Stats, &mu)
				if err != nil {
					mu.Lock()
					res.Stats.Failed++
					mu.Unlock()
					return
				}
				g, err := rdf.ParseDocument(string(data))
				if err != nil {
					mu.Lock()
					res.Stats.Failed++
					mu.Unlock()
					return
				}
				h, err := foaf.Unmarshal(g)
				if err != nil || h.Agent != id {
					// A homepage claiming to be someone else is dropped:
					// subjective security means statements only count from
					// the document at the agent's own URI (§2, spoofing).
					mu.Lock()
					res.Stats.Failed++
					mu.Unlock()
					return
				}
				homepages[i] = &h
			}(i, id)
		}
		wg.Wait()

		// Merge sequentially in frontier order for determinism; collect
		// the next frontier.
		var next []model.AgentID
		for _, h := range homepages {
			if h == nil {
				continue
			}
			if err := h.ApplyTo(comm); err != nil {
				mu.Lock()
				res.Stats.Failed++
				mu.Unlock()
				continue
			}
			for _, st := range h.Trust {
				if st.Value <= 0 && !c.FollowDistrust {
					continue
				}
				if !visited[st.Dst] {
					visited[st.Dst] = true
					next = append(next, st.Dst)
				}
			}
		}
		frontier = next
		depth++
	}
	return res, nil
}
