package crawler

// Minimal robots exclusion protocol (the 1994 REP, which the paper-era
// crawlers honored): the crawler fetches /robots.txt once per host and
// skips homepages under any Disallow prefix of the "*" user-agent group.
// Missing or unreadable robots.txt means everything is allowed, per the
// protocol.

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// robotsRules holds the Disallow prefixes applying to us on one host.
type robotsRules struct {
	disallow []string
}

// allows reports whether path may be fetched.
func (r *robotsRules) allows(path string) bool {
	if r == nil {
		return true
	}
	for _, p := range r.disallow {
		if p != "" && strings.HasPrefix(path, p) {
			return false
		}
	}
	return true
}

// parseRobots extracts the Disallow prefixes of groups naming the "*" or
// "swrec" user agents. Groups are runs of User-agent lines followed by
// directives; a User-agent line after directives starts a new group.
// Unknown directives are ignored, as the protocol requires.
func parseRobots(doc string) *robotsRules {
	rules := &robotsRules{}
	var groupAgents []string
	inDirectives := false
	matches := func() bool {
		for _, a := range groupAgents {
			if a == "*" || a == "swrec" {
				return true
			}
		}
		return false
	}
	sc := bufio.NewScanner(strings.NewReader(doc))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		switch key {
		case "user-agent":
			if inDirectives {
				groupAgents = nil
				inDirectives = false
			}
			groupAgents = append(groupAgents, strings.ToLower(value))
		case "disallow":
			inDirectives = true
			if value != "" && matches() {
				rules.disallow = append(rules.disallow, value)
			}
		default:
			inDirectives = true
		}
	}
	return rules
}

// robotsCache lazily fetches and parses robots.txt per host for one
// crawl. Safe for concurrent use. Each robots.txt fetch gets its own
// timeout so a hanging robots endpoint cannot stall the whole frontier
// behind one host's policy check.
type robotsCache struct {
	client  *http.Client
	timeout time.Duration
	mu      sync.Mutex
	rules   map[string]*robotsRules
}

func newRobotsCache(client *http.Client, timeout time.Duration) *robotsCache {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &robotsCache{client: client, timeout: timeout, rules: map[string]*robotsRules{}}
}

// allowed reports whether rawURL may be crawled under its host's rules.
func (rc *robotsCache) allowed(ctx context.Context, rawURL string) bool {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return true // unparsable URLs fail later, at fetch
	}
	rc.mu.Lock()
	rules, ok := rc.rules[u.Host]
	rc.mu.Unlock()
	if !ok {
		rules = rc.fetch(ctx, u.Scheme, u.Host)
		rc.mu.Lock()
		rc.rules[u.Host] = rules
		rc.mu.Unlock()
	}
	return rules.allows(u.Path)
}

// fetch retrieves one host's robots.txt; any failure means "allow all".
// The read is capped at maxDocumentBytes like any other untrusted
// Semantic Web document.
func (rc *robotsCache) fetch(ctx context.Context, scheme, host string) *robotsRules {
	if scheme == "" {
		scheme = "http"
	}
	fctx, cancel := context.WithTimeout(ctx, rc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, scheme+"://"+host+"/robots.txt", nil)
	if err != nil {
		return nil
	}
	client := rc.client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDocumentBytes))
	if err != nil {
		return nil
	}
	return parseRobots(string(body))
}
