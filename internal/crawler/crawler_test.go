package crawler

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"

	"swrec/internal/model"
	"swrec/internal/semweb"
	"swrec/internal/store"
	"swrec/internal/taxonomy"
)

// publishWeb builds a small published community:
//
//	alice -0.9-> bob -0.8-> carol -0.7-> dave   (chain)
//	alice --(-0.5)-> eve                        (distrusted)
//	mallory: exists but unreachable by trust edges
//	bob -0.6-> zoe@offline.example              (unreachable host)
func publishWeb(t *testing.T) (*semweb.Internet, *semweb.Site) {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis", Topics: []taxonomy.Topic{alg}})

	s := semweb.NewSite("swrec.example", c)
	a := func(n string) model.AgentID { return s.AgentURL(n) }
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.SetTrust(a("alice"), a("bob"), 0.9))
	must(c.SetTrust(a("bob"), a("carol"), 0.8))
	must(c.SetTrust(a("carol"), a("dave"), 0.7))
	must(c.SetTrust(a("alice"), a("eve"), -0.5))
	must(c.SetTrust(a("bob"), "http://offline.example/people/zoe", 0.6))
	must(c.SetRating(a("alice"), "urn:isbn:9780553380958", 1))
	must(c.SetRating(a("bob"), "urn:isbn:9780521386326", 0.9))
	must(c.SetRating(a("dave"), "urn:isbn:9780553380958", 0.4))
	c.AddAgent(a("mallory")).Name = "Mallory"

	var in semweb.Internet
	in.RegisterSite(s)
	return &in, s
}

func TestCrawlChain(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client()}
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Community
	if c.Taxonomy() == nil || c.Taxonomy().Len() != taxonomy.Fig1().Len() {
		t.Fatal("taxonomy not materialized")
	}
	if c.NumProducts() != 2 {
		t.Fatalf("NumProducts = %d, want 2", c.NumProducts())
	}
	for _, name := range []string{"alice", "bob", "carol", "dave"} {
		id := site.AgentURL(name)
		ag := c.Agent(id)
		if ag == nil {
			t.Fatalf("agent %s not crawled", name)
		}
	}
	if v, ok := c.Trust(site.AgentURL("alice"), site.AgentURL("bob")); !ok || v != 0.9 {
		t.Fatalf("trust lost: %v,%v", v, ok)
	}
	if v, ok := c.Rating(site.AgentURL("dave"), "urn:isbn:9780553380958"); !ok || v != 0.4 {
		t.Fatalf("deep rating lost: %v,%v", v, ok)
	}
	// eve is distrusted: her homepage is not crawled (but the distrust
	// statement itself is materialized from alice's homepage).
	if v, ok := c.Trust(site.AgentURL("alice"), site.AgentURL("eve")); !ok || v != -0.5 {
		t.Fatal("distrust statement must be materialized")
	}
	if len(c.Agent(site.AgentURL("eve")).Ratings) != 0 {
		t.Fatal("distrusted homepage must not be crawled")
	}
	// mallory is unreachable: not in the crawl at all.
	if c.HasAgent(site.AgentURL("mallory")) {
		t.Fatal("unreachable agent crawled")
	}
	// zoe's host is down: counted as failure, crawl continues.
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (offline host)", res.Stats.Failed)
	}
	// 2 globals + alice,bob,carol,dave (zoe failed).
	if res.Stats.Fetched != 6 {
		t.Fatalf("Fetched = %d, want 6", res.Stats.Fetched)
	}
}

func TestCrawlFollowDistrust(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client(), FollowDistrust: true}
	res, err := cr.Crawl(context.Background(), "", "", []model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Community.HasAgent(site.AgentURL("eve")) {
		t.Fatal("FollowDistrust should crawl eve")
	}
}

func TestCrawlMaxDepth(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client(), MaxDepth: 1}
	res, err := cr.Crawl(context.Background(), "", "", []model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 0 = alice, depth 1 = bob; carol (depth 2) is skipped.
	if !res.Community.HasAgent(site.AgentURL("bob")) {
		t.Fatal("depth-1 agent missing")
	}
	if a := res.Community.Agent(site.AgentURL("carol")); a != nil && len(a.Trust) > 0 {
		t.Fatal("depth-2 homepage must not be crawled")
	}
	if res.Stats.Skipped == 0 {
		t.Fatal("Skipped must count the cut frontier")
	}
}

func TestCrawlMaxAgents(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client(), MaxAgents: 2}
	res, err := cr.Crawl(context.Background(), "", "", []model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	// Only alice and bob fetched as homepages.
	if res.Stats.Fetched != 2 {
		t.Fatalf("Fetched = %d, want 2", res.Stats.Fetched)
	}
}

func TestCrawlCacheReuse(t *testing.T) {
	in, site := publishWeb(t)
	st, err := store.Open(filepath.Join(t.TempDir(), "cache.log"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cr := &Crawler{Client: in.Client(), Cache: st}
	res1, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.FromCache != 0 {
		t.Fatalf("first crawl FromCache = %d", res1.Stats.FromCache)
	}

	// Second crawl: everything comes from the cache, even with the web
	// gone (data-centric asynchronous exchange — the documents persist).
	offline := &Crawler{Client: (&semweb.Internet{}).Client(), Cache: st}
	res2, err := offline.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Fetched != 0 {
		t.Fatalf("offline crawl fetched %d docs", res2.Stats.Fetched)
	}
	if res2.Stats.FromCache != res1.Stats.Fetched {
		t.Fatalf("FromCache = %d, want %d", res2.Stats.FromCache, res1.Stats.Fetched)
	}
	if got, want := res2.Community.ComputeStats(), res1.Community.ComputeStats(); got != want {
		t.Fatalf("cached community differs: %+v vs %+v", got, want)
	}

	// Refresh re-validates conditionally: the unchanged site answers 304
	// for every document, so nothing is re-transferred.
	fresh := &Crawler{Client: in.Client(), Cache: st, Refresh: true}
	res3, err := fresh.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Fetched != 0 {
		t.Fatalf("unchanged site should answer only 304s, fetched %d", res3.Stats.Fetched)
	}
	if res3.Stats.NotModified != res1.Stats.Fetched {
		t.Fatalf("NotModified = %d, want %d", res3.Stats.NotModified, res1.Stats.Fetched)
	}

	// After a homepage changes, exactly that document is re-fetched.
	if err := site.Community().SetRating(site.AgentURL("alice"), "urn:isbn:9780521386326", 0.7); err != nil {
		t.Fatal(err)
	}
	res4, err := fresh.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Stats.Fetched != 1 {
		t.Fatalf("changed homepage: Fetched = %d, want 1", res4.Stats.Fetched)
	}
	if v, ok := res4.Community.Rating(site.AgentURL("alice"), "urn:isbn:9780521386326"); !ok || v != 0.7 {
		t.Fatalf("refreshed rating = %v,%v, want 0.7", v, ok)
	}
}

func TestCrawlRejectsSpoofedHomepage(t *testing.T) {
	// A document at bob's URL claiming to be alice must be dropped:
	// "spoofing and identity forging thus become facile to achieve" (§2).
	var in semweb.Internet
	spoofed := `<http://evil.example/people/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://xmlns.com/foaf/0.1/Person> .
`
	in.Register("evil.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(spoofed))
	}))
	cr := &Crawler{Client: in.Client()}
	res, err := cr.Crawl(context.Background(), "", "",
		[]model.AgentID{"http://evil.example/people/bob"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (spoofed doc)", res.Stats.Failed)
	}
	if res.Community.HasAgent("http://evil.example/people/alice") {
		t.Fatal("spoofed identity materialized")
	}
}

func TestCrawlGarbageDocument(t *testing.T) {
	var in semweb.Internet
	in.Register("junk.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not RDF at all"))
	}))
	cr := &Crawler{Client: in.Client()}
	res, err := cr.Crawl(context.Background(), "", "",
		[]model.AgentID{"http://junk.example/people/a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Stats.Failed)
	}
}

func TestCrawlErrors(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client()}
	if _, err := cr.Crawl(context.Background(), "", "", nil); !errors.Is(err, ErrNoSeeds) {
		t.Fatalf("got %v, want ErrNoSeeds", err)
	}
	// Broken taxonomy URL is fatal (the global documents are required
	// context, §3.1).
	if _, err := cr.Crawl(context.Background(), "http://offline.example/t.nt", "",
		[]model.AgentID{site.AgentURL("alice")}); err == nil {
		t.Fatal("unreachable taxonomy must fail the crawl")
	}
	// Cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.Crawl(ctx, "", "", []model.AgentID{site.AgentURL("alice")}); err == nil {
		t.Fatal("cancelled context must abort the crawl")
	}
}

func TestCrawlDeterministicCommunity(t *testing.T) {
	in, site := publishWeb(t)
	run := func() model.Stats {
		cr := &Crawler{Client: in.Client(), Concurrency: 4}
		res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
			[]model.AgentID{site.AgentURL("alice")})
		if err != nil {
			t.Fatal(err)
		}
		return res.Community.ComputeStats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic crawl: %+v vs %+v", a, b)
	}
}
