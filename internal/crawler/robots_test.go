package crawler

import (
	"context"
	"testing"

	"swrec/internal/model"
	"swrec/internal/semweb"
)

func TestParseRobots(t *testing.T) {
	doc := `# comment
User-agent: *
Disallow: /private/
Disallow: /tmp

User-agent: googlebot
Disallow: /

User-agent: swrec
Disallow: /swrec-only/
`
	r := parseRobots(doc)
	// The "*" group and the "swrec" group both apply.
	cases := []struct {
		path  string
		allow bool
	}{
		{"/people/alice", true},
		{"/private/alice", false},
		{"/tmpfile", false}, // prefix match, per the 1994 REP
		{"/swrec-only/x", false},
		{"/", true},
	}
	for _, c := range cases {
		if got := r.allows(c.path); got != c.allow {
			t.Errorf("allows(%s) = %v, want %v", c.path, got, c.allow)
		}
	}
	// The googlebot-only group must not apply to us.
	if !r.allows("/anything-else") {
		t.Error("foreign group leaked into our rules")
	}
}

func TestParseRobotsGroupBoundaries(t *testing.T) {
	// A User-agent line after directives starts a fresh group: the "*"
	// here shares a group with googlebot, separate from the first group.
	doc := `User-agent: somebot
Disallow: /somebot/

User-agent: googlebot
User-agent: *
Disallow: /shared/
`
	r := parseRobots(doc)
	if r.allows("/shared/x") {
		t.Error("multi-agent group not honored")
	}
	if !r.allows("/somebot/x") {
		t.Error("foreign group applied")
	}
}

func TestParseRobotsEmptyAndGarbage(t *testing.T) {
	if r := parseRobots(""); !r.allows("/anything") {
		t.Error("empty robots must allow all")
	}
	if r := parseRobots("random text\nwithout structure"); !r.allows("/x") {
		t.Error("garbage robots must allow all")
	}
	// Empty Disallow means allow-all.
	if r := parseRobots("User-agent: *\nDisallow:\n"); !r.allows("/x") {
		t.Error("empty Disallow must allow all")
	}
}

func TestNilRulesAllowAll(t *testing.T) {
	var r *robotsRules
	if !r.allows("/x") {
		t.Error("nil rules (no robots.txt) must allow all")
	}
}

func TestCrawlHonorsRobots(t *testing.T) {
	in, site := publishWeb(t)
	site.Robots = "User-agent: *\nDisallow: /people/carol\n"

	cr := &Crawler{Client: in.Client()}
	res, err := cr.Crawl(context.Background(), "", "", []model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RobotsDenied != 1 {
		t.Fatalf("RobotsDenied = %d, want 1", res.Stats.RobotsDenied)
	}
	// carol's homepage was not fetched, so her own statements (and the
	// chain behind her) are missing; alice and bob are present.
	if got := len(res.Community.Agent(site.AgentURL("carol")).Trust); got != 0 {
		t.Fatalf("disallowed homepage was crawled: %d trust edges", got)
	}
	if !res.Community.HasAgent(site.AgentURL("bob")) {
		t.Fatal("allowed agents missing")
	}
	if res.Community.HasAgent(site.AgentURL("dave")) {
		t.Fatal("agents behind the robots wall should be unreachable")
	}

	// IgnoreRobots overrides.
	rude := &Crawler{Client: in.Client(), IgnoreRobots: true}
	res2, err := rude.Crawl(context.Background(), "", "", []model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.RobotsDenied != 0 {
		t.Fatalf("IgnoreRobots still denied %d", res2.Stats.RobotsDenied)
	}
	if got := len(res2.Community.Agent(site.AgentURL("carol")).Trust); got == 0 {
		t.Fatal("IgnoreRobots should crawl carol")
	}
}

func TestRobotsCacheFetchesOncePerHost(t *testing.T) {
	in, site := publishWeb(t)
	_ = site
	rc := newRobotsCache(in.Client(), 0)
	ctx := context.Background()
	// Multiple checks against the same host hit the network once; we
	// can't count requests directly, but repeated calls must be
	// consistent and cheap.
	for i := 0; i < 5; i++ {
		if !rc.allowed(ctx, string(site.AgentURL("alice"))) {
			t.Fatal("default robots must allow")
		}
	}
	if len(rc.rules) != 1 {
		t.Fatalf("rules cached for %d hosts, want 1", len(rc.rules))
	}
	// Unknown host: allow (no robots.txt reachable).
	if !rc.allowed(ctx, "http://down.example/people/x") {
		t.Fatal("unreachable robots.txt must allow")
	}
	// Unparsable URL: allow.
	if !rc.allowed(ctx, "::bogus::") {
		t.Fatal("bogus URL must be allowed through to fetch-time failure")
	}
}

func TestSiteServesRobots(t *testing.T) {
	in, site := publishWeb(t)
	resp, err := in.Client().Get(site.BaseURL() + "/robots.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	_ = semweb.ContentTypeNTriples // keep the semweb import for the helper
}
