package crawler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"swrec/internal/model"
	"swrec/internal/resilience"
	"swrec/internal/semweb"
)

// TestCrawlBreakerSuspendsDeadHost seeds many agents on an unreachable
// host: after the breaker's window fills with failures, the remaining
// fetches are rejected up front instead of burning a timeout each.
func TestCrawlBreakerSuspendsDeadHost(t *testing.T) {
	var in semweb.Internet // dead.example is not registered: every fetch fails
	seeds := make([]model.AgentID, 8)
	for i := range seeds {
		seeds[i] = model.AgentID(fmt.Sprintf("http://dead.example/people/a%d", i))
	}
	cr := &Crawler{
		Client:      in.Client(),
		Concurrency: 1, // deterministic outcome order
		MaxRetries:  -1,
		Breaker:     resilience.BreakerConfig{Window: 4, MinSamples: 4, OpenFor: time.Hour},
	}
	res, err := cr.Crawl(context.Background(), "", "", seeds)
	if err != nil {
		t.Fatal(err)
	}
	// First 4 failures fill the window and trip the breaker; the other 4
	// seeds are rejected without touching the network.
	if res.Stats.BreakerOpen != 4 {
		t.Fatalf("BreakerOpen = %d, want 4", res.Stats.BreakerOpen)
	}
	if res.Stats.Failed != len(seeds) {
		t.Fatalf("Failed = %d, want %d", res.Stats.Failed, len(seeds))
	}
	states := cr.BreakerStates()
	if states["dead.example"] != resilience.Open {
		t.Fatalf("breaker state = %v, want open", states["dead.example"])
	}
}

// TestCrawlDisableBreaker keeps every fetch on the wire when breakers
// are off, however dead the host.
func TestCrawlDisableBreaker(t *testing.T) {
	var in semweb.Internet
	seeds := make([]model.AgentID, 8)
	for i := range seeds {
		seeds[i] = model.AgentID(fmt.Sprintf("http://dead.example/people/a%d", i))
	}
	cr := &Crawler{
		Client:         in.Client(),
		Concurrency:    1,
		MaxRetries:     -1,
		DisableBreaker: true,
		Breaker:        resilience.BreakerConfig{Window: 4, MinSamples: 4, OpenFor: time.Hour},
	}
	res, err := cr.Crawl(context.Background(), "", "", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BreakerOpen != 0 {
		t.Fatalf("BreakerOpen = %d with breakers disabled", res.Stats.BreakerOpen)
	}
	if res.Stats.Failed != len(seeds) {
		t.Fatalf("Failed = %d, want %d", res.Stats.Failed, len(seeds))
	}
	if len(cr.BreakerStates()) != 0 {
		t.Fatal("BreakerStates must be empty with breakers disabled")
	}
}
