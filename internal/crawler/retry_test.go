package crawler

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"swrec/internal/model"
	"swrec/internal/store"
)

// flakyTransport fails requests whose URL contains a marker substring a
// fixed number of times before delegating to the real transport.
type flakyTransport struct {
	inner   http.RoundTripper
	marker  string
	mode    string // "5xx" fabricates a 503; "err" returns a transport error
	mu      sync.Mutex
	remain  int // failures left to inject
	matched int // requests that hit the marker
}

var errInjected = errors.New("injected connection failure")

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.Contains(req.URL.String(), f.marker) {
		return f.inner.RoundTrip(req)
	}
	f.mu.Lock()
	f.matched++
	inject := f.remain > 0
	if inject {
		f.remain--
	}
	f.mu.Unlock()
	if !inject {
		return f.inner.RoundTrip(req)
	}
	if f.mode == "err" {
		return nil, errInjected
	}
	return &http.Response{
		StatusCode: http.StatusServiceUnavailable,
		Status:     "503 Service Unavailable",
		Body:       http.NoBody,
		Header:     http.Header{},
		Request:    req,
	}, nil
}

func TestCrawlRetriesTransient5xx(t *testing.T) {
	in, site := publishWeb(t)
	ft := &flakyTransport{inner: in.Client().Transport, marker: "alice", mode: "5xx", remain: 1}
	cr := &Crawler{Client: &http.Client{Transport: ft}, RetryBackoff: time.Millisecond}
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	// Two retries: the injected 503 on alice, plus the fixture's
	// permanently offline host (zoe), which is also transient-classed.
	if res.Stats.Retried != 2 {
		t.Fatalf("Retried = %d, want 2 (alice + offline zoe)", res.Stats.Retried)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (only offline zoe)", res.Stats.Failed)
	}
	// The retry succeeded, so the whole chain behind alice crawled.
	if !res.Community.HasAgent(site.AgentURL("dave")) {
		t.Fatal("crawl did not recover behind the retried fetch")
	}
}

func TestCrawlRetriesConnectionError(t *testing.T) {
	in, site := publishWeb(t)
	ft := &flakyTransport{inner: in.Client().Transport, marker: "alice", mode: "err", remain: 1}
	cr := &Crawler{Client: &http.Client{Transport: ft}, RetryBackoff: time.Millisecond}
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	// alice's injected error retried and recovered; offline zoe retried
	// and failed (the fixture's permanent outage).
	if res.Stats.Retried != 2 || res.Stats.Failed != 1 {
		t.Fatalf("Retried = %d Failed = %d, want 2/1", res.Stats.Retried, res.Stats.Failed)
	}
	if !res.Community.HasAgent(site.AgentURL("dave")) {
		t.Fatal("crawl did not recover behind the retried fetch")
	}
}

func TestCrawlPersistentFailureExhaustsRetry(t *testing.T) {
	in, site := publishWeb(t)
	// More injected failures than the one retry: alice stays down.
	ft := &flakyTransport{inner: in.Client().Transport, marker: "alice", mode: "5xx", remain: 99}
	cr := &Crawler{Client: &http.Client{Transport: ft}, RetryBackoff: time.Millisecond}
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("alice")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retried != 1 {
		t.Fatalf("Retried = %d, want exactly 1 (single retry)", res.Stats.Retried)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Stats.Failed)
	}
	if ft.matched != 2 {
		t.Fatalf("transport saw %d attempts, want 2", ft.matched)
	}
}

func TestCrawlNo4xxRetry(t *testing.T) {
	in, site := publishWeb(t)
	cr := &Crawler{Client: in.Client(), RetryBackoff: time.Millisecond}
	// mallory's homepage exists; an unknown agent 404s and must not retry.
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{site.AgentURL("nobody-here")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retried != 0 {
		t.Fatalf("Retried = %d for a 404, want 0", res.Stats.Retried)
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Stats.Failed)
	}
}

func TestCrawlStaleCacheFallback(t *testing.T) {
	in, site := publishWeb(t)
	st, err := store.Open(filepath.Join(t.TempDir(), "cache.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	seed := site.AgentURL("alice")
	// First crawl warms the cache over a healthy network.
	warm := &Crawler{Client: in.Client(), Cache: st}
	if _, err := warm.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{seed}); err != nil {
		t.Fatal(err)
	}

	// Re-crawl with Refresh while alice's host is persistently down:
	// the retry exhausts, then the cached homepage is served, so the
	// community still contains the full chain.
	ft := &flakyTransport{inner: in.Client().Transport, marker: "alice", mode: "err", remain: 999}
	cr := &Crawler{Client: &http.Client{Transport: ft}, Cache: st, Refresh: true,
		RetryBackoff: time.Millisecond}
	res, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
		[]model.AgentID{seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", res.Stats.StaleServed)
	}
	// Offline zoe was never cached, so it still counts as the one
	// failure; alice's outage was absorbed by the cache.
	if res.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (only uncached zoe)", res.Stats.Failed)
	}
	if !res.Community.HasAgent(site.AgentURL("dave")) {
		t.Fatal("stale cache fallback did not preserve the crawl frontier")
	}
	if v, ok := res.Community.Trust(seed, site.AgentURL("bob")); !ok || v != 0.9 {
		t.Fatal("alice's cached statements missing from the community")
	}
}
