package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicOps(t *testing.T) {
	v := New(4)
	v.Add(1, 2)
	v.Add(1, 3)
	v.Add(7, -1)
	if !almost(v[1], 5) || !almost(v[7], -1) {
		t.Fatalf("Add accumulation broken: %v", v)
	}
	if !almost(v.Sum(), 4) {
		t.Fatalf("Sum = %v, want 4", v.Sum())
	}
	if !almost(v.Norm(), math.Sqrt(26)) {
		t.Fatalf("Norm = %v", v.Norm())
	}
	c := v.Clone()
	c.Scale(2)
	if !almost(c[1], 10) || !almost(v[1], 5) {
		t.Fatal("Clone/Scale aliasing or math broken")
	}
}

func TestDotAndOverlap(t *testing.T) {
	a := Vector{1: 1, 2: 2, 3: 3}
	b := Vector{2: 4, 3: -1, 9: 100}
	if got := Dot(a, b); !almost(got, 2*4+3*-1) {
		t.Fatalf("Dot = %v, want 5", got)
	}
	if got := Dot(b, a); !almost(got, 5) {
		t.Fatal("Dot must be symmetric")
	}
	if got := Overlap(a, b); got != 2 {
		t.Fatalf("Overlap = %d, want 2", got)
	}
	if got := Dot(a, Vector{}); got != 0 {
		t.Fatalf("Dot with empty = %v", got)
	}
}

func TestCosine(t *testing.T) {
	a := Vector{1: 1, 2: 1}
	b := Vector{1: 2, 2: 2}
	if sim, ok := Cosine(a, b); !ok || !almost(sim, 1) {
		t.Fatalf("parallel cosine = %v,%v, want 1,true", sim, ok)
	}
	c := Vector{3: 1}
	if sim, ok := Cosine(a, c); !ok || !almost(sim, 0) {
		t.Fatalf("orthogonal cosine = %v,%v, want 0,true", sim, ok)
	}
	d := Vector{1: -1, 2: -1}
	if sim, ok := Cosine(a, d); !ok || !almost(sim, -1) {
		t.Fatalf("antiparallel cosine = %v,%v, want -1,true", sim, ok)
	}
	if _, ok := Cosine(a, Vector{}); ok {
		t.Fatal("cosine with zero vector must be undefined")
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive correlation on the overlap.
	a := Vector{1: 1, 2: 2, 3: 3, 99: 5}
	b := Vector{1: 2, 2: 4, 3: 6, 42: -7}
	if sim, ok := Pearson(a, b); !ok || !almost(sim, 1) {
		t.Fatalf("Pearson = %v,%v, want 1,true", sim, ok)
	}
	// Perfect negative correlation.
	c := Vector{1: 3, 2: 2, 3: 1}
	if sim, ok := Pearson(a, c); !ok || !almost(sim, -1) {
		t.Fatalf("Pearson = %v,%v, want -1,true", sim, ok)
	}
	// Undefined: fewer than 2 overlapping dimensions.
	if _, ok := Pearson(a, Vector{1: 1}); ok {
		t.Fatal("Pearson on 1-dim overlap must be undefined")
	}
	if _, ok := Pearson(a, Vector{7: 1, 8: 2}); ok {
		t.Fatal("Pearson on empty overlap must be undefined")
	}
	// Undefined: zero variance on the overlap.
	if _, ok := Pearson(Vector{1: 5, 2: 5}, Vector{1: 1, 2: 2}); ok {
		t.Fatal("Pearson with constant side must be undefined")
	}
}

func TestPearsonSymmetric(t *testing.T) {
	a := Vector{1: 0.3, 2: -0.5, 3: 0.9, 4: 0.1}
	b := Vector{2: 0.8, 3: -0.2, 4: 0.4, 5: 1}
	s1, ok1 := Pearson(a, b)
	s2, ok2 := Pearson(b, a)
	if ok1 != ok2 || !almost(s1, s2) {
		t.Fatalf("Pearson asymmetric: %v,%v vs %v,%v", s1, ok1, s2, ok2)
	}
}

func TestTopK(t *testing.T) {
	v := Vector{1: 5, 2: 9, 3: 9, 4: 1}
	top := v.TopK(2)
	if len(top) != 2 || top[0].Key != 2 || top[1].Key != 3 {
		t.Fatalf("TopK = %v (ties must break by key)", top)
	}
	all := v.TopK(0)
	if len(all) != 4 || all[3].Key != 4 {
		t.Fatalf("TopK(0) = %v", all)
	}
	if got := v.TopK(100); len(got) != 4 {
		t.Fatalf("TopK(100) = %v", got)
	}
}

func TestEntriesSorted(t *testing.T) {
	v := Vector{9: 1, 1: 2, 5: 3}
	es := v.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			t.Fatalf("Entries not sorted: %v", es)
		}
	}
}

func randVec(rng *rand.Rand, dims, nnz int) Vector {
	v := New(nnz)
	for i := 0; i < nnz; i++ {
		v[int32(rng.Intn(dims))] = rng.Float64()*2 - 1
	}
	return v
}

// Property: cosine similarity is bounded, symmetric, and self-similarity
// is 1 for any non-zero vector.
func TestCosineProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, 50, 10)
		b := randVec(rng, 50, 10)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		s1, ok1 := Cosine(a, b)
		s2, ok2 := Cosine(b, a)
		if ok1 != ok2 || (ok1 && !almost(s1, s2)) {
			return false
		}
		if ok1 && (s1 < -1 || s1 > 1) {
			return false
		}
		if self, ok := Cosine(a, a); a.Norm() > 0 && (!ok || !almost(self, 1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms of
// either argument (scale > 0, shift arbitrary) on the overlap.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, 20, 12)
		b := randVec(rng, 20, 12)
		s1, ok1 := Pearson(a, b)
		if !ok1 {
			return true
		}
		scale, shift := rng.Float64()*5+0.1, rng.Float64()*10-5
		a2 := New(len(a))
		for k, x := range a {
			a2[k] = scale*x + shift
		}
		s2, ok2 := Pearson(a2, b)
		return ok2 && math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling both vectors leaves cosine unchanged.
func TestCosineScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, 30, 8)
		b := randVec(rng, 30, 8)
		s1, ok1 := Cosine(a, b)
		if !ok1 {
			return true
		}
		s2, ok2 := Cosine(a.Clone().Scale(3.7), b.Clone().Scale(0.2))
		return ok2 && math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKTieDeterminism stresses the tie rule: Go map iteration order is
// randomized per traversal, so without the explicit key tiebreak a vector
// with duplicated values would return different prefixes run to run. The
// result must be identical across repeated calls and equal to the k-prefix
// of the fully sorted entry list.
func TestTopKTieDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		v := New(0)
		// Quantize values onto a few levels to force heavy ties.
		for i := 0; i < 200; i++ {
			v.Add(int32(rng.Intn(1000)), float64(rng.Intn(4))/4)
		}
		full := v.TopK(0)
		for i := 1; i < len(full); i++ {
			a, b := full[i-1], full[i]
			if a.Value < b.Value || (a.Value == b.Value && a.Key >= b.Key) {
				t.Fatalf("trial %d: order violated at %d: %v then %v", trial, i, a, b)
			}
		}
		for _, k := range []int{1, 3, 17, len(full)} {
			for rep := 0; rep < 5; rep++ {
				got := v.TopK(k)
				if len(got) != k {
					t.Fatalf("trial %d: TopK(%d) returned %d entries", trial, k, len(got))
				}
				for i := range got {
					if got[i] != full[i] {
						t.Fatalf("trial %d rep %d: TopK(%d)[%d] = %v, want %v (ties must break by key)",
							trial, rep, k, i, got[i], full[i])
					}
				}
			}
		}
	}
}
