// Package sparse provides sparse float64 vectors keyed by int32 indices,
// plus the similarity measures the paper's collaborative filtering uses:
// Pearson's correlation coefficient [6,3] and the cosine distance from
// Information Retrieval (§3.3).
//
// Profile vectors over a 20,000-topic taxonomy are overwhelmingly sparse,
// so all operations run over the stored entries only. The semantics of
// "missing" differ per measure and follow the recommender-systems
// literature: Pearson is computed over the *overlap* of the two vectors
// (co-rated dimensions), whereas cosine treats missing entries as zero.
package sparse

import (
	"math"
	"sort"
)

// Vector is a sparse map from dimension index to value. The zero value is
// an empty vector; use make or New for pre-sizing.
type Vector map[int32]float64

// New returns an empty vector with capacity hint n.
func New(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for k, x := range v {
		c[k] = x
	}
	return c
}

// Add accumulates x into dimension k.
func (v Vector) Add(k int32, x float64) { v[k] += x }

// Scale multiplies every stored entry by f in place and returns v.
func (v Vector) Scale(f float64) Vector {
	for k := range v {
		v[k] *= f
	}
	return v
}

// Sum returns the sum of all stored entries.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm returns the Euclidean norm over stored entries.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product, iterating over the smaller operand.
func Dot(a, b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for k, x := range a {
		if y, ok := b[k]; ok {
			s += x * y
		}
	}
	return s
}

// Overlap returns the number of dimensions present in both vectors.
func Overlap(a, b Vector) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

// Cosine returns the cosine similarity in [-1, 1], treating missing
// entries as zero. ok is false when either vector has zero norm (the
// measure is undefined, the ⊥ of §3.1 carried through).
func Cosine(a, b Vector) (sim float64, ok bool) {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0, false
	}
	return clamp(Dot(a, b) / (na * nb)), true
}

// Pearson returns Pearson's correlation coefficient over the co-present
// dimensions of a and b, the classic collaborative-filtering similarity
// [Shardanand & Maes 1995]. ok is false when fewer than two dimensions
// overlap or either restricted vector has zero variance — exactly the
// "low profile overlap" failure mode the paper's taxonomy profiles remedy.
func Pearson(a, b Vector) (sim float64, ok bool) {
	if len(b) < len(a) {
		a, b = b, a
	}
	var n int
	var sa, sb float64
	for k, x := range a {
		if y, okk := b[k]; okk {
			n++
			sa += x
			sb += y
		}
	}
	if n < 2 {
		return 0, false
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for k, x := range a {
		if y, okk := b[k]; okk {
			cov += (x - ma) * (y - mb)
			va += (x - ma) * (x - ma)
			vb += (y - mb) * (y - mb)
		}
	}
	if va == 0 || vb == 0 {
		return 0, false
	}
	return clamp(cov / math.Sqrt(va*vb)), true
}

// clamp bounds floating-point drift into [-1, 1].
func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// Entry is one (dimension, value) pair, used for ordered extraction.
type Entry struct {
	Key   int32
	Value float64
}

// TopK returns the k largest entries by value (ties broken by key, for
// determinism), descending. k <= 0 or k >= len(v) returns all entries.
func (v Vector) TopK(k int) []Entry {
	out := make([]Entry, 0, len(v))
	for key, x := range v {
		out = append(out, Entry{Key: key, Value: x})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Entries returns all entries sorted by key ascending.
func (v Vector) Entries() []Entry {
	out := make([]Entry, 0, len(v))
	for key, x := range v {
		out = append(out, Entry{Key: key, Value: x})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
