// Package isbn implements International Standard Book Numbers, the
// globally accepted product identifiers the paper relies on for books
// (§3.1, §4): validation, check-digit computation, ISBN-10 ↔ ISBN-13
// conversion, URN formatting, and deterministic generation for synthetic
// catalogs.
package isbn

import (
	"errors"
	"fmt"
	"strings"
)

var (
	// ErrInvalid is returned for malformed or checksum-failing ISBNs.
	ErrInvalid = errors.New("isbn: invalid ISBN")
)

// clean strips the separators allowed in printed ISBNs.
func clean(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if r == '-' || r == ' ' {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// CheckDigit10 computes the ISBN-10 check character ('0'-'9' or 'X') for
// the first nine digits.
func CheckDigit10(first9 string) (byte, error) {
	if len(first9) != 9 {
		return 0, fmt.Errorf("%w: need 9 digits, got %d", ErrInvalid, len(first9))
	}
	sum := 0
	for i := 0; i < 9; i++ {
		d := first9[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("%w: non-digit %q", ErrInvalid, d)
		}
		sum += (10 - i) * int(d-'0')
	}
	r := (11 - sum%11) % 11
	if r == 10 {
		return 'X', nil
	}
	return byte('0' + r), nil
}

// CheckDigit13 computes the ISBN-13 (EAN-13) check digit for the first
// twelve digits.
func CheckDigit13(first12 string) (byte, error) {
	if len(first12) != 12 {
		return 0, fmt.Errorf("%w: need 12 digits, got %d", ErrInvalid, len(first12))
	}
	sum := 0
	for i := 0; i < 12; i++ {
		d := first12[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("%w: non-digit %q", ErrInvalid, d)
		}
		w := 1
		if i%2 == 1 {
			w = 3
		}
		sum += w * int(d-'0')
	}
	return byte('0' + (10-sum%10)%10), nil
}

// Valid reports whether s is a well-formed ISBN-10 or ISBN-13 (separators
// allowed).
func Valid(s string) bool {
	s = clean(s)
	switch len(s) {
	case 10:
		cd, err := CheckDigit10(s[:9])
		if err != nil {
			return false
		}
		last := s[9]
		if last == 'x' {
			last = 'X'
		}
		return last == cd
	case 13:
		cd, err := CheckDigit13(s[:12])
		return err == nil && s[12] == cd
	default:
		return false
	}
}

// To13 converts an ISBN-10 to its ISBN-13 form (978 prefix). The input is
// validated.
func To13(isbn10 string) (string, error) {
	s := clean(isbn10)
	if len(s) != 10 || !Valid(s) {
		return "", fmt.Errorf("%w: %q is not a valid ISBN-10", ErrInvalid, isbn10)
	}
	first12 := "978" + s[:9]
	cd, err := CheckDigit13(first12)
	if err != nil {
		return "", err
	}
	return first12 + string(cd), nil
}

// To10 converts a 978-prefixed ISBN-13 back to ISBN-10. 979-prefixed
// ISBNs have no ISBN-10 form and are rejected.
func To10(isbn13 string) (string, error) {
	s := clean(isbn13)
	if len(s) != 13 || !Valid(s) {
		return "", fmt.Errorf("%w: %q is not a valid ISBN-13", ErrInvalid, isbn13)
	}
	if !strings.HasPrefix(s, "978") {
		return "", fmt.Errorf("%w: %q has no ISBN-10 form (prefix %s)", ErrInvalid, isbn13, s[:3])
	}
	first9 := s[3:12]
	cd, err := CheckDigit10(first9)
	if err != nil {
		return "", err
	}
	return first9 + string(cd), nil
}

// URN formats an ISBN as the "urn:isbn:..." identifier used for product
// IDs in the information model.
func URN(isbn string) string { return "urn:isbn:" + clean(isbn) }

// FromURN extracts the bare ISBN from a urn:isbn: identifier.
func FromURN(urn string) (string, bool) {
	s, ok := strings.CutPrefix(urn, "urn:isbn:")
	return s, ok
}

// Synthesize deterministically derives a valid ISBN-13 from a sequence
// number, for synthetic catalogs (uses the 978-2000xxxxx range; the group
// is fictional but check-digit valid).
func Synthesize(seq int) string {
	if seq < 0 {
		seq = -seq
	}
	first12 := fmt.Sprintf("9782%08d", seq%100000000)
	cd, err := CheckDigit13(first12)
	if err != nil {
		// Unreachable: first12 is always 12 digits by construction.
		panic(err)
	}
	return first12 + string(cd)
}
