package isbn

import (
	"testing"
	"testing/quick"
)

func TestValidKnownISBNs(t *testing.T) {
	// Real-world ISBNs of the four books from Example 1 (§3.3).
	valid := []string{
		"0-521-38632-2",     // Horn & Johnson, Matrix Analysis (ISBN-10)
		"0-8027-1331-9",     // Singh, Fermat's Enigma
		"0-553-38095-8",     // Stephenson, Snow Crash
		"0-441-56956-0",     // Gibson, Neuromancer
		"978-0-521-38632-6", // Matrix Analysis (ISBN-13)
		"097522980X",        // X check digit
		"097522980x",        // lowercase x accepted
	}
	for _, s := range valid {
		if !Valid(s) {
			t.Errorf("Valid(%q) = false, want true", s)
		}
	}
	invalid := []string{
		"",
		"0-521-38632-3",     // wrong check digit
		"978-0-521-38632-7", // wrong check digit
		"12345",             // wrong length
		"0521A86322",        // non-digit
		"05213863220000",    // 14 chars
	}
	for _, s := range invalid {
		if Valid(s) {
			t.Errorf("Valid(%q) = true, want false", s)
		}
	}
}

func TestCheckDigits(t *testing.T) {
	if cd, err := CheckDigit10("052138632"); err != nil || cd != '2' {
		t.Fatalf("CheckDigit10 = %c,%v, want 2", cd, err)
	}
	if cd, err := CheckDigit13("978052138632"); err != nil || cd != '6' {
		t.Fatalf("CheckDigit13 = %c,%v, want 6", cd, err)
	}
	if _, err := CheckDigit10("12345678"); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := CheckDigit13("12345678901a"); err == nil {
		t.Fatal("non-digit accepted")
	}
}

func TestConversionRoundTrip(t *testing.T) {
	got13, err := To13("0521386322")
	if err != nil || got13 != "9780521386326" {
		t.Fatalf("To13 = %q,%v", got13, err)
	}
	got10, err := To10("978-0-521-38632-6")
	if err != nil || got10 != "0521386322" {
		t.Fatalf("To10 = %q,%v", got10, err)
	}
	if _, err := To10("9791234567896"); err == nil {
		t.Fatal("979 prefix must be rejected for To10")
	}
	if _, err := To13("badisbn"); err == nil {
		t.Fatal("invalid input accepted by To13")
	}
	if _, err := To10("badisbn"); err == nil {
		t.Fatal("invalid input accepted by To10")
	}
}

func TestURN(t *testing.T) {
	if got := URN("978-0-521-38632-6"); got != "urn:isbn:9780521386326" {
		t.Fatalf("URN = %q", got)
	}
	s, ok := FromURN("urn:isbn:9780521386326")
	if !ok || s != "9780521386326" {
		t.Fatalf("FromURN = %q,%v", s, ok)
	}
	if _, ok := FromURN("urn:issn:123"); ok {
		t.Fatal("FromURN accepted wrong scheme")
	}
}

// Property: every synthesized ISBN is valid and distinct per sequence
// number within the range.
func TestSynthesizeProperty(t *testing.T) {
	f := func(seq int) bool {
		s := Synthesize(seq)
		return len(s) == 13 && Valid(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		s := Synthesize(i)
		if seen[s] {
			t.Fatalf("duplicate synthesized ISBN at %d: %s", i, s)
		}
		seen[s] = true
	}
}

// Property: To13 ∘ To10 is the identity on valid 978 ISBN-13s.
func TestConversionInverseProperty(t *testing.T) {
	f := func(seq int) bool {
		s13 := Synthesize(seq)
		s10, err := To10(s13)
		if err != nil {
			return false
		}
		back, err := To13(s10)
		return err == nil && back == s13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
