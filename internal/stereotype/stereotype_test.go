package stereotype

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"swrec/internal/cf"
	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/sparse"
)

// syntheticProfiles builds nClusters well-separated profile groups with
// nPer members each: cluster k has mass on dimensions [k*10, k*10+3).
func syntheticProfiles(nClusters, nPer int) ([]model.AgentID, ProfileFunc, map[model.AgentID]int) {
	profiles := map[model.AgentID]sparse.Vector{}
	truth := map[model.AgentID]int{}
	var ids []model.AgentID
	for k := 0; k < nClusters; k++ {
		for i := 0; i < nPer; i++ {
			id := model.AgentID(string(rune('a'+k)) + "-" + string(rune('0'+i)))
			v := sparse.New(4)
			for d := 0; d < 3; d++ {
				v[int32(k*10+d)] = 1 + float64(i%3)*0.1
			}
			profiles[id] = v
			truth[id] = k
			ids = append(ids, id)
		}
	}
	return ids, func(id model.AgentID) sparse.Vector { return profiles[id] }, truth
}

func TestLearnRecoversClusters(t *testing.T) {
	ids, pf, truth := syntheticProfiles(4, 8)
	m, err := Learn(ids, pf, Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 4 {
		t.Fatalf("K = %d", m.K())
	}
	if got := m.Purity(truth); got != 1 {
		t.Fatalf("purity = %v, want 1 on perfectly separated clusters", got)
	}
	if m.Cohesion < 0.99 {
		t.Fatalf("cohesion = %v, want ≈1", m.Cohesion)
	}
	total := 0
	for _, s := range m.Sizes {
		total += s
	}
	if total != len(ids) {
		t.Fatalf("sizes sum %d != members %d", total, len(ids))
	}
}

func TestLearnDeterministic(t *testing.T) {
	ids, pf, _ := syntheticProfiles(3, 10)
	m1, err := Learn(ids, pf, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Learn(ids, pf, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for id, k := range m1.Assignment {
		if m2.Assignment[id] != k {
			t.Fatalf("nondeterministic assignment for %s", id)
		}
	}
}

func TestLearnErrors(t *testing.T) {
	ids, pf, _ := syntheticProfiles(2, 2)
	if _, err := Learn(ids, pf, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Learn(ids, pf, Options{K: 10}); !errors.Is(err, ErrTooFewProfiles) {
		t.Fatalf("got %v, want ErrTooFewProfiles", err)
	}
	// Empty profiles are skipped.
	empty := func(model.AgentID) sparse.Vector { return sparse.New(0) }
	if _, err := Learn(ids, empty, Options{K: 1}); !errors.Is(err, ErrTooFewProfiles) {
		t.Fatalf("got %v, want ErrTooFewProfiles for all-empty", err)
	}
}

func TestClassify(t *testing.T) {
	ids, pf, truth := syntheticProfiles(3, 6)
	m, err := Learn(ids, pf, Options{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh profile near cluster 1 classifies into the stereotype whose
	// members carry truth label 1.
	fresh := sparse.Vector{10: 1, 11: 0.9, 12: 1.1}
	k, sim, ok := m.Classify(fresh)
	if !ok || sim < 0.9 {
		t.Fatalf("Classify = %d,%v,%v", k, sim, ok)
	}
	for _, member := range m.Members(k) {
		if truth[member] != 1 {
			t.Fatalf("classified into stereotype containing member %s of cluster %d",
				member, truth[member])
		}
	}
	if _, _, ok := m.Classify(sparse.New(0)); ok {
		t.Fatal("empty profile must not classify")
	}
}

func TestTopTopics(t *testing.T) {
	ids, pf, _ := syntheticProfiles(2, 5)
	m, err := Learn(ids, pf, Options{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopTopics(0, 3)
	if len(top) != 3 {
		t.Fatalf("TopTopics = %d entries", len(top))
	}
	// The three top dimensions of one stereotype must be a contiguous
	// block k*10..k*10+2 for some cluster k.
	base := top[0].Topic / 10 * 10
	for _, tw := range top {
		if tw.Topic < base || tw.Topic > base+2 {
			t.Fatalf("TopTopics mixes clusters: %+v", top)
		}
		if tw.Weight <= 0 {
			t.Fatalf("non-positive weight: %+v", tw)
		}
	}
	if got := m.TopTopics(99, 3); got != nil {
		t.Fatal("out-of-range stereotype must return nil")
	}
}

func TestMembersSorted(t *testing.T) {
	ids, pf, _ := syntheticProfiles(2, 6)
	m, err := Learn(ids, pf, Options{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.K(); k++ {
		ms := m.Members(k)
		for i := 1; i < len(ms); i++ {
			if ms[i-1] >= ms[i] {
				t.Fatalf("Members(%d) not sorted: %v", k, ms)
			}
		}
	}
}

// TestOnGeneratedCommunity: stereotypes learned from taxonomy profiles
// recover the datagen interest clusters far better than chance.
func TestOnGeneratedCommunity(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.ClusterFidelity = 0.95
	comm, meta := datagen.Generate(cfg)
	f, err := cf.New(comm, cf.Options{Representation: cf.Taxonomy})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Learn(comm.Agents(), f.ProfileOf, Options{K: cfg.Clusters, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	purity := m.Purity(meta.AgentCluster)
	chance := 1.0 / float64(cfg.Clusters)
	if purity < 2.5*chance {
		t.Fatalf("purity %v barely beats chance %v", purity, chance)
	}
}

// Property: purity is in (0,1], sizes are non-negative and sum to the
// assignment count, and every centroid is unit-normalized.
func TestModelInvariantsProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		ids, pf, truth := syntheticProfiles(4, 6)
		m, err := Learn(ids, pf, Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		total := 0
		for _, s := range m.Sizes {
			if s < 0 {
				return false
			}
			total += s
		}
		if total != len(m.Assignment) {
			return false
		}
		p := m.Purity(truth)
		if p <= 0 || p > 1 {
			return false
		}
		for _, c := range m.Centroids {
			if math.Abs(c.Norm()-1) > 1e-6 {
				return false
			}
		}
		return m.Cohesion > 0 && m.Cohesion <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
