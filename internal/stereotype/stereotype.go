// Package stereotype implements the §6 future-work direction the paper
// names explicitly: "we are currently investigating applicability of
// taxonomy-based profile generation for automated stereotype generation
// and efficient behavior modelling."
//
// A stereotype is a prototypical interest profile — a centroid over the
// taxonomy score space. The package learns K stereotypes from a
// community's taxonomy profiles with spherical k-means (cosine
// similarity, k-means++-style seeding, deterministic given a seed) and
// supports:
//
//   - behavior modelling: describing each stereotype by its dominant
//     taxonomy branches (TopTopics) and measuring cluster quality
//     (Cohesion, and purity against ground truth in the experiments);
//   - efficient pre-filtering: restricting collaborative filtering to
//     the active agent's own stereotype — the latency-problem remedy
//     category-based filtering aims at (Sollenborn & Funk [14]), rebuilt
//     on taxonomy profiles.
package stereotype

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"swrec/internal/model"
	"swrec/internal/sparse"
)

var (
	// ErrTooFewProfiles is returned when fewer non-empty profiles exist
	// than requested stereotypes.
	ErrTooFewProfiles = errors.New("stereotype: fewer non-empty profiles than stereotypes")
)

// Options parameterize learning.
type Options struct {
	// K is the number of stereotypes. Required, ≥ 1.
	K int
	// MaxIterations bounds the k-means loop. Default 50.
	MaxIterations int
	// Seed drives centroid initialization. Default 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Model is a learned set of stereotypes.
type Model struct {
	// Centroids are the stereotype profiles, unit-normalized.
	Centroids []sparse.Vector
	// Assignment maps each learned agent to its stereotype index.
	Assignment map[model.AgentID]int
	// Sizes[k] is the number of members of stereotype k.
	Sizes []int
	// Iterations the k-means loop ran until convergence or the cap.
	Iterations int
	// Cohesion is the mean cosine similarity of members to their own
	// centroid — the tightness of the behavior model.
	Cohesion float64
}

// ProfileFunc resolves an agent's interest profile (typically
// cf.Filter.ProfileOf or profile.Generator.Profile).
type ProfileFunc func(model.AgentID) sparse.Vector

// Learn clusters the agents' profiles into opt.K stereotypes. Agents
// with empty profiles are skipped (they carry no behavior to model).
func Learn(ids []model.AgentID, profileOf ProfileFunc, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	if opt.K < 1 {
		return nil, fmt.Errorf("stereotype: K must be >= 1, got %d", opt.K)
	}

	// Collect unit-normalized profiles.
	type member struct {
		id model.AgentID
		v  sparse.Vector
	}
	var members []member
	for _, id := range ids {
		v := profileOf(id)
		if n := v.Norm(); n > 0 {
			members = append(members, member{id: id, v: v.Clone().Scale(1 / n)})
		}
	}
	if len(members) < opt.K {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewProfiles, len(members), opt.K)
	}

	// k-means++-style seeding: first centroid uniform, then proportional
	// to (1 - maxSim)² against chosen centroids.
	rng := rand.New(rand.NewSource(opt.Seed))
	centroids := make([]sparse.Vector, 0, opt.K)
	centroids = append(centroids, members[rng.Intn(len(members))].v.Clone())
	dist := make([]float64, len(members))
	for len(centroids) < opt.K {
		total := 0.0
		for i, m := range members {
			best := 0.0
			for _, c := range centroids {
				if s := sparse.Dot(m.v, c); s > best {
					best = s
				}
			}
			d := 1 - best
			dist[i] = d * d
			total += dist[i]
		}
		pick := len(members) - 1
		if total > 0 {
			r := rng.Float64() * total
			for i := range members {
				r -= dist[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(members))
		}
		centroids = append(centroids, members[pick].v.Clone())
	}

	// Lloyd iterations with cosine assignment and renormalized mean
	// centroids (spherical k-means).
	assign := make([]int, len(members))
	for i := range assign {
		assign[i] = -1
	}
	iterations := 0
	for ; iterations < opt.MaxIterations; iterations++ {
		changed := false
		for i, m := range members {
			bestK, bestS := 0, math.Inf(-1)
			for k, c := range centroids {
				if s := sparse.Dot(m.v, c); s > bestS {
					bestS, bestK = s, k
				}
			}
			if assign[i] != bestK {
				assign[i] = bestK
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids as renormalized member means; empty
		// clusters are reseeded from the farthest member.
		sums := make([]sparse.Vector, opt.K)
		counts := make([]int, opt.K)
		for k := range sums {
			sums[k] = sparse.New(16)
		}
		for i, m := range members {
			k := assign[i]
			counts[k]++
			for dim, x := range m.v {
				sums[k].Add(dim, x)
			}
		}
		for k := range centroids {
			if counts[k] == 0 {
				worst, worstSim := 0, math.Inf(1)
				for i, m := range members {
					if s := sparse.Dot(m.v, centroids[assign[i]]); s < worstSim {
						worstSim, worst = s, i
					}
				}
				centroids[k] = members[worst].v.Clone()
				continue
			}
			if n := sums[k].Norm(); n > 0 {
				centroids[k] = sums[k].Scale(1 / n)
			}
		}
	}

	m := &Model{
		Centroids:  centroids,
		Assignment: make(map[model.AgentID]int, len(members)),
		Sizes:      make([]int, opt.K),
		Iterations: iterations,
	}
	var cohesion float64
	for i, mem := range members {
		k := assign[i]
		m.Assignment[mem.id] = k
		m.Sizes[k]++
		cohesion += sparse.Dot(mem.v, centroids[k])
	}
	m.Cohesion = cohesion / float64(len(members))
	return m, nil
}

// K returns the number of stereotypes.
func (m *Model) K() int { return len(m.Centroids) }

// Classify returns the nearest stereotype for an arbitrary profile and
// the cosine similarity to its centroid; ok is false for empty profiles.
// This is the "behavior modelling" entry point for agents that were not
// part of the learning set (e.g. fresh crawl arrivals).
func (m *Model) Classify(v sparse.Vector) (k int, sim float64, ok bool) {
	n := v.Norm()
	if n == 0 {
		return 0, 0, false
	}
	bestK, bestS := 0, math.Inf(-1)
	for i, c := range m.Centroids {
		if s := sparse.Dot(v, c) / n; s > bestS {
			bestS, bestK = s, i
		}
	}
	return bestK, bestS, true
}

// Members returns the learned members of stereotype k, sorted by ID.
func (m *Model) Members(k int) []model.AgentID {
	var out []model.AgentID
	for id, kk := range m.Assignment {
		if kk == k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopicWeight is one (topic dimension, weight) pair of a stereotype
// description.
type TopicWeight struct {
	Topic  int32
	Weight float64
}

// TopTopics describes stereotype k by its n heaviest taxonomy dimensions
// — the prototype's dominant interest branches.
func (m *Model) TopTopics(k, n int) []TopicWeight {
	if k < 0 || k >= len(m.Centroids) {
		return nil
	}
	var out []TopicWeight
	for _, e := range m.Centroids[k].TopK(n) {
		out = append(out, TopicWeight{Topic: e.Key, Weight: e.Value})
	}
	return out
}

// Purity measures the model against a ground-truth labeling: the
// weighted fraction of each stereotype's members that share its majority
// label. 1 means stereotypes reproduce the ground truth exactly.
func (m *Model) Purity(truth map[model.AgentID]int) float64 {
	if len(m.Assignment) == 0 {
		return 0
	}
	majority := make([]map[int]int, m.K())
	for k := range majority {
		majority[k] = map[int]int{}
	}
	for id, k := range m.Assignment {
		majority[k][truth[id]]++
	}
	correct := 0
	for k := range majority {
		best := 0
		for _, n := range majority[k] {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(m.Assignment))
}
