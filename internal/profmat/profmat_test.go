package profmat

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
)

const dims = 256

// randVector draws a sparse vector over [0,dims) with nnz entries;
// values are quantized so cross-vector ties and exact overlaps occur.
func randVector(rng *rand.Rand, nnz int) sparse.Vector {
	v := sparse.New(nnz)
	for i := 0; i < nnz; i++ {
		v.Add(int32(rng.Intn(dims)), float64(rng.Intn(21)-10)/4)
	}
	return v
}

// TestKernelsMatchSparseDifferential is the differential property test:
// for random (and degenerate) vector pairs, the compiled merge-join
// kernels must agree with the map-based sparse kernels — exactly on the
// ok flag, within 1e-12 on the similarity.
func TestKernelsMatchSparseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pairs := make([][2]sparse.Vector, 0, 300)
	for i := 0; i < 280; i++ {
		pairs = append(pairs, [2]sparse.Vector{
			randVector(rng, rng.Intn(60)),
			randVector(rng, rng.Intn(60)),
		})
	}
	// Degenerate shapes: empty vs empty, empty vs dense, identical,
	// single-dimension overlap, explicit-zero entries (zero norm), and
	// constant vectors (zero Pearson variance).
	empty := sparse.New(0)
	one := sparse.New(1)
	one.Add(7, 3)
	zeroed := sparse.New(2)
	zeroed.Add(3, 0)
	zeroed.Add(9, 0)
	flat := sparse.New(3)
	flat.Add(1, 2)
	flat.Add(5, 2)
	flat.Add(9, 2)
	shared := randVector(rng, 30)
	pairs = append(pairs,
		[2]sparse.Vector{empty, empty},
		[2]sparse.Vector{empty, shared},
		[2]sparse.Vector{shared, shared.Clone()},
		[2]sparse.Vector{one, one.Clone()},
		[2]sparse.Vector{one, shared},
		[2]sparse.Vector{zeroed, shared},
		[2]sparse.Vector{zeroed, zeroed.Clone()},
		[2]sparse.Vector{flat, flat.Clone()},
		[2]sparse.Vector{flat, shared},
	)

	for i, p := range pairs {
		ra, rb := FromVector(p[0]), FromVector(p[1])
		if dot, want := Dot(&ra, &rb), sparse.Dot(p[0], p[1]); !close12(dot, want) {
			t.Fatalf("pair %d: Dot = %v, sparse %v", i, dot, want)
		}
		if ov, want := Overlap(&ra, &rb), sparse.Overlap(p[0], p[1]); ov != want {
			t.Fatalf("pair %d: Overlap = %d, sparse %d", i, ov, want)
		}
		cs, csOK := Cosine(&ra, &rb)
		wcs, wcsOK := sparse.Cosine(p[0], p[1])
		if csOK != wcsOK || !close12(cs, wcs) {
			t.Fatalf("pair %d: Cosine = (%v,%v), sparse (%v,%v)", i, cs, csOK, wcs, wcsOK)
		}
		pe, peOK := Pearson(&ra, &rb)
		wpe, wpeOK := sparse.Pearson(p[0], p[1])
		if peOK != wpeOK || !close12(pe, wpe) {
			t.Fatalf("pair %d: Pearson = (%v,%v), sparse (%v,%v)", i, pe, peOK, wpe, wpeOK)
		}
	}
}

// close12 tolerates 1e-12 absolute or relative: sparse.Vector aggregates
// accumulate in map-iteration order, so for magnitudes ≫ 1 the run-to-run
// wobble scales with the value, not with an absolute constant.
func close12(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12 || d <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// TestScratchMatchesMergeJoinExactly pins the dense-scatter batch
// kernels to the merge-join ones bit for bit: Load + CosineTo/PearsonTo
// accumulate the same products in the same ascending-dimension order, so
// no tolerance is needed or granted.
func TestScratchMatchesMergeJoinExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := NewScratch(dims)
	for i := 0; i < 200; i++ {
		a := FromVector(randVector(rng, rng.Intn(80)))
		sc.Load(&a)
		for j := 0; j < 5; j++ {
			b := FromVector(randVector(rng, rng.Intn(80)))
			cs, csOK := sc.CosineTo(&b)
			wcs, wcsOK := Cosine(&a, &b)
			if cs != wcs || csOK != wcsOK {
				t.Fatalf("CosineTo = (%v,%v), merge-join (%v,%v)", cs, csOK, wcs, wcsOK)
			}
			pe, peOK := sc.PearsonTo(&b)
			wpe, wpeOK := Pearson(&a, &b)
			if pe != wpe || peOK != wpeOK {
				t.Fatalf("PearsonTo = (%v,%v), merge-join (%v,%v)", pe, peOK, wpe, wpeOK)
			}
		}
	}
}

func benchCommunity(t testing.TB) *model.Community {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = 60
	cfg.Products = 120
	comm, _ := datagen.Generate(cfg)
	return comm
}

// TestBuildMatchesGeneratorProfiles checks the compiled rows against the
// map-based profile generator they claim to mirror: same dimensions,
// bit-identical scores (the dense accumulation replays the generator's
// exact increment stream), and consistent norm/sum aggregates.
func TestBuildMatchesGeneratorProfiles(t *testing.T) {
	comm := benchCommunity(t)
	gen := profile.New(comm.Taxonomy())
	mat, err := Build(context.Background(), comm, gen, comm.Taxonomy().Len(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Len() != comm.NumAgents() || mat.Built() != comm.NumAgents() {
		t.Fatalf("matrix len=%d built=%d, want %d", mat.Len(), mat.Built(), comm.NumAgents())
	}
	for _, id := range comm.Agents() {
		row := mat.Row(comm.Agent(id).Ord())
		if row == nil {
			t.Fatalf("agent %s missing from matrix", id)
		}
		want := gen.Profile(comm.Agent(id), comm).Entries()
		if len(want) != row.NNZ() {
			t.Fatalf("agent %s: nnz %d, generator %d", id, row.NNZ(), len(want))
		}
		for i, e := range want {
			if row.Keys[i] != e.Key || row.Vals[i] != e.Value {
				t.Fatalf("agent %s dim %d: (%d,%v), generator (%d,%v)",
					id, i, row.Keys[i], row.Vals[i], e.Key, e.Value)
			}
		}
		v := sparse.New(row.NNZ())
		for i, k := range row.Keys {
			v.Add(k, row.Vals[i])
		}
		if !close12(row.Norm, v.Norm()) || !close12(row.Sum, v.Sum()) {
			t.Fatalf("agent %s: norm/sum (%v,%v) vs (%v,%v)", id, row.Norm, row.Sum, v.Norm(), v.Sum())
		}
	}
}

// TestBuildDeltaCarriesCleanRows pins the epoch-swap fast path: rows of
// clean agents are carried into the new matrix by value (aliasing the
// previous arenas), and only dirty agents are recompiled.
func TestBuildDeltaCarriesCleanRows(t *testing.T) {
	comm := benchCommunity(t)
	gen := profile.New(comm.Taxonomy())
	tlen := comm.Taxonomy().Len()
	prev, err := Build(context.Background(), comm, gen, tlen, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirtyID := comm.Agents()[5]
	dirtyOrd := comm.Agent(dirtyID).Ord()
	next, err := BuildDelta(context.Background(), comm, gen, tlen, 0, prev,
		func(ord int32) bool { return ord == dirtyOrd })
	if err != nil {
		t.Fatal(err)
	}
	if next.Built() != 1 {
		t.Fatalf("Built = %d, want 1", next.Built())
	}
	for _, id := range comm.Agents() {
		ord := comm.Agent(id).Ord()
		pr, nr := prev.Row(ord), next.Row(ord)
		if nr.NNZ() != pr.NNZ() {
			t.Fatalf("agent %s: nnz changed %d -> %d", id, pr.NNZ(), nr.NNZ())
		}
		for i := range nr.Keys {
			if nr.Keys[i] != pr.Keys[i] || nr.Vals[i] != pr.Vals[i] {
				t.Fatalf("agent %s: entry %d differs after delta build", id, i)
			}
		}
		carried := pr.NNZ() > 0 && nr.NNZ() > 0 && &pr.Vals[0] == &nr.Vals[0]
		if id == dirtyID && carried {
			t.Fatalf("dirty agent %s aliases the previous arena", id)
		}
		if id != dirtyID && pr.NNZ() > 0 && !carried {
			t.Fatalf("clean agent %s was recompiled", id)
		}
	}
}

// TestBuildDeterministicAcrossWorkerCounts: the compiled contents must
// not depend on parallelism.
func TestBuildDeterministicAcrossWorkerCounts(t *testing.T) {
	comm := benchCommunity(t)
	gen := profile.New(comm.Taxonomy())
	tlen := comm.Taxonomy().Len()
	base, err := Build(context.Background(), comm, gen, tlen, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		m, err := Build(context.Background(), comm, gen, tlen, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range comm.Agents() {
			ord := comm.Agent(id).Ord()
			a, b := base.Row(ord), m.Row(ord)
			if a.NNZ() != b.NNZ() || a.Norm != b.Norm || a.Sum != b.Sum {
				t.Fatalf("workers=%d agent %s: row differs", workers, id)
			}
			for i := range a.Keys {
				if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
					t.Fatalf("workers=%d agent %s entry %d differs", workers, id, i)
				}
			}
		}
	}
}
