package profmat

import "swrec/internal/model"

// Restore adopts pre-built rows (e.g. decoded from a checkpoint) as a
// matrix over ids, with rows[i] belonging to ids[i]. The rows are taken
// by reference — the caller hands over ownership of their backing
// arenas. Built reports 0: nothing was compiled, everything was carried.
func Restore(ids []model.AgentID, rows []Row) *Matrix {
	m := &Matrix{
		idx:  make(map[model.AgentID]int32, len(ids)),
		rows: rows,
	}
	for i, id := range ids {
		m.idx[id] = int32(i)
	}
	return m
}
