package profmat

// Restore adopts pre-built rows (e.g. decoded from a checkpoint) as a
// matrix, with rows[i] belonging to the agent with community ordinal i —
// the same positional contract BuildDelta produces, so a checkpoint that
// encodes rows in community order restores without any id translation.
// The rows are taken by reference — the caller hands over ownership of
// their backing arenas. Built reports 0: nothing was compiled,
// everything was carried.
func Restore(rows []Row) *Matrix {
	return &Matrix{rows: rows}
}
