// Package profmat compiles a community's taxonomy interest profiles
// (internal/profile, Eq. 3) into a per-snapshot CSR matrix: one row per
// agent, sorted int32 topic dimensions beside float64 scores in shared
// backing arenas, with the row norm, entry sum and nnz precomputed. The
// map-based sparse.Vector representation is ideal for incremental
// accumulation but pays a hash lookup per touched dimension and a heap
// allocation per profile; the compiled form costs one dense-scratch pass
// per agent at snapshot build time and makes every later similarity a
// zero-allocation merge-join over two sorted postings lists.
//
// Rows are immutable once built. Delta rebuilds (BuildDelta) carry the
// unchanged rows of the previous matrix by value — the carried slices
// alias the old arenas, which the garbage collector keeps alive for as
// long as any row references them — so an epoch swap after a small ingest
// batch recompiles only the dirty agents.
package profmat

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/sparse"
)

// Row is one agent's compiled profile: parallel slices of sorted
// dimension ids and scores, plus the aggregates every similarity kernel
// would otherwise recompute. The zero value is an empty profile.
type Row struct {
	Keys []int32   // sorted ascending, no duplicates
	Vals []float64 // Vals[i] is the score of dimension Keys[i]
	Norm float64   // Euclidean norm over the entries
	Sum  float64   // plain sum over the entries
}

// NNZ returns the number of stored dimensions.
func (r *Row) NNZ() int { return len(r.Keys) }

// Mean returns the mean over the stored entries (0 for an empty row).
func (r *Row) Mean() float64 {
	if len(r.Keys) == 0 {
		return 0
	}
	return r.Sum / float64(len(r.Keys))
}

// Matrix is the compiled profile matrix of one snapshot. It is immutable
// after Build/BuildDelta and safe for concurrent readers. It deliberately
// holds no reference to the community it was compiled from: rows are
// self-contained, so an old matrix pins only its own arenas, not an
// entire superseded epoch.
type Matrix struct {
	rows []Row
	// built counts the rows compiled from scratch (vs carried from a
	// previous matrix) — observability for the delta-swap path.
	built int
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return len(m.rows) }

// Built returns how many rows were compiled from scratch (the rest were
// carried over from the previous epoch's matrix).
func (m *Matrix) Built() int { return m.built }

// Row returns the compiled row of the agent with the given community
// ordinal, or nil when the ordinal is outside the compiled range. Rows
// are positional: row i is agent ordinal i of the source community, so
// the lookup is a bounds check, not a hash.
//
//swrec:hotpath
func (m *Matrix) Row(ord int32) *Row {
	if m == nil || ord < 0 || int(ord) >= len(m.rows) {
		return nil
	}
	return &m.rows[ord]
}

// Source is the community view Build compiles from; *model.Community
// satisfies it. Kept as an interface parameter (not a struct field) so a
// matrix never pins a community snapshot.
type Source interface {
	Agents() []model.AgentID
	Agent(model.AgentID) *model.Agent
	Product(model.ProductID) *model.Product
}

// builder is per-worker scratch: a dense score accumulator over the
// dimension space with a word-packed occupancy bitmap, so clearing
// between agents is O(dims/64) words and the gather pass enumerates the
// touched dimensions in ascending order straight off the bitmap — no
// per-agent sort, no full accumulator scan.
type builder struct {
	st   *profile.Streamer
	acc  []float64 // dense score accumulator, gated by bm
	bm   []uint64  // occupancy bitmap, one bit per dimension
	keys []int32   // arena this worker appends compiled keys into
	vals []float64
}

// rowCapHint sizes a worker's arenas up front: the expected nnz per row
// times the rows the worker will compile. Underestimates grow normally;
// the point is skipping the doubling churn from zero, which at 400
// agents a build otherwise re-copies the arenas ~15 times.
const rowCapHint = 48

func newBuilder(gen *profile.Generator, dims, nrows int) *builder {
	return &builder{
		st:   gen.NewStreamer(),
		acc:  make([]float64, dims),
		bm:   make([]uint64, (dims+63)/64),
		keys: make([]int32, 0, nrows*rowCapHint),
		vals: make([]float64, 0, nrows*rowCapHint),
	}
}

// compile builds agent a's row into the worker arenas and returns it.
// The accumulation order is exactly the Streamer's increment stream —
// the same order profile.ProfileCtx feeds its map — so the per-dimension
// totals are bit-identical to the map-based profile.
func (b *builder) compile(ctx context.Context, a *model.Agent, cat profile.Catalog) (Row, error) {
	clear(b.bm)
	if err := b.st.ProfileDense(ctx, a, cat, b.acc, b.bm); err != nil {
		return Row{}, err
	}
	start := len(b.keys)
	var norm2, sum float64
	for wi, w := range b.bm {
		base := int32(wi << 6)
		for w != 0 {
			d := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			v := b.acc[d]
			b.keys = append(b.keys, d)
			b.vals = append(b.vals, v)
			norm2 += v * v
			sum += v
		}
	}
	return Row{
		Keys: b.keys[start:len(b.keys):len(b.keys)],
		Vals: b.vals[start:len(b.vals):len(b.vals)],
		Norm: math.Sqrt(norm2),
		Sum:  sum,
	}, nil
}

// Build compiles every agent of src into a fresh matrix. dims is the
// dimension-space size (taxonomy length for taxonomy/flat-category
// profiles). workers bounds the compile parallelism; values below 1 mean
// GOMAXPROCS. The build is cancellable: on ctx expiry the partial matrix
// is discarded and ctx.Err() returned.
func Build(ctx context.Context, src Source, gen *profile.Generator, dims, workers int) (*Matrix, error) {
	return BuildDelta(ctx, src, gen, dims, workers, nil, nil)
}

// BuildDelta compiles a matrix carrying over the rows of prev for agent
// ordinals where dirty reports false. A nil prev or nil dirty compiles
// everything from scratch. Carried rows alias the previous arenas; dirty
// and new agents are recompiled. prev must come from an earlier epoch of
// the same community lineage: communities only append agents, so the
// previous matrix's rows are a prefix of the new one under identical
// ordinals, and any ordinal at or past prev.Len() is a new agent that
// compiles from scratch regardless of dirty.
func BuildDelta(ctx context.Context, src Source, gen *profile.Generator, dims, workers int, prev *Matrix, dirty func(int32) bool) (*Matrix, error) {
	ids := src.Agents()
	m := &Matrix{
		rows: make([]Row, len(ids)),
	}
	var todo []int32 // row indices (= agent ordinals) that need compiling
	for i := range ids {
		if prev != nil && dirty != nil && i < prev.Len() && !dirty(int32(i)) {
			m.rows[i] = prev.rows[i]
			continue
		}
		todo = append(todo, int32(i))
	}
	m.built = len(todo)
	if len(todo) == 0 {
		return m, nil
	}

	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		b := newBuilder(gen, dims, len(todo))
		for _, ri := range todo {
			row, err := b.compile(ctx, src.Agent(ids[ri]), src)
			if err != nil {
				return nil, err
			}
			m.rows[ri] = row
		}
		return m, nil
	}

	// Contiguous chunks, one builder (and arena pair) per worker: each
	// worker writes a disjoint range of m.rows, so no locking is needed,
	// and the compiled contents are deterministic regardless of
	// scheduling because every row depends only on its own agent.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(todo) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(todo))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			b := newBuilder(gen, dims, hi-lo)
			for _, ri := range todo[lo:hi] {
				row, err := b.compile(ctx, src.Agent(ids[ri]), src)
				if err != nil {
					errs[w] = err
					return
				}
				m.rows[ri] = row
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// FromVector compiles a single sparse vector into a standalone row —
// the bridge the differential tests and map-based fallbacks use.
func FromVector(v sparse.Vector) Row {
	es := v.Entries()
	r := Row{
		Keys: make([]int32, len(es)),
		Vals: make([]float64, len(es)),
	}
	var norm2 float64
	for i, e := range es {
		r.Keys[i] = e.Key
		r.Vals[i] = e.Value
		norm2 += e.Value * e.Value
		r.Sum += e.Value
	}
	r.Norm = math.Sqrt(norm2)
	return r
}

// Dot returns the inner product of two rows as a merge-join over the
// sorted postings — zero allocations, no hashing.
//
//swrec:hotpath
func Dot(a, b *Row) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka == kb:
			s += a.Vals[i] * b.Vals[j]
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	return s
}

// Overlap returns the number of dimensions present in both rows.
//
//swrec:hotpath
func Overlap(a, b *Row) int {
	n := 0
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka == kb:
			n++
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	return n
}

// Cosine is sparse.Cosine over compiled rows: missing entries count as
// zero, and ok is false when either norm is zero. The norms come from
// the precomputed row aggregates.
//
//swrec:hotpath
func Cosine(a, b *Row) (sim float64, ok bool) {
	if a.Norm == 0 || b.Norm == 0 {
		return 0, false
	}
	return clamp(Dot(a, b) / (a.Norm * b.Norm)), true
}

// Pearson is sparse.Pearson over compiled rows: the correlation over the
// co-present dimensions, undefined (ok=false) below two overlapping
// dimensions or under zero variance. Two merge passes, zero allocations.
//
//swrec:hotpath
func Pearson(a, b *Row) (sim float64, ok bool) {
	var n int
	var sa, sb float64
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka == kb:
			n++
			sa += a.Vals[i]
			sb += b.Vals[j]
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	if n < 2 {
		return 0, false
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	i, j = 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka == kb:
			x, y := a.Vals[i], b.Vals[j]
			cov += (x - ma) * (y - mb)
			va += (x - ma) * (x - ma)
			vb += (y - mb) * (y - mb)
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	if va == 0 || vb == 0 {
		return 0, false
	}
	return clamp(cov / math.Sqrt(va*vb)), true
}

// Scratch is a reusable dense image of one compiled row for batch
// similarity scans: Load scatters the row once, then CosineTo/PearsonTo
// against each peer run in a single pass over the peer's postings with
// O(1) lookups in place of the merge-join's two-cursor walk. The
// products and their summation order are identical to the merge-join
// kernels (ascending common-dimension order), so the results are
// bit-for-bit the same. Occupancy is generation-stamped, making a
// re-Load O(nnz). Load is not safe for concurrent use, but any number
// of goroutines may call CosineTo/PearsonTo concurrently after a Load —
// they only read.
type Scratch struct {
	vals  []float64
	stamp []int32
	gen   int32
	row   *Row // the loaded row, source of the precomputed norm
}

// NewScratch returns a scratch covering dims dimensions — every key of
// every row passed to Load/CosineTo/PearsonTo must be below dims.
func NewScratch(dims int) *Scratch {
	return &Scratch{vals: make([]float64, dims), stamp: make([]int32, dims)}
}

// Dims returns the dimension capacity.
func (s *Scratch) Dims() int { return len(s.vals) }

// Load scatters r into the dense image, replacing any previous load.
//
//swrec:hotpath
func (s *Scratch) Load(r *Row) {
	s.gen++
	if s.gen == 0 { // int32 wraparound: reset stamps once per 4G loads
		clear(s.stamp)
		s.gen = 1
	}
	for k, key := range r.Keys {
		s.vals[key] = r.Vals[k]
		s.stamp[key] = s.gen
	}
	s.row = r
}

// CosineTo returns Cosine(loaded, b).
//
//swrec:hotpath
func (s *Scratch) CosineTo(b *Row) (sim float64, ok bool) {
	a := s.row
	if a.Norm == 0 || b.Norm == 0 {
		return 0, false
	}
	g := s.gen
	var dot float64
	for k, key := range b.Keys {
		if s.stamp[key] == g {
			dot += s.vals[key] * b.Vals[k]
		}
	}
	return clamp(dot / (a.Norm * b.Norm)), true
}

// PearsonTo returns Pearson(loaded, b).
//
//swrec:hotpath
func (s *Scratch) PearsonTo(b *Row) (sim float64, ok bool) {
	g := s.gen
	var n int
	var sa, sb float64
	for k, key := range b.Keys {
		if s.stamp[key] == g {
			n++
			sa += s.vals[key]
			sb += b.Vals[k]
		}
	}
	if n < 2 {
		return 0, false
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for k, key := range b.Keys {
		if s.stamp[key] == g {
			x, y := s.vals[key], b.Vals[k]
			cov += (x - ma) * (y - mb)
			va += (x - ma) * (x - ma)
			vb += (y - mb) * (y - mb)
		}
	}
	if va == 0 || vb == 0 {
		return 0, false
	}
	return clamp(cov / math.Sqrt(va*vb)), true
}

// clamp bounds floating-point drift into [-1, 1], mirroring sparse.clamp.
func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}
