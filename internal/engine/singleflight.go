package engine

import "sync"

// flightGroup deduplicates concurrent computations of the same key: the
// first caller runs fn, later callers for the same key block and share
// the result. This is the classic singleflight pattern (stdlib has no
// exported version, and the module is dependency-free), sized down to
// what the engine needs: no channels, no forgotten-call API.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// do runs fn once per concurrent set of callers sharing key. shared
// reports whether this caller reused another caller's in-flight result.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
