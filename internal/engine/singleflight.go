package engine

import (
	"context"
	"sync"

	"swrec/internal/taxonomy"
)

// flightKey identifies one deduplicatable computation: the kind plus the
// key components that kind uses (zero for the rest). A fixed-size
// comparable struct, so starting or joining a flight allocates and
// hashes no strings — the per-request flight keys used to be the
// engine's last fmt.Sprintf on the serving path.
type flightKey struct {
	kind    byte
	agent   int32 // agent ordinal (peers, recs, profile)
	n       int32 // answer size (recs)
	pipe    pipeKey
	content contKey
	topic   taxonomy.Topic // subtree
}

// flightKey kinds.
const (
	flightPeers      = 'p'
	flightRecs       = 'r'
	flightProfile    = 'f'
	flightSubtree    = 's'
	flightPopularity = 'o'
)

// flightGroup deduplicates concurrent computations of the same key: the
// first caller starts fn, later callers for the same key share the
// in-flight result. This is the classic singleflight pattern (stdlib has
// no exported version, and the module is dependency-free), with one
// deadline-era twist: fn runs on its own goroutine under a *flight*
// context independent of any single caller, and every caller — including
// the one that started the flight — waits with a select against its own
// request context. A caller whose deadline fires detaches immediately
// with ctx.Err() while the computation keeps running and completes the
// cache fill, so the work already invested still warms the next request.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

type flightCall struct {
	done chan struct{} // closed after val/err are set and the key is freed
	val  any
	err  error
}

// noCancel is the flight-context factory when no compute budget applies.
func noCancel() (context.Context, context.CancelFunc) {
	return context.Background(), func() {} //nolint:ctxflow -- the flight context is detached by design: the leader outlives any single caller and completes the cache fill
}

// doCtx runs fn once per concurrent set of callers sharing key. The
// leader goroutine evaluates fn under a fresh context from newCtx (the
// compute budget); each caller blocks until the flight finishes or its
// own ctx is done, whichever comes first. shared reports whether this
// caller joined a flight another caller started. On detach the returned
// error is ctx.Err() and val is nil.
func (g *flightGroup) doCtx(ctx context.Context, key flightKey, newCtx func() (context.Context, context.CancelFunc), fn func(context.Context) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	c, joined := g.m[key]
	if !joined {
		c = &flightCall{done: make(chan struct{})}
		g.m[key] = c
		go func() {
			fctx, cancel := newCtx()
			defer cancel()
			val, err := fn(fctx)
			// Publish the result before freeing the key: a caller arriving
			// after the delete must start a fresh flight, not read a
			// half-written one.
			c.val, c.err = val, err
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, c.err, joined
	case <-ctx.Done():
		return nil, ctx.Err(), joined
	}
}

// do is doCtx without caller cancellation or a compute budget: it always
// waits for the flight to finish.
func (g *flightGroup) do(key flightKey, fn func() (any, error)) (val any, err error, shared bool) {
	return g.doCtx(context.Background(), key, noCancel, func(context.Context) (any, error) { return fn() })
}
