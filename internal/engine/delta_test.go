package engine

import (
	"testing"

	"fmt"

	"swrec/internal/core"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// warmAll fills the snapshot's result (and thereby peers/profile) caches
// for every agent, plus the catalog index and the agent directory.
func warmAll(t *testing.T, snap *Snapshot, n int) {
	t.Helper()
	for _, id := range snap.Community().Agents() {
		if _, err := snap.Recommend(id, n, Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	snap.TopicIndex()
	snap.AgentsByTrustOut()
}

// sameRecs compares two recommendation lists as score maps with an FP
// tolerance, the established idiom for cross-pipeline-instance equality.
func sameRecs(t *testing.T, id model.AgentID, got, want []core.Recommendation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("agent %s: %d recs, want %d", id, len(got), len(want))
	}
	wantScore := make(map[string]core.Recommendation, len(want))
	for _, rc := range want {
		wantScore[string(rc.Product)] = rc
	}
	for _, rc := range got {
		w, ok := wantScore[string(rc.Product)]
		if !ok {
			t.Fatalf("agent %s: unexpected product %s", id, rc.Product)
		}
		if rc.Supporters != w.Supporters || rc.Score-w.Score > 1e-9 || w.Score-rc.Score > 1e-9 {
			t.Fatalf("agent %s product %s: %+v != %+v", id, rc.Product, rc, w)
		}
	}
}

// TestSwapDeltaMatchesFromScratchRebuild is the delta-carry correctness
// gate: after a delta-aware swap, every agent's recommendations —
// carried-from-cache and recomputed alike — must equal a from-scratch
// core.New pipeline over the published community.
func TestSwapDeltaMatchesFromScratchRebuild(t *testing.T) {
	comm := testCommunity(t, 40, 60)
	opt := testOptions()
	e, err := New(comm, opt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warmAll(t, e.Snapshot(), 8)

	ids := comm.Agents()
	pids := comm.Products()
	clone := comm.Clone()
	rater, truster, trustee := ids[3], ids[7], ids[11]
	if err := clone.SetRating(rater, pids[0], 0.9); err != nil {
		t.Fatal(err)
	}
	if err := clone.SetTrust(truster, trustee, 0.8); err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.RatingsChanged[clone.Agent(rater).Ord()] = true
	d.TrustChanged[clone.Agent(truster).Ord()] = true

	snap2, err := e.SwapDelta(clone, d)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.New(clone, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range clone.Agents() {
		got, err := snap2.Recommend(id, 8, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := rec.Recommend(id, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameRecs(t, id, got, want)
	}
}

// clusteredCommunity hand-builds two trust-disjoint five-agent clusters
// ("a*" and "b*", each a trust ring rating its own half of the catalog),
// so a mutation inside one cluster provably cannot reach the other —
// the partitioned structure the delta carry exploits at corpus scale,
// where trust neighborhoods cover a small fraction of the agent set.
func clusteredCommunity(t *testing.T) *model.Community {
	t.Helper()
	tax := taxonomy.New("Root")
	topics := make([]taxonomy.Topic, 8)
	for i := range topics {
		d, err := tax.Add(taxonomy.Root, fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		topics[i] = d
	}
	c := model.NewCommunity(tax)
	for i := 0; i < 12; i++ {
		c.AddProduct(model.Product{
			ID:     model.ProductID(fmt.Sprintf("p%d", i)),
			Topics: []taxonomy.Topic{topics[i%len(topics)]},
		})
	}
	pids := c.Products()
	for cl, prefix := range []string{"a", "b"} {
		for i := 0; i < 5; i++ {
			c.AddAgent(model.AgentID(fmt.Sprintf("%s%d", prefix, i)))
		}
		for i := 0; i < 5; i++ {
			src := model.AgentID(fmt.Sprintf("%s%d", prefix, i))
			dst := model.AgentID(fmt.Sprintf("%s%d", prefix, (i+1)%5))
			if err := c.SetTrust(src, dst, 0.9); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 4; j++ {
				if err := c.SetRating(src, pids[cl*6+(i+j)%6], 0.8); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return c
}

// TestSwapDeltaCarriesCleanAgentState pins the carry mechanics of a
// rating-only delta in a partitioned community: only the dirty agent's
// compiled row is rebuilt, the dirty cluster's cached results are
// dropped, the clean cluster is served straight from the carried result
// cache, and the catalog index and agent directory survive by pointer.
func TestSwapDeltaCarriesCleanAgentState(t *testing.T) {
	comm := clusteredCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap1 := e.Snapshot()
	warmAll(t, snap1, 8)

	clone := comm.Clone()
	rater := model.AgentID("a0")
	if err := clone.SetRating(rater, comm.Products()[0], 0.3); err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.RatingsChanged[clone.Agent(rater).Ord()] = true

	snap2, err := e.SwapDelta(clone, d)
	if err != nil {
		t.Fatal(err)
	}

	// Compiled substrate: exactly the dirty agent recompiled.
	mat := snap2.Recommender().Filter().Matrix()
	if mat == nil {
		t.Fatal("delta swap did not compile the profile matrix")
	}
	if mat.Len() != clone.NumAgents() || mat.Built() != 1 {
		t.Fatalf("matrix len=%d built=%d, want len=%d built=1", mat.Len(), mat.Built(), clone.NumAgents())
	}

	// The dirty agent's result entry must not survive.
	if _, ok := snap2.CachedRecommend(rater, 8, Overrides{}); ok {
		t.Fatal("dirty agent's recommendation carried across the swap")
	}
	// The other cluster never sees the mutated agent, so every one of its
	// entries carries and serves as a hit — no recompute after the swap.
	for i := 0; i < 5; i++ {
		id := model.AgentID(fmt.Sprintf("b%d", i))
		if _, ok := snap2.CachedRecommend(id, 8, Overrides{}); !ok {
			t.Fatalf("clean agent %s lost its cached recommendation", id)
		}
	}
	hits := counter("results_hit")
	if _, err := snap2.Recommend("b0", 8, Overrides{}); err != nil {
		t.Fatal(err)
	}
	if counter("results_hit") != hits+1 {
		t.Fatal("carried entry did not serve as a cache hit")
	}

	// No product was added, no trust changed: catalog and directory
	// artifacts carry by pointer.
	if snap1.TopicIndex() != snap2.TopicIndex() {
		t.Fatal("topic index rebuilt despite unchanged catalog")
	}
	if &snap1.AgentsByTrustOut()[0] != &snap2.AgentsByTrustOut()[0] {
		t.Fatal("agent directory rebuilt despite unchanged agents and trust")
	}
}

// TestSwapWithoutDeltaStartsCold pins the fallback: a plain Swap (no
// delta information) must not carry any cached result.
func TestSwapWithoutDeltaStartsCold(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	warmAll(t, e.Snapshot(), 5)
	snap2, err := e.Swap(comm.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range comm.Agents() {
		if _, ok := snap2.CachedRecommend(id, 5, Overrides{}); ok {
			t.Fatalf("agent %s carried a result through a delta-less swap", id)
		}
	}
}

// TestTrustDirtySet pins the reverse-reachability rule: every agent with
// a forward trust path to a mutated source is dirty, nobody else is.
func TestTrustDirtySet(t *testing.T) {
	c := model.NewCommunity(nil)
	for _, id := range []model.AgentID{"a", "b", "c", "d", "e"} {
		c.AddAgent(id)
	}
	// a -> b -> c, e -> c, d isolated.
	for _, edge := range [][2]model.AgentID{{"a", "b"}, {"b", "c"}, {"e", "c"}} {
		if err := c.SetTrust(edge[0], edge[1], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	ord := func(id model.AgentID) int32 { return c.Agent(id).Ord() }
	dirty := trustDirtySet(c, c, map[int32]bool{ord("c"): true})
	for _, id := range []model.AgentID{"a", "b", "c", "e"} {
		if !dirty[ord(id)] {
			t.Fatalf("agent %s can reach the mutated source but is not dirty", id)
		}
	}
	if dirty[ord("d")] {
		t.Fatal("isolated agent marked dirty")
	}
	// A source with no inbound paths dirties only itself.
	dirty = trustDirtySet(c, c, map[int32]bool{ord("a"): true})
	for _, id := range []model.AgentID{"b", "c", "d", "e"} {
		if dirty[ord(id)] {
			t.Fatalf("agent %s dirtied by a source-only mutation", id)
		}
	}
	if !dirty[ord("a")] {
		t.Fatal("mutated source not marked dirty")
	}
}
