package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"swrec/internal/core"
	"swrec/internal/model"
)

// slowOptions returns pipeline options whose stage 1 is a Candidates hook
// that sleeps for d before returning every other agent — a deterministic
// stand-in for an expensive cold-path computation.
func slowOptions(comm *model.Community, d time.Duration) core.Options {
	opt := testOptions()
	agents := comm.Agents()
	opt.Candidates = func(active model.AgentID) []model.AgentID {
		time.Sleep(d)
		return agents
	}
	return opt
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of baseline, dumping stacks on timeout.
func waitGoroutines(t *testing.T, baseline, slack int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			k := runtime.Stack(buf, true)
			t.Fatalf("leaked goroutines: %d > baseline %d + slack %d\n%s", n, baseline, slack, buf[:k])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestColdPathDetachesOnDeadlineAndWarmsCache(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	const compute = 150 * time.Millisecond
	e, err := New(comm, slowOptions(comm, compute), Config{})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]
	snap := e.Snapshot()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = snap.RecommendCtx(ctx, active, 5, Overrides{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// ~2× the deadline, not the full compute time.
	if elapsed >= compute {
		t.Fatalf("detach took %v — caller blocked on the computation", elapsed)
	}

	// The detached flight keeps running and fills the cache.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := snap.CachedRecommend(active, 5, Overrides{}); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached flight never filled the result cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the next request with the same tight deadline is a warm hit.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := snap.RecommendCtx(ctx2, active, 5, Overrides{}); err != nil {
		t.Fatalf("warm request after detach: %v", err)
	}
}

func TestComputeBudgetBoundsDetachedFlight(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, slowOptions(comm, 80*time.Millisecond), Config{ComputeBudget: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]
	snap := e.Snapshot()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := snap.RecommendCtx(ctx, active, 5, Overrides{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The flight outlives the caller but dies at the compute budget, so
	// the cache must stay cold.
	time.Sleep(150 * time.Millisecond)
	if _, ok := snap.CachedPeers(active, Overrides{}); ok {
		t.Fatal("budget-killed flight must not fill the peers cache")
	}
	if _, ok := snap.CachedRecommend(active, 5, Overrides{}); ok {
		t.Fatal("budget-killed flight must not fill the result cache")
	}
}

func TestFollowerDetachesIndependentlyOfLeader(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, slowOptions(comm, 100*time.Millisecond), Config{})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]
	snap := e.Snapshot()

	// Leader with a generous deadline.
	leaderDone := make(chan error, 1)
	go func() {
		_, err := snap.RecommendCtx(context.Background(), active, 5, Overrides{})
		leaderDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the leader start the flight

	// Follower with a tight deadline must detach while the leader waits on.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := snap.RecommendCtx(ctx, active, 5, Overrides{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v, want success", err)
	}
}

// TestStaggeredDeadlinesRacingSwapNoLeaks is the cold-path cancellation
// race test: N concurrent requests with staggered deadlines race a Swap,
// and after the dust settles no goroutine may linger.
func TestStaggeredDeadlinesRacingSwapNoLeaks(t *testing.T) {
	comm := testCommunity(t, 24, 30)
	const compute = 40 * time.Millisecond
	e, err := New(comm, slowOptions(comm, compute), Config{})
	if err != nil {
		t.Fatal(err)
	}
	agents := comm.Agents()

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i, id := range agents {
		wg.Add(1)
		go func(i int, id model.AgentID) {
			defer wg.Done()
			// Deadlines from 1ms (detaches) to ~50ms (may complete).
			d := time.Duration(1+2*i) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			snap := e.Snapshot()
			_, err := snap.RecommendCtx(ctx, id, 5, Overrides{})
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("agent %s: %v", id, err)
			}
		}(i, id)
	}
	// Swap mid-flight: pinned snapshots must keep their flights; new
	// requests land on the fresh epoch.
	time.Sleep(5 * time.Millisecond)
	if _, err := e.Swap(testCommunity(t, 24, 30)); err != nil {
		t.Fatalf("swap: %v", err)
	}
	wg.Wait()

	// Detached flights drain once their sleeps elapse; then nothing may
	// be left over.
	waitGoroutines(t, baseline, 3, 10*time.Second)
}

func TestDegradedRecommendProbesCurrentCaches(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]

	// Nothing warm: no degraded answer exists.
	if _, _, _, ok := e.DegradedRecommend(active, 5, Overrides{}); ok {
		t.Fatal("degraded answer from fully cold caches")
	}

	// Warm the neighborhood only: the probe votes over the cached peers.
	if _, err := e.Snapshot().RankedPeers(active, Overrides{}); err != nil {
		t.Fatal(err)
	}
	recs, source, epoch, ok := e.DegradedRecommend(active, 5, Overrides{})
	if !ok || source != "peers-vote" || epoch != e.Epoch() {
		t.Fatalf("ok=%v source=%q epoch=%d, want peers-vote at current epoch", ok, source, epoch)
	}
	full, err := e.Snapshot().Recommend(active, 5, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(full) {
		t.Fatalf("degraded vote gave %d recs, full pipeline %d", len(recs), len(full))
	}

	// With the result cache warm the probe prefers it.
	_, source, _, ok = e.DegradedRecommend(active, 5, Overrides{})
	if !ok || source != "result-cache" {
		t.Fatalf("ok=%v source=%q, want result-cache", ok, source)
	}
}

func TestDegradedRecommendFallsBackToPreviousEpoch(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	active := comm.Agents()[0]
	if _, err := e.Snapshot().Recommend(active, 5, Overrides{}); err != nil {
		t.Fatal(err)
	}
	oldEpoch := e.Epoch()

	// Swap installs a cold epoch; the only warmth left is the old one.
	if _, err := e.Swap(testCommunity(t, 20, 30)); err != nil {
		t.Fatal(err)
	}
	recs, source, epoch, ok := e.DegradedRecommend(active, 5, Overrides{})
	if !ok || source != "prev-result-cache" || epoch != oldEpoch {
		t.Fatalf("ok=%v source=%q epoch=%d, want prev-result-cache at epoch %d", ok, source, epoch, oldEpoch)
	}
	if len(recs) == 0 {
		t.Fatal("stale degraded answer is empty")
	}

	// Peers fallback too.
	peers, source, epoch, ok := e.DegradedPeers(active, Overrides{})
	if !ok || source != "prev-peers-cache" || epoch != oldEpoch {
		t.Fatalf("peers: ok=%v source=%q epoch=%d", ok, source, epoch)
	}
	if len(peers) == 0 {
		t.Fatal("stale degraded peers empty")
	}
}
