package engine

import (
	"context"
	"errors"

	"swrec/internal/core"
	"swrec/internal/model"
	"swrec/internal/strategy"
	"swrec/internal/trust"
)

// Pipe-key rungs distinguishing the lower rungs' cached artifacts from
// the rung-1 pipeline's (rung 0). Because they live in the regular
// peers/results LRUs under peerKey/recKey, the delta-swap carry
// validates them with the same dependency fingerprints: trustDirty is a
// reverse reachability closure, so it covers the one extra hop widening
// takes, and the cached value's own member list is what the
// rating-change scan walks. The checkpoint wire format spells the rungs
// as the historical "|w"/"|g" pipe-string suffixes (see pipeKey.String).
const (
	rungWiden byte = 'w' // trust-hop-widened neighborhoods and their votes
	rungGen   byte = 'g' // taxonomy-ancestor re-rankings and their votes
)

// withRung returns the key tagged as a ladder rung's artifact.
func (k pipeKey) withRung(r byte) pipeKey {
	k.rung = r
	return k
}

// ladderDeadline reports whether err is deadline-shaped (the request or
// compute budget expired) rather than durable.
func ladderDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// ladderSignals gathers the per-request facts rung conditions evaluate
// against, plus the stage 1-3 peer ranking the lower rungs transform.
// The ranking comes from the regular neighborhood cache, so a healthy
// rung-1 request pays nothing extra. A deadline during gathering sets
// Signals.Deadline (only the degraded rung can still answer) instead of
// failing; durable errors (unknown agent, invalid variant) are returned.
func (e *Engine) ladderSignals(ctx context.Context, snap *Snapshot, a *model.Agent, ov Overrides) (strategy.Signals, []core.PeerRank, error) {
	var sig strategy.Signals
	sig.Ratings = len(a.Ratings)
	for _, st := range a.TrustedPeers() {
		if st.Value > 0 {
			sig.TrustOut++
		}
	}
	rec, err := snap.RecommenderFor(ov)
	if err != nil {
		return sig, nil, err
	}
	sig.Taxonomy = rec.Filter().Generator() != nil
	peers, err := snap.rankedPeersRef(ctx, a, ov)
	if err != nil {
		if ladderDeadline(err) {
			sig.Deadline = true
			return sig, nil, nil
		}
		return sig, nil, err
	}
	sig.Peers = len(peers)
	for _, p := range peers {
		sig.Energy += p.Trust
		if p.SimOK && p.Sim > sig.TopSim {
			sig.TopSim = p.Sim
		}
	}
	return sig, peers, nil
}

// widenedPeers returns the trust-hop-widened, re-synthesized peer
// ranking for active (strategy ladder rung 2), cached in the snapshot's
// neighborhood LRU under the widened pipe key. base is the rung-1
// ranking the widening starts from; an empty base widens from the
// agent's direct positive trust statements.
func (s *Snapshot) widenedPeers(ctx context.Context, a *model.Agent, ov Overrides, base []core.PeerRank, decay float64) ([]core.PeerRank, error) {
	key := peerKey{agent: a.Ord(), pipe: ov.pipelineKey().withRung(rungWiden)}
	if peers, ok := s.peers.get(key); ok {
		stats.Add("peers_hit", 1)
		return peers, nil
	}
	stats.Add("peers_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, key.flight(), s.flightCtx, func(fctx context.Context) (any, error) {
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, err
		}
		nb := &trust.Neighborhood{Source: a.ID}
		nb.Ranks = make([]trust.Rank, len(base))
		for i, p := range base {
			nb.Ranks[i] = trust.Rank{Agent: p.Agent, Trust: p.Trust}
		}
		wide := trust.WidenOneHop(trust.FromCommunity(s.comm), nb, decay)
		peers, err := rec.SynthesizeCtx(fctx, a.ID, wide)
		if err != nil {
			return nil, err
		}
		s.peers.add(key, peers)
		return peers, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.PeerRank), nil
}

// generalizedPeers returns the taxonomy-ancestor re-ranking for active
// (strategy ladder rung 3), cached under the generalized pipe key.
// Returns strategy.ErrNotApplicable for pipelines without a taxonomy
// profile space.
func (s *Snapshot) generalizedPeers(ctx context.Context, a *model.Agent, ov Overrides, base []core.PeerRank, depth int) ([]core.PeerRank, error) {
	key := peerKey{agent: a.Ord(), pipe: ov.pipelineKey().withRung(rungGen)}
	if peers, ok := s.peers.get(key); ok {
		stats.Add("peers_hit", 1)
		return peers, nil
	}
	stats.Add("peers_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, key.flight(), s.flightCtx, func(fctx context.Context) (any, error) {
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, err
		}
		alpha := ov.apply(s.opt).BlendAlpha()
		peers, err := strategy.GeneralizedPeers(fctx, rec.Filter(), a.ID, base, alpha, depth)
		if err != nil {
			return nil, err
		}
		s.peers.add(key, peers)
		return peers, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.PeerRank), nil
}

// ladderVote runs (and caches) the stage-4 vote over a lower rung's peer
// ranking, mirroring RecommendCtx's cache/flight discipline under the
// suffixed pipe key.
func (s *Snapshot) ladderVote(ctx context.Context, a *model.Agent, n int, ov Overrides, rung byte, peersFn func(context.Context) ([]core.PeerRank, error)) ([]core.Recommendation, error) {
	key := recKey{agent: a.Ord(), n: int32(n), pipe: ov.pipelineKey().withRung(rung), content: ov.contentKey()}
	if recs, ok := s.results.get(key); ok {
		stats.Add("results_hit", 1)
		return recs, nil
	}
	stats.Add("results_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, key.flight(), s.flightCtx, func(fctx context.Context) (any, error) {
		peers, err := peersFn(fctx)
		if err != nil {
			return nil, err
		}
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, err
		}
		recs, err := rec.RecommendFromCtx(fctx, a.ID, peers, n)
		if err != nil {
			return nil, err
		}
		s.results.add(key, recs)
		return recs, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.Recommendation), nil
}

// PopularityRank returns the snapshot's community-wide popularity
// ranking (strategy ladder rung 4), computed once per snapshot — or
// carried across a delta swap whose batch touched no ratings.
func (s *Snapshot) PopularityRank() []core.Recommendation {
	if r := s.popRank.Load(); r != nil {
		return *r
	}
	s.popOnce.Do(func() {
		r := strategy.PopularityRank(s.comm)
		s.popRank.Store(&r)
	})
	return *s.popRank.Load()
}

// RecommendLadder answers a recommendation request by walking the
// strategy ladder: the first rung whose precondition holds against the
// request's signals produces the answer, lower rungs engage when the
// pipeline is starved (thin trust, low overlap, cold start) or the
// budget expired. The returned Result is the strategy provenance block
// the API reports. A non-nil error is either durable (unknown agent,
// invalid variant) or deadline-shaped when the ladder was exhausted
// under deadline pressure — preserving the 504 contract of PR 3.
func (e *Engine) RecommendLadder(ctx context.Context, snap *Snapshot, active model.AgentID, n int, ov Overrides, sel strategy.Selector) ([]core.Recommendation, *strategy.Result, error) {
	a := snap.comm.Agent(active)
	if a == nil {
		return nil, nil, unknownAgent(active)
	}
	sig, base, err := e.ladderSignals(ctx, snap, a, ov)
	if err != nil {
		return nil, nil, err
	}
	cfg := e.ladder.Config()
	var out []core.Recommendation
	var degSource string
	var degEpoch uint64
	res := e.ladder.Walk(ctx, sig, sel, func(rctx context.Context, r strategy.Rung) (bool, error) {
		switch r.Procedure {
		case strategy.FullSynthesis:
			recs, err := snap.recommendRef(rctx, a, n, ov)
			if err != nil {
				return false, err
			}
			out = recs
			return len(recs) > 0, nil
		case strategy.TrustHopWidening:
			recs, err := snap.ladderVote(rctx, a, n, ov, rungWiden, func(fctx context.Context) ([]core.PeerRank, error) {
				return snap.widenedPeers(fctx, a, ov, base, cfg.HopDecay)
			})
			if err != nil {
				return false, err
			}
			out = recs
			return len(recs) > 0, nil
		case strategy.TaxonomyAncestor:
			recs, err := snap.ladderVote(rctx, a, n, ov, rungGen, func(fctx context.Context) ([]core.PeerRank, error) {
				return snap.generalizedPeers(fctx, a, ov, base, cfg.AncestorDepth)
			})
			if err != nil {
				return false, err
			}
			out = recs
			return len(recs) > 0, nil
		case strategy.Popularity:
			recs, err := snap.popularityFor(rctx, a, n)
			if err != nil {
				return false, err
			}
			out = recs
			return len(recs) > 0, nil
		case strategy.DegradedCache:
			recs, source, epoch, ok := e.DegradedRecommend(active, n, ov)
			if !ok {
				return false, nil
			}
			out, degSource, degEpoch = recs, source, epoch
			// A cached empty list is still an answer: PR 3 served it
			// degraded rather than 504ing, and the ladder keeps that.
			return true, nil
		default:
			return false, strategy.ErrNotApplicable
		}
	})
	e.finishResult(ctx, snap, res, sig, degSource, degEpoch)
	if res.Procedure == strategy.None {
		if err := ctx.Err(); err != nil {
			return nil, res, err
		}
		if sig.Deadline {
			return nil, res, context.DeadlineExceeded
		}
	}
	return out, res, nil
}

// popularityFor serves the rung-4 answer, collapsing concurrent first
// computations of the snapshot ranking through the flight group.
func (s *Snapshot) popularityFor(ctx context.Context, a *model.Agent, n int) ([]core.Recommendation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.popRank.Load() == nil {
		// Build the shared ranking inside a flight so a herd of starved
		// requests computes it once; the build itself is bounded by the
		// community size, not the request.
		_, _, _ = s.flights.do(flightKey{kind: flightPopularity}, func() (any, error) {
			return s.PopularityRank(), nil
		})
	}
	return strategy.PopularityFor(s.comm, s.PopularityRank(), a, n), nil
}

// finishResult stamps the walk result with the answering epoch and the
// degraded-source details when the bottom rung served.
func (e *Engine) finishResult(_ context.Context, snap *Snapshot, res *strategy.Result, _ strategy.Signals, degSource string, degEpoch uint64) {
	res.Epoch = snap.epoch
	if res.Procedure == strategy.DegradedCache && degSource != "" {
		res.Degraded = true
		res.Source = degSource
		res.Epoch = degEpoch
	}
}

// RankedPeersLadder is RecommendLadder for neighborhood requests: the
// same ladder walk, with the popularity rung recorded as not applicable
// (there is no agent-independent peer ranking worth serving).
func (e *Engine) RankedPeersLadder(ctx context.Context, snap *Snapshot, active model.AgentID, ov Overrides, sel strategy.Selector) ([]core.PeerRank, *strategy.Result, error) {
	a := snap.comm.Agent(active)
	if a == nil {
		return nil, nil, unknownAgent(active)
	}
	sig, base, err := e.ladderSignals(ctx, snap, a, ov)
	if err != nil {
		return nil, nil, err
	}
	cfg := e.ladder.Config()
	var out []core.PeerRank
	var degSource string
	var degEpoch uint64
	res := e.ladder.Walk(ctx, sig, sel, func(rctx context.Context, r strategy.Rung) (bool, error) {
		switch r.Procedure {
		case strategy.FullSynthesis:
			if err := rctx.Err(); err != nil {
				return false, err
			}
			out = base
			return len(base) > 0, nil
		case strategy.TrustHopWidening:
			peers, err := snap.widenedPeers(rctx, a, ov, base, cfg.HopDecay)
			if err != nil {
				return false, err
			}
			out = peers
			return len(peers) > 0, nil
		case strategy.TaxonomyAncestor:
			peers, err := snap.generalizedPeers(rctx, a, ov, base, cfg.AncestorDepth)
			if err != nil {
				return false, err
			}
			out = peers
			return len(peers) > 0, nil
		case strategy.Popularity:
			return false, strategy.ErrNotApplicable
		case strategy.DegradedCache:
			peers, source, epoch, ok := e.DegradedPeers(active, ov)
			if !ok {
				return false, nil
			}
			out, degSource, degEpoch = peers, source, epoch
			return true, nil
		default:
			return false, strategy.ErrNotApplicable
		}
	})
	e.finishResult(ctx, snap, res, sig, degSource, degEpoch)
	if res.Procedure == strategy.None {
		if err := ctx.Err(); err != nil {
			return nil, res, err
		}
		if sig.Deadline {
			return nil, res, context.DeadlineExceeded
		}
	}
	return out, res, nil
}
