package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// servingFingerprint hashes the complete serving output of a snapshot on
// the seeded differential corpus: for every agent, the ranked peers and
// the top-10 recommendations with full-precision scores. Any behavioral
// drift in trust propagation, similarity, rank synthesis, or the vote
// changes the digest.
func servingFingerprint(t testing.TB, snap *Snapshot) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range snap.Community().Agents() {
		peers, err := snap.RankedPeers(id, Overrides{})
		if err != nil {
			t.Fatalf("RankedPeers(%s): %v", id, err)
		}
		fmt.Fprintf(&sb, "A %s\n", id)
		for _, p := range peers {
			fmt.Fprintf(&sb, "P %s %.12g %.12g %t %.12g\n", p.Agent, p.Trust, p.Sim, p.SimOK, p.Weight)
		}
		recs, err := snap.Recommend(id, 10, Overrides{})
		if err != nil {
			t.Fatalf("Recommend(%s): %v", id, err)
		}
		for _, r := range recs {
			fmt.Fprintf(&sb, "R %s %.12g %d\n", r.Product, r.Score, r.Supporters)
		}
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// preInternFingerprint is the serving fingerprint of the seeded corpus
// (datagen.SmallScale, 120 agents / 240 products, default test options)
// computed by the string-keyed implementation immediately before the
// interned-ID refactor. The differential test below pins the interned
// data model to byte-identical serving output.
const preInternFingerprint = "3976785e17235065ef071ec31b2d94984bc9785eb234cc41e81d13212a57f178"

// TestInternedFingerprintMatchesPreRefactor is the interning refactor's
// differential gate: rekeying every hot-path structure on dense int32
// ordinals must not move a single score bit. The corpus, options, and
// answer sizes match the constant's recording run exactly.
func TestInternedFingerprintMatchesPreRefactor(t *testing.T) {
	comm := testCommunity(t, 120, 240)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := servingFingerprint(t, e.Snapshot())
	if got != preInternFingerprint {
		t.Fatalf("serving fingerprint drifted from the pre-refactor recording:\n got %s\nwant %s", got, preInternFingerprint)
	}
}
