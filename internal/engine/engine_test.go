package engine

import (
	"errors"
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/model"
)

func testCommunity(t testing.TB, agents, products int) *model.Community {
	t.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = products
	comm, _ := datagen.Generate(cfg)
	return comm
}

func testOptions() core.Options {
	return core.Options{CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy}}
}

func counter(name string) int64 {
	if v, ok := stats.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

func TestRankedPeersCached(t *testing.T) {
	comm := testCommunity(t, 40, 60)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	id := comm.Agents()[0]

	misses := counter("peers_miss")
	first, err := snap.RankedPeers(id, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if counter("peers_miss") != misses+1 {
		t.Fatal("first lookup did not count as a miss")
	}
	hits := counter("peers_hit")
	second, err := snap.RankedPeers(id, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if counter("peers_hit") != hits+1 {
		t.Fatal("second lookup did not hit the cache")
	}
	if len(first) != len(second) || (len(first) > 0 && &first[0] != &second[0]) {
		t.Fatal("cache returned a different neighborhood")
	}

	// A pipeline override warms its own entry, not the default one.
	alpha := 0.9
	if _, err := snap.RankedPeers(id, Overrides{Alpha: &alpha}); err != nil {
		t.Fatal(err)
	}
	if got := counter("peers_miss"); got != misses+2 {
		t.Fatalf("override shared the default cache entry (misses %d)", got-misses)
	}
}

func TestRecommendMatchesDirectPipeline(t *testing.T) {
	comm := testCommunity(t, 40, 60)
	opt := testOptions()
	e, err := New(comm, opt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.New(comm, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range comm.Agents()[:10] {
		want, err := rec.Recommend(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Snapshot().Recommend(id, 0, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("agent %s: %d recs, want %d", id, len(got), len(want))
		}
		// Vote sums run over map-backed sparse vectors, so scores may
		// differ in the last ULP between pipeline instances; compare as
		// a score map with tolerance rather than positionally.
		wantScore := make(map[string]core.Recommendation, len(want))
		for _, rc := range want {
			wantScore[string(rc.Product)] = rc
		}
		for _, rc := range got {
			w, ok := wantScore[string(rc.Product)]
			if !ok {
				t.Fatalf("agent %s: unexpected product %s", id, rc.Product)
			}
			if rc.Supporters != w.Supporters || rc.Score-w.Score > 1e-9 || w.Score-rc.Score > 1e-9 {
				t.Fatalf("agent %s product %s: %+v != %+v", id, rc.Product, rc, w)
			}
		}
	}
}

func TestSingleflightCollapsesConcurrentComputations(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	var calls atomic.Int64
	release := make(chan struct{})
	opt := testOptions()
	// A blocking candidate pre-filter stands in for an expensive trust
	// metric: every stage-1 run must pass through it.
	opt.Candidates = func(active model.AgentID) []model.AgentID {
		calls.Add(1)
		<-release
		return comm.Agents()
	}
	e, err := New(comm, opt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	id := comm.Agents()[0]

	const clients = 8
	var started, done sync.WaitGroup
	for i := 0; i < clients; i++ {
		started.Add(1)
		done.Add(1)
		go func() {
			started.Done()
			defer done.Done()
			if _, err := snap.RankedPeers(id, Overrides{}); err != nil {
				t.Error(err)
			}
		}()
	}
	started.Wait()
	time.Sleep(100 * time.Millisecond) // let every client reach the flight
	close(release)
	done.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("stage 1 ran %d times for %d concurrent clients", got, clients)
	}
}

func TestSwapPublishesNewEpochAndKeepsOldSnapshot(t *testing.T) {
	comm := testCommunity(t, 30, 40)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	old := e.Snapshot()
	if old.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", old.Epoch())
	}

	comm2 := testCommunity(t, 50, 70)
	snap2, err := e.Swap(comm2)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch() != 2 || e.Epoch() != 2 {
		t.Fatalf("epoch after swap = %d / %d", snap2.Epoch(), e.Epoch())
	}
	if e.Snapshot().Community() != comm2 {
		t.Fatal("engine does not serve the swapped community")
	}
	// The pinned pre-swap snapshot still answers from the old view.
	if old.Community() != comm || old.Community().NumAgents() != 30 {
		t.Fatal("old snapshot lost its community")
	}
	if _, err := old.RankedPeers(comm.Agents()[0], Overrides{}); err != nil {
		t.Fatalf("old snapshot stopped serving: %v", err)
	}

	// A community incompatible with the options must not be installed.
	bare := model.NewCommunity(nil) // taxonomy representation needs a taxonomy
	if _, err := e.Swap(bare); err == nil {
		t.Fatal("incompatible swap accepted")
	}
	if e.Snapshot() != snap2 {
		t.Fatal("failed swap displaced the current snapshot")
	}
}

func TestWarmupPrecomputesAllAgents(t *testing.T) {
	comm := testCommunity(t, 35, 50)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Warmup(4)
	if res.Agents != comm.NumAgents() {
		t.Fatalf("warmed %d agents, want %d", res.Agents, comm.NumAgents())
	}
	snap := e.Snapshot()
	if got := snap.peers.len(); got != comm.NumAgents() {
		t.Fatalf("peer cache holds %d entries, want %d", got, comm.NumAgents())
	}
	if got := snap.profiles.len(); got != comm.NumAgents() {
		t.Fatalf("profile cache holds %d entries, want %d", got, comm.NumAgents())
	}
	hits := counter("peers_hit")
	for _, id := range comm.Agents() {
		if _, err := snap.RankedPeers(id, Overrides{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter("peers_hit") - hits; got != int64(comm.NumAgents()) {
		t.Fatalf("post-warmup lookups hit %d times, want %d", got, comm.NumAgents())
	}
}

func TestRecommenderForSharesFilterAcrossCompatibleVariants(t *testing.T) {
	comm := testCommunity(t, 25, 40)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	base, _ := snap.RecommenderFor(Overrides{})
	alpha := 0.8
	blended, err := snap.RecommenderFor(Overrides{Alpha: &alpha})
	if err != nil {
		t.Fatal(err)
	}
	if blended == base {
		t.Fatal("alpha override returned the default recommender")
	}
	if blended.Filter() != base.Filter() {
		t.Fatal("alpha override rebuilt the similarity filter")
	}
	again, _ := snap.RecommenderFor(Overrides{Alpha: &alpha})
	if again != blended {
		t.Fatal("variant not memoized")
	}

	pearson := cf.Pearson
	other, err := snap.RecommenderFor(Overrides{Measure: &pearson})
	if err != nil {
		t.Fatal(err)
	}
	if other.Filter() == base.Filter() {
		t.Fatal("measure override must build its own filter")
	}

	bad := 7.0
	if _, err := snap.RecommenderFor(Overrides{Alpha: &bad}); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}

func TestProfileCachedAndGuarded(t *testing.T) {
	comm := testCommunity(t, 20, 30)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	id := comm.Agents()[0]
	p1, err := snap.Profile(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) == 0 {
		t.Fatal("empty profile for a rated agent")
	}
	misses := counter("profile_miss")
	if _, err := snap.Profile(id); err != nil {
		t.Fatal(err)
	}
	if counter("profile_miss") != misses {
		t.Fatal("second profile lookup recomputed")
	}
	if _, err := snap.Profile("http://nope/x"); !errors.Is(err, core.ErrUnknownAgent) {
		t.Fatalf("unknown agent error = %v", err)
	}

	bare := model.NewCommunity(nil)
	bare.AddAgent("http://x/a")
	e2, err := New(bare, core.Options{CF: cf.Options{Representation: cf.Product}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Snapshot().Profile("http://x/a"); !errors.Is(err, ErrNoTaxonomy) {
		t.Fatalf("no-taxonomy error = %v", err)
	}
}

func TestSubtreeCached(t *testing.T) {
	comm := testCommunity(t, 20, 40)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	p := comm.Product(comm.Products()[0])
	d := p.Topics[0]
	first := snap.Subtree(d)
	second := snap.Subtree(d)
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("subtree lengths %d / %d", len(first), len(second))
	}
	if len(first) > 0 && &first[0] != &second[0] {
		t.Fatal("subtree recomputed despite cache")
	}
}

// TestConcurrentRecommendDuringSwap hammers the engine from many
// goroutines while snapshots are being swapped underneath them; run with
// -race. Every request must succeed against whichever epoch it pinned.
// TestWarmupDuringSwap races full Warmup passes against Swap publishing
// new epochs and concurrent readers. Warmup pins the snapshot current at
// its start, so a pass that overlaps a swap must complete against its
// pinned epoch without error and without touching the new one (caught by
// -race if any warmup write escaped into a swapped-in snapshot).
func TestWarmupDuringSwap(t *testing.T) {
	comm := testCommunity(t, 30, 40)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)

	// Continuous warmup passes.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := e.Warmup(2)
				if res.Agents == 0 {
					errs <- fmt.Errorf("warmup touched no agents")
					return
				}
			}
		}()
	}
	// Concurrent readers on whatever epoch is current.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				ids := snap.Community().Agents()
				if _, err := snap.Recommend(ids[(seed+i)%len(ids)], 5, Overrides{}); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	// Swaps drive epoch turnover under the warmers' feet.
	for i := 0; i < 6; i++ {
		if _, err := e.Swap(testCommunity(t, 30+i, 40)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.Snapshot().Epoch(); got < 7 {
		t.Fatalf("epoch = %d after 6 swaps, want >= 7", got)
	}
}

func TestConcurrentRecommendDuringSwap(t *testing.T) {
	comm := testCommunity(t, 30, 40)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				snap := e.Snapshot()
				ids := snap.Community().Agents()
				id := ids[(seed+i)%len(ids)]
				if _, err := snap.Recommend(id, 5, Overrides{}); err != nil {
					errs <- fmt.Errorf("epoch %d agent %s: %w", snap.Epoch(), id, err)
					return
				}
				if _, err := snap.Profile(id); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Swap(testCommunity(t, 30+i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
