// Package engine is the persistent serving core behind the HTTP API: one
// shared, concurrency-safe recommendation engine instead of a pipeline
// rebuilt per request.
//
// The paper's §4 deployment is an installation that continuously crawls
// the Semantic Web and serves its own users from the materialized view.
// Serving and crawling meet here through snapshot isolation: the engine
// owns one immutable Snapshot — community, recommender, caches — behind
// an atomic pointer. Requests pin the snapshot once and read only from
// it; a background crawler publishes an updated community with Swap,
// which installs a fresh snapshot (new epoch, empty caches) atomically
// while in-flight requests finish against the old one.
//
// Within a snapshot the engine amortizes the expensive per-agent state
// across requests:
//
//   - taxonomy interest profiles (Eq. 3) and synthesized trust
//     neighborhoods (§3.2-3.4) live in per-snapshot LRU caches;
//   - concurrent identical computations collapse through a singleflight
//     layer, so a thundering herd on one agent computes its neighborhood
//     once;
//   - the catalog's TopicIndex and per-branch subtree listings are built
//     once and reused;
//   - Warmup precomputes hot state for every agent with a worker pool,
//     so a freshly loaded corpus serves warm from the first request.
//
// Cache effectiveness is observable via expvar under "swrec_engine"
// (profile_hit/miss, peers_hit/miss, flight_shared, swaps, warmed_agents).
package engine

import (
	"context"
	"expvar"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/profmat"
	"swrec/internal/sparse"
	"swrec/internal/strategy"
	"swrec/internal/taxonomy"
)

// stats aggregates cache counters across all engines in the process.
var stats = expvar.NewMap("swrec_engine")

// ErrNoTaxonomy is returned by taxonomy-dependent lookups on communities
// that carry no taxonomy.
var ErrNoTaxonomy = fmt.Errorf("engine: community has no taxonomy")

// Config sizes the per-snapshot caches. Zero values select defaults
// generous enough to hold the paper-scale corpus (§4.1: 9,100 agents).
type Config struct {
	// ProfileCacheSize bounds cached Eq. 3 interest profiles (default 16384).
	ProfileCacheSize int
	// PeerCacheSize bounds cached synthesized neighborhoods (default 16384).
	PeerCacheSize int
	// SubtreeCacheSize bounds cached topic-branch product listings
	// (default 4096).
	SubtreeCacheSize int
	// ResultCacheSize bounds cached complete recommendation lists, keyed
	// by (agent, n, overrides) — the snapshot is immutable, so the
	// stage-4 vote is a pure function of that key (default 8192).
	ResultCacheSize int
	// ComputeBudget bounds each cold-path flight (neighborhood synthesis,
	// profile generation, full recommendation) independently of the
	// triggering request's deadline: a request that detaches leaves the
	// computation running to warm the cache, but never longer than this.
	// 0 means unbounded (the pre-deadline behavior).
	ComputeBudget time.Duration
	// DegradeBudget bounds the stage-4 vote a degraded-answer probe is
	// allowed to run over an already cached neighborhood (default 25ms).
	DegradeBudget time.Duration
	// Strategy shapes the quality ladder walked for hard queries (see
	// internal/strategy). The zero value takes the ladder defaults.
	Strategy strategy.Config
}

func (c Config) withDefaults() Config {
	if c.ProfileCacheSize <= 0 {
		c.ProfileCacheSize = 16384
	}
	if c.PeerCacheSize <= 0 {
		c.PeerCacheSize = 16384
	}
	if c.SubtreeCacheSize <= 0 {
		c.SubtreeCacheSize = 4096
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 8192
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = 25 * time.Millisecond
	}
	return c
}

// Overrides carries per-request deviations from the engine's default
// pipeline options. Nil fields keep the default. Distinct override
// combinations get distinct cache entries, so overridden requests warm
// their own state without poisoning the default path.
type Overrides struct {
	Metric  *core.Metric
	Alpha   *float64
	Measure *cf.Measure
	Content *core.ContentMode
}

// pipeKey identifies the stages-1-3 configuration (trust metric, α,
// similarity measure) plus the strategy-ladder rung a cached artifact
// belongs to. Content mode affects only the stage-4 vote, so
// neighborhoods are shared across content modes. It is a fixed-size
// comparable value: building one allocates nothing, unlike the string
// keys it replaced. Present/absent overrides are tracked with explicit
// flags rather than sentinel values so map-key equality stays exact.
type pipeKey struct {
	hasMetric  bool
	metric     core.Metric
	hasAlpha   bool
	alpha      float64
	hasMeasure bool
	measure    cf.Measure
	rung       byte // 0 = rung-1 pipeline; rungWiden / rungGen below
}

// contKey identifies the stage-4 content-mode override.
type contKey struct {
	set  bool
	mode core.ContentMode
}

// variantKey identifies the full recommender configuration.
type variantKey struct {
	pipe    pipeKey
	content contKey
}

// pipelineKey builds the stages-1-3 cache-key component.
func (ov Overrides) pipelineKey() pipeKey {
	var k pipeKey
	if ov.Metric != nil {
		k.hasMetric, k.metric = true, *ov.Metric
	}
	if ov.Alpha != nil {
		k.hasAlpha, k.alpha = true, *ov.Alpha
	}
	if ov.Measure != nil {
		k.hasMeasure, k.measure = true, *ov.Measure
	}
	return k
}

// contentKey builds the stage-4 cache-key component.
func (ov Overrides) contentKey() contKey {
	if ov.Content != nil {
		return contKey{set: true, mode: *ov.Content}
	}
	return contKey{}
}

// variantKey builds the full recommender-configuration key.
func (ov Overrides) variantKey() variantKey {
	return variantKey{pipe: ov.pipelineKey(), content: ov.contentKey()}
}

// apply merges the overrides into a copy of the base options.
func (ov Overrides) apply(opt core.Options) core.Options {
	if ov.Metric != nil {
		opt.Metric = *ov.Metric
	}
	if ov.Alpha != nil {
		opt.Alpha, opt.AlphaSet = *ov.Alpha, true
	}
	if ov.Measure != nil {
		opt.CF.Measure = *ov.Measure
	}
	if ov.Content != nil {
		opt.Content = *ov.Content
	}
	return opt
}

// Snapshot is one immutable epoch of the serving state: a community view
// plus every cache derived from it. All methods are safe for concurrent
// use; returned slices and vectors are shared and must not be modified.
type Snapshot struct {
	epoch  uint64
	comm   *model.Community
	opt    core.Options
	rec    *core.Recommender
	budget time.Duration // per-flight compute bound; 0 = none

	// gen builds Eq. 3 profiles for the /profile endpoint and warmup;
	// nil when the community carries no taxonomy.
	gen *profile.Generator

	// The per-agent caches are keyed by community ordinal: the URI is
	// resolved once at the public entry point, everything below indexes
	// and hashes fixed-size values.
	profiles *lruCache[int32, sparse.Vector]
	peers    *lruCache[peerKey, []core.PeerRank]
	subtrees *lruCache[taxonomy.Topic, []model.ProductID]
	results  *lruCache[recKey, []core.Recommendation]

	ixOnce sync.Once
	ix     atomic.Pointer[index.TopicIndex]

	agentsOnce    sync.Once
	agentsByTrust atomic.Pointer[[]model.AgentID]

	popOnce sync.Once
	popRank atomic.Pointer[[]core.Recommendation]

	variantMu sync.Mutex
	variants  map[variantKey]*core.Recommender

	flights flightGroup
}

// newSnapshot builds a cold snapshot: every cache starts empty.
func newSnapshot(epoch uint64, comm *model.Community, opt core.Options, cfg Config) (*Snapshot, error) {
	return newSnapshotDelta(epoch, comm, opt, cfg, nil, nil)
}

// newSnapshotDelta builds a snapshot over comm and, when prev and d are
// both non-nil, carries over every artifact of the previous epoch whose
// dependency fingerprint (see Delta) the applied mutations left
// untouched: compiled profile rows, cached Eq. 3 profiles, synthesized
// neighborhoods, complete recommendation lists, the topic index with its
// subtree listings, and the trust-out agent ordering.
func newSnapshotDelta(epoch uint64, comm *model.Community, opt core.Options, cfg Config, prev *Snapshot, d *Delta) (*Snapshot, error) {
	rec, err := core.New(comm, opt)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		epoch:    epoch,
		comm:     comm,
		opt:      opt,
		rec:      rec,
		budget:   cfg.ComputeBudget,
		profiles: newLRU[int32, sparse.Vector](cfg.ProfileCacheSize),
		peers:    newLRU[peerKey, []core.PeerRank](cfg.PeerCacheSize),
		subtrees: newLRU[taxonomy.Topic, []model.ProductID](cfg.SubtreeCacheSize),
		results:  newLRU[recKey, []core.Recommendation](cfg.ResultCacheSize),
		variants: make(map[variantKey]*core.Recommender),
	}
	if tax := comm.Taxonomy(); tax != nil {
		s.gen = profile.New(tax)
	}

	delta := prev != nil && d != nil
	// Compile the similarity substrate eagerly — the first request should
	// find warm rows, not pay the build. On a delta swap only the dirty
	// agents' rows are recompiled; the rest alias the previous arenas.
	if f := rec.Filter(); f.Compilable() {
		var prevMat *profmat.Matrix
		var dirtyRow func(int32) bool
		if delta {
			prevMat = prev.rec.Filter().Matrix()
			dirtyRow = func(ord int32) bool { return d.RatingsChanged[ord] }
		}
		//nolint:ctxflow -- snapshot construction runs at New/Swap time, not on a request path; there is no caller deadline to thread
		if err := f.CompileDelta(context.Background(), prevMat, dirtyRow); err != nil {
			return nil, err
		}
		if mat := f.Matrix(); mat != nil && delta {
			stats.Add("carried_rows", int64(mat.Len()-mat.Built()))
		}
	}
	if !delta {
		return s, nil
	}

	trustDirty := trustDirtySet(prev.comm, comm, d.TrustChanged)
	dirtyTrust := func(ord int32) bool {
		return trustDirty != nil && int(ord) < len(trustDirty) && trustDirty[ord]
	}
	nTrustDirty := 0
	for _, b := range trustDirty {
		if b {
			nTrustDirty++
		}
	}
	stats.Add("swap_delta", 1)
	stats.Add("dirty_agents", int64(nTrustDirty+len(d.RatingsChanged)))

	// Eq. 3 profiles: invalidated only by the agent's own ratings.
	for _, e := range prev.profiles.entries() {
		if !d.RatingsChanged[e.key] {
			s.profiles.add(e.key, e.val)
			stats.Add("carried_profiles", 1)
		}
	}
	// Neighborhoods: the active agent must be clean of trust influence
	// and rating changes, and every ranked peer's profile (its ratings)
	// must be untouched — those are the similarity weights. Ranked peers
	// are stored by ID (the serving answer); resolving them against the
	// new community is a swap-time cost, not a request-path one.
	sym := comm.Symbols()
	carried := make(map[peerKey]bool)
	for _, e := range prev.peers.entries() {
		if dirtyTrust(e.key.agent) || d.RatingsChanged[e.key.agent] {
			continue
		}
		ok := true
		for _, pr := range e.val {
			if ord, known := sym.AgentOrd(pr.Agent); !known || d.RatingsChanged[ord] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.peers.add(e.key, e.val)
		carried[e.key] = true
		stats.Add("carried_peers", 1)
	}
	// Results: the stage-4 vote reads the neighborhood plus the ranked
	// peers' positive ratings, the active agent's rated set, and (for
	// content filtering) the active profile — all of which a carried
	// neighborhood entry already certifies clean. Entries whose
	// neighborhood was evicted or dropped recompute.
	for _, e := range prev.results.entries() {
		if carried[peerKey{agent: e.key.agent, pipe: e.key.pipe}] {
			s.results.add(e.key, e.val)
			stats.Add("carried_results", 1)
		}
	}
	// Catalog-derived artifacts survive any mutation batch that added no
	// products (the ingest path never mutates existing entries).
	if !d.ProductsChanged {
		if ix := prev.ix.Load(); ix != nil {
			s.ix.Store(ix)
		}
		for _, e := range prev.subtrees.entries() {
			s.subtrees.add(e.key, e.val)
		}
	}
	// The trust-out directory ordering depends on the agent set and every
	// out-degree.
	if !d.AgentsAdded && len(d.TrustChanged) == 0 {
		if ids := prev.agentsByTrust.Load(); ids != nil {
			s.agentsByTrust.Store(ids)
		}
	}
	// The popularity ranking (strategy ladder rung 4) reads every agent's
	// positive ratings and nothing else; products added without ratings
	// cannot appear in it.
	if !d.AgentsAdded && len(d.RatingsChanged) == 0 {
		if r := prev.popRank.Load(); r != nil {
			s.popRank.Store(r)
		}
	}
	return s, nil
}

// Epoch returns the snapshot's monotonically increasing publish number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Community returns the snapshot's immutable community view.
func (s *Snapshot) Community() *model.Community { return s.comm }

// Recommender returns the default-options recommender bound to this
// snapshot.
func (s *Snapshot) Recommender() *core.Recommender { return s.rec }

// RecommenderFor returns a recommender honoring the given per-request
// overrides. Variants are memoized per snapshot and share the default
// recommender's similarity filter (and its profile cache) whenever the
// CF configuration is unchanged.
func (s *Snapshot) RecommenderFor(ov Overrides) (*core.Recommender, error) {
	key := ov.variantKey()
	if key == (variantKey{}) {
		return s.rec, nil
	}
	s.variantMu.Lock()
	defer s.variantMu.Unlock()
	if rec, ok := s.variants[key]; ok {
		return rec, nil
	}
	rec, err := s.rec.WithOptions(ov.apply(s.opt))
	if err != nil {
		return nil, err
	}
	s.variants[key] = rec
	return rec, nil
}

// peerKey identifies a cached neighborhood: the active agent's ordinal
// and the stages-1-3 configuration. Structured so the delta-swap carry
// can reason about each component without parsing, and fixed-size so
// cache probes hash no strings.
type peerKey struct {
	agent int32
	pipe  pipeKey
}

// flight returns the singleflight key for the neighborhood computation.
func (k peerKey) flight() flightKey {
	return flightKey{kind: flightPeers, agent: k.agent, pipe: k.pipe}
}

// recKey identifies a cached recommendation list: the active agent's
// ordinal, the answer size, and the full variant split into its pipeline
// and content parts — the pipeline part ties a result to the
// neighborhood it was voted from.
type recKey struct {
	agent   int32
	n       int32
	pipe    pipeKey
	content contKey
}

// flight returns the singleflight key for the recommendation computation.
func (k recKey) flight() flightKey {
	return flightKey{kind: flightRecs, agent: k.agent, n: k.n, pipe: k.pipe, content: k.content}
}

// peersKey and resultKey build the cache keys shared by the serving and
// degradation paths, from an already-resolved agent ordinal.
func peersKey(ord int32, ov Overrides) peerKey {
	return peerKey{agent: ord, pipe: ov.pipelineKey()}
}

func resultKey(ord int32, n int, ov Overrides) recKey {
	return recKey{agent: ord, n: int32(n), pipe: ov.pipelineKey(), content: ov.contentKey()}
}

// unknownAgent mirrors the core pipeline's unknown-active error, so
// resolving the URI at the engine boundary is indistinguishable from
// letting the pipeline discover it.
func unknownAgent(id model.AgentID) error {
	return fmt.Errorf("%w: %s", core.ErrUnknownAgent, id)
}

// flightCtx is the compute-budget context factory handed to cold-path
// flights: independent of any caller's deadline, bounded by the engine's
// ComputeBudget when one is configured.
func (s *Snapshot) flightCtx() (context.Context, context.CancelFunc) {
	if s.budget > 0 {
		return context.WithTimeout(context.Background(), s.budget) //nolint:ctxflow -- the flight context is detached by design: the leader keeps warming the cache after every caller detaches (ComputeBudget is the bound)
	}
	return noCancel()
}

// RankedPeers runs pipeline stages 1-3 for the active agent under the
// given overrides, serving from the neighborhood cache when warm and
// collapsing concurrent identical computations to one.
func (s *Snapshot) RankedPeers(active model.AgentID, ov Overrides) ([]core.PeerRank, error) {
	return s.RankedPeersCtx(context.Background(), active, ov)
}

// RankedPeersCtx is RankedPeers with a request deadline: a cache hit is
// served unconditionally (it costs nothing), while a cold-path caller
// waits only until ctx is done — detaching with ctx.Err() while the
// computation continues under the engine's compute budget and fills the
// cache for the next request.
func (s *Snapshot) RankedPeersCtx(ctx context.Context, active model.AgentID, ov Overrides) ([]core.PeerRank, error) {
	a := s.comm.Agent(active)
	if a == nil {
		return nil, unknownAgent(active)
	}
	return s.rankedPeersRef(ctx, a, ov)
}

// rankedPeersRef is RankedPeersCtx after the one URI resolution: every
// cache and flight key below is built from the agent's ordinal.
func (s *Snapshot) rankedPeersRef(ctx context.Context, a *model.Agent, ov Overrides) ([]core.PeerRank, error) {
	key := peersKey(a.Ord(), ov)
	if peers, ok := s.peers.get(key); ok {
		stats.Add("peers_hit", 1)
		return peers, nil
	}
	stats.Add("peers_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, key.flight(), s.flightCtx, func(fctx context.Context) (any, error) {
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, err
		}
		peers, err := rec.RankedPeersCtx(fctx, a.ID)
		if err != nil {
			return nil, err
		}
		s.peers.add(key, peers)
		return peers, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.PeerRank), nil
}

// CachedPeers peeks the neighborhood cache without computing anything —
// the degradation probe's view of stages 1-3.
//
//swrec:hotpath
func (s *Snapshot) CachedPeers(active model.AgentID, ov Overrides) ([]core.PeerRank, bool) {
	a := s.comm.Agent(active)
	if a == nil {
		return nil, false
	}
	return s.peers.get(peersKey(a.Ord(), ov))
}

// Recommend runs the full pipeline for the active agent: cached
// neighborhood (stages 1-3) plus the stage-4 vote. Because the snapshot
// is immutable, the complete result is itself a pure function of
// (agent, n, overrides) and is served from the result cache on repeat —
// a repeated identical request costs O(answer), independent of community
// size.
func (s *Snapshot) Recommend(active model.AgentID, n int, ov Overrides) ([]core.Recommendation, error) {
	return s.RecommendCtx(context.Background(), active, n, ov)
}

// RecommendCtx is Recommend with a request deadline; see RankedPeersCtx
// for the detach semantics. The inner pipeline runs entirely under the
// flight's compute-budget context, not the caller's.
func (s *Snapshot) RecommendCtx(ctx context.Context, active model.AgentID, n int, ov Overrides) ([]core.Recommendation, error) {
	a := s.comm.Agent(active)
	if a == nil {
		return nil, unknownAgent(active)
	}
	return s.recommendRef(ctx, a, n, ov)
}

// recommendRef is RecommendCtx after the one URI resolution.
func (s *Snapshot) recommendRef(ctx context.Context, a *model.Agent, n int, ov Overrides) ([]core.Recommendation, error) {
	key := resultKey(a.Ord(), n, ov)
	if recs, ok := s.results.get(key); ok {
		stats.Add("results_hit", 1)
		return recs, nil
	}
	stats.Add("results_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, key.flight(), s.flightCtx, func(fctx context.Context) (any, error) {
		peers, err := s.rankedPeersRef(fctx, a, ov)
		if err != nil {
			return nil, err
		}
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, err
		}
		recs, err := rec.RecommendFromCtx(fctx, a.ID, peers, n)
		if err != nil {
			return nil, err
		}
		s.results.add(key, recs)
		return recs, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.Recommendation), nil
}

// CachedRecommend peeks the result cache without computing anything.
//
//swrec:hotpath
func (s *Snapshot) CachedRecommend(active model.AgentID, n int, ov Overrides) ([]core.Recommendation, bool) {
	a := s.comm.Agent(active)
	if a == nil {
		return nil, false
	}
	return s.results.get(resultKey(a.Ord(), n, ov))
}

// Profile returns the agent's Eq. 3 taxonomy profile from the cache,
// computing and caching it on first touch.
func (s *Snapshot) Profile(active model.AgentID) (sparse.Vector, error) {
	return s.ProfileCtx(context.Background(), active)
}

// ProfileCtx is Profile with a request deadline; see RankedPeersCtx for
// the detach semantics.
func (s *Snapshot) ProfileCtx(ctx context.Context, active model.AgentID) (sparse.Vector, error) {
	if s.gen == nil {
		return nil, ErrNoTaxonomy
	}
	a := s.comm.Agent(active)
	if a == nil {
		return nil, unknownAgent(active)
	}
	ord := a.Ord()
	if prof, ok := s.profiles.get(ord); ok {
		stats.Add("profile_hit", 1)
		return prof, nil
	}
	stats.Add("profile_miss", 1)
	v, err, shared := s.flights.doCtx(ctx, flightKey{kind: flightProfile, agent: ord}, s.flightCtx, func(fctx context.Context) (any, error) {
		prof, err := s.gen.ProfileCtx(fctx, a, s.comm)
		if err != nil {
			return nil, err
		}
		s.profiles.add(ord, prof)
		return prof, nil
	})
	if shared {
		stats.Add("flight_shared", 1)
	}
	if err != nil {
		return nil, err
	}
	return v.(sparse.Vector), nil
}

// TopicIndex returns the snapshot's catalog index, building it on first
// use — unless the delta swap already carried the previous epoch's index
// across an unchanged catalog.
func (s *Snapshot) TopicIndex() *index.TopicIndex {
	if ix := s.ix.Load(); ix != nil {
		return ix
	}
	s.ixOnce.Do(func() { s.ix.Store(index.Build(s.comm)) })
	return s.ix.Load()
}

// Subtree returns the deduplicated, sorted products of a taxonomy branch
// from the per-branch cache.
func (s *Snapshot) Subtree(d taxonomy.Topic) []model.ProductID {
	if pids, ok := s.subtrees.get(d); ok {
		stats.Add("subtree_hit", 1)
		return pids
	}
	stats.Add("subtree_miss", 1)
	v, _, _ := s.flights.do(flightKey{kind: flightSubtree, topic: d}, func() (any, error) {
		pids := s.TopicIndex().Subtree(d)
		s.subtrees.add(d, pids)
		return pids, nil
	})
	return v.([]model.ProductID)
}

// AgentsByTrustOut returns all agent IDs ordered by descending trust
// out-degree (ties by ID), computed once per snapshot — the ordering the
// agent directory endpoint pages through. The slice is shared; callers
// must not modify it.
func (s *Snapshot) AgentsByTrustOut() []model.AgentID {
	if ids := s.agentsByTrust.Load(); ids != nil {
		return *ids
	}
	s.agentsOnce.Do(func() {
		ids := append([]model.AgentID(nil), s.comm.Agents()...)
		deg := func(id model.AgentID) int { return len(s.comm.Agent(id).Trust) }
		sort.Slice(ids, func(i, j int) bool {
			di, dj := deg(ids[i]), deg(ids[j])
			if di != dj {
				return di > dj
			}
			return ids[i] < ids[j]
		})
		s.agentsByTrust.Store(&ids)
	})
	return *s.agentsByTrust.Load()
}

// Engine owns the current snapshot and the swap discipline around it.
type Engine struct {
	cfg    Config
	opt    core.Options
	start  time.Time
	ladder *strategy.Ladder

	swapMu sync.Mutex // serializes Swap; epoch increments under it
	snap   atomic.Pointer[Snapshot]
	// prev retains the previously published snapshot: its caches are the
	// last line of graceful degradation — a stale-but-instant answer beats
	// a 504 when the current epoch is cold (§2 scalability under load).
	prev atomic.Pointer[Snapshot]
}

// New validates the options against the community and installs epoch 1.
// The community (and any community later passed to Swap) must not be
// mutated while the engine serves from it — crawlers build a fresh view
// and publish it with Swap.
func New(comm *model.Community, opt core.Options, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	ladder, err := strategy.New(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	snap, err := newSnapshot(1, comm, opt, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, opt: opt, start: time.Now(), ladder: ladder}
	e.snap.Store(snap)
	return e, nil
}

// Ladder returns the engine's configured strategy ladder.
func (e *Engine) Ladder() *strategy.Ladder { return e.ladder }

// Snapshot returns the current epoch's state. Handlers call this once
// per request and read only through the returned snapshot, so a
// concurrent Swap never mixes epochs within one request.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Epoch returns the current snapshot's epoch.
func (e *Engine) Epoch() uint64 { return e.Snapshot().epoch }

// Options returns the engine's default pipeline options.
func (e *Engine) Options() core.Options { return e.opt }

// Uptime reports how long the engine has been serving.
func (e *Engine) Uptime() time.Duration { return time.Since(e.start) }

// Swap atomically publishes a new community view under the next epoch.
// The previous snapshot stays valid for requests that already pinned it;
// its caches are garbage once those drain. Returns the installed
// snapshot. On error (e.g. the new community is incompatible with the
// engine's options) the current snapshot remains in place.
func (e *Engine) Swap(comm *model.Community) (*Snapshot, error) {
	return e.SwapDelta(comm, nil)
}

// SwapDelta is Swap informed by what actually changed: the write path
// summarizes its applied mutation batch in d, and the new snapshot starts
// with every still-valid artifact of the previous epoch — compiled
// profile rows, cached profiles, neighborhoods and results whose
// dependency fingerprints the batch left untouched — instead of cold
// caches. A nil d degrades to a full cold swap. Correctness does not
// depend on d being minimal, only on it covering every change.
func (e *Engine) SwapDelta(comm *model.Community, d *Delta) (*Snapshot, error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.snap.Load()
	snap, err := newSnapshotDelta(cur.epoch+1, comm, e.opt, e.cfg, cur, d)
	if err != nil {
		return nil, err
	}
	e.prev.Store(cur)
	e.snap.Store(snap)
	stats.Add("swaps", 1)
	return snap, nil
}

// Previous returns the snapshot published before the current one, or nil
// before the first Swap. Degradation probes read its caches; new work is
// never scheduled on it.
func (e *Engine) Previous() *Snapshot { return e.prev.Load() }

// DegradedPeers attempts a cheap partial answer for a neighborhood
// request whose full computation missed its deadline: the current
// snapshot's cache first, then the previous epoch's. Pure cache lookups —
// no computation is started. epoch reports which snapshot answered.
func (e *Engine) DegradedPeers(active model.AgentID, ov Overrides) (peers []core.PeerRank, source string, epoch uint64, ok bool) {
	if s := e.Snapshot(); s != nil {
		if peers, ok := s.CachedPeers(active, ov); ok {
			stats.Add("degraded_served", 1)
			return peers, "peers-cache", s.epoch, true
		}
	}
	if p := e.Previous(); p != nil {
		if peers, ok := p.CachedPeers(active, ov); ok {
			stats.Add("degraded_served", 1)
			stats.Add("degraded_stale", 1)
			return peers, "prev-peers-cache", p.epoch, true
		}
	}
	return nil, "", 0, false
}

// DegradedRecommend attempts a cheap partial answer for a recommendation
// request whose full computation missed its deadline, probing in order of
// decreasing fidelity:
//
//  1. the current snapshot's result cache (a concurrent flight may have
//     just completed);
//  2. a fresh stage-4 vote over the current snapshot's *cached*
//     neighborhood, bounded by DegradeBudget;
//  3. the previous epoch's result cache;
//  4. a bounded vote over the previous epoch's cached neighborhood.
//
// No trust or similarity computation is ever started — probes only spend
// what earlier requests already paid for. epoch reports which snapshot
// answered; a stale epoch (< current) means the answer predates the last
// swap.
func (e *Engine) DegradedRecommend(active model.AgentID, n int, ov Overrides) (recs []core.Recommendation, source string, epoch uint64, ok bool) {
	probe := func(s *Snapshot, prefix string) ([]core.Recommendation, string, bool) {
		if s == nil {
			return nil, "", false
		}
		if recs, ok := s.CachedRecommend(active, n, ov); ok {
			return recs, prefix + "result-cache", true
		}
		peers, ok := s.CachedPeers(active, ov)
		if !ok {
			return nil, "", false
		}
		rec, err := s.RecommenderFor(ov)
		if err != nil {
			return nil, "", false
		}
		ctx, cancel := context.WithTimeout(context.Background(), e.cfg.DegradeBudget) //nolint:ctxflow -- degraded-path probe: the caller's deadline has already expired, so the probe runs on its own small budget
		defer cancel()
		recs, err := rec.RecommendFromCtx(ctx, active, peers, n)
		if err != nil {
			return nil, "", false
		}
		return recs, prefix + "peers-vote", true
	}
	if recs, source, ok := probe(e.Snapshot(), ""); ok {
		stats.Add("degraded_served", 1)
		return recs, source, e.Snapshot().epoch, true
	}
	if p := e.Previous(); p != nil {
		if recs, source, ok := probe(p, "prev-"); ok {
			stats.Add("degraded_served", 1)
			stats.Add("degraded_stale", 1)
			return recs, source, p.epoch, true
		}
	}
	return nil, "", 0, false
}

// WarmupResult reports what a Warmup pass touched.
type WarmupResult struct {
	Agents   int           // agents whose hot state was precomputed
	Duration time.Duration // wall-clock time of the pass
}

// Warmup precomputes every agent's neighborhood and taxonomy profile on
// the current snapshot with a pool of workers (default GOMAXPROCS when
// workers <= 0), so a freshly loaded corpus serves its first requests
// from warm caches. Errors on individual agents are skipped: warming is
// best-effort and the serving path recomputes on demand.
func (e *Engine) Warmup(workers int) WarmupResult {
	return e.WarmupCtx(context.Background(), workers)
}

// WarmupCtx is Warmup bounded by ctx: no new agent is dispatched after
// ctx is done, in-flight per-agent work observes the cancellation at its
// internal checkpoints, and the result reports how many agents were
// actually warmed. A server shutting down mid-warmup stops promptly
// instead of grinding through the remaining corpus.
func (e *Engine) WarmupCtx(ctx context.Context, workers int) WarmupResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	snap := e.Snapshot()
	ids := snap.comm.Agents()
	jobs := make(chan model.AgentID)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				_, _ = snap.RankedPeersCtx(ctx, id, Overrides{})
				if snap.gen != nil {
					_, _ = snap.ProfileCtx(ctx, id)
				}
			}
		}()
	}
	warmed := 0
dispatch:
	for _, id := range ids {
		select {
		case jobs <- id:
			warmed++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() == nil {
		snap.TopicIndex()
	}
	stats.Add("warmed_agents", int64(warmed))
	return WarmupResult{Agents: warmed, Duration: time.Since(start)}
}
