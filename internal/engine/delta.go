package engine

import (
	"swrec/internal/model"
)

// Delta describes what changed between the community a snapshot currently
// serves and the community about to be published — the write path's
// summary of its applied mutation batch. SwapDelta uses it to carry every
// cache entry whose dependency fingerprint is untouched into the new
// epoch instead of starting cold.
//
// The fingerprint rule, per cached artifact:
//
//   - a compiled profile row / cached Eq. 3 profile depends on the
//     agent's own ratings (the taxonomy and product topics are immutable
//     under ingest — rating an uncataloged product registers a bare,
//     topic-less entry that contributes nothing to any profile);
//   - a cached trust neighborhood depends on the trust statements of
//     every agent its exploration can reach (any forward trust path from
//     the active agent), plus the profiles of the active agent and every
//     ranked peer (the similarity weights);
//   - a cached recommendation list depends on its neighborhood plus the
//     ranked peers' ratings — and a carried neighborhood already implies
//     no ranked peer's ratings changed, so a result entry is valid
//     exactly when its neighborhood entry is;
//   - the topic index and subtree listings depend only on the catalog;
//   - the trust-out agent directory ordering depends on the agent set
//     and every out-degree.
//
// All fields are conservative: over-marking costs recomputation, never
// correctness. A nil *Delta means "assume everything changed".
type Delta struct {
	// RatingsChanged holds agents whose rating set changed (upserts and
	// deletes alike).
	RatingsChanged map[model.AgentID]bool
	// TrustChanged holds agents whose outgoing trust statements changed.
	TrustChanged map[model.AgentID]bool
	// AgentsAdded reports whether any agent record was created (directly
	// or materialized as a trust/rating endpoint).
	AgentsAdded bool
	// ProductsChanged reports whether the catalog gained entries.
	ProductsChanged bool
}

// NewDelta returns an empty delta ready for marking.
func NewDelta() *Delta {
	return &Delta{
		RatingsChanged: make(map[model.AgentID]bool),
		TrustChanged:   make(map[model.AgentID]bool),
	}
}

// Empty reports whether the delta marks no changes at all.
func (d *Delta) Empty() bool {
	return d != nil && len(d.RatingsChanged) == 0 && len(d.TrustChanged) == 0 &&
		!d.AgentsAdded && !d.ProductsChanged
}

// trustDirtySet expands the trust-mutation sources to every agent whose
// neighborhood exploration could observe one of them: a neighborhood is
// computed by walking trust edges forward from its active agent, so an
// agent is affected exactly when a forward path from it reaches a source.
// That is a reverse-BFS from the sources, taken over the union of the old
// and new trust graphs — an edge present in either generation can have
// carried the influence.
func trustDirtySet(oldC, newC *model.Community, sources map[model.AgentID]bool) map[model.AgentID]bool {
	if len(sources) == 0 {
		return nil
	}
	rev := make(map[model.AgentID][]model.AgentID)
	for _, c := range []*model.Community{oldC, newC} {
		if c == nil {
			continue
		}
		for _, id := range c.Agents() {
			for _, ts := range c.Agent(id).TrustedPeers() {
				rev[ts.Dst] = append(rev[ts.Dst], id)
			}
		}
	}
	dirty := make(map[model.AgentID]bool, len(sources))
	queue := make([]model.AgentID, 0, len(sources))
	for s := range sources {
		dirty[s] = true
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, p := range rev[x] {
			if !dirty[p] {
				dirty[p] = true
				queue = append(queue, p)
			}
		}
	}
	return dirty
}
