package engine

import (
	"swrec/internal/model"
)

// Delta describes what changed between the community a snapshot currently
// serves and the community about to be published — the write path's
// summary of its applied mutation batch. SwapDelta uses it to carry every
// cache entry whose dependency fingerprint is untouched into the new
// epoch instead of starting cold.
//
// The fingerprint rule, per cached artifact:
//
//   - a compiled profile row / cached Eq. 3 profile depends on the
//     agent's own ratings (the taxonomy and product topics are immutable
//     under ingest — rating an uncataloged product registers a bare,
//     topic-less entry that contributes nothing to any profile);
//   - a cached trust neighborhood depends on the trust statements of
//     every agent its exploration can reach (any forward trust path from
//     the active agent), plus the profiles of the active agent and every
//     ranked peer (the similarity weights);
//   - a cached recommendation list depends on its neighborhood plus the
//     ranked peers' ratings — and a carried neighborhood already implies
//     no ranked peer's ratings changed, so a result entry is valid
//     exactly when its neighborhood entry is;
//   - the topic index and subtree listings depend only on the catalog;
//   - the trust-out agent directory ordering depends on the agent set
//     and every out-degree.
//
// Agents are identified by their community ordinals, resolved against
// the community being published: ordinals are stable across epochs of
// one lineage (communities only append), so an ordinal marked here
// denotes the same agent in the superseded epoch's caches. All fields
// are conservative: over-marking costs recomputation, never correctness.
// A nil *Delta means "assume everything changed".
type Delta struct {
	// RatingsChanged holds ordinals of agents whose rating set changed
	// (upserts and deletes alike).
	RatingsChanged map[int32]bool
	// TrustChanged holds ordinals of agents whose outgoing trust
	// statements changed.
	TrustChanged map[int32]bool
	// AgentsAdded reports whether any agent record was created (directly
	// or materialized as a trust/rating endpoint).
	AgentsAdded bool
	// ProductsChanged reports whether the catalog gained entries.
	ProductsChanged bool
}

// NewDelta returns an empty delta ready for marking.
func NewDelta() *Delta {
	return &Delta{
		RatingsChanged: make(map[int32]bool),
		TrustChanged:   make(map[int32]bool),
	}
}

// Empty reports whether the delta marks no changes at all.
func (d *Delta) Empty() bool {
	return d != nil && len(d.RatingsChanged) == 0 && len(d.TrustChanged) == 0 &&
		!d.AgentsAdded && !d.ProductsChanged
}

// trustDirtySet expands the trust-mutation source ordinals to every agent
// whose neighborhood exploration could observe one of them: a
// neighborhood is computed by walking trust edges forward from its active
// agent, so an agent is affected exactly when a forward path from it
// reaches a source. That is a reverse-BFS from the sources, taken over
// the union of the old and new trust graphs — an edge present in either
// generation can have carried the influence.
//
// The returned vector is indexed by agent ordinal and covers both
// generations (ordinals are shared across the lineage); nil means no
// sources, i.e. nothing is trust-dirty.
func trustDirtySet(oldC, newC *model.Community, sources map[int32]bool) []bool {
	if len(sources) == 0 {
		return nil
	}
	n := 0
	if newC != nil {
		n = newC.NumAgents()
	}
	if oldC != nil && oldC.NumAgents() > n {
		n = oldC.NumAgents()
	}
	rev := make([][]int32, n)
	for _, c := range []*model.Community{oldC, newC} {
		if c == nil {
			continue
		}
		sym := c.Symbols()
		for ord := int32(0); int(ord) < sym.NumAgents(); ord++ {
			a := sym.AgentAt(ord)
			for _, tr := range c.TrustRefs(a) {
				rev[tr.Peer.Ord()] = append(rev[tr.Peer.Ord()], ord)
			}
		}
	}
	dirty := make([]bool, n)
	queue := make([]int32, 0, len(sources))
	for s := range sources {
		if int(s) < n && !dirty[s] {
			dirty[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, p := range rev[x] {
			if !dirty[p] {
				dirty[p] = true
				queue = append(queue, p)
			}
		}
	}
	return dirty
}
