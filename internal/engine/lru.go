package engine

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity, mutex-guarded LRU map. The engine keeps
// one per snapshot and per cached artifact kind (taxonomy profiles,
// synthesized neighborhoods, topic subtrees), so eviction pressure in one
// kind never displaces another.
type lruCache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry[K, V]
	items map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// get returns the cached value and marks it most recently used.
//
//swrec:hotpath
func (c *lruCache[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache[K, V]) add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*lruEntry[K, V]).key)
	}
}

// kv is one cache entry as reported by entries.
type kv[K comparable, V any] struct {
	key K
	val V
}

// entries snapshots the cache contents in least-to-most recently used
// order, so replaying them through add into a fresh cache reproduces the
// recency ordering — the epoch-swap carry-over path.
func (c *lruCache[K, V]) entries() []kv[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]kv[K, V], 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry[K, V])
		out = append(out, kv[K, V]{key: e.key, val: e.val})
	}
	return out
}

// len reports the live entry count.
func (c *lruCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
