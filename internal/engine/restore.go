package engine

import (
	"context"
	"time"

	"swrec/internal/core"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/profmat"
	"swrec/internal/sparse"
	"swrec/internal/strategy"
	"swrec/internal/taxonomy"
)

// Options returns the pipeline options this snapshot serves with.
func (s *Snapshot) Options() core.Options { return s.opt }

// PeersEntry is one exported neighborhood-cache entry.
type PeersEntry struct {
	Agent model.AgentID
	Pipe  string // the stages-1-3 override key; "" for the default pipeline
	Peers []core.PeerRank
}

// ProfileEntry is one exported Eq. 3 profile-cache entry.
type ProfileEntry struct {
	Agent   model.AgentID
	Profile sparse.Vector
}

// ExportPeers snapshots the warm neighborhood cache in least-to-most
// recently used order, so replaying the entries through a fresh cache
// reproduces the recency ordering. Values are shared, not copied.
func (s *Snapshot) ExportPeers() []PeersEntry {
	es := s.peers.entries()
	out := make([]PeersEntry, len(es))
	for i, e := range es {
		out[i] = PeersEntry{Agent: e.key.agent, Pipe: e.key.pipe, Peers: e.val}
	}
	return out
}

// ExportProfiles snapshots the warm Eq. 3 profile cache in
// least-to-most recently used order. Values are shared, not copied.
func (s *Snapshot) ExportProfiles() []ProfileEntry {
	es := s.profiles.entries()
	out := make([]ProfileEntry, len(es))
	for i, e := range es {
		out[i] = ProfileEntry{Agent: e.key, Profile: e.val}
	}
	return out
}

// Restore is the state NewRestored installs without recomputation: a
// checkpointed epoch's community plus its compiled artifacts and warm
// caches. Matrix and Index may be nil (they rebuild lazily); Peers and
// Profiles seed the caches in the order given.
type Restore struct {
	Epoch     uint64
	Community *model.Community
	Matrix    *profmat.Matrix
	Index     *index.TopicIndex
	Peers     []PeersEntry
	Profiles  []ProfileEntry
}

// NewRestored builds an engine whose first snapshot is reconstructed
// from checkpointed state rather than compiled from scratch: the
// restored profile matrix, topic index, and warm caches are installed
// directly, so the first request after a restart is as warm as the last
// request before it — no Appleseed, no Eq. 3, no similarity recompute.
// The epoch continues from the checkpoint (SwapDelta increments from
// it), keeping epoch numbers monotonic across the restart.
func NewRestored(r Restore, opt core.Options, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	ladder, err := strategy.New(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	epoch := r.Epoch
	if epoch == 0 {
		epoch = 1
	}
	snap, err := newSnapshotRestored(epoch, r, opt, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, opt: opt, start: time.Now(), ladder: ladder}
	e.snap.Store(snap)
	stats.Add("restores", 1)
	return e, nil
}

// newSnapshotRestored builds a snapshot around pre-built artifacts. It
// mirrors newSnapshotDelta with every row "carried" from the restored
// matrix: CompileDelta over a prev of r.Matrix and an all-clean dirty
// set copies the rows without recompiling any, and validates coverage
// (an agent missing from the matrix — impossible in a well-formed
// checkpoint — would simply be compiled fresh).
func newSnapshotRestored(epoch uint64, r Restore, opt core.Options, cfg Config) (*Snapshot, error) {
	rec, err := core.New(r.Community, opt)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		epoch:    epoch,
		comm:     r.Community,
		opt:      opt,
		rec:      rec,
		budget:   cfg.ComputeBudget,
		profiles: newLRU[model.AgentID, sparse.Vector](cfg.ProfileCacheSize),
		peers:    newLRU[peerKey, []core.PeerRank](cfg.PeerCacheSize),
		subtrees: newLRU[taxonomy.Topic, []model.ProductID](cfg.SubtreeCacheSize),
		results:  newLRU[recKey, []core.Recommendation](cfg.ResultCacheSize),
		variants: make(map[string]*core.Recommender),
	}
	if tax := r.Community.Taxonomy(); tax != nil {
		s.gen = profile.New(tax)
	}
	if f := rec.Filter(); f.Compilable() {
		clean := func(model.AgentID) bool { return false }
		//nolint:ctxflow -- restore runs at process start, not on a request path; there is no caller deadline to thread
		if err := f.CompileDelta(context.Background(), r.Matrix, clean); err != nil {
			return nil, err
		}
		if mat := f.Matrix(); mat != nil && r.Matrix != nil {
			stats.Add("restored_rows", int64(mat.Len()-mat.Built()))
		}
	}
	if r.Index != nil {
		s.ix.Store(r.Index)
	}
	for _, e := range r.Profiles {
		s.profiles.add(e.Agent, e.Profile)
	}
	for _, e := range r.Peers {
		s.peers.add(peerKey{agent: e.Agent, pipe: e.Pipe}, e.Peers)
	}
	return s, nil
}
