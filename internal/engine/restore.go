package engine

import (
	"context"
	"strconv"
	"strings"
	"time"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/profmat"
	"swrec/internal/sparse"
	"swrec/internal/strategy"
	"swrec/internal/taxonomy"
)

// Options returns the pipeline options this snapshot serves with.
func (s *Snapshot) Options() core.Options { return s.opt }

// PeersEntry is one exported neighborhood-cache entry, in the checkpoint
// wire shape: the agent URI and the pipe key spelled as a string. The
// in-memory caches key on ordinals and fixed-size structs; the
// conversion happens only here, at export/restore time.
type PeersEntry struct {
	Agent model.AgentID
	Pipe  string // the stages-1-3 override key; "" for the default pipeline
	Peers []core.PeerRank
}

// ProfileEntry is one exported Eq. 3 profile-cache entry.
type ProfileEntry struct {
	Agent   model.AgentID
	Profile sparse.Vector
}

// Wire spellings of the ladder rungs (see rungWiden/rungGen): kept
// identical to the pipe-string suffixes earlier releases checkpointed,
// so warm caches survive the key-representation change across restarts.
const (
	pipeWiden = "|w"
	pipeGen   = "|g"
)

// String spells the key in the checkpoint wire format: "m<metric>",
// "a<alpha>", "s<measure>" for the overrides present, then the rung
// suffix — byte-identical to the concatenated string keys the cache used
// before ordinal interning.
func (k pipeKey) String() string {
	var b []byte
	if k.hasMetric {
		b = append(b, 'm')
		b = strconv.AppendInt(b, int64(k.metric), 10)
	}
	if k.hasAlpha {
		b = append(b, 'a')
		b = strconv.AppendFloat(b, k.alpha, 'g', -1, 64)
	}
	if k.hasMeasure {
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(k.measure), 10)
	}
	switch k.rung {
	case rungWiden:
		b = append(b, pipeWiden...)
	case rungGen:
		b = append(b, pipeGen...)
	}
	return string(b)
}

// parsePipeKey inverts String. ok is false for malformed spellings —
// restore drops such entries rather than seeding a key no request could
// ever probe.
func parsePipeKey(s string) (pipeKey, bool) {
	var k pipeKey
	if rest, found := strings.CutSuffix(s, pipeWiden); found {
		k.rung, s = rungWiden, rest
	} else if rest, found := strings.CutSuffix(s, pipeGen); found {
		k.rung, s = rungGen, rest
	}
	// Fields appear in m, a, s order; each value runs to the next field
	// letter (metric and measure are decimal ints, alpha is a %g float —
	// none of which contain the letters themselves).
	cut := func(prefix byte, stops string) (string, bool) {
		if s == "" || s[0] != prefix {
			return "", false
		}
		s = s[1:]
		end := len(s)
		if i := strings.IndexAny(s, stops); i >= 0 {
			end = i
		}
		v := s[:end]
		s = s[end:]
		return v, true
	}
	if v, found := cut('m', "as"); found {
		n, err := strconv.Atoi(v)
		if err != nil {
			return pipeKey{}, false
		}
		k.hasMetric, k.metric = true, core.Metric(n)
	}
	if v, found := cut('a', "s"); found {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return pipeKey{}, false
		}
		k.hasAlpha, k.alpha = true, f
	}
	if v, found := cut('s', ""); found {
		n, err := strconv.Atoi(v)
		if err != nil {
			return pipeKey{}, false
		}
		k.hasMeasure, k.measure = true, cf.Measure(n)
	}
	if s != "" {
		return pipeKey{}, false
	}
	return k, true
}

// ExportPeers snapshots the warm neighborhood cache in least-to-most
// recently used order, so replaying the entries through a fresh cache
// reproduces the recency ordering. Values are shared, not copied; keys
// are translated from ordinals back to URIs for the wire.
func (s *Snapshot) ExportPeers() []PeersEntry {
	sym := s.comm.Symbols()
	es := s.peers.entries()
	out := make([]PeersEntry, 0, len(es))
	for _, e := range es {
		id, ok := sym.AgentID(e.key.agent)
		if !ok {
			continue // cannot happen: cache keys come from this community
		}
		out = append(out, PeersEntry{Agent: id, Pipe: e.key.pipe.String(), Peers: e.val})
	}
	return out
}

// ExportProfiles snapshots the warm Eq. 3 profile cache in
// least-to-most recently used order. Values are shared, not copied.
func (s *Snapshot) ExportProfiles() []ProfileEntry {
	sym := s.comm.Symbols()
	es := s.profiles.entries()
	out := make([]ProfileEntry, 0, len(es))
	for _, e := range es {
		id, ok := sym.AgentID(e.key)
		if !ok {
			continue
		}
		out = append(out, ProfileEntry{Agent: id, Profile: e.val})
	}
	return out
}

// Restore is the state NewRestored installs without recomputation: a
// checkpointed epoch's community plus its compiled artifacts and warm
// caches. Matrix and Index may be nil (they rebuild lazily); Peers and
// Profiles seed the caches in the order given.
type Restore struct {
	Epoch     uint64
	Community *model.Community
	Matrix    *profmat.Matrix
	Index     *index.TopicIndex
	Peers     []PeersEntry
	Profiles  []ProfileEntry
}

// NewRestored builds an engine whose first snapshot is reconstructed
// from checkpointed state rather than compiled from scratch: the
// restored profile matrix, topic index, and warm caches are installed
// directly, so the first request after a restart is as warm as the last
// request before it — no Appleseed, no Eq. 3, no similarity recompute.
// The epoch continues from the checkpoint (SwapDelta increments from
// it), keeping epoch numbers monotonic across the restart.
func NewRestored(r Restore, opt core.Options, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	ladder, err := strategy.New(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	epoch := r.Epoch
	if epoch == 0 {
		epoch = 1
	}
	snap, err := newSnapshotRestored(epoch, r, opt, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, opt: opt, start: time.Now(), ladder: ladder}
	e.snap.Store(snap)
	stats.Add("restores", 1)
	return e, nil
}

// newSnapshotRestored builds a snapshot around pre-built artifacts. It
// mirrors newSnapshotDelta with every row "carried" from the restored
// matrix: CompileDelta over a prev of r.Matrix and an all-clean dirty
// set copies the rows without recompiling any, and validates coverage
// (an agent missing from the matrix — impossible in a well-formed
// checkpoint — would simply be compiled fresh).
func newSnapshotRestored(epoch uint64, r Restore, opt core.Options, cfg Config) (*Snapshot, error) {
	rec, err := core.New(r.Community, opt)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		epoch:    epoch,
		comm:     r.Community,
		opt:      opt,
		rec:      rec,
		budget:   cfg.ComputeBudget,
		profiles: newLRU[int32, sparse.Vector](cfg.ProfileCacheSize),
		peers:    newLRU[peerKey, []core.PeerRank](cfg.PeerCacheSize),
		subtrees: newLRU[taxonomy.Topic, []model.ProductID](cfg.SubtreeCacheSize),
		results:  newLRU[recKey, []core.Recommendation](cfg.ResultCacheSize),
		variants: make(map[variantKey]*core.Recommender),
	}
	if tax := r.Community.Taxonomy(); tax != nil {
		s.gen = profile.New(tax)
	}
	if f := rec.Filter(); f.Compilable() {
		clean := func(int32) bool { return false }
		//nolint:ctxflow -- restore runs at process start, not on a request path; there is no caller deadline to thread
		if err := f.CompileDelta(context.Background(), r.Matrix, clean); err != nil {
			return nil, err
		}
		if mat := f.Matrix(); mat != nil && r.Matrix != nil {
			stats.Add("restored_rows", int64(mat.Len()-mat.Built()))
		}
	}
	if r.Index != nil {
		s.ix.Store(r.Index)
	}
	// Seed the warm caches, translating wire keys back to this epoch's
	// ordinals. Entries naming agents the restored community doesn't know,
	// or pipe spellings no release ever wrote, are dropped: a cold miss is
	// always safe, a mis-keyed hit never is.
	sym := r.Community.Symbols()
	for _, e := range r.Profiles {
		if ord, ok := sym.AgentOrd(e.Agent); ok {
			s.profiles.add(ord, e.Profile)
		}
	}
	for _, e := range r.Peers {
		ord, ok := sym.AgentOrd(e.Agent)
		if !ok {
			continue
		}
		pipe, ok := parsePipeKey(e.Pipe)
		if !ok {
			continue
		}
		s.peers.add(peerKey{agent: ord, pipe: pipe}, e.Peers)
	}
	return s, nil
}
