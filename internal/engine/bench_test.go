package engine

import (
	"fmt"
	"testing"

	"swrec/internal/core"
	"swrec/internal/datagen"
)

// The acceptance benchmark for the serving engine: a warm-cache
// recommendation request must beat the legacy serving path — which ran
// core.New per request, recomputing every taxonomy profile and the trust
// neighborhood from scratch — by at least an order of magnitude, and
// must stop scaling with community size after first touch.
//
//	go test -bench=Serve -benchmem ./internal/engine/
func benchCommunity(b *testing.B, agents int) *datagen.Config {
	b.Helper()
	cfg := datagen.SmallScale()
	cfg.Agents = agents
	cfg.Products = agents * 2
	return &cfg
}

// BenchmarkServePerRequestNew measures the legacy path: a fresh pipeline
// per request, as internal/api did before the engine existed.
func BenchmarkServePerRequestNew(b *testing.B) {
	for _, agents := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			comm, _ := datagen.Generate(*benchCommunity(b, agents))
			opt := testOptions()
			id := comm.Agents()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := core.New(comm, opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rec.Recommend(id, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeEngineWarm measures the engine path after warmup: the
// neighborhood and all profiles come from caches, so only the stage-4
// vote runs per request.
func BenchmarkServeEngineWarm(b *testing.B) {
	for _, agents := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			comm, _ := datagen.Generate(*benchCommunity(b, agents))
			e, err := New(comm, testOptions(), Config{})
			if err != nil {
				b.Fatal(err)
			}
			e.Warmup(0)
			snap := e.Snapshot()
			id := comm.Agents()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := snap.Recommend(id, 10, Overrides{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmup measures the parallel precompute pass itself.
func BenchmarkWarmup(b *testing.B) {
	comm, _ := datagen.Generate(*benchCommunity(b, 200))
	opt := testOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := New(comm, opt, Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		e.Warmup(0)
	}
}
