package engine

import (
	"context"
	"errors"
	"expvar"
	"testing"

	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/strategy"
	"swrec/internal/trust"
)

// fixtureCommunity is a small datagen community with the three hard-query
// fixtures injected: a zero-history cold-start agent, a thin-trust agent
// whose only trust statement points at a sink buddy, and a disjoint-profile
// agent whose interests live in a taxonomy branch nobody else touches.
func fixtureCommunity(t testing.TB) (comm *model.Community, cold, thin, disjoint model.AgentID) {
	t.Helper()
	comm = testCommunity(t, 40, 60)
	cold = datagen.InjectColdStart(comm)
	thin, _ = datagen.InjectThinTrust(comm, comm.Agents()[0])
	disjoint = datagen.InjectDisjointProfile(comm, comm.Agents()[:3], 4)
	return comm, cold, thin, disjoint
}

func strategyCounter(name string) int64 {
	m, ok := expvar.Get("swrec_strategy").(*expvar.Map)
	if !ok {
		return 0
	}
	if v, ok := m.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// TestLadderSelectsRungDeterministically is the rung-selection acceptance
// test: each fixture must land on its designed rung, with a non-empty
// answer and a trace that explains every rung above it.
func TestLadderSelectsRungDeterministically(t *testing.T) {
	comm, cold, thin, disjoint := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	cases := []struct {
		name  string
		agent model.AgentID
		want  strategy.Procedure
	}{
		{"healthy", comm.Agents()[0], strategy.FullSynthesis},
		{"thin-trust", thin, strategy.TrustHopWidening},
		{"disjoint-profile", disjoint, strategy.TaxonomyAncestor},
		{"cold-start", cold, strategy.Popularity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, res, err := e.RecommendLadder(context.Background(), snap, tc.agent, 10, Overrides{}, strategy.Selector{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Procedure != tc.want {
				t.Fatalf("procedure = %s, want %s (attempts %+v)", res.Procedure, tc.want, res.Attempts)
			}
			if len(recs) == 0 {
				t.Fatal("no recommendations")
			}
			if res.Epoch != snap.Epoch() {
				t.Fatalf("epoch = %d, want %d", res.Epoch, snap.Epoch())
			}
			// The trace covers the whole ladder prefix up to the answering
			// rung, and the answering rung's entry is the OK one.
			last := res.Attempts[len(res.Attempts)-1]
			if last.Procedure != tc.want || last.Outcome != strategy.OutcomeOK {
				t.Fatalf("trace tail = %+v", last)
			}
			for _, at := range res.Attempts[:len(res.Attempts)-1] {
				if at.Outcome == strategy.OutcomeOK {
					t.Fatalf("rung above the answer reported ok: %+v", res.Attempts)
				}
			}
		})
	}
}

// TestLadderRunsAreStable re-runs each fixture and replays it across a
// delta swap: the reported procedure must not flap, and within one epoch
// the answer must be byte-identical (it comes from the snapshot caches).
func TestLadderRunsAreStable(t *testing.T) {
	comm, cold, thin, disjoint := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	agents := []model.AgentID{comm.Agents()[0], cold, thin, disjoint}
	first := make(map[model.AgentID]*strategy.Result, len(agents))
	for _, id := range agents {
		recs1, res1, err := e.RecommendLadder(context.Background(), snap, id, 8, Overrides{}, strategy.Selector{})
		if err != nil {
			t.Fatal(err)
		}
		recs2, res2, err := e.RecommendLadder(context.Background(), snap, id, 8, Overrides{}, strategy.Selector{})
		if err != nil {
			t.Fatal(err)
		}
		if res1.Procedure != res2.Procedure {
			t.Fatalf("%s: procedure flapped %s -> %s", id, res1.Procedure, res2.Procedure)
		}
		sameRecs(t, id, recs2, recs1)
		first[id] = res1
	}

	// An unrelated rating change swaps in a new epoch; the fixtures'
	// pathologies are structural, so their rungs must not move.
	clone := comm.Clone()
	other := comm.Agents()[5]
	if err := clone.SetRating(other, comm.Products()[0], 0.9); err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.RatingsChanged[clone.Agent(other).Ord()] = true
	snap2, err := e.SwapDelta(clone, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range agents {
		_, res, err := e.RecommendLadder(context.Background(), snap2, id, 8, Overrides{}, strategy.Selector{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Procedure != first[id].Procedure {
			t.Fatalf("%s: procedure moved across epochs %s -> %s", id, first[id].Procedure, res.Procedure)
		}
		if res.Epoch != snap2.Epoch() {
			t.Fatalf("%s: epoch = %d, want %d", id, res.Epoch, snap2.Epoch())
		}
	}
}

// TestLadderWideningAddsPeers hand-builds a two-hop trust chain and bounds
// Appleseed's range so the stage-1 neighborhood is provably truncated:
// widening must recruit the second hop that the metric could not reach.
func TestLadderWideningAddsPeers(t *testing.T) {
	comm := testCommunity(t, 10, 30)
	src := model.AgentID("http://fixture.example/people/chain-src")
	mid := model.AgentID("http://fixture.example/people/chain-mid")
	far1 := model.AgentID("http://fixture.example/people/chain-far1")
	far2 := model.AgentID("http://fixture.example/people/chain-far2")
	for _, id := range []model.AgentID{src, mid, far1, far2} {
		comm.AddAgent(id)
	}
	donor := comm.Agent(comm.Agents()[0])
	for _, id := range []model.AgentID{src, mid, far1, far2} {
		for p, v := range donor.Ratings {
			comm.Agent(id).Ratings[p] = v
		}
		comm.Agent(id).MarkDirty()
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(comm.SetTrust(src, mid, 1))
	must(comm.SetTrust(mid, far1, 1))
	must(comm.SetTrust(mid, far2, 1))

	opt := testOptions()
	opt.Appleseed = trust.AppleseedOptions{MaxNodes: 1} // discovery stops at mid
	e, err := New(comm, opt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	peers, res, err := e.RankedPeersLadder(context.Background(), snap, src, Overrides{}, strategy.Selector{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procedure != strategy.TrustHopWidening {
		t.Fatalf("procedure = %s (attempts %+v)", res.Procedure, res.Attempts)
	}
	got := make(map[model.AgentID]bool, len(peers))
	for _, p := range peers {
		got[p.Agent] = true
	}
	if !got[mid] || !got[far1] || !got[far2] {
		t.Fatalf("widened peers = %v, want mid+far1+far2", got)
	}
}

// TestLadderSelector exercises the per-request override: pinning bypasses
// conditions, excluding the healthy rung pushes a healthy agent down the
// ladder, and the trace records the exclusion.
func TestLadderSelector(t *testing.T) {
	comm, _, _, _ := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	healthy := comm.Agents()[0]

	sel, err := strategy.ParseSelector("popularity", e.Ladder())
	if err != nil {
		t.Fatal(err)
	}
	recs, res, err := e.RecommendLadder(context.Background(), snap, healthy, 10, Overrides{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procedure != strategy.Popularity || len(recs) == 0 {
		t.Fatalf("pinned popularity: procedure = %s, %d recs", res.Procedure, len(recs))
	}
	if len(res.Attempts) != 1 || res.Attempts[0].Reason != "pinned" {
		t.Fatalf("pinned trace = %+v", res.Attempts)
	}

	sel, err = strategy.ParseSelector("-full-synthesis", e.Ladder())
	if err != nil {
		t.Fatal(err)
	}
	_, res, err = e.RecommendLadder(context.Background(), snap, healthy, 10, Overrides{}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts[0].Outcome != strategy.OutcomeExcluded {
		t.Fatalf("trace head = %+v, want excluded", res.Attempts[0])
	}
	// A healthy agent is neither thin nor low-overlap, so the exclusion
	// falls through to the unconditional popularity rung.
	if res.Procedure != strategy.Popularity {
		t.Fatalf("procedure = %s (attempts %+v)", res.Procedure, res.Attempts)
	}
}

// TestLadderDisabledRung builds an engine with the widening rung disabled:
// the thin-trust fixture must fall past it (trace says disabled) onto the
// next applicable rung instead.
func TestLadderDisabledRung(t *testing.T) {
	comm, _, thin, _ := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{
		Strategy: strategy.Config{Disable: []strategy.Procedure{strategy.TrustHopWidening}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := e.RecommendLadder(context.Background(), e.Snapshot(), thin, 10, Overrides{}, strategy.Selector{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procedure == strategy.TrustHopWidening {
		t.Fatal("disabled rung answered")
	}
	var sawDisabled bool
	for _, at := range res.Attempts {
		if at.Procedure == strategy.TrustHopWidening {
			sawDisabled = at.Outcome == strategy.OutcomeDisabled
		}
	}
	if !sawDisabled {
		t.Fatalf("trace = %+v, want trust-hop-widening disabled", res.Attempts)
	}
}

// TestLadderCounters asserts the swrec_strategy expvar map advances with
// the walk: the answering rung gains attempt+success, and pinning gains an
// attempt for the pinned rung only.
func TestLadderCounters(t *testing.T) {
	comm, cold, _, _ := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	attempts := strategyCounter("popularity_attempt")
	successes := strategyCounter("popularity_success")
	if _, _, err := e.RecommendLadder(context.Background(), snap, cold, 10, Overrides{}, strategy.Selector{}); err != nil {
		t.Fatal(err)
	}
	if strategyCounter("popularity_attempt") != attempts+1 || strategyCounter("popularity_success") != successes+1 {
		t.Fatal("popularity counters did not advance")
	}
}

// TestLadderUnknownAgent preserves the engine error contract through the
// ladder path.
func TestLadderUnknownAgent(t *testing.T) {
	comm, _, _, _ := fixtureCommunity(t)
	e, err := New(comm, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.RecommendLadder(context.Background(), e.Snapshot(), "http://nobody.example/x", 10, Overrides{}, strategy.Selector{})
	if !errors.Is(err, core.ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
}
