package taxonomy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHasOnlyRoot(t *testing.T) {
	tax := New("Books")
	if got := tax.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
	if name := tax.Name(Root); name != "Books" {
		t.Fatalf("Name(Root) = %q, want Books", name)
	}
	if !tax.IsLeaf(Root) {
		t.Fatal("fresh root should be a leaf")
	}
	if p := tax.Parent(Root); p != None {
		t.Fatalf("Parent(Root) = %d, want None", p)
	}
	if got := tax.Depth(Root); got != 0 {
		t.Fatalf("Depth(Root) = %d, want 0", got)
	}
}

func TestAddAndLookup(t *testing.T) {
	tax := New("Books")
	sci, err := tax.Add(Root, "Science")
	if err != nil {
		t.Fatal(err)
	}
	math := tax.MustAdd(sci, "Mathematics")

	if got, ok := tax.Lookup("Books/Science/Mathematics"); !ok || got != math {
		t.Fatalf("Lookup = %d,%v, want %d,true", got, ok, math)
	}
	if got := tax.QualifiedName(math); got != "Books/Science/Mathematics" {
		t.Fatalf("QualifiedName = %q", got)
	}
	if tax.IsLeaf(sci) {
		t.Fatal("Science has a child, must not be leaf")
	}
	if !tax.IsLeaf(math) {
		t.Fatal("Mathematics should be a leaf")
	}
	if got := tax.Parent(math); got != sci {
		t.Fatalf("Parent = %d, want %d", got, sci)
	}
}

func TestAddRejectsBadNames(t *testing.T) {
	tax := New("Books")
	if _, err := tax.Add(Root, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := tax.Add(Root, "a/b"); err == nil {
		t.Fatal("name with slash accepted")
	}
	if _, err := tax.Add(9999, "x"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	tax.MustAdd(Root, "Science")
	if _, err := tax.Add(Root, "Science"); err == nil {
		t.Fatal("duplicate sibling name accepted")
	}
}

func TestAddPath(t *testing.T) {
	tax := New("Books")
	alg, err := tax.AddPath("Science/Mathematics/Pure/Algebra")
	if err != nil {
		t.Fatal(err)
	}
	if got := tax.QualifiedName(alg); got != "Books/Science/Mathematics/Pure/Algebra" {
		t.Fatalf("QualifiedName = %q", got)
	}
	// Idempotent: re-adding returns the same handle, creates nothing.
	n := tax.Len()
	again, err := tax.AddPath("Science/Mathematics/Pure/Algebra")
	if err != nil || again != alg {
		t.Fatalf("AddPath again = %d,%v, want %d,nil", again, err, alg)
	}
	if tax.Len() != n {
		t.Fatalf("re-adding grew taxonomy: %d -> %d", n, tax.Len())
	}
	// Shares prefixes.
	calc, err := tax.AddPath("Science/Mathematics/Pure/Calculus")
	if err != nil {
		t.Fatal(err)
	}
	if tax.Parent(calc) != tax.Parent(alg) {
		t.Fatal("siblings should share a parent")
	}
	if _, err := tax.AddPath("Science//X"); err == nil {
		t.Fatal("empty segment accepted")
	}
}

func TestSiblingsAndPath(t *testing.T) {
	tax := Fig1()
	alg, ok := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	if !ok {
		t.Fatal("Algebra missing from Fig1")
	}
	// Example 1 implies these sibling counts exactly.
	wantSib := map[string]int{
		"Books/Science/Mathematics/Pure/Algebra": 1,
		"Books/Science/Mathematics/Pure":         2,
		"Books/Science/Mathematics":              3,
		"Books/Science":                          3,
		"Books":                                  0,
	}
	for q, want := range wantSib {
		d, ok := tax.Lookup(q)
		if !ok {
			t.Fatalf("missing topic %s", q)
		}
		if got := tax.Siblings(d); got != want {
			t.Errorf("Siblings(%s) = %d, want %d", q, got, want)
		}
	}
	path := tax.PrimaryPath(alg)
	var names []string
	for _, p := range path {
		names = append(names, tax.Name(p))
	}
	if got := strings.Join(names, ","); got != "Books,Science,Mathematics,Pure,Algebra" {
		t.Fatalf("PrimaryPath = %s", got)
	}
	if got := tax.Depth(alg); got != 4 {
		t.Fatalf("Depth(Algebra) = %d, want 4", got)
	}
}

func TestMultipleParentsAndAncestors(t *testing.T) {
	tax := New("Books")
	sci := tax.MustAdd(Root, "Science")
	comp := tax.MustAdd(Root, "Computers")
	ml := tax.MustAdd(sci, "MachineLearning")
	if err := tax.AddEdge(comp, ml); err != nil {
		t.Fatal(err)
	}
	// Primary path still goes through Science.
	if got := tax.Parent(ml); got != sci {
		t.Fatalf("primary parent = %d, want %d", got, sci)
	}
	anc := tax.Ancestors(ml)
	want := map[Topic]bool{Root: true, sci: true, comp: true}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v, want 3 topics", anc)
	}
	for _, a := range anc {
		if !want[a] {
			t.Fatalf("unexpected ancestor %d", a)
		}
	}
	// Idempotent edge add.
	if err := tax.AddEdge(comp, ml); err != nil {
		t.Fatal(err)
	}
	if got := len(tax.Parents(ml)); got != 2 {
		t.Fatalf("Parents = %d, want 2", got)
	}
}

func TestAddEdgeRejectsCycles(t *testing.T) {
	tax := New("Books")
	a := tax.MustAdd(Root, "A")
	b := tax.MustAdd(a, "B")
	if err := tax.AddEdge(b, a); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := tax.AddEdge(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := tax.AddEdge(a, Root); err == nil {
		t.Fatal("parent for root accepted")
	}
}

func TestLCA(t *testing.T) {
	tax := Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	calc, _ := tax.Lookup("Books/Science/Mathematics/Pure/Calculus")
	app, _ := tax.Lookup("Books/Science/Mathematics/Applied")
	fic, _ := tax.Lookup("Books/Fiction")
	pure, _ := tax.Lookup("Books/Science/Mathematics/Pure")
	math, _ := tax.Lookup("Books/Science/Mathematics")

	cases := []struct {
		a, b, want Topic
	}{
		{alg, calc, pure},
		{alg, app, math},
		{alg, fic, Root},
		{alg, alg, alg},
		{alg, pure, pure},
	}
	for _, c := range cases {
		if got := tax.LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%s, %s) = %s, want %s",
				tax.Name(c.a), tax.Name(c.b), tax.Name(got), tax.Name(c.want))
		}
	}
}

func TestWuPalmer(t *testing.T) {
	tax := Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	calc, _ := tax.Lookup("Books/Science/Mathematics/Pure/Calculus")
	app, _ := tax.Lookup("Books/Science/Mathematics/Applied")
	fic, _ := tax.Lookup("Books/Fiction")

	if got := tax.WuPalmer(alg, alg); got != 1 {
		t.Fatalf("self similarity = %v, want 1", got)
	}
	// Siblings at depth 4 share the depth-3 parent: 2·3/(4+4) = 0.75.
	if got := tax.WuPalmer(alg, calc); got != 0.75 {
		t.Fatalf("sibling similarity = %v, want 0.75", got)
	}
	// Algebra vs Applied share Mathematics (depth 2): 2·2/(4+3) ≈ 0.571.
	if got := tax.WuPalmer(alg, app); got < 0.57 || got > 0.58 {
		t.Fatalf("cousin similarity = %v, want ≈0.571", got)
	}
	// Only the root in common → 0.
	if got := tax.WuPalmer(alg, fic); got != 0 {
		t.Fatalf("cross-branch similarity = %v, want 0", got)
	}
	// Symmetry and bounds on random pairs.
	for _, a := range tax.Topics() {
		for _, b := range tax.Topics() {
			s := tax.WuPalmer(a, b)
			if s < 0 || s > 1 || s != tax.WuPalmer(b, a) {
				t.Fatalf("WuPalmer(%v,%v) = %v violates bounds/symmetry", a, b, s)
			}
		}
	}
	if got := tax.WuPalmer(Root, Root); got != 1 {
		t.Fatalf("root self similarity = %v", got)
	}
	if got := tax.WuPalmer(None, alg); got != 0 {
		t.Fatalf("invalid topic similarity = %v", got)
	}
}

func TestWalkVisitsAllOnce(t *testing.T) {
	tax := Fig1()
	seen := map[Topic]int{}
	tax.Walk(func(d Topic, depth int) bool {
		seen[d]++
		if got := tax.Depth(d); got != depth {
			t.Errorf("Walk depth %d != Depth() %d for %s", depth, got, tax.Name(d))
		}
		return true
	})
	if len(seen) != tax.Len() {
		t.Fatalf("Walk visited %d topics, want %d", len(seen), tax.Len())
	}
	for d, n := range seen {
		if n != 1 {
			t.Fatalf("topic %s visited %d times", tax.Name(d), n)
		}
	}
	// Early stop.
	count := 0
	tax.Walk(func(Topic, int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestStatsFig1(t *testing.T) {
	s := Fig1().ComputeStats()
	if s.Topics != 14 {
		t.Errorf("Topics = %d, want 14", s.Topics)
	}
	if s.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", s.MaxDepth)
	}
	if s.Leaves+s.InnerTopics != s.Topics {
		t.Errorf("leaves %d + inner %d != topics %d", s.Leaves, s.InnerTopics, s.Topics)
	}
}

func TestLeavesAndTopics(t *testing.T) {
	tax := Fig1()
	if got := len(tax.Topics()); got != tax.Len() {
		t.Fatalf("Topics() = %d, want %d", got, tax.Len())
	}
	for _, l := range tax.Leaves() {
		if !tax.IsLeaf(l) {
			t.Fatalf("Leaves() returned non-leaf %s", tax.Name(l))
		}
	}
}

// buildRandom constructs a random tree-shaped taxonomy from a seed.
func buildRandom(seed int64, n int) *Taxonomy {
	rng := rand.New(rand.NewSource(seed))
	tax := New("Root")
	for i := 0; i < n; i++ {
		parent := Topic(rng.Intn(tax.Len()))
		tax.MustAdd(parent, "t"+string(rune('a'+i%26))+itoa(i))
	}
	return tax
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Property: for every topic, the primary path starts at Root, ends at the
// topic, and successive entries are parent/child.
func TestPathPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		tax := buildRandom(seed, 120)
		for _, d := range tax.Topics() {
			p := tax.PrimaryPath(d)
			if p[0] != Root || p[len(p)-1] != d {
				return false
			}
			for i := 1; i < len(p); i++ {
				if tax.Parent(p[i]) != p[i-1] {
					return false
				}
			}
			if tax.Depth(d) != len(p)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup(QualifiedName(d)) == d for all topics.
func TestLookupRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		tax := buildRandom(seed, 120)
		for _, d := range tax.Topics() {
			got, ok := tax.Lookup(tax.QualifiedName(d))
			if !ok || got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LCA is commutative and lies on both primary paths.
func TestLCAPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		tax := buildRandom(seed, 80)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 50; i++ {
			a := Topic(rng.Intn(tax.Len()))
			b := Topic(rng.Intn(tax.Len()))
			l := tax.LCA(a, b)
			if l != tax.LCA(b, a) {
				return false
			}
			onPath := func(x, of Topic) bool {
				for _, p := range tax.PrimaryPath(of) {
					if p == x {
						return true
					}
				}
				return false
			}
			if !onPath(l, a) || !onPath(l, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
